#include "shard/virtual_node.h"

#include <algorithm>
#include <future>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"

namespace pexeso::shard {

VirtualShardRouter::VirtualShardRouter(const JoinSearchEngine* base,
                                       size_t num_shards, Options options)
    : options_(options) {
  PEXESO_CHECK(base != nullptr);
  PEXESO_CHECK(num_shards >= 1);
  PEXESO_CHECK(options_.replication >= 1);
  const auto* parts = dynamic_cast<const PartitionedJoinEngine*>(base);
  PEXESO_CHECK(parts != nullptr);
  map_ = ShardMap::RoundRobin(parts->NumParts(), num_shards);
  nodes_.resize(num_shards);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    nodes_[shard].resize(options_.replication);
    for (size_t replica = 0; replica < options_.replication; ++replica) {
      Node& node = nodes_[shard][replica];
      node.engine =
          std::make_unique<PartSubsetEngine>(base, map_.OwnedParts(shard));
      serve::ServeSessionOptions sopts;
      sopts.num_threads = std::max<size_t>(1, options_.threads_per_node);
      node.session =
          std::make_unique<serve::ServeSession>(node.engine.get(), sopts);
    }
  }
}

VirtualShardRouter::~VirtualShardRouter() = default;

ShardAttemptOutcome VirtualShardRouter::RunAttempt(size_t shard,
                                                   size_t replica,
                                                   const JoinQuery& query,
                                                   const AttemptContext& ctx) {
  PEXESO_CHECK(shard < nodes_.size());
  PEXESO_CHECK(replica < nodes_[shard].size());
  ShardAttemptOutcome out;

  // Fault-injection point standing in for the network/process boundary: a
  // kIoError here is a dead node, a kDelay is a straggling one.
  const std::string site =
      "shard:attempt:" + std::to_string(shard) + ":" + std::to_string(replica);
  const Status fp = FailpointHit(site.c_str());
  if (!fp.ok()) {
    out.status = fp;
    return out;
  }

  Node& node = nodes_[shard][replica];
  JoinQuery attempt = query;
  attempt.cancel = ctx.cancel;
  if (query.mode == QueryMode::kTopK && ctx.floor != nullptr) {
    attempt.topk_floor = std::max(attempt.topk_floor, ctx.floor->load());
    attempt.floor_link = ctx.floor;
  }

  // Chunk callbacks of one query are serialized by the session, and the
  // outcome callback fires strictly after the last one, so the plain
  // vector needs no lock; RunAttempt blocks until the outcome callback, so
  // the captured references outlive every callback.
  std::vector<std::pair<size_t, Status>> part_statuses;
  std::promise<serve::QueryOutcome> done;
  auto future = done.get_future();
  node.session->SubmitStreaming(
      attempt,
      [&part_statuses](const serve::StreamChunk& chunk) {
        if (!chunk.status.ok()) {
          part_statuses.emplace_back(chunk.part, chunk.status);
        }
      },
      [&done](const serve::QueryOutcome& outcome) { done.set_value(outcome); });
  serve::QueryOutcome outcome = future.get();

  out.status = outcome.status;
  out.stats = outcome.stats;
  out.part_statuses = std::move(part_statuses);
  if (out.status.ok() || out.status.interrupted()) {
    out.columns = std::move(outcome.results);
  }
  return out;
}

}  // namespace pexeso::shard
