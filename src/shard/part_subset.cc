#include "shard/part_subset.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/check.h"

namespace pexeso::shard {

PartSubsetEngine::PartSubsetEngine(const JoinSearchEngine* base,
                                   std::vector<size_t> owned)
    : base_(base),
      base_parts_(dynamic_cast<const PartitionedJoinEngine*>(base)),
      owned_(std::move(owned)) {
  PEXESO_CHECK(base_ != nullptr);
  PEXESO_CHECK(base_parts_ != nullptr);
  for (size_t part : owned_) PEXESO_CHECK(part < base_parts_->NumParts());
}

Result<PartHandle> PartSubsetEngine::AcquirePart(size_t part,
                                                 double* io_seconds) const {
  PEXESO_CHECK(part < owned_.size());
  return base_parts_->AcquirePart(owned_[part], io_seconds);
}

Result<std::vector<JoinableColumn>> PartSubsetEngine::SearchPart(
    size_t part, const JoinQuery& query, SearchStats* stats,
    double* io_seconds, const PartHandle& preloaded) const {
  PEXESO_CHECK(part < owned_.size());
  return base_parts_->SearchPart(owned_[part], query, stats, io_seconds,
                                 preloaded);
}

bool PartSubsetEngine::PartsStayResident() const {
  return base_parts_->PartsStayResident();
}

Status PartSubsetEngine::Execute(const JoinQuery& jq, ResultSink* sink,
                                 SearchStats* stats) const {
  PEXESO_CHECK(jq.vectors != nullptr);
  PEXESO_CHECK(sink != nullptr);
  SearchStats local;
  if (stats == nullptr) stats = &local;
  const bool topk_mode = jq.mode == QueryMode::kTopK;

  std::vector<JoinableColumn> merged;
  // Cross-part kTopK pushdown within the subset, exactly as the unsharded
  // PartitionedPexeso::Execute runs it across all parts.
  TopKBound bound(jq.k, jq.topk_floor);
  Status final_st;
  for (size_t part = 0; part < owned_.size(); ++part) {
    Status live = jq.CheckLive();
    if (!live.ok()) {
      ++stats->deadline_expired;
      final_st = live;
      break;
    }
    JoinQuery part_jq = jq;
    if (topk_mode) {
      uint32_t seed = bound.bound();
      if (jq.floor_link != nullptr) {
        // Sibling shards may have raised the global floor past anything
        // this subset has seen; prune against the max of both.
        const uint32_t ext = jq.floor_link->load();
        if (ext > seed) {
          seed = ext;
          ++stats->floor_updates_received;
        }
      }
      part_jq.topk_floor = seed;
    }
    auto chunk = SearchPart(part, part_jq, stats, nullptr, nullptr);
    if (!chunk.ok()) {
      final_st = chunk.status();
      // Interruption keeps completed parts as partial results; a real
      // failure returns bare (the PartitionedPexeso doctrine).
      if (!final_st.interrupted()) {
        sink->OnDone(final_st);
        return final_st;
      }
      break;
    }
    auto results = std::move(chunk).ValueOrDie();
    if (topk_mode) {
      for (const auto& jc : results) bound.Offer(jc.match_count);
      if (jq.floor_link != nullptr && results.size() == jq.k) {
        uint32_t floor = UINT32_MAX;
        for (const auto& jc : results) {
          floor = std::min(floor, jc.match_count);
        }
        if (jq.floor_link->RaiseTo(floor)) ++stats->floor_updates_sent;
      }
    }
    merged.insert(merged.end(), std::make_move_iterator(results.begin()),
                  std::make_move_iterator(results.end()));
  }
  FinishQueryMerge(jq, &merged);
  for (auto& jc : merged) sink->OnColumn(std::move(jc));
  sink->OnDone(final_st);
  return final_st;
}

}  // namespace pexeso::shard
