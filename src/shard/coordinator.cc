#include "shard/coordinator.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"

namespace pexeso::shard {

namespace {

/// Request-class failures: retrying them on a replica would return the
/// same answer (they describe the query, not the node), and degrading
/// would mask a caller bug — they fail the whole query.
bool IsFatalStatus(const Status& s) {
  return s.code() == Status::Code::kInvalidArgument ||
         s.code() == Status::Code::kNotSupported ||
         s.code() == Status::Code::kNotFound;
}

/// What one shard's dispatch loop concluded.
struct ShardResult {
  ShardAttemptOutcome outcome;  ///< valid when won == true
  bool won = false;
  bool fatal = false;
  Status last_error;  ///< the error that exhausted the replicas / was fatal
  uint64_t hedges = 0;
  uint64_t failovers = 0;
  uint64_t attempts = 0;
};

/// Synchronizes one shard's racing replica attempts with its dispatch loop.
struct HedgeState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;  ///< a winner committed its outcome
  ShardAttemptOutcome outcome;
  size_t outstanding = 0;
  Status last_error;
  bool fatal = false;
};

}  // namespace

ShardedEngine::ShardedEngine(ShardRouter* router, ShardedOptions options)
    : router_(router), options_(options) {
  PEXESO_CHECK(router != nullptr);
}

Status ShardedEngine::Execute(const JoinQuery& query, ResultSink* sink,
                              SearchStats* stats) const {
  PEXESO_CHECK(query.vectors != nullptr);
  PEXESO_CHECK(sink != nullptr);
  SearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  // Same entry checkpoint as every other engine: a query that is already
  // cancelled or past its deadline must not scatter at all.
  if (const Status live = query.CheckLive(); !live.ok()) {
    ++stats->deadline_expired;
    sink->OnDone(live);
    return live;
  }
  const ShardMap& map = router_->map();
  const size_t num_shards = map.num_shards();

  // The query's shared global floor (kTopK + sharing on). Seeded with any
  // caller-provided floor; shard attempts link it in and the routers move
  // raises between nodes.
  std::shared_ptr<TopKFloorCell> floor;
  if (query.mode == QueryMode::kTopK && options_.share_floor) {
    floor = std::make_shared<TopKFloorCell>(query.topk_floor);
  }

  // Every attempt gets its own CancelToken, registered here so the main
  // thread can propagate the ORIGINAL query's cancellation/deadline to all
  // in-flight attempts (one engine-level token cannot be reused per
  // attempt — hedge losers must be cancellable individually).
  std::mutex live_mu;
  std::vector<CancelToken> live_tokens;
  std::atomic<bool> killed{false};
  auto new_attempt_token = [&]() {
    CancelToken token = CancelToken::Create();
    std::lock_guard<std::mutex> lock(live_mu);
    if (killed.load(std::memory_order_relaxed)) token.Cancel();
    live_tokens.push_back(token);
    return token;
  };

  std::atomic<uint64_t> floor_sent{0};
  std::atomic<uint64_t> floor_received{0};
  std::atomic<uint64_t> bytes_moved{0};

  std::vector<ShardResult> results(num_shards);
  std::atomic<size_t> shards_remaining{num_shards};
  std::mutex done_mu;
  std::condition_variable done_cv;

  // One dispatch loop per shard: launch replica 0, hedge/fail over through
  // the remaining replicas as the schedule demands, commit the first
  // usable outcome.
  auto run_shard = [&](size_t shard) {
    ShardResult& sr = results[shard];
    const size_t replicas = router_->replication(shard);
    size_t next_replica = 0;
    HedgeState hs;
    std::vector<std::thread> attempt_threads;
    std::vector<CancelToken> attempt_tokens;

    auto launch = [&](size_t replica) {
      CancelToken token = new_attempt_token();
      attempt_tokens.push_back(token);
      {
        std::lock_guard<std::mutex> lock(hs.mu);
        ++hs.outstanding;
      }
      ++sr.attempts;
      attempt_threads.emplace_back([&, replica, token] {
        AttemptContext ctx;
        ctx.cancel = token;
        ctx.floor = floor;
        ctx.floor_sent = &floor_sent;
        ctx.floor_received = &floor_received;
        ctx.bytes_moved = &bytes_moved;
        ShardAttemptOutcome out =
            router_->RunAttempt(shard, replica, query, ctx);
        std::lock_guard<std::mutex> lock(hs.mu);
        --hs.outstanding;
        if (!hs.done && (out.status.ok() || out.status.interrupted())) {
          // First finisher with a usable outcome wins; later finishers
          // (hedge losers) are discarded here.
          hs.done = true;
          hs.outcome = std::move(out);
        } else if (!hs.done) {
          hs.last_error = out.status;
          if (IsFatalStatus(out.status)) hs.fatal = true;
        }
        hs.cv.notify_all();
      });
    };

    launch(next_replica++);

    {
      std::unique_lock<std::mutex> lock(hs.mu);
      for (;;) {
        if (hs.done) break;
        if (hs.outstanding == 0) {
          // Every launched attempt failed. Fatal errors and exhausted
          // replica lists end the loop; otherwise fail over.
          if (hs.fatal || next_replica >= replicas) break;
          ++sr.failovers;
          lock.unlock();
          launch(next_replica++);
          lock.lock();
          continue;
        }
        const bool can_hedge = options_.hedge_after_ms > 0 &&
                               next_replica < replicas && !hs.fatal;
        if (can_hedge) {
          const bool finished = hs.cv.wait_for(
              lock, std::chrono::milliseconds(options_.hedge_after_ms),
              [&] { return hs.done || hs.outstanding == 0; });
          if (!finished) {
            // The attempt is straggling: re-dispatch on the next replica
            // and let them race.
            ++sr.hedges;
            lock.unlock();
            launch(next_replica++);
            lock.lock();
          }
        } else {
          hs.cv.wait(lock,
                     [&] { return hs.done || hs.outstanding == 0; });
        }
      }
    }
    // Cancel whatever is still running (hedge losers after a win; stale
    // attempts after a fatal error) and wait for the threads — attempts
    // borrow this frame's state, so they must not outlive it.
    for (const CancelToken& token : attempt_tokens) token.Cancel();
    for (std::thread& t : attempt_threads) t.join();

    if (hs.done) {
      sr.won = true;
      sr.outcome = std::move(hs.outcome);
    } else {
      sr.fatal = hs.fatal;
      sr.last_error = hs.last_error.ok()
                          ? Status::Internal("shard produced no outcome")
                          : hs.last_error;
    }
    if (shards_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu);
      done_cv.notify_all();
    }
  };

  std::vector<std::thread> shard_threads;
  shard_threads.reserve(num_shards);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    shard_threads.emplace_back(run_shard, shard);
  }

  // The gather side: wait for every shard while propagating the original
  // query's cancellation/deadline into the live attempts at checkpoint
  // granularity (the attempts also carry the deadline themselves; this
  // loop just makes an engine-level Cancel() reach them promptly).
  {
    std::unique_lock<std::mutex> lock(done_mu);
    while (shards_remaining.load(std::memory_order_acquire) != 0) {
      done_cv.wait_for(lock, std::chrono::milliseconds(5));
      if (!killed.load(std::memory_order_relaxed) && !query.CheckLive().ok()) {
        std::lock_guard<std::mutex> live_lock(live_mu);
        killed.store(true, std::memory_order_relaxed);
        for (const CancelToken& token : live_tokens) token.Cancel();
      }
    }
  }
  for (std::thread& t : shard_threads) t.join();

  // Request-class failures veto everything (first such shard in shard
  // order), before any column or part status is emitted.
  for (size_t shard = 0; shard < num_shards; ++shard) {
    if (!results[shard].won && results[shard].fatal) {
      const Status st = results[shard].last_error;
      sink->OnDone(st);
      return st;
    }
  }

  // Deterministic gather in shard order: stats, degraded part statuses,
  // first interruption, and the concatenated columns for the one canonical
  // merge.
  std::vector<JoinableColumn> merged;
  Status first_interruption;
  bool any_degraded = false;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    ShardResult& sr = results[shard];
    stats->scatters += sr.attempts;
    stats->hedged_requests += sr.hedges;
    stats->failovers += sr.failovers;
    if (!sr.won) {
      // No replica healthy: the shard's whole part range is missing.
      // Surface each owned part and keep serving the rest (degraded-mode
      // contract, same as a quarantined lake part).
      ++stats->shards_degraded;
      any_degraded = true;
      const size_t owned = map.OwnedCount(shard);
      for (size_t local = 0; local < owned; ++local) {
        sink->OnPartStatus(map.GlobalPart(shard, local), sr.last_error);
      }
      continue;
    }
    *stats += sr.outcome.stats;
    for (const auto& [local, st] : sr.outcome.part_statuses) {
      sink->OnPartStatus(map.GlobalPart(shard, local), st);
    }
    if (sr.outcome.status.interrupted() && first_interruption.ok()) {
      first_interruption = sr.outcome.status;
    }
    merged.insert(merged.end(),
                  std::make_move_iterator(sr.outcome.columns.begin()),
                  std::make_move_iterator(sr.outcome.columns.end()));
  }
  if (any_degraded) ++stats->partial_responses;
  stats->floor_updates_sent += floor_sent.load(std::memory_order_relaxed);
  stats->floor_updates_received +=
      floor_received.load(std::memory_order_relaxed);
  stats->shard_bytes_moved += bytes_moved.load(std::memory_order_relaxed);

  const Status final_st = first_interruption;  // OK when nothing tripped
  FinishQueryMerge(query, &merged);
  for (auto& jc : merged) sink->OnColumn(std::move(jc));
  sink->OnDone(final_st);
  return final_st;
}

}  // namespace pexeso::shard
