#ifndef PEXESO_SHARD_VIRTUAL_NODE_H_
#define PEXESO_SHARD_VIRTUAL_NODE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "serve/serve_session.h"
#include "shard/part_subset.h"
#include "shard/router.h"

namespace pexeso::shard {

/// \brief The in-process shard backend: every (shard, replica) pair is an
/// independent ServeSession over its own PartSubsetEngine — the same
/// executor stack a remote pexeso_server shard runs, minus the wire. This
/// makes the full coordinator matrix (shard counts, replication, kills,
/// stragglers) testable on a single box; tests inject faults by arming the
/// failpoint "shard:attempt:<shard>:<replica>" (kIoError = dead node,
/// kDelay = straggler).
class VirtualShardRouter : public ShardRouter {
 public:
  struct Options {
    size_t replication = 1;
    /// Worker threads per virtual node's session (part-task parallelism
    /// within one shard attempt).
    size_t threads_per_node = 1;
  };

  /// `base` is the whole-lake partitioned engine (borrowed, must outlive
  /// the router); each virtual node serves its round-robin subset of the
  /// base parts. Replicas of one shard share the base engine (and its
  /// cache) but run independent sessions, like replicas sharing a blob
  /// store.
  VirtualShardRouter(const JoinSearchEngine* base, size_t num_shards,
                     Options options);
  VirtualShardRouter(const JoinSearchEngine* base, size_t num_shards)
      : VirtualShardRouter(base, num_shards, Options()) {}
  ~VirtualShardRouter() override;

  const ShardMap& map() const override { return map_; }
  size_t replication(size_t shard) const override {
    (void)shard;
    return options_.replication;
  }
  ShardAttemptOutcome RunAttempt(size_t shard, size_t replica,
                                 const JoinQuery& query,
                                 const AttemptContext& ctx) override;

 private:
  struct Node {
    std::unique_ptr<PartSubsetEngine> engine;
    std::unique_ptr<serve::ServeSession> session;
  };

  ShardMap map_;
  Options options_;
  /// nodes_[shard][replica]; sessions are created up front and reused
  /// across queries (a node is a long-lived server, not a per-query actor).
  std::vector<std::vector<Node>> nodes_;
};

}  // namespace pexeso::shard

#endif  // PEXESO_SHARD_VIRTUAL_NODE_H_
