#ifndef PEXESO_SHARD_COORDINATOR_H_
#define PEXESO_SHARD_COORDINATOR_H_

#include <cstddef>

#include "core/engine.h"
#include "shard/router.h"

namespace pexeso::shard {

/// Coordinator knobs. Results are byte-identical at every setting — these
/// trade latency/robustness against duplicated work.
struct ShardedOptions {
  /// Straggler re-dispatch: when an attempt has not finished after this
  /// many milliseconds and the shard has an unused replica, a hedged
  /// duplicate is dispatched; the first finisher wins and the loser is
  /// cancelled. 0 = off.
  size_t hedge_after_ms = 0;
  /// Share the global top-k floor across shards (kTopK): each shard's local
  /// k-th best tightens a CAS-max cell pushed to still-running shards, so
  /// they prune against the global k-th best instead of only their own.
  /// Off exists for the bench ablation; results are identical either way.
  bool share_floor = true;
};

/// \brief The scatter-gather coordinator: a JoinSearchEngine that fans one
/// JoinQuery out to every shard of a ShardRouter, streams topk_floor raises
/// between them, and gathers the shard results through the same
/// deterministic merge every other engine uses.
///
/// Robustness: an attempt failing with a transient/environment status
/// (IoError, Corruption, Internal, ResourceExhausted) fails over to the
/// shard's next replica; when no replica is left the shard is served
/// degraded — OnPartStatus for each of its parts, OK final status, partial
/// results — mirroring the PR 7 degraded-lake contract. A request-class
/// failure (InvalidArgument, NotSupported, NotFound) fails the whole query
/// instead: a malformed query must not be masked as a degraded answer.
/// Interruptions (Cancelled / DeadlineExceeded) follow the partitioned
/// doctrine — first interrupted shard in shard order decides the final
/// status, completed shards' columns are delivered as partial results.
///
/// Determinism: shard results are concatenated in shard order and merged
/// with one FinishQueryMerge, so the output is byte-identical to the
/// single-node partitioned engine at any shard count, replication factor,
/// and kill/straggler schedule (prune counters legitimately vary; columns
/// never do).
class ShardedEngine : public JoinSearchEngine {
 public:
  /// `router` is borrowed and must outlive the engine.
  explicit ShardedEngine(ShardRouter* router, ShardedOptions options = {});

  const char* name() const override { return "sharded"; }

  Status Execute(const JoinQuery& query, ResultSink* sink,
                 SearchStats* stats) const override;

  const ShardRouter* router() const { return router_; }

 private:
  ShardRouter* router_;
  ShardedOptions options_;
};

}  // namespace pexeso::shard

#endif  // PEXESO_SHARD_COORDINATOR_H_
