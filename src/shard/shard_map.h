#ifndef PEXESO_SHARD_SHARD_MAP_H_
#define PEXESO_SHARD_SHARD_MAP_H_

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace pexeso::shard {

/// \brief Deterministic assignment of a lake's P global parts to S shards.
///
/// Round-robin by part index: part p belongs to shard p % S, so shard s
/// owns {s, s+S, s+2S, ...} in ascending global order. Both directions are
/// O(1) arithmetic — local index k on shard s is global part s + k*S — and
/// every node (coordinator, shard servers, tests) derives the same map from
/// just (P, S), so nothing needs to travel beyond those two numbers (the
/// HELLO ack's shard metadata). Round-robin also balances part counts to
/// within one part per shard regardless of how the partitioner numbered
/// them.
class ShardMap {
 public:
  ShardMap() = default;

  static ShardMap RoundRobin(size_t num_parts, size_t num_shards) {
    PEXESO_CHECK(num_shards >= 1);
    ShardMap m;
    m.num_parts_ = num_parts;
    m.num_shards_ = num_shards;
    return m;
  }

  size_t num_parts() const { return num_parts_; }
  size_t num_shards() const { return num_shards_; }

  /// Which shard owns global part `part`.
  size_t PartShard(size_t part) const {
    PEXESO_CHECK(part < num_parts_);
    return part % num_shards_;
  }

  /// How many parts shard `shard` owns.
  size_t OwnedCount(size_t shard) const {
    PEXESO_CHECK(shard < num_shards_);
    return num_parts_ / num_shards_ +
           (shard < num_parts_ % num_shards_ ? 1 : 0);
  }

  /// Global part ids owned by `shard`, ascending.
  std::vector<size_t> OwnedParts(size_t shard) const {
    std::vector<size_t> owned;
    owned.reserve(OwnedCount(shard));
    for (size_t p = shard; p < num_parts_; p += num_shards_) owned.push_back(p);
    return owned;
  }

  /// Global part id of shard `shard`'s `local`-th owned part.
  size_t GlobalPart(size_t shard, size_t local) const {
    const size_t part = shard + local * num_shards_;
    PEXESO_CHECK(part < num_parts_);
    return part;
  }

 private:
  size_t num_parts_ = 0;
  size_t num_shards_ = 1;
};

}  // namespace pexeso::shard

#endif  // PEXESO_SHARD_SHARD_MAP_H_
