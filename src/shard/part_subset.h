#ifndef PEXESO_SHARD_PART_SUBSET_H_
#define PEXESO_SHARD_PART_SUBSET_H_

#include <cstddef>
#include <vector>

#include "core/engine.h"

namespace pexeso::shard {

/// \brief One shard's view of a partitioned lake: the same engine pair
/// (JoinSearchEngine + PartitionedJoinEngine) every driver already speaks,
/// restricted to an owned subset of the base engine's parts.
///
/// Part indices on this engine are LOCAL (0..owned-1); they delegate to the
/// base engine's global part ids, and results keep their global column ids,
/// so concatenating shard results and running the canonical merge yields
/// exactly what the unsharded engine produces. A shard server wraps its
/// PartitionedPexeso in this and serves it through the ordinary
/// ServeSession / pexeso_server stack — sharding needs no serving-layer
/// changes at all.
class PartSubsetEngine : public JoinSearchEngine, public PartitionedJoinEngine {
 public:
  /// `base` is borrowed and must outlive this engine; it must also
  /// implement PartitionedJoinEngine (PEXESO_CHECK-enforced). `owned` lists
  /// the base engine's global part ids this shard serves, ascending.
  PartSubsetEngine(const JoinSearchEngine* base, std::vector<size_t> owned);

  const char* name() const override { return "part-subset"; }

  /// Serial owned-part loop mirroring PartitionedPexeso::Execute exactly:
  /// cross-part kTopK bound, partial results on interruption, bare status
  /// on a real failure — plus the floor-link adoption/publication a shard
  /// execution needs (JoinQuery::floor_link).
  Status Execute(const JoinQuery& query, ResultSink* sink,
                 SearchStats* stats) const override;

  // ------------------------------------------- PartitionedJoinEngine side
  size_t NumParts() const override { return owned_.size(); }
  Result<PartHandle> AcquirePart(size_t part,
                                 double* io_seconds) const override;
  Result<std::vector<JoinableColumn>> SearchPart(
      size_t part, const JoinQuery& query, SearchStats* stats,
      double* io_seconds, const PartHandle& preloaded) const override;
  bool PartsStayResident() const override;

  const std::vector<size_t>& owned_parts() const { return owned_; }

 private:
  const JoinSearchEngine* base_;
  const PartitionedJoinEngine* base_parts_;
  std::vector<size_t> owned_;
};

}  // namespace pexeso::shard

#endif  // PEXESO_SHARD_PART_SUBSET_H_
