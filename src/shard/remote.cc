#include "shard/remote.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace pexeso::shard {

Result<std::unique_ptr<RemoteShardRouter>> RemoteShardRouter::Probe(
    std::vector<std::vector<Endpoint>> replicas, Options options) {
  if (replicas.empty()) {
    return Status::InvalidArgument("no shard endpoints");
  }
  const size_t num_shards = replicas.size();
  options.connect.role = "coordinator";

  auto router = std::unique_ptr<RemoteShardRouter>(new RemoteShardRouter());
  router->options_ = options;

  size_t total_parts = 0;
  std::vector<uint64_t> owned(num_shards, 0);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    if (replicas[shard].empty()) {
      return Status::InvalidArgument("shard " + std::to_string(shard) +
                                     " has no endpoints");
    }
    for (size_t r = 0; r < replicas[shard].size(); ++r) {
      const Endpoint& ep = replicas[shard][r];
      net::PexesoClient probe;
      PEXESO_RETURN_NOT_OK(
          probe.Connect(ep.host, ep.port, options.tenant, options.connect));
      const net::HelloAckMsg& info = probe.server_info();
      if (info.shards_total != num_shards) {
        return Status::InvalidArgument(
            ep.host + ":" + std::to_string(ep.port) + " serves " +
            std::to_string(info.shards_total) + " shards, coordinator has " +
            std::to_string(num_shards));
      }
      if (info.shard_of != shard) {
        return Status::InvalidArgument(
            ep.host + ":" + std::to_string(ep.port) + " is shard " +
            std::to_string(info.shard_of) + ", listed as shard " +
            std::to_string(shard));
      }
      if (r == 0) {
        owned[shard] = info.parts;
        total_parts += info.parts;
        if (shard == 0) {
          router->shard_engine_ = info.engine;
          router->dim_ = info.dim;
        }
      } else if (info.parts != owned[shard]) {
        return Status::InvalidArgument(
            "replicas of shard " + std::to_string(shard) +
            " disagree on owned part count");
      }
    }
  }
  router->map_ = ShardMap::RoundRobin(total_parts, num_shards);
  // The owned counts must be one consistent round-robin split of the total
  // — a shard started with the wrong --shards would silently lose parts.
  for (size_t shard = 0; shard < num_shards; ++shard) {
    if (owned[shard] != router->map_.OwnedCount(shard)) {
      return Status::InvalidArgument(
          "shard " + std::to_string(shard) + " owns " +
          std::to_string(owned[shard]) + " parts, round-robin expects " +
          std::to_string(router->map_.OwnedCount(shard)));
    }
  }
  router->replicas_ = std::move(replicas);
  return router;
}

ShardAttemptOutcome RemoteShardRouter::RunAttempt(size_t shard,
                                                  size_t replica,
                                                  const JoinQuery& query,
                                                  const AttemptContext& ctx) {
  PEXESO_CHECK(shard < replicas_.size());
  PEXESO_CHECK(replica < replicas_[shard].size());
  ShardAttemptOutcome out;
  const Endpoint& ep = replicas_[shard][replica];

  // A fresh connection per attempt: closing it is the attempt's whole
  // cleanup story (the server cancels the query of a disconnected client),
  // so a hedge loser can never leave orphaned work on the shard.
  net::PexesoClient client;
  Status st = client.Connect(ep.host, ep.port, options_.tenant,
                             options_.connect);
  if (!st.ok()) {
    out.status = st;
    return out;
  }

  const std::shared_ptr<TopKFloorCell> cell = ctx.floor;
  if (cell != nullptr) {
    // Shard -> coordinator direction: the shard's session publishes its
    // local k-th-best floors, the server pushes them as kFloorUpdate
    // frames, and this listener folds them into the query's global cell.
    client.set_floor_listener(
        [cell, received = ctx.floor_received](uint64_t, uint32_t floor) {
          if (cell->RaiseTo(floor) && received != nullptr) {
            received->fetch_add(1, std::memory_order_relaxed);
          }
        });
  }

  JoinQuery attempt = query;
  if (query.mode == QueryMode::kTopK && cell != nullptr) {
    attempt.topk_floor = std::max(attempt.topk_floor, cell->load());
  }
  Result<uint64_t> id = client.SendQuery(attempt);
  if (!id.ok()) {
    out.status = id.status();
    return out;
  }

  // Coordinator -> shard direction: between frames, push any raise of the
  // global cell the shard has not seen yet, and bail out the moment the
  // coordinator cancels this attempt (hedge loser / query cancelled).
  uint32_t pushed = attempt.topk_floor;
  net::ClientQueryResult result = client.AwaitDone(
      id.value(), options_.tick_ms, [&]() -> Status {
        if (ctx.cancel.cancelled()) {
          return Status::Cancelled("attempt cancelled by coordinator");
        }
        if (cell != nullptr) {
          const uint32_t floor = cell->load();
          if (floor > pushed) {
            pushed = floor;
            PEXESO_RETURN_NOT_OK(client.SendFloorUpdate(id.value(), floor));
            if (ctx.floor_sent != nullptr) {
              ctx.floor_sent->fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        return Status::OK();
      });

  if (ctx.bytes_moved != nullptr) {
    ctx.bytes_moved->fetch_add(client.bytes_sent() + client.bytes_received(),
                               std::memory_order_relaxed);
  }
  out.status = result.status;
  out.columns = std::move(result.columns);
  out.part_statuses = std::move(result.part_statuses);
  out.stats = result.stats;
  return out;
}

}  // namespace pexeso::shard
