#ifndef PEXESO_SHARD_ROUTER_H_
#define PEXESO_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "shard/shard_map.h"
#include "vec/search_stats.h"

namespace pexeso::shard {

/// Everything one shard attempt needs from the coordinator. Cheap to copy —
/// the token shares its flag and the raw pointers are borrowed counters
/// owned by the coordinator's per-query execution state.
struct AttemptContext {
  /// Per-attempt cancellation: the coordinator fires it to kill a hedge
  /// loser or to propagate the original query's cancellation.
  CancelToken cancel;
  /// The query's shared global top-k floor; null = floor sharing off (or a
  /// non-kTopK mode). Routers link it into the attempt so local raises
  /// propagate out and sibling raises propagate in.
  std::shared_ptr<TopKFloorCell> floor;
  /// Transport-level floor traffic (remote router: frames pushed/received;
  /// virtual router leaves them to the serve sessions' own counters).
  std::atomic<uint64_t>* floor_sent = nullptr;
  std::atomic<uint64_t>* floor_received = nullptr;
  /// Wire bytes this attempt moved (remote router only; 0 for virtual).
  std::atomic<uint64_t>* bytes_moved = nullptr;
};

/// What one attempt against one (shard, replica) produced.
struct ShardAttemptOutcome {
  /// The attempt's final status. OK / interrupted outcomes carry the
  /// shard's merged columns; any other status means the replica failed and
  /// the coordinator should fail over or degrade the shard.
  Status status;
  /// Shard-merged results in global column ids: the shard's local top-k for
  /// kTopK, its column-ordered results otherwise. Per-shard merging loses
  /// nothing — every global top-k member is in its own shard's local top-k.
  std::vector<JoinableColumn> columns;
  /// Parts (LOCAL indices within the shard) that reported a non-OK chunk
  /// status while the attempt itself stayed OK (lake degraded serving).
  std::vector<std::pair<size_t, Status>> part_statuses;
  /// The shard's execution counters for this attempt.
  SearchStats stats;
};

/// \brief Where shard attempts actually run. The coordinator speaks only
/// this interface; the two implementations are in-process virtual nodes
/// (shard/virtual_node.h — one ServeSession per replica over a partition
/// subset) and remote pexeso_server executors over the wire protocol
/// (shard/remote.h).
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  /// The part-to-shard assignment every attempt works under.
  virtual const ShardMap& map() const = 0;

  /// Replicas available for `shard` (>= 1).
  virtual size_t replication(size_t shard) const = 0;

  /// Runs `query` against (shard, replica), blocking until the attempt
  /// finishes or ctx.cancel fires. Called from coordinator-owned dispatch
  /// threads; implementations must tolerate concurrent attempts on
  /// different (shard, replica) pairs.
  virtual ShardAttemptOutcome RunAttempt(size_t shard, size_t replica,
                                         const JoinQuery& query,
                                         const AttemptContext& ctx) = 0;
};

}  // namespace pexeso::shard

#endif  // PEXESO_SHARD_ROUTER_H_
