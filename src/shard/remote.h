#ifndef PEXESO_SHARD_REMOTE_H_
#define PEXESO_SHARD_REMOTE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/client.h"
#include "shard/router.h"

namespace pexeso::shard {

/// \brief The networked shard backend: each shard is a pexeso_server
/// started with `--shards N --shard-of i` (serving its PartSubsetEngine
/// over the PR 8 wire protocol), and each attempt is one client connection
/// to one replica endpoint. Floor updates ride the kFloorUpdate frame both
/// ways; a hedge loser is abandoned by closing its connection (the server's
/// disconnect-cancels-query semantics clean up the far side).
class RemoteShardRouter : public ShardRouter {
 public:
  struct Endpoint {
    std::string host;
    uint16_t port = 0;
  };

  struct Options {
    /// Per-attempt connection establishment (timeout + bounded retry); the
    /// role is forced to "coordinator".
    net::ConnectOptions connect;
    /// How often the attempt wakes to push floor raises / notice its own
    /// cancellation while waiting on the shard.
    int tick_ms = 2;
    std::string tenant = "coordinator";
  };

  /// Probes every endpoint (replicas[shard] = that shard's replica list,
  /// outer index = shard id), validates the HELLO ack metadata — every
  /// replica must report shards_total == replicas.size(), shard_of ==
  /// its shard index, and an owned-part count consistent with one
  /// round-robin map — and reconstructs the global ShardMap from the
  /// owned-part sums. Every replica must be reachable at probe time (a
  /// replica set that is already down offers no failover).
  static Result<std::unique_ptr<RemoteShardRouter>> Probe(
      std::vector<std::vector<Endpoint>> replicas, Options options);
  static Result<std::unique_ptr<RemoteShardRouter>> Probe(
      std::vector<std::vector<Endpoint>> replicas) {
    return Probe(std::move(replicas), Options());
  }

  const ShardMap& map() const override { return map_; }
  size_t replication(size_t shard) const override {
    return replicas_[shard].size();
  }
  ShardAttemptOutcome RunAttempt(size_t shard, size_t replica,
                                 const JoinQuery& query,
                                 const AttemptContext& ctx) override;

  /// The served engine name reported by shard 0 (for coordinator logs).
  const std::string& shard_engine() const { return shard_engine_; }
  uint32_t dim() const { return dim_; }

 private:
  RemoteShardRouter() = default;

  ShardMap map_;
  Options options_;
  std::vector<std::vector<Endpoint>> replicas_;
  std::string shard_engine_;
  uint32_t dim_ = 0;
};

}  // namespace pexeso::shard

#endif  // PEXESO_SHARD_REMOTE_H_
