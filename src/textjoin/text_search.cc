#include "textjoin/text_search.h"

#include <algorithm>
#include <cmath>

namespace pexeso {

std::vector<JoinableColumn> TextJoinSearcher::Search(
    const std::vector<std::string>& query, const RecordMatcher& matcher,
    double t_fraction) const {
  std::vector<JoinableColumn> out;
  const uint32_t num_q = static_cast<uint32_t>(query.size());
  if (num_q == 0) return out;
  const uint32_t t_abs = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::ceil(t_fraction * num_q)));

  for (ColumnId col = 0; col < columns_->size(); ++col) {
    uint32_t matches = 0;
    uint32_t mismatches = 0;
    bool joinable = false;
    for (uint32_t q = 0; q < num_q; ++q) {
      if (matcher.MatchAny(query[q], col)) {
        if (++matches >= t_abs) {
          joinable = true;
          break;
        }
      } else {
        ++mismatches;
        if (num_q - mismatches < t_abs) break;  // Lemma 7 logic
      }
    }
    if (joinable) {
      JoinableColumn jc;
      jc.column = col;
      jc.match_count = matches;
      jc.joinability = static_cast<double>(matches) / num_q;
      out.push_back(jc);
    }
  }
  return out;
}

double TextJoinSearcher::MatchRatio(const std::vector<std::string>& query,
                                    const RecordMatcher& matcher,
                                    const std::vector<ColumnId>& columns) const {
  if (query.empty() || columns.empty()) return 0.0;
  size_t probes = 0, hits = 0;
  for (ColumnId col : columns) {
    for (const auto& q : query) {
      ++probes;
      if (matcher.MatchAny(q, col)) ++hits;
    }
  }
  return probes == 0 ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(probes);
}

}  // namespace pexeso
