#ifndef PEXESO_TEXTJOIN_MATCHERS_H_
#define PEXESO_TEXTJOIN_MATCHERS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "vec/vector_store.h"

namespace pexeso {

/// \brief A record-level string matching predicate — the unit the Table IV /
/// Table V competitors are built from. A matcher may pre-index the
/// repository columns (PrepareColumns) to answer "does any record of column
/// S match q" faster than a linear scan.
class RecordMatcher {
 public:
  virtual ~RecordMatcher() = default;

  /// True if records a and b match under this predicate.
  virtual bool MatchRecords(const std::string& a,
                            const std::string& b) const = 0;

  /// Optional pre-indexing over the repository columns (borrowed pointer,
  /// must outlive the matcher).
  virtual void PrepareColumns(
      const std::vector<std::vector<std::string>>* columns) {
    columns_ = columns;
  }

  /// True if any record of column `col` matches `q`. Default: linear scan.
  virtual bool MatchAny(const std::string& q, ColumnId col) const;

  virtual std::string Name() const = 0;

 protected:
  const std::vector<std::vector<std::string>>* columns_ = nullptr;
};

/// \brief Exact string equality after trimming + lower-casing (the paper's
/// equi-join [37] applied record-wise). Pre-indexes columns as hash sets.
class EquiMatcher : public RecordMatcher {
 public:
  bool MatchRecords(const std::string& a, const std::string& b) const override;
  void PrepareColumns(
      const std::vector<std::vector<std::string>>* columns) override;
  bool MatchAny(const std::string& q, ColumnId col) const override;
  std::string Name() const override { return "equi"; }

 private:
  std::vector<std::unordered_set<std::string>> sets_;
};

/// \brief Jaccard similarity over lower-cased word-token sets >= threshold.
///
/// PrepareColumns builds a token inverted index per column; MatchAny then
/// probes only the records sharing at least one token with the query record
/// (for threshold > 0 a match must share a token, so the filter is exact).
class JaccardMatcher : public RecordMatcher {
 public:
  explicit JaccardMatcher(double threshold) : threshold_(threshold) {}
  bool MatchRecords(const std::string& a, const std::string& b) const override;
  void PrepareColumns(
      const std::vector<std::vector<std::string>>* columns) override;
  bool MatchAny(const std::string& q, ColumnId col) const override;
  std::string Name() const override { return "jaccard"; }

  static double Similarity(const std::string& a, const std::string& b);

 private:
  double threshold_;
  /// Per column: token hash -> record indices containing the token.
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> token_index_;
};

/// \brief Normalized edit similarity 1 - ED(a,b)/max(|a|,|b|) >= threshold.
class EditMatcher : public RecordMatcher {
 public:
  explicit EditMatcher(double threshold) : threshold_(threshold) {}
  bool MatchRecords(const std::string& a, const std::string& b) const override;
  std::string Name() const override { return "edit"; }

  static double Similarity(const std::string& a, const std::string& b);

 private:
  double threshold_;
};

/// \brief Fuzzy-join predicate after Wang et al. [32]: tokens fuzzy-match
/// when their edit similarity >= token_threshold; records match when the
/// greedy fuzzy-token-overlap Jaccard >= record_threshold. Combines
/// token-level and character-level signals, as the paper describes.
class FuzzyMatcher : public RecordMatcher {
 public:
  FuzzyMatcher(double token_threshold, double record_threshold)
      : token_threshold_(token_threshold), record_threshold_(record_threshold) {}
  bool MatchRecords(const std::string& a, const std::string& b) const override;
  std::string Name() const override { return "fuzzy"; }

  static double Similarity(const std::string& a, const std::string& b,
                           double token_threshold);

 private:
  double token_threshold_;
  double record_threshold_;
};

/// \brief TF-IDF cosine similarity over word tokens >= threshold, with IDF
/// computed over the repository columns (Cohen's WHIRL-style textual join
/// [6]). Pre-computes per-record normalized tf-idf maps.
class TfIdfMatcher : public RecordMatcher {
 public:
  explicit TfIdfMatcher(double threshold) : threshold_(threshold) {}
  void PrepareColumns(
      const std::vector<std::vector<std::string>>* columns) override;
  bool MatchRecords(const std::string& a, const std::string& b) const override;
  bool MatchAny(const std::string& q, ColumnId col) const override;
  std::string Name() const override { return "tfidf"; }

 private:
  using SparseVec = std::vector<std::pair<uint64_t, float>>;  // sorted by key
  SparseVec Vectorize(const std::string& s) const;
  static double Cosine(const SparseVec& a, const SparseVec& b);

  double threshold_;
  std::unordered_map<uint64_t, double> idf_;
  size_t num_docs_ = 0;
  std::vector<std::vector<SparseVec>> column_vecs_;
};

}  // namespace pexeso

#endif  // PEXESO_TEXTJOIN_MATCHERS_H_
