#ifndef PEXESO_TEXTJOIN_TEXT_SEARCH_H_
#define PEXESO_TEXTJOIN_TEXT_SEARCH_H_

#include <string>
#include <vector>

#include "core/join_result.h"
#include "textjoin/matchers.h"

namespace pexeso {

/// \brief Joinable-table search over raw string columns with a pluggable
/// record matcher: the workflow shared by the equi / Jaccard / edit / fuzzy /
/// TF-IDF competitors of Tables IV and V. Joinability is the paper's
/// jnd(Q,S) with vector matching replaced by the matcher's predicate; the
/// same joinable-skip and Lemma 7 early terminations apply.
class TextJoinSearcher {
 public:
  /// `columns` is borrowed: raw string values per repository column.
  explicit TextJoinSearcher(
      const std::vector<std::vector<std::string>>* columns)
      : columns_(columns) {}

  /// Finds columns whose joinability with `query` reaches `t_fraction`.
  /// The matcher must already be PrepareColumns()'d with the same columns.
  std::vector<JoinableColumn> Search(const std::vector<std::string>& query,
                                     const RecordMatcher& matcher,
                                     double t_fraction) const;

  /// Record-level match ratio: the fraction of (query record, column)
  /// probes that found a match among the given columns — the "# Match"
  /// statistic of Table V.
  double MatchRatio(const std::vector<std::string>& query,
                    const RecordMatcher& matcher,
                    const std::vector<ColumnId>& columns) const;

 private:
  const std::vector<std::vector<std::string>>* columns_;
};

}  // namespace pexeso

#endif  // PEXESO_TEXTJOIN_TEXT_SEARCH_H_
