#include "textjoin/matchers.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/str_util.h"

namespace pexeso {

bool RecordMatcher::MatchAny(const std::string& q, ColumnId col) const {
  PEXESO_CHECK(columns_ != nullptr);
  for (const auto& s : (*columns_)[col]) {
    if (MatchRecords(q, s)) return true;
  }
  return false;
}

// ---------------------------------------------------------------- Equi ----

bool EquiMatcher::MatchRecords(const std::string& a,
                               const std::string& b) const {
  return ToLower(Trim(a)) == ToLower(Trim(b));
}

void EquiMatcher::PrepareColumns(
    const std::vector<std::vector<std::string>>* columns) {
  RecordMatcher::PrepareColumns(columns);
  sets_.clear();
  sets_.reserve(columns->size());
  for (const auto& col : *columns) {
    std::unordered_set<std::string> s;
    s.reserve(col.size() * 2);
    for (const auto& v : col) s.insert(ToLower(Trim(v)));
    sets_.push_back(std::move(s));
  }
}

bool EquiMatcher::MatchAny(const std::string& q, ColumnId col) const {
  return sets_[col].count(ToLower(Trim(q))) > 0;
}

// ------------------------------------------------------------- Jaccard ----

double JaccardMatcher::Similarity(const std::string& a, const std::string& b) {
  auto ta = WordTokens(a);
  auto tb = WordTokens(b);
  if (ta.empty() && tb.empty()) return 1.0;
  std::unordered_set<std::string> sa(ta.begin(), ta.end());
  std::unordered_set<std::string> sb(tb.begin(), tb.end());
  size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.count(t)) ++inter;
  }
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

bool JaccardMatcher::MatchRecords(const std::string& a,
                                  const std::string& b) const {
  return Similarity(a, b) >= threshold_;
}

void JaccardMatcher::PrepareColumns(
    const std::vector<std::vector<std::string>>* columns) {
  RecordMatcher::PrepareColumns(columns);
  token_index_.clear();
  token_index_.resize(columns->size());
  for (size_t c = 0; c < columns->size(); ++c) {
    const auto& col = (*columns)[c];
    for (uint32_t r = 0; r < col.size(); ++r) {
      auto tokens = WordTokens(col[r]);
      std::unordered_set<uint64_t> uniq;
      for (const auto& t : tokens) uniq.insert(Fnv1a64(t.data(), t.size()));
      for (uint64_t h : uniq) token_index_[c][h].push_back(r);
    }
  }
}

bool JaccardMatcher::MatchAny(const std::string& q, ColumnId col) const {
  if (token_index_.empty() || threshold_ <= 0.0) {
    return RecordMatcher::MatchAny(q, col);
  }
  const auto& index = token_index_[col];
  const auto& records = (*columns_)[col];
  auto q_tokens = WordTokens(q);
  if (q_tokens.empty()) {
    // Jaccard(empty, empty) = 1: only empty records can match.
    for (const auto& r : records) {
      if (WordTokens(r).empty()) return true;
    }
    return false;
  }
  // Only records sharing >= 1 token can reach a positive Jaccard.
  std::unordered_set<uint32_t> candidates;
  std::unordered_set<uint64_t> seen;
  for (const auto& t : q_tokens) {
    const uint64_t h = Fnv1a64(t.data(), t.size());
    if (!seen.insert(h).second) continue;
    auto it = index.find(h);
    if (it == index.end()) continue;
    for (uint32_t r : it->second) candidates.insert(r);
  }
  for (uint32_t r : candidates) {
    if (MatchRecords(q, records[r])) return true;
  }
  return false;
}

// ---------------------------------------------------------------- Edit ----

double EditMatcher::Similarity(const std::string& a, const std::string& b) {
  const std::string la = ToLower(Trim(a));
  const std::string lb = ToLower(Trim(b));
  const size_t maxlen = std::max(la.size(), lb.size());
  if (maxlen == 0) return 1.0;
  const int d = EditDistance(la, lb);
  return 1.0 - static_cast<double>(d) / static_cast<double>(maxlen);
}

bool EditMatcher::MatchRecords(const std::string& a,
                               const std::string& b) const {
  // Early-exit bound: a similarity >= t needs ED <= (1-t) * maxlen.
  const std::string la = ToLower(Trim(a));
  const std::string lb = ToLower(Trim(b));
  const size_t maxlen = std::max(la.size(), lb.size());
  if (maxlen == 0) return true;
  const int bound = static_cast<int>((1.0 - threshold_) * maxlen);
  return EditDistance(la, lb, bound) <= bound;
}

// --------------------------------------------------------------- Fuzzy ----

double FuzzyMatcher::Similarity(const std::string& a, const std::string& b,
                                double token_threshold) {
  auto ta = WordTokens(a);
  auto tb = WordTokens(b);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  // Greedy fuzzy token matching: each token of `a` grabs its best unmatched
  // fuzzy partner in `b` (edit similarity >= token_threshold).
  std::vector<bool> used(tb.size(), false);
  size_t matched = 0;
  for (const auto& x : ta) {
    double best = token_threshold;
    int best_j = -1;
    for (size_t j = 0; j < tb.size(); ++j) {
      if (used[j]) continue;
      const double sim = EditMatcher::Similarity(x, tb[j]);
      if (sim >= best) {
        best = sim;
        best_j = static_cast<int>(j);
      }
    }
    if (best_j >= 0) {
      used[best_j] = true;
      ++matched;
    }
  }
  const size_t uni = ta.size() + tb.size() - matched;
  return uni == 0 ? 0.0
                  : static_cast<double>(matched) / static_cast<double>(uni);
}

bool FuzzyMatcher::MatchRecords(const std::string& a,
                                const std::string& b) const {
  return Similarity(a, b, token_threshold_) >= record_threshold_;
}

// --------------------------------------------------------------- TF-IDF ----

void TfIdfMatcher::PrepareColumns(
    const std::vector<std::vector<std::string>>* columns) {
  RecordMatcher::PrepareColumns(columns);
  // Document frequency over all repository records.
  std::unordered_map<uint64_t, size_t> df;
  num_docs_ = 0;
  for (const auto& col : *columns) {
    for (const auto& rec : col) {
      ++num_docs_;
      auto tokens = WordTokens(rec);
      std::unordered_set<uint64_t> uniq;
      for (const auto& t : tokens) uniq.insert(Fnv1a64(t.data(), t.size()));
      for (uint64_t h : uniq) ++df[h];
    }
  }
  idf_.clear();
  for (const auto& [h, d] : df) {
    idf_[h] = std::log(1.0 + static_cast<double>(num_docs_) /
                                 static_cast<double>(d));
  }
  // Pre-vectorize every repository record.
  column_vecs_.clear();
  column_vecs_.reserve(columns->size());
  for (const auto& col : *columns) {
    std::vector<SparseVec> vecs;
    vecs.reserve(col.size());
    for (const auto& rec : col) vecs.push_back(Vectorize(rec));
    column_vecs_.push_back(std::move(vecs));
  }
}

TfIdfMatcher::SparseVec TfIdfMatcher::Vectorize(const std::string& s) const {
  std::unordered_map<uint64_t, float> tf;
  for (const auto& t : WordTokens(s)) {
    ++tf[Fnv1a64(t.data(), t.size())];
  }
  SparseVec out;
  out.reserve(tf.size());
  double norm2 = 0.0;
  for (auto& [h, f] : tf) {
    auto it = idf_.find(h);
    // Unknown tokens get the max idf (they occur in no repository record).
    const double idf =
        it != idf_.end() ? it->second : std::log(1.0 + num_docs_);
    const double w = f * idf;
    out.emplace_back(h, static_cast<float>(w));
    norm2 += w * w;
  }
  if (norm2 > 0) {
    const float inv = static_cast<float>(1.0 / std::sqrt(norm2));
    for (auto& [h, w] : out) w *= inv;
  }
  std::sort(out.begin(), out.end());
  return out;
}

double TfIdfMatcher::Cosine(const SparseVec& a, const SparseVec& b) {
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      ++i;
    } else if (a[i].first > b[j].first) {
      ++j;
    } else {
      dot += static_cast<double>(a[i].second) * b[j].second;
      ++i;
      ++j;
    }
  }
  return dot;
}

bool TfIdfMatcher::MatchRecords(const std::string& a,
                                const std::string& b) const {
  return Cosine(Vectorize(a), Vectorize(b)) >= threshold_;
}

bool TfIdfMatcher::MatchAny(const std::string& q, ColumnId col) const {
  const SparseVec qv = Vectorize(q);
  for (const auto& rv : column_vecs_[col]) {
    if (Cosine(qv, rv) >= threshold_) return true;
  }
  return false;
}

}  // namespace pexeso
