#include "vec/kernels.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "vec/kernels_arch.h"

namespace pexeso {

namespace simd {
namespace {

// ------------------------------------------------------------ scalar tier
//
// Written to auto-vectorize under -O2/-O3: float accumulation in four
// independent lanes, no cross-iteration dependence, contiguous loads. Even
// without SIMD codegen this beats the virtual Metric::Dist path by skipping
// the per-pair float->double widening and the indirect call.

double ScalarSqL2(const float* a, const float* b, uint32_t dim) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  uint32_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc0 += d * d;
  }
  return static_cast<double>((acc0 + acc1) + (acc2 + acc3));
}

void ScalarSqL2Many(const float* q, const float* base, size_t n, uint32_t dim,
                    double* out) {
  for (size_t r = 0; r < n; ++r) {
    out[r] = ScalarSqL2(q, base + r * dim, dim);
  }
}

double ScalarDot(const float* a, const float* b, uint32_t dim) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  uint32_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < dim; ++i) acc0 += a[i] * b[i];
  return static_cast<double>((acc0 + acc1) + (acc2 + acc3));
}

void ScalarDotMany(const float* q, const float* base, size_t n, uint32_t dim,
                   double* out) {
  for (size_t r = 0; r < n; ++r) {
    out[r] = ScalarDot(q, base + r * dim, dim);
  }
}

double ScalarCosCore(const float* a, const float* b, uint32_t dim,
                     double* na2, double* nb2) {
  float dot = 0.0f, na = 0.0f, nb = 0.0f;
  for (uint32_t i = 0; i < dim; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  *na2 = static_cast<double>(na);
  *nb2 = static_cast<double>(nb);
  return static_cast<double>(dot);
}

double ScalarL1(const float* a, const float* b, uint32_t dim) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  uint32_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += std::fabs(a[i] - b[i]);
    acc1 += std::fabs(a[i + 1] - b[i + 1]);
    acc2 += std::fabs(a[i + 2] - b[i + 2]);
    acc3 += std::fabs(a[i + 3] - b[i + 3]);
  }
  for (; i < dim; ++i) acc0 += std::fabs(a[i] - b[i]);
  return static_cast<double>((acc0 + acc1) + (acc2 + acc3));
}

void ScalarL1Many(const float* q, const float* base, size_t n, uint32_t dim,
                  double* out) {
  for (size_t r = 0; r < n; ++r) {
    out[r] = ScalarL1(q, base + r * dim, dim);
  }
}

void ScalarNorms(const float* base, size_t n, uint32_t dim, float* out) {
  for (size_t r = 0; r < n; ++r) {
    const float* v = base + r * dim;
    out[r] = static_cast<float>(std::sqrt(ScalarDot(v, v, dim)));
  }
}

// Tiles process four query rows per pass over a base row, so each base row
// is read from memory once per row-block instead of once per query row.

void ScalarSqL2Tile(const float* qs, size_t nq, const float* base, size_t nv,
                    uint32_t dim, double* out) {
  size_t r = 0;
  for (; r + 4 <= nq; r += 4) {
    const float* q0 = qs + (r + 0) * dim;
    const float* q1 = qs + (r + 1) * dim;
    const float* q2 = qs + (r + 2) * dim;
    const float* q3 = qs + (r + 3) * dim;
    for (size_t c = 0; c < nv; ++c) {
      const float* v = base + c * dim;
      float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
      for (uint32_t i = 0; i < dim; ++i) {
        const float x = v[i];
        const float d0 = q0[i] - x;
        const float d1 = q1[i] - x;
        const float d2 = q2[i] - x;
        const float d3 = q3[i] - x;
        a0 += d0 * d0;
        a1 += d1 * d1;
        a2 += d2 * d2;
        a3 += d3 * d3;
      }
      out[(r + 0) * nv + c] = static_cast<double>(a0);
      out[(r + 1) * nv + c] = static_cast<double>(a1);
      out[(r + 2) * nv + c] = static_cast<double>(a2);
      out[(r + 3) * nv + c] = static_cast<double>(a3);
    }
  }
  for (; r < nq; ++r) {
    ScalarSqL2Many(qs + r * dim, base, nv, dim, out + r * nv);
  }
}

void ScalarDotTile(const float* qs, size_t nq, const float* base, size_t nv,
                   uint32_t dim, double* out) {
  size_t r = 0;
  for (; r + 4 <= nq; r += 4) {
    const float* q0 = qs + (r + 0) * dim;
    const float* q1 = qs + (r + 1) * dim;
    const float* q2 = qs + (r + 2) * dim;
    const float* q3 = qs + (r + 3) * dim;
    for (size_t c = 0; c < nv; ++c) {
      const float* v = base + c * dim;
      float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
      for (uint32_t i = 0; i < dim; ++i) {
        const float x = v[i];
        a0 += q0[i] * x;
        a1 += q1[i] * x;
        a2 += q2[i] * x;
        a3 += q3[i] * x;
      }
      out[(r + 0) * nv + c] = static_cast<double>(a0);
      out[(r + 1) * nv + c] = static_cast<double>(a1);
      out[(r + 2) * nv + c] = static_cast<double>(a2);
      out[(r + 3) * nv + c] = static_cast<double>(a3);
    }
  }
  for (; r < nq; ++r) {
    ScalarDotMany(qs + r * dim, base, nv, dim, out + r * nv);
  }
}

void ScalarL1Tile(const float* qs, size_t nq, const float* base, size_t nv,
                  uint32_t dim, double* out) {
  size_t r = 0;
  for (; r + 4 <= nq; r += 4) {
    const float* q0 = qs + (r + 0) * dim;
    const float* q1 = qs + (r + 1) * dim;
    const float* q2 = qs + (r + 2) * dim;
    const float* q3 = qs + (r + 3) * dim;
    for (size_t c = 0; c < nv; ++c) {
      const float* v = base + c * dim;
      float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
      for (uint32_t i = 0; i < dim; ++i) {
        const float x = v[i];
        a0 += std::fabs(q0[i] - x);
        a1 += std::fabs(q1[i] - x);
        a2 += std::fabs(q2[i] - x);
        a3 += std::fabs(q3[i] - x);
      }
      out[(r + 0) * nv + c] = static_cast<double>(a0);
      out[(r + 1) * nv + c] = static_cast<double>(a1);
      out[(r + 2) * nv + c] = static_cast<double>(a2);
      out[(r + 3) * nv + c] = static_cast<double>(a3);
    }
  }
  for (; r < nq; ++r) {
    ScalarL1Many(qs + r * dim, base, nv, dim, out + r * nv);
  }
}

// int8 code tiles: plain int accumulation (widening to int32 per element);
// exact by construction, so no lane-structure concerns — only speed.

void ScalarI8SqTile(const int8_t* qs, size_t nq, const int8_t* base,
                    size_t nv, uint32_t dim, int32_t* out) {
  for (size_t r = 0; r < nq; ++r) {
    const int8_t* q = qs + r * dim;
    for (size_t c = 0; c < nv; ++c) {
      const int8_t* v = base + c * dim;
      int32_t acc = 0;
      for (uint32_t i = 0; i < dim; ++i) {
        const int32_t d = static_cast<int32_t>(q[i]) - v[i];
        acc += d * d;
      }
      out[r * nv + c] = acc;
    }
  }
}

void ScalarI8L1Tile(const int8_t* qs, size_t nq, const int8_t* base,
                    size_t nv, uint32_t dim, int32_t* out) {
  for (size_t r = 0; r < nq; ++r) {
    const int8_t* q = qs + r * dim;
    for (size_t c = 0; c < nv; ++c) {
      const int8_t* v = base + c * dim;
      int32_t acc = 0;
      for (uint32_t i = 0; i < dim; ++i) {
        const int32_t d = static_cast<int32_t>(q[i]) - v[i];
        acc += d < 0 ? -d : d;
      }
      out[r * nv + c] = acc;
    }
  }
}

constexpr Ops kScalarOps = {
    SimdLevel::kScalar, &ScalarSqL2,     &ScalarSqL2Many,
    &ScalarDot,         &ScalarDotMany,  &ScalarCosCore,
    &ScalarL1,          &ScalarL1Many,   &ScalarNorms,
    &ScalarSqL2Tile,    &ScalarDotTile,  &ScalarL1Tile,
    &ScalarI8SqTile,    &ScalarI8L1Tile,
};

// ------------------------------------------------------------ dispatch

/// Case-insensitive level name; false when `s` names no known level, so an
/// unrecognized override falls back to detection instead of silently
/// pinning the scalar tier.
bool ParseLevelName(const char* s, SimdLevel* out) {
  std::string lower(s);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "scalar") *out = SimdLevel::kScalar;
  else if (lower == "avx2") *out = SimdLevel::kAvx2;
  else if (lower == "neon") *out = SimdLevel::kNeon;
  else return false;
  return true;
}

SimdLevel DetectLevel() {
  if (const char* env = std::getenv("PEXESO_SIMD")) {
    SimdLevel wanted;
    if (ParseLevelName(env, &wanted) && SimdLevelAvailable(wanted)) {
      return wanted;
    }
    // Unknown or unavailable override: fall through to detection so a
    // pinned setting stays portable across machines.
  }
#if defined(PEXESO_HAVE_AVX2_KERNELS)
  if (SimdLevelAvailable(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
#endif
#if defined(PEXESO_HAVE_NEON_KERNELS)
  if (SimdLevelAvailable(SimdLevel::kNeon)) return SimdLevel::kNeon;
#endif
  return SimdLevel::kScalar;
}

}  // namespace

const Ops& ScalarOps() { return kScalarOps; }

const Ops* OpsFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return &kScalarOps;
    case SimdLevel::kAvx2:
#if defined(PEXESO_HAVE_AVX2_KERNELS)
      if (SimdLevelAvailable(SimdLevel::kAvx2)) return &Avx2Ops();
#endif
      return nullptr;
    case SimdLevel::kNeon:
#if defined(PEXESO_HAVE_NEON_KERNELS)
      if (SimdLevelAvailable(SimdLevel::kNeon)) return &NeonOps();
#endif
      return nullptr;
  }
  return nullptr;
}

const Ops& ActiveOps() {
  static const Ops* active = OpsFor(DetectLevel());
  return *active;
}

}  // namespace simd

SimdLevel ActiveSimdLevel() { return simd::ActiveOps().level; }

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

bool SimdLevelAvailable(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
#if defined(PEXESO_HAVE_AVX2_KERNELS)
      return simd::Avx2CpuSupported();
#else
      return false;
#endif
    case SimdLevel::kNeon:
#if defined(PEXESO_HAVE_NEON_KERNELS)
      return true;  // NEON is baseline on AArch64
#else
      return false;
#endif
  }
  return false;
}

void ComputeNorms(const float* base, size_t n, uint32_t dim, float* out) {
  simd::ActiveOps().norms(base, n, dim, out);
}

void KernelSet::DistMany(const float* q, const float* base, size_t n,
                         uint32_t dim, double* out) const {
  switch (kind) {
    case MetricKind::kL2:
      ops->sq_l2_many(q, base, n, dim, out);
      for (size_t r = 0; r < n; ++r) out[r] = std::sqrt(out[r]);
      return;
    case MetricKind::kCosine:
      for (size_t r = 0; r < n; ++r) {
        double na2 = 0.0, nb2 = 0.0;
        const double dot = ops->cos_core(q, base + r * dim, dim, &na2, &nb2);
        out[r] = std::sqrt(CosCmpFromCore(dot, na2, nb2));
      }
      return;
    case MetricKind::kL1:
      ops->l1_many(q, base, n, dim, out);
      return;
  }
}

void KernelSet::DistTile(const float* qs, size_t nq, const float* base,
                         size_t nv, uint32_t dim, double* out) const {
  if (kind == MetricKind::kCosine) {
    // Compute both sides' norms once per tile, then share the normed path.
    std::vector<float> qn32(nq), bn(nv);
    ops->norms(qs, nq, dim, qn32.data());
    ops->norms(base, nv, dim, bn.data());
    std::vector<double> qn(nq);
    for (size_t r = 0; r < nq; ++r) qn[r] = static_cast<double>(qn32[r]);
    DistTileNormed(qs, qn.data(), base, bn.data(), nq, nv, dim, out);
    return;
  }
  CmpTileNormed(qs, nullptr, base, nullptr, nq, nv, dim, out);
  if (kind == MetricKind::kL2) {
    for (size_t i = 0; i < nq * nv; ++i) out[i] = std::sqrt(out[i]);
  }
}

void KernelSet::DistTileNormed(const float* qs, const double* qnorms,
                               const float* base, const float* base_norms,
                               size_t nq, size_t nv, uint32_t dim,
                               double* out) const {
  CmpTileNormed(qs, qnorms, base, base_norms, nq, nv, dim, out);
  if (kind != MetricKind::kL1) {
    for (size_t i = 0; i < nq * nv; ++i) out[i] = std::sqrt(out[i]);
  }
}

void KernelSet::CmpTileNormed(const float* qs, const double* qnorms,
                              const float* base, const float* base_norms,
                              size_t nq, size_t nv, uint32_t dim,
                              double* out) const {
  switch (kind) {
    case MetricKind::kL2:
      ops->sq_l2_tile(qs, nq, base, nv, dim, out);
      return;
    case MetricKind::kCosine:
      ops->dot_tile(qs, nq, base, nv, dim, out);
      for (size_t r = 0; r < nq; ++r) {
        const double qn = qnorms[r];
        double* row = out + r * nv;
        for (size_t c = 0; c < nv; ++c) {
          const double denom = qn * static_cast<double>(base_norms[c]);
          if (denom <= 0.0) {
            row[c] = 2.0;  // zero vector: dist^2 = 2 (Cmp1Normed semantics)
            continue;
          }
          double cosv = row[c] / denom;
          if (cosv > 1.0) cosv = 1.0;
          if (cosv < -1.0) cosv = -1.0;
          row[c] = 2.0 - 2.0 * cosv;
        }
      }
      return;
    case MetricKind::kL1:
      ops->l1_tile(qs, nq, base, nv, dim, out);
      return;
  }
}

void KernelSet::DistManyNormed(const float* q, double qnorm, const float* base,
                               const float* base_norms, size_t n, uint32_t dim,
                               double* out) const {
  if (kind != MetricKind::kCosine) {
    DistMany(q, base, n, dim, out);
    return;
  }
  ops->dot_many(q, base, n, dim, out);
  for (size_t r = 0; r < n; ++r) {
    const double denom = qnorm * static_cast<double>(base_norms[r]);
    if (denom <= 0.0) {
      out[r] = std::sqrt(2.0);
      continue;
    }
    double c = out[r] / denom;
    if (c > 1.0) c = 1.0;
    if (c < -1.0) c = -1.0;
    out[r] = std::sqrt(2.0 - 2.0 * c);
  }
}

namespace {

const KernelSet* MakeTable(SimdLevel level) {
  const simd::Ops* ops = simd::OpsFor(level);
  if (ops == nullptr) return nullptr;
  static KernelSet tables[3][3];  // [level][kind]
  KernelSet* row = tables[static_cast<uint8_t>(level)];
  row[0] = KernelSet{MetricKind::kL2, ops};
  row[1] = KernelSet{MetricKind::kCosine, ops};
  row[2] = KernelSet{MetricKind::kL1, ops};
  return row;
}

}  // namespace

const KernelSet* GetKernels(MetricKind kind, SimdLevel level) {
  static const KernelSet* rows[3] = {
      MakeTable(SimdLevel::kScalar),
      MakeTable(SimdLevel::kAvx2),
      MakeTable(SimdLevel::kNeon),
  };
  const KernelSet* row = rows[static_cast<uint8_t>(level)];
  return row == nullptr ? nullptr : row + static_cast<uint8_t>(kind);
}

const KernelSet* GetKernels(MetricKind kind) {
  return GetKernels(kind, ActiveSimdLevel());
}

}  // namespace pexeso
