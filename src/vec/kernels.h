#ifndef PEXESO_VEC_KERNELS_H_
#define PEXESO_VEC_KERNELS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "vec/metric.h"

namespace pexeso {

/// \brief SIMD instruction-set tiers the distance kernels are compiled for.
///
/// The active level is detected once at startup (AVX2+FMA on x86-64, NEON on
/// AArch64, scalar everywhere else) and can be overridden with the
/// PEXESO_SIMD environment variable ("scalar", "avx2", "neon") — an
/// unavailable override silently falls back to detection, so a pinned CI
/// setting stays portable across machines.
enum class SimdLevel : uint8_t { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Level resolved at startup (detection + PEXESO_SIMD override).
SimdLevel ActiveSimdLevel();

/// "scalar" / "avx2" / "neon".
const char* SimdLevelName(SimdLevel level);

/// Whether `level` can run on this CPU ("scalar" always can).
bool SimdLevelAvailable(SimdLevel level);

namespace simd {

/// \brief The batched arithmetic primitives one SIMD tier provides. Every
/// distance kernel is composed from these; metric-specific glue (sqrt,
/// cosine clamping, threshold transforms) lives in KernelSet and is shared
/// across tiers, so each tier only implements straight-line accumulation
/// loops.
///
/// Accumulation is float-lane (scalar tier: plain double), so results can
/// differ from the double-accumulating Metric::Dist oracle in the last few
/// ulps; tests/kernel_test.cc bounds the divergence.
struct Ops {
  SimdLevel level;
  /// sum_i (a[i] - b[i])^2
  double (*sq_l2)(const float* a, const float* b, uint32_t dim);
  /// out[r] = sum_i (q[i] - base[r*dim + i])^2
  void (*sq_l2_many)(const float* q, const float* base, size_t n,
                     uint32_t dim, double* out);
  /// dot(a, b)
  double (*dot)(const float* a, const float* b, uint32_t dim);
  /// out[r] = dot(q, base_r)
  void (*dot_many)(const float* q, const float* base, size_t n, uint32_t dim,
                   double* out);
  /// Fused single pass: returns dot(a, b), fills *na2 = dot(a,a) and
  /// *nb2 = dot(b,b). What cosine needs when no norms are precomputed.
  double (*cos_core)(const float* a, const float* b, uint32_t dim,
                     double* na2, double* nb2);
  /// sum_i |a[i] - b[i]|
  double (*l1)(const float* a, const float* b, uint32_t dim);
  /// out[r] = sum_i |q[i] - base[r*dim + i]|
  void (*l1_many)(const float* q, const float* base, size_t n, uint32_t dim,
                  double* out);
  /// out[r] = ||base_r||_2
  void (*norms)(const float* base, size_t n, uint32_t dim, float* out);

  // Many-to-many tiles: nq packed query rows against nv packed base rows,
  // out[r * nv + c] = f(qs_r, base_c). Row-blocked so each base row is
  // streamed from memory once per block of query rows instead of once per
  // row — the arithmetic-intensity win the verification pipeline's tiled
  // stage is built on.

  /// out[r*nv + c] = sum_i (qs[r*dim+i] - base[c*dim+i])^2
  void (*sq_l2_tile)(const float* qs, size_t nq, const float* base, size_t nv,
                     uint32_t dim, double* out);
  /// out[r*nv + c] = dot(qs_r, base_c)
  void (*dot_tile)(const float* qs, size_t nq, const float* base, size_t nv,
                   uint32_t dim, double* out);
  /// out[r*nv + c] = sum_i |qs[r*dim+i] - base[c*dim+i]|
  void (*l1_tile)(const float* qs, size_t nq, const float* base, size_t nv,
                  uint32_t dim, double* out);

  // int8 tiles for the quantized pre-filter tier: integer code-difference
  // sums over packed int8 rows. Affine per-column offsets cancel in the
  // differences, so these sums are exact (int32) and convert to quantized
  // distances with one multiply (src/vec/quant.h). |Δcode| <= 254, so
  // the squared sum fits int32 for any dim the pre-filter accepts.

  /// out[r*nv + c] = sum_i (qs[r*dim+i] - base[c*dim+i])^2 over int8 codes
  void (*i8_sq_tile)(const int8_t* qs, size_t nq, const int8_t* base,
                     size_t nv, uint32_t dim, int32_t* out);
  /// out[r*nv + c] = sum_i |qs[r*dim+i] - base[c*dim+i]| over int8 codes
  void (*i8_l1_tile)(const int8_t* qs, size_t nq, const int8_t* base,
                     size_t nv, uint32_t dim, int32_t* out);
};

/// The portable tier (always available; also the reference in tests).
const Ops& ScalarOps();

/// The tier matching ActiveSimdLevel().
const Ops& ActiveOps();

/// Tier by level, or nullptr when this build/CPU cannot run it.
const Ops* OpsFor(SimdLevel level);

}  // namespace simd

/// Per-vector L2 norms with the active tier: out[r] = ||base_r||.
void ComputeNorms(const float* base, size_t n, uint32_t dim, float* out);

/// \brief Devirtualized, batched distance kernels for one metric.
///
/// A KernelSet binds a metric kind to one SIMD tier's primitives. Search
/// hot paths fetch it once per search (Metric::kernels()) and then run
/// branch-predictable direct calls instead of a virtual Metric::Dist per
/// pair. Two value spaces are exposed:
///
///  - the *distance* space (Dist1 / DistMany), equal to Metric::Dist up to
///    float rounding — for code that needs true distances (pivot mapping,
///    cover-tree bounds, EPT tables);
///  - the *comparison* space (Cmp1 / Cmp1Normed vs CmpBound(tau)), a
///    monotone surrogate that skips the per-pair sqrt where the metric
///    allows it: squared distance for L2 and cosine, identity for L1.
///    `Cmp1(a,b) <= CmpBound(tau)`  <=>  `Dist1(a,b) <= tau`.
///
/// The *Normed entry points take precomputed L2 norms (VectorStore::
/// EnsureNorms) so cosine stops recomputing both norms for every pair; L2
/// and L1 ignore the norm arguments entirely.
struct KernelSet {
  MetricKind kind;
  const simd::Ops* ops;

  SimdLevel level() const { return ops->level; }

  /// True metric distance of one pair.
  double Dist1(const float* a, const float* b, uint32_t dim) const {
    switch (kind) {
      case MetricKind::kL2:
        return std::sqrt(ops->sq_l2(a, b, dim));
      case MetricKind::kCosine: {
        double na2 = 0.0, nb2 = 0.0;
        const double dot = ops->cos_core(a, b, dim, &na2, &nb2);
        return std::sqrt(CosCmpFromCore(dot, na2, nb2));
      }
      case MetricKind::kL1:
        return ops->l1(a, b, dim);
    }
    return 0.0;
  }

  /// out[r] = Dist1(q, base_r) for n packed base rows.
  void DistMany(const float* q, const float* base, size_t n, uint32_t dim,
                double* out) const;

  /// DistMany with precomputed norms (`qnorm` = ||q||, base_norms[r] =
  /// ||base_r||); only cosine reads them.
  void DistManyNormed(const float* q, double qnorm, const float* base,
                      const float* base_norms, size_t n, uint32_t dim,
                      double* out) const;

  /// Many-to-many true-distance tile: out[r*nv + c] = Dist1(qs_r, base_c)
  /// for nq packed query rows against nv packed base rows. Cosine computes
  /// both norms internally; prefer DistTileNormed when they are cached.
  void DistTile(const float* qs, size_t nq, const float* base, size_t nv,
                uint32_t dim, double* out) const;

  /// DistTile with precomputed norms (qnorms[r] = ||qs_r||, base_norms[c] =
  /// ||base_c||); only cosine reads them.
  void DistTileNormed(const float* qs, const double* qnorms, const float* base,
                      const float* base_norms, size_t nq, size_t nv,
                      uint32_t dim, double* out) const;

  /// Many-to-many comparison-space tile: out[r*nv + c] = Cmp1Normed(qs_r,
  /// base_c) — squared distance for L2/cosine (compare against
  /// CmpBound(tau), no sqrt per slot), identity for L1. The workhorse of
  /// the staged verification pipeline (core/verify_pipeline.cc).
  void CmpTileNormed(const float* qs, const double* qnorms, const float* base,
                     const float* base_norms, size_t nq, size_t nv,
                     uint32_t dim, double* out) const;

  /// Whether this metric has a quantized pre-filter tile (cosine does not:
  /// its comparison space is not a code-difference sum).
  bool QuantSupported() const { return kind != MetricKind::kCosine; }

  /// Quantized tile: out[r*nv + c] is the integer code-difference sum of
  /// query codes row r against base codes row c — squared differences for
  /// L2, absolute for L1. Callers convert with QuantStore::CodeSumToDist.
  /// Must not be called when !QuantSupported().
  void QuantTile(const int8_t* qs, size_t nq, const int8_t* base, size_t nv,
                 uint32_t dim, int32_t* out) const {
    if (kind == MetricKind::kL1) {
      ops->i8_l1_tile(qs, nq, base, nv, dim, out);
    } else {
      ops->i8_sq_tile(qs, nq, base, nv, dim, out);
    }
  }

  /// Comparison-space value of one pair (see class comment).
  double Cmp1(const float* a, const float* b, uint32_t dim) const {
    switch (kind) {
      case MetricKind::kL2:
        return ops->sq_l2(a, b, dim);
      case MetricKind::kCosine: {
        double na2 = 0.0, nb2 = 0.0;
        const double dot = ops->cos_core(a, b, dim, &na2, &nb2);
        return CosCmpFromCore(dot, na2, nb2);
      }
      case MetricKind::kL1:
        return ops->l1(a, b, dim);
    }
    return 0.0;
  }

  /// Cmp1 with precomputed L2 norms; only cosine reads them, and for it
  /// this is the cheapest per-pair path (one dot product, no sqrt).
  double Cmp1Normed(const float* a, const float* b, uint32_t dim, double na,
                    double nb) const {
    switch (kind) {
      case MetricKind::kL2:
        return ops->sq_l2(a, b, dim);
      case MetricKind::kCosine: {
        if (na <= 0.0 || nb <= 0.0) return 2.0;  // zero vector: dist^2 = 2
        double c = ops->dot(a, b, dim) / (na * nb);
        if (c > 1.0) c = 1.0;
        if (c < -1.0) c = -1.0;
        return 2.0 - 2.0 * c;
      }
      case MetricKind::kL1:
        return ops->l1(a, b, dim);
    }
    return 0.0;
  }

  /// Threshold mapped into the comparison space.
  double CmpBound(double tau) const {
    return kind == MetricKind::kL1 ? tau : tau * tau;
  }

  /// Whether the comparison space saves a sqrt per pair versus computing
  /// the true distance (L2 and cosine: yes; L1: no sqrt to save).
  bool cmp_avoids_sqrt() const { return kind != MetricKind::kL1; }

  /// ||q|| when this metric consumes norms, 1.0 otherwise (so callers can
  /// compute the query-side norm once per query unconditionally).
  double QueryNorm(const float* q, uint32_t dim) const {
    if (kind != MetricKind::kCosine) return 1.0;
    return std::sqrt(ops->dot(q, q, dim));
  }

  /// Angular cosine distance squared from the fused-core values, with the
  /// same zero-vector and clamping semantics as CosineMetric::Dist.
  static double CosCmpFromCore(double dot, double na2, double nb2) {
    if (na2 <= 0.0 || nb2 <= 0.0) return 2.0;
    double c = dot / std::sqrt(na2 * nb2);
    if (c > 1.0) c = 1.0;
    if (c < -1.0) c = -1.0;
    return 2.0 - 2.0 * c;
  }
};

/// KernelSet for `kind` at the active SIMD level. Never nullptr.
const KernelSet* GetKernels(MetricKind kind);

/// KernelSet at an explicit level (tests/benches); nullptr if unavailable.
const KernelSet* GetKernels(MetricKind kind, SimdLevel level);

/// Devirtualized single-pair distance: the kernel when the metric provides
/// one, the virtual Dist oracle otherwise (custom metrics).
inline double KernelDist(const Metric& metric, const KernelSet* ks,
                         const float* a, const float* b, uint32_t dim) {
  return ks != nullptr ? ks->Dist1(a, b, dim) : metric.Dist(a, b, dim);
}

/// \brief A compiled `dist(a, b) <= tau` predicate bound to one metric and
/// one threshold.
///
/// Resolves once, at construction, to the kernel comparison space (squared
/// distance for L2/cosine — no per-pair sqrt) when the metric has kernels,
/// and to the virtual Metric::Dist path otherwise. This is what every
/// verification loop uses; `sqrt_saved()` feeds the SearchStats counter for
/// evaluations that skipped the sqrt.
class RangePredicate {
 public:
  RangePredicate(const Metric& metric, double tau)
      : metric_(&metric),
        ks_(metric.kernels()),
        tau_(tau),
        bound_(ks_ != nullptr ? ks_->CmpBound(tau) : tau),
        sqrt_saved_(ks_ != nullptr && ks_->cmp_avoids_sqrt() ? 1 : 0) {}

  const KernelSet* kernels() const { return ks_; }

  /// 1 when each Match skips a sqrt, 0 otherwise — add it to
  /// SearchStats::sqrt_free_comparisons alongside distance_computations.
  uint64_t sqrt_saved() const { return sqrt_saved_; }

  /// Whether this metric wants precomputed norms (cosine with kernels).
  bool wants_norms() const {
    return ks_ != nullptr && ks_->kind == MetricKind::kCosine;
  }

  /// dist(a, b) <= tau, recomputing norms as needed.
  bool Match(const float* a, const float* b, uint32_t dim) const {
    if (ks_ != nullptr) return ks_->Cmp1(a, b, dim) <= bound_;
    return metric_->Dist(a, b, dim) <= tau_;
  }

  /// dist(a, b) <= tau with precomputed L2 norms. Callers that cache norms
  /// (see wants_norms()) use this; L2/L1 ignore the norm arguments.
  bool MatchNormed(const float* a, const float* b, uint32_t dim, double na,
                   double nb) const {
    if (ks_ != nullptr) return ks_->Cmp1Normed(a, b, dim, na, nb) <= bound_;
    return metric_->Dist(a, b, dim) <= tau_;
  }

 private:
  const Metric* metric_;
  const KernelSet* ks_;
  double tau_;
  double bound_;
  uint64_t sqrt_saved_;
};

}  // namespace pexeso

#endif  // PEXESO_VEC_KERNELS_H_
