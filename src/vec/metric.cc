#include "vec/metric.h"

#include <algorithm>
#include <cctype>

#include "vec/kernels.h"

namespace pexeso {

const KernelSet* L2Metric::kernels() const {
  return GetKernels(MetricKind::kL2);
}

const KernelSet* CosineMetric::kernels() const {
  return GetKernels(MetricKind::kCosine);
}

const KernelSet* L1Metric::kernels() const {
  return GetKernels(MetricKind::kL1);
}

std::unique_ptr<Metric> MakeMetric(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "l2") return std::make_unique<L2Metric>();
  if (lower == "cosine") return std::make_unique<CosineMetric>();
  if (lower == "l1") return std::make_unique<L1Metric>();
  return nullptr;
}

const char* KnownMetricNames() { return "l2|cosine|l1"; }

}  // namespace pexeso
