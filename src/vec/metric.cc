#include "vec/metric.h"

namespace pexeso {

std::unique_ptr<Metric> MakeMetric(const std::string& name) {
  if (name == "l2") return std::make_unique<L2Metric>();
  if (name == "cosine") return std::make_unique<CosineMetric>();
  if (name == "l1") return std::make_unique<L1Metric>();
  return nullptr;
}

}  // namespace pexeso
