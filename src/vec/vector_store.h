#ifndef PEXESO_VEC_VECTOR_STORE_H_
#define PEXESO_VEC_VECTOR_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/serde.h"
#include "common/status.h"

namespace pexeso {

/// Identifier of a vector inside a VectorStore.
using VecId = uint32_t;

/// Identifier of a column inside a ColumnCatalog / repository.
using ColumnId = uint32_t;

/// \brief Columnar arena of dense float vectors of a fixed dimensionality.
///
/// All record embeddings live contiguously in one buffer; columns reference
/// vectors by VecId. This is the layout every index in the library is built
/// over: cache-friendly scans, trivially serializable for the out-of-core
/// partition files.
///
/// Two storage modes share one read surface: owned (the default; vectors
/// live in a heap buffer) and view (BindView points the store at external
/// packed floats — e.g. one section of an mmapped snapshot — with zero
/// copies). Mutators materialize a view into owned storage first, so view
/// stores stay read-only until someone actually writes. The norms cache is
/// always heap-resident and lazily computed in both modes, which keeps
/// cosine results bit-identical regardless of which mode served the search.
class VectorStore {
 public:
  /// Creates an empty store of the given dimensionality (> 0).
  explicit VectorStore(uint32_t dim) : dim_(dim) { PEXESO_CHECK(dim > 0); }

  VectorStore() : dim_(0) {}

  // The norms cache carries a mutex, so the special members are spelled
  // out: vector data travels, the cache is moved when possible and
  // recomputed otherwise. Copying a view store deep-copies the viewed bytes
  // (the copy owns its data; it must not silently alias a mapping it cannot
  // keep alive).
  VectorStore(const VectorStore& o) : dim_(o.dim_) {
    if (o.ext_ != nullptr) {
      data_.assign(o.ext_, o.ext_ + o.ext_count_ * dim_);
    } else {
      data_ = o.data_;
    }
  }
  VectorStore& operator=(const VectorStore& o) {
    if (this != &o) {
      dim_ = o.dim_;
      if (o.ext_ != nullptr) {
        data_.assign(o.ext_, o.ext_ + o.ext_count_ * dim_);
      } else {
        data_ = o.data_;
      }
      ext_ = nullptr;
      ext_count_ = 0;
      InvalidateNorms();
    }
    return *this;
  }
  VectorStore(VectorStore&& o) noexcept
      : dim_(o.dim_),
        data_(std::move(o.data_)),
        ext_(o.ext_),
        ext_count_(o.ext_count_),
        norms_(std::move(o.norms_)),
        norms_ready_(o.norms_ready_.load(std::memory_order_relaxed)) {
    o.ext_ = nullptr;
    o.ext_count_ = 0;
    o.InvalidateNorms();  // its norms_ buffer is gone
  }
  VectorStore& operator=(VectorStore&& o) noexcept {
    if (this != &o) {
      dim_ = o.dim_;
      data_ = std::move(o.data_);
      ext_ = o.ext_;
      ext_count_ = o.ext_count_;
      norms_ = std::move(o.norms_);
      norms_ready_.store(o.norms_ready_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      o.ext_ = nullptr;
      o.ext_count_ = 0;
      o.InvalidateNorms();
    }
    return *this;
  }

  uint32_t dim() const { return dim_; }
  size_t size() const {
    if (ext_ != nullptr) return ext_count_;
    return dim_ == 0 ? 0 : data_.size() / dim_;
  }
  bool empty() const { return size() == 0; }

  /// Points the store at `count` externally-owned packed vectors (the caller
  /// keeps the bytes alive — typically via the snapshot's MappedFile). Any
  /// owned data is discarded.
  void BindView(const float* packed, size_t count, uint32_t dim) {
    PEXESO_CHECK(dim > 0);
    dim_ = dim;
    data_.clear();
    ext_ = packed;
    ext_count_ = count;
    InvalidateNorms();
  }

  /// True when reads are served from externally-owned bytes.
  bool is_view() const { return ext_ != nullptr; }

  /// Copies viewed bytes into owned storage; no-op for owned stores. Called
  /// by every mutator, so a mapped snapshot is copy-on-write as a whole.
  void Materialize() {
    if (ext_ == nullptr) return;
    data_.assign(ext_, ext_ + ext_count_ * dim_);
    ext_ = nullptr;
    ext_count_ = 0;
  }

  /// Appends a vector; returns its id. `v.size()` must equal dim().
  VecId Add(std::span<const float> v) {
    PEXESO_DCHECK(v.size() == dim_);
    Materialize();
    const VecId id = static_cast<VecId>(size());
    data_.insert(data_.end(), v.begin(), v.end());
    return id;
  }

  /// Appends `count` vectors from a packed buffer.
  VecId AddBatch(const float* packed, size_t count) {
    Materialize();
    const VecId first = static_cast<VecId>(size());
    data_.insert(data_.end(), packed, packed + count * dim_);
    return first;
  }

  /// Reserves space for n vectors.
  void Reserve(size_t n) { data_.reserve(n * dim_); }

  /// Borrowed view of vector `id`.
  const float* View(VecId id) const {
    PEXESO_DCHECK(static_cast<size_t>(id) < size());
    return base() + static_cast<size_t>(id) * dim_;
  }

  /// Mutable view (used by normalization and tests). Invalidates the norm
  /// cache from `id` on, since the caller may rewrite the vector.
  float* MutableView(VecId id) {
    Materialize();
    PEXESO_DCHECK(static_cast<size_t>(id) < size());
    TruncateNorms(id);
    return data_.data() + static_cast<size_t>(id) * dim_;
  }

  std::span<const float> Span(VecId id) const { return {View(id), dim_}; }

  /// Scales every vector to unit L2 norm (Section V of the paper: thresholds
  /// are expressed as fractions of the max distance between unit vectors).
  /// Zero vectors are replaced by the first unit basis vector so they remain
  /// valid metric-space points.
  void NormalizeAll();

  /// Normalizes a single raw vector buffer in place.
  static void NormalizeInPlace(float* v, uint32_t dim);

  /// Per-vector L2 norms for the normed kernel paths (cosine). Computed on
  /// first use and cached; safe to call concurrently from const searches.
  /// Mutation (Add/MutableView/NormalizeAll/Deserialize) invalidates the
  /// affected suffix, so interleave it only with the single-writer phases.
  /// Returns nullptr for an empty store.
  const float* EnsureNorms() const;

  /// Approximate heap footprint in bytes. Viewed bytes are not counted —
  /// they are the mapping's, charged separately as bytes mapped.
  size_t MemoryBytes() const {
    return data_.capacity() * sizeof(float) + norms_.capacity() * sizeof(float);
  }

  /// Serialization for partition files. Works in both modes and emits
  /// identical bytes for identical contents.
  void Serialize(BinaryWriter* w) const;
  Status Deserialize(BinaryReader* r);

  /// Owned backing buffer; only meaningful for owned stores.
  const std::vector<float>& raw() const {
    PEXESO_DCHECK(ext_ == nullptr);
    return data_;
  }

 private:
  const float* base() const { return ext_ != nullptr ? ext_ : data_.data(); }

  void InvalidateNorms() { norms_ready_.store(0, std::memory_order_relaxed); }
  void TruncateNorms(VecId id) {
    size_t ready = norms_ready_.load(std::memory_order_relaxed);
    if (ready > id) norms_ready_.store(id, std::memory_order_relaxed);
  }

  uint32_t dim_;
  std::vector<float> data_;
  const float* ext_ = nullptr;  ///< non-null => view mode
  size_t ext_count_ = 0;        ///< vectors behind ext_

  // Lazily computed ||v|| cache. norms_ready_ counts valid prefix entries;
  // readers publish with release stores under norms_mutex_ and check with an
  // acquire load first, so the common post-warmup path is lock-free.
  mutable std::vector<float> norms_;
  mutable std::atomic<size_t> norms_ready_{0};
  mutable std::mutex norms_mutex_;
};

}  // namespace pexeso

#endif  // PEXESO_VEC_VECTOR_STORE_H_
