#ifndef PEXESO_VEC_COLUMN_CATALOG_H_
#define PEXESO_VEC_COLUMN_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/serde.h"
#include "vec/vector_store.h"

namespace pexeso {

/// \brief Metadata of one embedded column in the repository: which table it
/// came from and the contiguous VecId range of its record vectors.
struct ColumnMeta {
  uint32_t table_id = 0;
  /// Global column id in the unpartitioned repository; lets the out-of-core
  /// search merge per-partition results back into one id space.
  uint32_t source_id = 0;
  std::string table_name;
  std::string column_name;
  VecId first = 0;   ///< first vector id (inclusive)
  uint32_t count = 0;  ///< number of record vectors

  VecId end() const { return first + count; }
};

/// \brief The embedded repository R: a VectorStore holding RV (all record
/// vectors of all target columns) plus per-column metadata. Columns occupy
/// contiguous VecId ranges, so `ColumnOf(vec_id)` is a binary search.
class ColumnCatalog {
 public:
  explicit ColumnCatalog(uint32_t dim) : store_(dim) {}
  ColumnCatalog() = default;

  /// Appends a column of `count` packed vectors; returns its ColumnId.
  ColumnId AddColumn(ColumnMeta meta, const float* packed, size_t count) {
    PEXESO_CHECK(count > 0);
    meta.first = store_.AddBatch(packed, count);
    meta.count = static_cast<uint32_t>(count);
    columns_.push_back(std::move(meta));
    return static_cast<ColumnId>(columns_.size() - 1);
  }

  const VectorStore& store() const { return store_; }
  VectorStore* mutable_store() { return &store_; }

  size_t num_columns() const { return columns_.size(); }
  size_t num_vectors() const { return store_.size(); }
  uint32_t dim() const { return store_.dim(); }

  const ColumnMeta& column(ColumnId id) const {
    PEXESO_DCHECK(id < columns_.size());
    return columns_[id];
  }

  /// Column owning a vector id (columns are contiguous ranges).
  ColumnId ColumnOf(VecId v) const;

  /// Unit-normalizes every stored vector.
  void NormalizeAll() { store_.NormalizeAll(); }

  size_t MemoryBytes() const;

  void Serialize(BinaryWriter* w) const;
  Status Deserialize(BinaryReader* r);

  /// Column metadata alone, without the vector store — the flat snapshot
  /// format stores the raw floats as their own mmap-able section and keeps
  /// only this variable-length part in a parsed section.
  void SerializeMeta(BinaryWriter* w) const;
  Status DeserializeMeta(BinaryReader* r);

 private:
  VectorStore store_;
  std::vector<ColumnMeta> columns_;
};

}  // namespace pexeso

#endif  // PEXESO_VEC_COLUMN_CATALOG_H_
