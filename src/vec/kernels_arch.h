#ifndef PEXESO_VEC_KERNELS_ARCH_H_
#define PEXESO_VEC_KERNELS_ARCH_H_

// Internal: which SIMD kernel TUs this build compiles, and their entry
// points. Included by kernels.cc and the per-arch kernel TUs only; the
// public surface is vec/kernels.h.

#include "vec/kernels.h"

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
#define PEXESO_HAVE_AVX2_KERNELS 1
#endif

#if defined(__aarch64__) && defined(__ARM_NEON)
#define PEXESO_HAVE_NEON_KERNELS 1
#endif

namespace pexeso::simd {

#if defined(PEXESO_HAVE_AVX2_KERNELS)
/// Runtime check: this CPU executes AVX2+FMA (the kernels are compiled with
/// per-function target attributes, so the binary itself stays portable).
bool Avx2CpuSupported();
const Ops& Avx2Ops();
#endif

#if defined(PEXESO_HAVE_NEON_KERNELS)
const Ops& NeonOps();
#endif

}  // namespace pexeso::simd

#endif  // PEXESO_VEC_KERNELS_ARCH_H_
