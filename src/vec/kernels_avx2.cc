// AVX2+FMA distance primitives. Every function carries a target attribute,
// so this TU compiles into any x86-64 binary without raising the global
// -march baseline; kernels.cc only routes calls here after
// Avx2CpuSupported() confirms the CPU at startup.

#include "vec/kernels_arch.h"

#if defined(PEXESO_HAVE_AVX2_KERNELS)

#include <immintrin.h>

#include <cmath>

namespace pexeso::simd {
namespace {

#define PEXESO_AVX2 __attribute__((target("avx2,fma")))

/// Horizontal sum of an 8-lane float register, widened to double.
PEXESO_AVX2 inline double HSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return static_cast<double>(_mm_cvtss_f32(s));
}

PEXESO_AVX2 double Avx2SqL2(const float* a, const float* b, uint32_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  uint32_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  double total = HSum(_mm256_add_ps(acc0, acc1));
  float tail = 0.0f;
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    tail += d * d;
  }
  return total + static_cast<double>(tail);
}

PEXESO_AVX2 void Avx2SqL2Many(const float* q, const float* base, size_t n,
                              uint32_t dim, double* out) {
  for (size_t r = 0; r < n; ++r) {
    out[r] = Avx2SqL2(q, base + r * dim, dim);
  }
}

PEXESO_AVX2 double Avx2Dot(const float* a, const float* b, uint32_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  uint32_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  double total = HSum(_mm256_add_ps(acc0, acc1));
  float tail = 0.0f;
  for (; i < dim; ++i) tail += a[i] * b[i];
  return total + static_cast<double>(tail);
}

PEXESO_AVX2 void Avx2DotMany(const float* q, const float* base, size_t n,
                             uint32_t dim, double* out) {
  for (size_t r = 0; r < n; ++r) {
    out[r] = Avx2Dot(q, base + r * dim, dim);
  }
}

PEXESO_AVX2 double Avx2CosCore(const float* a, const float* b, uint32_t dim,
                               double* na2, double* nb2) {
  __m256 dot = _mm256_setzero_ps();
  __m256 na = _mm256_setzero_ps();
  __m256 nb = _mm256_setzero_ps();
  uint32_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    dot = _mm256_fmadd_ps(va, vb, dot);
    na = _mm256_fmadd_ps(va, va, na);
    nb = _mm256_fmadd_ps(vb, vb, nb);
  }
  double dsum = HSum(dot), nasum = HSum(na), nbsum = HSum(nb);
  float dt = 0.0f, at = 0.0f, bt = 0.0f;
  for (; i < dim; ++i) {
    dt += a[i] * b[i];
    at += a[i] * a[i];
    bt += b[i] * b[i];
  }
  *na2 = nasum + static_cast<double>(at);
  *nb2 = nbsum + static_cast<double>(bt);
  return dsum + static_cast<double>(dt);
}

PEXESO_AVX2 double Avx2L1(const float* a, const float* b, uint32_t dim) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  uint32_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_add_ps(acc0, _mm256_andnot_ps(sign_mask, d0));
    acc1 = _mm256_add_ps(acc1, _mm256_andnot_ps(sign_mask, d1));
  }
  for (; i + 8 <= dim; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_add_ps(acc0, _mm256_andnot_ps(sign_mask, d));
  }
  double total = HSum(_mm256_add_ps(acc0, acc1));
  float tail = 0.0f;
  for (; i < dim; ++i) tail += std::fabs(a[i] - b[i]);
  return total + static_cast<double>(tail);
}

PEXESO_AVX2 void Avx2L1Many(const float* q, const float* base, size_t n,
                            uint32_t dim, double* out) {
  for (size_t r = 0; r < n; ++r) {
    out[r] = Avx2L1(q, base + r * dim, dim);
  }
}

PEXESO_AVX2 void Avx2Norms(const float* base, size_t n, uint32_t dim,
                           float* out) {
  for (size_t r = 0; r < n; ++r) {
    const float* v = base + r * dim;
    out[r] = static_cast<float>(std::sqrt(Avx2Dot(v, v, dim)));
  }
}

// Many-to-many tiles, blocked four query rows deep: each 8-float chunk of a
// base row is loaded once and fed to four FMA accumulators, so the tile is
// ~4x less load-bound than four independent one-to-many sweeps.

PEXESO_AVX2 void Avx2SqL2Tile(const float* qs, size_t nq, const float* base,
                              size_t nv, uint32_t dim, double* out) {
  size_t r = 0;
  for (; r + 4 <= nq; r += 4) {
    const float* q0 = qs + (r + 0) * dim;
    const float* q1 = qs + (r + 1) * dim;
    const float* q2 = qs + (r + 2) * dim;
    const float* q3 = qs + (r + 3) * dim;
    for (size_t c = 0; c < nv; ++c) {
      const float* v = base + c * dim;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      uint32_t i = 0;
      for (; i + 8 <= dim; i += 8) {
        const __m256 bv = _mm256_loadu_ps(v + i);
        const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(q0 + i), bv);
        const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(q1 + i), bv);
        const __m256 d2 = _mm256_sub_ps(_mm256_loadu_ps(q2 + i), bv);
        const __m256 d3 = _mm256_sub_ps(_mm256_loadu_ps(q3 + i), bv);
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
        acc1 = _mm256_fmadd_ps(d1, d1, acc1);
        acc2 = _mm256_fmadd_ps(d2, d2, acc2);
        acc3 = _mm256_fmadd_ps(d3, d3, acc3);
      }
      float t0 = 0.0f, t1 = 0.0f, t2 = 0.0f, t3 = 0.0f;
      for (; i < dim; ++i) {
        const float x = v[i];
        const float d0 = q0[i] - x;
        const float d1 = q1[i] - x;
        const float d2 = q2[i] - x;
        const float d3 = q3[i] - x;
        t0 += d0 * d0;
        t1 += d1 * d1;
        t2 += d2 * d2;
        t3 += d3 * d3;
      }
      out[(r + 0) * nv + c] = HSum(acc0) + static_cast<double>(t0);
      out[(r + 1) * nv + c] = HSum(acc1) + static_cast<double>(t1);
      out[(r + 2) * nv + c] = HSum(acc2) + static_cast<double>(t2);
      out[(r + 3) * nv + c] = HSum(acc3) + static_cast<double>(t3);
    }
  }
  for (; r < nq; ++r) {
    Avx2SqL2Many(qs + r * dim, base, nv, dim, out + r * nv);
  }
}

PEXESO_AVX2 void Avx2DotTile(const float* qs, size_t nq, const float* base,
                             size_t nv, uint32_t dim, double* out) {
  size_t r = 0;
  for (; r + 4 <= nq; r += 4) {
    const float* q0 = qs + (r + 0) * dim;
    const float* q1 = qs + (r + 1) * dim;
    const float* q2 = qs + (r + 2) * dim;
    const float* q3 = qs + (r + 3) * dim;
    for (size_t c = 0; c < nv; ++c) {
      const float* v = base + c * dim;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      uint32_t i = 0;
      for (; i + 8 <= dim; i += 8) {
        const __m256 bv = _mm256_loadu_ps(v + i);
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q0 + i), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(q1 + i), bv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(q2 + i), bv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(q3 + i), bv, acc3);
      }
      float t0 = 0.0f, t1 = 0.0f, t2 = 0.0f, t3 = 0.0f;
      for (; i < dim; ++i) {
        const float x = v[i];
        t0 += q0[i] * x;
        t1 += q1[i] * x;
        t2 += q2[i] * x;
        t3 += q3[i] * x;
      }
      out[(r + 0) * nv + c] = HSum(acc0) + static_cast<double>(t0);
      out[(r + 1) * nv + c] = HSum(acc1) + static_cast<double>(t1);
      out[(r + 2) * nv + c] = HSum(acc2) + static_cast<double>(t2);
      out[(r + 3) * nv + c] = HSum(acc3) + static_cast<double>(t3);
    }
  }
  for (; r < nq; ++r) {
    Avx2DotMany(qs + r * dim, base, nv, dim, out + r * nv);
  }
}

PEXESO_AVX2 void Avx2L1Tile(const float* qs, size_t nq, const float* base,
                            size_t nv, uint32_t dim, double* out) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  size_t r = 0;
  for (; r + 4 <= nq; r += 4) {
    const float* q0 = qs + (r + 0) * dim;
    const float* q1 = qs + (r + 1) * dim;
    const float* q2 = qs + (r + 2) * dim;
    const float* q3 = qs + (r + 3) * dim;
    for (size_t c = 0; c < nv; ++c) {
      const float* v = base + c * dim;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      uint32_t i = 0;
      for (; i + 8 <= dim; i += 8) {
        const __m256 bv = _mm256_loadu_ps(v + i);
        const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(q0 + i), bv);
        const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(q1 + i), bv);
        const __m256 d2 = _mm256_sub_ps(_mm256_loadu_ps(q2 + i), bv);
        const __m256 d3 = _mm256_sub_ps(_mm256_loadu_ps(q3 + i), bv);
        acc0 = _mm256_add_ps(acc0, _mm256_andnot_ps(sign_mask, d0));
        acc1 = _mm256_add_ps(acc1, _mm256_andnot_ps(sign_mask, d1));
        acc2 = _mm256_add_ps(acc2, _mm256_andnot_ps(sign_mask, d2));
        acc3 = _mm256_add_ps(acc3, _mm256_andnot_ps(sign_mask, d3));
      }
      float t0 = 0.0f, t1 = 0.0f, t2 = 0.0f, t3 = 0.0f;
      for (; i < dim; ++i) {
        const float x = v[i];
        t0 += std::fabs(q0[i] - x);
        t1 += std::fabs(q1[i] - x);
        t2 += std::fabs(q2[i] - x);
        t3 += std::fabs(q3[i] - x);
      }
      out[(r + 0) * nv + c] = HSum(acc0) + static_cast<double>(t0);
      out[(r + 1) * nv + c] = HSum(acc1) + static_cast<double>(t1);
      out[(r + 2) * nv + c] = HSum(acc2) + static_cast<double>(t2);
      out[(r + 3) * nv + c] = HSum(acc3) + static_cast<double>(t3);
    }
  }
  for (; r < nq; ++r) {
    Avx2L1Many(qs + r * dim, base, nv, dim, out + r * nv);
  }
}

// int8 code tiles: widen 16 codes to int16 lanes, difference, then
// madd_epi16 pair-sums into int32 lanes (|Δ| <= 254 so the pair products
// fit comfortably). Integer arithmetic is exact, so these need none of the
// float tiles' lane-structure care.

PEXESO_AVX2 int32_t HSumI32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
  return _mm_cvtsi128_si32(s);
}

PEXESO_AVX2 void Avx2I8SqTile(const int8_t* qs, size_t nq, const int8_t* base,
                              size_t nv, uint32_t dim, int32_t* out) {
  for (size_t r = 0; r < nq; ++r) {
    const int8_t* q = qs + r * dim;
    for (size_t c = 0; c < nv; ++c) {
      const int8_t* v = base + c * dim;
      __m256i acc = _mm256_setzero_si256();
      uint32_t i = 0;
      for (; i + 16 <= dim; i += 16) {
        const __m256i qa = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i)));
        const __m256i vb = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i)));
        const __m256i d = _mm256_sub_epi16(qa, vb);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, d));
      }
      int32_t tail = 0;
      for (; i < dim; ++i) {
        const int32_t d = static_cast<int32_t>(q[i]) - v[i];
        tail += d * d;
      }
      out[r * nv + c] = HSumI32(acc) + tail;
    }
  }
}

PEXESO_AVX2 void Avx2I8L1Tile(const int8_t* qs, size_t nq, const int8_t* base,
                              size_t nv, uint32_t dim, int32_t* out) {
  const __m256i ones = _mm256_set1_epi16(1);
  for (size_t r = 0; r < nq; ++r) {
    const int8_t* q = qs + r * dim;
    for (size_t c = 0; c < nv; ++c) {
      const int8_t* v = base + c * dim;
      __m256i acc = _mm256_setzero_si256();
      uint32_t i = 0;
      for (; i + 16 <= dim; i += 16) {
        const __m256i qa = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i)));
        const __m256i vb = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i)));
        const __m256i d = _mm256_abs_epi16(_mm256_sub_epi16(qa, vb));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, ones));
      }
      int32_t tail = 0;
      for (; i < dim; ++i) {
        const int32_t d = static_cast<int32_t>(q[i]) - v[i];
        tail += d < 0 ? -d : d;
      }
      out[r * nv + c] = HSumI32(acc) + tail;
    }
  }
}

#undef PEXESO_AVX2

constexpr Ops kAvx2Ops = {
    SimdLevel::kAvx2, &Avx2SqL2,    &Avx2SqL2Many,
    &Avx2Dot,         &Avx2DotMany, &Avx2CosCore,
    &Avx2L1,          &Avx2L1Many,  &Avx2Norms,
    &Avx2SqL2Tile,    &Avx2DotTile, &Avx2L1Tile,
    &Avx2I8SqTile,    &Avx2I8L1Tile,
};

}  // namespace

bool Avx2CpuSupported() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

const Ops& Avx2Ops() { return kAvx2Ops; }

}  // namespace pexeso::simd

#endif  // PEXESO_HAVE_AVX2_KERNELS
