#ifndef PEXESO_VEC_METRIC_H_
#define PEXESO_VEC_METRIC_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>

namespace pexeso {

struct KernelSet;

/// Identifies the built-in metrics that have batched SIMD kernels
/// (src/vec/kernels.h). Custom Metric subclasses have no kind.
enum class MetricKind : uint8_t { kL2 = 0, kCosine = 1, kL1 = 2 };

/// \brief A distance function over dense float vectors that satisfies the
/// metric axioms (in particular the triangle inequality, which every filter
/// in this library relies on).
///
/// PEXESO supports "any similarity function in a metric space" (paper,
/// Section I); the concrete metrics below are the ones the experiments use.
///
/// Dist is the scalar, double-accumulating *correctness oracle*. The hot
/// paths instead fetch kernels() once per search and run the devirtualized
/// batched kernels; a custom metric that returns nullptr from kernels()
/// transparently falls back to per-pair virtual Dist everywhere.
class Metric {
 public:
  virtual ~Metric() = default;

  /// Distance between two `dim`-dimensional vectors.
  virtual double Dist(const float* a, const float* b, uint32_t dim) const = 0;

  /// Maximum possible distance between two unit-normalized vectors, used to
  /// convert the fractional threshold tau of Section V to an absolute one.
  virtual double MaxUnitDistance(uint32_t dim) const = 0;

  /// Short human-readable name ("l2", "cosine", "l1").
  virtual std::string Name() const = 0;

  /// Batched/devirtualized kernels for this metric at the active SIMD
  /// level, or nullptr when none exist (callers fall back to Dist).
  virtual const KernelSet* kernels() const { return nullptr; }
};

/// \brief Euclidean (L2) distance; the default in the paper's experiments.
/// Max distance between unit vectors is 2.
class L2Metric final : public Metric {
 public:
  double Dist(const float* a, const float* b, uint32_t dim) const override {
    double acc = 0.0;
    for (uint32_t i = 0; i < dim; ++i) {
      const double d = static_cast<double>(a[i]) - b[i];
      acc += d * d;
    }
    return std::sqrt(acc);
  }
  double MaxUnitDistance(uint32_t) const override { return 2.0; }
  std::string Name() const override { return "l2"; }
  const KernelSet* kernels() const override;
};

/// \brief Angular-compatible cosine distance sqrt(2 - 2 cos(a,b)).
///
/// For unit vectors this equals the Euclidean distance, hence it is a true
/// metric (plain 1-cos is not). Provided as the "cosine" option.
class CosineMetric final : public Metric {
 public:
  double Dist(const float* a, const float* b, uint32_t dim) const override {
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (uint32_t i = 0; i < dim; ++i) {
      dot += static_cast<double>(a[i]) * b[i];
      na += static_cast<double>(a[i]) * a[i];
      nb += static_cast<double>(b[i]) * b[i];
    }
    if (na <= 0.0 || nb <= 0.0) return std::sqrt(2.0);
    double c = dot / std::sqrt(na * nb);
    if (c > 1.0) c = 1.0;
    if (c < -1.0) c = -1.0;
    return std::sqrt(2.0 - 2.0 * c);
  }
  double MaxUnitDistance(uint32_t) const override { return 2.0; }
  std::string Name() const override { return "cosine"; }
  const KernelSet* kernels() const override;
};

/// \brief Manhattan (L1) distance; exercised by the metric-genericity tests.
/// Max distance between unit-L2 vectors is bounded by 2*sqrt(dim).
class L1Metric final : public Metric {
 public:
  double Dist(const float* a, const float* b, uint32_t dim) const override {
    double acc = 0.0;
    for (uint32_t i = 0; i < dim; ++i) {
      acc += std::fabs(static_cast<double>(a[i]) - b[i]);
    }
    return acc;
  }
  double MaxUnitDistance(uint32_t dim) const override {
    return 2.0 * std::sqrt(static_cast<double>(dim));
  }
  std::string Name() const override { return "l1"; }
  const KernelSet* kernels() const override;
};

/// Factory by name, case-insensitively ("l2", "L2", "Cosine", ...); returns
/// nullptr for unknown names. KnownMetricNames() lists the valid inputs for
/// error messages.
std::unique_ptr<Metric> MakeMetric(const std::string& name);

/// "l2|cosine|l1" — for CLI/usage error messages.
const char* KnownMetricNames();

}  // namespace pexeso

#endif  // PEXESO_VEC_METRIC_H_
