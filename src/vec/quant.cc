#include "vec/quant.h"

#include <algorithm>
#include <cmath>

#include "vec/kernels.h"

namespace pexeso {
namespace {

/// Quantized sums are int32; (Δcode)^2 <= 254^2, so any dim up to ~33k is
/// overflow-safe. The cap stays far below that and bounds the code arrays.
constexpr uint32_t kMaxQuantDim = 4096;

/// Double-accumulating oracle distance (matches Metric::Dist for the
/// built-in metrics the pre-filter serves).
double OracleDist(const float* a, const float* b, uint32_t dim,
                  MetricKind kind) {
  double acc = 0.0;
  if (kind == MetricKind::kL1) {
    for (uint32_t i = 0; i < dim; ++i) {
      acc += std::fabs(static_cast<double>(a[i]) - b[i]);
    }
    return acc;
  }
  for (uint32_t i = 0; i < dim; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

/// Pads an exactly-computed error norm so float storage and double rounding
/// can never shave it below the true value.
double PadError(double eps) { return eps * (1.0 + 1e-6) + 1e-12; }

int8_t QuantizeValue(float x, float scale, float offset) {
  const float t = (x - offset) / scale;
  long code = std::lrintf(t);
  if (code > 127) code = 127;
  if (code < -127) code = -127;
  return static_cast<int8_t>(code);
}

}  // namespace

void QuantStore::Build(const ColumnCatalog& catalog, MetricKind kind) {
  Clear();
  const uint32_t dim = catalog.dim();
  if (kind == MetricKind::kCosine || dim == 0 || dim > kMaxQuantDim ||
      catalog.num_vectors() == 0) {
    return;
  }
  kind_ = kind;
  dim_ = dim;
  valid_ = true;
  params_.reserve(catalog.num_columns());
  codes_.reserve(catalog.num_vectors() * dim);
  err_.reserve(catalog.num_vectors());
  for (ColumnId c = 0; c < catalog.num_columns(); ++c) {
    QuantizeRange(catalog, c);
  }
  num_vectors_ = catalog.num_vectors();
  Calibrate(catalog);
}

void QuantStore::AppendLastColumn(const ColumnCatalog& catalog) {
  if (!valid_) return;
  Materialize();
  const ColumnId col = static_cast<ColumnId>(catalog.num_columns() - 1);
  QuantizeRange(catalog, col);
  num_vectors_ = catalog.num_vectors();
}

void QuantStore::Materialize() {
  if (!is_view()) return;
  codes_.assign(view_codes_, view_codes_ + num_vectors_ * dim_);
  err_.assign(view_err_, view_err_ + num_vectors_);
  view_codes_ = nullptr;
  view_err_ = nullptr;
}

void QuantStore::QuantizeRange(const ColumnCatalog& catalog, ColumnId col) {
  const VectorStore& store = catalog.store();
  const ColumnMeta& meta = catalog.column(col);
  float lo = store.View(meta.first)[0];
  float hi = lo;
  for (VecId v = meta.first; v < meta.end(); ++v) {
    const float* x = store.View(v);
    for (uint32_t i = 0; i < dim_; ++i) {
      lo = std::min(lo, x[i]);
      hi = std::max(hi, x[i]);
    }
  }
  const float offset = 0.5f * (lo + hi);
  const float half = 0.5f * (hi - lo);
  const float scale = half > 0.0f ? half / 127.0f : 1.0f;
  params_.push_back(QuantColumnParam{scale, offset});

  for (VecId v = meta.first; v < meta.end(); ++v) {
    const float* x = store.View(v);
    double eps = 0.0;
    for (uint32_t i = 0; i < dim_; ++i) {
      const int8_t code = QuantizeValue(x[i], scale, offset);
      codes_.push_back(code);
      const double recon =
          static_cast<double>(scale) * code + static_cast<double>(offset);
      const double d = static_cast<double>(x[i]) - recon;
      eps += kind_ == MetricKind::kL1 ? std::fabs(d) : d * d;
    }
    if (kind_ != MetricKind::kL1) eps = std::sqrt(eps);
    err_.push_back(static_cast<float>(PadError(eps)));
  }
}

double QuantStore::QuantizeQuery(const float* q, ColumnId c,
                                 int8_t* out) const {
  const QuantColumnParam& p = params_[c];
  double eps = 0.0;
  for (uint32_t i = 0; i < dim_; ++i) {
    const int8_t code = QuantizeValue(q[i], p.scale, p.offset);
    out[i] = code;
    const double recon =
        static_cast<double>(p.scale) * code + static_cast<double>(p.offset);
    const double d = static_cast<double>(q[i]) - recon;
    eps += kind_ == MetricKind::kL1 ? std::fabs(d) : d * d;
  }
  if (kind_ != MetricKind::kL1) eps = std::sqrt(eps);
  return PadError(eps);
}

void QuantStore::Calibrate(const ColumnCatalog& catalog) {
  // The decision slack must cover how far any float kernel variant can land
  // from the double-accumulating oracle. Measure the deviation empirically
  // over sampled pairs on the tiers available here, then double it and add
  // a dim-scaled analytic floor (~dim * 2^-23 relative, generously) so a
  // snapshot calibrated under one SIMD tier stays safe under another.
  slack_abs_ = 1e-9;
  double max_rel = 0.0;
  const VectorStore& store = catalog.store();
  const size_t n = store.size();
  if (n >= 2) {
    const KernelSet* tiers[2] = {GetKernels(kind_, SimdLevel::kScalar),
                                 GetKernels(kind_)};
    for (int t = 0; t < 2; ++t) {
      const KernelSet* ks = tiers[t];
      if (ks == nullptr) continue;
      if (t == 1 && ks->level() == SimdLevel::kScalar) continue;
      for (uint32_t k = 0; k < 128; ++k) {
        const size_t i = (k * 2654435761u) % n;
        const size_t j = (k * 40503u + 1) % n;
        if (i == j) continue;
        const float* a = store.View(static_cast<VecId>(i));
        const float* b = store.View(static_cast<VecId>(j));
        const double exact = OracleDist(a, b, dim_, kind_);
        if (exact < 1e-6) continue;  // near-zero: covered by slack_abs_
        const double kv = ks->Dist1(a, b, dim_);
        max_rel = std::max(max_rel, std::fabs(kv - exact) / exact);
      }
    }
  }
  slack_rel_ = 2.0 * max_rel + static_cast<double>(dim_) * 1.2e-7;
}

}  // namespace pexeso
