#include "vec/column_catalog.h"

#include <algorithm>

namespace pexeso {

ColumnId ColumnCatalog::ColumnOf(VecId v) const {
  PEXESO_DCHECK(!columns_.empty());
  // Find the last column whose first <= v.
  auto it = std::upper_bound(
      columns_.begin(), columns_.end(), v,
      [](VecId lhs, const ColumnMeta& rhs) { return lhs < rhs.first; });
  PEXESO_DCHECK(it != columns_.begin());
  --it;
  PEXESO_DCHECK(v >= it->first && v < it->end());
  return static_cast<ColumnId>(it - columns_.begin());
}

size_t ColumnCatalog::MemoryBytes() const {
  size_t bytes = store_.MemoryBytes();
  for (const auto& c : columns_) {
    bytes += sizeof(ColumnMeta) + c.table_name.size() + c.column_name.size();
  }
  return bytes;
}

void ColumnCatalog::Serialize(BinaryWriter* w) const {
  store_.Serialize(w);
  SerializeMeta(w);
}

Status ColumnCatalog::Deserialize(BinaryReader* r) {
  PEXESO_RETURN_NOT_OK(store_.Deserialize(r));
  return DeserializeMeta(r);
}

void ColumnCatalog::SerializeMeta(BinaryWriter* w) const {
  w->Write<uint64_t>(columns_.size());
  for (const auto& c : columns_) {
    w->Write<uint32_t>(c.table_id);
    w->Write<uint32_t>(c.source_id);
    w->WriteString(c.table_name);
    w->WriteString(c.column_name);
    w->Write<VecId>(c.first);
    w->Write<uint32_t>(c.count);
  }
}

Status ColumnCatalog::DeserializeMeta(BinaryReader* r) {
  uint64_t n = 0;
  PEXESO_RETURN_NOT_OK(r->Read(&n));
  columns_.clear();
  columns_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ColumnMeta c;
    PEXESO_RETURN_NOT_OK(r->Read(&c.table_id));
    PEXESO_RETURN_NOT_OK(r->Read(&c.source_id));
    PEXESO_RETURN_NOT_OK(r->ReadString(&c.table_name));
    PEXESO_RETURN_NOT_OK(r->ReadString(&c.column_name));
    PEXESO_RETURN_NOT_OK(r->Read(&c.first));
    PEXESO_RETURN_NOT_OK(r->Read(&c.count));
    columns_.push_back(std::move(c));
  }
  return Status::OK();
}

}  // namespace pexeso
