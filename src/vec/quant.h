#ifndef PEXESO_VEC_QUANT_H_
#define PEXESO_VEC_QUANT_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "vec/column_catalog.h"
#include "vec/metric.h"

namespace pexeso {

/// Affine int8 quantization parameters of one column: value ≈
/// scale * code + offset, codes clamped to [-127, 127].
struct QuantColumnParam {
  float scale;
  float offset;
};

/// Outcome of classifying one pair through the quantized tier.
enum class QuantVerdict : uint8_t {
  kMiss = 0,   ///< provably dist > tau — skip the exact tile
  kMatch = 1,  ///< provably dist <= tau — skip the exact tile
  kMaybe = 2,  ///< too close to call — exact float re-check required
};

/// \brief int8 quantized mirror of a repository's vectors, used by the
/// verification pipeline as a conservative pre-filter tier.
///
/// Each column is quantized with its own scale/offset (value range mapped
/// onto [-127, 127]); offsets cancel in code differences, so the integer
/// code-difference sums produced by KernelSet::QuantTile convert to an
/// estimate of the distance between the *dequantized* vectors with one
/// multiply (+ sqrt for L2). The store also carries, per vector, the exact
/// reconstruction error norm (L2 ε₂ or L1 ε₁ matching the metric), so the
/// triangle inequality bounds the true distance:
///
///   |d(a, b) - d(â, b̂)| <= ε(a) + ε(b)
///
/// On top of that bound sits a calibrated slack for the float kernels'
/// deviation from the double-accumulating oracle: a pair is decided by the
/// quantized tier only when the bound clears/fails the threshold by more
/// than the slack, so decisions provably agree with whatever float kernel
/// variant would have evaluated the pair — results stay byte-identical with
/// the pre-filter on or off (tests/snapshot_test.cc enforces it).
///
/// Storage modes mirror VectorStore: owned (built from the catalog) or view
/// (codes/errors bound to sections of an mmapped snapshot; params are small
/// and always heap-resident). Cosine has no quantized tier (its comparison
/// space is not a code-difference sum); valid() is false there.
class QuantStore {
 public:
  QuantStore() = default;

  /// Builds codes, error norms, params, and the kernel slack from scratch.
  /// Clears instead when the metric has no quantized tier (cosine, custom)
  /// or the dimensionality is out of range.
  void Build(const ColumnCatalog& catalog, MetricKind kind);

  /// Quantizes the last column of `catalog` and appends its codes/errors
  /// (columns are quantized independently, so appends never re-code
  /// existing data). No-op when invalid.
  void AppendLastColumn(const ColumnCatalog& catalog);

  void Clear() {
    valid_ = false;
    params_.clear();
    codes_.clear();
    err_.clear();
    view_codes_ = nullptr;
    view_err_ = nullptr;
    num_vectors_ = 0;
    dim_ = 0;
  }

  /// Points codes/errors at externally-owned arrays (the caller keeps them
  /// alive — typically the snapshot's MappedFile); params/slack come from
  /// the parsed quant_meta section.
  void BindView(std::vector<QuantColumnParam> params, const int8_t* codes,
                const float* err, size_t num_vectors, uint32_t dim,
                MetricKind kind, double slack_rel, double slack_abs) {
    params_ = std::move(params);
    codes_.clear();
    err_.clear();
    view_codes_ = codes;
    view_err_ = err;
    num_vectors_ = num_vectors;
    dim_ = dim;
    kind_ = kind;
    slack_rel_ = slack_rel;
    slack_abs_ = slack_abs;
    valid_ = true;
  }

  /// Copies viewed codes/errors into owned storage; no-op when owned.
  void Materialize();

  bool valid() const { return valid_; }
  bool is_view() const { return view_codes_ != nullptr; }

  /// True when the pre-filter can serve searches of `kind`.
  bool CompatibleWith(MetricKind kind) const {
    return valid_ && kind == kind_;
  }

  MetricKind kind() const { return kind_; }
  uint32_t dim() const { return dim_; }
  size_t num_vectors() const { return num_vectors_; }
  size_t num_columns() const { return params_.size(); }
  double slack_rel() const { return slack_rel_; }
  double slack_abs() const { return slack_abs_; }
  const QuantColumnParam& param(ColumnId c) const { return params_[c]; }
  const std::vector<QuantColumnParam>& params() const { return params_; }

  /// Packed codes (num_vectors x dim) and per-vector error norms.
  const int8_t* codes() const {
    return view_codes_ != nullptr ? view_codes_ : codes_.data();
  }
  const float* err() const {
    return view_err_ != nullptr ? view_err_ : err_.data();
  }

  /// Quantizes a query vector with column `c`'s params; returns the exact
  /// reconstruction error norm of the query under that quantization (same
  /// norm kind as the stored per-vector errors).
  double QuantizeQuery(const float* q, ColumnId c, int8_t* out) const;

  /// Converts an integer code-difference sum (squared for L2, absolute for
  /// L1) into the distance between the dequantized vectors.
  double CodeSumToDist(int32_t sum, ColumnId c) const {
    const double s = static_cast<double>(params_[c].scale);
    return kind_ == MetricKind::kL1
               ? s * static_cast<double>(sum)
               : s * std::sqrt(static_cast<double>(sum));
  }

  /// Classifies one pair against `tau`. The quantized distance plus/minus
  /// the two reconstruction error norms brackets the true distance (triangle
  /// inequality); the calibrated slack then brackets how far the float
  /// kernel value can sit from it, so kMatch/kMiss verdicts provably agree
  /// with the float comparison they replace.
  QuantVerdict Classify(int32_t sum, ColumnId c, double query_eps,
                        double base_eps, double tau) const {
    const double d = CodeSumToDist(sum, c);
    const double hi = d + query_eps + base_eps;
    const double lo = d - query_eps - base_eps;
    const double margin = slack_abs_ + slack_rel_ * std::max(hi, tau);
    if (hi + margin <= tau) return QuantVerdict::kMatch;
    if (lo - margin > tau) return QuantVerdict::kMiss;
    return QuantVerdict::kMaybe;
  }

  /// Heap bytes (viewed code/error bytes are the mapping's).
  size_t MemoryBytes() const {
    return params_.capacity() * sizeof(QuantColumnParam) +
           codes_.capacity() + err_.capacity() * sizeof(float);
  }

 private:
  void QuantizeRange(const ColumnCatalog& catalog, ColumnId col);
  void Calibrate(const ColumnCatalog& catalog);

  bool valid_ = false;
  MetricKind kind_ = MetricKind::kL2;
  uint32_t dim_ = 0;
  size_t num_vectors_ = 0;
  std::vector<QuantColumnParam> params_;  ///< per column, always heap
  std::vector<int8_t> codes_;             ///< owned mode
  std::vector<float> err_;                ///< owned mode
  const int8_t* view_codes_ = nullptr;    ///< non-null => view mode
  const float* view_err_ = nullptr;
  double slack_rel_ = 0.0;  ///< relative float-kernel deviation allowance
  double slack_abs_ = 0.0;  ///< absolute floor of the same
};

}  // namespace pexeso

#endif  // PEXESO_VEC_QUANT_H_
