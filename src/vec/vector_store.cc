#include "vec/vector_store.h"

#include <cmath>

#include "vec/kernels.h"

namespace pexeso {

void VectorStore::NormalizeInPlace(float* v, uint32_t dim) {
  double norm2 = 0.0;
  for (uint32_t i = 0; i < dim; ++i) norm2 += static_cast<double>(v[i]) * v[i];
  if (norm2 <= 0.0) {
    for (uint32_t i = 0; i < dim; ++i) v[i] = 0.0f;
    v[0] = 1.0f;
    return;
  }
  const float inv = static_cast<float>(1.0 / std::sqrt(norm2));
  for (uint32_t i = 0; i < dim; ++i) v[i] *= inv;
}

void VectorStore::NormalizeAll() {
  Materialize();
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) {
    NormalizeInPlace(data_.data() + i * dim_, dim_);
  }
  InvalidateNorms();
}

const float* VectorStore::EnsureNorms() const {
  const size_t n = size();
  if (n == 0) return nullptr;
  if (norms_ready_.load(std::memory_order_acquire) >= n) {
    return norms_.data();
  }
  std::lock_guard<std::mutex> lock(norms_mutex_);
  size_t ready = norms_ready_.load(std::memory_order_relaxed);
  if (ready < n) {
    norms_.resize(n);
    ComputeNorms(base() + ready * dim_, n - ready, dim_,
                 norms_.data() + ready);
    norms_ready_.store(n, std::memory_order_release);
  }
  return norms_.data();
}

void VectorStore::Serialize(BinaryWriter* w) const {
  w->Write<uint32_t>(dim_);
  const uint64_t n = size() * static_cast<uint64_t>(dim_);
  w->Write<uint64_t>(n);
  w->WriteBytes(base(), n * sizeof(float));
}

Status VectorStore::Deserialize(BinaryReader* r) {
  PEXESO_RETURN_NOT_OK(r->Read(&dim_));
  PEXESO_RETURN_NOT_OK(r->ReadVector(&data_));
  ext_ = nullptr;
  ext_count_ = 0;
  InvalidateNorms();
  if (dim_ != 0 && data_.size() % dim_ != 0) {
    return Status::Corruption("vector buffer not a multiple of dim");
  }
  return Status::OK();
}

}  // namespace pexeso
