#ifndef PEXESO_VEC_SEARCH_STATS_H_
#define PEXESO_VEC_SEARCH_STATS_H_

#include <algorithm>
#include <cstdint>

namespace pexeso {

/// \brief Instrumentation counters shared by every searcher. Figure 6a of
/// the paper compares the number of exact distance computations per method;
/// each searcher fills these in so the benchmark can reproduce that figure.
struct SearchStats {
  /// Exact d(.,.) evaluations in the original (embedding) space. The tiled
  /// verification pipeline counts every tile slot it evaluates (a tile may
  /// cover slots the per-pair scan would have skipped after an early match);
  /// the count is deterministic for a given (query, options) at any thread
  /// count, but not comparable pair-for-pair with the pre-pipeline scan.
  uint64_t distance_computations = 0;
  /// Of those, evaluations answered in the squared-distance comparison
  /// space (kernel shortcut): the inequality against tau^2 saved the
  /// per-pair sqrt that a full distance would have cost.
  uint64_t sqrt_free_comparisons = 0;
  /// Vector pairs ruled out by Lemma 1 (pivot filtering) during verification.
  uint64_t lemma1_filtered = 0;
  /// Vector pairs confirmed by Lemma 2 (pivot matching) without distance.
  uint64_t lemma2_matched = 0;
  /// Cell pairs pruned by Lemmas 3/4 during blocking.
  uint64_t cells_filtered = 0;
  /// Cell pairs fully matched by Lemmas 5/6 during blocking.
  uint64_t cells_matched = 0;
  /// Candidate (query vector, leaf cell) pairs emitted by blocking.
  uint64_t candidate_pairs = 0;
  /// Matching (query vector, leaf cell) pairs emitted by blocking.
  uint64_t matching_pairs = 0;
  /// Columns skipped by the Lemma 7 early-termination rule.
  uint64_t lemma7_kills = 0;
  /// Columns confirmed joinable before exhausting their candidates.
  uint64_t early_joinable = 0;
  /// (query record, column) pairs emitted by stage 1 of the verification
  /// pipeline (candidate generation).
  uint64_t candidate_blocks = 0;
  /// Many-to-many kernel tiles dispatched by stage 2 (tiled verification).
  /// Tile shapes depend only on the candidate set and the search options,
  /// never on the shard layout, so the count is identical at any
  /// intra-query thread count.
  uint64_t tiles_evaluated = 0;
  /// Exact float tile slots skipped because the int8 quantized pre-filter
  /// tier decided the pair conservatively (definite match or definite miss
  /// with calibrated slack). Each skip is a distance computation the float
  /// tier never ran; like tiles_evaluated it is independent of the shard
  /// layout and thread count.
  uint64_t quant_tile_skips = 0;
  /// Largest number of candidate blocks any one verification shard owned —
  /// a shard-imbalance diagnostic. Unlike every other counter this merges
  /// by MAX (a sum would be meaningless across shards/queries) and it
  /// naturally varies with intra_query_threads.
  uint64_t shard_max_blocks = 0;
  /// Columns abandoned by the kTopK pushdown because they provably could
  /// not beat the running k-th-best joinability bound. The bound evolves
  /// with execution order, so unlike the pipeline counters above this one
  /// legitimately varies with the intra-query thread count (results never
  /// do — a pruned column is outside the top-k under any schedule).
  uint64_t columns_pruned_topk = 0;
  /// Checkpoints at which a search stage stopped because the query's
  /// deadline had passed or its CancelToken fired (engine entry, shard
  /// column loops, per-partition and per-part-task checks all count one
  /// each when they trip).
  uint64_t deadline_expired = 0;
  /// Columns searched in live-lake delta indexes (appended-but-unmerged
  /// data) rather than base snapshots — how much of the answer came from
  /// fresh ingest.
  uint64_t delta_columns_searched = 0;
  /// Result columns removed by tombstone masking (dropped columns still
  /// present in a base/delta snapshot awaiting merge).
  uint64_t tombstones_masked = 0;
  /// Transient-IO retries taken while loading base snapshots for this
  /// search (each backoff-then-retry counts one; a search that needed none
  /// reads 0).
  uint64_t io_retries = 0;
  /// Snapshot loads that failed with Corruption during this search — bad
  /// bytes detected by the CRC/bounds checks, not environment flakiness.
  uint64_t corruption_detected = 0;
  /// Quarantined parts this search encountered (served from deltas only;
  /// their base was moved aside by recovery or fsck).
  uint64_t parts_quarantined = 0;
  /// Degraded parts this search encountered (merge retries exhausted; the
  /// part keeps serving its base+deltas while parked).
  uint64_t degraded_merges = 0;
  /// Queries answered with results known to be partial: some part failed
  /// to load or was quarantined, its error was surfaced per-part, and the
  /// rest of the answer was returned anyway.
  uint64_t partial_responses = 0;
  /// Shard attempts dispatched by a scatter-gather coordinator (initial
  /// scatters plus failover retries plus hedged duplicates all count one
  /// each) — total remote/virtual work fanned out, not queries.
  uint64_t scatters = 0;
  /// Cross-shard topk_floor raises published: a local k-th-best raised the
  /// shared global floor cell (on a shard: publishes into its floor link;
  /// on a coordinator's remote router: floor-update frames pushed to
  /// still-running shards). Like columns_pruned_topk this legitimately
  /// varies with scheduling; results never do.
  uint64_t floor_updates_sent = 0;
  /// Cross-shard topk_floor raises adopted: a part/attempt seeded its local
  /// bound from a global floor value above what it knew locally (on the
  /// coordinator's remote router: floor-update frames received from shards).
  uint64_t floor_updates_received = 0;
  /// Hedged (straggler re-dispatch) attempts: a replica was dispatched as a
  /// duplicate because the primary attempt exceeded the hedge latency
  /// threshold; first finisher wins and the loser is cancelled.
  uint64_t hedged_requests = 0;
  /// Failovers: a shard attempt failed with a transient/internal error and
  /// the coordinator retried the shard on the next replica.
  uint64_t failovers = 0;
  /// Shards with no healthy replica left: their parts were surfaced as
  /// per-part errors via OnPartStatus and the answer returned degraded.
  uint64_t shards_degraded = 0;
  /// Wire bytes the coordinator's remote attempts moved (sent + received
  /// across all shard connections of the queries summed here; 0 for
  /// virtual/in-process shards).
  uint64_t shard_bytes_moved = 0;
  /// Wall-clock split (seconds) of the two search phases.
  double block_seconds = 0.0;
  double verify_seconds = 0.0;

  void Reset() { *this = SearchStats{}; }

  SearchStats& operator+=(const SearchStats& o) {
    distance_computations += o.distance_computations;
    sqrt_free_comparisons += o.sqrt_free_comparisons;
    lemma1_filtered += o.lemma1_filtered;
    lemma2_matched += o.lemma2_matched;
    cells_filtered += o.cells_filtered;
    cells_matched += o.cells_matched;
    candidate_pairs += o.candidate_pairs;
    matching_pairs += o.matching_pairs;
    lemma7_kills += o.lemma7_kills;
    early_joinable += o.early_joinable;
    candidate_blocks += o.candidate_blocks;
    tiles_evaluated += o.tiles_evaluated;
    quant_tile_skips += o.quant_tile_skips;
    shard_max_blocks = std::max(shard_max_blocks, o.shard_max_blocks);
    columns_pruned_topk += o.columns_pruned_topk;
    deadline_expired += o.deadline_expired;
    delta_columns_searched += o.delta_columns_searched;
    tombstones_masked += o.tombstones_masked;
    io_retries += o.io_retries;
    corruption_detected += o.corruption_detected;
    parts_quarantined += o.parts_quarantined;
    degraded_merges += o.degraded_merges;
    partial_responses += o.partial_responses;
    scatters += o.scatters;
    floor_updates_sent += o.floor_updates_sent;
    floor_updates_received += o.floor_updates_received;
    hedged_requests += o.hedged_requests;
    failovers += o.failovers;
    shards_degraded += o.shards_degraded;
    shard_bytes_moved += o.shard_bytes_moved;
    block_seconds += o.block_seconds;
    verify_seconds += o.verify_seconds;
    return *this;
  }
};

}  // namespace pexeso

#endif  // PEXESO_VEC_SEARCH_STATS_H_
