// NEON distance primitives for AArch64, where NEON is part of the baseline
// ISA — no runtime feature check or target attributes needed; the TU is
// simply empty on other architectures.

#include "vec/kernels_arch.h"

#if defined(PEXESO_HAVE_NEON_KERNELS)

#include <arm_neon.h>

#include <cmath>

namespace pexeso::simd {
namespace {

double NeonSqL2(const float* a, const float* b, uint32_t dim) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  uint32_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    const float32x4_t d0 = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    const float32x4_t d1 =
        vsubq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    acc0 = vfmaq_f32(acc0, d0, d0);
    acc1 = vfmaq_f32(acc1, d1, d1);
  }
  for (; i + 4 <= dim; i += 4) {
    const float32x4_t d = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc0 = vfmaq_f32(acc0, d, d);
  }
  double total = static_cast<double>(vaddvq_f32(vaddq_f32(acc0, acc1)));
  float tail = 0.0f;
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    tail += d * d;
  }
  return total + static_cast<double>(tail);
}

void NeonSqL2Many(const float* q, const float* base, size_t n, uint32_t dim,
                  double* out) {
  for (size_t r = 0; r < n; ++r) out[r] = NeonSqL2(q, base + r * dim, dim);
}

double NeonDot(const float* a, const float* b, uint32_t dim) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  uint32_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  for (; i + 4 <= dim; i += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
  }
  double total = static_cast<double>(vaddvq_f32(vaddq_f32(acc0, acc1)));
  float tail = 0.0f;
  for (; i < dim; ++i) tail += a[i] * b[i];
  return total + static_cast<double>(tail);
}

void NeonDotMany(const float* q, const float* base, size_t n, uint32_t dim,
                 double* out) {
  for (size_t r = 0; r < n; ++r) out[r] = NeonDot(q, base + r * dim, dim);
}

double NeonCosCore(const float* a, const float* b, uint32_t dim, double* na2,
                   double* nb2) {
  float32x4_t dot = vdupq_n_f32(0.0f);
  float32x4_t na = vdupq_n_f32(0.0f);
  float32x4_t nb = vdupq_n_f32(0.0f);
  uint32_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float32x4_t va = vld1q_f32(a + i);
    const float32x4_t vb = vld1q_f32(b + i);
    dot = vfmaq_f32(dot, va, vb);
    na = vfmaq_f32(na, va, va);
    nb = vfmaq_f32(nb, vb, vb);
  }
  double dsum = static_cast<double>(vaddvq_f32(dot));
  double nasum = static_cast<double>(vaddvq_f32(na));
  double nbsum = static_cast<double>(vaddvq_f32(nb));
  float dt = 0.0f, at = 0.0f, bt = 0.0f;
  for (; i < dim; ++i) {
    dt += a[i] * b[i];
    at += a[i] * a[i];
    bt += b[i] * b[i];
  }
  *na2 = nasum + static_cast<double>(at);
  *nb2 = nbsum + static_cast<double>(bt);
  return dsum + static_cast<double>(dt);
}

double NeonL1(const float* a, const float* b, uint32_t dim) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  uint32_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    acc0 = vaddq_f32(acc0, vabdq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
    acc1 = vaddq_f32(acc1,
                     vabdq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4)));
  }
  for (; i + 4 <= dim; i += 4) {
    acc0 = vaddq_f32(acc0, vabdq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  double total = static_cast<double>(vaddvq_f32(vaddq_f32(acc0, acc1)));
  float tail = 0.0f;
  for (; i < dim; ++i) tail += std::fabs(a[i] - b[i]);
  return total + static_cast<double>(tail);
}

void NeonL1Many(const float* q, const float* base, size_t n, uint32_t dim,
                double* out) {
  for (size_t r = 0; r < n; ++r) out[r] = NeonL1(q, base + r * dim, dim);
}

void NeonNorms(const float* base, size_t n, uint32_t dim, float* out) {
  for (size_t r = 0; r < n; ++r) {
    const float* v = base + r * dim;
    out[r] = static_cast<float>(std::sqrt(NeonDot(v, v, dim)));
  }
}

// Many-to-many tiles, blocked four query rows deep: each 4-float chunk of a
// base row is loaded once and fed to four FMA accumulators (see the AVX2 TU
// for the rationale).

void NeonSqL2Tile(const float* qs, size_t nq, const float* base, size_t nv,
                  uint32_t dim, double* out) {
  size_t r = 0;
  for (; r + 4 <= nq; r += 4) {
    const float* q0 = qs + (r + 0) * dim;
    const float* q1 = qs + (r + 1) * dim;
    const float* q2 = qs + (r + 2) * dim;
    const float* q3 = qs + (r + 3) * dim;
    for (size_t c = 0; c < nv; ++c) {
      const float* v = base + c * dim;
      float32x4_t acc0 = vdupq_n_f32(0.0f);
      float32x4_t acc1 = vdupq_n_f32(0.0f);
      float32x4_t acc2 = vdupq_n_f32(0.0f);
      float32x4_t acc3 = vdupq_n_f32(0.0f);
      uint32_t i = 0;
      for (; i + 4 <= dim; i += 4) {
        const float32x4_t bv = vld1q_f32(v + i);
        const float32x4_t d0 = vsubq_f32(vld1q_f32(q0 + i), bv);
        const float32x4_t d1 = vsubq_f32(vld1q_f32(q1 + i), bv);
        const float32x4_t d2 = vsubq_f32(vld1q_f32(q2 + i), bv);
        const float32x4_t d3 = vsubq_f32(vld1q_f32(q3 + i), bv);
        acc0 = vfmaq_f32(acc0, d0, d0);
        acc1 = vfmaq_f32(acc1, d1, d1);
        acc2 = vfmaq_f32(acc2, d2, d2);
        acc3 = vfmaq_f32(acc3, d3, d3);
      }
      float t0 = 0.0f, t1 = 0.0f, t2 = 0.0f, t3 = 0.0f;
      for (; i < dim; ++i) {
        const float x = v[i];
        const float d0 = q0[i] - x;
        const float d1 = q1[i] - x;
        const float d2 = q2[i] - x;
        const float d3 = q3[i] - x;
        t0 += d0 * d0;
        t1 += d1 * d1;
        t2 += d2 * d2;
        t3 += d3 * d3;
      }
      out[(r + 0) * nv + c] =
          static_cast<double>(vaddvq_f32(acc0)) + static_cast<double>(t0);
      out[(r + 1) * nv + c] =
          static_cast<double>(vaddvq_f32(acc1)) + static_cast<double>(t1);
      out[(r + 2) * nv + c] =
          static_cast<double>(vaddvq_f32(acc2)) + static_cast<double>(t2);
      out[(r + 3) * nv + c] =
          static_cast<double>(vaddvq_f32(acc3)) + static_cast<double>(t3);
    }
  }
  for (; r < nq; ++r) {
    NeonSqL2Many(qs + r * dim, base, nv, dim, out + r * nv);
  }
}

void NeonDotTile(const float* qs, size_t nq, const float* base, size_t nv,
                 uint32_t dim, double* out) {
  size_t r = 0;
  for (; r + 4 <= nq; r += 4) {
    const float* q0 = qs + (r + 0) * dim;
    const float* q1 = qs + (r + 1) * dim;
    const float* q2 = qs + (r + 2) * dim;
    const float* q3 = qs + (r + 3) * dim;
    for (size_t c = 0; c < nv; ++c) {
      const float* v = base + c * dim;
      float32x4_t acc0 = vdupq_n_f32(0.0f);
      float32x4_t acc1 = vdupq_n_f32(0.0f);
      float32x4_t acc2 = vdupq_n_f32(0.0f);
      float32x4_t acc3 = vdupq_n_f32(0.0f);
      uint32_t i = 0;
      for (; i + 4 <= dim; i += 4) {
        const float32x4_t bv = vld1q_f32(v + i);
        acc0 = vfmaq_f32(acc0, vld1q_f32(q0 + i), bv);
        acc1 = vfmaq_f32(acc1, vld1q_f32(q1 + i), bv);
        acc2 = vfmaq_f32(acc2, vld1q_f32(q2 + i), bv);
        acc3 = vfmaq_f32(acc3, vld1q_f32(q3 + i), bv);
      }
      float t0 = 0.0f, t1 = 0.0f, t2 = 0.0f, t3 = 0.0f;
      for (; i < dim; ++i) {
        const float x = v[i];
        t0 += q0[i] * x;
        t1 += q1[i] * x;
        t2 += q2[i] * x;
        t3 += q3[i] * x;
      }
      out[(r + 0) * nv + c] =
          static_cast<double>(vaddvq_f32(acc0)) + static_cast<double>(t0);
      out[(r + 1) * nv + c] =
          static_cast<double>(vaddvq_f32(acc1)) + static_cast<double>(t1);
      out[(r + 2) * nv + c] =
          static_cast<double>(vaddvq_f32(acc2)) + static_cast<double>(t2);
      out[(r + 3) * nv + c] =
          static_cast<double>(vaddvq_f32(acc3)) + static_cast<double>(t3);
    }
  }
  for (; r < nq; ++r) {
    NeonDotMany(qs + r * dim, base, nv, dim, out + r * nv);
  }
}

void NeonL1Tile(const float* qs, size_t nq, const float* base, size_t nv,
                uint32_t dim, double* out) {
  size_t r = 0;
  for (; r + 4 <= nq; r += 4) {
    const float* q0 = qs + (r + 0) * dim;
    const float* q1 = qs + (r + 1) * dim;
    const float* q2 = qs + (r + 2) * dim;
    const float* q3 = qs + (r + 3) * dim;
    for (size_t c = 0; c < nv; ++c) {
      const float* v = base + c * dim;
      float32x4_t acc0 = vdupq_n_f32(0.0f);
      float32x4_t acc1 = vdupq_n_f32(0.0f);
      float32x4_t acc2 = vdupq_n_f32(0.0f);
      float32x4_t acc3 = vdupq_n_f32(0.0f);
      uint32_t i = 0;
      for (; i + 4 <= dim; i += 4) {
        const float32x4_t bv = vld1q_f32(v + i);
        acc0 = vaddq_f32(acc0, vabdq_f32(vld1q_f32(q0 + i), bv));
        acc1 = vaddq_f32(acc1, vabdq_f32(vld1q_f32(q1 + i), bv));
        acc2 = vaddq_f32(acc2, vabdq_f32(vld1q_f32(q2 + i), bv));
        acc3 = vaddq_f32(acc3, vabdq_f32(vld1q_f32(q3 + i), bv));
      }
      float t0 = 0.0f, t1 = 0.0f, t2 = 0.0f, t3 = 0.0f;
      for (; i < dim; ++i) {
        const float x = v[i];
        t0 += std::fabs(q0[i] - x);
        t1 += std::fabs(q1[i] - x);
        t2 += std::fabs(q2[i] - x);
        t3 += std::fabs(q3[i] - x);
      }
      out[(r + 0) * nv + c] =
          static_cast<double>(vaddvq_f32(acc0)) + static_cast<double>(t0);
      out[(r + 1) * nv + c] =
          static_cast<double>(vaddvq_f32(acc1)) + static_cast<double>(t1);
      out[(r + 2) * nv + c] =
          static_cast<double>(vaddvq_f32(acc2)) + static_cast<double>(t2);
      out[(r + 3) * nv + c] =
          static_cast<double>(vaddvq_f32(acc3)) + static_cast<double>(t3);
    }
  }
  for (; r < nq; ++r) {
    NeonL1Many(qs + r * dim, base, nv, dim, out + r * nv);
  }
}

// int8 code tiles: widen 8 codes at a time to int16, difference, widening
// multiply-accumulate (squares) / widening absolute-difference accumulate
// (L1) into int32 lanes. Integer arithmetic is exact — no lane-structure
// concerns as with the float tiles.

void NeonI8SqTile(const int8_t* qs, size_t nq, const int8_t* base, size_t nv,
                  uint32_t dim, int32_t* out) {
  for (size_t r = 0; r < nq; ++r) {
    const int8_t* q = qs + r * dim;
    for (size_t c = 0; c < nv; ++c) {
      const int8_t* v = base + c * dim;
      int32x4_t acc = vdupq_n_s32(0);
      uint32_t i = 0;
      for (; i + 8 <= dim; i += 8) {
        const int16x8_t d = vsubq_s16(vmovl_s8(vld1_s8(q + i)),
                                      vmovl_s8(vld1_s8(v + i)));
        acc = vmlal_s16(acc, vget_low_s16(d), vget_low_s16(d));
        acc = vmlal_s16(acc, vget_high_s16(d), vget_high_s16(d));
      }
      int32_t tail = 0;
      for (; i < dim; ++i) {
        const int32_t d = static_cast<int32_t>(q[i]) - v[i];
        tail += d * d;
      }
      out[r * nv + c] = vaddvq_s32(acc) + tail;
    }
  }
}

void NeonI8L1Tile(const int8_t* qs, size_t nq, const int8_t* base, size_t nv,
                  uint32_t dim, int32_t* out) {
  for (size_t r = 0; r < nq; ++r) {
    const int8_t* q = qs + r * dim;
    for (size_t c = 0; c < nv; ++c) {
      const int8_t* v = base + c * dim;
      int32x4_t acc = vdupq_n_s32(0);
      uint32_t i = 0;
      for (; i + 8 <= dim; i += 8) {
        const int16x8_t d = vabdl_s8(vld1_s8(q + i), vld1_s8(v + i));
        acc = vpadalq_s16(acc, d);
      }
      int32_t tail = 0;
      for (; i < dim; ++i) {
        const int32_t d = static_cast<int32_t>(q[i]) - v[i];
        tail += d < 0 ? -d : d;
      }
      out[r * nv + c] = vaddvq_s32(acc) + tail;
    }
  }
}

constexpr Ops kNeonOps = {
    SimdLevel::kNeon, &NeonSqL2,    &NeonSqL2Many,
    &NeonDot,         &NeonDotMany, &NeonCosCore,
    &NeonL1,          &NeonL1Many,  &NeonNorms,
    &NeonSqL2Tile,    &NeonDotTile, &NeonL1Tile,
    &NeonI8SqTile,    &NeonI8L1Tile,
};

}  // namespace

const Ops& NeonOps() { return kNeonOps; }

}  // namespace pexeso::simd

#endif  // PEXESO_HAVE_NEON_KERNELS
