#include "baseline/ept.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "vec/kernels.h"

namespace pexeso {

void ExtremePivotTable::Build(const Options& options) {
  options_ = options;
  const size_t n = store_->size();
  const uint32_t dim = store_->dim();
  PEXESO_CHECK(n > 0);
  num_pivots_ = options.num_groups * options.pivots_per_group;
  PEXESO_CHECK(num_pivots_ > 0 && num_pivots_ < (1u << 16));
  const KernelSet* ks = metric_->kernels();

  Rng rng(options.seed);
  // Candidate pivots: random data points (the EPT paper's construction
  // randomizes candidates per group and relies on the extremeness criterion
  // for quality).
  std::vector<size_t> picks =
      rng.SampleIndices(n, std::min<size_t>(n, num_pivots_));
  pivots_.assign(static_cast<size_t>(num_pivots_) * dim, 0.0f);
  for (uint32_t p = 0; p < num_pivots_; ++p) {
    const float* src = store_->View(static_cast<VecId>(picks[p % picks.size()]));
    std::copy(src, src + dim, pivots_.data() + static_cast<size_t>(p) * dim);
  }
  // Pivot and store norms, computed once, keep the cosine build at one dot
  // product per point-pivot pair (DistManyNormed).
  pivot_norms_.assign(num_pivots_, 0.0f);
  const float* snorms = nullptr;
  if (ks != nullptr) {
    ComputeNorms(pivots_.data(), num_pivots_, dim, pivot_norms_.data());
    if (ks->kind == MetricKind::kCosine) snorms = store_->EnsureNorms();
  }

  // Estimate mu_p on a sample. One batched point-vs-all-pivots kernel call
  // per sampled row; per-pivot accumulation order stays row order, so the
  // estimates match the per-pivot scan exactly.
  const size_t sample = std::min(options.mu_sample, n);
  std::vector<size_t> srows = rng.SampleIndices(n, sample);
  mu_.assign(num_pivots_, 0.0);
  std::vector<double> dq(num_pivots_);
  for (size_t r : srows) {
    const float* xv = store_->View(static_cast<VecId>(r));
    if (ks != nullptr) {
      const double xn = snorms != nullptr ? snorms[r] : 1.0;
      ks->DistManyNormed(xv, xn, pivots_.data(), pivot_norms_.data(),
                         num_pivots_, dim, dq.data());
    } else {
      for (uint32_t p = 0; p < num_pivots_; ++p) {
        dq[p] = metric_->Dist(pivots_.data() + static_cast<size_t>(p) * dim,
                              xv, dim);
      }
    }
    for (uint32_t p = 0; p < num_pivots_; ++p) mu_[p] += dq[p];
  }
  for (uint32_t p = 0; p < num_pivots_; ++p) {
    mu_[p] /= static_cast<double>(sample);
  }

  // Per point, per group: keep the most extreme pivot. Again one batched
  // kernel call per point covering every pivot of every group.
  const uint32_t g = options.num_groups;
  const uint32_t c = options.pivots_per_group;
  assigned_.assign(n * g, 0);
  pivot_dist_.assign(n * g, 0.0f);
  for (size_t x = 0; x < n; ++x) {
    const float* xv = store_->View(static_cast<VecId>(x));
    if (ks != nullptr) {
      const double xn = snorms != nullptr ? snorms[x] : 1.0;
      ks->DistManyNormed(xv, xn, pivots_.data(), pivot_norms_.data(),
                         num_pivots_, dim, dq.data());
    } else {
      for (uint32_t p = 0; p < num_pivots_; ++p) {
        dq[p] = metric_->Dist(pivots_.data() + static_cast<size_t>(p) * dim,
                              xv, dim);
      }
    }
    for (uint32_t j = 0; j < g; ++j) {
      double best_score = -1.0;
      uint32_t best_p = j * c;
      double best_d = 0.0;
      for (uint32_t k = 0; k < c; ++k) {
        const uint32_t p = j * c + k;
        const double d = dq[p];
        const double score = std::fabs(d - mu_[p]);
        if (score > best_score) {
          best_score = score;
          best_p = p;
          best_d = d;
        }
      }
      assigned_[x * g + j] = static_cast<uint16_t>(best_p);
      pivot_dist_[x * g + j] = static_cast<float>(best_d);
    }
  }
}

void ExtremePivotTable::RangeQuery(const float* q, double radius,
                                   std::vector<VecId>* out,
                                   SearchStats* stats) const {
  const size_t n = store_->size();
  const uint32_t dim = store_->dim();
  const uint32_t g = options_.num_groups;
  const KernelSet* ks = metric_->kernels();

  std::vector<double> dq(num_pivots_);
  stats->distance_computations += num_pivots_;
  const double qn = ks != nullptr ? ks->QueryNorm(q, dim) : 1.0;
  if (ks != nullptr) {
    ks->DistManyNormed(q, qn, pivots_.data(), pivot_norms_.data(), num_pivots_,
                       dim, dq.data());
  } else {
    for (uint32_t p = 0; p < num_pivots_; ++p) {
      dq[p] = metric_->Dist(pivots_.data() + static_cast<size_t>(p) * dim, q,
                            dim);
    }
  }

  const RangePredicate pred(*metric_, radius);
  const float* norms = pred.wants_norms() ? store_->EnsureNorms() : nullptr;
  for (size_t x = 0; x < n; ++x) {
    bool pruned = false;
    for (uint32_t j = 0; j < g; ++j) {
      const uint32_t p = assigned_[x * g + j];
      const double diff = dq[p] - static_cast<double>(pivot_dist_[x * g + j]);
      if (diff > radius || diff < -radius) {
        pruned = true;
        ++stats->lemma1_filtered;
        break;
      }
    }
    if (pruned) continue;
    ++stats->distance_computations;
    stats->sqrt_free_comparisons += pred.sqrt_saved();
    const double rn = norms != nullptr ? norms[x] : 1.0;
    if (pred.MatchNormed(q, store_->View(static_cast<VecId>(x)), dim, qn,
                         rn)) {
      out->push_back(static_cast<VecId>(x));
    }
  }
}

size_t ExtremePivotTable::MemoryBytes() const {
  return (pivots_.capacity() + pivot_norms_.capacity()) * sizeof(float) +
         mu_.capacity() * sizeof(double) +
         assigned_.capacity() * sizeof(uint16_t) +
         pivot_dist_.capacity() * sizeof(float);
}

}  // namespace pexeso
