#include "baseline/ept.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace pexeso {

void ExtremePivotTable::Build(const Options& options) {
  options_ = options;
  const size_t n = store_->size();
  const uint32_t dim = store_->dim();
  PEXESO_CHECK(n > 0);
  num_pivots_ = options.num_groups * options.pivots_per_group;
  PEXESO_CHECK(num_pivots_ > 0 && num_pivots_ < (1u << 16));

  Rng rng(options.seed);
  // Candidate pivots: random data points (the EPT paper's construction
  // randomizes candidates per group and relies on the extremeness criterion
  // for quality).
  std::vector<size_t> picks =
      rng.SampleIndices(n, std::min<size_t>(n, num_pivots_));
  pivots_.assign(static_cast<size_t>(num_pivots_) * dim, 0.0f);
  for (uint32_t p = 0; p < num_pivots_; ++p) {
    const float* src = store_->View(static_cast<VecId>(picks[p % picks.size()]));
    std::copy(src, src + dim, pivots_.data() + static_cast<size_t>(p) * dim);
  }

  // Estimate mu_p on a sample.
  const size_t sample = std::min(options.mu_sample, n);
  std::vector<size_t> srows = rng.SampleIndices(n, sample);
  mu_.assign(num_pivots_, 0.0);
  for (uint32_t p = 0; p < num_pivots_; ++p) {
    const float* pv = pivots_.data() + static_cast<size_t>(p) * dim;
    double acc = 0.0;
    for (size_t r : srows) {
      acc += metric_->Dist(pv, store_->View(static_cast<VecId>(r)), dim);
    }
    mu_[p] = acc / static_cast<double>(sample);
  }

  // Per point, per group: keep the most extreme pivot.
  const uint32_t g = options.num_groups;
  const uint32_t c = options.pivots_per_group;
  assigned_.assign(n * g, 0);
  pivot_dist_.assign(n * g, 0.0f);
  for (size_t x = 0; x < n; ++x) {
    const float* xv = store_->View(static_cast<VecId>(x));
    for (uint32_t j = 0; j < g; ++j) {
      double best_score = -1.0;
      uint32_t best_p = j * c;
      double best_d = 0.0;
      for (uint32_t k = 0; k < c; ++k) {
        const uint32_t p = j * c + k;
        const double d =
            metric_->Dist(pivots_.data() + static_cast<size_t>(p) * dim, xv,
                          dim);
        const double score = std::fabs(d - mu_[p]);
        if (score > best_score) {
          best_score = score;
          best_p = p;
          best_d = d;
        }
      }
      assigned_[x * g + j] = static_cast<uint16_t>(best_p);
      pivot_dist_[x * g + j] = static_cast<float>(best_d);
    }
  }
}

void ExtremePivotTable::RangeQuery(const float* q, double radius,
                                   std::vector<VecId>* out,
                                   SearchStats* stats) const {
  const size_t n = store_->size();
  const uint32_t dim = store_->dim();
  const uint32_t g = options_.num_groups;

  std::vector<double> dq(num_pivots_);
  for (uint32_t p = 0; p < num_pivots_; ++p) {
    ++stats->distance_computations;
    dq[p] = metric_->Dist(pivots_.data() + static_cast<size_t>(p) * dim, q,
                          dim);
  }
  for (size_t x = 0; x < n; ++x) {
    bool pruned = false;
    for (uint32_t j = 0; j < g; ++j) {
      const uint32_t p = assigned_[x * g + j];
      const double diff = dq[p] - static_cast<double>(pivot_dist_[x * g + j]);
      if (diff > radius || diff < -radius) {
        pruned = true;
        ++stats->lemma1_filtered;
        break;
      }
    }
    if (pruned) continue;
    ++stats->distance_computations;
    if (metric_->Dist(q, store_->View(static_cast<VecId>(x)), dim) <= radius) {
      out->push_back(static_cast<VecId>(x));
    }
  }
}

size_t ExtremePivotTable::MemoryBytes() const {
  return pivots_.capacity() * sizeof(float) + mu_.capacity() * sizeof(double) +
         assigned_.capacity() * sizeof(uint16_t) +
         pivot_dist_.capacity() * sizeof(float);
}

}  // namespace pexeso
