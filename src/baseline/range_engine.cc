#include "baseline/range_engine.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace pexeso {

JoinableRangeSearcher::JoinableRangeSearcher(const ColumnCatalog* catalog,
                                             const RangeQueryEngine* engine,
                                             const char* name)
    : catalog_(catalog), engine_(engine), name_(name) {
  vec2col_.resize(catalog->num_vectors());
  for (ColumnId col = 0; col < catalog->num_columns(); ++col) {
    const ColumnMeta& meta = catalog->column(col);
    for (VecId v = meta.first; v < meta.end(); ++v) vec2col_[v] = col;
  }
}

std::vector<JoinableColumn> JoinableRangeSearcher::Search(
    const VectorStore& query, const SearchThresholds& thresholds,
    SearchStats* stats) const {
  JoinQuery jq;
  jq.vectors = &query;
  jq.thresholds = thresholds;
  auto results = ExecuteCollect(*this, jq, stats);
  PEXESO_CHECK_MSG(results.ok(), results.status().ToString().c_str());
  return std::move(results).ValueOrDie();
}

Status JoinableRangeSearcher::Execute(const JoinQuery& jq, ResultSink* sink,
                                      SearchStats* stats) const {
  PEXESO_CHECK(jq.vectors != nullptr);
  PEXESO_CHECK(sink != nullptr);
  SearchStats local;
  if (stats == nullptr) stats = &local;
  const VectorStore& query = *jq.vectors;
  const uint32_t t_abs = jq.EffectiveT();
  const bool topk_mode = jq.mode == QueryMode::kTopK;
  const bool exact = jq.exact_counts();
  const uint32_t num_q = static_cast<uint32_t>(query.size());
  const size_t num_cols = catalog_->num_columns();

  const auto finish = [&](const Status& st) {
    sink->OnDone(st);
    return st;
  };
  if (num_q == 0 || (topk_mode && jq.k == 0)) return finish(Status::OK());

  std::vector<uint32_t> match_map(num_cols, 0);
  std::vector<uint8_t> joinable(num_cols, 0);
  std::vector<uint8_t> dead(num_cols, 0);
  std::vector<uint32_t> bound_scratch;
  uint32_t bound = jq.topk_floor;
  std::vector<uint32_t> stamp(num_cols, 0);
  std::vector<VecId> results;

  for (uint32_t q = 0; q < num_q; ++q) {
    // Deadline/cancellation checkpoint before each range query (the unit
    // of work here). Record-major counts are incomplete mid-scan, so a
    // trip returns the status with no result columns.
    Status live = jq.CheckLive();
    if (!live.ok()) {
      ++stats->deadline_expired;
      return finish(live);
    }
    if (topk_mode && num_cols >= jq.k && (q & 7u) == 0) {
      // Same record-major pushdown as PEXESO-H, at the same checkpoint
      // granularity (every 8 records — a stale bound only prunes less,
      // never wrongly): mark columns that cannot strictly beat the running
      // k-th-best count dead. The range query below still runs (it serves
      // every column at once), but dead columns stop being credited or
      // tracked.
      bound_scratch.assign(match_map.begin(), match_map.end());
      std::nth_element(bound_scratch.begin(),
                       bound_scratch.begin() + (jq.k - 1),
                       bound_scratch.end(), std::greater<uint32_t>());
      bound = std::max({bound, jq.topk_floor, bound_scratch[jq.k - 1]});
      if (bound > 0) {
        for (ColumnId col = 0; col < num_cols; ++col) {
          if (dead[col]) continue;
          if (static_cast<uint64_t>(match_map[col]) + (num_q - q) < bound) {
            dead[col] = 1;
            ++stats->columns_pruned_topk;
          }
        }
      }
    }
    results.clear();
    engine_->RangeQuery(query.View(q), jq.thresholds.tau, &results, stats);
    const uint32_t mark = q + 1;
    for (VecId v : results) {
      const ColumnId col = vec2col_[v];
      if (stamp[col] == mark || (joinable[col] && !exact) || dead[col]) {
        continue;
      }
      stamp[col] = mark;
      if (++match_map[col] >= t_abs && !joinable[col]) {
        joinable[col] = 1;
        ++stats->early_joinable;
      }
    }
  }

  std::vector<JoinableColumn> out;
  for (ColumnId col = 0; col < num_cols; ++col) {
    if (topk_mode && dead[col]) continue;
    if (match_map[col] >= t_abs) {
      JoinableColumn jc;
      jc.column = col;
      jc.match_count = match_map[col];
      jc.joinability =
          static_cast<double>(jc.match_count) / static_cast<double>(num_q);
      out.push_back(std::move(jc));
    }
  }
  if (topk_mode) RankTopK(&out, jq.k);
  for (auto& jc : out) sink->OnColumn(std::move(jc));
  return finish(Status::OK());
}

}  // namespace pexeso
