#include "baseline/range_engine.h"

#include <algorithm>

namespace pexeso {

JoinableRangeSearcher::JoinableRangeSearcher(const ColumnCatalog* catalog,
                                             const RangeQueryEngine* engine,
                                             const char* name)
    : catalog_(catalog), engine_(engine), name_(name) {
  vec2col_.resize(catalog->num_vectors());
  for (ColumnId col = 0; col < catalog->num_columns(); ++col) {
    const ColumnMeta& meta = catalog->column(col);
    for (VecId v = meta.first; v < meta.end(); ++v) vec2col_[v] = col;
  }
}

std::vector<JoinableColumn> JoinableRangeSearcher::SearchImpl(
    const VectorStore& query, const SearchThresholds& thresholds,
    bool exact_joinability, SearchStats* stats) const {
  SearchStats local;
  if (stats == nullptr) stats = &local;
  const uint32_t t_abs = std::max<uint32_t>(1, thresholds.t_abs);
  const uint32_t num_q = static_cast<uint32_t>(query.size());
  const size_t num_cols = catalog_->num_columns();

  std::vector<uint32_t> match_map(num_cols, 0);
  std::vector<uint8_t> joinable(num_cols, 0);
  std::vector<uint32_t> stamp(num_cols, 0);
  std::vector<VecId> results;

  for (uint32_t q = 0; q < num_q; ++q) {
    results.clear();
    engine_->RangeQuery(query.View(q), thresholds.tau, &results, stats);
    const uint32_t mark = q + 1;
    for (VecId v : results) {
      const ColumnId col = vec2col_[v];
      if (stamp[col] == mark || (joinable[col] && !exact_joinability)) {
        continue;
      }
      stamp[col] = mark;
      if (++match_map[col] >= t_abs && !joinable[col]) {
        joinable[col] = 1;
        ++stats->early_joinable;
      }
    }
  }

  std::vector<JoinableColumn> out;
  for (ColumnId col = 0; col < num_cols; ++col) {
    if (match_map[col] >= t_abs) {
      JoinableColumn jc;
      jc.column = col;
      jc.match_count = match_map[col];
      jc.joinability =
          static_cast<double>(jc.match_count) / static_cast<double>(num_q);
      out.push_back(jc);
    }
  }
  return out;
}

}  // namespace pexeso
