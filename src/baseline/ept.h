#ifndef PEXESO_BASELINE_EPT_H_
#define PEXESO_BASELINE_EPT_H_

#include <cstdint>
#include <vector>

#include "baseline/range_engine.h"
#include "vec/metric.h"
#include "vec/vector_store.h"

namespace pexeso {

/// \brief Extreme Pivot Table (the EPT competitor [29], recommended by the
/// pivot-indexing survey [4] for its all-round competitiveness).
///
/// EPT partitions a pool of pivots into groups; every data point keeps, per
/// group, the pivot that is most "extreme" for it — the one maximizing
/// |d(x,p) - mu_p| where mu_p is p's mean distance to the data. A range
/// query computes the distances from q to all pivots once, then scans the
/// table and prunes x as soon as one group's stored pivot violates
/// |d(q,p) - d(x,p)| <= tau (Lemma 1 applied per point with its best
/// pivot); survivors are verified exactly.
class ExtremePivotTable : public RangeQueryEngine {
 public:
  struct Options {
    uint32_t num_groups = 4;        ///< entries stored per point
    uint32_t pivots_per_group = 4;  ///< candidate pivots per group
    size_t mu_sample = 2000;        ///< sample size for estimating mu_p
    uint64_t seed = 23;
  };

  ExtremePivotTable(const VectorStore* store, const Metric* metric)
      : store_(store), metric_(metric) {}

  /// Selects pivots, estimates their mu, and assigns per-point extremes.
  void Build(const Options& options);

  void RangeQuery(const float* q, double radius, std::vector<VecId>* out,
                  SearchStats* stats) const override;

  size_t MemoryBytes() const override;

  uint32_t num_pivots() const { return num_pivots_; }

 private:
  const VectorStore* store_;
  const Metric* metric_;
  Options options_;
  uint32_t num_pivots_ = 0;          ///< num_groups * pivots_per_group
  std::vector<float> pivots_;        ///< num_pivots_ x dim
  std::vector<float> pivot_norms_;   ///< ||p||, for the normed kernel path
  std::vector<double> mu_;           ///< per pivot mean distance
  std::vector<uint16_t> assigned_;   ///< n x num_groups: global pivot index
  std::vector<float> pivot_dist_;    ///< n x num_groups: d(x, assigned pivot)
};

}  // namespace pexeso

#endif  // PEXESO_BASELINE_EPT_H_
