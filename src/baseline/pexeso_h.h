#ifndef PEXESO_BASELINE_PEXESO_H_H_
#define PEXESO_BASELINE_PEXESO_H_H_

#include <vector>

#include "core/join_result.h"
#include "core/pexeso_index.h"
#include "core/searcher.h"

namespace pexeso {

/// \brief PEXESO-H (Section VI-A competitor 2): identical hierarchical-grid
/// blocking to PEXESO, but verification is naive — for each candidate
/// (query vector, leaf cell) pair it computes the distance from the query
/// vector to every vector in the cell. No inverted index, no DaaT order, no
/// Lemma 1/2 per-vector filters, no Lemma 7. The joinable-skip early
/// termination is kept (every competitor in the paper has it).
///
/// Verification here is query-record-major, so the kTopK pushdown works
/// per record: before each record the running k-th-best bound (recomputed
/// from the live match counts) marks every column that can no longer
/// strictly beat it dead, and dead columns skip all further distance work.
class PexesoHSearcher : public JoinSearchEngine {
 public:
  explicit PexesoHSearcher(const PexesoIndex* index) : index_(index) {}

  const char* name() const override { return "pexeso-h"; }

  Status Execute(const JoinQuery& query, ResultSink* sink,
                 SearchStats* stats) const override;

 private:
  const PexesoIndex* index_;
};

}  // namespace pexeso

#endif  // PEXESO_BASELINE_PEXESO_H_H_
