#ifndef PEXESO_BASELINE_RANGE_ENGINE_H_
#define PEXESO_BASELINE_RANGE_ENGINE_H_

#include <vector>

#include "core/join_result.h"
#include "core/thresholds.h"
#include "vec/column_catalog.h"
#include "vec/search_stats.h"

namespace pexeso {

/// \brief A metric range-query engine: given a query vector, return every
/// repository vector within the radius. CTREE, EPT and PQ all follow the
/// same joinable-search workflow (paper Section VI-A): issue one range query
/// per query record and count results towards the joinability of the column
/// they belong to. Implementations may be approximate (PQ).
class RangeQueryEngine {
 public:
  virtual ~RangeQueryEngine() = default;

  /// Appends all vector ids within `radius` of `q` to `out`.
  virtual void RangeQuery(const float* q, double radius,
                          std::vector<VecId>* out,
                          SearchStats* stats) const = 0;

  /// Index footprint in bytes (Figure 6b).
  virtual size_t MemoryBytes() const = 0;
};

/// \brief The shared joinable-table-search workflow over a range engine:
/// for each query record run a range query and credit each returned vector
/// to its column (deduplicated per record), with the joinable-skip early
/// termination every competitor is equipped with.
class JoinableRangeSearcher {
 public:
  JoinableRangeSearcher(const ColumnCatalog* catalog,
                        const RangeQueryEngine* engine);

  std::vector<JoinableColumn> Search(const VectorStore& query,
                                     const SearchThresholds& thresholds,
                                     SearchStats* stats) const;

 private:
  const ColumnCatalog* catalog_;
  const RangeQueryEngine* engine_;
  std::vector<ColumnId> vec2col_;
};

}  // namespace pexeso

#endif  // PEXESO_BASELINE_RANGE_ENGINE_H_
