#ifndef PEXESO_BASELINE_RANGE_ENGINE_H_
#define PEXESO_BASELINE_RANGE_ENGINE_H_

#include <vector>

#include "core/engine.h"
#include "vec/column_catalog.h"

namespace pexeso {

/// \brief A metric range-query engine: given a query vector, return every
/// repository vector within the radius. CTREE, EPT and PQ all follow the
/// same joinable-search workflow (paper Section VI-A): issue one range query
/// per query record and count results towards the joinability of the column
/// they belong to. Implementations may be approximate (PQ).
class RangeQueryEngine {
 public:
  virtual ~RangeQueryEngine() = default;

  /// Appends all vector ids within `radius` of `q` to `out`.
  virtual void RangeQuery(const float* q, double radius,
                          std::vector<VecId>* out,
                          SearchStats* stats) const = 0;

  /// Index footprint in bytes (Figure 6b).
  virtual size_t MemoryBytes() const = 0;
};

/// \brief The shared joinable-table-search workflow over a range engine:
/// for each query record run a range query and credit each returned vector
/// to its column (deduplicated per record), with the joinable-skip early
/// termination every competitor is equipped with.
class JoinableRangeSearcher : public JoinSearchEngine {
 public:
  /// `name` labels the workflow after its range engine ("ctree", "ept",
  /// "pq", ...); the pointee must outlive the searcher (string literals do).
  JoinableRangeSearcher(const ColumnCatalog* catalog,
                        const RangeQueryEngine* engine,
                        const char* name = "range");

  const char* name() const override { return name_; }

  /// Thresholds-only convenience for the oracle call sites: a plain
  /// kThreshold execution, aborting on the (impossible for an in-memory
  /// workflow) non-OK status.
  std::vector<JoinableColumn> Search(const VectorStore& query,
                                     const SearchThresholds& thresholds,
                                     SearchStats* stats) const;

  /// Engine-interface entry point. Every query mode and the deadline/cancel
  /// controls are honored; mappings/ablation are PEXESO-index concepts and
  /// ignored here. The range queries themselves are per query record and
  /// shared by every column, so kTopK cannot skip distance work the way the
  /// column-major engines do — it ranks the exact counts and truncates
  /// (columns the running bound rules out just stop being credited).
  Status Execute(const JoinQuery& query, ResultSink* sink,
                 SearchStats* stats) const override;

 private:
  const ColumnCatalog* catalog_;
  const RangeQueryEngine* engine_;
  const char* name_;
  std::vector<ColumnId> vec2col_;
};

}  // namespace pexeso

#endif  // PEXESO_BASELINE_RANGE_ENGINE_H_
