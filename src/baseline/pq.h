#ifndef PEXESO_BASELINE_PQ_H_
#define PEXESO_BASELINE_PQ_H_

#include <cstdint>
#include <vector>

#include "baseline/range_engine.h"
#include "la/pca.h"
#include "vec/metric.h"
#include "vec/vector_store.h"

namespace pexeso {

/// \brief Product quantization [16], the paper's approximate competitor.
///
/// The embedding space is split into M contiguous subspaces; a k-means
/// codebook of K centroids is trained per subspace and every vector is
/// encoded as M code bytes. A range query builds the asymmetric-distance
/// (ADC) lookup table (M x K squared sub-distances) once and scans all
/// codes, reporting x when the ADC estimate is within radius * radius_scale.
///
/// Because ADC underestimates/overestimates true distances, range recall is
/// tuned by inflating the radius: CalibrateRadiusScale() reproduces the
/// paper's PQ-75 / PQ-85 variants ("adjust PQ to make the recall of range
/// query at least 75% / 85%"). Only the (default) Euclidean metric is
/// supported, as in the paper's experiments.
class PqIndex : public RangeQueryEngine {
 public:
  struct Options {
    uint32_t num_subquantizers = 8;  ///< M
    uint32_t codebook_size = 64;     ///< K (<= 256)
    uint32_t kmeans_iters = 12;
    size_t train_sample = 20000;
    uint64_t seed = 29;
  };

  explicit PqIndex(const VectorStore* store) : store_(store) {}

  /// Trains codebooks and encodes every vector.
  void Build(const Options& options);

  /// Approximate range query (see class comment).
  void RangeQuery(const float* q, double radius, std::vector<VecId>* out,
                  SearchStats* stats) const override;

  size_t MemoryBytes() const override;

  /// Multiplier applied to the query radius (recall knob).
  void set_radius_scale(double s) { radius_scale_ = s; }
  double radius_scale() const { return radius_scale_; }

  /// Finds the smallest radius scale (from `lo`, stepping by `step`) whose
  /// range-query recall over `queries` reaches `target_recall`, computing
  /// exact ground truth against the store with `metric`. Sets and returns
  /// the scale.
  double CalibrateRadiusScale(const VectorStore& queries, double tau,
                              double target_recall, const Metric* metric,
                              double lo = 0.6, double step = 0.05,
                              double hi = 3.0);

 private:
  /// ADC squared distance of encoded vector x to the current table.
  double AdcSquared(const std::vector<double>& table, size_t x) const;
  void FillTable(const float* q, std::vector<double>* table) const;

  const VectorStore* store_;
  Options options_;
  uint32_t dim_ = 0;
  std::vector<uint32_t> sub_begin_;  ///< M+1 subspace boundaries
  std::vector<KMeans> codebooks_;    ///< one per subspace
  std::vector<uint8_t> codes_;       ///< n x M
  double radius_scale_ = 1.0;
};

}  // namespace pexeso

#endif  // PEXESO_BASELINE_PQ_H_
