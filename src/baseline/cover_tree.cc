#include "baseline/cover_tree.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pexeso {

namespace {
/// Hard floor on scales; with duplicate bucketing the recursion terminates
/// long before this, the floor only guards pathological float behaviour.
constexpr int kMinLevel = -40;

double Pow2(int i) { return std::ldexp(1.0, i); }
}  // namespace

uint64_t CoverTree::BuildAll() {
  build_distances_ = 0;
  const size_t n = store_->size();
  nodes_.clear();
  nodes_.reserve(n);
  root_ = -1;
  for (size_t i = 0; i < n; ++i) {
    Insert(static_cast<VecId>(i));
  }
  return build_distances_;
}

void CoverTree::Insert(VecId p) {
  const float* pv = store_->View(p);
  if (root_ < 0) {
    // Root starts at the scale covering the metric's max distance.
    const int top =
        static_cast<int>(std::ceil(std::log2(
            std::max(2.0, metric_->MaxUnitDistance(store_->dim())))));
    nodes_.push_back(Node{p, top, {}, {}});
    root_ = 0;
    return;
  }

  ++build_distances_;
  double d_root = Dist(pv, nodes_[root_].point);
  if (d_root == 0.0) {
    nodes_[root_].duplicates.push_back(p);
    return;
  }
  // Raise the root scale if p falls outside its cover.
  while (d_root > Pow2(nodes_[root_].level)) {
    ++nodes_[root_].level;
  }

  // Iterative version of the textbook recursive insert. Qi holds the cover
  // set at scale i together with the (already computed) distances to p.
  struct Entry {
    uint32_t node;
    double dist;
  };
  std::vector<std::vector<Entry>> stack;  // Qi per scale, top = current
  std::vector<Entry> q0{{static_cast<uint32_t>(root_), d_root}};
  int i = nodes_[root_].level;
  stack.push_back(q0);
  std::vector<int> scales{i};

  while (true) {
    const auto& qi = stack.back();
    const int scale = scales.back();
    // Expand Q = Qi ∪ {children at level scale-1}.
    std::vector<Entry> q_all = qi;
    for (const Entry& e : qi) {
      for (uint32_t c : nodes_[e.node].children) {
        if (nodes_[c].level == scale - 1) {
          ++build_distances_;
          const double dc = Dist(pv, nodes_[c].point);
          if (dc == 0.0) {
            nodes_[c].duplicates.push_back(p);
            return;
          }
          q_all.push_back(Entry{c, dc});
        }
      }
    }
    double dmin = q_all.front().dist;
    for (const Entry& e : q_all) dmin = std::min(dmin, e.dist);

    // Textbook step 2/3: descend while d(p, Q) <= 2^scale, carrying the
    // filtered cover set {q in Q : d(p, q) <= 2^scale} down one scale.
    if (dmin <= Pow2(scale) && scale - 1 > kMinLevel) {
      std::vector<Entry> q_next;
      for (const Entry& e : q_all) {
        if (e.dist <= Pow2(scale)) q_next.push_back(e);
      }
      stack.push_back(std::move(q_next));
      scales.push_back(scale - 1);
      continue;
    }
    // "No parent found" at this scale: walk back up until some cover set
    // Q_s contains a node within 2^s, then attach p as its child at level
    // s-1. The root scale always qualifies because the root cover was
    // raised to contain p.
    while (true) {
      const auto& q_up = stack.back();
      const int up_scale = scales.back();
      const Entry* parent = nullptr;
      for (const Entry& e : q_up) {
        if (e.dist <= Pow2(up_scale)) {
          parent = &e;
          break;
        }
      }
      if (parent != nullptr) {
        const uint32_t node_idx = static_cast<uint32_t>(nodes_.size());
        nodes_.push_back(Node{p, up_scale - 1, {}, {}});
        nodes_[parent->node].children.push_back(node_idx);
        return;
      }
      PEXESO_CHECK(stack.size() > 1);
      stack.pop_back();
      scales.pop_back();
    }
  }
}

void CoverTree::RangeQuery(const float* q, double radius,
                           std::vector<VecId>* out, SearchStats* stats) const {
  if (root_ < 0) return;
  // DFS with the subtree-radius bound: the subtree rooted at an explicit
  // node of level l lies within 2^(l+1) of the node's point.
  std::vector<std::pair<uint32_t, double>> dfs;
  ++stats->distance_computations;
  dfs.emplace_back(static_cast<uint32_t>(root_),
                   Dist(q, nodes_[root_].point));
  while (!dfs.empty()) {
    auto [n, dn] = dfs.back();
    dfs.pop_back();
    const Node& node = nodes_[n];
    if (dn <= radius) {
      out->push_back(node.point);
      for (VecId dup : node.duplicates) out->push_back(dup);
    }
    for (uint32_t c : node.children) {
      ++stats->distance_computations;
      const double dc = Dist(q, nodes_[c].point);
      if (dc <= radius + Pow2(nodes_[c].level + 1)) {
        dfs.emplace_back(c, dc);
      }
    }
  }
}

void CoverTree::CollectSubtree(uint32_t node, std::vector<VecId>* out) const {
  out->push_back(nodes_[node].point);
  for (VecId dup : nodes_[node].duplicates) out->push_back(dup);
  for (uint32_t c : nodes_[node].children) CollectSubtree(c, out);
}

size_t CoverTree::MemoryBytes() const {
  size_t bytes = nodes_.capacity() * sizeof(Node);
  for (const auto& n : nodes_) {
    bytes += n.children.capacity() * sizeof(uint32_t);
    bytes += n.duplicates.capacity() * sizeof(VecId);
  }
  return bytes;
}

}  // namespace pexeso
