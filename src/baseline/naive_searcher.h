#ifndef PEXESO_BASELINE_NAIVE_SEARCHER_H_
#define PEXESO_BASELINE_NAIVE_SEARCHER_H_

#include <vector>

#include "core/engine.h"
#include "vec/column_catalog.h"
#include "vec/metric.h"

namespace pexeso {

/// \brief The exhaustive scan the paper opens Section III with: for each
/// query vector compute the distance to every repository vector. It serves
/// as the correctness oracle for every other searcher (property tests assert
/// result-set equality) and as the |Q| * sum|S| cost reference.
///
/// Like all competitors in the paper's evaluation, it is equipped with the
/// early-termination rule: once a column's joinability counter reaches T the
/// column is confirmed and skipped, and once too many query records have
/// provably no match the column is abandoned (Lemma 7 logic, which requires
/// no index).
class NaiveSearcher : public JoinSearchEngine {
 public:
  NaiveSearcher(const ColumnCatalog* catalog, const Metric* metric)
      : catalog_(catalog), metric_(metric) {}

  const char* name() const override { return "naive"; }

  /// Thresholds-only convenience for the oracle call sites: a plain
  /// kThreshold execution, aborting on the (impossible for an in-memory
  /// scan) non-OK status.
  std::vector<JoinableColumn> Search(const VectorStore& query,
                                     const SearchThresholds& thresholds,
                                     SearchStats* stats) const;

  /// Engine-interface entry point. The ablation switches are moot (there is
  /// no index to ablate) but every query mode, mapping collection and the
  /// deadline/cancel controls are honored, so the naive scan stays the
  /// oracle for every request shape the indexed engines support. kTopK
  /// abandons a column as soon as its achieved matches plus remaining query
  /// records cannot strictly beat the running k-th-best bound.
  Status Execute(const JoinQuery& query, ResultSink* sink,
                 SearchStats* stats) const override;

 private:
  const ColumnCatalog* catalog_;
  const Metric* metric_;
};

}  // namespace pexeso

#endif  // PEXESO_BASELINE_NAIVE_SEARCHER_H_
