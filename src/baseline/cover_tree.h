#ifndef PEXESO_BASELINE_COVER_TREE_H_
#define PEXESO_BASELINE_COVER_TREE_H_

#include <cstdint>
#include <vector>

#include "baseline/range_engine.h"
#include "vec/column_catalog.h"
#include "vec/kernels.h"
#include "vec/metric.h"
#include "vec/search_stats.h"

namespace pexeso {

/// \brief Cover tree over a vector store (the CTREE competitor [14]).
///
/// Classic Beygelzimer-style cover tree with base 2: a node at scale i
/// covers its descendants within 2^(i+1). Exact duplicates (distance 0) are
/// kept in per-node buckets since they would otherwise violate the
/// separation invariant. Range queries descend scale by scale, pruning
/// nodes with d(q, node) > radius + 2^(level+1).
class CoverTree : public RangeQueryEngine {
 public:
  CoverTree(const VectorStore* store, const Metric* metric)
      : store_(store), metric_(metric), kernels_(metric->kernels()) {}

  /// Inserts every vector of the store. Returns build distance count.
  uint64_t BuildAll();

  /// Collects all ids v with d(q, v) <= radius.
  void RangeQuery(const float* q, double radius, std::vector<VecId>* out,
                  SearchStats* stats) const override;

  size_t MemoryBytes() const override;
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    VecId point;
    int level;  ///< scale of this node
    std::vector<uint32_t> children;
    std::vector<VecId> duplicates;  ///< points identical to `point`
  };

  /// Devirtualized: the cover tree needs true distances (its bounds add
  /// radii), so it uses the kernel distance space, not the comparison one.
  double Dist(const float* a, VecId b) const {
    return KernelDist(*metric_, kernels_, a, store_->View(b), store_->dim());
  }

  void Insert(VecId p);
  void CollectSubtree(uint32_t node, std::vector<VecId>* out) const;

  const VectorStore* store_;
  const Metric* metric_;
  const KernelSet* kernels_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  mutable uint64_t build_distances_ = 0;
};

}  // namespace pexeso

#endif  // PEXESO_BASELINE_COVER_TREE_H_
