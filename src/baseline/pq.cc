#include "baseline/pq.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "vec/kernels.h"

namespace pexeso {

void PqIndex::Build(const Options& options) {
  options_ = options;
  dim_ = store_->dim();
  const size_t n = store_->size();
  PEXESO_CHECK(n > 0);
  PEXESO_CHECK(options.codebook_size >= 2 && options.codebook_size <= 256);
  const uint32_t m_count = std::min(options.num_subquantizers, dim_);
  options_.num_subquantizers = m_count;

  // Contiguous subspace boundaries; the first dim_ % M subspaces get one
  // extra dimension.
  sub_begin_.assign(m_count + 1, 0);
  const uint32_t base = dim_ / m_count;
  const uint32_t extra = dim_ % m_count;
  for (uint32_t m = 0; m < m_count; ++m) {
    sub_begin_[m + 1] = sub_begin_[m] + base + (m < extra ? 1 : 0);
  }

  // Train one codebook per subspace on a bounded sample.
  Rng rng(options.seed);
  const size_t sample = std::min(options.train_sample, n);
  std::vector<size_t> rows = rng.SampleIndices(n, sample);
  codebooks_.assign(m_count, KMeans());
  std::vector<float> buffer;
  for (uint32_t m = 0; m < m_count; ++m) {
    const uint32_t b = sub_begin_[m];
    const uint32_t sd = sub_begin_[m + 1] - b;
    buffer.assign(static_cast<size_t>(sample) * sd, 0.0f);
    for (size_t r = 0; r < sample; ++r) {
      const float* v = store_->View(static_cast<VecId>(rows[r]));
      std::copy(v + b, v + b + sd, buffer.data() + r * sd);
    }
    KMeans::Options ko;
    ko.k = options.codebook_size;
    ko.max_iters = options.kmeans_iters;
    ko.seed = options.seed + m + 1;
    codebooks_[m].Fit(buffer.data(), sample, sd, ko);
  }

  // Encode every vector.
  codes_.assign(n * m_count, 0);
  for (size_t x = 0; x < n; ++x) {
    const float* v = store_->View(static_cast<VecId>(x));
    for (uint32_t m = 0; m < m_count; ++m) {
      codes_[x * m_count + m] =
          static_cast<uint8_t>(codebooks_[m].Assign(v + sub_begin_[m]));
    }
  }
}

void PqIndex::FillTable(const float* q, std::vector<double>* table) const {
  const uint32_t m_count = options_.num_subquantizers;
  const uint32_t k_count = codebooks_.empty() ? 0 : codebooks_[0].k();
  table->assign(static_cast<size_t>(m_count) * k_count, 0.0);
  for (uint32_t m = 0; m < m_count; ++m) {
    const uint32_t b = sub_begin_[m];
    for (uint32_t k = 0; k < codebooks_[m].k(); ++k) {
      (*table)[static_cast<size_t>(m) * k_count + k] =
          codebooks_[m].DistanceTo(q + b, k);
    }
  }
}

double PqIndex::AdcSquared(const std::vector<double>& table, size_t x) const {
  const uint32_t m_count = options_.num_subquantizers;
  const uint32_t k_count = codebooks_[0].k();
  double acc = 0.0;
  for (uint32_t m = 0; m < m_count; ++m) {
    acc += table[static_cast<size_t>(m) * k_count + codes_[x * m_count + m]];
  }
  return acc;
}

void PqIndex::RangeQuery(const float* q, double radius, std::vector<VecId>* out,
                         SearchStats* stats) const {
  const size_t n = store_->size();
  std::vector<double> table;
  FillTable(q, &table);
  const double r = radius * radius_scale_;
  const double r2 = r * r;
  for (size_t x = 0; x < n; ++x) {
    ++stats->distance_computations;  // one ADC evaluation
    if (AdcSquared(table, x) <= r2) {
      out->push_back(static_cast<VecId>(x));
    }
  }
}

double PqIndex::CalibrateRadiusScale(const VectorStore& queries, double tau,
                                     double target_recall,
                                     const Metric* metric, double lo,
                                     double step, double hi) {
  const size_t n = store_->size();
  const uint32_t dim = store_->dim();
  // Exact ground truth per calibration query, through the comparison-space
  // kernel predicate (|queries| * n pairs is the expensive part here).
  const RangePredicate pred(*metric, tau);
  const float* norms = pred.wants_norms() ? store_->EnsureNorms() : nullptr;
  const float* qnorms = pred.wants_norms() ? queries.EnsureNorms() : nullptr;
  std::vector<std::vector<VecId>> truth(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const float* q = queries.View(static_cast<VecId>(qi));
    const double qn = qnorms != nullptr ? qnorms[qi] : 1.0;
    for (size_t x = 0; x < n; ++x) {
      const double rn = norms != nullptr ? norms[x] : 1.0;
      if (pred.MatchNormed(q, store_->View(static_cast<VecId>(x)), dim, qn,
                           rn)) {
        truth[qi].push_back(static_cast<VecId>(x));
      }
    }
  }
  size_t total_truth = 0;
  for (const auto& t : truth) total_truth += t.size();
  if (total_truth == 0) {
    radius_scale_ = 1.0;
    return radius_scale_;
  }

  SearchStats sink;
  std::vector<VecId> got;
  for (double scale = lo; scale <= hi + 1e-9; scale += step) {
    radius_scale_ = scale;
    size_t hit = 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      if (truth[qi].empty()) continue;
      got.clear();
      RangeQuery(queries.View(static_cast<VecId>(qi)), tau, &got, &sink);
      std::sort(got.begin(), got.end());
      for (VecId v : truth[qi]) {
        if (std::binary_search(got.begin(), got.end(), v)) ++hit;
      }
    }
    const double recall =
        static_cast<double>(hit) / static_cast<double>(total_truth);
    if (recall >= target_recall) break;
  }
  return radius_scale_;
}

size_t PqIndex::MemoryBytes() const {
  size_t bytes = codes_.capacity() + sub_begin_.capacity() * sizeof(uint32_t);
  for (const auto& cb : codebooks_) {
    bytes += cb.centroids().capacity() * sizeof(float);
  }
  return bytes;
}

}  // namespace pexeso
