#ifndef PEXESO_BASELINE_SCAN_MAPPING_H_
#define PEXESO_BASELINE_SCAN_MAPPING_H_

#include "core/join_result.h"
#include "vec/column_catalog.h"
#include "vec/kernels.h"
#include "vec/search_stats.h"
#include "vec/vector_store.h"

namespace pexeso {

/// Shared mapping post-pass of the scan-style engines (naive, PEXESO-H),
/// mirroring VerifyPipeline::CollectMappings: one target vector (the first
/// in store order) per matching query record, with the column's counters
/// upgraded to the exact joinability the full scan resolves as a side
/// effect. `qnorms`/`rnorms` are the cached norms when the predicate wants
/// them, null otherwise.
inline void ScanMapColumn(const ColumnCatalog& catalog,
                          const RangePredicate& pred,
                          const VectorStore& query, const float* qnorms,
                          const float* rnorms, JoinableColumn* jc,
                          SearchStats* stats) {
  const VectorStore& rstore = catalog.store();
  const uint32_t dim = rstore.dim();
  const uint32_t num_q = static_cast<uint32_t>(query.size());
  const ColumnMeta& meta = catalog.column(jc->column);
  jc->mapping.clear();
  for (uint32_t q = 0; q < num_q; ++q) {
    const float* qv = query.View(q);
    const double qn = qnorms != nullptr ? qnorms[q] : 1.0;
    for (VecId v = meta.first; v < meta.end(); ++v) {
      ++stats->distance_computations;
      stats->sqrt_free_comparisons += pred.sqrt_saved();
      const double rn = rnorms != nullptr ? rnorms[v] : 1.0;
      if (pred.MatchNormed(qv, rstore.View(v), dim, qn, rn)) {
        jc->mapping.push_back({q, v});
        break;
      }
    }
  }
  jc->match_count = static_cast<uint32_t>(jc->mapping.size());
  jc->joinability =
      static_cast<double>(jc->match_count) / static_cast<double>(num_q);
}

}  // namespace pexeso

#endif  // PEXESO_BASELINE_SCAN_MAPPING_H_
