#include "baseline/pexeso_h.h"

#include <algorithm>
#include <utility>

#include "baseline/scan_mapping.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "vec/kernels.h"

namespace pexeso {

Status PexesoHSearcher::Execute(const JoinQuery& jq, ResultSink* sink,
                                SearchStats* stats) const {
  PEXESO_CHECK(jq.vectors != nullptr);
  PEXESO_CHECK(sink != nullptr);
  SearchStats local;
  if (stats == nullptr) stats = &local;
  const VectorStore& query = *jq.vectors;
  const double tau = jq.thresholds.tau;
  const uint32_t t_abs = jq.EffectiveT();
  const bool topk_mode = jq.mode == QueryMode::kTopK;
  // With exact counts required the joinable-skip is disabled so match
  // counts keep accumulating past T instead of clamping there.
  const bool skip_joinable = !jq.exact_counts();
  const uint32_t num_q = static_cast<uint32_t>(query.size());

  const auto finish = [&](const Status& st) {
    sink->OnDone(st);
    return st;
  };
  if (num_q == 0 || (topk_mode && jq.k == 0)) return finish(Status::OK());
  Status live = jq.CheckLive();
  if (!live.ok()) {
    ++stats->deadline_expired;
    return finish(live);
  }

  Stopwatch block_watch;
  const PivotSpace& ps = index_->pivots();
  std::vector<double> mapped_q = ps.MapAll(query.raw().data(), query.size());
  HierarchicalGrid hgq;
  HierarchicalGrid::Options gopts;
  gopts.levels = index_->grid().levels();
  gopts.store_leaf_items = true;
  hgq.Build(mapped_q.data(), query.size(), ps.num_pivots(), ps.AxisExtent(),
            gopts);
  GridBlocker blocker(&index_->grid());
  BlockResult blocks = blocker.Run(hgq, mapped_q, tau, jq.ablation, stats);
  stats->block_seconds += block_watch.ElapsedSeconds();

  // Checkpoint between blocking and verification: an expired query does no
  // distance work at all.
  live = jq.CheckLive();
  if (!live.ok()) {
    ++stats->deadline_expired;
    return finish(live);
  }

  Stopwatch verify_watch;
  const ColumnCatalog& catalog = index_->catalog();
  const VectorStore& rstore = catalog.store();
  const uint32_t dim = rstore.dim();
  const size_t num_cols = catalog.num_columns();
  const RangePredicate pred(*index_->metric(), tau);
  const float* rnorms = pred.wants_norms() ? rstore.EnsureNorms() : nullptr;
  const float* qnorms = pred.wants_norms() ? query.EnsureNorms() : nullptr;

  // Precompute vec -> column once; the naive verification resolves columns
  // per vector rather than per postings list.
  std::vector<ColumnId> vec2col(rstore.size());
  for (ColumnId col = 0; col < num_cols; ++col) {
    const ColumnMeta& meta = catalog.column(col);
    for (VecId v = meta.first; v < meta.end(); ++v) vec2col[v] = col;
  }

  std::vector<uint32_t> match_map(num_cols, 0);
  std::vector<uint8_t> joinable(num_cols, 0);
  // kTopK: columns provably outside the top-k, skipped like tombstones.
  std::vector<uint8_t> dead(num_cols, 0);
  std::vector<uint32_t> bound_scratch;
  uint32_t bound = jq.topk_floor;
  // (q+1) stamp marking columns already resolved as matched for this q.
  std::vector<uint32_t> stamp(num_cols, 0);

  const auto& leaves = index_->grid().LeafCells();
  for (uint32_t q = 0; q < num_q; ++q) {
    // Deadline/cancellation checkpoint per query record. Record-major
    // counts are incomplete for every column mid-scan, so a trip returns
    // the status with no result columns.
    live = jq.CheckLive();
    if (!live.ok()) {
      ++stats->deadline_expired;
      stats->verify_seconds += verify_watch.ElapsedSeconds();
      return finish(live);
    }
    if (topk_mode && num_cols >= jq.k && (q & 7u) == 0) {
      // kTopK pushdown, record-major form: current counts only grow, so
      // the k-th largest of them (or the caller-seeded floor) is a valid
      // lower bound on the final k-th-best joinability. A column whose
      // count plus remaining records cannot strictly beat it is dead —
      // every distance against it from here on would be wasted. The
      // O(num_cols) recompute + dead sweep runs at checkpoint granularity
      // (every 8 records, like the deadline polls): a stale bound only
      // prunes less, never wrongly.
      bound_scratch.assign(match_map.begin(), match_map.end());
      std::nth_element(bound_scratch.begin(),
                       bound_scratch.begin() + (jq.k - 1),
                       bound_scratch.end(), std::greater<uint32_t>());
      bound = std::max({bound, jq.topk_floor, bound_scratch[jq.k - 1]});
      if (bound > 0) {
        for (ColumnId col = 0; col < num_cols; ++col) {
          if (dead[col]) continue;
          if (static_cast<uint64_t>(match_map[col]) + (num_q - q) < bound) {
            dead[col] = 1;
            ++stats->columns_pruned_topk;
          }
        }
      }
    }
    const float* qv = query.View(q);
    const double qn = qnorms != nullptr ? qnorms[q] : 1.0;
    const uint32_t mark = q + 1;
    // Matching cells first: every vector inside matches q by Lemma 5/6.
    for (uint32_t cell : blocks.match_cells[q]) {
      for (VecId v : leaves[cell].items) {
        const ColumnId col = vec2col[v];
        if (stamp[col] == mark || (joinable[col] && skip_joinable) ||
            dead[col] || index_->IsDeleted(col)) {
          continue;
        }
        stamp[col] = mark;
        if (++match_map[col] >= t_abs && !joinable[col]) {
          joinable[col] = 1;
          ++stats->early_joinable;
        }
      }
    }
    // Candidate cells: naive verification — distance to every vector in the
    // cell (no Lemma 1/2, no inverted index, no Lemma 7).
    for (uint32_t cell : blocks.cand_cells[q]) {
      for (VecId v : leaves[cell].items) {
        const ColumnId col = vec2col[v];
        if (stamp[col] == mark || (joinable[col] && skip_joinable) ||
            dead[col] || index_->IsDeleted(col)) {
          continue;
        }
        ++stats->distance_computations;
        stats->sqrt_free_comparisons += pred.sqrt_saved();
        const double rn = rnorms != nullptr ? rnorms[v] : 1.0;
        if (pred.MatchNormed(qv, rstore.View(v), dim, qn, rn)) {
          stamp[col] = mark;
          if (++match_map[col] >= t_abs && !joinable[col]) {
            joinable[col] = 1;
            ++stats->early_joinable;
          }
        }
      }
    }
  }
  stats->verify_seconds += verify_watch.ElapsedSeconds();

  const auto map_column = [&](JoinableColumn* jc) {
    ScanMapColumn(catalog, pred, query, qnorms, rnorms, jc, stats);
  };

  std::vector<JoinableColumn> out;
  for (ColumnId col = 0; col < num_cols; ++col) {
    if (index_->IsDeleted(col) || (topk_mode && dead[col])) continue;
    if (match_map[col] >= t_abs) {
      JoinableColumn jc;
      jc.column = col;
      jc.match_count = match_map[col];
      jc.joinability =
          static_cast<double>(jc.match_count) / static_cast<double>(num_q);
      if (!topk_mode && jq.collect_mappings) map_column(&jc);
      out.push_back(std::move(jc));
    }
  }
  if (topk_mode) {
    RankTopK(&out, jq.k);
    if (jq.collect_mappings) {
      for (auto& jc : out) map_column(&jc);
    }
  }
  for (auto& jc : out) sink->OnColumn(std::move(jc));
  return finish(Status::OK());
}

}  // namespace pexeso
