#include "baseline/pexeso_h.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "vec/kernels.h"

namespace pexeso {

std::vector<JoinableColumn> PexesoHSearcher::Search(
    const VectorStore& query, const SearchOptions& options,
    SearchStats* stats) const {
  SearchStats local;
  if (stats == nullptr) stats = &local;
  const double tau = options.thresholds.tau;
  const uint32_t t_abs = std::max<uint32_t>(1, options.thresholds.t_abs);
  // With exact_joinability the joinable-skip is disabled so match counts
  // keep accumulating past T instead of clamping there.
  const bool skip_joinable = !options.exact_joinability;
  const uint32_t num_q = static_cast<uint32_t>(query.size());
  std::vector<JoinableColumn> out;
  if (num_q == 0) return out;

  Stopwatch block_watch;
  const PivotSpace& ps = index_->pivots();
  std::vector<double> mapped_q = ps.MapAll(query.raw().data(), query.size());
  HierarchicalGrid hgq;
  HierarchicalGrid::Options gopts;
  gopts.levels = index_->grid().levels();
  gopts.store_leaf_items = true;
  hgq.Build(mapped_q.data(), query.size(), ps.num_pivots(), ps.AxisExtent(),
            gopts);
  GridBlocker blocker(&index_->grid());
  BlockResult blocks =
      blocker.Run(hgq, mapped_q, tau, options.ablation, stats);
  stats->block_seconds += block_watch.ElapsedSeconds();

  Stopwatch verify_watch;
  const ColumnCatalog& catalog = index_->catalog();
  const VectorStore& rstore = catalog.store();
  const uint32_t dim = rstore.dim();
  const size_t num_cols = catalog.num_columns();
  const RangePredicate pred(*index_->metric(), tau);
  const float* rnorms = pred.wants_norms() ? rstore.EnsureNorms() : nullptr;
  const float* qnorms = pred.wants_norms() ? query.EnsureNorms() : nullptr;

  // Precompute vec -> column once; the naive verification resolves columns
  // per vector rather than per postings list.
  std::vector<ColumnId> vec2col(rstore.size());
  for (ColumnId col = 0; col < num_cols; ++col) {
    const ColumnMeta& meta = catalog.column(col);
    for (VecId v = meta.first; v < meta.end(); ++v) vec2col[v] = col;
  }

  std::vector<uint32_t> match_map(num_cols, 0);
  std::vector<uint8_t> joinable(num_cols, 0);
  // (q+1) stamp marking columns already resolved as matched for this q.
  std::vector<uint32_t> stamp(num_cols, 0);

  const auto& leaves = index_->grid().LeafCells();
  for (uint32_t q = 0; q < num_q; ++q) {
    const float* qv = query.View(q);
    const double qn = qnorms != nullptr ? qnorms[q] : 1.0;
    const uint32_t mark = q + 1;
    // Matching cells first: every vector inside matches q by Lemma 5/6.
    for (uint32_t cell : blocks.match_cells[q]) {
      for (VecId v : leaves[cell].items) {
        const ColumnId col = vec2col[v];
        if (stamp[col] == mark || (joinable[col] && skip_joinable) ||
            index_->IsDeleted(col)) {
          continue;
        }
        stamp[col] = mark;
        if (++match_map[col] >= t_abs && !joinable[col]) {
          joinable[col] = 1;
          ++stats->early_joinable;
        }
      }
    }
    // Candidate cells: naive verification — distance to every vector in the
    // cell (no Lemma 1/2, no inverted index, no Lemma 7).
    for (uint32_t cell : blocks.cand_cells[q]) {
      for (VecId v : leaves[cell].items) {
        const ColumnId col = vec2col[v];
        if (stamp[col] == mark || (joinable[col] && skip_joinable) ||
            index_->IsDeleted(col)) {
          continue;
        }
        ++stats->distance_computations;
        stats->sqrt_free_comparisons += pred.sqrt_saved();
        const double rn = rnorms != nullptr ? rnorms[v] : 1.0;
        if (pred.MatchNormed(qv, rstore.View(v), dim, qn, rn)) {
          stamp[col] = mark;
          if (++match_map[col] >= t_abs && !joinable[col]) {
            joinable[col] = 1;
            ++stats->early_joinable;
          }
        }
      }
    }
  }
  stats->verify_seconds += verify_watch.ElapsedSeconds();

  for (ColumnId col = 0; col < num_cols; ++col) {
    if (index_->IsDeleted(col)) continue;
    if (match_map[col] >= t_abs) {
      JoinableColumn jc;
      jc.column = col;
      jc.match_count = match_map[col];
      jc.joinability =
          static_cast<double>(jc.match_count) / static_cast<double>(num_q);
      if (options.collect_mappings) {
        // Post-pass in the spirit of the method: no index structures, just
        // distances — one target vector (first in store order) per matching
        // query record, with the counters upgraded to the exact joinability
        // the full scan resolves (as VerifyPipeline::CollectMappings does).
        const ColumnMeta& meta = catalog.column(col);
        for (uint32_t q = 0; q < num_q; ++q) {
          const float* qv = query.View(q);
          const double qn = qnorms != nullptr ? qnorms[q] : 1.0;
          for (VecId v = meta.first; v < meta.end(); ++v) {
            ++stats->distance_computations;
            stats->sqrt_free_comparisons += pred.sqrt_saved();
            const double rn = rnorms != nullptr ? rnorms[v] : 1.0;
            if (pred.MatchNormed(qv, rstore.View(v), dim, qn, rn)) {
              jc.mapping.push_back({q, v});
              break;
            }
          }
        }
        jc.match_count = static_cast<uint32_t>(jc.mapping.size());
        jc.joinability =
            static_cast<double>(jc.match_count) / static_cast<double>(num_q);
      }
      out.push_back(jc);
    }
  }
  return out;
}

}  // namespace pexeso
