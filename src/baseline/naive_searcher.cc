#include "baseline/naive_searcher.h"

#include <algorithm>

namespace pexeso {

std::vector<JoinableColumn> NaiveSearcher::Search(
    const VectorStore& query, const SearchThresholds& thresholds,
    SearchStats* stats) const {
  SearchStats local;
  if (stats == nullptr) stats = &local;
  const double tau = thresholds.tau;
  const uint32_t t_abs = std::max<uint32_t>(1, thresholds.t_abs);
  const uint32_t num_q = static_cast<uint32_t>(query.size());
  const VectorStore& rstore = catalog_->store();
  const uint32_t dim = rstore.dim();

  std::vector<JoinableColumn> out;
  if (num_q == 0) return out;
  for (ColumnId col = 0; col < catalog_->num_columns(); ++col) {
    const ColumnMeta& meta = catalog_->column(col);
    uint32_t matches = 0;
    uint32_t mismatches = 0;
    bool joinable = false;
    for (uint32_t q = 0; q < num_q; ++q) {
      const float* qv = query.View(q);
      bool matched = false;
      for (VecId v = meta.first; v < meta.end(); ++v) {
        ++stats->distance_computations;
        if (metric_->Dist(qv, rstore.View(v), dim) <= tau) {
          matched = true;
          break;
        }
      }
      if (matched) {
        if (++matches >= t_abs) {
          joinable = true;
          ++stats->early_joinable;
          break;
        }
      } else {
        ++mismatches;
        if (num_q - mismatches < t_abs) {
          ++stats->lemma7_kills;
          break;
        }
      }
    }
    if (joinable) {
      JoinableColumn jc;
      jc.column = col;
      jc.match_count = matches;
      jc.joinability =
          static_cast<double>(matches) / static_cast<double>(num_q);
      out.push_back(jc);
    }
  }
  return out;
}

}  // namespace pexeso
