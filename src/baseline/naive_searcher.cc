#include "baseline/naive_searcher.h"

#include <algorithm>
#include <utility>

#include "baseline/scan_mapping.h"
#include "common/check.h"
#include "vec/kernels.h"

namespace pexeso {

std::vector<JoinableColumn> NaiveSearcher::Search(
    const VectorStore& query, const SearchThresholds& thresholds,
    SearchStats* stats) const {
  JoinQuery jq;
  jq.vectors = &query;
  jq.thresholds = thresholds;
  auto results = ExecuteCollect(*this, jq, stats);
  PEXESO_CHECK_MSG(results.ok(), results.status().ToString().c_str());
  return std::move(results).ValueOrDie();
}

Status NaiveSearcher::Execute(const JoinQuery& jq, ResultSink* sink,
                              SearchStats* stats) const {
  PEXESO_CHECK(jq.vectors != nullptr);
  PEXESO_CHECK(sink != nullptr);
  SearchStats local;
  if (stats == nullptr) stats = &local;
  const VectorStore& query = *jq.vectors;
  const double tau = jq.thresholds.tau;
  const uint32_t t_abs = jq.EffectiveT();
  const bool exact = jq.exact_counts();
  const bool topk_mode = jq.mode == QueryMode::kTopK;
  const uint32_t num_q = static_cast<uint32_t>(query.size());
  const VectorStore& rstore = catalog_->store();
  const uint32_t dim = rstore.dim();
  // The exhaustive scan is all distance evaluations, so it benefits the
  // most from the devirtualized comparison-space kernels.
  const RangePredicate pred(*metric_, tau);
  const float* rnorms = pred.wants_norms() ? rstore.EnsureNorms() : nullptr;
  const float* qnorms = pred.wants_norms() ? query.EnsureNorms() : nullptr;

  const auto finish = [&](const Status& st) {
    sink->OnDone(st);
    return st;
  };
  if (num_q == 0 || (topk_mode && jq.k == 0)) return finish(Status::OK());

  const auto map_column = [&](JoinableColumn* jc) {
    ScanMapColumn(*catalog_, pred, query, qnorms, rnorms, jc, stats);
  };

  TopKBound bound(jq.k, jq.topk_floor);
  std::vector<JoinableColumn> topk_candidates;
  for (ColumnId col = 0; col < catalog_->num_columns(); ++col) {
    // Deadline/cancellation checkpoint: per column, so an expired query
    // stops before the next column scan. Columns already delivered (or
    // collected, kTopK) stay valid partial results.
    Status live = jq.CheckLive();
    if (!live.ok()) {
      ++stats->deadline_expired;
      if (topk_mode) {
        // Partial top-k: rank what completed before the trip.
        RankTopK(&topk_candidates, jq.k);
        for (auto& jc : topk_candidates) sink->OnColumn(std::move(jc));
      }
      return finish(live);
    }
    const ColumnMeta& meta = catalog_->column(col);
    uint32_t matches = 0;
    uint32_t mismatches = 0;
    bool joinable = false;
    bool abandoned = false;
    for (uint32_t q = 0; q < num_q; ++q) {
      if (topk_mode) {
        // kTopK pushdown: even if every remaining record matched, a column
        // that cannot strictly beat the running k-th-best bound is out.
        const uint32_t b = bound.bound();
        if (static_cast<uint64_t>(matches) + (num_q - q) < b) {
          abandoned = true;
          ++stats->columns_pruned_topk;
          break;
        }
      }
      const float* qv = query.View(q);
      const double qn = qnorms != nullptr ? qnorms[q] : 1.0;
      bool matched = false;
      for (VecId v = meta.first; v < meta.end(); ++v) {
        ++stats->distance_computations;
        stats->sqrt_free_comparisons += pred.sqrt_saved();
        const double rn = rnorms != nullptr ? rnorms[v] : 1.0;
        if (pred.MatchNormed(qv, rstore.View(v), dim, qn, rn)) {
          matched = true;
          break;
        }
      }
      if (matched) {
        if (++matches >= t_abs && !joinable) {
          joinable = true;
          ++stats->early_joinable;
          // Joinable-skip: stop as soon as the column is confirmed, unless
          // the mode needs the exact joinability reported.
          if (!exact) break;
        }
      } else {
        ++mismatches;
        if (num_q - mismatches < t_abs) {
          ++stats->lemma7_kills;
          break;
        }
      }
    }
    if (abandoned || !joinable) continue;
    JoinableColumn jc;
    jc.column = col;
    jc.match_count = matches;
    jc.joinability =
        static_cast<double>(matches) / static_cast<double>(num_q);
    if (topk_mode) {
      bound.Offer(matches);
      topk_candidates.push_back(std::move(jc));
    } else {
      if (jq.collect_mappings) map_column(&jc);
      sink->OnColumn(std::move(jc));
    }
  }
  if (topk_mode) {
    RankTopK(&topk_candidates, jq.k);
    if (jq.collect_mappings) {
      // Mapping post-pass over the final k columns only — the pushdown's
      // second saving vs the verify-everything wrapper.
      for (auto& jc : topk_candidates) map_column(&jc);
    }
    for (auto& jc : topk_candidates) sink->OnColumn(std::move(jc));
  }
  return finish(Status::OK());
}

}  // namespace pexeso
