#include "baseline/naive_searcher.h"

#include <algorithm>

#include "vec/kernels.h"

namespace pexeso {

std::vector<JoinableColumn> NaiveSearcher::Search(
    const VectorStore& query, const SearchThresholds& thresholds,
    SearchStats* stats) const {
  SearchOptions options;
  options.thresholds = thresholds;
  return Search(query, options, stats);
}

std::vector<JoinableColumn> NaiveSearcher::Search(const VectorStore& query,
                                                  const SearchOptions& options,
                                                  SearchStats* stats) const {
  SearchStats local;
  if (stats == nullptr) stats = &local;
  const double tau = options.thresholds.tau;
  const uint32_t t_abs = std::max<uint32_t>(1, options.thresholds.t_abs);
  const uint32_t num_q = static_cast<uint32_t>(query.size());
  const VectorStore& rstore = catalog_->store();
  const uint32_t dim = rstore.dim();
  // The exhaustive scan is all distance evaluations, so it benefits the
  // most from the devirtualized comparison-space kernels.
  const RangePredicate pred(*metric_, tau);
  const float* rnorms = pred.wants_norms() ? rstore.EnsureNorms() : nullptr;
  const float* qnorms = pred.wants_norms() ? query.EnsureNorms() : nullptr;

  std::vector<JoinableColumn> out;
  if (num_q == 0) return out;
  for (ColumnId col = 0; col < catalog_->num_columns(); ++col) {
    const ColumnMeta& meta = catalog_->column(col);
    uint32_t matches = 0;
    uint32_t mismatches = 0;
    bool joinable = false;
    for (uint32_t q = 0; q < num_q; ++q) {
      const float* qv = query.View(q);
      const double qn = qnorms != nullptr ? qnorms[q] : 1.0;
      bool matched = false;
      for (VecId v = meta.first; v < meta.end(); ++v) {
        ++stats->distance_computations;
        stats->sqrt_free_comparisons += pred.sqrt_saved();
        const double rn = rnorms != nullptr ? rnorms[v] : 1.0;
        if (pred.MatchNormed(qv, rstore.View(v), dim, qn, rn)) {
          matched = true;
          break;
        }
      }
      if (matched) {
        if (++matches >= t_abs && !joinable) {
          joinable = true;
          ++stats->early_joinable;
          // Joinable-skip: stop as soon as the column is confirmed, unless
          // the caller wants the exact joinability reported.
          if (!options.exact_joinability) break;
        }
      } else {
        ++mismatches;
        if (num_q - mismatches < t_abs) {
          ++stats->lemma7_kills;
          break;
        }
      }
    }
    if (joinable) {
      JoinableColumn jc;
      jc.column = col;
      jc.match_count = matches;
      jc.joinability =
          static_cast<double>(matches) / static_cast<double>(num_q);
      if (options.collect_mappings) {
        // Post-pass, mirroring VerifyPipeline::CollectMappings: one target
        // vector (the first in store order) per matching query record, and
        // the counters upgraded to the exact joinability the full scan
        // resolves as a side effect.
        for (uint32_t q = 0; q < num_q; ++q) {
          const float* qv = query.View(q);
          const double qn = qnorms != nullptr ? qnorms[q] : 1.0;
          for (VecId v = meta.first; v < meta.end(); ++v) {
            ++stats->distance_computations;
            stats->sqrt_free_comparisons += pred.sqrt_saved();
            const double rn = rnorms != nullptr ? rnorms[v] : 1.0;
            if (pred.MatchNormed(qv, rstore.View(v), dim, qn, rn)) {
              jc.mapping.push_back({q, v});
              break;
            }
          }
        }
        jc.match_count = static_cast<uint32_t>(jc.mapping.size());
        jc.joinability =
            static_cast<double>(jc.match_count) / static_cast<double>(num_q);
      }
      out.push_back(jc);
    }
  }
  return out;
}

}  // namespace pexeso
