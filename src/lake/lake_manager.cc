#include "lake/lake_manager.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"

namespace pexeso::lake {

namespace {

/// Appends every non-tombstoned column of `from` to `to` (vectors copied,
/// global source_id preserved) and records the ids it dropped.
void FoldSurvivors(const ColumnCatalog& from, const TombstoneSet& tombstones,
                   ColumnCatalog* to, std::vector<uint32_t>* removed) {
  for (ColumnId c = 0; c < from.num_columns(); ++c) {
    const ColumnMeta& meta = from.column(c);
    if (tombstones.Contains(meta.source_id)) {
      removed->push_back(meta.source_id);
      continue;
    }
    to->AddColumn(meta, from.store().View(meta.first), meta.count);
  }
}

}  // namespace

LakeManager::LakeManager(std::string dir, const Metric* metric,
                         LakeOptions options, uint32_t dim)
    : dir_(std::move(dir)),
      metric_(metric),
      options_(options),
      dim_(dim),
      tombstones_(std::make_shared<const TombstoneSet>()) {
  if (options_.merge_pool != nullptr) {
    merges_ = std::make_unique<TaskGroup>(options_.merge_pool);
  }
}

LakeManager::~LakeManager() {
  // merges_ is the last-declared member, so its destructor (which waits for
  // outstanding merge tasks) runs before anything those tasks touch dies;
  // this explicit wait just surfaces the drain before member teardown
  // begins at all.
  if (merges_ != nullptr) merges_->Wait();
}

std::string LakeManager::PartPath(size_t part, uint64_t generation) const {
  return dir_ + "/part-" + std::to_string(part) + ".g" +
         std::to_string(generation) + ".pxso";
}

Result<std::unique_ptr<LakeManager>> LakeManager::Create(
    const ColumnCatalog& catalog, const PartitionAssignment& assignment,
    const std::string& dir, const Metric* metric, const LakeOptions& options) {
  PEXESO_CHECK(assignment.size() == catalog.num_columns());
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create dir: " + dir);

  uint32_t k = 1;
  for (uint32_t a : assignment) k = std::max(k, a + 1);

  auto lake = std::unique_ptr<LakeManager>(
      new LakeManager(dir, metric, options, catalog.dim()));
  lake->parts_.resize(k);
  lake->next_id_ = static_cast<uint32_t>(catalog.num_columns());

  for (uint32_t part = 0; part < k; ++part) {
    ColumnCatalog part_catalog(catalog.dim());
    for (ColumnId c = 0; c < catalog.num_columns(); ++c) {
      if (assignment[c] != part) continue;
      ColumnMeta meta = catalog.column(c);
      meta.source_id = c;  // global id for cross-part result merging
      part_catalog.AddColumn(meta, catalog.store().View(meta.first),
                             meta.count);
    }
    PartState& state = lake->parts_[part];
    state.active = ColumnCatalog(catalog.dim());
    if (part_catalog.num_columns() > 0) {
      PexesoIndex index = PexesoIndex::Build(std::move(part_catalog), metric,
                                             options.index_options);
      state.base_path = lake->PartPath(part, state.generation);
      PEXESO_RETURN_NOT_OK(index.Save(state.base_path));
    }
  }
  {
    std::lock_guard<std::mutex> lock(lake->mu_);
    for (size_t part = 0; part < lake->parts_.size(); ++part) {
      lake->PublishLocked(part);
    }
    PEXESO_RETURN_NOT_OK(lake->WriteManifestLocked());
  }
  return lake;
}

Result<std::unique_ptr<LakeManager>> LakeManager::Open(
    const std::string& dir, const Metric* metric, const LakeOptions& options) {
  std::ifstream in(dir + "/MANIFEST");
  if (!in) return Status::NotFound("no MANIFEST under " + dir);
  std::string magic, version;
  uint32_t dim = 0;
  size_t num_parts = 0;
  uint32_t next_id = 0;
  std::string token;
  if (!(in >> magic >> version) || magic != "pexeso-lake" || version != "v1") {
    return Status::Corruption("bad lake MANIFEST header");
  }
  if (!(in >> token >> dim) || token != "dim" || dim == 0 ||
      !(in >> token >> num_parts) || token != "parts" || num_parts == 0 ||
      !(in >> token >> next_id) || token != "next_id") {
    return Status::Corruption("bad lake MANIFEST body");
  }
  auto lake = std::unique_ptr<LakeManager>(
      new LakeManager(dir, metric, options, dim));
  lake->parts_.resize(num_parts);
  lake->next_id_ = next_id;
  for (size_t i = 0; i < num_parts; ++i) {
    size_t part = 0;
    uint64_t gen = 0;
    int has_base = 0;
    if (!(in >> token >> part >> gen >> has_base) || token != "part" ||
        part != i || gen == 0) {
      return Status::Corruption("bad lake MANIFEST part record");
    }
    PartState& state = lake->parts_[part];
    state.generation = gen;
    state.active = ColumnCatalog(dim);
    if (has_base != 0) {
      state.base_path = lake->PartPath(part, gen);
      if (!std::filesystem::exists(state.base_path)) {
        return Status::NotFound("missing snapshot " + state.base_path);
      }
    }
  }
  std::lock_guard<std::mutex> lock(lake->mu_);
  for (size_t part = 0; part < num_parts; ++part) lake->PublishLocked(part);
  return lake;
}

Status LakeManager::WriteManifestLocked() const {
  std::ostringstream out;
  out << "pexeso-lake v1\n";
  out << "dim " << dim_ << "\n";
  out << "parts " << parts_.size() << "\n";
  out << "next_id " << next_id_ << "\n";
  for (size_t i = 0; i < parts_.size(); ++i) {
    out << "part " << i << " " << parts_[i].generation << " "
        << (parts_[i].base_path.empty() ? 0 : 1) << "\n";
  }
  const std::string tmp = dir_ + "/MANIFEST.tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    if (!f) return Status::IoError("cannot write " + tmp);
    f << out.str();
    if (!f.good()) return Status::IoError("short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, dir_ + "/MANIFEST", ec);
  if (ec) return Status::IoError("cannot publish MANIFEST under " + dir_);
  return Status::OK();
}

void LakeManager::PublishLocked(size_t part) {
  PartState& state = parts_[part];
  auto snap = std::make_shared<PartSnapshot>();
  snap->generation = state.generation;
  snap->base_path = state.base_path;
  snap->deltas = state.frozen;
  if (state.active_built != nullptr) snap->deltas.push_back(state.active_built);
  snap->tombstones = tombstones_;
  state.snapshot = std::move(snap);
}

std::vector<uint32_t> LakeManager::AppendColumns(const ColumnCatalog& batch) {
  PEXESO_CHECK(batch.dim() == dim_);
  std::vector<uint32_t> ids;
  ids.reserve(batch.num_columns());
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint8_t> touched(parts_.size(), 0);
  for (ColumnId c = 0; c < batch.num_columns(); ++c) {
    const uint32_t id = next_id_++;
    const size_t part = id % parts_.size();
    ColumnMeta meta = batch.column(c);
    meta.source_id = id;
    parts_[part].active.AddColumn(meta, batch.store().View(meta.first),
                                  meta.count);
    touched[part] = 1;
    ids.push_back(id);
  }
  for (size_t part = 0; part < parts_.size(); ++part) {
    if (!touched[part]) continue;
    PartState& state = parts_[part];
    // The delta is rebuilt whole per batch: it stays small by construction
    // (the freeze knob), and an immutable rebuilt index needs no
    // synchronization with the searches holding the previous one.
    ColumnCatalog copy = state.active;
    state.active_built = std::make_shared<const DeltaIndex>(
        std::move(copy), metric_, options_.index_options);
    if (state.active.num_columns() >= options_.delta_freeze_columns) {
      FreezeLocked(part);
      ScheduleMergeLocked(part);
    }
    PublishLocked(part);
  }
  return ids;
}

void LakeManager::DropColumns(const std::vector<uint32_t>& global_ids) {
  if (global_ids.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  tombstones_ =
      std::make_shared<const TombstoneSet>(tombstones_->WithAdded(global_ids));
  // Every part's snapshot must see the new mask immediately.
  for (size_t part = 0; part < parts_.size(); ++part) PublishLocked(part);
}

void LakeManager::FreezeLocked(size_t part) {
  PartState& state = parts_[part];
  if (state.active_built == nullptr) return;
  state.frozen.push_back(std::move(state.active_built));
  state.active_built = nullptr;
  state.active = ColumnCatalog(dim_);
}

void LakeManager::Freeze() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t part = 0; part < parts_.size(); ++part) {
    FreezeLocked(part);
    ScheduleMergeLocked(part);
    PublishLocked(part);
  }
}

void LakeManager::ScheduleMergeLocked(size_t part) {
  PartState& state = parts_[part];
  if (merges_ == nullptr || state.merge_scheduled || state.frozen.empty()) {
    return;
  }
  state.merge_scheduled = true;
  merges_->Submit([this, part] {
    const Status st = MergePart(part);
    std::lock_guard<std::mutex> lock(mu_);
    parts_[part].merge_scheduled = false;
    if (!st.ok() && merge_error_.ok()) merge_error_ = st;
    // Freezes that landed while this merge ran left new frozen deltas
    // behind; chain the next merge rather than leaving them stranded.
    ScheduleMergeLocked(part);
  });
}

Status LakeManager::WaitForMerges() {
  if (merges_ != nullptr) merges_->Wait();
  std::lock_guard<std::mutex> lock(mu_);
  return merge_error_;
}

Status LakeManager::MergeAll() {
  Freeze();
  // Drain scheduled background merges first so the inline pass below never
  // double-folds a part a pool task is mid-way through.
  PEXESO_RETURN_NOT_OK(WaitForMerges());
  for (size_t part = 0; part < parts_.size(); ++part) {
    bool pending;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Frozen deltas always need folding; a non-empty tombstone set may
      // mask columns of this part's base, which only a merge reclaims (and
      // proves gone, shrinking the set).
      pending = !parts_[part].frozen.empty() ||
                (!tombstones_->empty() && !parts_[part].base_path.empty());
    }
    if (pending) PEXESO_RETURN_NOT_OK(MergePart(part));
  }
  return Status::OK();
}

Status LakeManager::MergePart(size_t part) {
  // Capture the state to fold. Appends/drops/freezes landing after this
  // point are untouched: they survive into the post-merge snapshot.
  uint64_t old_gen;
  std::string old_base;
  std::vector<DeltaPtr> frozen;
  std::shared_ptr<const TombstoneSet> tombstones;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PartState& state = parts_[part];
    old_gen = state.generation;
    old_base = state.base_path;
    frozen = state.frozen;
    tombstones = tombstones_;
  }

  // Fold: survivors of the base, then of each frozen delta, in global-id
  // arrival order. The result catalog — and therefore the Build over it —
  // is exactly what a from-scratch build over the same logical content
  // produces, which is what makes post-merge search counters comparable to
  // a static index.
  ColumnCatalog survivors(dim_);
  std::vector<uint32_t> removed;
  if (!old_base.empty()) {
    PartSnapshot captured;
    captured.generation = old_gen;
    captured.base_path = old_base;
    auto base = LoadBase(captured, nullptr);
    if (!base.ok()) return base.status();
    FoldSurvivors(base.value()->catalog(), *tombstones, &survivors, &removed);
  }
  for (const DeltaPtr& delta : frozen) {
    FoldSurvivors(delta->index().catalog(), *tombstones, &survivors, &removed);
  }

  const uint64_t new_gen = old_gen + 1;
  std::string new_base;
  if (survivors.num_columns() > 0) {
    PexesoIndex merged = PexesoIndex::Build(std::move(survivors), metric_,
                                            options_.index_options);
    new_base = PartPath(part, new_gen);
    PEXESO_RETURN_NOT_OK(merged.Save(new_base));
  }

  std::lock_guard<std::mutex> lock(mu_);
  PartState& state = parts_[part];
  state.generation = new_gen;
  state.base_path = new_base;
  // Only the captured prefix was folded; later freezes stay pending.
  state.frozen.erase(state.frozen.begin(), state.frozen.begin() + frozen.size());
  // Subtract the tombstones this merge physically removed. Ids dropped from
  // OTHER locations stay masked until their own part merges; snapshots
  // still holding the bigger set just mask ids that no longer exist — a
  // no-op.
  tombstones_ =
      std::make_shared<const TombstoneSet>(tombstones_->WithRemoved(removed));
  for (size_t p = 0; p < parts_.size(); ++p) PublishLocked(p);
  return WriteManifestLocked();
}

Status LakeManager::Vacuum() {
  std::vector<std::pair<size_t, uint64_t>> current;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t part = 0; part < parts_.size(); ++part) {
      current.emplace_back(part, parts_[part].generation);
    }
  }
  for (const auto& [part, gen] : current) {
    for (uint64_t g = 1; g < gen; ++g) {
      const std::string stale = PartPath(part, g);
      std::error_code ec;
      if (std::filesystem::exists(stale, ec) &&
          !std::filesystem::remove(stale, ec)) {
        return Status::IoError("cannot vacuum " + stale);
      }
    }
  }
  return Status::OK();
}

std::shared_ptr<const PartSnapshot> LakeManager::Snapshot(size_t part) const {
  PEXESO_CHECK(part < parts_.size());
  std::lock_guard<std::mutex> lock(mu_);
  return parts_[part].snapshot;
}

uint64_t LakeManager::generation(size_t part) const {
  PEXESO_CHECK(part < parts_.size());
  std::lock_guard<std::mutex> lock(mu_);
  return parts_[part].generation;
}

size_t LakeManager::DiskBytes() const {
  size_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const PartState& state : parts_) {
    if (state.base_path.empty()) continue;
    std::error_code ec;
    const auto sz = std::filesystem::file_size(state.base_path, ec);
    if (!ec) total += sz;
  }
  return total;
}

size_t LakeManager::NumParts() const { return parts_.size(); }

Result<serve::IndexCache::IndexPtr> LakeManager::LoadBase(
    const PartSnapshot& snap, double* io_seconds) const {
  PEXESO_CHECK(!snap.base_path.empty());
  Stopwatch watch;
  if (cache_ != nullptr) {
    auto got = cache_->Get(snap.base_path, metric_, snap.generation);
    if (io_seconds != nullptr) *io_seconds += watch.ElapsedSeconds();
    return got;
  }
  auto loaded = PexesoIndex::Load(snap.base_path, metric_);
  if (io_seconds != nullptr) *io_seconds += watch.ElapsedSeconds();
  if (!loaded.ok()) return loaded.status();
  return std::make_shared<const PexesoIndex>(std::move(loaded).ValueOrDie());
}

Result<PartHandle> LakeManager::AcquirePart(size_t part,
                                            double* io_seconds) const {
  auto handle = std::make_shared<LoadedPart>();
  handle->snapshot = Snapshot(part);
  if (!handle->snapshot->base_path.empty()) {
    auto base = LoadBase(*handle->snapshot, io_seconds);
    if (!base.ok()) return base.status();
    handle->base = std::move(base).ValueOrDie();
  }
  return std::static_pointer_cast<const void>(
      std::shared_ptr<const LoadedPart>(std::move(handle)));
}

Result<std::vector<JoinableColumn>> LakeManager::SearchSnapshot(
    const PartSnapshot& snap, const serve::IndexCache::IndexPtr& base,
    const JoinQuery& query, SearchStats* stats, double* io_seconds) const {
  // kTopK widening: a part's local top-k list could otherwise be crowded
  // out by columns the mask removes afterwards. With k' = k + |tombstones|
  // the (k'+1)-th local column provably has >= k surviving columns above
  // it, so masking then truncating to k loses nothing.
  JoinQuery jq = query;
  if (jq.mode == QueryMode::kTopK) jq.k += snap.tombstones->size();

  std::vector<JoinableColumn> merged;
  if (!snap.base_path.empty()) {
    serve::IndexCache::IndexPtr held = base;
    if (held == nullptr) {
      auto loaded = LoadBase(snap, io_seconds);
      if (!loaded.ok()) return loaded.status();
      held = std::move(loaded).ValueOrDie();
    }
    auto chunk = SearchIndexSnapshot(*held, jq, engine_, stats);
    if (!chunk.ok()) return chunk.status();
    merged = std::move(chunk).ValueOrDie();
  }
  for (const DeltaPtr& delta : snap.deltas) {
    auto chunk = SearchIndexSnapshot(
        delta->index(), jq, PartitionedPexeso::Engine::kPexeso, stats);
    if (!chunk.ok()) return chunk.status();
    if (stats != nullptr) stats->delta_columns_searched += delta->num_columns();
    auto results = std::move(chunk).ValueOrDie();
    merged.insert(merged.end(), std::make_move_iterator(results.begin()),
                  std::make_move_iterator(results.end()));
  }
  MaskTombstones(*snap.tombstones, &merged, stats);
  return merged;
}

Result<std::vector<JoinableColumn>> LakeManager::SearchPart(
    size_t part, const JoinQuery& query, SearchStats* stats,
    double* io_seconds, const PartHandle& preloaded) const {
  if (preloaded != nullptr) {
    const auto* held = static_cast<const LoadedPart*>(preloaded.get());
    return SearchSnapshot(*held->snapshot, held->base, query, stats,
                          io_seconds);
  }
  auto snap = Snapshot(part);
  return SearchSnapshot(*snap, nullptr, query, stats, io_seconds);
}

Status LakeManager::Execute(const JoinQuery& jq, ResultSink* sink,
                            SearchStats* stats) const {
  PEXESO_CHECK(jq.vectors != nullptr);
  PEXESO_CHECK(sink != nullptr);
  SearchStats local;
  if (stats == nullptr) stats = &local;
  const bool topk_mode = jq.mode == QueryMode::kTopK;

  std::vector<JoinableColumn> merged;
  // Cross-part kTopK pushdown over SURVIVING counts only: the floor a part
  // establishes is what the next part's columns must beat to enter the
  // final (post-mask) top-k.
  TopKBound bound(jq.k, jq.topk_floor);
  Status final_st;
  for (size_t part = 0; part < parts_.size(); ++part) {
    Status live = jq.CheckLive();
    if (!live.ok()) {
      ++stats->deadline_expired;
      final_st = live;
      break;
    }
    JoinQuery part_jq = jq;
    if (topk_mode) part_jq.topk_floor = bound.bound();
    auto snap = Snapshot(part);
    auto chunk = SearchSnapshot(*snap, nullptr, part_jq, stats, nullptr);
    if (!chunk.ok()) {
      final_st = chunk.status();
      // Interruption keeps completed parts' columns as partial results; an
      // environment fault returns bare, like PartitionedPexeso.
      if (!final_st.interrupted()) {
        sink->OnDone(final_st);
        return final_st;
      }
      break;
    }
    auto results = std::move(chunk).ValueOrDie();
    if (topk_mode) {
      for (const auto& jc : results) bound.Offer(jc.match_count);
    }
    merged.insert(merged.end(), std::make_move_iterator(results.begin()),
                  std::make_move_iterator(results.end()));
  }
  FinishQueryMerge(jq, &merged);
  for (auto& jc : merged) sink->OnColumn(std::move(jc));
  sink->OnDone(final_st);
  return final_st;
}

bool LakeManager::PartsStayResident() const {
  return cache_ != nullptr && cache_->budget_bytes() >= DiskBytes() * 2;
}

}  // namespace pexeso::lake
