#include "lake/lake_manager.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/fs_util.h"
#include "common/stopwatch.h"
#include "lake/fsck.h"
#include "lake/manifest.h"

namespace pexeso::lake {

namespace {

/// Appends every non-tombstoned column of `from` to `to` (vectors copied,
/// global source_id preserved) and records the ids it dropped.
void FoldSurvivors(const ColumnCatalog& from, const TombstoneSet& tombstones,
                   ColumnCatalog* to, std::vector<uint32_t>* removed) {
  for (ColumnId c = 0; c < from.num_columns(); ++c) {
    const ColumnMeta& meta = from.column(c);
    if (tombstones.Contains(meta.source_id)) {
      removed->push_back(meta.source_id);
      continue;
    }
    to->AddColumn(meta, from.store().View(meta.first), meta.count);
  }
}

}  // namespace

LakeManager::LakeManager(std::string dir, const Metric* metric,
                         LakeOptions options, uint32_t dim)
    : dir_(std::move(dir)),
      metric_(metric),
      options_(options),
      dim_(dim),
      tombstones_(std::make_shared<const TombstoneSet>()) {
  if (options_.merge_pool != nullptr) {
    merges_ = std::make_unique<TaskGroup>(options_.merge_pool);
  }
}

LakeManager::~LakeManager() {
  // merges_ is the last-declared member, so its destructor (which waits for
  // outstanding merge tasks) runs before anything those tasks touch dies;
  // this explicit wait just surfaces the drain before member teardown
  // begins at all.
  if (merges_ != nullptr) merges_->Wait();
}

std::string LakeManager::PartPath(size_t part, uint64_t generation) const {
  return dir_ + "/" + PartFileName(part, generation);
}

Result<std::unique_ptr<LakeManager>> LakeManager::Create(
    const ColumnCatalog& catalog, const PartitionAssignment& assignment,
    const std::string& dir, const Metric* metric, const LakeOptions& options) {
  PEXESO_CHECK(assignment.size() == catalog.num_columns());
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create dir: " + dir);

  uint32_t k = 1;
  for (uint32_t a : assignment) k = std::max(k, a + 1);

  auto lake = std::unique_ptr<LakeManager>(
      new LakeManager(dir, metric, options, catalog.dim()));
  lake->parts_.resize(k);
  lake->next_id_ = static_cast<uint32_t>(catalog.num_columns());

  for (uint32_t part = 0; part < k; ++part) {
    ColumnCatalog part_catalog(catalog.dim());
    for (ColumnId c = 0; c < catalog.num_columns(); ++c) {
      if (assignment[c] != part) continue;
      ColumnMeta meta = catalog.column(c);
      meta.source_id = c;  // global id for cross-part result merging
      part_catalog.AddColumn(meta, catalog.store().View(meta.first),
                             meta.count);
    }
    PartState& state = lake->parts_[part];
    state.active = ColumnCatalog(catalog.dim());
    if (part_catalog.num_columns() > 0) {
      PexesoIndex index = PexesoIndex::Build(std::move(part_catalog), metric,
                                             options.index_options);
      state.base_path = lake->PartPath(part, state.generation);
      const std::string tmp = state.base_path + kTmpSuffix;
      PEXESO_RETURN_NOT_OK(index.Save(tmp));
      PEXESO_RETURN_NOT_OK(PublishFileDurable(tmp, state.base_path));
    }
  }
  {
    std::lock_guard<std::mutex> lock(lake->mu_);
    for (size_t part = 0; part < lake->parts_.size(); ++part) {
      lake->PublishLocked(part);
    }
    PEXESO_RETURN_NOT_OK(lake->WriteManifestLocked());
  }
  return lake;
}

Result<std::unique_ptr<LakeManager>> LakeManager::Open(
    const std::string& dir, const Metric* metric, const LakeOptions& options) {
  // Recovery IS an fsck-with-repair pass: discard *.tmp orphans and
  // uncommitted/superseded generations, CRC-validate every referenced
  // snapshot, quarantine corrupt or missing ones (flagged in a rewritten
  // MANIFEST) instead of refusing to open.
  FsckOptions fsck_options;
  fsck_options.repair = true;
  fsck_options.verify_crc = options.verify_on_open;
  auto checked = FsckLake(dir, fsck_options);
  if (!checked.ok()) return checked.status();
  const FsckReport& report = checked.value();
  const LakeManifest& m = report.manifest;

  auto lake = std::unique_ptr<LakeManager>(
      new LakeManager(dir, metric, options, m.dim));
  lake->parts_.resize(m.parts.size());
  lake->next_id_ = m.next_id;
  lake->recovered_orphans_ = report.orphans.size();
  for (size_t i = 0; i < m.parts.size(); ++i) {
    PartState& state = lake->parts_[i];
    state.generation = m.parts[i].generation;
    state.active = ColumnCatalog(m.dim);
    if (m.parts[i].quarantined) {
      state.quarantined = true;
      state.health = Status::Corruption(
          "part " + std::to_string(i) + " base quarantined (see " + dir +
          "/" + kQuarantineDir + ")");
    } else if (m.parts[i].has_base) {
      state.base_path = lake->PartPath(i, state.generation);
    }
  }
  std::lock_guard<std::mutex> lock(lake->mu_);
  for (size_t part = 0; part < m.parts.size(); ++part) {
    lake->PublishLocked(part);
  }
  return lake;
}

Status LakeManager::WriteManifestLocked() const {
  LakeManifest m;
  m.dim = dim_;
  m.next_id = next_id_;
  m.parts.resize(parts_.size());
  for (size_t i = 0; i < parts_.size(); ++i) {
    m.parts[i].generation = parts_[i].generation;
    m.parts[i].has_base = !parts_[i].base_path.empty();
    m.parts[i].quarantined = parts_[i].quarantined;
  }
  return WriteManifest(dir_, m);
}

void LakeManager::PublishLocked(size_t part) {
  PartState& state = parts_[part];
  auto snap = std::make_shared<PartSnapshot>();
  snap->generation = state.generation;
  snap->base_path = state.base_path;
  snap->deltas = state.frozen;
  if (state.active_built != nullptr) snap->deltas.push_back(state.active_built);
  snap->tombstones = tombstones_;
  snap->quarantined = state.quarantined;
  snap->degraded = state.degraded;
  snap->health = state.health;
  state.snapshot = std::move(snap);
}

std::vector<uint32_t> LakeManager::AppendColumns(const ColumnCatalog& batch) {
  PEXESO_CHECK(batch.dim() == dim_);
  std::vector<uint32_t> ids;
  ids.reserve(batch.num_columns());
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint8_t> touched(parts_.size(), 0);
  for (ColumnId c = 0; c < batch.num_columns(); ++c) {
    const uint32_t id = next_id_++;
    const size_t part = id % parts_.size();
    ColumnMeta meta = batch.column(c);
    meta.source_id = id;
    parts_[part].active.AddColumn(meta, batch.store().View(meta.first),
                                  meta.count);
    touched[part] = 1;
    ids.push_back(id);
  }
  for (size_t part = 0; part < parts_.size(); ++part) {
    if (!touched[part]) continue;
    PartState& state = parts_[part];
    // The delta is rebuilt whole per batch: it stays small by construction
    // (the freeze knob), and an immutable rebuilt index needs no
    // synchronization with the searches holding the previous one.
    ColumnCatalog copy = state.active;
    state.active_built = std::make_shared<const DeltaIndex>(
        std::move(copy), metric_, options_.index_options);
    if (state.active.num_columns() >= options_.delta_freeze_columns) {
      FreezeLocked(part);
      ScheduleMergeLocked(part);
    }
    PublishLocked(part);
  }
  return ids;
}

void LakeManager::DropColumns(const std::vector<uint32_t>& global_ids) {
  if (global_ids.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  tombstones_ =
      std::make_shared<const TombstoneSet>(tombstones_->WithAdded(global_ids));
  // Every part's snapshot must see the new mask immediately.
  for (size_t part = 0; part < parts_.size(); ++part) PublishLocked(part);
}

void LakeManager::FreezeLocked(size_t part) {
  PartState& state = parts_[part];
  if (state.active_built == nullptr) return;
  state.frozen.push_back(std::move(state.active_built));
  state.active_built = nullptr;
  state.active = ColumnCatalog(dim_);
}

void LakeManager::Freeze() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t part = 0; part < parts_.size(); ++part) {
    FreezeLocked(part);
    ScheduleMergeLocked(part);
    PublishLocked(part);
  }
}

void LakeManager::ScheduleMergeLocked(size_t part) {
  PartState& state = parts_[part];
  if (merges_ == nullptr || state.merge_scheduled || state.frozen.empty() ||
      state.degraded) {
    // A parked (degraded) part never self-reschedules — that is the whole
    // fix for the hot retry loop. MergeAll un-parks it explicitly.
    return;
  }
  state.merge_scheduled = true;
  merges_->Submit([this, part] { RunScheduledMerge(part); });
}

void LakeManager::RunScheduledMerge(size_t part) {
  uint32_t failures;
  {
    std::lock_guard<std::mutex> lock(mu_);
    failures = parts_[part].merge_failures;
  }
  if (failures > 0) {
    // Doubling backoff before each retry attempt (this blocks one pool
    // worker; merge pools are sized for that, and the cap keeps it short).
    const double backoff = std::min(
        options_.merge_backoff_initial_ms *
            static_cast<double>(1u << std::min(failures - 1, 20u)),
        options_.merge_backoff_max_ms);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff));
  }
  const Status st = MergePart(part);
  std::lock_guard<std::mutex> lock(mu_);
  PartState& state = parts_[part];
  state.merge_scheduled = false;
  if (st.ok()) {
    // Freezes that landed while this merge ran left new frozen deltas
    // behind; chain the next merge rather than leaving them stranded.
    ScheduleMergeLocked(part);
    return;
  }
  ++state.merge_failures;
  ++merge_retries_;
  state.health = st;
  if (state.merge_failures >= options_.merge_max_attempts) {
    // Park: the part keeps serving base + deltas (results stay correct,
    // just unmerged) and stops burning the pool. PartHealth reports why;
    // MergeAll or an operator retries later.
    state.degraded = true;
    PublishLocked(part);
    return;
  }
  ScheduleMergeLocked(part);
}

Status LakeManager::WaitForMerges() {
  if (merges_ != nullptr) merges_->Wait();
  std::lock_guard<std::mutex> lock(mu_);
  for (const PartState& state : parts_) {
    if (state.degraded && !state.health.ok()) return state.health;
  }
  return Status::OK();
}

Status LakeManager::MergeAll() {
  Freeze();
  // Drain scheduled background merges first so the inline pass below never
  // double-folds a part a pool task is mid-way through. Failures are not
  // returned here — the inline pass retries every part with work left,
  // parked ones included.
  if (merges_ != nullptr) merges_->Wait();
  for (size_t part = 0; part < parts_.size(); ++part) {
    bool pending;
    {
      std::lock_guard<std::mutex> lock(mu_);
      PartState& state = parts_[part];
      // Frozen deltas always need folding; a non-empty tombstone set may
      // mask columns of this part's base, which only a merge reclaims (and
      // proves gone, shrinking the set). A parked or quarantined part is
      // always retried: a successful merge is what heals it.
      pending = !state.frozen.empty() ||
                (!tombstones_->empty() && !state.base_path.empty()) ||
                state.degraded || state.quarantined;
    }
    if (pending) PEXESO_RETURN_NOT_OK(MergePart(part));
  }
  return Status::OK();
}

Status LakeManager::MergePart(size_t part) {
  PEXESO_RETURN_NOT_OK(FailpointHit("lake:merge:before-save"));
  // Capture the state to fold. Appends/drops/freezes landing after this
  // point are untouched: they survive into the post-merge snapshot.
  uint64_t old_gen;
  std::string old_base;
  std::vector<DeltaPtr> frozen;
  std::shared_ptr<const TombstoneSet> tombstones;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PartState& state = parts_[part];
    old_gen = state.generation;
    old_base = state.base_path;
    frozen = state.frozen;
    tombstones = tombstones_;
  }

  // Fold: survivors of the base, then of each frozen delta, in global-id
  // arrival order. The result catalog — and therefore the Build over it —
  // is exactly what a from-scratch build over the same logical content
  // produces, which is what makes post-merge search counters comparable to
  // a static index.
  ColumnCatalog survivors(dim_);
  std::vector<uint32_t> removed;
  if (!old_base.empty()) {
    PartSnapshot captured;
    captured.generation = old_gen;
    captured.base_path = old_base;
    uint64_t retries = 0;
    auto base = RetryTransient(options_.io_retry, &retries, [&] {
      return LoadBase(captured, nullptr, nullptr);
    });
    {
      std::lock_guard<std::mutex> lock(mu_);
      merge_io_retries_ += retries;
    }
    if (!base.ok()) return base.status();
    FoldSurvivors(base.value()->catalog(), *tombstones, &survivors, &removed);
  }
  for (const DeltaPtr& delta : frozen) {
    FoldSurvivors(delta->index().catalog(), *tombstones, &survivors, &removed);
  }

  const uint64_t new_gen = old_gen + 1;
  std::string new_base;
  if (survivors.num_columns() > 0) {
    PexesoIndex merged = PexesoIndex::Build(std::move(survivors), metric_,
                                            options_.index_options);
    new_base = PartPath(part, new_gen);
    const std::string tmp = new_base + kTmpSuffix;
    uint64_t retries = 0;
    const Status saved = RetryTransient(options_.io_retry, &retries,
                                        [&] { return merged.Save(tmp); });
    {
      std::lock_guard<std::mutex> lock(mu_);
      merge_io_retries_ += retries;
    }
    PEXESO_RETURN_NOT_OK(saved);
    PEXESO_RETURN_NOT_OK(FailpointHit("lake:merge:before-publish"));
    // Snapshot becomes durable under its committed name BEFORE the manifest
    // that references it; a crash in between leaves an orphan that recovery
    // deletes, never a manifest pointing at nothing.
    PEXESO_RETURN_NOT_OK(PublishFileDurable(tmp, new_base));
    PEXESO_RETURN_NOT_OK(FailpointHit("lake:merge:after-publish"));
  }

  std::lock_guard<std::mutex> lock(mu_);
  PartState& state = parts_[part];
  state.generation = new_gen;
  state.base_path = new_base;
  // Only the captured prefix was folded; later freezes stay pending.
  state.frozen.erase(state.frozen.begin(), state.frozen.begin() + frozen.size());
  // A fresh base IS the recovery: the part is healthy again, whatever got
  // it parked or quarantined before (a quarantined base's columns stay in
  // quarantine/ for offline salvage — the merge preserved everything that
  // was still reachable).
  state.merge_failures = 0;
  state.degraded = false;
  state.quarantined = false;
  state.health = Status::OK();
  // Subtract the tombstones this merge physically removed. Ids dropped from
  // OTHER locations stay masked until their own part merges; snapshots
  // still holding the bigger set just mask ids that no longer exist — a
  // no-op.
  tombstones_ =
      std::make_shared<const TombstoneSet>(tombstones_->WithRemoved(removed));
  for (size_t p = 0; p < parts_.size(); ++p) PublishLocked(p);
  return WriteManifestLocked();
}

Status LakeManager::Vacuum() {
  std::vector<std::pair<size_t, uint64_t>> current;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t part = 0; part < parts_.size(); ++part) {
      current.emplace_back(part, parts_[part].generation);
    }
  }
  bool first = true;
  for (const auto& [part, gen] : current) {
    for (uint64_t g = 1; g < gen; ++g) {
      const std::string stale = PartPath(part, g);
      std::error_code ec;
      if (std::filesystem::exists(stale, ec) &&
          !std::filesystem::remove(stale, ec)) {
        return Status::IoError("cannot vacuum " + stale);
      }
      if (first) {
        // Kill point with the deletion half-done: recovery must finish the
        // sweep (the remaining stale generations are orphans).
        PEXESO_RETURN_NOT_OK(FailpointHit("lake:vacuum:mid"));
        first = false;
      }
    }
  }
  return Status::OK();
}

std::shared_ptr<const PartSnapshot> LakeManager::Snapshot(size_t part) const {
  PEXESO_CHECK(part < parts_.size());
  std::lock_guard<std::mutex> lock(mu_);
  return parts_[part].snapshot;
}

uint64_t LakeManager::generation(size_t part) const {
  PEXESO_CHECK(part < parts_.size());
  std::lock_guard<std::mutex> lock(mu_);
  return parts_[part].generation;
}

Status LakeManager::PartHealth(size_t part) const {
  PEXESO_CHECK(part < parts_.size());
  std::lock_guard<std::mutex> lock(mu_);
  return parts_[part].health;
}

LakeHealth LakeManager::Health() const {
  LakeHealth out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const PartState& state : parts_) {
    if (state.degraded) ++out.degraded_parts;
    if (state.quarantined) ++out.quarantined_parts;
  }
  out.merge_retries = merge_retries_;
  out.io_retries = merge_io_retries_;
  out.recovered_orphans = recovered_orphans_;
  return out;
}

size_t LakeManager::DiskBytes() const {
  size_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const PartState& state : parts_) {
    if (state.base_path.empty()) continue;
    std::error_code ec;
    const auto sz = std::filesystem::file_size(state.base_path, ec);
    if (!ec) total += sz;
  }
  return total;
}

size_t LakeManager::NumParts() const { return parts_.size(); }

Result<serve::IndexCache::IndexPtr> LakeManager::LoadBase(
    const PartSnapshot& snap, SearchStats* stats, double* io_seconds) const {
  PEXESO_CHECK(!snap.base_path.empty());
  Stopwatch watch;
  uint64_t retries = 0;
  // The cache never caches failures, so a retried Get is a fresh load; the
  // single-flight lets concurrent retries share one disk read.
  auto got = RetryTransient(
      options_.io_retry, &retries,
      [&]() -> Result<serve::IndexCache::IndexPtr> {
        if (cache_ != nullptr) {
          return cache_->Get(snap.base_path, metric_, snap.generation);
        }
        auto loaded = PexesoIndex::Load(snap.base_path, metric_);
        if (!loaded.ok()) return loaded.status();
        return std::make_shared<const PexesoIndex>(
            std::move(loaded).ValueOrDie());
      });
  if (io_seconds != nullptr) *io_seconds += watch.ElapsedSeconds();
  if (stats != nullptr) {
    stats->io_retries += retries;
    if (!got.ok() && got.status().code() == Status::Code::kCorruption) {
      ++stats->corruption_detected;
    }
  }
  return got;
}

Result<PartHandle> LakeManager::AcquirePart(size_t part,
                                            double* io_seconds) const {
  auto handle = std::make_shared<LoadedPart>();
  handle->snapshot = Snapshot(part);
  if (!handle->snapshot->base_path.empty()) {
    auto base = LoadBase(*handle->snapshot, nullptr, io_seconds);
    if (!base.ok()) return base.status();
    handle->base = std::move(base).ValueOrDie();
  }
  return std::static_pointer_cast<const void>(
      std::shared_ptr<const LoadedPart>(std::move(handle)));
}

Result<std::vector<JoinableColumn>> LakeManager::SearchSnapshot(
    const PartSnapshot& snap, const serve::IndexCache::IndexPtr& base,
    const JoinQuery& query, SearchStats* stats, double* io_seconds) const {
  if (stats != nullptr) {
    if (snap.quarantined) ++stats->parts_quarantined;
    if (snap.degraded) ++stats->degraded_merges;
  }
  // kTopK widening: a part's local top-k list could otherwise be crowded
  // out by columns the mask removes afterwards. With k' = k + |tombstones|
  // the (k'+1)-th local column provably has >= k surviving columns above
  // it, so masking then truncating to k loses nothing.
  JoinQuery jq = query;
  if (jq.mode == QueryMode::kTopK) jq.k += snap.tombstones->size();

  std::vector<JoinableColumn> merged;
  if (!snap.base_path.empty()) {
    serve::IndexCache::IndexPtr held = base;
    if (held == nullptr) {
      auto loaded = LoadBase(snap, stats, io_seconds);
      if (!loaded.ok()) return loaded.status();
      held = std::move(loaded).ValueOrDie();
    }
    auto chunk = SearchIndexSnapshot(*held, jq, engine_, stats);
    if (!chunk.ok()) return chunk.status();
    merged = std::move(chunk).ValueOrDie();
  }
  for (const DeltaPtr& delta : snap.deltas) {
    auto chunk = SearchIndexSnapshot(
        delta->index(), jq, PartitionedPexeso::Engine::kPexeso, stats);
    if (!chunk.ok()) return chunk.status();
    if (stats != nullptr) stats->delta_columns_searched += delta->num_columns();
    auto results = std::move(chunk).ValueOrDie();
    merged.insert(merged.end(), std::make_move_iterator(results.begin()),
                  std::make_move_iterator(results.end()));
  }
  MaskTombstones(*snap.tombstones, &merged, stats);
  return merged;
}

Result<std::vector<JoinableColumn>> LakeManager::SearchPart(
    size_t part, const JoinQuery& query, SearchStats* stats,
    double* io_seconds, const PartHandle& preloaded) const {
  if (preloaded != nullptr) {
    const auto* held = static_cast<const LoadedPart*>(preloaded.get());
    return SearchSnapshot(*held->snapshot, held->base, query, stats,
                          io_seconds);
  }
  auto snap = Snapshot(part);
  return SearchSnapshot(*snap, nullptr, query, stats, io_seconds);
}

Status LakeManager::Execute(const JoinQuery& jq, ResultSink* sink,
                            SearchStats* stats) const {
  PEXESO_CHECK(jq.vectors != nullptr);
  PEXESO_CHECK(sink != nullptr);
  SearchStats local;
  if (stats == nullptr) stats = &local;
  const bool topk_mode = jq.mode == QueryMode::kTopK;

  std::vector<JoinableColumn> merged;
  // Cross-part kTopK pushdown over SURVIVING counts only: the floor a part
  // establishes is what the next part's columns must beat to enter the
  // final (post-mask) top-k.
  TopKBound bound(jq.k, jq.topk_floor);
  Status final_st;
  size_t failed_parts = 0;
  Status first_failure;
  bool partial = false;
  for (size_t part = 0; part < parts_.size(); ++part) {
    Status live = jq.CheckLive();
    if (!live.ok()) {
      ++stats->deadline_expired;
      final_st = live;
      break;
    }
    JoinQuery part_jq = jq;
    if (topk_mode) part_jq.topk_floor = bound.bound();
    auto snap = Snapshot(part);
    auto chunk = SearchSnapshot(*snap, nullptr, part_jq, stats, nullptr);
    if (!chunk.ok()) {
      if (chunk.status().interrupted()) {
        // Interruption keeps completed parts' columns as partial results.
        final_st = chunk.status();
        break;
      }
      // Environment fault on THIS part (unloadable base): degraded-mode
      // serving reports the gap per-part and keeps going — the other parts'
      // answers are still worth returning.
      ++failed_parts;
      if (first_failure.ok()) first_failure = chunk.status();
      sink->OnPartStatus(part, chunk.status());
      partial = true;
      continue;
    }
    if (snap->quarantined) {
      // The part answered, but only from its deltas: its base was moved
      // aside by recovery, so the answer is knowingly incomplete.
      sink->OnPartStatus(part, snap->health.ok()
                                   ? Status::Corruption("part base quarantined")
                                   : snap->health);
      partial = true;
    }
    auto results = std::move(chunk).ValueOrDie();
    if (topk_mode) {
      for (const auto& jc : results) bound.Offer(jc.match_count);
    }
    merged.insert(merged.end(), std::make_move_iterator(results.begin()),
                  std::make_move_iterator(results.end()));
  }
  if (partial) ++stats->partial_responses;
  if (!parts_.empty() && failed_parts == parts_.size()) {
    // Nothing answered: that is a failed query, not a partial one.
    final_st = first_failure;
    sink->OnDone(final_st);
    return final_st;
  }
  FinishQueryMerge(jq, &merged);
  for (auto& jc : merged) sink->OnColumn(std::move(jc));
  sink->OnDone(final_st);
  return final_st;
}

bool LakeManager::PartsStayResident() const {
  return cache_ != nullptr && cache_->budget_bytes() >= DiskBytes() * 2;
}

}  // namespace pexeso::lake
