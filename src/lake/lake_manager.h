#ifndef PEXESO_LAKE_LAKE_MANAGER_H_
#define PEXESO_LAKE_LAKE_MANAGER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "lake/delta_index.h"
#include "lake/tombstone_set.h"
#include "partition/partitioned_pexeso.h"
#include "partition/partitioner.h"
#include "serve/index_cache.h"

namespace pexeso::lake {

/// \brief LakeManager configuration.
struct LakeOptions {
  /// Index construction parameters, shared by the initial build, every
  /// delta build and every merge — the invariant that makes a merged part
  /// bit-identical to a from-scratch build over the same columns.
  PexesoOptions index_options;
  /// THE delta-size knob: a part whose active delta reaches this many
  /// columns is frozen automatically (appends then start a new delta and
  /// the frozen one becomes mergeable). Smaller = cheaper per-append delta
  /// rebuilds and fresher bases, but more merges; larger = the opposite.
  size_t delta_freeze_columns = 64;
  /// Pool the background merges run on (borrowed; must outlive the
  /// manager). Null = no background merging: frozen deltas accumulate until
  /// an explicit MergeAll().
  ThreadPool* merge_pool = nullptr;
  /// Background-merge failure budget: after this many consecutive failed
  /// MergePart attempts (each preceded by doubling backoff, below) the part
  /// PARKS in degraded base+delta mode — it keeps answering queries, stops
  /// burning the pool, and records its error (PartHealth). MergeAll and the
  /// next successful merge un-park it.
  uint32_t merge_max_attempts = 4;
  double merge_backoff_initial_ms = 5.0;
  double merge_backoff_max_ms = 250.0;
  /// Transient-IO retry budget for base loads and merge snapshot writes
  /// (bounded exponential backoff; only IoError retries — see retry.h).
  RetryPolicy io_retry;
  /// Open(): CRC-validate every referenced snapshot before serving it, and
  /// quarantine the ones that fail. Costs one streamed read per part file.
  bool verify_on_open = true;
};

/// \brief One part's immutable published state: everything a search needs,
/// captured atomically. Mutations (append / drop / freeze / merge
/// completion) build a successor snapshot and swap the pointer; a search
/// that copied the pointer keeps a consistent {base, deltas, tombstones}
/// view for its whole execution, however the lake evolves meanwhile.
struct PartSnapshot {
  /// Base snapshot version; bumped by each merge. The IndexCache key is
  /// (base_path, generation), so a merge never needs to invalidate the
  /// cache — the stale generation just stops being requested and ages out
  /// of the LRU.
  uint64_t generation = 1;
  /// Serialized base index (part-<i>.g<generation>.pxso); empty when the
  /// part has no base (never built, everything merged away, or the base
  /// was quarantined).
  std::string base_path;
  /// Unmerged appends, oldest first: frozen deltas then the active one.
  std::vector<DeltaPtr> deltas;
  /// Global drop mask applied to base and delta results (see TombstoneSet).
  std::shared_ptr<const TombstoneSet> tombstones;
  /// Recovery/fsck moved this part's base aside (bad bytes): searches see
  /// deltas only and the part's results are knowingly partial until a merge
  /// writes a fresh base.
  bool quarantined = false;
  /// Background merges for this part exhausted their failure budget and
  /// parked; base+deltas keep serving, `health` says why.
  bool degraded = false;
  /// OK for a healthy part; the quarantine reason or last merge error
  /// otherwise.
  Status health;
};

/// \brief Lake-level robustness counters (complement SearchStats, which
/// counts per-query encounters).
struct LakeHealth {
  size_t degraded_parts = 0;     ///< parts parked after merge failures
  size_t quarantined_parts = 0;  ///< parts serving without their base
  uint64_t merge_retries = 0;    ///< failed background merge attempts retried
  uint64_t io_retries = 0;       ///< transient-IO retries in merge writes
  uint64_t recovered_orphans = 0;  ///< files discarded by Open's recovery
};

/// \brief The live lake: a generation-versioned partitioned PEXESO
/// repository that keeps serving queries while tables arrive and disappear.
///
/// Lifecycle (LSM-flavored): `AppendColumns` routes new columns to a
/// per-part in-memory DeltaIndex (rebuilt per batch — the memtable);
/// `DropColumns` adds global ids to the shared TombstoneSet (no index is
/// touched); `Freeze` seals active deltas, making them mergeable; a
/// background merge folds a part's frozen deltas + tombstones into a new
/// `part-<i>.g<gen+1>.pxso` base and atomically publishes the bumped
/// generation. Durability is the merge: deltas and tombstones live in
/// memory only (no WAL), so unmerged state is lost on restart — the
/// MANIFEST records just {dim, parts, next_id, per-part generation}.
///
/// Crash safety: snapshots and the MANIFEST are published via write-tmp →
/// fsync(file) → rename → fsync(dir), in that order (snapshot first, then
/// the MANIFEST that references it), so at every kill point the on-disk
/// state is one of the two adjacent committed states — never a torn mix.
/// Open() runs an fsck-with-repair recovery pass: orphaned *.tmp and
/// uncommitted/superseded generations are discarded, every referenced
/// snapshot is CRC-validated, and corrupt ones are QUARANTINED (moved to
/// quarantine/, part flagged) instead of failing the whole open.
///
/// Degraded serving: a part whose background merges keep failing parks in
/// base+delta mode (no hot retry loop) and keeps answering; a part whose
/// base cannot be loaded at query time contributes nothing but the query
/// still succeeds with the other parts' results, the gap reported through
/// ResultSink::OnPartStatus and SearchStats::partial_responses.
///
/// Query equivalence contract: a column lives in exactly one physical place
/// (one part's base or one delta), PEXESO is exact (results depend on the
/// data, not the index layout), and chunks reduce through the same
/// deterministic part-order merge as PartitionedPexeso — so results at ANY
/// interleaving of appends/drops/merges with queries are byte-identical to
/// a from-scratch build over the same logical content, at any thread
/// count. For kTopK, parts are searched with k' = k + |tombstones| so the
/// mask can never evict a legitimate top-k column before the final
/// rank-and-truncate.
///
/// Both engine interfaces are implemented, so BatchQueryRunner and
/// ServeSession drive a live lake exactly like a static PartitionedPexeso.
class LakeManager : public JoinSearchEngine, public PartitionedJoinEngine {
 public:
  /// Builds the initial bases (generation 1) from `catalog` split by
  /// `assignment` and writes them under `dir` with a MANIFEST. Empty source
  /// partitions stay as baseless parts that can still receive appends.
  /// `metric` and `options.merge_pool` are borrowed and must outlive the
  /// manager.
  static Result<std::unique_ptr<LakeManager>> Create(
      const ColumnCatalog& catalog, const PartitionAssignment& assignment,
      const std::string& dir, const Metric* metric,
      const LakeOptions& options);

  /// Opens an existing lake directory from its MANIFEST, running the
  /// recovery pass described above first. Unmerged state (deltas,
  /// tombstones) does not survive restarts — only merged bases.
  static Result<std::unique_ptr<LakeManager>> Open(const std::string& dir,
                                                   const Metric* metric,
                                                   const LakeOptions& options);

  /// Drains background merges before tearing down.
  ~LakeManager() override;

  LakeManager(const LakeManager&) = delete;
  LakeManager& operator=(const LakeManager&) = delete;

  // ------------------------------------------------------------ ingest API

  /// Appends every column of `batch` (vectors should be unit-normalized;
  /// dimensionality must match the lake). Columns are assigned fresh global
  /// ids (returned, in batch order), routed to parts by id % NumParts(),
  /// and become searchable atomically per part when the call returns. A
  /// part whose active delta reaches LakeOptions::delta_freeze_columns is
  /// frozen (and scheduled for merge) automatically.
  std::vector<uint32_t> AppendColumns(const ColumnCatalog& batch);

  /// Drops columns by GLOBAL id, effective immediately for every later
  /// search (masking); the space is reclaimed by the next merge of each
  /// column's part. Unknown ids are tolerated (masked until some merge
  /// proves them gone).
  void DropColumns(const std::vector<uint32_t>& global_ids);

  /// Seals every part's active delta into its frozen list (mergeable) and,
  /// when a merge pool is attached, schedules the merges.
  void Freeze();

  /// Blocks until scheduled background merges finish (a part that keeps
  /// failing stops after its failure budget — the wait always returns);
  /// returns the first parked part's error, if any.
  Status WaitForMerges();

  /// Freeze + merge EVERYTHING, synchronously: on return every part is a
  /// single base at its newest generation with no deltas, and fully-merged
  /// tombstones have been subtracted. Parts parked in degraded mode are
  /// retried here (and un-parked on success). The post-merge state a
  /// from-scratch rebuild is compared against.
  Status MergeAll();

  /// Deletes snapshot files of superseded generations. Only safe when no
  /// search still holds a pre-merge PartSnapshot that might yet LOAD its
  /// old base from disk (searches already holding the in-memory index are
  /// unaffected) — call from a quiesced maintenance window.
  Status Vacuum();

  // ------------------------------------------------------------- inspection

  /// The part's current published snapshot (cheap pointer copy).
  std::shared_ptr<const PartSnapshot> Snapshot(size_t part) const;

  uint64_t generation(size_t part) const;

  /// OK for a healthy part; the quarantine reason or the part's last merge
  /// error otherwise.
  Status PartHealth(size_t part) const;

  /// Lake-level robustness counters (degraded/quarantined part counts,
  /// retry totals, recovery actions).
  LakeHealth Health() const;

  /// Path of part `part`'s serialized base at `generation`.
  std::string PartPath(size_t part, uint64_t generation) const;

  /// Total bytes of the current-generation base files.
  size_t DiskBytes() const;

  /// Routes base loads through `cache` (borrowed; must outlive this
  /// object). Call before concurrent searches start. Cache keys carry the
  /// generation, so merged-away snapshots age out of the LRU on their own.
  void AttachCache(serve::IndexCache* cache) { cache_ = cache; }
  serve::IndexCache* cache() const { return cache_; }

  /// Which in-memory searcher runs against loaded BASE snapshots (deltas
  /// always use plain PEXESO — they are small, the hierarchical variant's
  /// advantage is large repositories).
  void set_engine(PartitionedPexeso::Engine engine) { engine_ = engine; }

  // ------------------------------------------------------ JoinSearchEngine
  const char* name() const override { return "lake"; }

  /// Searches every part's base + deltas serially in part order with
  /// tombstone masking, then the canonical mode-aware merge. Deadline /
  /// cancel / kTopK cross-part floor semantics match PartitionedPexeso.
  /// A part whose base cannot be loaded (or was quarantined) does not fail
  /// the query: its Status goes to sink->OnPartStatus, the other parts'
  /// results are delivered, and stats->partial_responses is bumped. The
  /// query fails outright only when EVERY part failed.
  Status Execute(const JoinQuery& query, ResultSink* sink,
                 SearchStats* stats) const override;

  // -------------------------------------------------- PartitionedJoinEngine
  size_t NumParts() const override;

  /// The handle captures the part's PartSnapshot AND its loaded base, so a
  /// later SearchPart with it is both IO-free and consistent — it searches
  /// the state of the lake as of acquisition even if merges land meanwhile.
  Result<PartHandle> AcquirePart(size_t part,
                                 double* io_seconds) const override;
  Result<std::vector<JoinableColumn>> SearchPart(
      size_t part, const JoinQuery& query, SearchStats* stats,
      double* io_seconds, const PartHandle& preloaded) const override;
  bool PartsStayResident() const override;

 private:
  /// What AcquirePart hands out behind the opaque PartHandle.
  struct LoadedPart {
    std::shared_ptr<const PartSnapshot> snapshot;
    serve::IndexCache::IndexPtr base;  ///< null when snapshot has no base
  };

  /// One part's mutable state, guarded by mu_. `snapshot` is what searches
  /// copy; the rest is the ingest side's working state.
  struct PartState {
    std::shared_ptr<const PartSnapshot> snapshot;
    uint64_t generation = 1;
    std::string base_path;
    ColumnCatalog active;          ///< unfrozen appends
    DeltaPtr active_built;         ///< index over `active`; null when empty
    std::vector<DeltaPtr> frozen;  ///< sealed deltas awaiting merge
    bool merge_scheduled = false;
    uint32_t merge_failures = 0;   ///< consecutive failed merge attempts
    bool degraded = false;         ///< parked: failure budget exhausted
    bool quarantined = false;      ///< base moved aside by recovery/fsck
    Status health;                 ///< quarantine reason / last merge error
  };

  LakeManager(std::string dir, const Metric* metric, LakeOptions options,
              uint32_t dim);

  /// Rebuilds and publishes `part`'s snapshot from its state + the global
  /// tombstone set. Caller holds mu_.
  void PublishLocked(size_t part);

  /// Seals `part`'s active delta. Caller holds mu_; caller publishes.
  void FreezeLocked(size_t part);

  /// Schedules a background merge of `part` if a pool is attached, one is
  /// not already scheduled, there is frozen work, and the part is not
  /// parked. Caller holds mu_.
  void ScheduleMergeLocked(size_t part);

  /// The background-merge task body: backoff for retries, one MergePart
  /// attempt, then re-chain (more work / bounded retry) or park.
  void RunScheduledMerge(size_t part);

  /// Folds `part`'s currently-frozen deltas + tombstones into a new base
  /// generation and publishes it. Runs on the merge pool or inline
  /// (MergeAll); safe against concurrent appends/drops/freezes of the same
  /// part (it folds the state captured at entry; later arrivals survive).
  /// Success clears the part's degraded/quarantined flags (the fresh base
  /// IS the recovery).
  Status MergePart(size_t part);

  /// Loads `snap`'s base through the cache (keyed by generation) or disk,
  /// with bounded transient-IO retries counted into `stats`.
  Result<serve::IndexCache::IndexPtr> LoadBase(const PartSnapshot& snap,
                                               SearchStats* stats,
                                               double* io_seconds) const;

  /// Searches base + deltas of one snapshot (base preloaded or loaded
  /// here), masks tombstones, returns the unsorted chunk. Applies the
  /// kTopK k' = k + |tombstones| widening internally and counts
  /// quarantined/degraded encounters into `stats`.
  Result<std::vector<JoinableColumn>> SearchSnapshot(
      const PartSnapshot& snap, const serve::IndexCache::IndexPtr& base,
      const JoinQuery& query, SearchStats* stats, double* io_seconds) const;

  Status WriteManifestLocked() const;

  std::string dir_;
  const Metric* metric_;
  LakeOptions options_;
  uint32_t dim_;
  PartitionedPexeso::Engine engine_ = PartitionedPexeso::Engine::kPexeso;
  serve::IndexCache* cache_ = nullptr;

  mutable std::mutex mu_;  ///< guards parts_, tombstones_, next_id_, health
  std::vector<PartState> parts_;
  std::shared_ptr<const TombstoneSet> tombstones_;
  uint32_t next_id_ = 0;
  uint64_t merge_retries_ = 0;     ///< failed merge attempts retried
  uint64_t merge_io_retries_ = 0;  ///< transient-IO retries in merge writes
  uint64_t recovered_orphans_ = 0;

  /// Declared last: destroyed first, so the destructor's implicit wait
  /// drains merge tasks while every member they touch is still alive.
  std::unique_ptr<TaskGroup> merges_;
};

}  // namespace pexeso::lake

#endif  // PEXESO_LAKE_LAKE_MANAGER_H_
