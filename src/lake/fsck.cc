#include "lake/fsck.h"

#include <filesystem>
#include <utility>

#include "core/pexeso_index.h"

namespace pexeso::lake {

namespace fs = std::filesystem;

namespace {

bool IsTmpName(const std::string& name) {
  const size_t n = sizeof(kTmpSuffix) - 1;
  return name.size() > n &&
         name.compare(name.size() - n, n, kTmpSuffix) == 0;
}

/// Moves `path` into dir/quarantine/, creating the directory on first use.
Status Quarantine(const std::string& dir, const std::string& path) {
  const std::string qdir = dir + "/" + kQuarantineDir;
  std::error_code ec;
  fs::create_directories(qdir, ec);
  if (ec) return Status::IoError("cannot create " + qdir);
  const std::string dest =
      qdir + "/" + fs::path(path).filename().string();
  fs::rename(path, dest, ec);
  if (ec) return Status::IoError("cannot quarantine " + path);
  return Status::OK();
}

}  // namespace

Result<FsckReport> FsckLake(const std::string& dir,
                            const FsckOptions& options) {
  auto manifest = ReadManifest(dir);
  if (!manifest.ok()) return manifest.status();
  FsckReport report;
  report.manifest = std::move(manifest).ValueOrDie();
  std::vector<ManifestPart>& parts = report.manifest.parts;

  // Sweep: anything the manifest does not account for is an orphan — tmp
  // files from torn publications, and part files whose generation was
  // superseded (vacuum debt) or never committed (crash after the snapshot
  // rename but before the manifest rename).
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_directory()) continue;  // quarantine/ and foreign dirs
    const std::string name = entry.path().filename().string();
    if (name == kManifestFile) continue;
    bool orphan = false;
    size_t part = 0;
    uint64_t gen = 0;
    if (IsTmpName(name)) {
      orphan = true;
    } else if (ParsePartFileName(name, &part, &gen)) {
      orphan = part >= parts.size() || gen != parts[part].generation ||
               !parts[part].has_base;
    }
    if (orphan) report.orphans.push_back(entry.path().string());
  }
  if (ec) return Status::IoError("cannot scan " + dir + ": " + ec.message());

  // Validate every referenced snapshot. A bad one is a FINDING (the part
  // can keep serving without its base); only environment faults abort.
  bool manifest_dirty = false;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (!parts[i].has_base || parts[i].quarantined) continue;
    const std::string path = dir + "/" + PartFileName(i, parts[i].generation);
    std::error_code exists_ec;
    if (!fs::exists(path, exists_ec)) {
      report.missing.push_back(path);
      if (options.repair) {
        parts[i].has_base = false;
        parts[i].quarantined = true;
        manifest_dirty = true;
      }
      continue;
    }
    ++report.parts_checked;
    if (!options.verify_crc) continue;
    const Status v = PexesoIndex::VerifySnapshot(path);
    if (v.ok()) continue;
    if (v.code() != Status::Code::kCorruption &&
        v.code() != Status::Code::kNotSupported) {
      return v;  // transient environment fault: caller retries the pass
    }
    report.corrupt.push_back(path);
    if (options.repair) {
      PEXESO_RETURN_NOT_OK(Quarantine(dir, path));
      parts[i].has_base = false;
      parts[i].quarantined = true;
      manifest_dirty = true;
    }
  }

  if (options.repair) {
    for (const std::string& orphan : report.orphans) {
      std::error_code rm_ec;
      if (!fs::remove(orphan, rm_ec)) {
        return Status::IoError("cannot remove orphan " + orphan);
      }
    }
    if (manifest_dirty) {
      PEXESO_RETURN_NOT_OK(WriteManifest(dir, report.manifest));
    }
    report.repaired = !report.clean();
  }
  for (size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].quarantined) report.quarantined_parts.push_back(i);
  }
  return report;
}

}  // namespace pexeso::lake
