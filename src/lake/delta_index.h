#ifndef PEXESO_LAKE_DELTA_INDEX_H_
#define PEXESO_LAKE_DELTA_INDEX_H_

#include <memory>
#include <utility>

#include "core/pexeso_index.h"

namespace pexeso::lake {

/// \brief A small, immutable, in-memory PEXESO index over appended-but-
/// unmerged columns — the live lake's memtable equivalent.
///
/// A delta is structurally just another partition: it selects its own
/// pivots over its own (small) catalog, and its results are remapped to the
/// global id space through ColumnMeta::source_id exactly like a base
/// snapshot's. PEXESO is an exact method, so pivot choice never changes
/// WHAT a search returns — only how much filtering work it costs — which is
/// what makes searching base + delta byte-equivalent to one merged index.
///
/// Instances are built whole (one Build per published append batch) and
/// shared by shared_ptr; they are never mutated after construction, so
/// concurrent searches need no synchronization.
class DeltaIndex {
 public:
  /// Builds the delta over `catalog`, whose ColumnMeta::source_id fields
  /// must already carry the columns' GLOBAL ids.
  DeltaIndex(ColumnCatalog catalog, const Metric* metric,
             const PexesoOptions& options)
      : index_(PexesoIndex::Build(std::move(catalog), metric, options)) {}

  const PexesoIndex& index() const { return index_; }
  size_t num_columns() const { return index_.catalog().num_columns(); }
  size_t num_vectors() const { return index_.catalog().num_vectors(); }

 private:
  PexesoIndex index_;
};

using DeltaPtr = std::shared_ptr<const DeltaIndex>;

}  // namespace pexeso::lake

#endif  // PEXESO_LAKE_DELTA_INDEX_H_
