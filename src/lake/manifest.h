#ifndef PEXESO_LAKE_MANIFEST_H_
#define PEXESO_LAKE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace pexeso::lake {

/// On-disk layout names, shared by LakeManager, recovery and fsck.
inline constexpr char kManifestFile[] = "MANIFEST";
inline constexpr char kQuarantineDir[] = "quarantine";
inline constexpr char kTmpSuffix[] = ".tmp";

/// "part-<i>.g<gen>.pxso"
std::string PartFileName(size_t part, uint64_t generation);

/// Parses PartFileName output; false for anything else (including tmp and
/// foreign files).
bool ParsePartFileName(const std::string& name, size_t* part, uint64_t* gen);

struct ManifestPart {
  uint64_t generation = 1;
  bool has_base = false;
  /// The part's base snapshot failed integrity validation (or vanished) and
  /// was moved to quarantine/ — the part serves without a base until a
  /// merge writes it a fresh one.
  bool quarantined = false;
};

/// \brief The lake's root metadata record, one text file. Format v2:
///
///   pexeso-lake v2
///   dim <D>
///   parts <N>
///   next_id <I>
///   part <i> <generation> <has_base> <quarantined>     (N lines)
///
/// v1 (pre-quarantine) part lines lack the trailing flag; ReadManifest
/// accepts both, WriteManifest always writes v2.
struct LakeManifest {
  uint32_t dim = 0;
  uint32_t next_id = 0;
  std::vector<ManifestPart> parts;
};

/// Reads and validates dir/MANIFEST. NotFound when absent, Corruption for
/// any malformed content — never a crash, whatever the bytes are.
Result<LakeManifest> ReadManifest(const std::string& dir);

/// Durably publishes dir/MANIFEST: writes MANIFEST.tmp, fsyncs it, renames
/// over MANIFEST, fsyncs the directory. Failpoints: "lake:manifest:open"
/// (IoError writing the tmp), "lake:manifest:before-publish" (crash window
/// with the tmp on disk but the old MANIFEST still current),
/// "lake:manifest:after-publish" (the new MANIFEST is durable).
Status WriteManifest(const std::string& dir, const LakeManifest& manifest);

}  // namespace pexeso::lake

#endif  // PEXESO_LAKE_MANIFEST_H_
