#ifndef PEXESO_LAKE_TOMBSTONE_SET_H_
#define PEXESO_LAKE_TOMBSTONE_SET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/join_result.h"
#include "vec/search_stats.h"

namespace pexeso::lake {

/// \brief Immutable sorted set of dropped GLOBAL column ids
/// (ColumnMeta::source_id space). A drop does not touch any index: the id
/// is added here and masked out of every result chunk until a background
/// merge physically removes the column from its snapshot — at which point
/// the merge publishes a set with that id subtracted. Snapshots taken
/// before the merge may keep masking the id; masking an id that no longer
/// exists anywhere is a harmless no-op, so stale supersets are safe.
///
/// Copy-on-write: instances are shared by shared_ptr and never mutated;
/// WithAdded/WithRemoved build the successor set.
class TombstoneSet {
 public:
  TombstoneSet() = default;

  /// Successor set with `ids` added (duplicates and already-present ids
  /// are fine).
  TombstoneSet WithAdded(const std::vector<uint32_t>& ids) const {
    TombstoneSet out;
    out.ids_ = ids_;
    out.ids_.insert(out.ids_.end(), ids.begin(), ids.end());
    std::sort(out.ids_.begin(), out.ids_.end());
    out.ids_.erase(std::unique(out.ids_.begin(), out.ids_.end()),
                   out.ids_.end());
    return out;
  }

  /// Successor set with `ids` subtracted (the merge's "physically removed"
  /// report; absent ids are fine).
  TombstoneSet WithRemoved(const std::vector<uint32_t>& ids) const {
    std::vector<uint32_t> sorted = ids;
    std::sort(sorted.begin(), sorted.end());
    TombstoneSet out;
    out.ids_.reserve(ids_.size());
    for (uint32_t id : ids_) {
      if (!std::binary_search(sorted.begin(), sorted.end(), id)) {
        out.ids_.push_back(id);
      }
    }
    return out;
  }

  bool Contains(uint32_t id) const {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }

  bool empty() const { return ids_.empty(); }
  size_t size() const { return ids_.size(); }
  const std::vector<uint32_t>& ids() const { return ids_; }

 private:
  std::vector<uint32_t> ids_;  ///< sorted, unique
};

/// Removes tombstoned columns from one result chunk (global-id keyed) and
/// counts the removals into SearchStats::tombstones_masked. Returns the
/// number masked.
inline size_t MaskTombstones(const TombstoneSet& tombstones,
                             std::vector<JoinableColumn>* chunk,
                             SearchStats* stats) {
  if (tombstones.empty()) return 0;
  const size_t before = chunk->size();
  chunk->erase(std::remove_if(chunk->begin(), chunk->end(),
                              [&](const JoinableColumn& jc) {
                                return tombstones.Contains(jc.column);
                              }),
               chunk->end());
  const size_t masked = before - chunk->size();
  if (stats != nullptr) stats->tombstones_masked += masked;
  return masked;
}

}  // namespace pexeso::lake

#endif  // PEXESO_LAKE_TOMBSTONE_SET_H_
