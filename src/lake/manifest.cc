#include "lake/manifest.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/fs_util.h"

namespace pexeso::lake {

std::string PartFileName(size_t part, uint64_t generation) {
  return "part-" + std::to_string(part) + ".g" + std::to_string(generation) +
         ".pxso";
}

bool ParsePartFileName(const std::string& name, size_t* part, uint64_t* gen) {
  // part-<digits>.g<digits>.pxso
  constexpr char kPrefix[] = "part-";
  constexpr char kSuffix[] = ".pxso";
  if (name.rfind(kPrefix, 0) != 0) return false;
  if (name.size() < sizeof(kPrefix) + sizeof(kSuffix)) return false;
  if (name.compare(name.size() - 5, 5, kSuffix) != 0) return false;
  const size_t dot_g = name.find(".g", sizeof(kPrefix) - 1);
  if (dot_g == std::string::npos) return false;
  const std::string part_str =
      name.substr(sizeof(kPrefix) - 1, dot_g - (sizeof(kPrefix) - 1));
  const std::string gen_str =
      name.substr(dot_g + 2, name.size() - 5 - (dot_g + 2));
  if (part_str.empty() || gen_str.empty()) return false;
  for (char c : part_str) {
    if (c < '0' || c > '9') return false;
  }
  for (char c : gen_str) {
    if (c < '0' || c > '9') return false;
  }
  *part = static_cast<size_t>(std::strtoull(part_str.c_str(), nullptr, 10));
  *gen = std::strtoull(gen_str.c_str(), nullptr, 10);
  return true;
}

Result<LakeManifest> ReadManifest(const std::string& dir) {
  std::ifstream in(dir + "/" + kManifestFile);
  if (!in) return Status::NotFound("no MANIFEST under " + dir);
  std::string magic, version;
  if (!(in >> magic >> version) || magic != "pexeso-lake" ||
      (version != "v1" && version != "v2")) {
    return Status::Corruption("bad lake MANIFEST header");
  }
  const bool v2 = version == "v2";
  LakeManifest m;
  std::string token;
  size_t num_parts = 0;
  if (!(in >> token >> m.dim) || token != "dim" || m.dim == 0 ||
      !(in >> token >> num_parts) || token != "parts" || num_parts == 0 ||
      num_parts > (1u << 20) ||
      !(in >> token >> m.next_id) || token != "next_id") {
    return Status::Corruption("bad lake MANIFEST body");
  }
  m.parts.resize(num_parts);
  for (size_t i = 0; i < num_parts; ++i) {
    size_t part = 0;
    uint64_t gen = 0;
    int has_base = 0;
    int quarantined = 0;
    if (!(in >> token >> part >> gen >> has_base) || token != "part" ||
        part != i || gen == 0) {
      return Status::Corruption("bad lake MANIFEST part record");
    }
    if (v2 && !(in >> quarantined)) {
      return Status::Corruption("bad lake MANIFEST part record");
    }
    m.parts[i].generation = gen;
    m.parts[i].has_base = has_base != 0;
    m.parts[i].quarantined = quarantined != 0;
  }
  return m;
}

Status WriteManifest(const std::string& dir, const LakeManifest& manifest) {
  PEXESO_RETURN_NOT_OK(FailpointHit("lake:manifest:open"));
  std::ostringstream out;
  out << "pexeso-lake v2\n";
  out << "dim " << manifest.dim << "\n";
  out << "parts " << manifest.parts.size() << "\n";
  out << "next_id " << manifest.next_id << "\n";
  for (size_t i = 0; i < manifest.parts.size(); ++i) {
    const ManifestPart& p = manifest.parts[i];
    out << "part " << i << " " << p.generation << " " << (p.has_base ? 1 : 0)
        << " " << (p.quarantined ? 1 : 0) << "\n";
  }
  const std::string tmp = dir + "/" + kManifestFile + kTmpSuffix;
  {
    std::ofstream f(tmp, std::ios::trunc);
    if (!f) return Status::IoError("cannot write " + tmp);
    f << out.str();
    f.flush();
    if (!f.good()) return Status::IoError("short write to " + tmp);
  }
  PEXESO_RETURN_NOT_OK(FailpointHit("lake:manifest:before-publish"));
  PEXESO_RETURN_NOT_OK(
      PublishFileDurable(tmp, dir + "/" + kManifestFile));
  PEXESO_RETURN_NOT_OK(FailpointHit("lake:manifest:after-publish"));
  return Status::OK();
}

}  // namespace pexeso::lake
