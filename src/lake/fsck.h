#ifndef PEXESO_LAKE_FSCK_H_
#define PEXESO_LAKE_FSCK_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "lake/manifest.h"

namespace pexeso::lake {

struct FsckOptions {
  /// Act on what was found: delete orphans, move corrupt/missing parts'
  /// snapshots to quarantine/ and flag them in a rewritten MANIFEST. False
  /// = report only, touch nothing.
  bool repair = false;
  /// Run the streamed CRC pass over every referenced snapshot. Off skips
  /// the payload scan (manifest + file-existence checks only).
  bool verify_crc = true;
};

/// What one consistency pass over a lake directory found (and, with
/// repair, did).
struct FsckReport {
  /// Post-repair truth: quarantine flags reflect what was done.
  LakeManifest manifest;
  /// Files the manifest does not account for: *.tmp from torn publications
  /// and part files of superseded or never-committed generations. Deleted
  /// by repair.
  std::vector<std::string> orphans;
  /// Referenced snapshots that are absent. Their part is flagged
  /// quarantined by repair (nothing to move).
  std::vector<std::string> missing;
  /// Referenced snapshots whose bytes fail validation. Moved to
  /// quarantine/ and flagged by repair.
  std::vector<std::string> corrupt;
  /// Parts flagged quarantined in the (post-repair) manifest.
  std::vector<size_t> quarantined_parts;
  /// Referenced snapshots that existed and were checked.
  size_t parts_checked = 0;
  /// True when a repair pass ran and acted.
  bool repaired = false;

  /// Nothing found to act on (quarantined parts already on record are not
  /// new findings).
  bool clean() const {
    return orphans.empty() && missing.empty() && corrupt.empty();
  }
};

/// One consistency pass over lake directory `dir`: reads the MANIFEST,
/// sweeps the directory for orphans, validates every referenced snapshot
/// (CRC streamed, nothing deserialized), optionally repairs. Errors out
/// only on environment faults (unreadable manifest/dir, failed repair IO) —
/// corrupt SNAPSHOTS are findings, not errors. LakeManager::Open runs
/// exactly this with repair=true before serving.
Result<FsckReport> FsckLake(const std::string& dir,
                            const FsckOptions& options = {});

}  // namespace pexeso::lake

#endif  // PEXESO_LAKE_FSCK_H_
