#include "core/pexeso_index.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "core/cost_model.h"
#include "pivot/pivot_selector.h"
#include "vec/kernels.h"

namespace pexeso {

namespace {
constexpr uint32_t kMagic = 0x5058534Fu;  // "PXSO"
// v1: streamed, no checksum footer. v2: streamed, CRC-32 footer required
// (so a truncation that removes exactly the footer cannot masquerade as a
// legacy file). v3: flat section-table layout (snapshot format v2 in the
// docs): page-aligned sections the loader mmaps and binds zero-copy, same
// CRC-32 footer over every payload byte.
constexpr uint32_t kVersion = 3;
constexpr uint32_t kLegacyVersion = 2;
constexpr uint32_t kMinVersion = 1;

/// Section starts are aligned so every element type that is served
/// zero-copy (double, uint64_t, Posting, float, int8_t) lands on a
/// multiple of its alignment; 64 also keeps sections cache-line clean.
constexpr uint64_t kSectionAlign = 64;

/// Section kinds of the flat layout. Values are on-disk; never renumber.
enum SectionKind : uint32_t {
  kSecColMeta = 1,      ///< parsed: column metadata (no vectors)
  kSecPivots = 2,       ///< parsed: PivotSpace image
  kSecGrid = 3,         ///< parsed: HierarchicalGrid image
  kSecTombstones = 4,   ///< copied: u8 per column
  kSecVectors = 5,      ///< viewed: float[num_vectors * dim]
  kSecMapped = 6,       ///< viewed: double[num_vectors * num_pivots]
  kSecCellOffsets = 7,  ///< viewed: u64[num_cells + 1] CSR offsets
  kSecPostings = 8,     ///< viewed: Posting[num_postings]
  kSecVecIds = 9,       ///< viewed: u32[num_vec_ids]
  kSecQuantMeta = 10,   ///< parsed: quant kind/slack/per-column params
  kSecQuantCodes = 11,  ///< viewed: int8[num_vectors * dim]
  kSecQuantErr = 12,    ///< viewed: float[num_vectors]
};
constexpr uint32_t kMaxSectionKind = kSecQuantErr;

uint64_t Align64(uint64_t n) {
  return (n + (kSectionAlign - 1)) & ~(kSectionAlign - 1);
}

/// Reads just magic + version, outside the failpoint-instrumented
/// backends, so version dispatch does not change how many injectable
/// opens/reads one Load performs.
Status PeekHeaderWords(const std::string& path, uint32_t* magic,
                       uint32_t* version) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open index file: " + path);
  uint32_t words[2] = {0, 0};
  in.read(reinterpret_cast<char*>(words), sizeof(words));
  if (!in) return Status::Corruption("snapshot too small for header");
  *magic = words[0];
  *version = words[1];
  return Status::OK();
}
}  // namespace

PexesoIndex PexesoIndex::Build(ColumnCatalog catalog, const Metric* metric,
                               const PexesoOptions& options) {
  PEXESO_CHECK(metric != nullptr);
  PEXESO_CHECK(catalog.num_vectors() > 0);
  PexesoIndex index;
  index.catalog_ = std::move(catalog);
  index.metric_ = metric;
  index.options_ = options;
  // The grid supports at most kMaxPivots axes; more pivots add no filtering
  // power it could exploit.
  index.options_.num_pivots =
      std::max<uint32_t>(1, std::min(options.num_pivots, kMaxPivots));

  const VectorStore& store = index.catalog_.store();
  std::vector<float> pivots;
  if (options.pivot_strategy == PexesoOptions::PivotStrategy::kPca) {
    pivots = PivotSelector::SelectPca(store.raw().data(), store.size(),
                                      store.dim(), index.options_.num_pivots,
                                      metric, options.seed);
  } else {
    pivots = PivotSelector::SelectRandom(store.raw().data(), store.size(),
                                         store.dim(),
                                         index.options_.num_pivots,
                                         options.seed);
  }
  const uint32_t actual_pivots =
      static_cast<uint32_t>(pivots.size() / store.dim());
  index.pivots_ = PivotSpace(pivots.data(), actual_pivots, store.dim(), metric);

  index.mapped_ = index.pivots_.MapAll(store.raw().data(), store.size());

  uint32_t levels = options.levels;
  if (levels == 0) {
    // Pick m by the Section III-E cost model over a sampled workload.
    CostModel model(index.mapped_.data(), store.size(), actual_pivots,
                    index.pivots_.AxisExtent());
    Rng rng(options.seed ^ 0xC057ULL);
    auto workload = CostModel::SampleWorkload(
        index.catalog_, index.mapped_.data(), actual_pivots,
        index.pivots_.AxisExtent(), /*num_queries=*/32, &rng);
    levels = model.OptimalM(workload);
    index.options_.levels = levels;
  }

  HierarchicalGrid::Options gopts;
  gopts.levels = levels;
  gopts.store_leaf_items = true;
  index.grid_.Build(index.mapped_.data(), store.size(), actual_pivots,
                    index.pivots_.AxisExtent(), gopts);
  index.inv_.Build(index.grid_, index.catalog_);
  index.tombstones_.assign(index.catalog_.num_columns(), 0);
  index.RebuildQuant();
  return index;
}

void PexesoIndex::RebuildQuant() {
  const KernelSet* ks = metric_ != nullptr ? metric_->kernels() : nullptr;
  if (ks == nullptr || !ks->QuantSupported()) {
    quant_.Clear();
    return;
  }
  quant_.Build(catalog_, ks->kind);
}

void PexesoIndex::Materialize() {
  catalog_.mutable_store()->Materialize();
  inv_.Materialize();
  quant_.Materialize();
  if (mapped_ext_ != nullptr) {
    mapped_.assign(mapped_ext_, mapped_ext_ + catalog_.num_vectors() *
                                                  pivots_.num_pivots());
    mapped_ext_ = nullptr;
  }
  mapping_.reset();
}

ColumnId PexesoIndex::AppendColumn(ColumnMeta meta, const float* packed,
                                   size_t count) {
  Materialize();  // appends mutate every structure a mapping would share
  const ColumnId col = catalog_.AddColumn(std::move(meta), packed, count);
  const uint32_t np = pivots_.num_pivots();
  const VecId first = catalog_.column(col).first;

  // Pivot-map the new vectors and insert them into the grid chain.
  std::vector<double> mapped_new(count * np);
  std::unordered_map<uint32_t, std::vector<VecId>> by_leaf;
  for (size_t i = 0; i < count; ++i) {
    const VecId v = first + static_cast<VecId>(i);
    pivots_.Map(catalog_.store().View(v), mapped_new.data() + i * np);
    mapped_.insert(mapped_.end(), mapped_new.begin() + i * np,
                   mapped_new.begin() + (i + 1) * np);
    const uint32_t leaf =
        grid_.Insert(mapped_new.data() + i * np, v, /*store_item=*/true);
    by_leaf[leaf].push_back(v);
  }
  inv_.EnsureCells(grid_.LeafCells().size());
  for (auto& [leaf, vecs] : by_leaf) {
    inv_.Append(leaf, col, vecs);
  }
  tombstones_.push_back(0);
  quant_.AppendLastColumn(catalog_);
  return col;
}

void PexesoIndex::DeleteColumn(ColumnId column) {
  PEXESO_CHECK(column < tombstones_.size());
  tombstones_[column] = 1;
}

size_t PexesoIndex::Compact() {
  size_t dropped = 0;
  for (uint8_t t : tombstones_) dropped += t;
  if (dropped == 0) return 0;

  ColumnCatalog survivors(catalog_.dim());
  for (ColumnId c = 0; c < catalog_.num_columns(); ++c) {
    if (tombstones_[c]) continue;
    const ColumnMeta& meta = catalog_.column(c);
    survivors.AddColumn(meta, catalog_.store().View(meta.first), meta.count);
  }
  PEXESO_CHECK_MSG(survivors.num_columns() > 0,
                   "compacting away every column is not supported");
  *this = Build(std::move(survivors), metric_, options_);
  return dropped;
}

size_t PexesoIndex::IndexSizeBytes() const {
  return pivots_.MemoryBytes() + mapped_.capacity() * sizeof(double) +
         grid_.MemoryBytes() + inv_.MemoryBytes() + quant_.MemoryBytes() +
         tombstones_.capacity();
}

Status PexesoIndex::SaveLegacy(const std::string& path) const {
  auto wr = BinaryWriter::Open(path);
  if (!wr.ok()) return wr.status();
  BinaryWriter w = std::move(wr).ValueOrDie();
  w.Write<uint32_t>(kMagic);
  w.Write<uint32_t>(kLegacyVersion);
  w.Write<uint32_t>(options_.num_pivots);
  w.Write<uint32_t>(options_.levels);
  w.Write<uint64_t>(options_.seed);
  w.Write<uint8_t>(
      options_.pivot_strategy == PexesoOptions::PivotStrategy::kPca ? 0 : 1);
  catalog_.Serialize(&w);
  pivots_.Serialize(&w);
  if (mapped_ext_ != nullptr) {
    const size_t n = catalog_.num_vectors() * pivots_.num_pivots();
    w.Write<uint64_t>(n);
    w.WriteBytes(mapped_ext_, n * sizeof(double));
  } else {
    w.WriteVector(mapped_);
  }
  grid_.Serialize(&w);
  inv_.Serialize(&w);
  w.WriteVector(tombstones_);
  w.WriteChecksumFooter();
  return w.Close();
}

Status PexesoIndex::Save(const std::string& path) const {
  // Pre-serialize the variable-length (parsed) sections so every section
  // length — and hence every offset — is known before the table is written;
  // the CRC is a forward-only stream, so the table cannot be patched later.
  std::string colmeta, pivots_img, grid_img, quant_meta;
  {
    BinaryWriter b = BinaryWriter::ToBuffer(&colmeta);
    catalog_.SerializeMeta(&b);
  }
  {
    BinaryWriter b = BinaryWriter::ToBuffer(&pivots_img);
    pivots_.Serialize(&b);
  }
  {
    BinaryWriter b = BinaryWriter::ToBuffer(&grid_img);
    grid_.Serialize(&b);
  }
  const bool has_quant = quant_.valid();
  if (has_quant) {
    BinaryWriter b = BinaryWriter::ToBuffer(&quant_meta);
    b.Write<uint8_t>(static_cast<uint8_t>(quant_.kind()));
    b.Write<double>(quant_.slack_rel());
    b.Write<double>(quant_.slack_abs());
    b.Write<uint64_t>(quant_.num_columns());
    for (const auto& p : quant_.params()) {
      b.Write<float>(p.scale);
      b.Write<float>(p.offset);
    }
  }

  const VectorStore& store = catalog_.store();
  const uint64_t nvec = store.size();
  const uint32_t dim = store.dim();
  const uint64_t ncells = inv_.num_cells();
  const uint64_t nvecids = inv_.vec_ids_size();
  const uint32_t np = pivots_.num_pivots();

  // Flat CSR offsets for the postings sections.
  std::vector<uint64_t> cell_offsets(ncells + 1, 0);
  for (uint64_t c = 0; c < ncells; ++c) {
    cell_offsets[c + 1] =
        cell_offsets[c] + inv_.PostingsOf(static_cast<uint32_t>(c)).size();
  }
  const uint64_t npost = cell_offsets[ncells];

  struct Section {
    uint32_t kind;
    uint64_t length;
    uint64_t offset;
  };
  std::vector<Section> sections = {
      {kSecColMeta, colmeta.size(), 0},
      {kSecPivots, pivots_img.size(), 0},
      {kSecGrid, grid_img.size(), 0},
      {kSecTombstones, tombstones_.size(), 0},
      {kSecVectors, nvec * dim * sizeof(float), 0},
      {kSecMapped, nvec * np * sizeof(double), 0},
      {kSecCellOffsets, (ncells + 1) * sizeof(uint64_t), 0},
      {kSecPostings, npost * sizeof(InvertedIndex::Posting), 0},
      {kSecVecIds, nvecids * sizeof(VecId), 0},
  };
  if (has_quant) {
    sections.push_back({kSecQuantMeta, quant_meta.size(), 0});
    sections.push_back({kSecQuantCodes, nvec * static_cast<uint64_t>(dim), 0});
    sections.push_back({kSecQuantErr, nvec * sizeof(float), 0});
  }

  // Header: prelude (identical to v1/v2 through the strategy byte, plus dim
  // so PeekDim stays version-blind), counts, then the section table.
  const uint64_t header_bytes = 4 + 4 +            // magic, version
                                4 + 4 + 8 + 1 +    // options
                                4 +                // dim
                                8 + 8 + 8 +        // nvec, ncells, nvecids
                                1 +                // quant flag
                                4 +                // section count
                                24 * sections.size();
  uint64_t cursor = Align64(header_bytes);
  for (auto& s : sections) {
    s.offset = cursor;
    cursor = Align64(s.offset + s.length);
  }

  auto wr = BinaryWriter::Open(path);
  if (!wr.ok()) return wr.status();
  BinaryWriter w = std::move(wr).ValueOrDie();
  w.Write<uint32_t>(kMagic);
  w.Write<uint32_t>(kVersion);
  w.Write<uint32_t>(options_.num_pivots);
  w.Write<uint32_t>(options_.levels);
  w.Write<uint64_t>(options_.seed);
  w.Write<uint8_t>(
      options_.pivot_strategy == PexesoOptions::PivotStrategy::kPca ? 0 : 1);
  w.Write<uint32_t>(dim);
  w.Write<uint64_t>(nvec);
  w.Write<uint64_t>(ncells);
  w.Write<uint64_t>(nvecids);
  w.Write<uint8_t>(has_quant ? 1 : 0);
  w.Write<uint32_t>(static_cast<uint32_t>(sections.size()));
  for (const auto& s : sections) {
    w.Write<uint32_t>(s.kind);
    w.Write<uint32_t>(0);  // reserved
    w.Write<uint64_t>(s.offset);
    w.Write<uint64_t>(s.length);
  }

  const std::array<char, kSectionAlign> zeros{};
  auto pad_to = [&](uint64_t offset) {
    PEXESO_CHECK(w.bytes_written() <= offset);
    uint64_t gap = offset - w.bytes_written();
    while (gap > 0) {
      const uint64_t chunk = std::min<uint64_t>(gap, zeros.size());
      w.WriteBytes(zeros.data(), chunk);
      gap -= chunk;
    }
  };

  for (const auto& s : sections) {
    pad_to(s.offset);
    switch (s.kind) {
      case kSecColMeta:
        w.WriteBytes(colmeta.data(), colmeta.size());
        break;
      case kSecPivots:
        w.WriteBytes(pivots_img.data(), pivots_img.size());
        break;
      case kSecGrid:
        w.WriteBytes(grid_img.data(), grid_img.size());
        break;
      case kSecTombstones:
        w.WriteBytes(tombstones_.data(), tombstones_.size());
        break;
      case kSecVectors:
        if (nvec > 0) w.WriteBytes(store.View(0), s.length);
        break;
      case kSecMapped:
        if (nvec > 0) w.WriteBytes(MappedVec(0), s.length);
        break;
      case kSecCellOffsets:
        w.WriteBytes(cell_offsets.data(), s.length);
        break;
      case kSecPostings:
        for (uint64_t c = 0; c < ncells; ++c) {
          const auto postings = inv_.PostingsOf(static_cast<uint32_t>(c));
          w.WriteBytes(postings.data(),
                       postings.size() * sizeof(InvertedIndex::Posting));
        }
        break;
      case kSecVecIds:
        w.WriteBytes(inv_.vec_ids_data(), s.length);
        break;
      case kSecQuantMeta:
        w.WriteBytes(quant_meta.data(), quant_meta.size());
        break;
      case kSecQuantCodes:
        w.WriteBytes(quant_.codes(), s.length);
        break;
      case kSecQuantErr:
        w.WriteBytes(quant_.err(), s.length);
        break;
    }
    PEXESO_CHECK(w.bytes_written() == s.offset + s.length);
  }
  w.WriteChecksumFooter();
  return w.Close();
}

Result<uint32_t> PexesoIndex::PeekDim(const std::string& path) {
  auto rd = BinaryReader::Open(path);
  if (!rd.ok()) return rd.status();
  BinaryReader r = std::move(rd).ValueOrDie();
  uint32_t magic = 0, version = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&magic));
  if (magic != kMagic) return Status::Corruption("bad index magic");
  PEXESO_RETURN_NOT_OK(r.Read(&version));
  if (version < kMinVersion || version > kVersion) {
    return Status::NotSupported("index version");
  }
  // Skip the options block; dim is the next u32 in every version (v1/v2:
  // the store's leading field, v3: an explicit header word).
  uint32_t u32 = 0;
  uint64_t seed = 0;
  uint8_t strat = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&u32));    // num_pivots
  PEXESO_RETURN_NOT_OK(r.Read(&u32));    // levels
  PEXESO_RETURN_NOT_OK(r.Read(&seed));   // seed
  PEXESO_RETURN_NOT_OK(r.Read(&strat));  // pivot strategy
  uint32_t dim = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&dim));
  return dim;
}

Status PexesoIndex::VerifySnapshot(const std::string& path) {
  auto rd = BinaryReader::Open(path);
  if (!rd.ok()) return rd.status();
  BinaryReader r = std::move(rd).ValueOrDie();
  uint32_t magic = 0, version = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&magic));
  if (magic != kMagic) return Status::Corruption("bad index magic");
  PEXESO_RETURN_NOT_OK(r.Read(&version));
  if (version < kMinVersion || version > kVersion) {
    return Status::NotSupported("index version");
  }
  return VerifyFileChecksum(path, /*require_footer=*/version >= 2);
}

Result<PexesoIndex> PexesoIndex::Load(const std::string& path,
                                      const Metric* metric) {
  // FIFOs and other non-regular files can be read exactly once and cannot
  // be mmap'd, so snapshot bytes served through a pipe take a single
  // sequential read into a heap buffer and dispatch from there.
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IoError("cannot open index file: " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string buf = std::move(ss).str();
    if (buf.size() < 8) return Status::Corruption("snapshot too small for header");
    const uint8_t* data = reinterpret_cast<const uint8_t*>(buf.data());
    uint32_t smagic = 0, sversion = 0;
    std::memcpy(&smagic, data, sizeof(smagic));
    std::memcpy(&sversion, data + 4, sizeof(sversion));
    if (smagic != kMagic) return Status::Corruption("bad index magic");
    if (sversion < kMinVersion || sversion > kVersion) {
      return Status::NotSupported("index version");
    }
    if (sversion >= 3) {
      auto loaded = LoadFlat(data, buf.size(), metric);
      if (!loaded.ok()) return loaded.status();
      PexesoIndex index = std::move(loaded).ValueOrDie();
      // The flat loader bound views into `buf`; copy them to owned storage
      // before the buffer goes out of scope.
      index.Materialize();
      return index;
    }
    BinaryReader r = BinaryReader::FromBuffer(data, buf.size());
    uint32_t m2 = 0, v2 = 0;
    PEXESO_RETURN_NOT_OK(r.Read(&m2));
    PEXESO_RETURN_NOT_OK(r.Read(&v2));
    return LoadStream(std::move(r), sversion, metric);
  }

  uint32_t magic = 0, version = 0;
  PEXESO_RETURN_NOT_OK(PeekHeaderWords(path, &magic, &version));
  if (magic != kMagic) return Status::Corruption("bad index magic");
  if (version < kMinVersion || version > kVersion) {
    return Status::NotSupported("index version");
  }
  if (version >= 3) {
    auto mf = MappedFile::Open(path);
    if (!mf.ok()) return mf.status();
    return LoadMapped(std::move(mf).ValueOrDie(), metric);
  }
  auto rd = BinaryReader::Open(path);
  if (!rd.ok()) return rd.status();
  BinaryReader r = std::move(rd).ValueOrDie();
  uint32_t m2 = 0, v2 = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&m2));
  PEXESO_RETURN_NOT_OK(r.Read(&v2));
  if (m2 != kMagic || v2 != version) {
    return Status::Corruption("index header changed between reads");
  }
  return LoadStream(std::move(r), version, metric);
}

Result<PexesoIndex> PexesoIndex::LoadStream(BinaryReader r, uint32_t version,
                                            const Metric* metric) {
  PexesoIndex index;
  index.metric_ = metric;
  PEXESO_RETURN_NOT_OK(r.Read(&index.options_.num_pivots));
  PEXESO_RETURN_NOT_OK(r.Read(&index.options_.levels));
  PEXESO_RETURN_NOT_OK(r.Read(&index.options_.seed));
  uint8_t strat = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&strat));
  index.options_.pivot_strategy = strat == 0
                                      ? PexesoOptions::PivotStrategy::kPca
                                      : PexesoOptions::PivotStrategy::kRandom;
  PEXESO_RETURN_NOT_OK(index.catalog_.Deserialize(&r));
  PEXESO_RETURN_NOT_OK(index.pivots_.Deserialize(&r, metric));
  PEXESO_RETURN_NOT_OK(r.ReadVector(&index.mapped_));
  PEXESO_RETURN_NOT_OK(index.grid_.Deserialize(&r));
  PEXESO_RETURN_NOT_OK(index.inv_.Deserialize(&r));
  PEXESO_RETURN_NOT_OK(r.ReadVector(&index.tombstones_));
  // Reject snapshots whose payload parsed but was silently corrupted (a
  // flipped byte in vector data leaves every length plausible). v1 files
  // predate the footer and end exactly at the payload; v2 files must carry
  // one.
  PEXESO_RETURN_NOT_OK(r.VerifyChecksum(/*require_footer=*/version >= 2));
  // Legacy snapshots predate the quantized tier; rebuild it from the float
  // data (codes are a deterministic function of the vectors, so a legacy
  // load answers bit-identically to a flat one).
  index.RebuildQuant();
  index.loaded_version_ = version;
  return index;
}

Result<PexesoIndex> PexesoIndex::LoadMapped(std::shared_ptr<MappedFile> file,
                                            const Metric* metric) {
  auto loaded = LoadFlat(static_cast<const uint8_t*>(file->data()),
                         file->size(), metric);
  if (!loaded.ok()) return loaded.status();
  PexesoIndex index = std::move(loaded).ValueOrDie();
  index.mapping_ = std::move(file);
  return index;
}

Result<PexesoIndex> PexesoIndex::LoadFlat(const uint8_t* data, uint64_t size,
                                          const Metric* metric) {
  if (size < 66 + 8) return Status::Corruption("flat snapshot too small");

  // Integrity first: one slice-by-8 CRC pass over the buffer against the
  // footer, so a corrupted section table is rejected before it is trusted.
  uint32_t fmagic = 0, fcrc = 0;
  std::memcpy(&fmagic, data + size - 8, sizeof(fmagic));
  std::memcpy(&fcrc, data + size - 4, sizeof(fcrc));
  if (fmagic != kChecksumFooterMagic) {
    return Status::Corruption("flat snapshot missing checksum footer");
  }
  const uint64_t payload = size - 8;
  if (Crc32Update(0, data, payload) != fcrc) {
    return Status::Corruption("flat snapshot checksum mismatch");
  }

  BinaryReader r = BinaryReader::FromBuffer(data, payload);
  PexesoIndex index;
  index.metric_ = metric;
  uint32_t magic = 0, version = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&magic));
  PEXESO_RETURN_NOT_OK(r.Read(&version));
  if (magic != kMagic || version != kVersion) {
    return Status::Corruption("flat snapshot header mismatch");
  }
  PEXESO_RETURN_NOT_OK(r.Read(&index.options_.num_pivots));
  PEXESO_RETURN_NOT_OK(r.Read(&index.options_.levels));
  PEXESO_RETURN_NOT_OK(r.Read(&index.options_.seed));
  uint8_t strat = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&strat));
  index.options_.pivot_strategy = strat == 0
                                      ? PexesoOptions::PivotStrategy::kPca
                                      : PexesoOptions::PivotStrategy::kRandom;
  uint32_t dim = 0;
  uint64_t nvec = 0, ncells = 0, nvecids = 0;
  uint8_t quant_flag = 0;
  uint32_t num_sections = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&dim));
  PEXESO_RETURN_NOT_OK(r.Read(&nvec));
  PEXESO_RETURN_NOT_OK(r.Read(&ncells));
  PEXESO_RETURN_NOT_OK(r.Read(&nvecids));
  PEXESO_RETURN_NOT_OK(r.Read(&quant_flag));
  PEXESO_RETURN_NOT_OK(r.Read(&num_sections));
  if (dim == 0 || nvec == 0) {
    return Status::Corruption("flat snapshot with empty repository");
  }
  if (num_sections > 2 * kMaxSectionKind) {
    return Status::Corruption("flat snapshot section count implausible");
  }

  std::array<uint64_t, kMaxSectionKind + 1> sec_off{};
  std::array<uint64_t, kMaxSectionKind + 1> sec_len{};
  std::array<bool, kMaxSectionKind + 1> sec_present{};
  for (uint32_t i = 0; i < num_sections; ++i) {
    uint32_t kind = 0, reserved = 0;
    uint64_t off = 0, len = 0;
    PEXESO_RETURN_NOT_OK(r.Read(&kind));
    PEXESO_RETURN_NOT_OK(r.Read(&reserved));
    PEXESO_RETURN_NOT_OK(r.Read(&off));
    PEXESO_RETURN_NOT_OK(r.Read(&len));
    if (kind == 0 || kind > kMaxSectionKind) continue;  // forward-compat
    if (sec_present[kind]) {
      return Status::Corruption("flat snapshot duplicates a section");
    }
    if (off % kSectionAlign != 0 || off > payload || len > payload - off) {
      return Status::Corruption("flat snapshot section out of bounds");
    }
    sec_present[kind] = true;
    sec_off[kind] = off;
    sec_len[kind] = len;
  }
  const uint32_t required[] = {kSecColMeta,     kSecPivots,   kSecGrid,
                               kSecTombstones,  kSecVectors,  kSecMapped,
                               kSecCellOffsets, kSecPostings, kSecVecIds};
  for (uint32_t kind : required) {
    if (!sec_present[kind]) {
      return Status::Corruption("flat snapshot missing a required section");
    }
  }
  auto section_reader = [&](uint32_t kind) {
    return BinaryReader::FromBuffer(data + sec_off[kind], sec_len[kind]);
  };

  // Parsed sections.
  {
    BinaryReader pr = section_reader(kSecPivots);
    PEXESO_RETURN_NOT_OK(index.pivots_.Deserialize(&pr, metric));
  }
  {
    BinaryReader gr = section_reader(kSecGrid);
    PEXESO_RETURN_NOT_OK(index.grid_.Deserialize(&gr));
  }
  {
    BinaryReader cr = section_reader(kSecColMeta);
    PEXESO_RETURN_NOT_OK(index.catalog_.DeserializeMeta(&cr));
  }
  const uint64_t ncols = index.catalog_.num_columns();
  if (sec_len[kSecTombstones] != ncols) {
    return Status::Corruption("tombstone section length mismatch");
  }
  const uint8_t* tomb = data + sec_off[kSecTombstones];
  index.tombstones_.assign(tomb, tomb + ncols);

  // Fixed-shape sections: exact length checks, then zero-copy binds.
  const uint32_t np = index.pivots_.num_pivots();
  if (sec_len[kSecVectors] != nvec * dim * sizeof(float) ||
      sec_len[kSecMapped] != nvec * np * sizeof(double) ||
      sec_len[kSecCellOffsets] != (ncells + 1) * sizeof(uint64_t) ||
      sec_len[kSecPostings] % sizeof(InvertedIndex::Posting) != 0 ||
      sec_len[kSecVecIds] != nvecids * sizeof(VecId)) {
    return Status::Corruption("flat snapshot section shape mismatch");
  }
  const auto* cell_offsets =
      reinterpret_cast<const uint64_t*>(data + sec_off[kSecCellOffsets]);
  const auto* postings = reinterpret_cast<const InvertedIndex::Posting*>(
      data + sec_off[kSecPostings]);
  const uint64_t npost =
      sec_len[kSecPostings] / sizeof(InvertedIndex::Posting);
  for (uint64_t c = 0; c < ncells; ++c) {
    if (cell_offsets[c] > cell_offsets[c + 1]) {
      return Status::Corruption("postings offsets not monotone");
    }
  }
  if (cell_offsets[0] != 0 || cell_offsets[ncells] != npost) {
    return Status::Corruption("postings offsets do not cover the postings");
  }
  for (uint64_t p = 0; p < npost; ++p) {
    if (postings[p].column >= ncols ||
        postings[p].vec_begin + static_cast<uint64_t>(postings[p].vec_count) >
            nvecids) {
      return Status::Corruption("posting references out-of-range data");
    }
  }

  index.catalog_.mutable_store()->BindView(
      reinterpret_cast<const float*>(data + sec_off[kSecVectors]), nvec, dim);
  index.mapped_.clear();
  index.mapped_ext_ =
      reinterpret_cast<const double*>(data + sec_off[kSecMapped]);
  index.inv_.BindView(cell_offsets, ncells, postings,
                      reinterpret_cast<const VecId*>(data + sec_off[kSecVecIds]),
                      nvecids);

  if (quant_flag != 0) {
    if (!sec_present[kSecQuantMeta] || !sec_present[kSecQuantCodes] ||
        !sec_present[kSecQuantErr]) {
      return Status::Corruption("flat snapshot missing quant sections");
    }
    if (sec_len[kSecQuantCodes] != nvec * dim ||
        sec_len[kSecQuantErr] != nvec * sizeof(float)) {
      return Status::Corruption("quant section shape mismatch");
    }
    BinaryReader qr = section_reader(kSecQuantMeta);
    uint8_t qkind = 0;
    double slack_rel = 0.0, slack_abs = 0.0;
    uint64_t qcols = 0;
    PEXESO_RETURN_NOT_OK(qr.Read(&qkind));
    PEXESO_RETURN_NOT_OK(qr.Read(&slack_rel));
    PEXESO_RETURN_NOT_OK(qr.Read(&slack_abs));
    PEXESO_RETURN_NOT_OK(qr.Read(&qcols));
    if (qkind > static_cast<uint8_t>(MetricKind::kL1) || qcols != ncols) {
      return Status::Corruption("quant metadata mismatch");
    }
    std::vector<QuantColumnParam> params(qcols);
    for (auto& p : params) {
      PEXESO_RETURN_NOT_OK(qr.Read(&p.scale));
      PEXESO_RETURN_NOT_OK(qr.Read(&p.offset));
    }
    index.quant_.BindView(
        std::move(params),
        reinterpret_cast<const int8_t*>(data + sec_off[kSecQuantCodes]),
        reinterpret_cast<const float*>(data + sec_off[kSecQuantErr]), nvec,
        dim, static_cast<MetricKind>(qkind), slack_rel, slack_abs);
  } else {
    index.quant_.Clear();
  }

  index.loaded_version_ = 3;
  return index;
}

}  // namespace pexeso
