#include "core/pexeso_index.h"

#include <unordered_map>

#include "core/cost_model.h"
#include "pivot/pivot_selector.h"

namespace pexeso {

namespace {
constexpr uint32_t kMagic = 0x5058534Fu;  // "PXSO"
// v1: no checksum footer. v2: CRC-32 footer required (so a truncation that
// removes exactly the footer cannot masquerade as a legacy file).
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMinVersion = 1;
}  // namespace

PexesoIndex PexesoIndex::Build(ColumnCatalog catalog, const Metric* metric,
                               const PexesoOptions& options) {
  PEXESO_CHECK(metric != nullptr);
  PEXESO_CHECK(catalog.num_vectors() > 0);
  PexesoIndex index;
  index.catalog_ = std::move(catalog);
  index.metric_ = metric;
  index.options_ = options;
  // The grid supports at most kMaxPivots axes; more pivots add no filtering
  // power it could exploit.
  index.options_.num_pivots =
      std::max<uint32_t>(1, std::min(options.num_pivots, kMaxPivots));

  const VectorStore& store = index.catalog_.store();
  std::vector<float> pivots;
  if (options.pivot_strategy == PexesoOptions::PivotStrategy::kPca) {
    pivots = PivotSelector::SelectPca(store.raw().data(), store.size(),
                                      store.dim(), index.options_.num_pivots,
                                      metric, options.seed);
  } else {
    pivots = PivotSelector::SelectRandom(store.raw().data(), store.size(),
                                         store.dim(),
                                         index.options_.num_pivots,
                                         options.seed);
  }
  const uint32_t actual_pivots =
      static_cast<uint32_t>(pivots.size() / store.dim());
  index.pivots_ = PivotSpace(pivots.data(), actual_pivots, store.dim(), metric);

  index.mapped_ = index.pivots_.MapAll(store.raw().data(), store.size());

  uint32_t levels = options.levels;
  if (levels == 0) {
    // Pick m by the Section III-E cost model over a sampled workload.
    CostModel model(index.mapped_.data(), store.size(), actual_pivots,
                    index.pivots_.AxisExtent());
    Rng rng(options.seed ^ 0xC057ULL);
    auto workload = CostModel::SampleWorkload(
        index.catalog_, index.mapped_.data(), actual_pivots,
        index.pivots_.AxisExtent(), /*num_queries=*/32, &rng);
    levels = model.OptimalM(workload);
    index.options_.levels = levels;
  }

  HierarchicalGrid::Options gopts;
  gopts.levels = levels;
  gopts.store_leaf_items = true;
  index.grid_.Build(index.mapped_.data(), store.size(), actual_pivots,
                    index.pivots_.AxisExtent(), gopts);
  index.inv_.Build(index.grid_, index.catalog_);
  index.tombstones_.assign(index.catalog_.num_columns(), 0);
  return index;
}

ColumnId PexesoIndex::AppendColumn(ColumnMeta meta, const float* packed,
                                   size_t count) {
  const ColumnId col = catalog_.AddColumn(std::move(meta), packed, count);
  const uint32_t np = pivots_.num_pivots();
  const VecId first = catalog_.column(col).first;

  // Pivot-map the new vectors and insert them into the grid chain.
  std::vector<double> mapped_new(count * np);
  std::unordered_map<uint32_t, std::vector<VecId>> by_leaf;
  for (size_t i = 0; i < count; ++i) {
    const VecId v = first + static_cast<VecId>(i);
    pivots_.Map(catalog_.store().View(v), mapped_new.data() + i * np);
    mapped_.insert(mapped_.end(), mapped_new.begin() + i * np,
                   mapped_new.begin() + (i + 1) * np);
    const uint32_t leaf =
        grid_.Insert(mapped_new.data() + i * np, v, /*store_item=*/true);
    by_leaf[leaf].push_back(v);
  }
  inv_.EnsureCells(grid_.LeafCells().size());
  for (auto& [leaf, vecs] : by_leaf) {
    inv_.Append(leaf, col, vecs);
  }
  tombstones_.push_back(0);
  return col;
}

void PexesoIndex::DeleteColumn(ColumnId column) {
  PEXESO_CHECK(column < tombstones_.size());
  tombstones_[column] = 1;
}

size_t PexesoIndex::Compact() {
  size_t dropped = 0;
  for (uint8_t t : tombstones_) dropped += t;
  if (dropped == 0) return 0;

  ColumnCatalog survivors(catalog_.dim());
  for (ColumnId c = 0; c < catalog_.num_columns(); ++c) {
    if (tombstones_[c]) continue;
    const ColumnMeta& meta = catalog_.column(c);
    survivors.AddColumn(meta, catalog_.store().View(meta.first), meta.count);
  }
  PEXESO_CHECK_MSG(survivors.num_columns() > 0,
                   "compacting away every column is not supported");
  *this = Build(std::move(survivors), metric_, options_);
  return dropped;
}

size_t PexesoIndex::IndexSizeBytes() const {
  return pivots_.MemoryBytes() + mapped_.capacity() * sizeof(double) +
         grid_.MemoryBytes() + inv_.MemoryBytes() +
         tombstones_.capacity();
}

Status PexesoIndex::Save(const std::string& path) const {
  auto wr = BinaryWriter::Open(path);
  if (!wr.ok()) return wr.status();
  BinaryWriter w = std::move(wr).ValueOrDie();
  w.Write<uint32_t>(kMagic);
  w.Write<uint32_t>(kVersion);
  w.Write<uint32_t>(options_.num_pivots);
  w.Write<uint32_t>(options_.levels);
  w.Write<uint64_t>(options_.seed);
  w.Write<uint8_t>(
      options_.pivot_strategy == PexesoOptions::PivotStrategy::kPca ? 0 : 1);
  catalog_.Serialize(&w);
  pivots_.Serialize(&w);
  w.WriteVector(mapped_);
  grid_.Serialize(&w);
  inv_.Serialize(&w);
  w.WriteVector(tombstones_);
  w.WriteChecksumFooter();
  return w.Close();
}

Result<uint32_t> PexesoIndex::PeekDim(const std::string& path) {
  auto rd = BinaryReader::Open(path);
  if (!rd.ok()) return rd.status();
  BinaryReader r = std::move(rd).ValueOrDie();
  uint32_t magic = 0, version = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&magic));
  if (magic != kMagic) return Status::Corruption("bad index magic");
  PEXESO_RETURN_NOT_OK(r.Read(&version));
  if (version < kMinVersion || version > kVersion) {
    return Status::NotSupported("index version");
  }
  // Skip the options block; the store's dim is the next field (the layout
  // Save writes: options, then catalog = store-first).
  uint32_t u32 = 0;
  uint64_t seed = 0;
  uint8_t strat = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&u32));    // num_pivots
  PEXESO_RETURN_NOT_OK(r.Read(&u32));    // levels
  PEXESO_RETURN_NOT_OK(r.Read(&seed));   // seed
  PEXESO_RETURN_NOT_OK(r.Read(&strat));  // pivot strategy
  uint32_t dim = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&dim));
  return dim;
}

Status PexesoIndex::VerifySnapshot(const std::string& path) {
  auto rd = BinaryReader::Open(path);
  if (!rd.ok()) return rd.status();
  BinaryReader r = std::move(rd).ValueOrDie();
  uint32_t magic = 0, version = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&magic));
  if (magic != kMagic) return Status::Corruption("bad index magic");
  PEXESO_RETURN_NOT_OK(r.Read(&version));
  if (version < kMinVersion || version > kVersion) {
    return Status::NotSupported("index version");
  }
  return VerifyFileChecksum(path, /*require_footer=*/version >= 2);
}

Result<PexesoIndex> PexesoIndex::Load(const std::string& path,
                                      const Metric* metric) {
  auto rd = BinaryReader::Open(path);
  if (!rd.ok()) return rd.status();
  BinaryReader r = std::move(rd).ValueOrDie();
  uint32_t magic = 0, version = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&magic));
  if (magic != kMagic) return Status::Corruption("bad index magic");
  PEXESO_RETURN_NOT_OK(r.Read(&version));
  if (version < kMinVersion || version > kVersion) {
    return Status::NotSupported("index version");
  }

  PexesoIndex index;
  index.metric_ = metric;
  PEXESO_RETURN_NOT_OK(r.Read(&index.options_.num_pivots));
  PEXESO_RETURN_NOT_OK(r.Read(&index.options_.levels));
  PEXESO_RETURN_NOT_OK(r.Read(&index.options_.seed));
  uint8_t strat = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&strat));
  index.options_.pivot_strategy = strat == 0
                                      ? PexesoOptions::PivotStrategy::kPca
                                      : PexesoOptions::PivotStrategy::kRandom;
  PEXESO_RETURN_NOT_OK(index.catalog_.Deserialize(&r));
  PEXESO_RETURN_NOT_OK(index.pivots_.Deserialize(&r, metric));
  PEXESO_RETURN_NOT_OK(r.ReadVector(&index.mapped_));
  PEXESO_RETURN_NOT_OK(index.grid_.Deserialize(&r));
  PEXESO_RETURN_NOT_OK(index.inv_.Deserialize(&r));
  PEXESO_RETURN_NOT_OK(r.ReadVector(&index.tombstones_));
  // Reject snapshots whose payload parsed but was silently corrupted (a
  // flipped byte in vector data leaves every length plausible). v1 files
  // predate the footer and end exactly at the payload; v2 files must carry
  // one.
  PEXESO_RETURN_NOT_OK(r.VerifyChecksum(/*require_footer=*/version >= 2));
  return index;
}

}  // namespace pexeso
