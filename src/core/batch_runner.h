#ifndef PEXESO_CORE_BATCH_RUNNER_H_
#define PEXESO_CORE_BATCH_RUNNER_H_

#include <cstddef>
#include <vector>

#include "core/engine.h"

namespace pexeso {

/// \brief How a batch iterates a PartitionedJoinEngine (ignored for
/// in-memory engines, which have no partition axis).
enum class BatchPartitionMode {
  /// Partition-major when the engine reports its parts will NOT stay
  /// resident across queries (no cache, or a budget too small to hold the
  /// partitions); query-major otherwise.
  kAuto,
  /// Every query searches all partitions itself (each load hits the cache
  /// or disk per query) — the pre-serving-layer behavior.
  kQueryMajor,
  /// Outer loop over partitions: each partition is loaded ONCE per batch
  /// and all queries search it while it is held resident, so batch IO is
  /// O(partitions) instead of O(queries x partitions).
  kPartitionMajor,
};

/// \brief Options for a batch run.
struct BatchRunnerOptions {
  /// Worker threads fanning the queries out. 0 = one per hardware thread.
  size_t num_threads = 1;
  BatchPartitionMode partition_mode = BatchPartitionMode::kAuto;
};

/// \brief Outcome of one batch run.
struct BatchResult {
  /// results[i] is the joinable set of queries[i] — input order, always,
  /// regardless of how many threads executed the batch.
  std::vector<std::vector<JoinableColumn>> results;
  /// statuses[i] is queries[i]'s execution status: OK for a complete
  /// search, Cancelled/DeadlineExceeded when that query's controls tripped
  /// (results[i] then holds whatever completed — valid partial results),
  /// or the failure of the part that broke it.
  std::vector<Status> statuses;
  /// Counters of every search, merged in input order: the counter fields
  /// are identical at any thread count (the *_seconds fields are wall-clock
  /// measurements and naturally vary run to run).
  SearchStats stats;
  /// Wall-clock of the fan-out (excludes engine/index construction).
  double wall_seconds = 0.0;
  /// Time blocked on partition IO across the batch. Tracked only on the
  /// partition-major path (query-major searches hide their IO inside the
  /// engine's Execute).
  double io_seconds = 0.0;
};

/// \brief Parallel batch query runner: fans M JoinQuery requests out across
/// a thread pool against one shared read-only engine.
///
/// Data-lake discovery is a batch workload — thousands of query columns
/// against one index — so the per-column latency matters less than
/// aggregate throughput. The runner exploits the embarrassing parallelism
/// across query columns: each worker executes whole requests with its own
/// SearchStats scratch slot, and the slots are merged after the barrier.
///
/// Out-of-core engines get a second axis: when the engine implements
/// PartitionedJoinEngine and its parts will not stay resident (see
/// BatchPartitionMode), the runner flips to a partition-major loop that
/// loads each partition once per batch and fans the queries out against the
/// held partition — the difference between O(partitions) and
/// O(queries x partitions) deserializations per batch.
///
/// A third axis composes with both: queries whose JoinQuery asks for
/// intra-query verification shards (intra_query_threads > 1) without a pool
/// get ONE runner-provisioned intra pool shared across the batch, and the
/// batch-major fan-out shrinks to num_threads / intra so the two axes
/// multiply to roughly the requested budget instead of oversubscribing.
/// The shrink is batch-wide (sized by the LARGEST intra request), so a
/// batch mixing one intra-parallel giant with many serial queries
/// serializes the serial ones too — submit such mixes as separate batches,
/// or hand every query an explicit shared intra_query_pool to keep the
/// fan-out untouched.
///
/// Deadline/cancellation: each query's controls are checked before its
/// work is dispatched (and, partition-major, before every further part),
/// so a cancelled or expired query stops consuming the pool immediately
/// and its status records the interruption.
///
/// Determinism contract: results (and the stats counters) are identical
/// for any `num_threads` and either partition mode, because (a) engines are
/// deterministic per query, (b) every query writes only its own
/// pre-allocated slot, (c) slots are merged serially in input order, and
/// (d) partition-major chunks are concatenated in partition order before
/// the canonical mode-aware merge. (kTopK work COUNTERS vary with
/// execution order; kTopK results do not.)
class BatchQueryRunner {
 public:
  /// `engine` is borrowed and must outlive the runner. Its Execute must be
  /// safe for concurrent calls (true for every engine in the library).
  explicit BatchQueryRunner(const JoinSearchEngine* engine,
                            BatchRunnerOptions options = {});

  /// Executes every request and returns all results in input order. Each
  /// JoinQuery carries its own vectors/mode/thresholds/controls.
  BatchResult Run(const std::vector<JoinQuery>& queries) const;

  size_t num_threads() const { return num_threads_; }
  const JoinSearchEngine* engine() const { return engine_; }

 private:
  /// The partition-major loop described above. `parts` is engine_'s
  /// PartitionedJoinEngine view; `outer_threads` is the batch-major fan-out
  /// left after the intra-query composition carved out its share.
  void RunPartitionMajor(const PartitionedJoinEngine& parts,
                         const std::vector<JoinQuery>& queries,
                         size_t outer_threads,
                         std::vector<SearchStats>* scratch,
                         BatchResult* out) const;

  const JoinSearchEngine* engine_;
  size_t num_threads_;
  BatchPartitionMode partition_mode_;
};

}  // namespace pexeso

#endif  // PEXESO_CORE_BATCH_RUNNER_H_
