#ifndef PEXESO_CORE_BATCH_RUNNER_H_
#define PEXESO_CORE_BATCH_RUNNER_H_

#include <cstddef>
#include <vector>

#include "core/engine.h"

namespace pexeso {

/// \brief Options for a batch run.
struct BatchRunnerOptions {
  /// Worker threads fanning the queries out. 0 = one per hardware thread.
  size_t num_threads = 1;
};

/// \brief Outcome of one batch run.
struct BatchResult {
  /// results[i] is the joinable set of queries[i] — input order, always,
  /// regardless of how many threads executed the batch.
  std::vector<std::vector<JoinableColumn>> results;
  /// Counters of every search, merged in input order: the counter fields
  /// are identical at any thread count (the *_seconds fields are wall-clock
  /// measurements and naturally vary run to run).
  SearchStats stats;
  /// Wall-clock of the fan-out (excludes engine/index construction).
  double wall_seconds = 0.0;
};

/// \brief Parallel batch query runner: fans M query columns out across a
/// thread pool against one shared read-only engine.
///
/// Data-lake discovery is a batch workload — thousands of query columns
/// against one index — so the per-column Search latency matters less than
/// aggregate throughput. The runner exploits the embarrassing parallelism
/// across query columns: each worker searches whole columns with its own
/// SearchStats scratch slot, and the slots are merged after the barrier.
///
/// Determinism contract: results (and the stats counters) are identical
/// for any `num_threads`, because (a) engines are deterministic per query,
/// (b) every query writes only its own pre-allocated slot, and (c) slots
/// are merged serially in input order.
class BatchQueryRunner {
 public:
  /// `engine` is borrowed and must outlive the runner. Its Search must be
  /// safe for concurrent calls (true for every engine in the library).
  explicit BatchQueryRunner(const JoinSearchEngine* engine,
                            BatchRunnerOptions options = {});

  /// Searches every query column and returns all results in input order.
  BatchResult Run(const std::vector<VectorStore>& queries,
                  const SearchOptions& options) const;

  /// Per-query options variant (fractional thresholds resolve to a
  /// different absolute T per query size). options.size() must equal
  /// queries.size().
  BatchResult Run(const std::vector<VectorStore>& queries,
                  const std::vector<SearchOptions>& options) const;

  size_t num_threads() const { return num_threads_; }
  const JoinSearchEngine* engine() const { return engine_; }

 private:
  /// `options_for(i)` yields the SearchOptions for queries[i].
  template <typename OptionsFor>
  BatchResult RunImpl(const std::vector<VectorStore>& queries,
                      const OptionsFor& options_for) const;

  const JoinSearchEngine* engine_;
  size_t num_threads_;
};

}  // namespace pexeso

#endif  // PEXESO_CORE_BATCH_RUNNER_H_
