#ifndef PEXESO_CORE_BATCH_RUNNER_H_
#define PEXESO_CORE_BATCH_RUNNER_H_

#include <cstddef>
#include <vector>

#include "core/engine.h"

namespace pexeso {

/// \brief How a batch iterates a PartitionedJoinEngine (ignored for
/// in-memory engines, which have no partition axis).
enum class BatchPartitionMode {
  /// Partition-major when the engine reports its parts will NOT stay
  /// resident across queries (no cache, or a budget too small to hold the
  /// partitions); query-major otherwise.
  kAuto,
  /// Every query searches all partitions itself (each load hits the cache
  /// or disk per query) — the pre-serving-layer behavior.
  kQueryMajor,
  /// Outer loop over partitions: each partition is loaded ONCE per batch
  /// and all queries search it while it is held resident, so batch IO is
  /// O(partitions) instead of O(queries x partitions).
  kPartitionMajor,
};

/// \brief Options for a batch run.
struct BatchRunnerOptions {
  /// Worker threads fanning the queries out. 0 = one per hardware thread.
  size_t num_threads = 1;
  BatchPartitionMode partition_mode = BatchPartitionMode::kAuto;
};

/// \brief Outcome of one batch run.
struct BatchResult {
  /// results[i] is the joinable set of queries[i] — input order, always,
  /// regardless of how many threads executed the batch.
  std::vector<std::vector<JoinableColumn>> results;
  /// Counters of every search, merged in input order: the counter fields
  /// are identical at any thread count (the *_seconds fields are wall-clock
  /// measurements and naturally vary run to run).
  SearchStats stats;
  /// Wall-clock of the fan-out (excludes engine/index construction).
  double wall_seconds = 0.0;
  /// Time blocked on partition IO across the batch. Tracked only on the
  /// partition-major path (query-major searches hide their IO inside the
  /// engine's Search).
  double io_seconds = 0.0;
};

/// \brief Parallel batch query runner: fans M query columns out across a
/// thread pool against one shared read-only engine.
///
/// Data-lake discovery is a batch workload — thousands of query columns
/// against one index — so the per-column Search latency matters less than
/// aggregate throughput. The runner exploits the embarrassing parallelism
/// across query columns: each worker searches whole columns with its own
/// SearchStats scratch slot, and the slots are merged after the barrier.
///
/// Out-of-core engines get a second axis: when the engine implements
/// PartitionedJoinEngine and its parts will not stay resident (see
/// BatchPartitionMode), the runner flips to a partition-major loop that
/// loads each partition once per batch and fans the queries out against the
/// held partition — the difference between O(partitions) and
/// O(queries x partitions) deserializations per batch.
///
/// A third axis composes with both: queries whose SearchOptions ask for
/// intra-query verification shards (intra_query_threads > 1) without a pool
/// get ONE runner-provisioned intra pool shared across the batch, and the
/// batch-major fan-out shrinks to num_threads / intra so the two axes
/// multiply to roughly the requested budget instead of oversubscribing.
/// The shrink is batch-wide (sized by the LARGEST intra request), so a
/// batch mixing one intra-parallel giant with many serial queries
/// serializes the serial ones too — submit such mixes as separate batches,
/// or hand every query an explicit shared intra_query_pool to keep the
/// fan-out untouched.
///
/// Determinism contract: results (and the stats counters) are identical
/// for any `num_threads` and either partition mode, because (a) engines are
/// deterministic per query, (b) every query writes only its own
/// pre-allocated slot, (c) slots are merged serially in input order, and
/// (d) partition-major chunks are concatenated in partition order before
/// the canonical global-column-id merge.
class BatchQueryRunner {
 public:
  /// `engine` is borrowed and must outlive the runner. Its Search must be
  /// safe for concurrent calls (true for every engine in the library).
  explicit BatchQueryRunner(const JoinSearchEngine* engine,
                            BatchRunnerOptions options = {});

  /// Searches every query column and returns all results in input order.
  BatchResult Run(const std::vector<VectorStore>& queries,
                  const SearchOptions& options) const;

  /// Per-query options variant (fractional thresholds resolve to a
  /// different absolute T per query size). options.size() must equal
  /// queries.size().
  BatchResult Run(const std::vector<VectorStore>& queries,
                  const std::vector<SearchOptions>& options) const;

  size_t num_threads() const { return num_threads_; }
  const JoinSearchEngine* engine() const { return engine_; }

 private:
  /// `options_for(i)` yields the SearchOptions for queries[i].
  template <typename OptionsFor>
  BatchResult RunImpl(const std::vector<VectorStore>& queries,
                      const OptionsFor& options_for) const;

  /// The partition-major loop described above. `parts` is engine_'s
  /// PartitionedJoinEngine view; `outer_threads` is the batch-major fan-out
  /// left after the intra-query composition carved out its share.
  template <typename OptionsFor>
  void RunPartitionMajor(const PartitionedJoinEngine& parts,
                         const std::vector<VectorStore>& queries,
                         const OptionsFor& options_for, size_t outer_threads,
                         std::vector<SearchStats>* scratch,
                         BatchResult* out) const;

  const JoinSearchEngine* engine_;
  size_t num_threads_;
  BatchPartitionMode partition_mode_;
};

}  // namespace pexeso

#endif  // PEXESO_CORE_BATCH_RUNNER_H_
