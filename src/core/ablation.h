#ifndef PEXESO_CORE_ABLATION_H_
#define PEXESO_CORE_ABLATION_H_

namespace pexeso {

/// \brief Switches for the Figure 9 ablation study. Every switch defaults to
/// on; turning one off removes the corresponding filtering/matching rule but
/// never changes the result set (the algorithm stays exact, only slower).
struct AblationConfig {
  bool use_lemma1 = true;    ///< pivot filtering of single vectors (verify)
  bool use_lemma2 = true;    ///< pivot matching of single vectors (verify)
  bool use_lemma34 = true;   ///< vector-cell & cell-cell filtering (block)
  bool use_lemma56 = true;   ///< vector-cell & cell-cell matching (block)
  bool use_lemma7 = true;    ///< column kill by mismatch counting (verify)
  bool use_quick_browsing = true;  ///< probe co-located leaf cells up front
  /// int8 quantized tile tier ahead of the exact float tiles (verify). The
  /// quantized bound only ever decides pairs it provably decides correctly,
  /// so — like every other switch — results are identical on or off.
  bool use_quant_prefilter = true;
  /// kTopK only: verify a shard's columns in descending upper-bound order
  /// (candidate-count = achievable match count) instead of ascending id, so
  /// likely winners run first and the k-th-best bound tightens sooner.
  /// Pruning is strict-beat and order-insensitive, so results are identical
  /// on or off; only the prune counters improve.
  bool topk_order_by_ub = true;
};

}  // namespace pexeso

#endif  // PEXESO_CORE_ABLATION_H_
