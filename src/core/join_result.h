#ifndef PEXESO_CORE_JOIN_RESULT_H_
#define PEXESO_CORE_JOIN_RESULT_H_

#include <cstdint>
#include <vector>

#include "vec/vector_store.h"

namespace pexeso {

/// \brief One record-level match presented to the user along with a joinable
/// column (the paper returns the mapping between query records and target
/// records since users may be unfamiliar with the join predicate).
struct RecordMatch {
  uint32_t query_index;  ///< index of the record in the query column
  VecId target_vec;      ///< a matching vector in the target column
};

/// \brief One joinable column in the search result.
struct JoinableColumn {
  ColumnId column = 0;
  uint32_t match_count = 0;   ///< |Q_M|: query records with >= 1 match
  double joinability = 0.0;   ///< match_count / |Q|
  /// Record-level mapping; populated only when the searcher is asked to
  /// collect mappings (it costs extra verification work after the column is
  /// already known to be joinable).
  std::vector<RecordMatch> mapping;
};

}  // namespace pexeso

#endif  // PEXESO_CORE_JOIN_RESULT_H_
