#ifndef PEXESO_CORE_SEARCHER_H_
#define PEXESO_CORE_SEARCHER_H_

#include <cstdint>
#include <vector>

#include "core/blocker.h"
#include "core/engine.h"
#include "core/pexeso_index.h"

namespace pexeso {

/// \brief The online side of PEXESO (Algorithm 3): builds HGQ for the query
/// column, quick-browses co-located leaf cells, blocks with Algorithm 1, and
/// verifies through the staged VerifyPipeline (candidate generation ->
/// column-sharded tiled verification -> deterministic reduction; see
/// core/verify_pipeline.h). SearchOptions::intra_query_threads parallelizes
/// the verification of a single huge query column.
class PexesoSearcher : public JoinSearchEngine {
 public:
  /// `index` is borrowed and must outlive the searcher.
  explicit PexesoSearcher(const PexesoIndex* index) : index_(index) {}

  const char* name() const override { return "pexeso"; }

  /// Finds all repository columns joinable with the query column. `query`
  /// holds |Q| unit-normalized vectors of the index's dimensionality.
  /// `stats` may be null.
  std::vector<JoinableColumn> Search(const VectorStore& query,
                                     const SearchOptions& options,
                                     SearchStats* stats) const override;

 private:
  const PexesoIndex* index_;
};

}  // namespace pexeso

#endif  // PEXESO_CORE_SEARCHER_H_
