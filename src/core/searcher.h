#ifndef PEXESO_CORE_SEARCHER_H_
#define PEXESO_CORE_SEARCHER_H_

#include <cstdint>
#include <vector>

#include "core/blocker.h"
#include "core/engine.h"
#include "core/pexeso_index.h"

namespace pexeso {

/// \brief The online side of PEXESO (Algorithm 3): builds HGQ for the query
/// column, quick-browses co-located leaf cells, blocks with Algorithm 1, and
/// verifies through the staged VerifyPipeline (candidate generation ->
/// column-sharded tiled verification -> deterministic reduction; see
/// core/verify_pipeline.h). JoinQuery::intra_query_threads parallelizes
/// the verification of a single huge query column.
///
/// kTopK requests push the ranking into the verifier: a shared running
/// k-th-best bound (TopKBound) feeds back into every verification shard as
/// a dynamic early-exit threshold, so columns that provably cannot enter
/// the top-k are abandoned mid-verification instead of exact-verified.
/// Deadline/cancellation checkpoints run before blocking, before the
/// verification tiles, and inside every shard's column loop.
class PexesoSearcher : public JoinSearchEngine {
 public:
  /// `index` is borrowed and must outlive the searcher.
  explicit PexesoSearcher(const PexesoIndex* index) : index_(index) {}

  const char* name() const override { return "pexeso"; }

  Status Execute(const JoinQuery& query, ResultSink* sink,
                 SearchStats* stats) const override;

 private:
  const PexesoIndex* index_;
};

}  // namespace pexeso

#endif  // PEXESO_CORE_SEARCHER_H_
