#ifndef PEXESO_CORE_SEARCHER_H_
#define PEXESO_CORE_SEARCHER_H_

#include <cstdint>
#include <vector>

#include "core/ablation.h"
#include "core/blocker.h"
#include "core/join_result.h"
#include "core/pexeso_index.h"
#include "core/thresholds.h"
#include "vec/search_stats.h"
#include "vec/vector_store.h"

namespace pexeso {

/// \brief Per-search options.
struct SearchOptions {
  SearchThresholds thresholds;
  AblationConfig ablation;
  /// When true, each returned column carries the record-level mapping
  /// (query index -> one matching target vector). Costs a post-pass.
  bool collect_mappings = false;
  /// When true, joinable columns keep verifying to report the exact
  /// joinability instead of stopping at T (disables the joinable-skip).
  bool exact_joinability = false;
};

/// \brief The online side of PEXESO (Algorithm 3): builds HGQ for the query
/// column, quick-browses co-located leaf cells, blocks with Algorithm 1, and
/// verifies with Algorithm 2 over the inverted index.
class PexesoSearcher {
 public:
  /// `index` is borrowed and must outlive the searcher.
  explicit PexesoSearcher(const PexesoIndex* index) : index_(index) {}

  /// Finds all repository columns joinable with the query column. `query`
  /// holds |Q| unit-normalized vectors of the index's dimensionality.
  /// `stats` may be null.
  std::vector<JoinableColumn> Search(const VectorStore& query,
                                     const SearchOptions& options,
                                     SearchStats* stats) const;

 private:
  struct Context;

  void Verify(Context* ctx) const;
  void CollectMappings(Context* ctx, std::vector<JoinableColumn>* out) const;

  const PexesoIndex* index_;
};

}  // namespace pexeso

#endif  // PEXESO_CORE_SEARCHER_H_
