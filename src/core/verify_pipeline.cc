#include "core/verify_pipeline.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <exception>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "invindex/inverted_index.h"
#include "vec/kernels.h"
#include "vec/quant.h"

namespace pexeso {
namespace {

/// Rows per many-to-many tile: matches the 4-row blocking of the kernel
/// tiers (two blocks per tile) while keeping the packed query copy tiny.
constexpr size_t kTileRows = 8;

/// Candidate vectors per tile: bounds the wasted work when a row's match
/// sits early in a huge candidate list (rows that match in one vec-tile
/// drop out before the next), and keeps the tile output cache-resident.
constexpr size_t kTileVecs = 256;

/// Per-column verification states, identical to the serial scan's.
enum : uint8_t { kActive = 0, kJoinable = 1, kDead = 2 };

/// Byte value of QuantVerdict::kMaybe as stored in TileScratch::qclass.
constexpr uint8_t kQuantMaybe = static_cast<uint8_t>(QuantVerdict::kMaybe);

/// True when `b` repeats `a`'s exact range list (and is a real candidate
/// pair, not a cell-matched one): such consecutive pairs of one column form
/// one many-to-many tile group sharing a single gather.
bool SameRanges(const CandidateSet& cands, const CandidateBlock& a,
                const CandidateBlock& b) {
  if (b.cell_matched || a.range_count != b.range_count) return false;
  const VecIdRange* ra = cands.ranges.data() + a.range_begin;
  const VecIdRange* rb = cands.ranges.data() + b.range_begin;
  for (uint32_t i = 0; i < a.range_count; ++i) {
    if (ra[i].begin != rb[i].begin || ra[i].count != rb[i].count) return false;
  }
  return true;
}

}  // namespace

/// Reused buffers of one verification shard (or one mapping sweep): gather
/// targets, lemma masks, packed tiles. Everything is cleared per group, so
/// allocations amortize across the whole shard.
struct VerifyPipeline::TileScratch {
  std::vector<VecId> ids;          ///< gathered candidate vector ids
  std::vector<uint8_t> mask;       ///< rows x nv Lemma-1 survivor mask
  std::vector<uint8_t> union_mask; ///< per-candidate any-row-survives
  std::vector<uint32_t> uni;       ///< union survivor indices (ascending)
  std::vector<float> base;         ///< packed candidate rows of the union
  std::vector<float> base_norms;   ///< their cached norms (cosine)
  std::vector<uint32_t> rows;      ///< unresolved row indices (ascending)
  std::vector<uint32_t> next_rows;
  std::vector<uint32_t> tile_rows; ///< rows participating in one vec-tile
  std::vector<float> qrows;        ///< packed query rows of one tile
  std::vector<double> qnorms;      ///< their norms (cosine)
  std::vector<double> cmp;         ///< tile output (comparison space)
  std::vector<uint8_t> matched;    ///< per-run pair outcomes
  std::vector<uint32_t> first_match;  ///< per-query first match (mappings)

  // Quantized pre-filter tier (int8 tiles ahead of the exact float tiles).
  std::vector<int8_t> qcodes;    ///< packed query codes of one row-block
  std::vector<double> qeps;      ///< their quantization error norms
  std::vector<int8_t> cbase;     ///< gathered candidate code rows (vec-tile)
  std::vector<double> cerr;      ///< their stored error norms
  std::vector<int32_t> qsum;     ///< quant tile output (integer sums)
  std::vector<uint8_t> qclass;   ///< per-slot verdicts of one row-block
  std::vector<uint32_t> need;    ///< maybe columns needing exact re-check
  std::vector<uint32_t> need_pos;  ///< tile column -> index into `need`
};

void VerifyPipeline::GenerateCandidates(const BlockResult& blocks,
                                        uint32_t num_q, CandidateSet* out,
                                        SearchStats* stats) const {
  const InvertedIndex& inv = index_->inverted_index();
  const size_t ncols = index_->catalog().num_columns();
  out->blocks.clear();
  out->ranges.clear();
  out->block_begin.assign(ncols + 1, 0);
  out->weight.assign(ncols, 0);
  out->total_weight = 0;
  if (num_q == 0) return;

  struct Cursor {
    std::span<const InvertedIndex::Posting> postings;
    size_t pos = 0;
    bool is_match = false;
  };
  // Emission-order staging; the CSR scatter below regroups by column.
  struct TmpBlock {
    ColumnId column;
    uint32_t query;
    uint32_t range_begin;
    uint32_t range_count;
    uint8_t cell_matched;
  };
  std::vector<Cursor> cursors;
  std::vector<TmpBlock> tmp;
  std::vector<VecIdRange> tmp_ranges;
  using HeapEntry = std::pair<ColumnId, uint32_t>;  // (current column, cursor)
  std::vector<HeapEntry> heap;
  std::vector<uint32_t> active;  // cursors positioned on the current column

  for (uint32_t q = 0; q < num_q; ++q) {
    cursors.clear();
    for (uint32_t cell : blocks.match_cells[q]) {
      auto span = inv.PostingsOf(cell);
      if (!span.empty()) cursors.push_back(Cursor{span, 0, true});
    }
    for (uint32_t cell : blocks.cand_cells[q]) {
      auto span = inv.PostingsOf(cell);
      if (!span.empty()) cursors.push_back(Cursor{span, 0, false});
    }
    if (cursors.empty()) continue;
    // Bulk O(k) heap construction per query record (the old loop pushed
    // entries one by one after an element-wise clear: O(k log k)).
    heap.clear();
    for (uint32_t c = 0; c < cursors.size(); ++c) {
      heap.emplace_back(cursors[c].postings[0].column, c);
    }
    std::make_heap(heap.begin(), heap.end(), std::greater<>{});
    // DaaT: emit the (q, column) pairs in increasing column-id order so each
    // pair appears exactly once even when a column spans many cells.
    while (!heap.empty()) {
      const ColumnId col = heap.front().first;
      active.clear();
      while (!heap.empty() && heap.front().first == col) {
        std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
        active.push_back(heap.back().second);
        heap.pop_back();
      }
      if (index_->IsDeleted(col)) {
        // Tombstoned postings stay in place until Compact(); emitting
        // blocks for them would skew the shard weights toward columns the
        // verifier is only going to skip.
        for (uint32_t c : active) {
          if (++cursors[c].pos < cursors[c].postings.size()) {
            heap.emplace_back(cursors[c].postings[cursors[c].pos].column, c);
            std::push_heap(heap.begin(), heap.end(), std::greater<>{});
          }
        }
        continue;
      }
      bool cell_matched = false;
      for (uint32_t c : active) {
        if (cursors[c].is_match) {
          // Lemma 5/6 guaranteed every vector in this cell matches q, and
          // the column has at least one vector here: no ranges needed.
          cell_matched = true;
          break;
        }
      }
      const uint32_t rb = static_cast<uint32_t>(tmp_ranges.size());
      uint32_t rc = 0;
      if (!cell_matched) {
        for (uint32_t c : active) {
          const auto& p = cursors[c].postings[cursors[c].pos];
          if (p.vec_count > 0) {
            tmp_ranges.push_back(VecIdRange{p.vec_begin, p.vec_count});
            ++rc;
          }
        }
      }
      tmp.push_back(
          TmpBlock{col, q, rb, rc, static_cast<uint8_t>(cell_matched)});
      for (uint32_t c : active) {
        if (++cursors[c].pos < cursors[c].postings.size()) {
          heap.emplace_back(cursors[c].postings[cursors[c].pos].column, c);
          std::push_heap(heap.begin(), heap.end(), std::greater<>{});
        }
      }
    }
  }
  stats->candidate_blocks += tmp.size();

  // CSR scatter by column. Emission order is ascending q (outer loop) with
  // each column at most once per q, so every column's slice lands in
  // ascending query order — the order the serial state machine requires.
  for (const TmpBlock& b : tmp) ++out->block_begin[b.column + 1];
  for (size_t c = 1; c <= ncols; ++c) {
    out->block_begin[c] += out->block_begin[c - 1];
  }
  std::vector<uint32_t> range_begin(ncols + 1, 0);
  for (const TmpBlock& b : tmp) range_begin[b.column + 1] += b.range_count;
  for (size_t c = 1; c <= ncols; ++c) range_begin[c] += range_begin[c - 1];

  out->blocks.resize(tmp.size());
  out->ranges.resize(tmp_ranges.size());
  std::vector<uint32_t> next_block(out->block_begin.begin(),
                                   out->block_begin.end() - 1);
  std::vector<uint32_t> next_range(range_begin.begin(), range_begin.end() - 1);
  for (const TmpBlock& b : tmp) {
    const uint32_t dst = next_block[b.column]++;
    const uint32_t rdst = next_range[b.column];
    next_range[b.column] += b.range_count;
    uint64_t w = b.cell_matched ? 1 : 0;
    for (uint32_t r = 0; r < b.range_count; ++r) {
      out->ranges[rdst + r] = tmp_ranges[b.range_begin + r];
      w += tmp_ranges[b.range_begin + r].count;
    }
    out->blocks[dst] = CandidateBlock{b.query, rdst, b.range_count,
                                      b.cell_matched};
    out->weight[b.column] += w;
    out->total_weight += w;
  }
}

Status VerifyPipeline::VerifyCandidates(const CandidateSet& cands,
                                        const VectorStore& query,
                                        const std::vector<double>& mapped_q,
                                        const JoinQuery& jq, TopKBound* topk,
                                        std::vector<uint32_t>* match_map,
                                        std::vector<uint8_t>* pruned,
                                        SearchStats* stats) const {
  const size_t ncols = index_->catalog().num_columns();
  PEXESO_CHECK(match_map->size() == ncols);
  PEXESO_CHECK((topk != nullptr) == (jq.mode == QueryMode::kTopK));
  // The bound and the pruned flags travel together: a shard abandoning a
  // column against the bound records it in `pruned` unconditionally.
  PEXESO_CHECK((pruned != nullptr) == (topk != nullptr));
  PEXESO_CHECK(pruned == nullptr || pruned->size() == ncols);
  if (cands.empty()) return Status::OK();
  const RangePredicate pred(*index_->metric(), jq.thresholds.tau);
  const float* rnorms =
      pred.wants_norms() ? index_->catalog().store().EnsureNorms() : nullptr;
  const float* qnorms = pred.wants_norms() ? query.EnsureNorms() : nullptr;

  const size_t want = jq.intra_query_threads;
  if (want <= 1) {
    return VerifyShard(cands, 0, static_cast<ColumnId>(ncols), query, mapped_q,
                       jq, topk, qnorms, rnorms, match_map, pruned, stats);
  }

  // Contiguous weight-balanced shard boundaries: cut after a column once
  // the running weight reaches the shard's proportional share. Boundaries
  // depend only on the candidate set and `want`, never on scheduling.
  const size_t nshards = want;
  std::vector<ColumnId> bounds(nshards + 1, static_cast<ColumnId>(ncols));
  bounds[0] = 0;
  {
    uint64_t acc = 0;
    size_t s = 1;
    for (ColumnId c = 0; c < ncols && s < nshards; ++c) {
      acc += cands.weight[c];
      if (acc * nshards >= cands.total_weight * s) {
        bounds[s++] = c + 1;
      }
    }
  }

  // Stage 2: shards own disjoint match_map/pruned slices, private stats and
  // private status slots, so the fan-out is lock-free (the kTopK bound is
  // the one shared object, and it synchronizes internally).
  std::vector<SearchStats> shard_stats(nshards);
  std::vector<Status> shard_status(nshards);
  const auto run_shard = [&](size_t si) {
    shard_status[si] =
        VerifyShard(cands, bounds[si], bounds[si + 1], query, mapped_q, jq,
                    topk, qnorms, rnorms, match_map, pruned, &shard_stats[si]);
  };
  if (jq.intra_query_pool != nullptr) {
    // Shared pool: track completion per-search so concurrent searches can
    // interleave shards on the same workers. TaskGroup::Wait does NOT
    // rethrow task exceptions (they land in the pool's error slot, which
    // nothing on this path drains), so a throwing shard would silently
    // leave its match_map slice all-zero — capture and rethrow here
    // instead, matching the transient ParallelFor branch below.
    std::mutex err_mu;
    std::exception_ptr first_error;
    TaskGroup group(jq.intra_query_pool);
    for (size_t si = 0; si < nshards; ++si) {
      group.Submit([&run_shard, &err_mu, &first_error, si] {
        try {
          run_shard(si);
        } catch (...) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    group.Wait();
    if (first_error) std::rethrow_exception(first_error);
  } else {
    // Transient pool; worker count capped (shard count is not — extra
    // shards just queue, keeping the shard layout a pure function of the
    // options so stats stay deterministic).
    ThreadPool pool(std::min<size_t>(nshards, 64));
    pool.ParallelFor(nshards, run_shard);
  }

  // Stage 3: deterministic reduction — shard stats merge in shard
  // (= ascending column) order, and the first interrupted shard (in the
  // same order) decides the returned status.
  for (const SearchStats& s : shard_stats) *stats += s;
  for (const Status& st : shard_status) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status VerifyPipeline::VerifyShard(const CandidateSet& cands, ColumnId col_lo,
                                   ColumnId col_hi, const VectorStore& query,
                                   const std::vector<double>& mapped_q,
                                   const JoinQuery& jq, TopKBound* topk,
                                   const float* query_norms,
                                   const float* repo_norms,
                                   std::vector<uint32_t>* match_map,
                                   std::vector<uint8_t>* pruned,
                                   SearchStats* stats) const {
  const uint32_t num_q = static_cast<uint32_t>(query.size());
  const uint32_t t_abs = jq.EffectiveT();
  const bool exact = jq.exact_counts();
  const bool use_l7 = jq.ablation.use_lemma7;
  TileScratch scratch;
  uint64_t shard_blocks = 0;
  Status live = Status::OK();

  // kTopK: verify this shard's columns in descending upper-bound order
  // (candidate-block count = the column's achievable match count), ties by
  // ascending id, so likely winners fill the k-th-best bound first and the
  // strict-beat prune below fires sooner for the rest. Pruning is
  // order-insensitive (a pruned column is outside the top-k under any
  // order), so results are identical to the ascending-id scan; only
  // columns_pruned_topk / distance counters improve.
  const bool by_ub = topk != nullptr && jq.ablation.topk_order_by_ub;
  std::vector<ColumnId> order;
  if (by_ub) {
    order.reserve(col_hi - col_lo);
    for (ColumnId col = col_lo; col < col_hi; ++col) {
      if (cands.block_begin[col + 1] > cands.block_begin[col]) {
        order.push_back(col);
      }
    }
    std::sort(order.begin(), order.end(), [&](ColumnId a, ColumnId b) {
      const size_t ua = cands.block_begin[a + 1] - cands.block_begin[a];
      const size_t ub = cands.block_begin[b + 1] - cands.block_begin[b];
      if (ua != ub) return ua > ub;
      return a < b;
    });
  }
  const size_t iterations = by_ub ? order.size() : (col_hi - col_lo);

  for (size_t oi = 0; oi < iterations; ++oi) {
    const ColumnId col =
        by_ub ? order[oi] : static_cast<ColumnId>(col_lo + oi);
    // Deadline/cancellation checkpoint: a tripped shard abandons the rest
    // of its column range before dispatching any further tiles.
    live = jq.CheckLive();
    if (!live.ok()) {
      ++stats->deadline_expired;
      break;
    }
    const size_t bb = cands.block_begin[col];
    const size_t be = cands.block_begin[col + 1];
    if (bb == be) continue;
    shard_blocks += be - bb;
    if (index_->IsDeleted(col)) continue;

    uint32_t match = 0;
    uint32_t mismatch = 0;
    uint8_t state = kActive;
    bool abandoned = false;
    size_t i = bb;
    while (i < be) {
      if (state == kDead || (state == kJoinable && !exact)) break;
      // Batch size limited so no skip-triggering transition can occur
      // before the batch's last pair (see the class comment): the serial
      // scan and the tiled batch then evaluate exactly the same pairs.
      size_t k = be - i;
      if (topk != nullptr) {
        // kTopK pushdown: each remaining pair is a distinct query record,
        // so match + (be - i) bounds the column's achievable count. Once
        // that can no longer STRICTLY beat the running k-th-best bound the
        // column is out (a tie loses on final rank or leaves the bound
        // unchanged), and every further tile would be wasted work. The
        // bound is re-read per batch, so concurrent shards feed each other.
        const uint32_t bound = topk->bound();
        const uint64_t max_possible = match + (be - i);
        if (max_possible < bound) {
          abandoned = true;
          break;
        }
        // Each mismatch lowers max_possible by one; cap the batch so the
        // prune above re-fires no later than one batch after it could.
        k = std::min<uint64_t>(k, max_possible - bound + 1);
      }
      if (!exact) k = std::min<size_t>(k, t_abs - match);
      if (use_l7) {
        // A kill can only fire once mismatch exceeds num_q - t_abs; with
        // t_abs > num_q (unreachable threshold) the very first mismatch
        // kills, so the headroom clamps to zero and pairs go one at a time.
        const uint32_t headroom =
            num_q - mismatch >= t_abs ? num_q - mismatch - t_abs : 0;
        k = std::min<size_t>(k, static_cast<size_t>(headroom) + 1);
      }
      PEXESO_DCHECK(k >= 1);
      scratch.matched.assign(k, 0);
      EvaluateRun(cands, col, i, k, query, mapped_q, jq, query_norms,
                  repo_norms, &scratch, scratch.matched.data(), stats);
      // Replay the serial outcome application verbatim.
      for (size_t j = 0; j < k; ++j) {
        if (scratch.matched[j]) {
          ++match;
          if (match >= t_abs && state == kActive) {
            state = kJoinable;
            ++stats->early_joinable;
            PEXESO_DCHECK(exact || j + 1 == k);
          }
        } else {
          ++mismatch;
          if (use_l7 && state == kActive && num_q - mismatch < t_abs) {
            state = kDead;
            ++stats->lemma7_kills;
            PEXESO_DCHECK(j + 1 == k);
          }
        }
      }
      i += k;
    }
    if (abandoned) {
      ++stats->columns_pruned_topk;
      (*pruned)[col] = 1;
    } else if (topk != nullptr && match >= t_abs) {
      topk->Offer(match);
    }
    (*match_map)[col] = match;
  }
  stats->shard_max_blocks = std::max(stats->shard_max_blocks, shard_blocks);
  return live;
}

void VerifyPipeline::EvaluateRun(const CandidateSet& cands, ColumnId col,
                                 size_t i, size_t k, const VectorStore& query,
                                 const std::vector<double>& mapped_q,
                                 const JoinQuery& jq,
                                 const float* query_norms,
                                 const float* repo_norms, TileScratch* scratch,
                                 uint8_t* matched, SearchStats* stats) const {
  size_t j = 0;
  while (j < k) {
    const CandidateBlock& b = cands.blocks[i + j];
    if (b.cell_matched) {
      matched[j] = 1;
      ++j;
      continue;
    }
    if (b.range_count == 0) {
      matched[j] = 0;
      ++j;
      continue;
    }
    // Consecutive pairs repeating the same range list (a column confined to
    // few cells probed by many query records) share one gather and become
    // the rows of one many-to-many tile group.
    size_t j2 = j + 1;
    while (j2 < k && SameRanges(cands, b, cands.blocks[i + j2])) ++j2;
    EvaluateGroup(cands, col, cands.blocks.data() + i + j, j2 - j, query,
                  mapped_q, jq, query_norms, repo_norms, scratch, matched + j,
                  stats);
    j = j2;
  }
}

void VerifyPipeline::EvaluateGroup(const CandidateSet& cands, ColumnId col,
                                   const CandidateBlock* group, size_t m,
                                   const VectorStore& query,
                                   const std::vector<double>& mapped_q,
                                   const JoinQuery& jq,
                                   const float* query_norms,
                                   const float* repo_norms,
                                   TileScratch* scratch, uint8_t* matched,
                                   SearchStats* stats) const {
  const VectorStore& rstore = index_->catalog().store();
  const uint32_t dim = rstore.dim();
  const uint32_t np = index_->pivots().num_pivots();
  const double tau = jq.thresholds.tau;
  const bool use_l1 = jq.ablation.use_lemma1;
  const bool use_l2 = jq.ablation.use_lemma2;
  const VecId* vec_ids = index_->inverted_index().vec_ids_data();

  // Gather the shared candidate list once for the whole group.
  auto& ids = scratch->ids;
  ids.clear();
  const VecIdRange* ranges = cands.ranges.data() + group[0].range_begin;
  for (uint32_t r = 0; r < group[0].range_count; ++r) {
    for (uint32_t t = 0; t < ranges[r].count; ++t) {
      ids.push_back(vec_ids[ranges[r].begin + t]);
    }
  }
  const size_t nv = ids.size();
  if (nv == 0) return;  // matched[] pre-zeroed by the caller

  // Pivot-space pass per row: Lemma-1 survivor mask, then Lemma-2 pivot
  // matching over the survivors. Rows Lemma-2 resolves never reach the
  // distance stage.
  auto& mask = scratch->mask;
  mask.assign(m * nv, 1);
  auto& rows = scratch->rows;
  rows.clear();
  for (size_t r = 0; r < m; ++r) {
    const double* mq =
        mapped_q.data() + static_cast<size_t>(group[r].query) * np;
    uint8_t* mrow = mask.data() + r * nv;
    size_t survivors = nv;
    if (use_l1) {
      for (size_t c = 0; c < nv; ++c) {
        const double* mx = index_->MappedVec(ids[c]);
        for (uint32_t p = 0; p < np; ++p) {
          const double diff = mq[p] - mx[p];
          if (diff > tau || diff < -tau) {
            mrow[c] = 0;
            --survivors;
            ++stats->lemma1_filtered;
            break;
          }
        }
      }
    }
    if (survivors == 0) continue;  // Lemma 1 cleared the row: mismatched
    if (use_l2) {
      bool row_matched = false;
      for (size_t c = 0; c < nv && !row_matched; ++c) {
        if (!mrow[c]) continue;
        const double* mx = index_->MappedVec(ids[c]);
        for (uint32_t p = 0; p < np; ++p) {
          if (mq[p] + mx[p] <= tau) {
            row_matched = true;
            break;
          }
        }
      }
      if (row_matched) {
        ++stats->lemma2_matched;
        matched[r] = 1;
        continue;
      }
    }
    rows.push_back(static_cast<uint32_t>(r));
  }
  if (rows.empty()) return;

  const RangePredicate pred(*index_->metric(), tau);
  const KernelSet* ks = pred.kernels();
  if (ks == nullptr) {
    // Custom metric without kernels: per-pair fallback, serial semantics.
    for (uint32_t r : rows) {
      const float* qv = query.View(group[r].query);
      const uint8_t* mrow = mask.data() + static_cast<size_t>(r) * nv;
      for (size_t c = 0; c < nv; ++c) {
        if (!mrow[c]) continue;
        ++stats->distance_computations;
        if (pred.Match(qv, rstore.View(ids[c]), dim)) {
          matched[r] = 1;
          break;
        }
      }
    }
    return;
  }

  // Union of the unresolved rows' survivor sets: the tile evaluates every
  // union slot for every row (rows consult only their own mask afterwards),
  // trading a few wasted slots for dense many-to-many kernel calls.
  auto& uni = scratch->uni;
  uni.clear();
  if (use_l1) {
    auto& um = scratch->union_mask;
    um.assign(nv, 0);
    for (uint32_t r : rows) {
      const uint8_t* mrow = mask.data() + static_cast<size_t>(r) * nv;
      for (size_t c = 0; c < nv; ++c) um[c] |= mrow[c];
    }
    for (size_t c = 0; c < nv; ++c) {
      if (um[c]) uni.push_back(static_cast<uint32_t>(c));
    }
  } else {
    uni.resize(nv);
    for (size_t c = 0; c < nv; ++c) uni[c] = static_cast<uint32_t>(c);
  }
  if (uni.empty()) return;  // Lemma 1 cleared every candidate of every row

  const size_t un = uni.size();
  const bool norms = pred.wants_norms();
  const double bound = ks->CmpBound(tau);
  auto& live = rows;  // unresolved rows, ascending — shrinks per vec-tile
  auto& next_live = scratch->next_rows;

  const QuantStore& quant = index_->quant();
  if (jq.ablation.use_quant_prefilter && quant.CompatibleWith(ks->kind)) {
    // Quantized pre-filter tier: an int8 tile classifies every slot as a
    // provable match, a provable miss, or too-close-to-call; only the
    // maybe columns reach the exact float tile. That tile keeps ALL rlen
    // rows of the block — a slot's float kernel value depends only on its
    // row's position category within the block, never on which columns sit
    // beside it — so every float comparison performed is bit-identical to
    // the quant-off run and results cannot drift (the per-block counter
    // invariant distance_computations + quant_tile_skips == rows x slots
    // holds exactly; snapshot_test.cc asserts both).
    const int8_t* codes = quant.codes();
    const float* errs = quant.err();
    for (size_t v0 = 0; v0 < un && !live.empty(); v0 += kTileVecs) {
      const size_t vlen = std::min<size_t>(kTileVecs, un - v0);
      auto& cbase = scratch->cbase;
      cbase.resize(vlen * dim);
      auto& cerr = scratch->cerr;
      cerr.resize(vlen);
      for (size_t c = 0; c < vlen; ++c) {
        const VecId id = ids[uni[v0 + c]];
        std::memcpy(cbase.data() + c * dim,
                    codes + static_cast<size_t>(id) * dim, dim);
        cerr[c] = errs[id];
      }
      next_live.clear();
      for (size_t r0 = 0; r0 < live.size(); r0 += kTileRows) {
        const size_t rlen = std::min<size_t>(kTileRows, live.size() - r0);
        auto& qcodes = scratch->qcodes;
        qcodes.resize(rlen * dim);
        auto& qeps = scratch->qeps;
        qeps.resize(rlen);
        for (size_t t = 0; t < rlen; ++t) {
          const uint32_t q = group[live[r0 + t]].query;
          qeps[t] =
              quant.QuantizeQuery(query.View(q), col, qcodes.data() + t * dim);
        }
        auto& qsum = scratch->qsum;
        qsum.resize(rlen * vlen);
        ks->QuantTile(qcodes.data(), rlen, cbase.data(), vlen, dim,
                      qsum.data());
        // Classify each row's masked slots in ascending order; the first
        // provable match resolves the row outright and the rest of its
        // slots are never named.
        auto& qclass = scratch->qclass;
        qclass.resize(rlen * vlen);
        std::array<uint8_t, kTileRows> defhit{};
        for (size_t t = 0; t < rlen; ++t) {
          const uint32_t r = live[r0 + t];
          const uint8_t* mrow = mask.data() + static_cast<size_t>(r) * nv;
          uint8_t* crow = qclass.data() + t * vlen;
          for (size_t c = 0; c < vlen; ++c) {
            if (!mrow[uni[v0 + c]]) continue;
            const QuantVerdict v = quant.Classify(qsum[t * vlen + c], col,
                                                  qeps[t], cerr[c], tau);
            crow[c] = static_cast<uint8_t>(v);
            if (v == QuantVerdict::kMatch) {
              defhit[t] = 1;
              break;
            }
          }
        }
        // The unresolved rows' maybe slots (deduplicated) form the exact
        // tile's column set.
        auto& need = scratch->need;
        need.clear();
        auto& need_pos = scratch->need_pos;
        need_pos.assign(vlen, UINT32_MAX);
        for (size_t t = 0; t < rlen; ++t) {
          if (defhit[t]) continue;
          const uint32_t r = live[r0 + t];
          const uint8_t* mrow = mask.data() + static_cast<size_t>(r) * nv;
          const uint8_t* crow = qclass.data() + t * vlen;
          for (size_t c = 0; c < vlen; ++c) {
            if (!mrow[uni[v0 + c]]) continue;
            if (crow[c] == kQuantMaybe && need_pos[c] == UINT32_MAX) {
              need_pos[c] = static_cast<uint32_t>(need.size());
              need.push_back(static_cast<uint32_t>(c));
            }
          }
        }
        const size_t ns = need.size();
        if (ns > 0) {
          auto& qrows = scratch->qrows;
          qrows.resize(rlen * dim);
          auto& qn = scratch->qnorms;
          qn.resize(rlen);
          for (size_t t = 0; t < rlen; ++t) {
            const uint32_t q = group[live[r0 + t]].query;
            std::memcpy(qrows.data() + t * dim, query.View(q),
                        dim * sizeof(float));
            qn[t] = query_norms != nullptr
                        ? static_cast<double>(query_norms[q])
                        : 1.0;
          }
          auto& base = scratch->base;
          base.resize(ns * dim);
          for (size_t c = 0; c < ns; ++c) {
            std::memcpy(base.data() + c * dim,
                        rstore.View(ids[uni[v0 + need[c]]]),
                        dim * sizeof(float));
          }
          auto& bnorms = scratch->base_norms;
          if (norms) {
            bnorms.resize(ns);
            for (size_t c = 0; c < ns; ++c) {
              bnorms[c] = repo_norms[ids[uni[v0 + need[c]]]];
            }
          }
          auto& cmp = scratch->cmp;
          cmp.resize(rlen * ns);
          ks->CmpTileNormed(qrows.data(), qn.data(), base.data(),
                            norms ? bnorms.data() : nullptr, rlen, ns, dim,
                            cmp.data());
          ++stats->tiles_evaluated;
          stats->distance_computations += static_cast<uint64_t>(rlen) * ns;
          stats->sqrt_free_comparisons +=
              static_cast<uint64_t>(rlen) * ns * pred.sqrt_saved();
          stats->quant_tile_skips +=
              static_cast<uint64_t>(rlen) * (vlen - ns);
          for (size_t t = 0; t < rlen; ++t) {
            const uint32_t r = live[r0 + t];
            if (defhit[t]) {
              matched[r] = 1;
              continue;
            }
            const uint8_t* mrow = mask.data() + static_cast<size_t>(r) * nv;
            const uint8_t* crow = qclass.data() + t * vlen;
            const double* drow = cmp.data() + t * ns;
            bool hit = false;
            for (size_t c = 0; c < vlen; ++c) {
              if (!mrow[uni[v0 + c]]) continue;
              if (crow[c] != kQuantMaybe) continue;
              if (drow[need_pos[c]] <= bound) {
                hit = true;
                break;
              }
            }
            if (hit) {
              matched[r] = 1;
            } else {
              next_live.push_back(r);
            }
          }
        } else {
          stats->quant_tile_skips += static_cast<uint64_t>(rlen) * vlen;
          for (size_t t = 0; t < rlen; ++t) {
            const uint32_t r = live[r0 + t];
            if (defhit[t]) {
              matched[r] = 1;
            } else {
              next_live.push_back(r);
            }
          }
        }
      }
      std::swap(live, next_live);
    }
    return;
  }

  for (size_t v0 = 0; v0 < un && !live.empty(); v0 += kTileVecs) {
    const size_t vlen = std::min<size_t>(kTileVecs, un - v0);
    // Pack only this vec-tile's union rows (candidate ids are arbitrary,
    // so rows must be gathered out of the store either way) and their
    // cached norms — gathering lazily per tile means a group that resolves
    // in its first tile never copies the rest of a huge union.
    auto& base = scratch->base;
    base.resize(vlen * dim);
    for (size_t c = 0; c < vlen; ++c) {
      std::memcpy(base.data() + c * dim, rstore.View(ids[uni[v0 + c]]),
                  dim * sizeof(float));
    }
    auto& bnorms = scratch->base_norms;
    if (norms) {
      bnorms.resize(vlen);
      for (size_t c = 0; c < vlen; ++c) {
        bnorms[c] = repo_norms[ids[uni[v0 + c]]];
      }
    }
    next_live.clear();
    for (size_t r0 = 0; r0 < live.size(); r0 += kTileRows) {
      const size_t rlen = std::min<size_t>(kTileRows, live.size() - r0);
      auto& qrows = scratch->qrows;
      qrows.resize(rlen * dim);
      auto& qn = scratch->qnorms;
      qn.resize(rlen);
      for (size_t t = 0; t < rlen; ++t) {
        const uint32_t q = group[live[r0 + t]].query;
        std::memcpy(qrows.data() + t * dim, query.View(q),
                    dim * sizeof(float));
        qn[t] = query_norms != nullptr ? static_cast<double>(query_norms[q])
                                       : 1.0;
      }
      auto& cmp = scratch->cmp;
      cmp.resize(rlen * vlen);
      ks->CmpTileNormed(qrows.data(), qn.data(), base.data(),
                        norms ? bnorms.data() : nullptr, rlen, vlen, dim,
                        cmp.data());
      ++stats->tiles_evaluated;
      stats->distance_computations += static_cast<uint64_t>(rlen) * vlen;
      stats->sqrt_free_comparisons +=
          static_cast<uint64_t>(rlen) * vlen * pred.sqrt_saved();
      for (size_t t = 0; t < rlen; ++t) {
        const uint32_t r = live[r0 + t];
        const uint8_t* mrow = mask.data() + static_cast<size_t>(r) * nv;
        const double* crow = cmp.data() + t * vlen;
        bool hit = false;
        for (size_t c = 0; c < vlen; ++c) {
          if (!mrow[uni[v0 + c]]) continue;
          if (crow[c] <= bound) {
            hit = true;
            break;
          }
        }
        if (hit) {
          matched[r] = 1;
        } else {
          next_live.push_back(r);
        }
      }
    }
    std::swap(live, next_live);
  }
}

Status VerifyPipeline::CollectMappings(const VectorStore& query,
                                       const std::vector<double>& mapped_q,
                                       const JoinQuery& jq,
                                       std::vector<JoinableColumn>* out,
                                       SearchStats* stats) const {
  if (out->empty() || query.size() == 0) return Status::OK();
  const RangePredicate pred(*index_->metric(), jq.thresholds.tau);
  const float* rnorms =
      pred.wants_norms() ? index_->catalog().store().EnsureNorms() : nullptr;
  const float* qnorms = pred.wants_norms() ? query.EnsureNorms() : nullptr;

  const size_t want = jq.intra_query_threads;
  if (want <= 1 || out->size() == 1) {
    TileScratch scratch;
    for (auto& jc : *out) {
      Status live = jq.CheckLive();
      if (!live.ok()) {
        ++stats->deadline_expired;
        return live;
      }
      MapColumn(&jc, query, mapped_q, jq, qnorms, rnorms, &scratch, stats);
    }
    return Status::OK();
  }
  // One task per result column (columns are the natural independent unit);
  // per-column stats slots merge in column order, so counters are identical
  // to the serial sweep at any thread count. Each slot also records its
  // column's deadline checkpoint outcome; the first tripped column (in
  // column order) decides the returned status.
  std::vector<SearchStats> col_stats(out->size());
  std::vector<Status> col_status(out->size());
  const auto map_one = [&](size_t i) {
    col_status[i] = jq.CheckLive();
    if (!col_status[i].ok()) {
      ++col_stats[i].deadline_expired;
      return;
    }
    TileScratch scratch;
    MapColumn(&(*out)[i], query, mapped_q, jq, qnorms, rnorms, &scratch,
              &col_stats[i]);
  };
  if (jq.intra_query_pool != nullptr) {
    // Same rethrow discipline as VerifyCandidates: TaskGroup::Wait alone
    // would swallow a throwing column sweep.
    std::mutex err_mu;
    std::exception_ptr first_error;
    TaskGroup group(jq.intra_query_pool);
    for (size_t i = 0; i < out->size(); ++i) {
      group.Submit([&map_one, &err_mu, &first_error, i] {
        try {
          map_one(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    group.Wait();
    if (first_error) std::rethrow_exception(first_error);
  } else {
    ThreadPool pool(std::min({want, out->size(), size_t{64}}));
    pool.ParallelFor(out->size(), map_one);
  }
  for (const SearchStats& s : col_stats) *stats += s;
  for (const Status& st : col_status) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

void VerifyPipeline::MapColumn(JoinableColumn* jc, const VectorStore& query,
                               const std::vector<double>& mapped_q,
                               const JoinQuery& jq,
                               const float* query_norms,
                               const float* repo_norms, TileScratch* scratch,
                               SearchStats* stats) const {
  const VectorStore& rstore = index_->catalog().store();
  const uint32_t dim = rstore.dim();
  const uint32_t np = index_->pivots().num_pivots();
  const double tau = jq.thresholds.tau;
  const uint32_t num_q = static_cast<uint32_t>(query.size());
  const ColumnMeta& meta = index_->catalog().column(jc->column);
  const uint32_t nv = meta.count;
  const RangePredicate pred(*index_->metric(), tau);
  const KernelSet* ks = pred.kernels();
  const QuantStore& quant = index_->quant();
  const bool use_quant = ks != nullptr && jq.ablation.use_quant_prefilter &&
                         quant.CompatibleWith(ks->kind);

  jc->mapping.clear();
  auto& first_match = scratch->first_match;
  first_match.assign(num_q, UINT32_MAX);
  auto& live = scratch->rows;
  live.resize(num_q);
  for (uint32_t q = 0; q < num_q; ++q) live[q] = q;
  auto& next_live = scratch->next_rows;

  // The column's vectors are one contiguous VecId run, so the mapping sweep
  // is a pure many-to-many tile over (query records x column rows) — no
  // gather at all unless Lemma 1 thins a tile below full occupancy.
  for (uint32_t v0 = 0; v0 < nv && !live.empty(); v0 += kTileVecs) {
    const size_t vlen = std::min<size_t>(kTileVecs, nv - v0);
    const float* tile_base = rstore.View(meta.first + v0);
    next_live.clear();

    // Lemma-1 survivor masks of the live rows over this vec-tile (applied
    // unconditionally, matching the serial mapping scan).
    auto& mask = scratch->mask;
    mask.assign(live.size() * vlen, 1);
    for (size_t t = 0; t < live.size(); ++t) {
      const double* mq =
          mapped_q.data() + static_cast<size_t>(live[t]) * np;
      uint8_t* mrow = mask.data() + t * vlen;
      for (size_t c = 0; c < vlen; ++c) {
        const double* mx = index_->MappedVec(meta.first + v0 + c);
        for (uint32_t p = 0; p < np; ++p) {
          const double diff = mq[p] - mx[p];
          if (diff > tau || diff < -tau) {
            mrow[c] = 0;
            ++stats->lemma1_filtered;
            break;
          }
        }
      }
    }

    if (ks == nullptr) {
      // Custom metric fallback: per-pair scan, first match wins.
      for (size_t t = 0; t < live.size(); ++t) {
        const uint32_t q = live[t];
        const float* qv = query.View(q);
        const uint8_t* mrow = mask.data() + t * vlen;
        bool hit = false;
        for (size_t c = 0; c < vlen && !hit; ++c) {
          if (!mrow[c]) continue;
          ++stats->distance_computations;
          if (pred.Match(qv, tile_base + c * dim, dim)) {
            first_match[q] = meta.first + v0 + static_cast<uint32_t>(c);
            hit = true;
          }
        }
        if (!hit) next_live.push_back(q);
      }
      std::swap(live, next_live);
      continue;
    }

    // Rows with at least one survivor in this tile do kernel work; fully
    // filtered rows skip it (the serial scan spent no distances on them
    // either) and simply stay live for the later tiles.
    auto& tile_rows = scratch->tile_rows;  // positions into `live`
    tile_rows.clear();
    for (size_t t = 0; t < live.size(); ++t) {
      const uint8_t* mrow = mask.data() + t * vlen;
      for (size_t c = 0; c < vlen; ++c) {
        if (mrow[c]) {
          tile_rows.push_back(static_cast<uint32_t>(t));
          break;
        }
      }
    }
    if (tile_rows.empty()) continue;  // nobody survives; rows stay live

    // Union of the participating rows' survivors within the tile; full
    // unions run straight over the store, thinned ones are compacted once.
    auto& uni = scratch->uni;
    uni.clear();
    {
      auto& um = scratch->union_mask;
      um.assign(vlen, 0);
      for (uint32_t t : tile_rows) {
        const uint8_t* mrow = mask.data() + static_cast<size_t>(t) * vlen;
        for (size_t c = 0; c < vlen; ++c) um[c] |= mrow[c];
      }
      for (size_t c = 0; c < vlen; ++c) {
        if (um[c]) uni.push_back(static_cast<uint32_t>(c));
      }
    }
    if (uni.empty()) continue;  // unreachable given tile_rows; defensive
    const size_t un = uni.size();
    const bool norms = pred.wants_norms();

    if (use_quant) {
      // Quantized pre-filter over this tile. Mappings must name the FIRST
      // matching vector, so each row records the position of its first
      // provable match (dm); only maybe slots strictly before it need the
      // exact float tile — everything past dm is decided by dm itself. As
      // in EvaluateGroup, the exact tile keeps all rlen rows so every float
      // value is bit-identical to the quant-off sweep.
      const double bound = ks->CmpBound(tau);
      const int8_t* codes = quant.codes();
      const float* errs = quant.err();
      // The column's code rows are contiguous: a full union views them in
      // place, a thinned one gathers once (mirroring the float compaction).
      const int8_t* ucodes =
          codes + static_cast<size_t>(meta.first + v0) * dim;
      auto& cerr = scratch->cerr;
      if (un < vlen) {
        auto& cbase = scratch->cbase;
        cbase.resize(un * dim);
        cerr.resize(un);
        for (size_t c = 0; c < un; ++c) {
          const size_t id = static_cast<size_t>(meta.first) + v0 + uni[c];
          std::memcpy(cbase.data() + c * dim, codes + id * dim, dim);
          cerr[c] = errs[id];
        }
        ucodes = cbase.data();
      } else {
        const float* e = errs + meta.first + v0;
        cerr.assign(e, e + un);
      }
      for (size_t r0 = 0; r0 < tile_rows.size(); r0 += kTileRows) {
        const size_t rlen =
            std::min<size_t>(kTileRows, tile_rows.size() - r0);
        auto& qcodes = scratch->qcodes;
        qcodes.resize(rlen * dim);
        auto& qeps = scratch->qeps;
        qeps.resize(rlen);
        for (size_t t = 0; t < rlen; ++t) {
          const uint32_t q = live[tile_rows[r0 + t]];
          qeps[t] = quant.QuantizeQuery(query.View(q), jc->column,
                                        qcodes.data() + t * dim);
        }
        auto& qsum = scratch->qsum;
        qsum.resize(rlen * un);
        ks->QuantTile(qcodes.data(), rlen, ucodes, un, dim, qsum.data());
        auto& qclass = scratch->qclass;
        qclass.resize(rlen * un);
        std::array<uint32_t, kTileRows> dm;
        dm.fill(UINT32_MAX);
        for (size_t t = 0; t < rlen; ++t) {
          const uint32_t lt = tile_rows[r0 + t];
          const uint8_t* mrow = mask.data() + static_cast<size_t>(lt) * vlen;
          uint8_t* crow = qclass.data() + t * un;
          for (size_t c = 0; c < un; ++c) {
            if (!mrow[uni[c]]) continue;
            const QuantVerdict v = quant.Classify(qsum[t * un + c],
                                                  jc->column, qeps[t],
                                                  cerr[c], tau);
            crow[c] = static_cast<uint8_t>(v);
            if (v == QuantVerdict::kMatch) {
              dm[t] = static_cast<uint32_t>(c);
              break;
            }
          }
        }
        auto& need = scratch->need;
        need.clear();
        auto& need_pos = scratch->need_pos;
        need_pos.assign(un, UINT32_MAX);
        for (size_t t = 0; t < rlen; ++t) {
          const uint32_t lt = tile_rows[r0 + t];
          const uint8_t* mrow = mask.data() + static_cast<size_t>(lt) * vlen;
          const uint8_t* crow = qclass.data() + t * un;
          for (size_t c = 0; c < un && c < dm[t]; ++c) {
            if (!mrow[uni[c]]) continue;
            if (crow[c] == kQuantMaybe && need_pos[c] == UINT32_MAX) {
              need_pos[c] = static_cast<uint32_t>(need.size());
              need.push_back(static_cast<uint32_t>(c));
            }
          }
        }
        const size_t ns = need.size();
        auto& cmp = scratch->cmp;
        if (ns > 0) {
          auto& qrows = scratch->qrows;
          qrows.resize(rlen * dim);
          auto& qn = scratch->qnorms;
          qn.resize(rlen);
          for (size_t t = 0; t < rlen; ++t) {
            const uint32_t q = live[tile_rows[r0 + t]];
            std::memcpy(qrows.data() + t * dim, query.View(q),
                        dim * sizeof(float));
            qn[t] = query_norms != nullptr
                        ? static_cast<double>(query_norms[q])
                        : 1.0;
          }
          auto& base = scratch->base;
          base.resize(ns * dim);
          for (size_t c = 0; c < ns; ++c) {
            std::memcpy(base.data() + c * dim,
                        tile_base + static_cast<size_t>(uni[need[c]]) * dim,
                        dim * sizeof(float));
          }
          auto& bnorms = scratch->base_norms;
          if (norms) {
            bnorms.resize(ns);
            for (size_t c = 0; c < ns; ++c) {
              bnorms[c] = repo_norms[meta.first + v0 + uni[need[c]]];
            }
          }
          cmp.resize(rlen * ns);
          ks->CmpTileNormed(qrows.data(), qn.data(), base.data(),
                            norms ? bnorms.data() : nullptr, rlen, ns, dim,
                            cmp.data());
          ++stats->tiles_evaluated;
          stats->distance_computations += static_cast<uint64_t>(rlen) * ns;
          stats->sqrt_free_comparisons +=
              static_cast<uint64_t>(rlen) * ns * pred.sqrt_saved();
          stats->quant_tile_skips += static_cast<uint64_t>(rlen) * (un - ns);
        } else {
          stats->quant_tile_skips += static_cast<uint64_t>(rlen) * un;
        }
        for (size_t t = 0; t < rlen; ++t) {
          const uint32_t lt = tile_rows[r0 + t];
          const uint32_t q = live[lt];
          const uint8_t* mrow = mask.data() + static_cast<size_t>(lt) * vlen;
          const uint8_t* crow = qclass.data() + t * un;
          const double* drow = ns > 0 ? cmp.data() + t * ns : nullptr;
          for (size_t c = 0; c < un; ++c) {
            if (c == dm[t]) {
              // Everything before dm was a provable miss or an exact-
              // checked maybe that failed, so dm is the first match.
              first_match[q] = meta.first + v0 + uni[c];
              break;
            }
            if (!mrow[uni[c]]) continue;
            if (crow[c] == kQuantMaybe && drow[need_pos[c]] <= bound) {
              first_match[q] = meta.first + v0 + uni[c];
              break;
            }
          }
        }
      }
      next_live.clear();
      for (uint32_t q : live) {
        if (first_match[q] == UINT32_MAX) next_live.push_back(q);
      }
      std::swap(live, next_live);
      continue;
    }

    const float* ubase = tile_base;
    const float* ubnorms =
        norms ? repo_norms + meta.first + v0 : nullptr;
    if (un < vlen) {
      auto& base = scratch->base;
      base.resize(un * dim);
      for (size_t c = 0; c < un; ++c) {
        std::memcpy(base.data() + c * dim, tile_base + uni[c] * dim,
                    dim * sizeof(float));
      }
      ubase = base.data();
      if (norms) {
        auto& bn = scratch->base_norms;
        bn.resize(un);
        for (size_t c = 0; c < un; ++c) {
          bn[c] = repo_norms[meta.first + v0 + uni[c]];
        }
        ubnorms = bn.data();
      }
    }

    const double bound = ks->CmpBound(tau);
    for (size_t r0 = 0; r0 < tile_rows.size(); r0 += kTileRows) {
      const size_t rlen = std::min<size_t>(kTileRows, tile_rows.size() - r0);
      auto& qrows = scratch->qrows;
      qrows.resize(rlen * dim);
      auto& qn = scratch->qnorms;
      qn.resize(rlen);
      for (size_t t = 0; t < rlen; ++t) {
        const uint32_t q = live[tile_rows[r0 + t]];
        std::memcpy(qrows.data() + t * dim, query.View(q),
                    dim * sizeof(float));
        qn[t] = query_norms != nullptr ? static_cast<double>(query_norms[q])
                                       : 1.0;
      }
      auto& cmp = scratch->cmp;
      cmp.resize(rlen * un);
      ks->CmpTileNormed(qrows.data(), qn.data(), ubase, ubnorms, rlen, un,
                        dim, cmp.data());
      ++stats->tiles_evaluated;
      stats->distance_computations += static_cast<uint64_t>(rlen) * un;
      stats->sqrt_free_comparisons +=
          static_cast<uint64_t>(rlen) * un * pred.sqrt_saved();
      for (size_t t = 0; t < rlen; ++t) {
        const uint32_t lt = tile_rows[r0 + t];
        const uint32_t q = live[lt];
        const uint8_t* mrow = mask.data() + static_cast<size_t>(lt) * vlen;
        const double* crow = cmp.data() + t * un;
        for (size_t c = 0; c < un; ++c) {
          if (!mrow[uni[c]]) continue;
          if (crow[c] <= bound) {
            // uni is ascending and vec-tiles scan forward, so this is the
            // column-global first match — the serial mapping's choice.
            first_match[q] = meta.first + v0 + uni[c];
            break;
          }
        }
      }
    }
    // One ordered pass keeps next_live ascending regardless of which rows
    // took part in this tile's kernel work.
    next_live.clear();
    for (uint32_t q : live) {
      if (first_match[q] == UINT32_MAX) next_live.push_back(q);
    }
    std::swap(live, next_live);
  }

  for (uint32_t q = 0; q < num_q; ++q) {
    if (first_match[q] != UINT32_MAX) {
      jc->mapping.push_back(RecordMatch{q, first_match[q]});
    }
  }
  // The mapping sweep resolves every query record exactly, so upgrade the
  // (possibly early-terminated) counters to the exact joinability.
  jc->match_count = static_cast<uint32_t>(jc->mapping.size());
  jc->joinability =
      static_cast<double>(jc->match_count) / static_cast<double>(num_q);
}

}  // namespace pexeso
