#include "core/batch_runner.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace pexeso {

BatchQueryRunner::BatchQueryRunner(const JoinSearchEngine* engine,
                                   BatchRunnerOptions options)
    : engine_(engine), partition_mode_(options.partition_mode) {
  PEXESO_CHECK(engine != nullptr);
  num_threads_ = options.num_threads;
  if (num_threads_ == 0) {
    num_threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

BatchResult BatchQueryRunner::Run(const std::vector<JoinQuery>& queries) const {
  BatchResult out;
  out.results.resize(queries.size());
  out.statuses.resize(queries.size());
  Stopwatch watch;
  // One stats scratch slot per query: workers never share a slot, and the
  // serial input-order merge below keeps the floating-point sums identical
  // at every thread count.
  std::vector<SearchStats> scratch(queries.size());

  // Intra-query composition: queries may ask for intra-query verification
  // shards (JoinQuery::intra_query_threads) without carrying a pool. The
  // runner then provisions ONE intra pool shared by every query (the
  // pipeline tracks its shards with a per-search TaskGroup) and shrinks its
  // own fan-out so batch-major workers times intra-query shards stays within
  // the requested thread budget instead of multiplying it.
  size_t max_intra = 0;
  for (const JoinQuery& jq : queries) {
    if (jq.intra_query_pool == nullptr) {
      max_intra = std::max(max_intra, jq.intra_query_threads);
    }
  }
  std::unique_ptr<ThreadPool> intra_pool;
  std::vector<JoinQuery> rewritten;
  size_t outer_threads = num_threads_;
  const std::vector<JoinQuery>* effective = &queries;
  if (max_intra > 1) {
    // The pool honors the runner's total budget (shard COUNTS stay at the
    // requested intra_query_threads — a pure function of the request — so
    // results and stats are unchanged; extra shards just queue).
    intra_pool = std::make_unique<ThreadPool>(
        std::min({max_intra, std::max<size_t>(1, num_threads_), size_t{256}}));
    outer_threads = std::max<size_t>(1, num_threads_ / max_intra);
    rewritten = queries;
    for (JoinQuery& jq : rewritten) {
      if (jq.intra_query_threads > 1 && jq.intra_query_pool == nullptr) {
        jq.intra_query_pool = intra_pool.get();
      }
    }
    effective = &rewritten;
  }

  const auto* parts = dynamic_cast<const PartitionedJoinEngine*>(engine_);
  const bool partition_major =
      parts != nullptr && !queries.empty() &&
      (partition_mode_ == BatchPartitionMode::kPartitionMajor ||
       (partition_mode_ == BatchPartitionMode::kAuto &&
        parts->NumParts() > 1 && queries.size() > 1 &&
        !parts->PartsStayResident()));

  // One request: checks the query's controls, executes, records status and
  // (possibly partial) results into the query's own slots.
  const auto execute_one = [&](size_t i) {
    const JoinQuery& jq = (*effective)[i];
    const Status live = jq.CheckLive();
    if (!live.ok()) {
      // Dead on arrival: never touches the engine or the pool's time.
      ++scratch[i].deadline_expired;
      out.statuses[i] = live;
      return;
    }
    CollectSink sink;
    out.statuses[i] = engine_->Execute(jq, &sink, &scratch[i]);
    out.results[i] = std::move(sink).TakeColumns();
  };

  if (partition_major) {
    RunPartitionMajor(*parts, *effective, outer_threads, &scratch, &out);
  } else if (outer_threads <= 1 || queries.size() <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) execute_one(i);
  } else {
    ThreadPool pool(std::min(outer_threads, queries.size()));
    pool.ParallelFor(queries.size(), execute_one);
  }
  for (const SearchStats& s : scratch) out.stats += s;
  out.wall_seconds = watch.ElapsedSeconds();
  return out;
}

void BatchQueryRunner::RunPartitionMajor(const PartitionedJoinEngine& parts,
                                         const std::vector<JoinQuery>& queries,
                                         size_t outer_threads,
                                         std::vector<SearchStats>* scratch,
                                         BatchResult* out) const {
  const size_t n = queries.size();
  std::unique_ptr<ThreadPool> pool;
  if (outer_threads > 1 && n > 1) {
    pool = std::make_unique<ThreadPool>(std::min(outer_threads, n));
  }
  double io = 0.0;
  for (size_t part = 0; part < parts.NumParts(); ++part) {
    // One load per partition per batch: the handle keeps the partition
    // resident while every query of the wave searches it IO-free.
    auto handle = parts.AcquirePart(part, &io);
    // Same environment-fault doctrine as the legacy Search on a
    // partitioned engine: files were validated at Build/Open time.
    PEXESO_CHECK_MSG(handle.ok(), handle.status().ToString().c_str());
    const PartHandle held = std::move(handle).ValueOrDie();
    const auto search_one = [&](size_t i) {
      // A query that already tripped (or failed) stops burning the pool:
      // its remaining parts are skipped outright.
      if (!out->statuses[i].ok()) return;
      const Status live = queries[i].CheckLive();
      if (!live.ok()) {
        ++(*scratch)[i].deadline_expired;
        out->statuses[i] = live;
        return;
      }
      auto chunk =
          parts.SearchPart(part, queries[i], &(*scratch)[i], nullptr, held);
      if (!chunk.ok()) {
        out->statuses[i] = chunk.status();
        return;
      }
      auto results = std::move(chunk).ValueOrDie();
      out->results[i].insert(out->results[i].end(),
                             std::make_move_iterator(results.begin()),
                             std::make_move_iterator(results.end()));
    };
    if (pool != nullptr) {
      pool->ParallelFor(n, search_one);
    } else {
      for (size_t i = 0; i < n; ++i) search_one(i);
    }
  }
  // Chunks landed in partition order per query; one canonical mode-aware
  // merge makes the output byte-identical to the query-major path (kTopK
  // chunks are per-part local top-ks, re-ranked and truncated here).
  for (size_t i = 0; i < n; ++i) {
    FinishQueryMerge(queries[i], &out->results[i]);
  }
  out->io_seconds = io;
}

}  // namespace pexeso
