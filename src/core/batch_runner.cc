#include "core/batch_runner.h"

#include <algorithm>
#include <thread>

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace pexeso {

BatchQueryRunner::BatchQueryRunner(const JoinSearchEngine* engine,
                                   BatchRunnerOptions options)
    : engine_(engine) {
  PEXESO_CHECK(engine != nullptr);
  num_threads_ = options.num_threads;
  if (num_threads_ == 0) {
    num_threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

BatchResult BatchQueryRunner::Run(const std::vector<VectorStore>& queries,
                                  const SearchOptions& options) const {
  const auto same = [&options](size_t) -> const SearchOptions& {
    return options;
  };
  return RunImpl(queries, same);
}

BatchResult BatchQueryRunner::Run(
    const std::vector<VectorStore>& queries,
    const std::vector<SearchOptions>& options) const {
  PEXESO_CHECK(options.size() == queries.size());
  const auto per_query = [&options](size_t i) -> const SearchOptions& {
    return options[i];
  };
  return RunImpl(queries, per_query);
}

template <typename OptionsFor>
BatchResult BatchQueryRunner::RunImpl(const std::vector<VectorStore>& queries,
                                      const OptionsFor& options_for) const {
  BatchResult out;
  out.results.resize(queries.size());
  Stopwatch watch;
  // One stats scratch slot per query: workers never share a slot, and the
  // serial input-order merge below keeps the floating-point sums identical
  // at every thread count.
  std::vector<SearchStats> scratch(queries.size());
  if (num_threads_ <= 1 || queries.size() <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      out.results[i] = engine_->Search(queries[i], options_for(i), &scratch[i]);
    }
  } else {
    ThreadPool pool(std::min(num_threads_, queries.size()));
    pool.ParallelFor(queries.size(), [&](size_t i) {
      out.results[i] = engine_->Search(queries[i], options_for(i), &scratch[i]);
    });
  }
  for (const SearchStats& s : scratch) out.stats += s;
  out.wall_seconds = watch.ElapsedSeconds();
  return out;
}

}  // namespace pexeso
