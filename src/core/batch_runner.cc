#include "core/batch_runner.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace pexeso {

BatchQueryRunner::BatchQueryRunner(const JoinSearchEngine* engine,
                                   BatchRunnerOptions options)
    : engine_(engine), partition_mode_(options.partition_mode) {
  PEXESO_CHECK(engine != nullptr);
  num_threads_ = options.num_threads;
  if (num_threads_ == 0) {
    num_threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

BatchResult BatchQueryRunner::Run(const std::vector<VectorStore>& queries,
                                  const SearchOptions& options) const {
  const auto same = [&options](size_t) -> const SearchOptions& {
    return options;
  };
  return RunImpl(queries, same);
}

BatchResult BatchQueryRunner::Run(
    const std::vector<VectorStore>& queries,
    const std::vector<SearchOptions>& options) const {
  PEXESO_CHECK(options.size() == queries.size());
  const auto per_query = [&options](size_t i) -> const SearchOptions& {
    return options[i];
  };
  return RunImpl(queries, per_query);
}

template <typename OptionsFor>
BatchResult BatchQueryRunner::RunImpl(const std::vector<VectorStore>& queries,
                                      const OptionsFor& options_for) const {
  BatchResult out;
  out.results.resize(queries.size());
  Stopwatch watch;
  // One stats scratch slot per query: workers never share a slot, and the
  // serial input-order merge below keeps the floating-point sums identical
  // at every thread count.
  std::vector<SearchStats> scratch(queries.size());

  const auto* parts = dynamic_cast<const PartitionedJoinEngine*>(engine_);
  const bool partition_major =
      parts != nullptr && !queries.empty() &&
      (partition_mode_ == BatchPartitionMode::kPartitionMajor ||
       (partition_mode_ == BatchPartitionMode::kAuto &&
        parts->NumParts() > 1 && queries.size() > 1 &&
        !parts->PartsStayResident()));

  if (partition_major) {
    RunPartitionMajor(*parts, queries, options_for, &scratch, &out);
  } else if (num_threads_ <= 1 || queries.size() <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      out.results[i] = engine_->Search(queries[i], options_for(i), &scratch[i]);
    }
  } else {
    ThreadPool pool(std::min(num_threads_, queries.size()));
    pool.ParallelFor(queries.size(), [&](size_t i) {
      out.results[i] = engine_->Search(queries[i], options_for(i), &scratch[i]);
    });
  }
  for (const SearchStats& s : scratch) out.stats += s;
  out.wall_seconds = watch.ElapsedSeconds();
  return out;
}

template <typename OptionsFor>
void BatchQueryRunner::RunPartitionMajor(
    const PartitionedJoinEngine& parts,
    const std::vector<VectorStore>& queries, const OptionsFor& options_for,
    std::vector<SearchStats>* scratch, BatchResult* out) const {
  const size_t n = queries.size();
  std::unique_ptr<ThreadPool> pool;
  if (num_threads_ > 1 && n > 1) {
    pool = std::make_unique<ThreadPool>(std::min(num_threads_, n));
  }
  double io = 0.0;
  for (size_t part = 0; part < parts.NumParts(); ++part) {
    // One load per partition per batch: the handle keeps the partition
    // resident while every query of the wave searches it IO-free.
    auto handle = parts.AcquirePart(part, &io);
    // Same environment-fault doctrine as JoinSearchEngine::Search on a
    // partitioned engine: files were validated at Build/Open time.
    PEXESO_CHECK_MSG(handle.ok(), handle.status().ToString().c_str());
    const PartHandle held = std::move(handle).ValueOrDie();
    const auto search_one = [&](size_t i) {
      auto chunk = parts.SearchPart(part, queries[i], options_for(i),
                                    &(*scratch)[i], nullptr, held);
      PEXESO_CHECK_MSG(chunk.ok(), chunk.status().ToString().c_str());
      auto results = std::move(chunk).ValueOrDie();
      out->results[i].insert(out->results[i].end(),
                             std::make_move_iterator(results.begin()),
                             std::make_move_iterator(results.end()));
    };
    if (pool != nullptr) {
      pool->ParallelFor(n, search_one);
    } else {
      for (size_t i = 0; i < n; ++i) search_one(i);
    }
  }
  // Chunks landed in partition order per query; one canonical merge makes
  // the output byte-identical to the query-major SearchPartitions path.
  for (auto& results : out->results) FinishPartMerge(&results);
  out->io_seconds = io;
}

}  // namespace pexeso
