#include "core/batch_runner.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace pexeso {

BatchQueryRunner::BatchQueryRunner(const JoinSearchEngine* engine,
                                   BatchRunnerOptions options)
    : engine_(engine), partition_mode_(options.partition_mode) {
  PEXESO_CHECK(engine != nullptr);
  num_threads_ = options.num_threads;
  if (num_threads_ == 0) {
    num_threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

BatchResult BatchQueryRunner::Run(const std::vector<VectorStore>& queries,
                                  const SearchOptions& options) const {
  const auto same = [&options](size_t) -> const SearchOptions& {
    return options;
  };
  return RunImpl(queries, same);
}

BatchResult BatchQueryRunner::Run(
    const std::vector<VectorStore>& queries,
    const std::vector<SearchOptions>& options) const {
  PEXESO_CHECK(options.size() == queries.size());
  const auto per_query = [&options](size_t i) -> const SearchOptions& {
    return options[i];
  };
  return RunImpl(queries, per_query);
}

template <typename OptionsFor>
BatchResult BatchQueryRunner::RunImpl(const std::vector<VectorStore>& queries,
                                      const OptionsFor& options_for) const {
  BatchResult out;
  out.results.resize(queries.size());
  Stopwatch watch;
  // One stats scratch slot per query: workers never share a slot, and the
  // serial input-order merge below keeps the floating-point sums identical
  // at every thread count.
  std::vector<SearchStats> scratch(queries.size());

  // Intra-query composition: queries may ask for intra-query verification
  // shards (SearchOptions::intra_query_threads) without carrying a pool. The
  // runner then provisions ONE intra pool shared by every query (the
  // pipeline tracks its shards with a per-search TaskGroup) and shrinks its
  // own fan-out so batch-major workers times intra-query shards stays within
  // the requested thread budget instead of multiplying it.
  size_t max_intra = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const SearchOptions& o = options_for(i);
    if (o.intra_query_pool == nullptr) {
      max_intra = std::max(max_intra, o.intra_query_threads);
    }
  }
  std::unique_ptr<ThreadPool> intra_pool;
  std::vector<SearchOptions> rewritten;
  size_t outer_threads = num_threads_;
  if (max_intra > 1) {
    // The pool honors the runner's total budget (shard COUNTS stay at the
    // requested intra_query_threads — a pure function of the options — so
    // results and stats are unchanged; extra shards just queue).
    intra_pool = std::make_unique<ThreadPool>(
        std::min({max_intra, std::max<size_t>(1, num_threads_), size_t{256}}));
    outer_threads = std::max<size_t>(1, num_threads_ / max_intra);
    rewritten.resize(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      rewritten[i] = options_for(i);
      if (rewritten[i].intra_query_threads > 1 &&
          rewritten[i].intra_query_pool == nullptr) {
        rewritten[i].intra_query_pool = intra_pool.get();
      }
    }
  }
  const auto eff_options = [&](size_t i) -> const SearchOptions& {
    return rewritten.empty() ? options_for(i) : rewritten[i];
  };

  const auto* parts = dynamic_cast<const PartitionedJoinEngine*>(engine_);
  const bool partition_major =
      parts != nullptr && !queries.empty() &&
      (partition_mode_ == BatchPartitionMode::kPartitionMajor ||
       (partition_mode_ == BatchPartitionMode::kAuto &&
        parts->NumParts() > 1 && queries.size() > 1 &&
        !parts->PartsStayResident()));

  if (partition_major) {
    RunPartitionMajor(*parts, queries, eff_options, outer_threads, &scratch,
                      &out);
  } else if (outer_threads <= 1 || queries.size() <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      out.results[i] =
          engine_->Search(queries[i], eff_options(i), &scratch[i]);
    }
  } else {
    ThreadPool pool(std::min(outer_threads, queries.size()));
    pool.ParallelFor(queries.size(), [&](size_t i) {
      out.results[i] =
          engine_->Search(queries[i], eff_options(i), &scratch[i]);
    });
  }
  for (const SearchStats& s : scratch) out.stats += s;
  out.wall_seconds = watch.ElapsedSeconds();
  return out;
}

template <typename OptionsFor>
void BatchQueryRunner::RunPartitionMajor(
    const PartitionedJoinEngine& parts,
    const std::vector<VectorStore>& queries, const OptionsFor& options_for,
    size_t outer_threads, std::vector<SearchStats>* scratch,
    BatchResult* out) const {
  const size_t n = queries.size();
  std::unique_ptr<ThreadPool> pool;
  if (outer_threads > 1 && n > 1) {
    pool = std::make_unique<ThreadPool>(std::min(outer_threads, n));
  }
  double io = 0.0;
  for (size_t part = 0; part < parts.NumParts(); ++part) {
    // One load per partition per batch: the handle keeps the partition
    // resident while every query of the wave searches it IO-free.
    auto handle = parts.AcquirePart(part, &io);
    // Same environment-fault doctrine as JoinSearchEngine::Search on a
    // partitioned engine: files were validated at Build/Open time.
    PEXESO_CHECK_MSG(handle.ok(), handle.status().ToString().c_str());
    const PartHandle held = std::move(handle).ValueOrDie();
    const auto search_one = [&](size_t i) {
      auto chunk = parts.SearchPart(part, queries[i], options_for(i),
                                    &(*scratch)[i], nullptr, held);
      PEXESO_CHECK_MSG(chunk.ok(), chunk.status().ToString().c_str());
      auto results = std::move(chunk).ValueOrDie();
      out->results[i].insert(out->results[i].end(),
                             std::make_move_iterator(results.begin()),
                             std::make_move_iterator(results.end()));
    };
    if (pool != nullptr) {
      pool->ParallelFor(n, search_one);
    } else {
      for (size_t i = 0; i < n; ++i) search_one(i);
    }
  }
  // Chunks landed in partition order per query; one canonical merge makes
  // the output byte-identical to the query-major SearchPartitions path.
  for (auto& results : out->results) FinishPartMerge(&results);
  out->io_seconds = io;
}

}  // namespace pexeso
