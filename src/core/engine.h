#ifndef PEXESO_CORE_ENGINE_H_
#define PEXESO_CORE_ENGINE_H_

#include <vector>

#include "core/ablation.h"
#include "core/join_result.h"
#include "core/thresholds.h"
#include "vec/search_stats.h"
#include "vec/vector_store.h"

namespace pexeso {

/// \brief Per-search options.
struct SearchOptions {
  SearchThresholds thresholds;
  AblationConfig ablation;
  /// When true, each returned column carries the record-level mapping
  /// (query index -> one matching target vector). Costs a post-pass.
  bool collect_mappings = false;
  /// When true, joinable columns keep verifying to report the exact
  /// joinability instead of stopping at T (disables the joinable-skip).
  bool exact_joinability = false;
};

/// \brief The unified joinable-table-search engine interface: given one
/// query column, return every repository column joinable with it.
///
/// Every search method in the library — PEXESO itself, PEXESO-H, the
/// exhaustive NaiveSearcher, the range-engine workflows (CTREE / EPT / PQ)
/// and the out-of-core PartitionedPexeso — implements this, so drivers
/// (CLI, examples, benches, BatchQueryRunner) can be written once against
/// the interface instead of hard-coding one engine each.
///
/// Contract:
///  - Search is const and safe to call concurrently from multiple threads
///    (implementations keep per-call state on the stack).
///  - Results are deterministic for a given (engine, query, options).
///  - `stats` may be null; when non-null the call's counters are *added*
///    to it (callers Reset() when they want a fresh reading).
class JoinSearchEngine {
 public:
  virtual ~JoinSearchEngine() = default;

  /// Short stable identifier ("pexeso", "naive", ...) for logs and CLIs.
  virtual const char* name() const = 0;

  /// Finds all repository columns joinable with the query column. `query`
  /// holds |Q| unit-normalized vectors of the repository dimensionality.
  virtual std::vector<JoinableColumn> Search(const VectorStore& query,
                                             const SearchOptions& options,
                                             SearchStats* stats) const = 0;
};

}  // namespace pexeso

#endif  // PEXESO_CORE_ENGINE_H_
