#ifndef PEXESO_CORE_ENGINE_H_
#define PEXESO_CORE_ENGINE_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/ablation.h"
#include "core/join_result.h"
#include "core/query.h"
#include "core/thresholds.h"
#include "vec/search_stats.h"
#include "vec/vector_store.h"

namespace pexeso {

class ThreadPool;

/// \brief The unified joinable-table-search engine interface: one JoinQuery
/// request in, one ResultSink consumer out.
///
/// Every search method in the library — PEXESO itself, PEXESO-H, the
/// exhaustive NaiveSearcher, the range-engine workflows (CTREE / EPT / PQ)
/// and the out-of-core PartitionedPexeso — implements Execute, so drivers
/// (CLI, examples, benches, BatchQueryRunner, ServeSession) can be written
/// once against the interface instead of hard-coding one engine each.
///
/// Contract:
///  - Execute is const and safe to call concurrently from multiple threads
///    (implementations keep per-call state on the stack).
///  - Results are deterministic for a given (engine, query): ascending
///    column order for the threshold modes, rank order for kTopK — at any
///    intra_query_threads setting.
///  - The sink's OnColumn fires once per result column, then OnDone fires
///    exactly once with the status Execute returns. A Cancelled /
///    DeadlineExceeded status means the query stopped at a checkpoint;
///    columns already delivered are valid partial results.
///  - `stats` may be null; when non-null the call's counters are *added*
///    to it (callers Reset() when they want a fresh reading).
class JoinSearchEngine {
 public:
  virtual ~JoinSearchEngine() = default;

  /// Short stable identifier ("pexeso", "naive", ...) for logs and CLIs.
  virtual const char* name() const = 0;

  /// Executes one request against the whole repository.
  virtual Status Execute(const JoinQuery& query, ResultSink* sink,
                         SearchStats* stats) const = 0;
};

/// Eager convenience over Execute: runs the query through a CollectSink and
/// returns the collected columns together with the execution status. An
/// interrupted query (Cancelled / DeadlineExceeded) returns its status — the
/// partial columns are dropped; callers that want them stream through their
/// own sink.
Result<std::vector<JoinableColumn>> ExecuteCollect(
    const JoinSearchEngine& engine, const JoinQuery& query,
    SearchStats* stats = nullptr);

/// \brief Opaque token that keeps one part of a partitioned engine loaded in
/// memory for as long as the token lives (a cache-held or directly-loaded
/// index behind the scenes).
using PartHandle = std::shared_ptr<const void>;

/// \brief Optional second interface for engines whose repository is split
/// into independently-searchable parts (the out-of-core PartitionedPexeso).
///
/// The serving layer builds on "search ONE part" rather than the all-parts
/// Execute above: the batch runner's partition-major loop pays each part's
/// load once per batch instead of once per query, and ServeSession streams
/// per-part result chunks as they complete. Implementations expose both
/// interfaces (`class X : public JoinSearchEngine, public
/// PartitionedJoinEngine`); drivers discover the second via dynamic_cast.
class PartitionedJoinEngine {
 public:
  virtual ~PartitionedJoinEngine() = default;

  /// Number of independently-searchable parts.
  virtual size_t NumParts() const = 0;

  /// Loads part `part` (through the attached cache when one is present) and
  /// returns a handle that keeps it resident until the handle is destroyed.
  /// `io_seconds` (optional) is *incremented* by the time this call spent
  /// blocked on disk (0 when the part was already cached).
  virtual Result<PartHandle> AcquirePart(size_t part,
                                         double* io_seconds) const = 0;

  /// Executes `query` against part `part` only. Results are keyed by
  /// *global* column ids but not sorted; callers concatenate chunks in part
  /// order and call FinishQueryMerge once. kTopK queries return the part's
  /// LOCAL top-k (with query.topk_floor seeding the prune bound), which the
  /// merge re-ranks — columns live in exactly one part, so the k best of
  /// the concatenated local top-ks are the global top-k. The query's
  /// deadline/cancel controls are honored per part (a tripped part returns
  /// Cancelled/DeadlineExceeded). When `preloaded` is a handle from
  /// AcquirePart of the same part, the call is guaranteed IO-free;
  /// otherwise the part is acquired internally and `io_seconds` (optional)
  /// is incremented by the load share — including on the error path, so IO
  /// accounting survives a failed load.
  virtual Result<std::vector<JoinableColumn>> SearchPart(
      size_t part, const JoinQuery& query, SearchStats* stats,
      double* io_seconds, const PartHandle& preloaded) const = 0;

  /// True when per-part working sets are expected to stay resident across
  /// queries (an attached cache whose budget holds every part), making the
  /// query-major batch loop as IO-cheap as the partition-major one.
  virtual bool PartsStayResident() const = 0;
};

/// Restores the deterministic result order of a concatenated per-part merge.
/// Each global column id lives in exactly one part, so ordering by id is a
/// total order and the outcome is byte-identical however the chunks raced.
inline void FinishPartMerge(std::vector<JoinableColumn>* merged) {
  std::sort(merged->begin(), merged->end(),
            [](const JoinableColumn& a, const JoinableColumn& b) {
              return a.column < b.column;
            });
}

/// Mode-aware variant of FinishPartMerge: kTopK chunks are per-part local
/// top-ks and need the global rank-and-truncate instead of the column-id
/// ordering. Callers holding the original JoinQuery use this one.
inline void FinishQueryMerge(const JoinQuery& query,
                             std::vector<JoinableColumn>* merged) {
  if (query.mode == QueryMode::kTopK) {
    RankTopK(merged, query.k);
  } else {
    FinishPartMerge(merged);
  }
}

}  // namespace pexeso

#endif  // PEXESO_CORE_ENGINE_H_
