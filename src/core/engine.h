#ifndef PEXESO_CORE_ENGINE_H_
#define PEXESO_CORE_ENGINE_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/ablation.h"
#include "core/join_result.h"
#include "core/thresholds.h"
#include "vec/search_stats.h"
#include "vec/vector_store.h"

namespace pexeso {

class ThreadPool;

/// \brief Per-search options.
struct SearchOptions {
  SearchThresholds thresholds;
  AblationConfig ablation;
  /// When true, each returned column carries the record-level mapping
  /// (query index -> one matching target vector). Costs a post-pass.
  bool collect_mappings = false;
  /// When true, joinable columns keep verifying to report the exact
  /// joinability instead of stopping at T (disables the joinable-skip).
  bool exact_joinability = false;
  /// Intra-query parallelism: verification work of ONE search is sharded by
  /// column range across this many workers (core/verify_pipeline.h). 0 or 1
  /// keeps the search single-threaded — the right default for batch
  /// workloads, which already parallelize across queries; raise it for a
  /// huge query column searched on its own. Results and stats counters are
  /// identical at every setting (the pipeline's determinism contract).
  size_t intra_query_threads = 0;
  /// Optional shared pool the verification shards run on (borrowed; used
  /// via a TaskGroup, so several concurrent searches can share it). When
  /// null and intra_query_threads > 1, the search spins up a transient
  /// pool. Must NOT be a pool whose worker is executing this very search —
  /// the shard wait would consume the worker the shards need
  /// (PEXESO_CHECK-enforced, like nested ThreadPool::ParallelFor).
  ThreadPool* intra_query_pool = nullptr;
};

/// \brief The unified joinable-table-search engine interface: given one
/// query column, return every repository column joinable with it.
///
/// Every search method in the library — PEXESO itself, PEXESO-H, the
/// exhaustive NaiveSearcher, the range-engine workflows (CTREE / EPT / PQ)
/// and the out-of-core PartitionedPexeso — implements this, so drivers
/// (CLI, examples, benches, BatchQueryRunner) can be written once against
/// the interface instead of hard-coding one engine each.
///
/// Contract:
///  - Search is const and safe to call concurrently from multiple threads
///    (implementations keep per-call state on the stack).
///  - Results are deterministic for a given (engine, query, options).
///  - `stats` may be null; when non-null the call's counters are *added*
///    to it (callers Reset() when they want a fresh reading).
class JoinSearchEngine {
 public:
  virtual ~JoinSearchEngine() = default;

  /// Short stable identifier ("pexeso", "naive", ...) for logs and CLIs.
  virtual const char* name() const = 0;

  /// Finds all repository columns joinable with the query column. `query`
  /// holds |Q| unit-normalized vectors of the repository dimensionality.
  virtual std::vector<JoinableColumn> Search(const VectorStore& query,
                                             const SearchOptions& options,
                                             SearchStats* stats) const = 0;
};

/// \brief Opaque token that keeps one part of a partitioned engine loaded in
/// memory for as long as the token lives (a cache-held or directly-loaded
/// index behind the scenes).
using PartHandle = std::shared_ptr<const void>;

/// \brief Optional second interface for engines whose repository is split
/// into independently-searchable parts (the out-of-core PartitionedPexeso).
///
/// The serving layer builds on "search ONE part" rather than the all-parts
/// Search above: the batch runner's partition-major loop pays each part's
/// load once per batch instead of once per query, and ServeSession streams
/// per-part result chunks as they complete. Implementations expose both
/// interfaces (`class X : public JoinSearchEngine, public
/// PartitionedJoinEngine`); drivers discover the second via dynamic_cast.
class PartitionedJoinEngine {
 public:
  virtual ~PartitionedJoinEngine() = default;

  /// Number of independently-searchable parts.
  virtual size_t NumParts() const = 0;

  /// Loads part `part` (through the attached cache when one is present) and
  /// returns a handle that keeps it resident until the handle is destroyed.
  /// `io_seconds` (optional) is *incremented* by the time this call spent
  /// blocked on disk (0 when the part was already cached).
  virtual Result<PartHandle> AcquirePart(size_t part,
                                         double* io_seconds) const = 0;

  /// Searches part `part` only. Results are keyed by *global* column ids but
  /// not sorted; callers concatenate chunks in part order and call
  /// FinishPartMerge once. When `preloaded` is a handle from AcquirePart of
  /// the same part, the call is guaranteed IO-free; otherwise the part is
  /// acquired internally and `io_seconds` (optional) is incremented by the
  /// load share — including on the error path, so IO accounting survives a
  /// failed load.
  virtual Result<std::vector<JoinableColumn>> SearchPart(
      size_t part, const VectorStore& query, const SearchOptions& options,
      SearchStats* stats, double* io_seconds,
      const PartHandle& preloaded) const = 0;

  /// True when per-part working sets are expected to stay resident across
  /// queries (an attached cache whose budget holds every part), making the
  /// query-major batch loop as IO-cheap as the partition-major one.
  virtual bool PartsStayResident() const = 0;
};

/// Restores the deterministic result order of a concatenated per-part merge.
/// Each global column id lives in exactly one part, so ordering by id is a
/// total order and the outcome is byte-identical however the chunks raced.
inline void FinishPartMerge(std::vector<JoinableColumn>* merged) {
  std::sort(merged->begin(), merged->end(),
            [](const JoinableColumn& a, const JoinableColumn& b) {
              return a.column < b.column;
            });
}

}  // namespace pexeso

#endif  // PEXESO_CORE_ENGINE_H_
