#include "core/engine.h"

#include <utility>

#include "common/check.h"

namespace pexeso {

std::vector<JoinableColumn> JoinSearchEngine::Search(
    const VectorStore& query, const SearchOptions& options,
    SearchStats* stats) const {
  CollectSink sink;
  const Status st = Execute(JoinQuery::FromLegacy(&query, options), &sink,
                            stats);
  // FromLegacy never sets a deadline or token, so a non-OK status here is
  // an environment fault (e.g. a partition file deleted mid-run) — the old
  // Search contract aborted on those.
  PEXESO_CHECK_MSG(st.ok(), st.ToString().c_str());
  return std::move(sink).TakeColumns();
}

}  // namespace pexeso
