#include "core/engine.h"

#include <utility>

namespace pexeso {

Result<std::vector<JoinableColumn>> ExecuteCollect(
    const JoinSearchEngine& engine, const JoinQuery& query,
    SearchStats* stats) {
  CollectSink sink;
  const Status st = engine.Execute(query, &sink, stats);
  PEXESO_RETURN_NOT_OK(st);
  return std::move(sink).TakeColumns();
}

}  // namespace pexeso
