#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "common/check.h"
#include "grid/cell_key.h"

namespace pexeso {

CostModel::CostModel(const double* mapped, size_t n, uint32_t np,
                     double extent, uint32_t bins, uint32_t max_level)
    : np_(np), bins_(bins), extent_(extent), total_(n) {
  PEXESO_CHECK(n > 0 && np >= 1 && bins >= 8);
  cdf_.assign(np, std::vector<double>(bins, 0.0));
  const double inv_bin = static_cast<double>(bins) / extent;
  for (size_t r = 0; r < n; ++r) {
    const double* v = mapped + r * np;
    for (uint32_t i = 0; i < np; ++i) {
      int b = static_cast<int>(v[i] * inv_bin);
      if (b < 0) b = 0;
      if (b >= static_cast<int>(bins)) b = static_cast<int>(bins) - 1;
      cdf_[i][b] += 1.0;
    }
  }
  for (uint32_t i = 0; i < np; ++i) {
    for (uint32_t b = 1; b < bins; ++b) cdf_[i][b] += cdf_[i][b - 1];
  }

  // Exact distinct-cell counts per integer level (for the lookup charge).
  nonempty_.assign(max_level + 1, 1.0);
  for (uint32_t l = 1; l <= max_level; ++l) {
    std::unordered_set<uint64_t> cells;
    const double side = extent / static_cast<double>(1u << l);
    const uint32_t max_coord = (1u << l) - 1;
    for (size_t r = 0; r < n; ++r) {
      const double* v = mapped + r * np;
      uint64_t h = 1469598103934665603ULL;
      for (uint32_t i = 0; i < np; ++i) {
        double x = v[i];
        if (x < 0) x = 0;
        uint32_t c = static_cast<uint32_t>(x / side);
        if (c > max_coord) c = max_coord;
        h ^= c + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      }
      cells.insert(h);
    }
    nonempty_[l] = static_cast<double>(cells.size());
  }
}

double CostModel::AxisMass(uint32_t axis, double lo, double hi) const {
  if (hi <= lo) return 0.0;
  lo = std::max(lo, 0.0);
  hi = std::min(hi, extent_);
  if (hi <= lo) return 0.0;
  const double scale = static_cast<double>(bins_) / extent_;
  auto cdf_at = [&](double x) -> double {
    // Cumulative count up to coordinate x with linear interpolation.
    const double pos = x * scale;
    const int b = static_cast<int>(pos);
    if (b < 0) return 0.0;
    if (b >= static_cast<int>(bins_)) return cdf_[axis].back();
    const double below = b == 0 ? 0.0 : cdf_[axis][b - 1];
    const double inside = cdf_[axis][b] - below;
    return below + inside * (pos - b);
  };
  return std::max(0.0, cdf_at(hi) - cdf_at(lo));
}

double CostModel::NonEmptyCells(double m) const {
  const double max_l = static_cast<double>(nonempty_.size() - 1);
  if (m <= 1.0) return nonempty_[1];
  if (m >= max_l) return nonempty_.back();
  const int lo = static_cast<int>(m);
  const double frac = m - lo;
  // Geometric interpolation: cell counts grow multiplicatively with level.
  return std::pow(nonempty_[lo], 1.0 - frac) *
         std::pow(nonempty_[lo + 1], frac);
}

double CostModel::NmaxSqr(const double* mq, double tau, double m) const {
  const double side = extent_ / std::pow(2.0, m);
  double best = std::numeric_limits<double>::max();
  for (uint32_t i = 0; i < np_; ++i) {
    const double mass = AxisMass(i, mq[i] - tau - side, mq[i] + tau + side);
    best = std::min(best, mass);
  }
  return best;
}

double CostModel::ExpectedCells(const double* mq, double tau, double m) const {
  // The per-axis slab count is position-independent under the uniform-slab
  // approximation; `mq` stays in the signature for models that refine it.
  (void)mq;
  const double side = extent_ / std::pow(2.0, m);
  double cells = 1.0;
  const double per_axis_cap = std::pow(2.0, m);
  for (uint32_t i = 0; i < np_; ++i) {
    const double slabs = std::min(2.0 * tau / side + 2.0, per_axis_cap);
    cells *= slabs;
    if (cells > 1e18) break;  // avoid overflow; capped below anyway
  }
  // A query cannot touch more cells than exist.
  return std::min(cells, NonEmptyCells(m));
}

double CostModel::ExpectedCost(const std::vector<WorkloadQuery>& workload,
                               double m, double kappa) const {
  double total = 0.0;
  for (const auto& wq : workload) {
    const size_t nq = wq.mapped.size() / np_;
    for (size_t q = 0; q < nq; ++q) {
      const double* mq = wq.mapped.data() + q * np_;
      total += NmaxSqr(mq, wq.tau, m);
      total += kappa * ExpectedCells(mq, wq.tau, m);
    }
  }
  return total;
}

uint32_t CostModel::OptimalM(const std::vector<WorkloadQuery>& workload,
                             uint32_t max_m, double kappa,
                             double* fractional_m) const {
  double best_m = 1.0;
  double best_cost = std::numeric_limits<double>::max();
  for (double m = 1.0; m <= static_cast<double>(max_m) + 1e-9; m += 0.1) {
    const double c = ExpectedCost(workload, m, kappa);
    if (c < best_cost) {
      best_cost = c;
      best_m = m;
    }
  }
  if (fractional_m != nullptr) *fractional_m = best_m;
  const uint32_t m = static_cast<uint32_t>(std::ceil(best_m - 1e-9));
  return std::max<uint32_t>(1, std::min(m, max_m));
}

std::vector<CostModel::WorkloadQuery> CostModel::SampleWorkload(
    const ColumnCatalog& catalog, const double* mapped, uint32_t np,
    double extent, size_t num_queries, Rng* rng, double tau_lo,
    double tau_hi) {
  std::vector<WorkloadQuery> out;
  const size_t ncols = catalog.num_columns();
  PEXESO_CHECK(ncols > 0);
  num_queries = std::min(num_queries, ncols);
  std::vector<size_t> picks = rng->SampleIndices(ncols, num_queries);
  out.reserve(num_queries);
  for (size_t ci : picks) {
    const ColumnMeta& meta = catalog.column(static_cast<ColumnId>(ci));
    WorkloadQuery wq;
    // Cap the per-column sample so huge columns do not dominate estimation.
    const uint32_t take = std::min<uint32_t>(meta.count, 64);
    wq.mapped.reserve(static_cast<size_t>(take) * np);
    for (uint32_t k = 0; k < take; ++k) {
      const VecId v = meta.first + static_cast<VecId>(
                                       k * (meta.count / take));
      const double* mv = mapped + static_cast<size_t>(v) * np;
      wq.mapped.insert(wq.mapped.end(), mv, mv + np);
    }
    wq.tau = rng->UniformDouble(tau_lo, tau_hi) * extent;
    out.push_back(std::move(wq));
  }
  return out;
}

}  // namespace pexeso
