#include "core/blocker.h"

namespace pexeso {

struct GridBlocker::RunState {
  const HierarchicalGrid* hgq = nullptr;
  const std::vector<double>* mapped_q = nullptr;
  double tau = 0.0;
  const AblationConfig* ablation = nullptr;
  SearchStats* stats = nullptr;
  BlockResult* result = nullptr;
  std::vector<uint32_t> scratch_leaves_r;
  std::vector<uint32_t> scratch_leaves_q;
};

BlockResult GridBlocker::Run(const HierarchicalGrid& hgq,
                             const std::vector<double>& mapped_q, double tau,
                             const AblationConfig& ablation,
                             SearchStats* stats) const {
  PEXESO_CHECK(hgq.levels() == rgrid_->levels());
  PEXESO_CHECK(hgq.num_pivots() == rgrid_->num_pivots());
  BlockResult result;
  result.match_cells.assign(hgq.num_vectors(), {});
  result.cand_cells.assign(hgq.num_vectors(), {});

  RunState rs;
  rs.hgq = &hgq;
  rs.mapped_q = &mapped_q;
  rs.tau = tau;
  rs.ablation = &ablation;
  rs.stats = stats;
  rs.result = &result;

  if (ablation.use_quick_browsing) {
    QuickBrowse(&rs);
  }
  const auto& q_level1 = hgq.CellsAtLevel(1);
  const auto& r_level1 = rgrid_->CellsAtLevel(1);
  for (uint32_t cq = 0; cq < q_level1.size(); ++cq) {
    for (uint32_t cr = 0; cr < r_level1.size(); ++cr) {
      Block(&rs, 1, cq, cr);
    }
  }
  return result;
}

void GridBlocker::QuickBrowse(RunState* rs) const {
  // Leaf cells of HGQ and HGRV with identical coordinates cover the same
  // space region, so they can never be separated by Lemma 3/4: feed them to
  // verification as candidates without any blocking work.
  for (const auto& lq : rs->hgq->LeafCells()) {
    const int64_t rcell = rgrid_->FindLeaf(lq.coords);
    if (rcell < 0) continue;
    for (VecId q : lq.items) {
      rs->result->cand_cells[q].push_back(static_cast<uint32_t>(rcell));
      ++rs->stats->candidate_pairs;
    }
  }
}

void GridBlocker::BlockLeafPair(RunState* rs, uint32_t cq, uint32_t cr) const {
  const uint32_t level = rgrid_->levels();
  const auto& qcell = rs->hgq->CellsAtLevel(level)[cq];
  const auto& rcell = rgrid_->CellsAtLevel(level)[cr];
  if (rs->ablation->use_quick_browsing && qcell.coords == rcell.coords) {
    return;  // already emitted by quick browsing
  }
  const uint32_t np = rs->hgq->num_pivots();
  const double tau = rs->tau;
  for (VecId q : qcell.items) {
    const double* mq = rs->mapped_q->data() + static_cast<size_t>(q) * np;
    bool resolved = false;
    if (rs->ablation->use_lemma56) {
      // Lemma 5: the whole target cell sits inside RQR(q', p_i, tau) for
      // some pivot axis i, i.e. upper_i(c) <= tau - d(q, p_i).
      for (uint32_t i = 0; i < np; ++i) {
        if (rgrid_->CellUpper(level, rcell, i) <= tau - mq[i]) {
          rs->result->match_cells[q].push_back(cr);
          ++rs->stats->matching_pairs;
          resolved = true;
          break;
        }
      }
    }
    if (resolved) continue;
    if (rs->ablation->use_lemma34) {
      // Lemma 3: the cell does not intersect SQR(q', tau).
      bool separated = false;
      for (uint32_t i = 0; i < np; ++i) {
        if (rgrid_->CellLower(level, rcell, i) > mq[i] + tau ||
            rgrid_->CellUpper(level, rcell, i) < mq[i] - tau) {
          separated = true;
          break;
        }
      }
      if (separated) {
        ++rs->stats->cells_filtered;
        continue;
      }
    }
    rs->result->cand_cells[q].push_back(cr);
    ++rs->stats->candidate_pairs;
  }
}

void GridBlocker::Block(RunState* rs, uint32_t level, uint32_t cq,
                        uint32_t cr) const {
  if (level == rgrid_->levels()) {
    BlockLeafPair(rs, cq, cr);
    return;
  }
  const auto& qcell = rs->hgq->CellsAtLevel(level)[cq];
  const auto& rcell = rgrid_->CellsAtLevel(level)[cr];
  const uint32_t np = rs->hgq->num_pivots();
  const double tau = rs->tau;

  if (rs->ablation->use_lemma56) {
    // Lemma 6: the target cell is covered by the minimum RQR of the query
    // cell on some pivot axis: upper_i(cr) <= tau - upper_i(cq), where
    // upper_i(cq) bounds d(q, p_i) for every query vector in the subtree.
    for (uint32_t i = 0; i < np; ++i) {
      if (rgrid_->CellUpper(level, rcell, i) <=
          tau - rs->hgq->CellUpper(level, qcell, i)) {
        ++rs->stats->cells_matched;
        rs->scratch_leaves_r.clear();
        rgrid_->CollectLeaves(level, cr, &rs->scratch_leaves_r);
        rs->scratch_leaves_q.clear();
        rs->hgq->CollectLeaves(level, cq, &rs->scratch_leaves_q);
        for (uint32_t ql : rs->scratch_leaves_q) {
          for (VecId q : rs->hgq->LeafCells()[ql].items) {
            for (uint32_t rl : rs->scratch_leaves_r) {
              rs->result->match_cells[q].push_back(rl);
              ++rs->stats->matching_pairs;
            }
          }
        }
        return;
      }
    }
  }
  if (rs->ablation->use_lemma34) {
    // Lemma 4: boxes further than tau apart in Chebyshev distance over the
    // pivot space cannot contain matching pairs. This is the box-box form of
    // SQR(cq.center, tau + cq.length/2) not intersecting cr.
    for (uint32_t i = 0; i < np; ++i) {
      if (rgrid_->CellLower(level, rcell, i) >
              rs->hgq->CellUpper(level, qcell, i) + tau ||
          rgrid_->CellUpper(level, rcell, i) <
              rs->hgq->CellLower(level, qcell, i) - tau) {
        ++rs->stats->cells_filtered;
        return;
      }
    }
  }
  for (uint32_t qchild : qcell.children) {
    for (uint32_t rchild : rcell.children) {
      Block(rs, level + 1, qchild, rchild);
    }
  }
}

}  // namespace pexeso
