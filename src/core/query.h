#ifndef PEXESO_CORE_QUERY_H_
#define PEXESO_CORE_QUERY_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <queue>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/ablation.h"
#include "core/join_result.h"
#include "core/thresholds.h"
#include "vec/vector_store.h"

namespace pexeso {

class ThreadPool;

/// \brief What the caller wants back from one joinable-column search.
enum class QueryMode : uint8_t {
  /// All columns whose match count reaches T (the paper's Problem 1). A
  /// column's reported count may stop at T (the joinable-skip).
  kThreshold,
  /// Same joinable set, but every reported count is the exact joinability
  /// (the joinable-skip is disabled).
  kExactJoinability,
  /// The k columns with the highest joinability under tau, ordered by
  /// decreasing joinability with ties broken by ascending column id (the
  /// TOPJoin/FREYJA consumption mode). `JoinQuery::k` selects k;
  /// `thresholds.t_abs` is ignored — any column with >= 1 match competes.
  /// Engines push the running k-th-best bound into their verification
  /// loops, so columns that provably cannot enter the top-k are abandoned
  /// mid-verification (SearchStats::columns_pruned_topk).
  kTopK,
};

/// \brief Cooperative cancellation handle. Default-constructed tokens are
/// inert (never cancelled, Cancel is a no-op); `Create()` makes a live one.
/// Copies share the underlying flag, so a caller can hand the same token to
/// a query and later flip it from any thread.
class CancelToken {
 public:
  CancelToken() = default;

  static CancelToken Create() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  void Cancel() const {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  /// True for tokens from Create() (the only ones that can ever fire).
  bool valid() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// \brief Absolute wall-clock budget for one query. Default-constructed:
/// no deadline. Engines poll `expired()` at checkpoint granularity (per
/// column / per partition / per verification batch), so expiry latency is
/// bounded by one checkpoint interval, not by the whole search.
class Deadline {
 public:
  Deadline() = default;

  static Deadline After(double seconds) {
    Deadline d;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline AfterMillis(double millis) { return After(millis / 1e3); }

  bool has_deadline() const {
    return at_ != std::chrono::steady_clock::time_point::max();
  }

  bool expired() const {
    return has_deadline() && std::chrono::steady_clock::now() >= at_;
  }

  /// Seconds until expiry (<= 0 once expired); +infinity without a
  /// deadline. Absolute steady_clock points do not cross process
  /// boundaries, so the wire protocol serializes a deadline as its
  /// remaining budget and the receiver re-anchors it with After().
  double remaining_seconds() const {
    if (!has_deadline()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ -
                                         std::chrono::steady_clock::now())
        .count();
  }

 private:
  std::chrono::steady_clock::time_point at_ =
      std::chrono::steady_clock::time_point::max();
};

/// \brief A shared CAS-max cell carrying the best known global "k-th best
/// match count" floor across executions that search disjoint slices of one
/// lake (partitions on one node, shards across nodes). Executions seed
/// their local TopKBound from it and publish their own full-k floors back;
/// because kTopK pruning is strict-beat, a raised floor can only remove
/// work, never change results. Relaxed ordering is sufficient: the cell is
/// a monotone hint, and a lagging read just means one extra verified
/// column.
class TopKFloorCell {
 public:
  explicit TopKFloorCell(uint32_t initial = 0) : floor_(initial) {}

  uint32_t load() const { return floor_.load(std::memory_order_relaxed); }

  /// CAS-max: returns true iff `floor` raised the cell (callers use the
  /// return to count/forward genuinely-new raises exactly once).
  bool RaiseTo(uint32_t floor) {
    uint32_t seen = floor_.load(std::memory_order_relaxed);
    while (floor > seen) {
      if (floor_.compare_exchange_weak(seen, floor,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

 private:
  std::atomic<uint32_t> floor_;
};

/// \brief One joinable-column search request: what to search with, which
/// consumption mode, the thresholds, and the execution controls (deadline,
/// cancellation, intra-query parallelism). Every JoinSearchEngine executes
/// this one shape.
struct JoinQuery {
  /// The query column: |Q| unit-normalized vectors of the repository
  /// dimensionality. Borrowed; must stay alive for the whole execution.
  const VectorStore* vectors = nullptr;

  QueryMode mode = QueryMode::kThreshold;
  /// Result size for kTopK (ignored otherwise).
  size_t k = 0;
  SearchThresholds thresholds;
  AblationConfig ablation;
  /// When true, each returned column carries the record-level mapping
  /// (query index -> one matching target vector). Costs a post-pass; in
  /// kTopK mode it runs only over the final k columns.
  bool collect_mappings = false;
  /// Intra-query parallelism: verification work of ONE search is sharded by
  /// column range across this many workers (core/verify_pipeline.h). 0 or 1
  /// keeps the search single-threaded — the right default for batch
  /// workloads, which already parallelize across queries; raise it for a
  /// huge query column searched on its own. Results and stats counters are
  /// identical at every setting (the pipeline's determinism contract).
  size_t intra_query_threads = 0;
  /// Optional shared pool the verification shards run on (borrowed; used
  /// via a TaskGroup, so several concurrent searches can share it). When
  /// null and intra_query_threads > 1, the search spins up a transient
  /// pool. Must NOT be a pool whose worker is executing this very search —
  /// the shard wait would consume the worker the shards need
  /// (PEXESO_CHECK-enforced, like nested ThreadPool::ParallelFor).
  ThreadPool* intra_query_pool = nullptr;

  /// Execution controls: a query whose deadline has passed or whose token
  /// was cancelled stops at the next checkpoint and Execute returns
  /// DeadlineExceeded/Cancelled with whatever results completed by then.
  Deadline deadline;
  CancelToken cancel;

  /// kTopK only: a lower bound on the global k-th-best match count that is
  /// already known (e.g. from partitions searched earlier). Columns that
  /// cannot strictly beat it are pruned; 0 means no prior knowledge.
  uint32_t topk_floor = 0;

  /// kTopK only: optional live link to a floor shared across concurrent
  /// executions over disjoint lake slices (scatter-gather shards, serving
  /// sessions). Execution-local like cancel/pools — it does NOT travel on
  /// the wire; each server re-creates a cell per job and the coordinator
  /// bridges raises through floor-update frames. Null: no sharing.
  std::shared_ptr<TopKFloorCell> floor_link;

  /// Modes that must report exact match counts (no joinable-skip).
  bool exact_counts() const { return mode != QueryMode::kThreshold; }

  /// The match-count threshold verification works against: T for the
  /// threshold modes, 1 for kTopK (every matching column competes).
  uint32_t EffectiveT() const {
    if (mode == QueryMode::kTopK) return 1;
    return std::max<uint32_t>(1, thresholds.t_abs);
  }

  /// OK while the query may keep running; Cancelled/DeadlineExceeded once a
  /// control tripped. Cheap when no deadline/token is set.
  Status CheckLive() const {
    if (cancel.cancelled()) return Status::Cancelled("query cancelled");
    if (deadline.expired()) return Status::DeadlineExceeded("query deadline");
    return Status::OK();
  }
};

/// \brief Consumer of one execution's results. OnColumn is called once per
/// result column in the engine's deterministic order (ascending column id
/// for the threshold modes, rank order for kTopK); OnDone is called exactly
/// once afterwards — also on failure — with the same status Execute
/// returns. Columns delivered before a non-OK OnDone are valid partial
/// results. Engines call the sink from the Execute caller's thread.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  virtual void OnColumn(JoinableColumn&& column) = 0;
  virtual void OnDone(const Status& status) = 0;

  /// Degraded-mode serving: called (before OnDone) once per part whose
  /// contribution is missing or incomplete — its base failed to load, or it
  /// was quarantined by recovery — while the rest of the answer is still
  /// delivered. An OK OnDone after OnPartStatus calls means "partial
  /// results, and here is exactly what is missing". Default: ignore.
  virtual void OnPartStatus(size_t part, const Status& status) {
    (void)part;
    (void)status;
  }
};

/// \brief The eager sink: collects every column into a vector. Preserves
/// the convenience of the old vector-returning Search for callers that
/// don't stream.
class CollectSink final : public ResultSink {
 public:
  void OnColumn(JoinableColumn&& column) override {
    columns_.push_back(std::move(column));
  }
  void OnDone(const Status& status) override { status_ = status; }
  void OnPartStatus(size_t part, const Status& status) override {
    part_statuses_.emplace_back(part, status);
  }

  const std::vector<JoinableColumn>& columns() const { return columns_; }
  std::vector<JoinableColumn> TakeColumns() { return std::move(columns_); }
  const Status& status() const { return status_; }
  /// Parts whose contribution is missing from columns() (degraded serving).
  const std::vector<std::pair<size_t, Status>>& part_statuses() const {
    return part_statuses_;
  }

 private:
  std::vector<JoinableColumn> columns_;
  std::vector<std::pair<size_t, Status>> part_statuses_;
  Status status_;
};

/// \brief Thread-safe running "k-th best match count" bound for kTopK
/// pushdown. Verification shards Offer() each finished column's match
/// count; bound() is the count a new column must strictly beat to still
/// enter the top-k (0 until k columns are known and no floor was seeded).
/// Pruning against the bound is order-insensitive: the bound only grows,
/// and a column pruned under any bound is provably outside the final
/// top-k, so results are identical at every thread count even though the
/// prune COUNTERS legitimately vary with execution order.
class TopKBound {
 public:
  /// `k` result slots; `floor` seeds the bound with prior knowledge (e.g.
  /// the k-th best count of partitions already searched).
  TopKBound(size_t k, uint32_t floor) : k_(k), floor_(floor), bound_(floor) {}

  /// Current strict-beat threshold (relaxed read; may lag Offer by design).
  uint32_t bound() const { return bound_.load(std::memory_order_relaxed); }

  /// Reports one column's final match count (callers skip zero counts).
  void Offer(uint32_t count) {
    if (k_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (heap_.size() < k_) {
      heap_.push(count);
    } else if (count > heap_.top()) {
      heap_.pop();
      heap_.push(count);
    }
    if (heap_.size() == k_) {
      bound_.store(std::max(floor_, heap_.top()), std::memory_order_relaxed);
    }
  }

 private:
  const size_t k_;
  const uint32_t floor_;
  std::mutex mu_;
  /// Min-heap of the k largest counts offered so far.
  std::priority_queue<uint32_t, std::vector<uint32_t>, std::greater<uint32_t>>
      heap_;
  std::atomic<uint32_t> bound_;
};

/// Orders a candidate set the way kTopK reports it — decreasing
/// joinability, ties by ascending column id — and truncates to k.
inline void RankTopK(std::vector<JoinableColumn>* columns, size_t k) {
  std::sort(columns->begin(), columns->end(),
            [](const JoinableColumn& a, const JoinableColumn& b) {
              if (a.joinability != b.joinability) {
                return a.joinability > b.joinability;
              }
              return a.column < b.column;
            });
  if (columns->size() > k) columns->resize(k);
}

}  // namespace pexeso

#endif  // PEXESO_CORE_QUERY_H_
