#ifndef PEXESO_CORE_BLOCKER_H_
#define PEXESO_CORE_BLOCKER_H_

#include <cstdint>
#include <vector>

#include "core/ablation.h"
#include "grid/hierarchical_grid.h"
#include "vec/search_stats.h"

namespace pexeso {

/// \brief Output of the blocking phase: for each query vector, the leaf
/// cells of HGRV it must be verified against. `match_cells` come from
/// Lemmas 5/6 (every vector inside matches — no distance computation
/// needed); `cand_cells` survived Lemmas 3/4 and need verification.
struct BlockResult {
  std::vector<std::vector<uint32_t>> match_cells;
  std::vector<std::vector<uint32_t>> cand_cells;
};

/// \brief Algorithm 1 (plus quick browsing): the simultaneous descent over
/// HGQ and HGRV that produces matching and candidate pairs. Shared by
/// PexesoSearcher (inverted-index verification) and the PEXESO-H baseline
/// (naive per-cell verification).
class GridBlocker {
 public:
  /// `rgrid` (HGRV) is borrowed; it must carry the same number of levels the
  /// query grid will be built with.
  explicit GridBlocker(const HierarchicalGrid* rgrid) : rgrid_(rgrid) {}

  /// Runs quick browsing + Block over a prepared query grid. `mapped_q` is
  /// the pivot-space image of the query column (|Q| x |P|).
  BlockResult Run(const HierarchicalGrid& hgq,
                  const std::vector<double>& mapped_q, double tau,
                  const AblationConfig& ablation, SearchStats* stats) const;

 private:
  struct RunState;
  void QuickBrowse(RunState* rs) const;
  void Block(RunState* rs, uint32_t level, uint32_t cq, uint32_t cr) const;
  void BlockLeafPair(RunState* rs, uint32_t cq, uint32_t cr) const;

  const HierarchicalGrid* rgrid_;
};

}  // namespace pexeso

#endif  // PEXESO_CORE_BLOCKER_H_
