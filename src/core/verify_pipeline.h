#ifndef PEXESO_CORE_VERIFY_PIPELINE_H_
#define PEXESO_CORE_VERIFY_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "core/blocker.h"
#include "core/engine.h"
#include "core/join_result.h"
#include "core/pexeso_index.h"

namespace pexeso {

/// \brief One (query record, column) pair emitted by candidate generation:
/// the unit of work the tiled verification stage resolves. `cell_matched`
/// pairs were decided by the blocking lemmas (5/6) alone and carry no
/// ranges; the rest name the postings ranges whose vectors must be checked,
/// in the exact order the serial scan would have visited them.
struct CandidateBlock {
  uint32_t query = 0;        ///< query record index
  uint32_t range_begin = 0;  ///< first VecIdRange of this pair
  uint32_t range_count = 0;  ///< number of ranges
  uint8_t cell_matched = 0;  ///< 1: a Lemma 5/6 match cell decided the pair
};

/// Contiguous run of InvertedIndex::vec_ids() holding one cell's candidate
/// vectors of one column.
struct VecIdRange {
  uint32_t begin = 0;
  uint32_t count = 0;
};

/// \brief Stage-1 output: every (query record, column) pair of the search,
/// CSR-grouped by column with each column's pairs in ascending query order —
/// exactly the order the serial DaaT loop resolves them in. That ordering is
/// what lets stage 2 replay the per-column Lemma-7 / early-joinable state
/// machine bit-for-bit under any shard layout.
struct CandidateSet {
  std::vector<CandidateBlock> blocks;
  std::vector<VecIdRange> ranges;  ///< each block's ranges are contiguous
  /// Blocks of column c occupy [block_begin[c], block_begin[c+1]).
  std::vector<uint32_t> block_begin;
  /// Verification cost estimate per column (candidate vector count, 1 for a
  /// cell-matched pair); drives the weight-balanced sharding of stage 2.
  std::vector<uint64_t> weight;
  uint64_t total_weight = 0;

  bool empty() const { return blocks.empty(); }
};

/// \brief The staged online verification pipeline: Algorithm 2 restructured
/// from a monolithic per-query DaaT loop into three explicit stages.
///
///   stage 1  candidate generation — the DaaT merge over the blocking
///            output emits CandidateBlocks instead of deciding pairs
///            inline (GenerateCandidates);
///   stage 2  tiled verification — columns are sharded into contiguous,
///            weight-balanced ranges across JoinQuery::intra_query_threads
///            workers; each shard replays the serial per-column state
///            machine, batching safe runs of pairs into many-to-many
///            KernelSet tiles (VerifyCandidates);
///   stage 3  deterministic reduction — shards own disjoint match_map
///            slices and private stats, merged in shard (= column) order.
///
/// Determinism contract: because a column's pairs are always resolved by
/// one shard, in ascending query order, with Lemma-7 kills and t_abs
/// early-joinable upgrades applied between tile batches exactly where the
/// serial scan would apply them, results AND stats counters are identical
/// at every intra_query_threads setting (shard_max_blocks, the imbalance
/// diagnostic, is the one exception by design). kTopK executions keep the
/// RESULT half of the contract — a column pruned against the shared
/// running bound is provably outside the top-k under any schedule — but
/// their work counters (distance_computations, columns_pruned_topk)
/// legitimately vary with execution order.
///
/// kTopK pushdown: shards Offer() each finished column's match count into
/// the shared TopKBound and read the running k-th-best bound back as a
/// dynamic per-column early-exit threshold — a column whose remaining
/// headroom (match + unresolved pairs) can no longer strictly beat the
/// bound is abandoned mid-verification and flagged in `pruned`.
///
/// Deadline/cancellation: shards poll JoinQuery::CheckLive() between
/// columns; a tripped shard abandons its remaining range and
/// VerifyCandidates / CollectMappings return the Cancelled /
/// DeadlineExceeded status (first shard in shard order wins).
///
/// Tile-batching rule: a run of k pending pairs of one column can be
/// evaluated as one batch only when no skip-triggering state transition can
/// occur before its last pair — k <= t_abs - match (early-joinable) and
/// k <= |Q| - t_abs - mismatch + 1 (Lemma-7) — so batching never evaluates
/// a pair the serial scan would have skipped.
class VerifyPipeline {
 public:
  /// `index` is borrowed and must outlive the pipeline.
  explicit VerifyPipeline(const PexesoIndex* index) : index_(index) {}

  /// Stage 1. `blocks` is the blocking output for `num_q` query records.
  void GenerateCandidates(const BlockResult& blocks, uint32_t num_q,
                          CandidateSet* out, SearchStats* stats) const;

  /// Stages 2 + 3. `match_map` must be sized to the catalog's column count
  /// and zero-initialized; on return match_map[c] holds the (possibly
  /// early-terminated, per the query mode) match count of column c. For
  /// kTopK, `topk` carries the shared running bound and `pruned` (same
  /// size, zero-initialized) flags columns abandoned against it; both must
  /// be null otherwise. Returns OK, or the interruption status when a
  /// deadline/cancel checkpoint tripped (match_map is then partial).
  Status VerifyCandidates(const CandidateSet& cands, const VectorStore& query,
                          const std::vector<double>& mapped_q,
                          const JoinQuery& jq, TopKBound* topk,
                          std::vector<uint32_t>* match_map,
                          std::vector<uint8_t>* pruned,
                          SearchStats* stats) const;

  /// Record-level mappings over the same tile machinery: each joinable
  /// column is one many-to-many tile sweep of (query records x the column's
  /// contiguous vector range) with Lemma-1 masking, instead of the old
  /// per-pair rescan. Parallelizes across result columns under the same
  /// intra-query options, with per-column stats merged in column order.
  /// Returns OK or the interruption status (mappings are then partial; the
  /// caller discards them).
  Status CollectMappings(const VectorStore& query,
                         const std::vector<double>& mapped_q,
                         const JoinQuery& jq,
                         std::vector<JoinableColumn>* out,
                         SearchStats* stats) const;

 private:
  struct TileScratch;

  /// Stage-2 worker: verifies columns [col_lo, col_hi), writing only that
  /// slice of match_map (and `pruned`, kTopK) and its private `stats`.
  Status VerifyShard(const CandidateSet& cands, ColumnId col_lo,
                     ColumnId col_hi, const VectorStore& query,
                     const std::vector<double>& mapped_q, const JoinQuery& jq,
                     TopKBound* topk, const float* query_norms,
                     const float* repo_norms, std::vector<uint32_t>* match_map,
                     std::vector<uint8_t>* pruned, SearchStats* stats) const;

  /// Resolves pairs blocks[i..i+k) of column `col` (a safe batch: no
  /// skip-triggering transition can occur before the last pair), filling
  /// matched[0..k).
  void EvaluateRun(const CandidateSet& cands, ColumnId col, size_t i,
                   size_t k, const VectorStore& query,
                   const std::vector<double>& mapped_q, const JoinQuery& jq,
                   const float* query_norms, const float* repo_norms,
                   TileScratch* scratch, uint8_t* matched,
                   SearchStats* stats) const;

  /// Resolves one group of `m` consecutive pairs of column `col` sharing an
  /// identical range list via gather + masked many-to-many tiles.
  void EvaluateGroup(const CandidateSet& cands, ColumnId col,
                     const CandidateBlock* group, size_t m,
                     const VectorStore& query,
                     const std::vector<double>& mapped_q, const JoinQuery& jq,
                     const float* query_norms, const float* repo_norms,
                     TileScratch* scratch, uint8_t* matched,
                     SearchStats* stats) const;

  /// Mapping sweep of one result column (see CollectMappings).
  void MapColumn(JoinableColumn* jc, const VectorStore& query,
                 const std::vector<double>& mapped_q, const JoinQuery& jq,
                 const float* query_norms, const float* repo_norms,
                 TileScratch* scratch, SearchStats* stats) const;

  const PexesoIndex* index_;
};

}  // namespace pexeso

#endif  // PEXESO_CORE_VERIFY_PIPELINE_H_
