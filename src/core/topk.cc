#include "core/topk.h"

#include <algorithm>

#include "core/batch_runner.h"

namespace pexeso {

std::vector<JoinableColumn> SearchTopK(const JoinSearchEngine& engine,
                                       const VectorStore& query, double tau,
                                       size_t k, SearchStats* stats) {
  SearchOptions options;
  options.thresholds.tau = tau;
  options.thresholds.t_abs = 1;
  options.exact_joinability = true;
  std::vector<JoinableColumn> all = engine.Search(query, options, stats);
  std::sort(all.begin(), all.end(),
            [](const JoinableColumn& a, const JoinableColumn& b) {
              if (a.joinability != b.joinability) {
                return a.joinability > b.joinability;
              }
              return a.column < b.column;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<std::vector<JoinableColumn>> SearchBatch(
    const PexesoIndex& index, const std::vector<VectorStore>& queries,
    const SearchOptions& options, size_t num_threads, SearchStats* stats) {
  PexesoSearcher searcher(&index);
  BatchQueryRunner runner(&searcher, {.num_threads = num_threads});
  BatchResult batch = runner.Run(queries, options);
  if (stats != nullptr) *stats += batch.stats;
  return std::move(batch.results);
}

}  // namespace pexeso
