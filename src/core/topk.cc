#include "core/topk.h"

#include <cstdio>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "core/batch_runner.h"

namespace pexeso {

std::vector<JoinableColumn> SearchTopK(const JoinSearchEngine& engine,
                                       const VectorStore& query, double tau,
                                       size_t k, SearchStats* stats) {
  static std::once_flag deprecation_note;
  std::call_once(deprecation_note, [] {
    std::fprintf(stderr,
                 "note: SearchTopK() is deprecated; build a JoinQuery with "
                 "QueryMode::kTopK and call JoinSearchEngine::Execute\n");
  });
  JoinQuery jq;
  jq.vectors = &query;
  jq.mode = QueryMode::kTopK;
  jq.k = k;
  jq.thresholds.tau = tau;
  CollectSink sink;
  const Status st = engine.Execute(jq, &sink, stats);
  PEXESO_CHECK_MSG(st.ok(), st.ToString().c_str());
  return std::move(sink).TakeColumns();
}

std::vector<std::vector<JoinableColumn>> SearchBatch(
    const PexesoIndex& index, const std::vector<VectorStore>& queries,
    const SearchOptions& options, size_t num_threads, SearchStats* stats) {
  PexesoSearcher searcher(&index);
  BatchQueryRunner runner(&searcher, {.num_threads = num_threads});
  BatchResult batch = runner.Run(queries, options);
  if (stats != nullptr) *stats += batch.stats;
  return std::move(batch.results);
}

}  // namespace pexeso
