#include "core/topk.h"

#include <utility>

#include "core/batch_runner.h"

namespace pexeso {

std::vector<std::vector<JoinableColumn>> SearchBatch(
    const PexesoIndex& index, const std::vector<VectorStore>& queries,
    const JoinQuery& prototype, size_t num_threads, SearchStats* stats) {
  PexesoSearcher searcher(&index);
  BatchQueryRunner runner(&searcher, {.num_threads = num_threads});
  std::vector<JoinQuery> jqs(queries.size(), prototype);
  for (size_t i = 0; i < queries.size(); ++i) jqs[i].vectors = &queries[i];
  BatchResult batch = runner.Run(jqs);
  if (stats != nullptr) *stats += batch.stats;
  return std::move(batch.results);
}

}  // namespace pexeso
