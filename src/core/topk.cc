#include "core/topk.h"

#include <algorithm>
#include <mutex>

#include "common/thread_pool.h"

namespace pexeso {

std::vector<JoinableColumn> SearchTopK(const PexesoSearcher& searcher,
                                       const VectorStore& query, double tau,
                                       size_t k, SearchStats* stats) {
  SearchOptions options;
  options.thresholds.tau = tau;
  options.thresholds.t_abs = 1;
  options.exact_joinability = true;
  std::vector<JoinableColumn> all = searcher.Search(query, options, stats);
  std::sort(all.begin(), all.end(),
            [](const JoinableColumn& a, const JoinableColumn& b) {
              if (a.joinability != b.joinability) {
                return a.joinability > b.joinability;
              }
              return a.column < b.column;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<std::vector<JoinableColumn>> SearchBatch(
    const PexesoIndex& index, const std::vector<VectorStore>& queries,
    const SearchOptions& options, size_t num_threads, SearchStats* stats) {
  std::vector<std::vector<JoinableColumn>> results(queries.size());
  std::vector<SearchStats> per_thread(queries.size());
  ThreadPool pool(std::max<size_t>(1, num_threads));
  pool.ParallelFor(queries.size(), [&](size_t i) {
    PexesoSearcher searcher(&index);
    results[i] = searcher.Search(queries[i], options, &per_thread[i]);
  });
  if (stats != nullptr) {
    for (const auto& s : per_thread) *stats += s;
  }
  return results;
}

}  // namespace pexeso
