#ifndef PEXESO_CORE_PEXESO_INDEX_H_
#define PEXESO_CORE_PEXESO_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mmap_file.h"
#include "common/status.h"
#include "grid/hierarchical_grid.h"
#include "invindex/inverted_index.h"
#include "pivot/pivot_space.h"
#include "vec/column_catalog.h"
#include "vec/metric.h"
#include "vec/quant.h"

namespace pexeso {

/// \brief Index construction options.
struct PexesoOptions {
  /// |P|: number of pivots. Paper tunes 1..9; defaults to the OPEN optimum.
  uint32_t num_pivots = 5;
  /// m: number of hierarchical-grid levels. 0 = pick via the cost model.
  uint32_t levels = 6;
  /// Pivot selection strategy: PCA-based [22] (paper choice) or random.
  enum class PivotStrategy { kPca, kRandom } pivot_strategy = PivotStrategy::kPca;
  /// Seed for pivot selection sampling.
  uint64_t seed = 17;
};

/// \brief The offline side of PEXESO: the embedded repository plus every
/// search structure of Section III (pivot space, mapped vectors, HGRV, and
/// the inverted index). Owns the catalog it was built over.
class PexesoIndex {
 public:
  PexesoIndex() = default;
  PexesoIndex(PexesoIndex&&) = default;
  PexesoIndex& operator=(PexesoIndex&&) = default;

  /// Builds the index over `catalog` (moved in; vectors should already be
  /// unit-normalized). `metric` is borrowed and must outlive the index.
  static PexesoIndex Build(ColumnCatalog catalog, const Metric* metric,
                           const PexesoOptions& options);

  /// Appends a new column (Section III-E): pivot-maps its vectors, inserts
  /// them into the grid chain and the postings lists. Returns the ColumnId.
  ColumnId AppendColumn(ColumnMeta meta, const float* packed, size_t count);

  /// Logically deletes a column: it is tombstoned and skipped by every
  /// searcher. Postings stay in place until Compact().
  void DeleteColumn(ColumnId column);

  /// Rebuilds the index without tombstoned columns, reclaiming their space.
  /// Column ids are compacted (survivors keep their relative order and their
  /// ColumnMeta::source_id, which callers should use for stable identity).
  /// Returns the number of columns dropped.
  size_t Compact();

  bool IsDeleted(ColumnId column) const {
    return column < tombstones_.size() && tombstones_[column] != 0;
  }

  const ColumnCatalog& catalog() const { return catalog_; }
  const PivotSpace& pivots() const { return pivots_; }
  const HierarchicalGrid& grid() const { return grid_; }
  const InvertedIndex& inverted_index() const { return inv_; }
  const QuantStore& quant() const { return quant_; }
  const Metric* metric() const { return metric_; }
  const PexesoOptions& options() const { return options_; }

  /// Mapped repository vector v (|P| doubles).
  const double* MappedVec(VecId v) const {
    const double* base = mapped_ext_ != nullptr ? mapped_ext_ : mapped_.data();
    return base + static_cast<size_t>(v) * pivots_.num_pivots();
  }
  /// Owned pivot-space coordinates; only meaningful for built indexes
  /// (mapped snapshots serve MappedVec from the mapping instead).
  const std::vector<double>& mapped() const {
    PEXESO_DCHECK(mapped_ext_ == nullptr);
    return mapped_;
  }

  /// True when this index serves reads zero-copy out of an mmapped
  /// snapshot (format v2 / disk version 3).
  bool is_mapped() const { return mapping_ != nullptr; }

  /// Bytes of the backing snapshot mapping (0 for heap indexes). This is
  /// the budget IndexCache charges for a mapped snapshot instead of heap
  /// bytes it never allocated.
  size_t MappedBytes() const {
    return mapping_ != nullptr ? mapping_->size() : 0;
  }

  /// Snapshot disk version this index was loaded from (0 for built ones).
  uint32_t loaded_version() const { return loaded_version_; }

  /// Copies every mapped section onto the heap and releases the mapping;
  /// no-op for heap indexes. Mutators call this, so a mapped snapshot is
  /// copy-on-write as a whole.
  void Materialize();

  /// Index footprint (pivots + mapped vectors + grid + inverted index),
  /// excluding the raw repository vectors; reproduces Figure 6b/10b sizing.
  size_t IndexSizeBytes() const;

  /// Serializes index + catalog to `path` in the flat, mmap-friendly v2
  /// snapshot format (disk version 3): page-aligned sections behind a
  /// section table, CRC-32 footer last. Used by partition files and the
  /// lake merge path.
  Status Save(const std::string& path) const;

  /// Serializes in the legacy streamed format (disk version 2) — the format
  /// every release before the flat layout wrote. Kept for format-parity
  /// tests and for `pexeso_cli snapshot --upgrade` fixtures.
  Status SaveLegacy(const std::string& path) const;

  /// Loads an index previously written by Save. `metric` must match the one
  /// used at build time.
  static Result<PexesoIndex> Load(const std::string& path,
                                  const Metric* metric);

  /// Reads just the snapshot header and returns the repository
  /// dimensionality — a cheap sanity check against an embedding model that
  /// avoids deserializing (and then discarding) a whole partition.
  static Result<uint32_t> PeekDim(const std::string& path);

  /// Validates a snapshot file without deserializing it: header magic +
  /// version, then a streamed CRC-32 pass over the payload against the
  /// footer. Corruption/NotSupported mean the BYTES are bad (quarantine
  /// material); IoError means the environment failed (retry material).
  /// This is the integrity pass lake recovery and fsck run per snapshot.
  static Status VerifySnapshot(const std::string& path);

 private:
  /// Legacy streamed loader (disk versions 1 and 2); `r` is positioned
  /// right after the magic/version words.
  static Result<PexesoIndex> LoadStream(BinaryReader r, uint32_t version,
                                        const Metric* metric);
  /// Flat loader (disk version 3): CRC pass over the buffer, section-table
  /// validation, then zero-copy view binding into `data`. The caller owns
  /// keeping `data` alive (LoadMapped attaches the mapping; the stream path
  /// materializes before its buffer dies).
  static Result<PexesoIndex> LoadFlat(const uint8_t* data, uint64_t size,
                                      const Metric* metric);
  /// LoadFlat over an mmap'd file; the returned index keeps the mapping
  /// alive and reports is_mapped().
  static Result<PexesoIndex> LoadMapped(std::shared_ptr<MappedFile> file,
                                        const Metric* metric);
  /// (Re)builds the quantized pre-filter tier from the float vectors.
  void RebuildQuant();

  ColumnCatalog catalog_;
  PivotSpace pivots_;
  std::vector<double> mapped_;  ///< |RV| x |P| pivot-space coordinates
  const double* mapped_ext_ = nullptr;  ///< non-null => mapped-snapshot view
  HierarchicalGrid grid_;
  InvertedIndex inv_;
  QuantStore quant_;
  std::vector<uint8_t> tombstones_;
  const Metric* metric_ = nullptr;
  PexesoOptions options_;
  std::shared_ptr<MappedFile> mapping_;  ///< keeps viewed sections alive
  uint32_t loaded_version_ = 0;
};

}  // namespace pexeso

#endif  // PEXESO_CORE_PEXESO_INDEX_H_
