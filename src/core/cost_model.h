#ifndef PEXESO_CORE_COST_MODEL_H_
#define PEXESO_CORE_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "vec/column_catalog.h"

namespace pexeso {

/// \brief The search cost estimator of Section III-E.
///
/// Blocking compares cell overlaps only, so the dominant cost is the number
/// of exact distance computations in verification (Eq. 1). For one query
/// vector q this is bounded by Nmax(SQR(q', tau)) of Eq. 2: the minimum over
/// pivot axes of the repository mass falling inside the slab
/// [q'_i - tau - side, q'_i + tau + side], where `side` is the leaf-cell edge
/// at grid depth m (candidate leaf cells can overhang the square query
/// region by at most one cell side). Larger m shrinks the overhang but
/// multiplies the number of leaf cells a query touches, so the model adds a
/// per-cell lookup charge; minimizing the sum picks the paper's trade-off.
///
/// Per-axis masses come from marginal histograms of the mapped repository
/// vectors (the PDF_i(RV) of Eq. 2). The optimum over fractional m is found
/// by dense scan of the 1-d objective (the paper uses gradient descent; the
/// minimizer is the same and the scan is derivative-free), then ceiled.
class CostModel {
 public:
  /// One workload entry: the mapped vectors of a sampled query column plus a
  /// (tau, T) pair drawn from the practical ranges of Section V.
  struct WorkloadQuery {
    std::vector<double> mapped;  ///< |Q| x |P|
    double tau = 0.0;
  };

  /// Builds marginal histograms over `n` mapped vectors (row-major n x np).
  CostModel(const double* mapped, size_t n, uint32_t np, double extent,
            uint32_t bins = 256, uint32_t max_level = 12);

  /// Eq. 2: upper bound on the vectors needing verification for one mapped
  /// query vector at (fractional) grid depth m.
  double NmaxSqr(const double* mq, double tau, double m) const;

  /// Estimated number of non-empty leaf cells a query vector's SQR touches
  /// at depth m (the inverted-index lookup overhead).
  double ExpectedCells(const double* mq, double tau, double m) const;

  /// Aggregated Eq. 1 over a workload at depth m. `kappa` converts one cell
  /// lookup into distance-computation units.
  double ExpectedCost(const std::vector<WorkloadQuery>& workload, double m,
                      double kappa) const;

  /// Minimizes ExpectedCost over fractional m in [1, max_m]; returns the
  /// fractional optimum through `fractional_m` (if non-null) and the ceiled
  /// integer level.
  uint32_t OptimalM(const std::vector<WorkloadQuery>& workload,
                    uint32_t max_m = 10, double kappa = 4.0,
                    double* fractional_m = nullptr) const;

  /// Samples a query workload from repository columns (Section III-E): tau
  /// uniform in [tau_lo, tau_hi] fractions of the axis extent.
  static std::vector<WorkloadQuery> SampleWorkload(
      const ColumnCatalog& catalog, const double* mapped, uint32_t np,
      double extent, size_t num_queries, Rng* rng, double tau_lo = 0.0,
      double tau_hi = 0.10);

  double extent() const { return extent_; }

 private:
  /// Repository mass (count) in [lo, hi] along axis i, linear-interpolated.
  double AxisMass(uint32_t axis, double lo, double hi) const;
  /// Non-empty leaf cell count at fractional depth m (geometric
  /// interpolation between the exact per-level counts).
  double NonEmptyCells(double m) const;

  uint32_t np_ = 0;
  uint32_t bins_ = 0;
  double extent_ = 2.0;
  size_t total_ = 0;
  /// Per-axis cumulative histogram: cdf_[axis][b] = #vectors with value in
  /// bins [0..b].
  std::vector<std::vector<double>> cdf_;
  /// Exact distinct-cell counts at integer levels 1..max_level.
  std::vector<double> nonempty_;
};

}  // namespace pexeso

#endif  // PEXESO_CORE_COST_MODEL_H_
