#include "core/searcher.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/verify_pipeline.h"

namespace pexeso {

Status PexesoSearcher::Execute(const JoinQuery& jq, ResultSink* sink,
                               SearchStats* stats) const {
  PEXESO_CHECK(jq.vectors != nullptr);
  PEXESO_CHECK(sink != nullptr);
  SearchStats local_stats;
  SearchStats* out_stats = stats != nullptr ? stats : &local_stats;
  const VectorStore& query = *jq.vectors;
  const uint32_t num_q = static_cast<uint32_t>(query.size());
  const size_t num_cols = index_->catalog().num_columns();
  const uint32_t t_abs = jq.EffectiveT();
  const bool topk_mode = jq.mode == QueryMode::kTopK;

  const auto finish = [&](const Status& st) {
    sink->OnDone(st);
    return st;
  };
  if (num_q == 0 || (topk_mode && jq.k == 0)) return finish(Status::OK());
  Status live = jq.CheckLive();
  if (!live.ok()) {
    ++out_stats->deadline_expired;
    return finish(live);
  }

  Stopwatch block_watch;
  // Map the query column into the pivot space and build HGQ (same number of
  // levels as HGRV so leaf cells align, enabling quick browsing).
  const PivotSpace& ps = index_->pivots();
  const std::vector<double> mapped_q =
      ps.MapAll(query.raw().data(), query.size());
  HierarchicalGrid hgq;
  HierarchicalGrid::Options gopts;
  gopts.levels = index_->grid().levels();
  gopts.store_leaf_items = true;
  hgq.Build(mapped_q.data(), query.size(), ps.num_pivots(), ps.AxisExtent(),
            gopts);

  GridBlocker blocker(&index_->grid());
  const BlockResult blocks = blocker.Run(hgq, mapped_q, jq.thresholds.tau,
                                         jq.ablation, out_stats);
  out_stats->block_seconds += block_watch.ElapsedSeconds();

  // The staged verification pipeline: candidate generation (stage 1),
  // column-sharded tiled verification (stage 2), deterministic reduction
  // (stage 3). Serial when jq.intra_query_threads <= 1.
  Stopwatch verify_watch;
  VerifyPipeline pipeline(index_);
  CandidateSet cands;
  pipeline.GenerateCandidates(blocks, num_q, &cands, out_stats);

  // Checkpoint between candidate generation and the tiled stage: a query
  // that expired during blocking never dispatches a verification tile.
  live = jq.CheckLive();
  if (!live.ok()) {
    ++out_stats->deadline_expired;
    out_stats->verify_seconds += verify_watch.ElapsedSeconds();
    return finish(live);
  }

  TopKBound topk_bound(jq.k, jq.topk_floor);
  std::vector<uint8_t> pruned;
  if (topk_mode) pruned.assign(num_cols, 0);
  std::vector<uint32_t> match_map(num_cols, 0);
  const Status verify_st = pipeline.VerifyCandidates(
      cands, query, mapped_q, jq, topk_mode ? &topk_bound : nullptr,
      &match_map, topk_mode ? &pruned : nullptr, out_stats);
  out_stats->verify_seconds += verify_watch.ElapsedSeconds();
  if (!verify_st.ok()) return finish(verify_st);

  std::vector<JoinableColumn> out;
  for (ColumnId col = 0; col < num_cols; ++col) {
    if (index_->IsDeleted(col)) continue;
    if (topk_mode && pruned[col]) continue;
    if (match_map[col] >= t_abs) {
      JoinableColumn jc;
      jc.column = col;
      jc.match_count = match_map[col];
      jc.joinability =
          static_cast<double>(jc.match_count) / static_cast<double>(num_q);
      out.push_back(std::move(jc));
    }
  }
  // kTopK: counts are exact (the pushdown runs in exact-count mode), so
  // ranking the unpruned survivors reproduces the legacy verify-everything
  // wrapper's output bit for bit.
  if (topk_mode) RankTopK(&out, jq.k);
  if (jq.collect_mappings) {
    const Status map_st =
        pipeline.CollectMappings(query, mapped_q, jq, &out, out_stats);
    if (!map_st.ok()) return finish(map_st);
  }
  for (auto& jc : out) sink->OnColumn(std::move(jc));
  return finish(Status::OK());
}

}  // namespace pexeso
