#include "core/searcher.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "core/verify_pipeline.h"

namespace pexeso {

std::vector<JoinableColumn> PexesoSearcher::Search(
    const VectorStore& query, const SearchOptions& options,
    SearchStats* stats) const {
  SearchStats local_stats;
  SearchStats* out_stats = stats != nullptr ? stats : &local_stats;
  const uint32_t num_q = static_cast<uint32_t>(query.size());
  const size_t num_cols = index_->catalog().num_columns();
  const uint32_t t_abs = std::max<uint32_t>(1, options.thresholds.t_abs);

  std::vector<JoinableColumn> out;
  if (num_q == 0) return out;

  Stopwatch block_watch;
  // Map the query column into the pivot space and build HGQ (same number of
  // levels as HGRV so leaf cells align, enabling quick browsing).
  const PivotSpace& ps = index_->pivots();
  const std::vector<double> mapped_q =
      ps.MapAll(query.raw().data(), query.size());
  HierarchicalGrid hgq;
  HierarchicalGrid::Options gopts;
  gopts.levels = index_->grid().levels();
  gopts.store_leaf_items = true;
  hgq.Build(mapped_q.data(), query.size(), ps.num_pivots(), ps.AxisExtent(),
            gopts);

  GridBlocker blocker(&index_->grid());
  const BlockResult blocks = blocker.Run(hgq, mapped_q, options.thresholds.tau,
                                         options.ablation, out_stats);
  out_stats->block_seconds += block_watch.ElapsedSeconds();

  // The staged verification pipeline: candidate generation (stage 1),
  // column-sharded tiled verification (stage 2), deterministic reduction
  // (stage 3). Serial when options.intra_query_threads <= 1.
  Stopwatch verify_watch;
  VerifyPipeline pipeline(index_);
  CandidateSet cands;
  pipeline.GenerateCandidates(blocks, num_q, &cands, out_stats);
  std::vector<uint32_t> match_map(num_cols, 0);
  pipeline.VerifyCandidates(cands, query, mapped_q, options, &match_map,
                            out_stats);
  out_stats->verify_seconds += verify_watch.ElapsedSeconds();

  for (ColumnId col = 0; col < num_cols; ++col) {
    if (index_->IsDeleted(col)) continue;
    if (match_map[col] >= t_abs) {
      JoinableColumn jc;
      jc.column = col;
      jc.match_count = match_map[col];
      jc.joinability =
          static_cast<double>(jc.match_count) / static_cast<double>(num_q);
      out.push_back(std::move(jc));
    }
  }
  if (options.collect_mappings) {
    pipeline.CollectMappings(query, mapped_q, options, &out, out_stats);
  }
  return out;
}

}  // namespace pexeso
