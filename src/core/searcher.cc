#include "core/searcher.h"

#include <algorithm>
#include <queue>

#include "common/stopwatch.h"
#include "vec/kernels.h"

namespace pexeso {

/// Mutable state of one Search() call.
struct PexesoSearcher::Context {
  const SearchOptions* options = nullptr;
  SearchStats* stats = nullptr;
  const VectorStore* query = nullptr;

  std::vector<double> mapped_q;  ///< |Q| x |P|
  HierarchicalGrid hgq;
  BlockResult blocks;

  /// Verification state per column.
  std::vector<uint32_t> match_map;
  std::vector<uint32_t> mismatch_map;
  enum : uint8_t { kActive = 0, kJoinable = 1, kDead = 2 };
  std::vector<uint8_t> state;

  double tau = 0.0;
  uint32_t t_abs = 1;
  uint32_t num_q = 0;
};

std::vector<JoinableColumn> PexesoSearcher::Search(
    const VectorStore& query, const SearchOptions& options,
    SearchStats* stats) const {
  SearchStats local_stats;
  Context ctx;
  ctx.options = &options;
  ctx.stats = stats != nullptr ? stats : &local_stats;
  ctx.query = &query;
  ctx.tau = options.thresholds.tau;
  ctx.t_abs = std::max<uint32_t>(1, options.thresholds.t_abs);
  ctx.num_q = static_cast<uint32_t>(query.size());

  const size_t num_cols = index_->catalog().num_columns();
  ctx.match_map.assign(num_cols, 0);
  ctx.mismatch_map.assign(num_cols, 0);
  ctx.state.assign(num_cols, Context::kActive);

  std::vector<JoinableColumn> out;
  if (ctx.num_q == 0) return out;

  Stopwatch block_watch;
  // Map the query column into the pivot space and build HGQ (same number of
  // levels as HGRV so leaf cells align, enabling quick browsing).
  const PivotSpace& ps = index_->pivots();
  ctx.mapped_q = ps.MapAll(query.raw().data(), query.size());
  HierarchicalGrid::Options gopts;
  gopts.levels = index_->grid().levels();
  gopts.store_leaf_items = true;
  ctx.hgq.Build(ctx.mapped_q.data(), query.size(), ps.num_pivots(),
                ps.AxisExtent(), gopts);

  GridBlocker blocker(&index_->grid());
  ctx.blocks = blocker.Run(ctx.hgq, ctx.mapped_q, ctx.tau, options.ablation,
                           ctx.stats);
  ctx.stats->block_seconds += block_watch.ElapsedSeconds();

  Stopwatch verify_watch;
  Verify(&ctx);
  ctx.stats->verify_seconds += verify_watch.ElapsedSeconds();

  for (ColumnId col = 0; col < num_cols; ++col) {
    if (index_->IsDeleted(col)) continue;
    if (ctx.match_map[col] >= ctx.t_abs) {
      JoinableColumn jc;
      jc.column = col;
      jc.match_count = ctx.match_map[col];
      jc.joinability =
          static_cast<double>(jc.match_count) / static_cast<double>(ctx.num_q);
      out.push_back(std::move(jc));
    }
  }
  if (options.collect_mappings) {
    CollectMappings(&ctx, &out);
  }
  return out;
}

void PexesoSearcher::Verify(Context* ctx) const {
  const InvertedIndex& inv = index_->inverted_index();
  const uint32_t np = ctx->hgq.num_pivots();
  const double tau = ctx->tau;
  const VectorStore& rstore = index_->catalog().store();
  const uint32_t dim = rstore.dim();
  // Kernel path: one comparison-space predicate for the whole search (no
  // virtual call and no sqrt per pair), with norms precomputed when the
  // metric consumes them (cosine).
  const RangePredicate pred(*index_->metric(), tau);
  const float* rnorms = pred.wants_norms() ? rstore.EnsureNorms() : nullptr;
  const float* qnorms =
      pred.wants_norms() ? ctx->query->EnsureNorms() : nullptr;
  const bool use_l1 = ctx->options->ablation.use_lemma1;
  const bool use_l2 = ctx->options->ablation.use_lemma2;
  const bool use_l7 = ctx->options->ablation.use_lemma7;
  const bool exact = ctx->options->exact_joinability;

  struct Cursor {
    std::span<const InvertedIndex::Posting> postings;
    size_t pos = 0;
    bool is_match = false;
  };
  std::vector<Cursor> cursors;
  using HeapEntry = std::pair<ColumnId, uint32_t>;  // (current column, cursor)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  std::vector<uint32_t> active;  // cursors positioned on the current column

  for (uint32_t q = 0; q < ctx->num_q; ++q) {
    const double* mq = ctx->mapped_q.data() + static_cast<size_t>(q) * np;
    const float* qv = ctx->query->View(q);
    const double qn = qnorms != nullptr ? qnorms[q] : 1.0;
    cursors.clear();
    for (uint32_t cell : ctx->blocks.match_cells[q]) {
      auto span = inv.PostingsOf(cell);
      if (!span.empty()) cursors.push_back(Cursor{span, 0, true});
    }
    for (uint32_t cell : ctx->blocks.cand_cells[q]) {
      auto span = inv.PostingsOf(cell);
      if (!span.empty()) cursors.push_back(Cursor{span, 0, false});
    }
    if (cursors.empty()) continue;
    while (!heap.empty()) heap.pop();
    for (uint32_t c = 0; c < cursors.size(); ++c) {
      heap.emplace(cursors[c].postings[0].column, c);
    }
    // DaaT: resolve the (q, column) pairs in increasing column-id order so
    // each pair is decided exactly once even when a column spans many cells.
    while (!heap.empty()) {
      const ColumnId col = heap.top().first;
      active.clear();
      while (!heap.empty() && heap.top().first == col) {
        active.push_back(heap.top().second);
        heap.pop();
      }
      const bool skip = index_->IsDeleted(col) ||
                        ctx->state[col] == Context::kDead ||
                        (!exact && ctx->state[col] == Context::kJoinable);
      if (!skip) {
        bool matched = false;
        for (uint32_t c : active) {
          if (cursors[c].is_match) {
            // Lemma 5/6 guaranteed every vector in this cell matches q, and
            // the column has at least one vector here.
            matched = true;
            break;
          }
        }
        if (!matched) {
          for (uint32_t c : active) {
            if (matched) break;
            const auto& p = cursors[c].postings[cursors[c].pos];
            for (uint32_t k = 0; k < p.vec_count && !matched; ++k) {
              const VecId v = inv.vec_ids()[p.vec_begin + k];
              const double* mx = index_->MappedVec(v);
              if (use_l1) {
                bool filtered = false;
                for (uint32_t i = 0; i < np; ++i) {
                  const double diff = mq[i] - mx[i];
                  if (diff > tau || diff < -tau) {
                    filtered = true;
                    break;
                  }
                }
                if (filtered) {
                  ++ctx->stats->lemma1_filtered;
                  continue;
                }
              }
              if (use_l2) {
                bool pivot_matched = false;
                for (uint32_t i = 0; i < np; ++i) {
                  if (mq[i] + mx[i] <= tau) {
                    pivot_matched = true;
                    break;
                  }
                }
                if (pivot_matched) {
                  ++ctx->stats->lemma2_matched;
                  matched = true;
                  break;
                }
              }
              ++ctx->stats->distance_computations;
              ctx->stats->sqrt_free_comparisons += pred.sqrt_saved();
              const double rn = rnorms != nullptr ? rnorms[v] : 1.0;
              if (pred.MatchNormed(qv, rstore.View(v), dim, qn, rn)) {
                matched = true;
              }
            }
          }
        }
        if (matched) {
          ++ctx->match_map[col];
          if (ctx->match_map[col] >= ctx->t_abs &&
              ctx->state[col] == Context::kActive) {
            ctx->state[col] = Context::kJoinable;
            ++ctx->stats->early_joinable;
          }
        } else {
          ++ctx->mismatch_map[col];
          if (use_l7 && ctx->state[col] == Context::kActive &&
              ctx->num_q - ctx->mismatch_map[col] < ctx->t_abs) {
            // Lemma 7: even if every unresolved query record matched, the
            // column could no longer reach T.
            ctx->state[col] = Context::kDead;
            ++ctx->stats->lemma7_kills;
          }
        }
      }
      // Advance every cursor that was positioned on `col`.
      for (uint32_t c : active) {
        if (++cursors[c].pos < cursors[c].postings.size()) {
          heap.emplace(cursors[c].postings[cursors[c].pos].column, c);
        }
      }
    }
  }
}

void PexesoSearcher::CollectMappings(Context* ctx,
                                     std::vector<JoinableColumn>* out) const {
  const VectorStore& rstore = index_->catalog().store();
  const uint32_t dim = rstore.dim();
  const uint32_t np = index_->pivots().num_pivots();
  const double tau = ctx->tau;
  const RangePredicate pred(*index_->metric(), tau);
  const float* rnorms = pred.wants_norms() ? rstore.EnsureNorms() : nullptr;
  const float* qnorms =
      pred.wants_norms() ? ctx->query->EnsureNorms() : nullptr;
  for (auto& jc : *out) {
    const ColumnMeta& meta = index_->catalog().column(jc.column);
    for (uint32_t q = 0; q < ctx->num_q; ++q) {
      const double* mq = ctx->mapped_q.data() + static_cast<size_t>(q) * np;
      const float* qv = ctx->query->View(q);
      const double qn = qnorms != nullptr ? qnorms[q] : 1.0;
      for (VecId v = meta.first; v < meta.end(); ++v) {
        const double* mx = index_->MappedVec(v);
        bool filtered = false;
        for (uint32_t i = 0; i < np; ++i) {
          const double diff = mq[i] - mx[i];
          if (diff > tau || diff < -tau) {
            filtered = true;
            break;
          }
        }
        if (filtered) continue;
        const double rn = rnorms != nullptr ? rnorms[v] : 1.0;
        if (pred.MatchNormed(qv, rstore.View(v), dim, qn, rn)) {
          jc.mapping.push_back(RecordMatch{q, v});
          break;  // one mapping per query record
        }
      }
    }
    // The mapping scan resolves every query record exactly, so upgrade the
    // (possibly early-terminated) counters to the exact joinability.
    jc.match_count = static_cast<uint32_t>(jc.mapping.size());
    jc.joinability =
        static_cast<double>(jc.match_count) / static_cast<double>(ctx->num_q);
  }
}

}  // namespace pexeso
