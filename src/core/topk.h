#ifndef PEXESO_CORE_TOPK_H_
#define PEXESO_CORE_TOPK_H_

#include <vector>

#include "core/engine.h"
#include "core/searcher.h"

namespace pexeso {

/// \brief Batch search: runs one query column per thread across a pool.
/// `prototype` carries the mode/thresholds/ablation shared by the batch;
/// its `vectors` field is ignored and replaced per query. Results are
/// positionally aligned with `queries`. The index is shared read-only; each
/// worker keeps its own SearchStats, summed into `stats`. Convenience
/// wrapper over BatchQueryRunner for the common PEXESO case;
/// `num_threads == 0` means one thread per hardware thread.
std::vector<std::vector<JoinableColumn>> SearchBatch(
    const PexesoIndex& index, const std::vector<VectorStore>& queries,
    const JoinQuery& prototype, size_t num_threads,
    SearchStats* stats = nullptr);

}  // namespace pexeso

#endif  // PEXESO_CORE_TOPK_H_
