#ifndef PEXESO_CORE_TOPK_H_
#define PEXESO_CORE_TOPK_H_

#include <vector>

#include "core/engine.h"
#include "core/searcher.h"

namespace pexeso {

/// \deprecated Top-k joinable column search, kept one release as a shim
/// over the first-class QueryMode::kTopK (it logs a deprecation note once).
/// New code builds a JoinQuery:
///
///   JoinQuery jq;
///   jq.vectors = &query;
///   jq.mode = QueryMode::kTopK;
///   jq.k = k;
///   jq.thresholds.tau = tau;
///   CollectSink sink;
///   engine.Execute(jq, &sink, stats);
///
/// Unlike the old wrapper — which relaxed T to 1 and exact-verified EVERY
/// column before ranking — kTopK pushes the running k-th-best bound into
/// the engines' verification loops, so non-contending columns are abandoned
/// early (SearchStats::columns_pruned_topk) while the returned top-k stays
/// bit-identical.
std::vector<JoinableColumn> SearchTopK(const JoinSearchEngine& engine,
                                       const VectorStore& query, double tau,
                                       size_t k,
                                       SearchStats* stats = nullptr);

/// \brief Batch search: runs one query column per thread across a pool.
/// Results are positionally aligned with `queries`. The index is shared
/// read-only; each worker keeps its own SearchStats, summed into `stats`.
/// Convenience wrapper over BatchQueryRunner for the common PEXESO case;
/// `num_threads == 0` means one thread per hardware thread.
std::vector<std::vector<JoinableColumn>> SearchBatch(
    const PexesoIndex& index, const std::vector<VectorStore>& queries,
    const SearchOptions& options, size_t num_threads,
    SearchStats* stats = nullptr);

}  // namespace pexeso

#endif  // PEXESO_CORE_TOPK_H_
