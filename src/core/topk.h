#ifndef PEXESO_CORE_TOPK_H_
#define PEXESO_CORE_TOPK_H_

#include <vector>

#include "core/searcher.h"

namespace pexeso {

/// \brief Top-k joinable column search — the ranking variant suggested by
/// the related-work discussion (Bogatu et al. find top-k related tables).
///
/// Returns the k columns with the highest joinability to the query under
/// distance threshold tau, ordered by decreasing joinability (ties by
/// ascending column id). Implemented as an exact-joinability search with the
/// column-count threshold relaxed to 1 match, then ranked; the inverted
/// index and blocking do all the pruning, and Lemma 7 still kills columns
/// that cannot beat the current k-th joinability.
std::vector<JoinableColumn> SearchTopK(const PexesoSearcher& searcher,
                                       const VectorStore& query, double tau,
                                       size_t k,
                                       SearchStats* stats = nullptr);

/// \brief Batch search: runs one query column per thread across a pool.
/// Results are positionally aligned with `queries`. The index is shared
/// read-only; each worker keeps its own SearchStats, summed into `stats`.
std::vector<std::vector<JoinableColumn>> SearchBatch(
    const PexesoIndex& index, const std::vector<VectorStore>& queries,
    const SearchOptions& options, size_t num_threads,
    SearchStats* stats = nullptr);

}  // namespace pexeso

#endif  // PEXESO_CORE_TOPK_H_
