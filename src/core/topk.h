#ifndef PEXESO_CORE_TOPK_H_
#define PEXESO_CORE_TOPK_H_

#include <vector>

#include "core/engine.h"
#include "core/searcher.h"

namespace pexeso {

/// \brief Top-k joinable column search — the ranking variant suggested by
/// the related-work discussion (Bogatu et al. find top-k related tables).
///
/// Returns the k columns with the highest joinability to the query under
/// distance threshold tau, ordered by decreasing joinability (ties by
/// ascending column id). Works over any JoinSearchEngine: the engine runs an
/// exact-joinability search with the column-count threshold relaxed to 1
/// match, then the results are ranked.
std::vector<JoinableColumn> SearchTopK(const JoinSearchEngine& engine,
                                       const VectorStore& query, double tau,
                                       size_t k,
                                       SearchStats* stats = nullptr);

/// \brief Batch search: runs one query column per thread across a pool.
/// Results are positionally aligned with `queries`. The index is shared
/// read-only; each worker keeps its own SearchStats, summed into `stats`.
/// Convenience wrapper over BatchQueryRunner for the common PEXESO case;
/// `num_threads == 0` means one thread per hardware thread.
std::vector<std::vector<JoinableColumn>> SearchBatch(
    const PexesoIndex& index, const std::vector<VectorStore>& queries,
    const SearchOptions& options, size_t num_threads,
    SearchStats* stats = nullptr);

}  // namespace pexeso

#endif  // PEXESO_CORE_TOPK_H_
