#ifndef PEXESO_CORE_THRESHOLDS_H_
#define PEXESO_CORE_THRESHOLDS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "vec/metric.h"

namespace pexeso {

/// \brief Absolute thresholds for one search: the distance threshold tau and
/// the joinability count threshold T (number of query records that must have
/// at least one match).
struct SearchThresholds {
  double tau = 0.0;
  uint32_t t_abs = 1;
};

/// \brief Fractional threshold specification (Section V of the paper).
///
/// Users give tau as a fraction of the maximum distance between unit-length
/// vectors (e.g. 0.06 = "6% of max distance", the paper default) and T as a
/// fraction of the query column size (paper default 0.6). Vectors must be
/// unit-normalized for the max distance to be fixed.
struct FractionalThresholds {
  double tau_fraction = 0.06;
  double t_fraction = 0.60;

  /// Resolves to absolute thresholds for a query of `query_size` records
  /// under `metric` at dimensionality `dim`.
  SearchThresholds Resolve(const Metric& metric, uint32_t dim,
                           size_t query_size) const {
    SearchThresholds out;
    out.tau = tau_fraction * metric.MaxUnitDistance(dim);
    out.t_abs = static_cast<uint32_t>(
        std::max<int64_t>(1, static_cast<int64_t>(std::ceil(
                                 t_fraction * static_cast<double>(query_size)))));
    return out;
  }
};

}  // namespace pexeso

#endif  // PEXESO_CORE_THRESHOLDS_H_
