#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

namespace pexeso {

void RandomForest::Fit(const Dataset& data, const Options& options) {
  options_ = options;
  num_features_ = data.num_features;
  trees_.assign(options.num_trees, DecisionTree());
  const size_t n = data.num_rows();
  PEXESO_CHECK(n > 0);

  DecisionTree::Options topts;
  topts.regression = options.regression;
  topts.num_classes = options.num_classes;
  topts.max_depth = options.max_depth;
  topts.min_samples_leaf = options.min_samples_leaf;
  topts.max_features = std::max<uint32_t>(
      1, static_cast<uint32_t>(
             std::sqrt(static_cast<double>(data.num_features))));

  for (uint32_t t = 0; t < options.num_trees; ++t) {
    Rng rng(options.seed * 1315423911ULL + t);
    std::vector<size_t> bootstrap(n);
    for (size_t i = 0; i < n; ++i) bootstrap[i] = rng.Uniform(n);
    trees_[t].Fit(data, bootstrap, topts, &rng);
  }
}

uint32_t RandomForest::PredictClass(const float* row) const {
  std::vector<uint32_t> votes(options_.num_classes, 0);
  for (const auto& t : trees_) {
    ++votes[static_cast<size_t>(t.Predict(row))];
  }
  return static_cast<uint32_t>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

double RandomForest::PredictValue(const float* row) const {
  double sum = 0.0;
  for (const auto& t : trees_) sum += t.Predict(row);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::FeatureImportances() const {
  std::vector<double> imp(num_features_, 0.0);
  for (const auto& t : trees_) {
    const auto& ti = t.feature_importance();
    for (size_t f = 0; f < imp.size(); ++f) imp[f] += ti[f];
  }
  double total = 0.0;
  for (double v : imp) total += v;
  if (total > 0) {
    for (auto& v : imp) v /= total;
  }
  return imp;
}

double MicroF1(const std::vector<uint32_t>& truth,
               const std::vector<uint32_t>& predicted) {
  PEXESO_CHECK(truth.size() == predicted.size() && !truth.empty());
  // For single-label multi-class, micro-averaged precision == recall ==
  // accuracy, hence micro-F1 == accuracy.
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

double MeanSquaredError(const std::vector<double>& truth,
                        const std::vector<double>& predicted) {
  PEXESO_CHECK(truth.size() == predicted.size() && !truth.empty());
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - predicted[i];
    acc += d * d;
  }
  return acc / static_cast<double>(truth.size());
}

std::vector<uint32_t> KFoldAssignment(size_t n, uint32_t k, uint64_t seed) {
  std::vector<uint32_t> fold(n);
  for (size_t i = 0; i < n; ++i) fold[i] = static_cast<uint32_t>(i % k);
  Rng rng(seed);
  rng.Shuffle(&fold);
  return fold;
}

namespace {

template <typename EvalFn>
CvScore CrossValidate(const Dataset& data, uint32_t folds, uint64_t seed,
                      EvalFn eval) {
  const size_t n = data.num_rows();
  const auto fold_of = KFoldAssignment(n, folds, seed);
  std::vector<double> scores;
  for (uint32_t f = 0; f < folds; ++f) {
    std::vector<size_t> train_rows, test_rows;
    for (size_t i = 0; i < n; ++i) {
      (fold_of[i] == f ? test_rows : train_rows).push_back(i);
    }
    if (train_rows.empty() || test_rows.empty()) continue;
    scores.push_back(eval(data.SelectRows(train_rows),
                          data.SelectRows(test_rows)));
  }
  CvScore out;
  if (scores.empty()) return out;
  for (double s : scores) out.mean += s;
  out.mean /= static_cast<double>(scores.size());
  for (double s : scores) out.stddev += (s - out.mean) * (s - out.mean);
  out.stddev = std::sqrt(out.stddev / static_cast<double>(scores.size()));
  return out;
}

}  // namespace

CvScore CrossValidateClassifier(const Dataset& data,
                                const RandomForest::Options& options,
                                uint32_t folds, uint64_t seed) {
  return CrossValidate(data, folds, seed,
                       [&](const Dataset& train, const Dataset& test) {
                         RandomForest forest;
                         forest.Fit(train, options);
                         std::vector<uint32_t> truth, pred;
                         for (size_t i = 0; i < test.num_rows(); ++i) {
                           truth.push_back(
                               static_cast<uint32_t>(test.y[i]));
                           pred.push_back(forest.PredictClass(test.Row(i)));
                         }
                         return MicroF1(truth, pred);
                       });
}

CvScore CrossValidateRegressor(const Dataset& data,
                               const RandomForest::Options& options,
                               uint32_t folds, uint64_t seed) {
  return CrossValidate(data, folds, seed,
                       [&](const Dataset& train, const Dataset& test) {
                         RandomForest forest;
                         forest.Fit(train, options);
                         std::vector<double> truth, pred;
                         for (size_t i = 0; i < test.num_rows(); ++i) {
                           truth.push_back(test.y[i]);
                           pred.push_back(forest.PredictValue(test.Row(i)));
                         }
                         return MeanSquaredError(truth, pred);
                       });
}

std::vector<uint32_t> RecursiveFeatureElimination(
    const Dataset& data, const RandomForest::Options& options,
    uint32_t target_features, uint32_t drop_per_round) {
  std::vector<uint32_t> kept(data.num_features);
  for (uint32_t f = 0; f < kept.size(); ++f) kept[f] = f;
  while (kept.size() > target_features) {
    Dataset current = data.SelectFeatures(kept);
    RandomForest forest;
    forest.Fit(current, options);
    auto imp = forest.FeatureImportances();
    // Sort current feature positions by importance ascending.
    std::vector<uint32_t> order(kept.size());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](uint32_t a, uint32_t b) { return imp[a] < imp[b]; });
    const uint32_t drop = std::min<uint32_t>(
        drop_per_round,
        static_cast<uint32_t>(kept.size()) - target_features);
    std::vector<bool> dead(kept.size(), false);
    for (uint32_t i = 0; i < drop; ++i) dead[order[i]] = true;
    std::vector<uint32_t> next;
    for (uint32_t i = 0; i < kept.size(); ++i) {
      if (!dead[i]) next.push_back(kept[i]);
    }
    kept = std::move(next);
  }
  return kept;
}

}  // namespace pexeso
