#include "ml/dataset.h"

namespace pexeso {

Dataset Dataset::SelectFeatures(const std::vector<uint32_t>& keep) const {
  Dataset out;
  out.num_features = keep.size();
  out.y = y;
  const size_t rows = num_rows();
  out.x.reserve(rows * keep.size());
  for (size_t r = 0; r < rows; ++r) {
    const float* row = Row(r);
    for (uint32_t f : keep) out.x.push_back(row[f]);
  }
  for (uint32_t f : keep) {
    out.feature_names.push_back(f < feature_names.size() ? feature_names[f]
                                                         : std::string());
  }
  return out;
}

Dataset Dataset::SelectRows(const std::vector<size_t>& rows) const {
  Dataset out;
  out.num_features = num_features;
  out.feature_names = feature_names;
  out.x.reserve(rows.size() * num_features);
  out.y.reserve(rows.size());
  for (size_t r : rows) {
    const float* row = Row(r);
    out.x.insert(out.x.end(), row, row + num_features);
    out.y.push_back(y[r]);
  }
  return out;
}

void Dataset::ImputeMissing() {
  const size_t rows = num_rows();
  for (size_t f = 0; f < num_features; ++f) {
    double sum = 0.0;
    size_t finite = 0;
    for (size_t r = 0; r < rows; ++r) {
      const float v = x[r * num_features + f];
      if (std::isfinite(v)) {
        sum += v;
        ++finite;
      }
    }
    const float mean =
        finite > 0 ? static_cast<float>(sum / static_cast<double>(finite))
                   : 0.0f;
    for (size_t r = 0; r < rows; ++r) {
      float& v = x[r * num_features + f];
      if (!std::isfinite(v)) v = mean;
    }
  }
}

}  // namespace pexeso
