#ifndef PEXESO_ML_DATASET_H_
#define PEXESO_ML_DATASET_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace pexeso {

/// \brief Dense tabular dataset for the Section VI-C ML tasks: row-major
/// float features plus a target (class index or regression value). Missing
/// values are NaN until imputed (see enrich.h).
struct Dataset {
  size_t num_features = 0;
  std::vector<float> x;  ///< num_rows x num_features
  std::vector<float> y;  ///< targets
  std::vector<std::string> feature_names;

  size_t num_rows() const {
    return num_features == 0 ? 0 : x.size() / num_features;
  }
  const float* Row(size_t i) const { return x.data() + i * num_features; }

  void AddRow(const std::vector<float>& row, float target) {
    PEXESO_DCHECK(row.size() == num_features);
    x.insert(x.end(), row.begin(), row.end());
    y.push_back(target);
  }

  /// Restricts the dataset to a subset of feature indices.
  Dataset SelectFeatures(const std::vector<uint32_t>& keep) const;

  /// Restricts the dataset to a subset of row indices.
  Dataset SelectRows(const std::vector<size_t>& rows) const;

  /// Replaces NaNs by the per-feature mean of the finite values (0 if a
  /// feature is entirely missing).
  void ImputeMissing();
};

}  // namespace pexeso

#endif  // PEXESO_ML_DATASET_H_
