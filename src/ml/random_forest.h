#ifndef PEXESO_ML_RANDOM_FOREST_H_
#define PEXESO_ML_RANDOM_FOREST_H_

#include <vector>

#include "ml/decision_tree.h"

namespace pexeso {

/// \brief Random forest (bootstrap aggregation of CART trees with feature
/// subsampling) — the model trained on enriched tables in Section VI-C.
class RandomForest {
 public:
  struct Options {
    bool regression = false;
    uint32_t num_classes = 2;
    uint32_t num_trees = 40;
    uint32_t max_depth = 10;
    uint32_t min_samples_leaf = 2;
    uint64_t seed = 47;
  };

  void Fit(const Dataset& data, const Options& options);

  /// Majority class over trees (classification only).
  uint32_t PredictClass(const float* row) const;
  /// Mean prediction over trees (regression only).
  double PredictValue(const float* row) const;

  /// Normalized impurity-decrease importances (sums to 1 when nonzero).
  std::vector<double> FeatureImportances() const;

  size_t num_trees() const { return trees_.size(); }

 private:
  Options options_;
  size_t num_features_ = 0;
  std::vector<DecisionTree> trees_;
};

/// micro-F1 for single-label multi-class predictions (equals accuracy).
double MicroF1(const std::vector<uint32_t>& truth,
               const std::vector<uint32_t>& predicted);

/// Mean squared error.
double MeanSquaredError(const std::vector<double>& truth,
                        const std::vector<double>& predicted);

/// Deterministic k-fold split of `n` rows: fold_of[i] in [0, k).
std::vector<uint32_t> KFoldAssignment(size_t n, uint32_t k, uint64_t seed);

/// \brief Cross-validated evaluation used by the Table V harness.
struct CvScore {
  double mean = 0.0;
  double stddev = 0.0;
};

/// k-fold CV micro-F1 of a classification forest.
CvScore CrossValidateClassifier(const Dataset& data,
                                const RandomForest::Options& options,
                                uint32_t folds, uint64_t seed);

/// k-fold CV MSE of a regression forest.
CvScore CrossValidateRegressor(const Dataset& data,
                               const RandomForest::Options& options,
                               uint32_t folds, uint64_t seed);

/// \brief Recursive feature elimination: repeatedly train a forest and drop
/// the lowest-importance features until `target_features` remain. Returns
/// the surviving feature indices (into the original dataset).
std::vector<uint32_t> RecursiveFeatureElimination(
    const Dataset& data, const RandomForest::Options& options,
    uint32_t target_features, uint32_t drop_per_round = 2);

}  // namespace pexeso

#endif  // PEXESO_ML_RANDOM_FOREST_H_
