#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pexeso {

namespace {

/// Gini impurity of class counts.
double Gini(const std::vector<size_t>& counts, size_t total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

}  // namespace

void DecisionTree::Fit(const Dataset& data, const std::vector<size_t>& rows,
                       const Options& options, Rng* rng) {
  options_ = options;
  nodes_.clear();
  importance_.assign(data.num_features, 0.0);
  std::vector<size_t> work = rows;
  if (work.empty()) {
    work.resize(data.num_rows());
    for (size_t i = 0; i < work.size(); ++i) work[i] = i;
  }
  Grow(data, &work, 0, work.size(), 0, rng);
}

float DecisionTree::LeafValue(const Dataset& data,
                              const std::vector<size_t>& rows, size_t begin,
                              size_t end) const {
  if (options_.regression) {
    double sum = 0.0;
    for (size_t i = begin; i < end; ++i) sum += data.y[rows[i]];
    return static_cast<float>(sum / static_cast<double>(end - begin));
  }
  std::vector<size_t> counts(options_.num_classes, 0);
  for (size_t i = begin; i < end; ++i) {
    ++counts[static_cast<size_t>(data.y[rows[i]])];
  }
  size_t best = 0;
  for (size_t c = 1; c < counts.size(); ++c) {
    if (counts[c] > counts[best]) best = c;
  }
  return static_cast<float>(best);
}

double DecisionTree::Impurity(const Dataset& data,
                              const std::vector<size_t>& rows, size_t begin,
                              size_t end) const {
  if (options_.regression) {
    double sum = 0.0, sum2 = 0.0;
    const double n = static_cast<double>(end - begin);
    for (size_t i = begin; i < end; ++i) {
      const double v = data.y[rows[i]];
      sum += v;
      sum2 += v * v;
    }
    const double mean = sum / n;
    return sum2 / n - mean * mean;
  }
  std::vector<size_t> counts(options_.num_classes, 0);
  for (size_t i = begin; i < end; ++i) {
    ++counts[static_cast<size_t>(data.y[rows[i]])];
  }
  return Gini(counts, end - begin);
}

int32_t DecisionTree::Grow(const Dataset& data, std::vector<size_t>* rows,
                           size_t begin, size_t end, uint32_t depth,
                           Rng* rng) {
  const size_t n = end - begin;
  const int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{});

  const double parent_impurity = Impurity(data, *rows, begin, end);
  const bool stop = depth >= options_.max_depth ||
                    n < 2 * options_.min_samples_leaf ||
                    parent_impurity <= 1e-12;
  if (stop) {
    nodes_[node_id].value = LeafValue(data, *rows, begin, end);
    return node_id;
  }

  // Candidate features.
  const uint32_t f_total = static_cast<uint32_t>(data.num_features);
  uint32_t f_take = options_.max_features == 0
                        ? f_total
                        : std::min(options_.max_features, f_total);
  std::vector<size_t> features;
  if (f_take == f_total) {
    features.resize(f_total);
    for (uint32_t f = 0; f < f_total; ++f) features[f] = f;
  } else {
    features = rng->SampleIndices(f_total, f_take);
  }

  // Best split across candidate features; rows are sorted per feature and
  // impurity evaluated at boundaries between distinct values.
  double best_gain = 1e-9;
  int32_t best_feature = -1;
  float best_threshold = 0.0f;

  std::vector<std::pair<float, size_t>> sorted(n);
  std::vector<size_t> left_counts, right_counts;
  for (size_t f : features) {
    for (size_t i = 0; i < n; ++i) {
      const size_t r = (*rows)[begin + i];
      sorted[i] = {data.Row(r)[f], r};
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;

    if (options_.regression) {
      // Prefix sums of y.
      double lsum = 0.0, lsum2 = 0.0;
      double tsum = 0.0, tsum2 = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double v = data.y[sorted[i].second];
        tsum += v;
        tsum2 += v * v;
      }
      for (size_t i = 0; i + 1 < n; ++i) {
        const double v = data.y[sorted[i].second];
        lsum += v;
        lsum2 += v * v;
        if (sorted[i].first == sorted[i + 1].first) continue;
        const size_t ln = i + 1, rn = n - ln;
        if (ln < options_.min_samples_leaf || rn < options_.min_samples_leaf) {
          continue;
        }
        const double lmean = lsum / ln;
        const double rmean = (tsum - lsum) / rn;
        const double lvar = lsum2 / ln - lmean * lmean;
        const double rvar = (tsum2 - lsum2) / rn - rmean * rmean;
        const double gain = parent_impurity -
                            (lvar * ln + rvar * rn) / static_cast<double>(n);
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int32_t>(f);
          best_threshold = (sorted[i].first + sorted[i + 1].first) * 0.5f;
        }
      }
    } else {
      left_counts.assign(options_.num_classes, 0);
      right_counts.assign(options_.num_classes, 0);
      for (size_t i = 0; i < n; ++i) {
        ++right_counts[static_cast<size_t>(data.y[sorted[i].second])];
      }
      for (size_t i = 0; i + 1 < n; ++i) {
        const size_t cls = static_cast<size_t>(data.y[sorted[i].second]);
        ++left_counts[cls];
        --right_counts[cls];
        if (sorted[i].first == sorted[i + 1].first) continue;
        const size_t ln = i + 1, rn = n - ln;
        if (ln < options_.min_samples_leaf || rn < options_.min_samples_leaf) {
          continue;
        }
        const double gain =
            parent_impurity - (Gini(left_counts, ln) * ln +
                               Gini(right_counts, rn) * rn) /
                                  static_cast<double>(n);
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int32_t>(f);
          best_threshold = (sorted[i].first + sorted[i + 1].first) * 0.5f;
        }
      }
    }
  }

  if (best_feature < 0) {
    nodes_[node_id].value = LeafValue(data, *rows, begin, end);
    return node_id;
  }

  // Partition rows in place.
  auto mid_it = std::partition(
      rows->begin() + begin, rows->begin() + end, [&](size_t r) {
        return data.Row(r)[best_feature] <= best_threshold;
      });
  const size_t mid = static_cast<size_t>(mid_it - rows->begin());
  if (mid == begin || mid == end) {  // numeric degeneracy: make a leaf
    nodes_[node_id].value = LeafValue(data, *rows, begin, end);
    return node_id;
  }

  importance_[best_feature] += best_gain * static_cast<double>(n);
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int32_t left = Grow(data, rows, begin, mid, depth + 1, rng);
  const int32_t right = Grow(data, rows, mid, end, depth + 1, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::Predict(const float* row) const {
  int32_t node = 0;
  while (nodes_[node].feature >= 0) {
    node = row[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

}  // namespace pexeso
