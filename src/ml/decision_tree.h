#ifndef PEXESO_ML_DECISION_TREE_H_
#define PEXESO_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"

namespace pexeso {

/// \brief CART decision tree (classification by Gini impurity, regression by
/// variance reduction). Substrate for RandomForest — the Table V model.
class DecisionTree {
 public:
  struct Options {
    bool regression = false;
    uint32_t num_classes = 2;        ///< ignored for regression
    uint32_t max_depth = 10;
    uint32_t min_samples_leaf = 2;
    /// Features examined per split; 0 = all (forest passes sqrt(F)).
    uint32_t max_features = 0;
  };

  /// Fits on the rows of `data` listed in `rows` (bootstrap sample for
  /// forests). `rng` drives feature sampling.
  void Fit(const Dataset& data, const std::vector<size_t>& rows,
           const Options& options, Rng* rng);

  /// Predicted class index (classification) or value (regression).
  double Predict(const float* row) const;

  /// Total impurity decrease attributed to each feature.
  const std::vector<double>& feature_importance() const {
    return importance_;
  }

 private:
  struct Node {
    int32_t feature = -1;   ///< -1 for leaves
    float threshold = 0.0f;
    int32_t left = -1, right = -1;
    float value = 0.0f;     ///< class index or mean
  };

  int32_t Grow(const Dataset& data, std::vector<size_t>* rows, size_t begin,
               size_t end, uint32_t depth, Rng* rng);
  float LeafValue(const Dataset& data, const std::vector<size_t>& rows,
                  size_t begin, size_t end) const;
  double Impurity(const Dataset& data, const std::vector<size_t>& rows,
                  size_t begin, size_t end) const;

  Options options_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
};

}  // namespace pexeso

#endif  // PEXESO_ML_DECISION_TREE_H_
