#ifndef PEXESO_LA_PCA_H_
#define PEXESO_LA_PCA_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace pexeso {

/// \brief Principal component analysis via power iteration with deflation.
///
/// Substrate for (a) the PCA-based pivot selection of Mao et al. [22] used by
/// PEXESO (Section III-D) and (b) the 2-d projections that back the JSD
/// column histograms of the partitioner (Section IV). Covariance is
/// accumulated in double; dimensionality in this library is <= a few hundred,
/// so the dense dim x dim covariance is cheap relative to the data scan.
class Pca {
 public:
  /// Fits `num_components` principal components of `n` packed `dim`-d rows.
  /// At most `max_rows` rows are sampled (deterministically from `seed`) to
  /// bound the covariance accumulation cost.
  void Fit(const float* data, size_t n, uint32_t dim, uint32_t num_components,
           size_t max_rows = 20000, uint64_t seed = 42);

  uint32_t dim() const { return dim_; }
  uint32_t num_components() const {
    return static_cast<uint32_t>(components_.size());
  }

  /// The k-th unit-norm principal axis.
  const std::vector<double>& component(uint32_t k) const {
    return components_[k];
  }

  /// Eigenvalue (variance) of the k-th component.
  double eigenvalue(uint32_t k) const { return eigenvalues_[k]; }

  /// Projects a vector onto component k (centered).
  double Project(const float* v, uint32_t k) const;

  /// Per-dimension mean of the fitted sample.
  const std::vector<double>& mean() const { return mean_; }

 private:
  uint32_t dim_ = 0;
  std::vector<double> mean_;
  std::vector<std::vector<double>> components_;
  std::vector<double> eigenvalues_;
};

/// \brief Lloyd's k-means over packed float rows; substrate for the product
/// quantization codebooks and the average-k-means partitioning baseline.
class KMeans {
 public:
  struct Options {
    uint32_t k = 8;
    uint32_t max_iters = 25;
    uint64_t seed = 7;
  };

  /// Runs k-means; centroids() afterwards holds k rows of `dim` floats.
  /// Initialization is k-means++ style (distance-weighted seeding).
  void Fit(const float* data, size_t n, uint32_t dim, const Options& opts);

  const std::vector<float>& centroids() const { return centroids_; }
  uint32_t k() const { return k_; }
  uint32_t dim() const { return dim_; }

  /// Index of the nearest centroid to v (L2).
  uint32_t Assign(const float* v) const;

  /// Squared L2 distance from v to centroid c.
  double DistanceTo(const float* v, uint32_t c) const;

 private:
  uint32_t k_ = 0;
  uint32_t dim_ = 0;
  std::vector<float> centroids_;
};

}  // namespace pexeso

#endif  // PEXESO_LA_PCA_H_
