#include "la/pca.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.h"

namespace pexeso {

void Pca::Fit(const float* data, size_t n, uint32_t dim,
              uint32_t num_components, size_t max_rows, uint64_t seed) {
  PEXESO_CHECK(n > 0 && dim > 0);
  dim_ = dim;
  num_components = std::min<uint32_t>(num_components, dim);

  Rng rng(seed);
  std::vector<size_t> rows;
  if (n > max_rows) {
    rows = rng.SampleIndices(n, max_rows);
  } else {
    rows.resize(n);
    for (size_t i = 0; i < n; ++i) rows[i] = i;
  }
  const size_t m = rows.size();

  mean_.assign(dim, 0.0);
  for (size_t r : rows) {
    const float* v = data + r * dim;
    for (uint32_t j = 0; j < dim; ++j) mean_[j] += v[j];
  }
  for (uint32_t j = 0; j < dim; ++j) mean_[j] /= static_cast<double>(m);

  // Dense covariance (upper triangle mirrored).
  std::vector<double> cov(static_cast<size_t>(dim) * dim, 0.0);
  std::vector<double> centered(dim);
  for (size_t r : rows) {
    const float* v = data + r * dim;
    for (uint32_t j = 0; j < dim; ++j) centered[j] = v[j] - mean_[j];
    for (uint32_t a = 0; a < dim; ++a) {
      const double ca = centered[a];
      double* row = cov.data() + static_cast<size_t>(a) * dim;
      for (uint32_t b = a; b < dim; ++b) row[b] += ca * centered[b];
    }
  }
  const double inv_m = 1.0 / static_cast<double>(m);
  for (uint32_t a = 0; a < dim; ++a) {
    for (uint32_t b = a; b < dim; ++b) {
      const double v = cov[static_cast<size_t>(a) * dim + b] * inv_m;
      cov[static_cast<size_t>(a) * dim + b] = v;
      cov[static_cast<size_t>(b) * dim + a] = v;
    }
  }

  components_.clear();
  eigenvalues_.clear();
  std::vector<double> x(dim), y(dim);
  for (uint32_t k = 0; k < num_components; ++k) {
    // Power iteration on the deflated covariance.
    for (uint32_t j = 0; j < dim; ++j) x[j] = rng.Normal();
    double lambda = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // y = Cov * x
      for (uint32_t a = 0; a < dim; ++a) {
        const double* row = cov.data() + static_cast<size_t>(a) * dim;
        double acc = 0.0;
        for (uint32_t b = 0; b < dim; ++b) acc += row[b] * x[b];
        y[a] = acc;
      }
      double norm = 0.0;
      for (uint32_t j = 0; j < dim; ++j) norm += y[j] * y[j];
      norm = std::sqrt(norm);
      if (norm < 1e-14) {  // degenerate direction: stop extracting
        lambda = 0.0;
        for (uint32_t j = 0; j < dim; ++j) y[j] = (j == k % dim) ? 1.0 : 0.0;
        x = y;
        break;
      }
      double new_lambda = norm;
      bool converged = std::fabs(new_lambda - lambda) <= 1e-10 * new_lambda;
      lambda = new_lambda;
      for (uint32_t j = 0; j < dim; ++j) x[j] = y[j] / norm;
      if (converged && iter >= 3) break;
    }
    components_.push_back(x);
    eigenvalues_.push_back(lambda);
    // Deflate: Cov -= lambda * x x^T
    for (uint32_t a = 0; a < dim; ++a) {
      for (uint32_t b = 0; b < dim; ++b) {
        cov[static_cast<size_t>(a) * dim + b] -= lambda * x[a] * x[b];
      }
    }
  }
}

double Pca::Project(const float* v, uint32_t k) const {
  PEXESO_DCHECK(k < components_.size());
  const auto& c = components_[k];
  double acc = 0.0;
  for (uint32_t j = 0; j < dim_; ++j) acc += (v[j] - mean_[j]) * c[j];
  return acc;
}

void KMeans::Fit(const float* data, size_t n, uint32_t dim,
                 const Options& opts) {
  PEXESO_CHECK(n > 0 && dim > 0 && opts.k > 0);
  k_ = static_cast<uint32_t>(std::min<size_t>(opts.k, n));
  dim_ = dim;
  Rng rng(opts.seed);

  // k-means++ seeding.
  centroids_.assign(static_cast<size_t>(k_) * dim, 0.0f);
  std::vector<double> min_d2(n, std::numeric_limits<double>::max());
  size_t first = rng.Uniform(n);
  std::memcpy(centroids_.data(), data + first * dim, dim * sizeof(float));
  for (uint32_t c = 1; c < k_; ++c) {
    const float* prev = centroids_.data() + static_cast<size_t>(c - 1) * dim;
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const float* v = data + i * dim;
      double d2 = 0.0;
      for (uint32_t j = 0; j < dim; ++j) {
        const double d = static_cast<double>(v[j]) - prev[j];
        d2 += d * d;
      }
      if (d2 < min_d2[i]) min_d2[i] = d2;
      total += min_d2[i];
    }
    size_t pick = 0;
    if (total > 0.0) {
      double target = rng.UniformDouble() * total;
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += min_d2[i];
        if (acc >= target) {
          pick = i;
          break;
        }
      }
    } else {
      pick = rng.Uniform(n);
    }
    std::memcpy(centroids_.data() + static_cast<size_t>(c) * dim,
                data + pick * dim, dim * sizeof(float));
  }

  std::vector<uint32_t> assign(n, 0);
  std::vector<double> sums(static_cast<size_t>(k_) * dim);
  std::vector<size_t> counts(k_);
  for (uint32_t iter = 0; iter < opts.max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      uint32_t best = Assign(data + i * dim);
      if (best != assign[i]) {
        assign[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (size_t i = 0; i < n; ++i) {
      const float* v = data + i * dim;
      double* s = sums.data() + static_cast<size_t>(assign[i]) * dim;
      for (uint32_t j = 0; j < dim; ++j) s[j] += v[j];
      ++counts[assign[i]];
    }
    for (uint32_t c = 0; c < k_; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        size_t pick = rng.Uniform(n);
        std::memcpy(centroids_.data() + static_cast<size_t>(c) * dim,
                    data + pick * dim, dim * sizeof(float));
        continue;
      }
      float* ctr = centroids_.data() + static_cast<size_t>(c) * dim;
      for (uint32_t j = 0; j < dim; ++j) {
        ctr[j] = static_cast<float>(sums[static_cast<size_t>(c) * dim + j] /
                                    static_cast<double>(counts[c]));
      }
    }
  }
}

uint32_t KMeans::Assign(const float* v) const {
  uint32_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (uint32_t c = 0; c < k_; ++c) {
    const double d = DistanceTo(v, c);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

double KMeans::DistanceTo(const float* v, uint32_t c) const {
  const float* ctr = centroids_.data() + static_cast<size_t>(c) * dim_;
  double acc = 0.0;
  for (uint32_t j = 0; j < dim_; ++j) {
    const double d = static_cast<double>(v[j]) - ctr[j];
    acc += d * d;
  }
  return acc;
}

}  // namespace pexeso
