#ifndef PEXESO_GRID_HIERARCHICAL_GRID_H_
#define PEXESO_GRID_HIERARCHICAL_GRID_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/serde.h"
#include "common/status.h"
#include "grid/cell_key.h"
#include "vec/vector_store.h"

namespace pexeso {

/// \brief m-level hierarchical grid over the pivot space (Section III-B).
///
/// Level l in [1..m] divides the pivot space [0, extent]^|P| into 2^(|P|*l)
/// hyper-cells; only non-empty cells are materialized. Leaf cells (level m)
/// optionally carry the ids of the vectors they contain: the query grid HGQ
/// always does (Algorithm 1 iterates query vectors in leaf cells), while for
/// the repository grid HGRV the per-cell contents live in the inverted index.
class HierarchicalGrid {
 public:
  /// One materialized cell. Geometry is implicit in (level, coords).
  struct Cell {
    CellCoord coords;
    std::vector<uint32_t> children;  ///< indices into the next level's cells
    std::vector<VecId> items;        ///< vector ids (leaf level only)
  };

  struct Options {
    uint32_t levels = 4;          ///< m, number of levels below the root
    bool store_leaf_items = true; ///< keep vector ids in leaf cells
  };

  HierarchicalGrid() = default;

  /// Builds the grid over `n` mapped vectors (row-major n x num_pivots
  /// doubles, coordinates in [0, extent]).
  void Build(const double* mapped, size_t n, uint32_t num_pivots,
             double extent, const Options& options);

  uint32_t levels() const { return levels_; }
  uint32_t num_pivots() const { return num_pivots_; }
  double extent() const { return extent_; }
  size_t num_vectors() const { return num_vectors_; }

  /// Cells of level l (1-based, l in [1..levels]).
  const std::vector<Cell>& CellsAtLevel(uint32_t l) const {
    PEXESO_DCHECK(l >= 1 && l <= levels_);
    return levels_cells_[l - 1];
  }

  /// Indices of the level-1 cells (children of the conceptual root).
  std::vector<uint32_t> RootChildren() const;

  /// Leaf cells (level == levels()).
  const std::vector<Cell>& LeafCells() const { return levels_cells_.back(); }

  /// Edge length of a cell at level l.
  double CellSide(uint32_t l) const {
    return extent_ / static_cast<double>(1u << l);
  }

  /// Axis-aligned bounds of cell `c` at level `l` on axis `axis`.
  double CellLower(uint32_t l, const Cell& c, uint32_t axis) const {
    return static_cast<double>(c.coords.c[axis]) * CellSide(l);
  }
  double CellUpper(uint32_t l, const Cell& c, uint32_t axis) const {
    return static_cast<double>(c.coords.c[axis] + 1) * CellSide(l);
  }

  /// Leaf cell index containing vector `v` (as assigned during Build).
  uint32_t LeafOf(VecId v) const {
    PEXESO_DCHECK(v < leaf_of_.size());
    return leaf_of_[v];
  }

  /// Looks up a leaf cell by coordinates; returns -1 if empty/absent.
  int64_t FindLeaf(const CellCoord& coords) const;

  /// Collects the leaf-cell indices of the subtree rooted at cell `idx` of
  /// level `l` into `out` (appended).
  void CollectLeaves(uint32_t l, uint32_t idx, std::vector<uint32_t>* out) const;

  /// Grid coordinates of a mapped vector at level l.
  CellCoord CoordsOf(const double* mapped_vec, uint32_t l) const;

  /// Inserts one mapped vector incrementally (column append, Section III-E):
  /// O(|P| + m) — creates/locates the cell chain and returns the leaf index.
  uint32_t Insert(const double* mapped_vec, VecId id, bool store_item);

  /// Approximate heap footprint in bytes (for the Figure 6b index sizes).
  size_t MemoryBytes() const;

  void Serialize(BinaryWriter* w) const;
  Status Deserialize(BinaryReader* r);

 private:
  uint32_t levels_ = 0;
  uint32_t num_pivots_ = 0;
  double extent_ = 2.0;
  size_t num_vectors_ = 0;
  bool store_leaf_items_ = true;
  /// levels_cells_[l-1] holds the cells of level l.
  std::vector<std::vector<Cell>> levels_cells_;
  /// Per-level lookup: coords -> index into CellsAtLevel(l); retained after
  /// Build so that Insert and FindLeaf are O(1) per level.
  std::vector<std::unordered_map<CellCoord, uint32_t, CellCoordHash>> lookups_;
  /// Per-vector leaf assignment.
  std::vector<uint32_t> leaf_of_;
};

}  // namespace pexeso

#endif  // PEXESO_GRID_HIERARCHICAL_GRID_H_
