#ifndef PEXESO_GRID_CELL_KEY_H_
#define PEXESO_GRID_CELL_KEY_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>

#include "common/rng.h"

namespace pexeso {

/// Maximum pivot-space dimensionality supported by the grid. The paper tunes
/// |P| in 1..9; 16 leaves headroom without heap-allocating coordinate keys.
inline constexpr uint32_t kMaxPivots = 16;

/// \brief Per-axis cell indices of one grid cell at some level. At level l,
/// axis j is split into 2^l equal parts, so coord[j] is in [0, 2^l).
struct CellCoord {
  std::array<uint16_t, kMaxPivots> c{};
  uint8_t ndims = 0;

  bool operator==(const CellCoord& o) const {
    return ndims == o.ndims &&
           std::memcmp(c.data(), o.c.data(), sizeof(uint16_t) * ndims) == 0;
  }

  /// Coordinates of this cell's parent at the previous level.
  CellCoord Parent() const {
    CellCoord p;
    p.ndims = ndims;
    for (uint8_t i = 0; i < ndims; ++i) p.c[i] = c[i] >> 1;
    return p;
  }
};

struct CellCoordHash {
  size_t operator()(const CellCoord& k) const {
    return static_cast<size_t>(
        Fnv1a64(k.c.data(), sizeof(uint16_t) * k.ndims, k.ndims));
  }
};

}  // namespace pexeso

#endif  // PEXESO_GRID_CELL_KEY_H_
