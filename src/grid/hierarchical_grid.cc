#include "grid/hierarchical_grid.h"

#include <algorithm>
#include <cmath>

namespace pexeso {

CellCoord HierarchicalGrid::CoordsOf(const double* mapped_vec,
                                     uint32_t l) const {
  CellCoord k;
  k.ndims = static_cast<uint8_t>(num_pivots_);
  const double side = CellSide(l);
  const uint32_t max_coord = (1u << l) - 1;
  for (uint32_t j = 0; j < num_pivots_; ++j) {
    double x = mapped_vec[j];
    if (x < 0.0) x = 0.0;
    uint32_t c = static_cast<uint32_t>(x / side);
    if (c > max_coord) c = max_coord;  // boundary value x == extent
    k.c[j] = static_cast<uint16_t>(c);
  }
  return k;
}

void HierarchicalGrid::Build(const double* mapped, size_t n,
                             uint32_t num_pivots, double extent,
                             const Options& options) {
  PEXESO_CHECK(num_pivots >= 1 && num_pivots <= kMaxPivots);
  PEXESO_CHECK(options.levels >= 1 && options.levels <= 14);
  PEXESO_CHECK(extent > 0.0);
  levels_ = options.levels;
  num_pivots_ = num_pivots;
  extent_ = extent;
  num_vectors_ = 0;
  store_leaf_items_ = options.store_leaf_items;
  levels_cells_.assign(levels_, {});
  lookups_.assign(levels_, {});
  leaf_of_.clear();
  leaf_of_.reserve(n);

  for (size_t i = 0; i < n; ++i) {
    Insert(mapped + i * num_pivots_, static_cast<VecId>(i),
           options.store_leaf_items);
  }
}

uint32_t HierarchicalGrid::Insert(const double* mapped_vec, VecId id,
                                  bool store_item) {
  PEXESO_CHECK(levels_ >= 1);
  uint32_t leaf_idx = 0;
  uint32_t child_idx = 0;
  bool child_created = false;
  for (uint32_t l = levels_; l >= 1; --l) {
    CellCoord k = CoordsOf(mapped_vec, l);
    auto& lk = lookups_[l - 1];
    auto it = lk.find(k);
    uint32_t idx;
    bool created = false;
    if (it == lk.end()) {
      idx = static_cast<uint32_t>(levels_cells_[l - 1].size());
      levels_cells_[l - 1].push_back(Cell{k, {}, {}});
      lk.emplace(k, idx);
      created = true;
    } else {
      idx = it->second;
    }
    if (l == levels_) {
      leaf_idx = idx;
      if (store_item) levels_cells_[l - 1][idx].items.push_back(id);
    } else if (child_created) {
      // Link the freshly created child into this (possibly existing) parent.
      levels_cells_[l - 1][idx].children.push_back(child_idx);
    }
    if (!created && l != levels_) {
      // This ancestor already existed: the new child (if any) is linked and
      // every higher ancestor is already present and linked.
      break;
    }
    child_idx = idx;
    child_created = created;
    if (l == 1) break;
  }
  PEXESO_DCHECK(id == leaf_of_.size());
  leaf_of_.push_back(leaf_idx);
  ++num_vectors_;
  return leaf_idx;
}

std::vector<uint32_t> HierarchicalGrid::RootChildren() const {
  std::vector<uint32_t> out(levels_cells_[0].size());
  for (uint32_t i = 0; i < out.size(); ++i) out[i] = i;
  return out;
}

int64_t HierarchicalGrid::FindLeaf(const CellCoord& coords) const {
  const auto& lk = lookups_[levels_ - 1];
  auto it = lk.find(coords);
  if (it == lk.end()) return -1;
  return static_cast<int64_t>(it->second);
}

void HierarchicalGrid::CollectLeaves(uint32_t l, uint32_t idx,
                                     std::vector<uint32_t>* out) const {
  if (l == levels_) {
    out->push_back(idx);
    return;
  }
  for (uint32_t child : levels_cells_[l - 1][idx].children) {
    CollectLeaves(l + 1, child, out);
  }
}

size_t HierarchicalGrid::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& level : levels_cells_) {
    bytes += level.capacity() * sizeof(Cell);
    for (const auto& c : level) {
      bytes += c.children.capacity() * sizeof(uint32_t);
      bytes += c.items.capacity() * sizeof(VecId);
    }
  }
  for (const auto& lk : lookups_) {
    bytes += lk.size() * (sizeof(CellCoord) + sizeof(uint32_t) + 16);
  }
  bytes += leaf_of_.capacity() * sizeof(uint32_t);
  return bytes;
}

void HierarchicalGrid::Serialize(BinaryWriter* w) const {
  w->Write<uint32_t>(levels_);
  w->Write<uint32_t>(num_pivots_);
  w->Write<double>(extent_);
  w->Write<uint64_t>(num_vectors_);
  w->Write<uint8_t>(store_leaf_items_ ? 1 : 0);
  for (uint32_t l = 1; l <= levels_; ++l) {
    const auto& cells = levels_cells_[l - 1];
    w->Write<uint64_t>(cells.size());
    for (const auto& c : cells) {
      w->Write<CellCoord>(c.coords);
      w->WriteVector(c.children);
      w->WriteVector(c.items);
    }
  }
  w->WriteVector(leaf_of_);
}

Status HierarchicalGrid::Deserialize(BinaryReader* r) {
  PEXESO_RETURN_NOT_OK(r->Read(&levels_));
  PEXESO_RETURN_NOT_OK(r->Read(&num_pivots_));
  PEXESO_RETURN_NOT_OK(r->Read(&extent_));
  uint64_t nv = 0;
  PEXESO_RETURN_NOT_OK(r->Read(&nv));
  num_vectors_ = nv;
  uint8_t sli = 0;
  PEXESO_RETURN_NOT_OK(r->Read(&sli));
  store_leaf_items_ = (sli != 0);
  if (levels_ < 1 || levels_ > 14 || num_pivots_ < 1 ||
      num_pivots_ > kMaxPivots) {
    return Status::Corruption("grid header implausible");
  }
  levels_cells_.assign(levels_, {});
  for (uint32_t l = 1; l <= levels_; ++l) {
    uint64_t ncells = 0;
    PEXESO_RETURN_NOT_OK(r->Read(&ncells));
    auto& cells = levels_cells_[l - 1];
    cells.resize(ncells);
    for (auto& c : cells) {
      PEXESO_RETURN_NOT_OK(r->Read(&c.coords));
      PEXESO_RETURN_NOT_OK(r->ReadVector(&c.children));
      PEXESO_RETURN_NOT_OK(r->ReadVector(&c.items));
    }
  }
  PEXESO_RETURN_NOT_OK(r->ReadVector(&leaf_of_));
  lookups_.assign(levels_, {});
  for (uint32_t l = 1; l <= levels_; ++l) {
    const auto& cells = levels_cells_[l - 1];
    for (uint32_t i = 0; i < cells.size(); ++i) {
      lookups_[l - 1].emplace(cells[i].coords, i);
    }
  }
  return Status::OK();
}

}  // namespace pexeso
