#include "serve/serve_session.h"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "common/check.h"

namespace pexeso::serve {

struct ServeSession::QueryState {
  uint64_t ticket = 0;
  JoinQuery query;
  ChunkCallback on_chunk;      ///< null for non-streaming submits
  OutcomeCallback on_outcome;  ///< null unless push-notified streaming
  bool want_future = false;
  std::promise<QueryOutcome> promise;
  /// kTopK: the running cross-part floor. A part that returns a full local
  /// top-k raises it (its k-th local count lower-bounds the global k-th
  /// best), so parts starting later prune harder. Monotone via CAS-max.
  std::atomic<uint32_t> topk_floor{0};
  /// Deadline-aware part scheduling: set the moment any part observes the
  /// query interrupted (deadline expired / cancelled), so still-queued part
  /// tasks of this query are dropped instead of dispatched — no engine
  /// call, no partition IO, just the deadline_expired counter.
  std::atomic<bool> dead{false};

  size_t parts_total = 1;
  /// True for partitioned engines: results need the canonical global-column
  /// ordering (SearchPartitions sorts even for a single part).
  bool merge_parts = false;
  /// Serializes chunk callbacks of this query and guards parts_done and the
  /// finalize step. Per-part slots below are lock-free: each part task
  /// writes only its own index, and the finalizer observes every write
  /// through the parts_done increments under this mutex.
  std::mutex mu;
  size_t parts_done = 0;
  std::vector<std::vector<JoinableColumn>> part_results;
  std::vector<SearchStats> part_stats;
  std::vector<double> part_io;
  std::vector<Status> part_status;

  QueryOutcome outcome;  ///< valid once every part is done
};

namespace {

/// Worker count of an owned pool: 0 means one per hardware thread, and a
/// ceiling guards against bogus huge values (e.g. a negative count cast to
/// size_t) turning into a workers_.reserve() of billions.
size_t OwnedPoolThreads(size_t requested) {
  if (requested == 0) {
    return std::max(1u, std::thread::hardware_concurrency());
  }
  return std::min<size_t>(requested, 256);
}

}  // namespace

ServeSession::ServeSession(const JoinSearchEngine* engine,
                           ServeSessionOptions options,
                           ThreadPool* shared_pool)
    : engine_(engine),
      parts_(dynamic_cast<const PartitionedJoinEngine*>(engine)),
      intra_pool_(options.intra_query_threads > 1
                      ? std::make_unique<ThreadPool>(
                            std::min<size_t>(options.intra_query_threads, 256))
                      : nullptr),
      default_intra_threads_(options.intra_query_threads),
      owned_pool_(shared_pool != nullptr
                      ? nullptr
                      : std::make_unique<ThreadPool>(
                            OwnedPoolThreads(options.num_threads))),
      pool_(shared_pool != nullptr ? shared_pool : owned_pool_.get()),
      group_(pool_) {
  PEXESO_CHECK(engine != nullptr);
}

ServeSession::~ServeSession() { group_.Wait(); }

std::future<QueryOutcome> ServeSession::Submit(JoinQuery query) {
  std::future<QueryOutcome> future;
  Enqueue(std::move(query), nullptr, nullptr, /*want_future=*/true, &future);
  return future;
}

uint64_t ServeSession::SubmitStreaming(JoinQuery query,
                                       ChunkCallback on_chunk) {
  return Enqueue(std::move(query), std::move(on_chunk), nullptr,
                 /*want_future=*/false, nullptr);
}

uint64_t ServeSession::SubmitStreaming(JoinQuery query, ChunkCallback on_chunk,
                                       OutcomeCallback on_outcome) {
  return Enqueue(std::move(query), std::move(on_chunk),
                 std::move(on_outcome), /*want_future=*/false, nullptr);
}

uint64_t ServeSession::Enqueue(JoinQuery query, ChunkCallback on_chunk,
                               OutcomeCallback on_outcome, bool want_future,
                               std::future<QueryOutcome>* future_out) {
  PEXESO_CHECK(query.vectors != nullptr);
  auto state = std::make_unique<QueryState>();
  state->query = std::move(query);
  state->topk_floor.store(state->query.topk_floor,
                          std::memory_order_relaxed);
  // Intra-query default: queries that carry no setting of their own inherit
  // the session's, and any intra-parallel query without a pool runs its
  // shards on the session's dedicated intra pool (when one exists) so part
  // tasks never spawn transient pools per search.
  if (state->query.intra_query_pool == nullptr) {
    if (state->query.intra_query_threads == 0) {
      state->query.intra_query_threads = default_intra_threads_;
    }
    if (state->query.intra_query_threads > 1 && intra_pool_ != nullptr) {
      state->query.intra_query_pool = intra_pool_.get();
    }
  }
  state->on_chunk = std::move(on_chunk);
  state->on_outcome = std::move(on_outcome);
  state->want_future = want_future;
  if (want_future) *future_out = state->promise.get_future();
  state->parts_total =
      parts_ != nullptr ? std::max<size_t>(1, parts_->NumParts()) : 1;
  state->merge_parts = parts_ != nullptr;
  state->part_results.resize(state->parts_total);
  state->part_stats.resize(state->parts_total);
  state->part_io.assign(state->parts_total, 0.0);
  state->part_status.assign(state->parts_total, Status::OK());

  QueryState* raw = state.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    raw->ticket = queries_.size();
    queries_.push_back(std::move(state));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  for (size_t part = 0; part < raw->parts_total; ++part) {
    group_.Submit([this, raw, part] { RunPart(raw, part); });
  }
  return raw->ticket;
}

void ServeSession::RunPart(QueryState* state, size_t part) const {
  Status status = state->query.CheckLive();
  if (!status.ok()) {
    // The query tripped before this part started (at submit, or mid-search
    // of a sibling part, which flagged the query dead the moment it saw the
    // interruption): drop the still-queued part instead of dispatching it —
    // no engine call, no partition IO, just the counter.
    ++state->part_stats[part].deadline_expired;
  } else if (state->dead.load(std::memory_order_relaxed)) {
    // Narrow race: a sibling observed an interruption the clock/flag no
    // longer reports here. Drop rather than dispatch work whose result the
    // finalizer will pair with an interrupted status anyway.
    status = Status::Cancelled("query interrupted by sibling part");
    ++state->part_stats[part].deadline_expired;
  } else {
    try {
      // A partitioned engine with zero parts (a shard that owns nothing
      // under a shard map with more shards than parts) has no part 0 to
      // search; its Execute path returns the correct empty answer.
      if (parts_ != nullptr && parts_->NumParts() > 0) {
        JoinQuery part_query = state->query;
        if (part_query.mode == QueryMode::kTopK) {
          uint32_t seed = state->topk_floor.load(std::memory_order_relaxed);
          if (part_query.floor_link != nullptr) {
            // A linked global floor (raised by sibling shards of a
            // scatter-gather) can be ahead of this session's own cross-part
            // floor; adopting it prunes harder and never changes results
            // (strict-beat pruning).
            const uint32_t ext = part_query.floor_link->load();
            if (ext > seed) {
              seed = ext;
              ++state->part_stats[part].floor_updates_received;
            }
          }
          part_query.topk_floor = seed;
        }
        auto chunk = parts_->SearchPart(part, part_query,
                                        &state->part_stats[part],
                                        &state->part_io[part],
                                        /*preloaded=*/nullptr);
        if (chunk.ok()) {
          state->part_results[part] = std::move(chunk).ValueOrDie();
          if (part_query.mode == QueryMode::kTopK &&
              state->part_results[part].size() == part_query.k) {
            // A full local top-k lower-bounds the global k-th best with its
            // weakest member; publish it for parts that start later.
            uint32_t floor = UINT32_MAX;
            for (const auto& jc : state->part_results[part]) {
              floor = std::min(floor, jc.match_count);
            }
            uint32_t seen =
                state->topk_floor.load(std::memory_order_relaxed);
            while (floor > seen &&
                   !state->topk_floor.compare_exchange_weak(
                       seen, floor, std::memory_order_relaxed)) {
            }
            // And outward: a raise of the linked global floor lets sibling
            // shards (and their still-queued parts) prune against it too.
            if (state->query.floor_link != nullptr &&
                state->query.floor_link->RaiseTo(floor)) {
              ++state->part_stats[part].floor_updates_sent;
            }
          }
        } else {
          status = chunk.status();
        }
      } else {
        CollectSink sink;
        status = engine_->Execute(state->query, &sink,
                                  &state->part_stats[part]);
        // Interruptions keep the engine's partial columns; real failures
        // drop them (FinalizeLocked applies the same doctrine).
        state->part_results[part] = std::move(sink).TakeColumns();
      }
    } catch (const std::exception& e) {
      status =
          Status::Internal(std::string("search task threw: ") + e.what());
    } catch (...) {
      status = Status::Internal("search task threw");
    }
  }
  if (status.interrupted()) {
    // Publish the interruption so sibling parts still queued behind other
    // work are dropped at dispatch instead of searching a dead query.
    state->dead.store(true, std::memory_order_relaxed);
  }
  state->part_status[part] = status;

  // Build the chunk before taking the lock: the slot is still this task's
  // private data (finalize cannot run until our parts_done increment), and
  // the copy it needs — finalize will move the slot out — should not
  // serialize other parts' callbacks.
  StreamChunk chunk;
  if (state->on_chunk != nullptr) {
    chunk.ticket = state->ticket;
    chunk.part = part;
    chunk.parts_total = state->parts_total;
    chunk.status = status;
    chunk.results = state->part_results[part];
  }

  bool last = false;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    last = ++state->parts_done == state->parts_total;
    if (state->on_chunk != nullptr) {
      chunk.last = last;
      // A throwing consumer must not escape into the pool's error slot (it
      // would surface from an unrelated Wait, or never): it marks this part
      // — and therefore the query outcome — failed instead. Running the
      // callback before finalize means even a last-chunk throw is folded in.
      try {
        state->on_chunk(chunk);
      } catch (const std::exception& e) {
        if (state->part_status[part].ok()) {
          state->part_status[part] =
              Status::Internal(std::string("stream callback threw: ") +
                               e.what());
        }
      } catch (...) {
        if (state->part_status[part].ok()) {
          state->part_status[part] = Status::Internal("stream callback threw");
        }
      }
    }
    if (last) FinalizeLocked(state);
  }
  if (!last) return;
  finished_.fetch_add(1, std::memory_order_relaxed);
  // Fired after every lock is dropped: the outcome is immutable once
  // finalized, and the callback may re-enter the session (e.g. to submit a
  // query an admission controller just promoted) without a lock cycle.
  if (state->on_outcome != nullptr) {
    try {
      state->on_outcome(state->outcome);
    } catch (...) {
      // Nothing left to attach the failure to: the outcome is already
      // final. Swallowing beats corrupting the pool's error slot.
    }
  }
}

void ServeSession::FinalizeLocked(QueryState* state) {
  QueryOutcome& out = state->outcome;
  // Status precedence: a real failure (environment fault) must not be
  // masked by another part's cooperative interruption — the caller would
  // otherwise retry with a bigger deadline instead of learning the index
  // is broken. Among statuses of the same class, the first part wins.
  Status first_interruption;
  for (size_t part = 0; part < state->parts_total; ++part) {
    out.stats += state->part_stats[part];
    out.io_seconds += state->part_io[part];
    const Status& ps = state->part_status[part];
    if (ps.ok()) continue;
    if (ps.interrupted()) {
      if (first_interruption.ok()) first_interruption = ps;
    } else if (out.status.ok()) {
      out.status = ps;
    }
  }
  if (out.status.ok()) out.status = first_interruption;
  // Interruptions (cancel/deadline) are partial-result statuses: the parts
  // that completed are merged and delivered alongside the status. Any
  // other failure keeps the old empty-results contract.
  if (out.status.ok() || out.status.interrupted()) {
    for (auto& chunk : state->part_results) {
      out.results.insert(out.results.end(),
                         std::make_move_iterator(chunk.begin()),
                         std::make_move_iterator(chunk.end()));
    }
    // In-memory engines return their own (already deterministic) order;
    // per-part merges need the canonical mode-aware ordering (kTopK chunks
    // are per-part local top-ks, re-ranked and truncated here).
    if (state->merge_parts) FinishQueryMerge(state->query, &out.results);
  }
  if (state->want_future) state->promise.set_value(out);
}

std::vector<QueryOutcome> ServeSession::Drain() {
  // A Submit racing this Drain may have registered its QueryState but not
  // yet handed every part task to the group, in which case group_.Wait()
  // returns with that query still unfinished; loop until a Wait() lands
  // with every registered query finalized (each pass waits for real work,
  // so the loop terminates as soon as submissions stop racing).
  for (;;) {
    group_.Wait();
    std::lock_guard<std::mutex> lock(mu_);
    bool all_done = true;
    for (const auto& state : queries_) {
      std::lock_guard<std::mutex> state_lock(state->mu);
      if (state->parts_done != state->parts_total) {
        all_done = false;
        break;
      }
    }
    if (!all_done) {
      // The racing submitter holds no lock we can wait on; yield until its
      // tasks reach the group (group_.Wait() then blocks on real work).
      std::this_thread::yield();
      continue;
    }
    std::vector<QueryOutcome> out;
    out.reserve(queries_.size());
    for (const auto& state : queries_) out.push_back(state->outcome);
    return out;
  }
}

}  // namespace pexeso::serve
