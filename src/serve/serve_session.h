#ifndef PEXESO_SERVE_SERVE_SESSION_H_
#define PEXESO_SERVE_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engine.h"

namespace pexeso::serve {

/// \brief ServeSession configuration.
struct ServeSessionOptions {
  /// Worker threads of the owned pool. 0 = one per hardware thread.
  /// Ignored when an external pool is passed to the constructor.
  size_t num_threads = 0;
  /// Default intra-query parallelism applied to every submitted query that
  /// does not carry its own JoinQuery::intra_query_threads: a huge query
  /// column then parallelizes *within* one partition's verification, not
  /// just across partitions. Shards run on a dedicated session-owned intra
  /// pool (separate from the part-task pool, so a part task waiting on its
  /// shards can never starve shard execution). 0 = off.
  size_t intra_query_threads = 0;
};

/// \brief One part's worth of results for one streaming query, delivered to
/// the SubmitStreaming callback as the part completes.
struct StreamChunk {
  uint64_t ticket = 0;       ///< submission-order id of the query
  size_t part = 0;           ///< which part produced this chunk
  size_t parts_total = 1;    ///< chunk count the query will emit
  bool last = false;         ///< true on the final chunk of the query
  Status status;             ///< non-OK: this part failed to load/search
  /// This part's joinable columns (global column ids, unmerged/unsorted).
  std::vector<JoinableColumn> results;
};

/// \brief Final outcome of one submitted query.
struct QueryOutcome {
  Status status;
  /// Merged results. For a partitioned engine these are byte-identical to a
  /// serial SearchPartitions call (concatenated in part order, then the
  /// canonical mode-aware merge: global-column order for the threshold
  /// modes, rank order for kTopK). When status is an interruption
  /// (Cancelled / DeadlineExceeded) this holds the completed parts'
  /// columns — valid partial results; on any other failure it is empty.
  std::vector<JoinableColumn> results;
  /// Counters accumulated in part order — deterministic at any thread count.
  SearchStats stats;
  /// Time spent blocked on partition IO (0 for in-memory engines).
  double io_seconds = 0.0;
};

using ChunkCallback = std::function<void(const StreamChunk&)>;

/// Fired once per streaming query, after its last chunk callback, with the
/// final merged outcome (what Drain() would report for this ticket). Runs
/// on the pool thread that finished the last part.
using OutcomeCallback = std::function<void(const QueryOutcome&)>;

/// \brief Async query session over one shared read-only engine: the online
/// half of the serving layer.
///
/// Queries are accepted without blocking (Submit returns a future,
/// SubmitStreaming a ticket) and fan out across a ThreadPool. For an engine
/// that also implements PartitionedJoinEngine, each query becomes one task
/// per part, so a single query overlaps the IO and search of all its
/// partitions — and with an IndexCache attached to the engine, concurrent
/// queries share each part's single load. Other engines run as one task.
///
/// Streaming: SubmitStreaming's callback fires once per part as that part
/// completes (parts race, so chunk order is nondeterministic — consumers
/// needing the deterministic merge read the drained outcome). Callbacks of
/// one query are serialized; different queries' callbacks may run
/// concurrently on pool threads. A callback that throws marks its query's
/// outcome failed (Status::Internal) rather than leaking the exception
/// into the pool.
///
/// Determinism contract (the BatchQueryRunner contract, extended): Drain()
/// returns outcomes in submission order, and each outcome's results and
/// stats counters are identical at any thread count and any cache budget,
/// because per-part chunks are merged in part order regardless of
/// completion order.
class ServeSession {
 public:
  /// `engine` is borrowed and must outlive the session. When `shared_pool`
  /// is non-null the session runs on it (and only waits for its own tasks);
  /// otherwise it owns a pool of options.num_threads workers.
  explicit ServeSession(const JoinSearchEngine* engine,
                        ServeSessionOptions options = {},
                        ThreadPool* shared_pool = nullptr);

  /// Drains in-flight queries before tearing down.
  ~ServeSession();

  ServeSession(const ServeSession&) = delete;
  ServeSession& operator=(const ServeSession&) = delete;

  /// Submits a request; the future resolves when every part has completed.
  /// `query.vectors` is borrowed and must stay alive until the query
  /// finishes. Deadline/cancel controls are honored per part task: a part
  /// whose query tripped before it started is skipped outright (the pool
  /// never burns time on a dead query) and the outcome carries the
  /// interruption status with the completed parts as partial results.
  /// kTopK requests share the running k-th-best bound across the query's
  /// part tasks: each completed part raises the floor later-starting parts
  /// prune against.
  std::future<QueryOutcome> Submit(JoinQuery query);

  /// Streaming submit: per-part chunks via `on_chunk` (local top-k
  /// candidates per part for kTopK), merged outcome via Drain(). Returns
  /// the query's ticket (its index in Drain()'s output).
  uint64_t SubmitStreaming(JoinQuery query, ChunkCallback on_chunk);

  /// Push-notified variant for callers that must react to completion
  /// without blocking a thread per query (the network server): `on_outcome`
  /// fires on a pool thread once the query's outcome is final — strictly
  /// after the last chunk callback, never while any session or query lock
  /// is held, so it may freely submit follow-up queries. Note a concurrent
  /// Drain() may observe (and return) the outcome before the callback runs.
  uint64_t SubmitStreaming(JoinQuery query, ChunkCallback on_chunk,
                           OutcomeCallback on_outcome);

  /// Blocks until every submitted query has finished and returns all
  /// outcomes so far in submission order (ticket order).
  std::vector<QueryOutcome> Drain();

  size_t num_threads() const { return pool_->num_threads(); }

  /// Queue-depth introspection for the serving layer's metrics endpoint.
  /// inflight = accepted but not yet finalized.
  uint64_t queries_submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }
  uint64_t queries_inflight() const {
    return submitted_.load(std::memory_order_relaxed) -
           finished_.load(std::memory_order_relaxed);
  }

 private:
  struct QueryState;

  uint64_t Enqueue(JoinQuery query, ChunkCallback on_chunk,
                   OutcomeCallback on_outcome, bool want_future,
                   std::future<QueryOutcome>* future_out);

  /// Pool task: search one part of one query, emit its chunk, and finalize
  /// the query when this was the last outstanding part.
  void RunPart(QueryState* state, size_t part) const;

  /// Merges per-part slots in part order into the outcome (determinism) and
  /// fulfills the future. Caller holds state->mu.
  static void FinalizeLocked(QueryState* state);

  const JoinSearchEngine* engine_;
  const PartitionedJoinEngine* parts_;  ///< engine_'s part view; may be null
  /// Intra-query shard pool (ServeSessionOptions::intra_query_threads > 1).
  /// Declared before the part-task pool/group so it is destroyed last —
  /// after the group's wait, when no search can still hold shard tasks.
  std::unique_ptr<ThreadPool> intra_pool_;
  size_t default_intra_threads_ = 0;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;
  TaskGroup group_;
  mutable std::mutex mu_;  ///< guards queries_
  std::vector<std::unique_ptr<QueryState>> queries_;
  std::atomic<uint64_t> submitted_{0};
  mutable std::atomic<uint64_t> finished_{0};  ///< bumped from const RunPart
};

}  // namespace pexeso::serve

#endif  // PEXESO_SERVE_SERVE_SESSION_H_
