#include "serve/index_cache.h"

#include <functional>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"

namespace pexeso::serve {

IndexCache::IndexCache(IndexCacheOptions options)
    : budget_bytes_(options.budget_bytes),
      shards_(size_t{1} << options.shard_bits) {
  PEXESO_CHECK(options.shard_bits <= 8);
}

IndexCache::Shard& IndexCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) & (shards_.size() - 1)];
}

std::string IndexCache::MakeKey(const std::string& path,
                                uint64_t generation) {
  if (generation == 0) return path;
  return path + "@g" + std::to_string(generation);
}

size_t IndexCache::ResidentBytes(const PexesoIndex& index) {
  // Mapped snapshots are charged by bytes mapped (the file pages a search
  // can touch) plus their small heap-side structures; legacy heap snapshots
  // by their full in-memory footprint. Either way one number answers "how
  // much does keeping this entry cost" against the global budget.
  return index.IndexSizeBytes() + index.catalog().MemoryBytes() +
         index.MappedBytes();
}

Result<IndexCache::IndexPtr> IndexCache::Get(const std::string& path,
                                             const Metric* metric,
                                             uint64_t generation) {
  return GetOrPin(MakeKey(path, generation), path, metric, /*pin=*/false);
}

Status IndexCache::Pin(const std::string& path, const Metric* metric,
                       uint64_t generation) {
  return GetOrPin(MakeKey(path, generation), path, metric, /*pin=*/true)
      .status();
}

Result<IndexCache::IndexPtr> IndexCache::GetOrPin(const std::string& key,
                                                  const std::string& path,
                                                  const Metric* metric,
                                                  bool pin) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  for (;;) {
    auto it = shard.map.find(key);
    if (it == shard.map.end()) break;  // cold: this thread loads
    Entry& entry = it->second;
    if (entry.loading()) {
      // Single-flight: another thread owns the disk read. Hold the flight
      // so its result reaches us even if the entry is evicted (tiny
      // budget) or erased (failed load) before we wake.
      ++shard.single_flight_waits;
      std::shared_ptr<Flight> flight = entry.flight;
      shard.load_done.wait(lock, [&flight] { return flight->done; });
      if (!pin) {
        if (!flight->status.ok()) return flight->status;
        ++shard.hits;
        return flight->index;
      }
      // Pinning needs the map entry itself; re-check the world. If the
      // entry survived, the loop counts a hit and pins it; if it was
      // evicted this degenerates to one extra load, which warm-up can
      // afford.
      continue;
    }
    ++shard.hits;
    if (pin) {
      if (entry.pins++ == 0 && entry.in_lru) {
        shard.lru.erase(entry.lru_it);
        entry.in_lru = false;
      }
    } else if (entry.in_lru) {
      shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_it);
    }
    return entry.index;
  }

  ++shard.misses;
  auto flight = std::make_shared<Flight>();
  shard.map[key].flight = flight;
  lock.unlock();
  // Failure injection for the serve path ("cache:load"): a fault here takes
  // the same miss-cleanup route as a real unreadable file, and because
  // failures are never cached the caller's retry is a genuine fresh load.
  Result<PexesoIndex> loaded = FailpointHit("cache:load");
  if (loaded.ok()) loaded = PexesoIndex::Load(path, metric);
  lock.lock();
  auto it = shard.map.find(key);
  PEXESO_CHECK(it != shard.map.end());  // only the loader removes its marker
  if (!loaded.ok()) {
    flight->done = true;
    flight->status = loaded.status();
    shard.map.erase(it);  // failures are not cached; the next Get retries
    shard.load_done.notify_all();
    return loaded.status();
  }
  auto ptr = std::make_shared<const PexesoIndex>(std::move(loaded).ValueOrDie());
  flight->done = true;
  flight->index = ptr;
  Entry& entry = it->second;
  entry.index = ptr;
  entry.flight = nullptr;
  entry.bytes = ResidentBytes(*ptr);
  entry.mapped = ptr->MappedBytes();
  shard.bytes += entry.bytes;
  shard.mapped_bytes += entry.mapped;
  if (ptr->is_mapped()) {
    ++shard.v2_loads;
  } else {
    ++shard.v1_loads;
  }
  bytes_total_.fetch_add(entry.bytes, std::memory_order_relaxed);
  if (pin) {
    entry.pins = 1;
  } else {
    shard.lru.push_front(key);
    entry.lru_it = shard.lru.begin();
    entry.in_lru = true;
  }
  shard.load_done.notify_all();
  lock.unlock();
  EnforceBudget(&shard, &key);
  return ptr;
}

void IndexCache::EvictTailLocked(Shard* shard, const std::string* spare) {
  // Concurrent enforcement on other shards may observe the same overshoot
  // and evict in parallel; the total can transiently undershoot, which a
  // cache can afford — the invariant that matters is progress toward the
  // budget without nested cross-shard locking.
  while (bytes_total_.load(std::memory_order_relaxed) > budget_bytes_ &&
         !shard->lru.empty()) {
    const std::string& victim = shard->lru.back();
    if (spare != nullptr && victim == *spare) break;
    auto it = shard->map.find(victim);
    PEXESO_CHECK(it != shard->map.end());
    shard->bytes -= it->second.bytes;
    shard->mapped_bytes -= it->second.mapped;
    bytes_total_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
    shard->map.erase(it);  // callers holding the shared_ptr keep it alive
    shard->lru.pop_back();
    ++shard->evictions;
  }
}

void IndexCache::EnforceBudget(Shard* home, const std::string* fresh) {
  {
    std::unique_lock<std::mutex> lock(home->mu);
    EvictTailLocked(home, fresh);
  }
  if (bytes_total_.load(std::memory_order_relaxed) <= budget_bytes_) return;
  // The home shard alone could not shed enough: sweep the others so an
  // idle shard's residents cannot pin the cache over budget forever.
  for (Shard& other : shards_) {
    if (&other == home) continue;
    std::unique_lock<std::mutex> lock(other.mu);
    EvictTailLocked(&other, nullptr);
    if (bytes_total_.load(std::memory_order_relaxed) <= budget_bytes_) {
      return;
    }
  }
  // Still over budget: nothing else is evictable (pins, or the fresh entry
  // simply does not fit) — the fresh entry goes too.
  if (fresh == nullptr) return;
  std::unique_lock<std::mutex> lock(home->mu);
  auto it = home->map.find(*fresh);
  if (it == home->map.end() || !it->second.in_lru) return;
  if (bytes_total_.load(std::memory_order_relaxed) <= budget_bytes_) return;
  home->bytes -= it->second.bytes;
  home->mapped_bytes -= it->second.mapped;
  bytes_total_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
  home->lru.erase(it->second.lru_it);
  home->map.erase(it);
  ++home->evictions;
}

void IndexCache::Unpin(const std::string& path, uint64_t generation) {
  const std::string key = MakeKey(path, generation);
  Shard& shard = ShardFor(key);
  bool relinked = false;
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end() || it->second.pins == 0) return;
    Entry& entry = it->second;
    if (--entry.pins == 0) {
      shard.lru.push_front(key);
      entry.lru_it = shard.lru.begin();
      entry.in_lru = true;
      relinked = true;
    }
  }
  // Re-enforce the budget now that the entry is evictable again; pinning
  // may have pushed the total over.
  if (relinked) EnforceBudget(&shard, nullptr);
}

void IndexCache::Erase(const std::string& path, uint64_t generation) {
  const std::string key = MakeKey(path, generation);
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.loading() || it->second.pins > 0) {
    return;
  }
  if (it->second.in_lru) shard.lru.erase(it->second.lru_it);
  shard.bytes -= it->second.bytes;
  shard.mapped_bytes -= it->second.mapped;
  bytes_total_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
  shard.map.erase(it);
}

void IndexCache::Clear() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.mu);
    for (const std::string& key : shard.lru) {
      auto it = shard.map.find(key);
      shard.bytes -= it->second.bytes;
      shard.mapped_bytes -= it->second.mapped;
      bytes_total_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
      shard.map.erase(it);
    }
    shard.lru.clear();
  }
}

IndexCacheStats IndexCache::stats() const {
  IndexCacheStats out;
  for (const Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.single_flight_waits += shard.single_flight_waits;
    out.v1_loads += shard.v1_loads;
    out.v2_loads += shard.v2_loads;
    out.bytes_resident += shard.bytes;
    out.bytes_mapped += shard.mapped_bytes;
    for (const auto& [key, entry] : shard.map) {
      if (entry.loading()) continue;
      ++out.entries;
      if (entry.pins > 0) ++out.pinned;
    }
  }
  return out;
}

}  // namespace pexeso::serve
