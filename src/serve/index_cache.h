#ifndef PEXESO_SERVE_INDEX_CACHE_H_
#define PEXESO_SERVE_INDEX_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/pexeso_index.h"

namespace pexeso::serve {

/// \brief IndexCache configuration.
struct IndexCacheOptions {
  /// Total resident budget. Entries are charged their full in-memory
  /// footprint (index structures + raw vectors) against this one global
  /// number, whatever shard they hash to. A budget of 0 caches nothing but
  /// still deduplicates concurrent loads (single-flight).
  size_t budget_bytes = 256ull << 20;
  /// log2 of the shard count. Sharding spreads lock contention across
  /// independent mutexes/LRU lists (LevelDB-style); 0 gives one global LRU,
  /// which tests use for deterministic eviction order. Partition snapshots
  /// are few and large, so a handful of shards suffices.
  uint32_t shard_bits = 2;
};

/// \brief Aggregated counters across all shards (a racy-but-consistent
/// snapshot: each shard is read under its own lock).
struct IndexCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Get/Pin calls that piggybacked on another thread's in-progress load of
  /// the same key instead of issuing their own disk read.
  uint64_t single_flight_waits = 0;
  /// Cold loads that deserialized a legacy heap snapshot (formats v1/v2).
  uint64_t v1_loads = 0;
  /// Cold loads that memory-mapped a flat format-v2 (disk version 3)
  /// snapshot instead of deserializing it.
  uint64_t v2_loads = 0;
  size_t bytes_resident = 0;
  /// Portion of bytes_resident that is mmapped file pages (reclaimable by
  /// the kernel) rather than private heap.
  size_t bytes_mapped = 0;
  size_t entries = 0;
  size_t pinned = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// \brief Thread-safe, memory-budgeted LRU cache of deserialized
/// PexesoIndex partition snapshots, keyed by (file path, generation).
///
/// The generation is the live-lake snapshot version: a background merge
/// writes a NEW snapshot file and publishes it under a bumped generation, so
/// the stale generation's entry simply stops being requested and ages out of
/// the LRU — no explicit invalidation, and in-flight searches keep their
/// shared_ptr until they finish. Static deployments pass generation 0
/// everywhere and get the plain path-keyed cache.
///
/// This is the amortization layer of the serving stack: one lake index
/// answers many query columns, so partition files must be deserialized once
/// per *batch*, not once per query. Properties:
///
///  - Sharded locking: keys hash to 2^shard_bits shards, each with its own
///    mutex and LRU list, so hot-path hits on different partitions never
///    contend.
///  - Memory budget: entries are charged ResidentBytes() against ONE global
///    budget (an atomic total across shards). When an insert pushes the
///    total over budget, enforcement evicts least-recently-used unpinned
///    entries — first from the inserting shard (sparing the fresh entry),
///    then sweeping the other shards one lock at a time, and only as a last
///    resort the fresh entry itself — so an idle shard's residents cannot
///    pin the cache over budget forever. Entries are handed out as
///    shared_ptr, so eviction never invalidates an index a search is still
///    reading — memory is reclaimed when the last reader drops its
///    reference.
///  - Single-flight loading: concurrent Gets of the same cold key perform
///    exactly one disk read; the others block on the loader and share its
///    result through the flight object — even when the budget is too small
///    to keep the loaded entry resident, and even when the load fails (the
///    waiters share the failure; the NEXT Get retries, since failures are
///    never cached).
///  - Pinning: Pin() loads an entry and exempts it from eviction (warm-up /
///    keep-resident semantics). Pinned bytes still count toward the budget,
///    which may therefore be exceeded by pins — stats expose the overshoot.
class IndexCache {
 public:
  using IndexPtr = std::shared_ptr<const PexesoIndex>;

  explicit IndexCache(IndexCacheOptions options = {});

  /// Returns the index stored at `path`, loading and caching it on miss.
  /// `metric` is borrowed by the loaded index (must outlive it) and must be
  /// the metric the index was built with. `generation` distinguishes
  /// successive snapshot versions of the same path (see class comment).
  Result<IndexPtr> Get(const std::string& path, const Metric* metric,
                       uint64_t generation = 0);

  /// Loads (if needed) and pins: a pinned entry is never evicted until the
  /// matching Unpin. Pins nest (N pins need N unpins).
  Status Pin(const std::string& path, const Metric* metric,
             uint64_t generation = 0);

  /// Drops one pin; at zero pins the entry becomes evictable again (and the
  /// budget is re-enforced immediately). No-op for unknown keys.
  void Unpin(const std::string& path, uint64_t generation = 0);

  /// Drops an unpinned resident entry, if present.
  void Erase(const std::string& path, uint64_t generation = 0);

  /// Drops every unpinned resident entry.
  void Clear();

  IndexCacheStats stats() const;
  size_t budget_bytes() const { return budget_bytes_; }

  /// The in-memory footprint an entry is charged for: index structures plus
  /// the raw repository vectors of its catalog.
  static size_t ResidentBytes(const PexesoIndex& index);

 private:
  /// One in-flight load, shared between the loading thread and any
  /// single-flight waiters. Waiters hold the flight by shared_ptr, so the
  /// result reaches them even if the map entry is evicted (or erased on
  /// failure) before they wake.
  struct Flight {
    bool done = false;  ///< guarded by the shard mutex
    Status status;
    IndexPtr index;  ///< null when status is non-OK
  };

  struct Entry {
    IndexPtr index;  ///< null while a load is in flight
    std::shared_ptr<Flight> flight;  ///< non-null only while loading
    size_t bytes = 0;
    size_t mapped = 0;  ///< mmapped portion of `bytes`
    uint32_t pins = 0;
    bool in_lru = false;
    std::list<std::string>::iterator lru_it;  ///< valid iff in_lru

    bool loading() const { return flight != nullptr; }
  };

  struct Shard {
    mutable std::mutex mu;
    /// Signaled when an in-flight load finishes (either way) so
    /// single-flight waiters can collect the flight result.
    std::condition_variable load_done;
    std::unordered_map<std::string, Entry> map;
    std::list<std::string> lru;  ///< front = most recent; unpinned residents
    size_t bytes = 0;            ///< resident bytes charged to this shard
    size_t mapped_bytes = 0;     ///< mmapped portion of `bytes`
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t single_flight_waits = 0;
    uint64_t v1_loads = 0;  ///< successful legacy heap-snapshot loads
    uint64_t v2_loads = 0;  ///< successful mmapped flat-snapshot loads
  };

  /// Composed map key: the path for generation 0 (the static-deployment
  /// fast path and the pre-lake key format), "path@g<N>" otherwise.
  static std::string MakeKey(const std::string& path, uint64_t generation);

  Shard& ShardFor(const std::string& key);

  /// The shared hit/miss/single-flight state machine behind Get and Pin.
  /// `key` is the composed cache key; `path` is the file to load on miss.
  Result<IndexPtr> GetOrPin(const std::string& key, const std::string& path,
                            const Metric* metric, bool pin);

  /// Drops `shard`'s LRU-tail entries while the global byte total exceeds
  /// the budget, stopping at `spare` (the freshly inserted key, evicted
  /// only as a last resort) or when the shard runs out of unpinned
  /// entries. Pinned entries are not in the LRU list and never touched.
  /// Caller holds shard->mu.
  void EvictTailLocked(Shard* shard, const std::string* spare);

  /// Budget enforcement after an insert (or unpin) on `home`: home's tail
  /// first (sparing `fresh`), then the other shards one lock at a time,
  /// then — only if nothing else is left to shed — the fresh entry itself.
  /// Takes each shard mutex in turn without nesting, so concurrent
  /// enforcement cannot deadlock. Caller must NOT hold any shard mutex.
  void EnforceBudget(Shard* home, const std::string* fresh);

  size_t budget_bytes_;
  /// Resident bytes across all shards; the budget check reads this so the
  /// budget is global (not a per-shard slice that a large partition could
  /// never fit).
  std::atomic<size_t> bytes_total_{0};
  std::vector<Shard> shards_;
};

}  // namespace pexeso::serve

#endif  // PEXESO_SERVE_INDEX_CACHE_H_
