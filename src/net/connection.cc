#include "net/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace pexeso::net {

Connection::Connection(EventLoop* loop, int fd, uint64_t id,
                       size_t max_frame_payload, FrameHandler on_frame,
                       CloseHandler on_close)
    : loop_(loop),
      fd_(fd),
      id_(id),
      on_frame_(std::move(on_frame)),
      on_close_(std::move(on_close)),
      decoder_(max_frame_payload) {}

Connection::~Connection() {
  if (!closed_ && fd_ >= 0) close(fd_);
}

void Connection::Register() {
  loop_->Add(fd_, FdInterest{/*read=*/true, /*write=*/false},
             [this](FdInterest ready) { OnReady(ready); });
}

void Connection::OnReady(FdInterest ready) {
  if (closed_) return;
  if (ready.write) HandleWritable();
  if (closed_) return;
  if (ready.read) HandleReadable();
}

void Connection::HandleReadable() {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n),
                          std::memory_order_relaxed);
      decoder_.Append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {  // orderly peer shutdown
      Close();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    Close();
    return;
  }

  Frame frame;
  bool has_frame = false;
  for (;;) {
    const Status st = decoder_.Next(&frame, &has_frame);
    if (!st.ok()) {
      SendErrorAndClose(st);
      return;
    }
    if (!has_frame) return;
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    on_frame_(this, std::move(frame));
    if (closed_) return;  // the handler may close (e.g. protocol violation)
  }
}

void Connection::Send(std::string bytes) {
  if (closed_ || close_after_flush_) return;
  if (outbuf_.empty()) {
    outbuf_ = std::move(bytes);
    outbuf_sent_ = 0;
  } else {
    outbuf_.append(bytes);
  }
  HandleWritable();
}

void Connection::SendErrorAndClose(const Status& status) {
  if (closed_) return;
  std::string frame;
  EncodeError(ErrorMsg{status}, &frame);
  if (outbuf_.empty()) {
    outbuf_ = std::move(frame);
    outbuf_sent_ = 0;
  } else {
    outbuf_.append(frame);
  }
  close_after_flush_ = true;
  HandleWritable();
}

void Connection::HandleWritable() {
  while (outbuf_sent_ < outbuf_.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-stream must surface as EPIPE,
    // not kill the server process with SIGPIPE.
    const ssize_t n = send(fd_, outbuf_.data() + outbuf_sent_,
                           outbuf_.size() - outbuf_sent_, MSG_NOSIGNAL);
    if (n > 0) {
      outbuf_sent_ += static_cast<size_t>(n);
      bytes_out_.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateInterest();
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return;
  }
  outbuf_.clear();
  outbuf_sent_ = 0;
  if (close_after_flush_) {
    Close();
    return;
  }
  UpdateInterest();
}

void Connection::UpdateInterest() {
  loop_->Update(fd_, FdInterest{/*read=*/!close_after_flush_,
                                /*write=*/outbuf_sent_ < outbuf_.size()});
}

void Connection::Close() {
  if (closed_) return;
  closed_ = true;
  loop_->Remove(fd_);
  close(fd_);
  fd_ = -1;
  if (on_close_) on_close_(this);
}

}  // namespace pexeso::net
