#include "net/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace pexeso::net {

Connection::Connection(EventLoop* loop, int fd, uint64_t id,
                       size_t max_frame_payload, FrameHandler on_frame,
                       CloseHandler on_close, size_t max_outbuf)
    : loop_(loop),
      fd_(fd),
      id_(id),
      on_frame_(std::move(on_frame)),
      on_close_(std::move(on_close)),
      decoder_(max_frame_payload),
      max_outbuf_(max_outbuf) {}

Connection::~Connection() {
  if (!closed_ && fd_ >= 0) close(fd_);
}

void Connection::Register() {
  loop_->Add(fd_, FdInterest{/*read=*/true, /*write=*/false},
             [this](FdInterest ready) { OnReady(ready); });
}

void Connection::OnReady(FdInterest ready) {
  if (closed_) return;
  if (ready.write) HandleWritable();
  if (closed_) return;
  if (ready.read) HandleReadable();
}

void Connection::HandleReadable() {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n),
                          std::memory_order_relaxed);
      decoder_.Append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {  // orderly peer shutdown
      Close();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    Close();
    return;
  }

  Frame frame;
  bool has_frame = false;
  for (;;) {
    const Status st = decoder_.Next(&frame, &has_frame);
    if (!st.ok()) {
      SendErrorAndClose(st);
      return;
    }
    if (!has_frame) return;
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    on_frame_(this, std::move(frame));
    if (closed_) return;  // the handler may close (e.g. protocol violation)
  }
}

void Connection::Send(std::string bytes) {
  if (closed_ || close_after_flush_) return;
  CompactOutbuf();
  if (outbuf_.empty()) {
    outbuf_ = std::move(bytes);
  } else {
    outbuf_.append(bytes);
  }
  HandleWritable();
  if (closed_) return;
  if (outbuf_.size() - outbuf_sent_ > max_outbuf_) {
    // The peer generates replies faster than it reads them; past the cap
    // the only bounded option left is to drop the connection (reads were
    // already paused at the half-cap watermark).
    Close();
  }
}

void Connection::SendErrorAndClose(const Status& status) {
  if (closed_) return;
  std::string frame;
  EncodeError(ErrorMsg{status}, &frame);
  CompactOutbuf();
  if (outbuf_.empty()) {
    outbuf_ = std::move(frame);
  } else {
    outbuf_.append(frame);
  }
  close_after_flush_ = true;
  HandleWritable();
}

void Connection::CompactOutbuf() {
  // Drop the already-flushed prefix before appending: without this a
  // long-lived connection pins every sent byte until the buffer fully
  // drains once.
  if (outbuf_sent_ > 0) {
    outbuf_.erase(0, outbuf_sent_);
    outbuf_sent_ = 0;
  }
}

void Connection::HandleWritable() {
  while (outbuf_sent_ < outbuf_.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-stream must surface as EPIPE,
    // not kill the server process with SIGPIPE.
    const ssize_t n = send(fd_, outbuf_.data() + outbuf_sent_,
                           outbuf_.size() - outbuf_sent_, MSG_NOSIGNAL);
    if (n > 0) {
      outbuf_sent_ += static_cast<size_t>(n);
      bytes_out_.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateInterest();
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return;
  }
  outbuf_.clear();
  outbuf_sent_ = 0;
  if (close_after_flush_) {
    Close();
    return;
  }
  UpdateInterest();
}

void Connection::UpdateInterest() {
  const size_t pending = outbuf_.size() - outbuf_sent_;
  // Reading pauses at the half-cap watermark: a peer that will not consume
  // its replies gets no new pipelined queries accepted, and resumes
  // automatically as POLLOUT drains the buffer below the mark.
  loop_->Update(fd_,
                FdInterest{/*read=*/!close_after_flush_ &&
                               pending < max_outbuf_ / 2,
                           /*write=*/pending > 0});
}

void Connection::Close() {
  if (closed_) return;
  closed_ = true;
  loop_->Remove(fd_);
  close(fd_);
  fd_ = -1;
  if (on_close_) on_close_(this);
}

}  // namespace pexeso::net
