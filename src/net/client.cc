#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pexeso::net {

PexesoClient::~PexesoClient() { Close(); }

void PexesoClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status PexesoClient::ConnectOnce(const sockaddr_in& addr, int timeout_ms) {
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IoError("socket() failed");
  // Non-blocking connect bounded by poll: a dead shard (SYN blackhole)
  // fails in `timeout_ms` instead of the kernel's minutes-long default.
  const int flags = fcntl(fd_, F_GETFL, 0);
  fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  if (connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) {
      const int err = errno;
      Close();
      return Status::IoError(std::string("connect failed: ") + strerror(err));
    }
    pollfd pfd{fd_, POLLOUT, 0};
    int rc;
    do {
      rc = poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      Close();
      return Status::IoError("connect timed out");
    }
    if (rc < 0) {
      Close();
      return Status::IoError("poll failed during connect");
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (soerr != 0) {
      Close();
      return Status::IoError(std::string("connect failed: ") +
                             strerror(soerr));
    }
  }
  fcntl(fd_, F_SETFL, flags);
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status PexesoClient::Connect(const std::string& host, uint16_t port,
                             const std::string& tenant,
                             const ConnectOptions& opts) {
  if (fd_ >= 0) return Status::InvalidArgument("already connected");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address: " + host);
  }
  PEXESO_RETURN_NOT_OK(RetryTransient(opts.retry, nullptr, [&] {
    return ConnectOnce(addr, opts.connect_timeout_ms);
  }));

  std::string hello;
  EncodeHello(HelloMsg{kProtocolVersion, tenant, opts.role}, &hello);
  PEXESO_RETURN_NOT_OK(SendBytes(hello));
  Frame frame;
  PEXESO_RETURN_NOT_OK(ReadFrame(&frame));
  if (frame.type == FrameType::kError) {
    ErrorMsg err;
    const Status st = DecodeError(frame.payload, &err);
    Close();
    return st.ok() ? err.status : st;
  }
  if (frame.type != FrameType::kHelloAck) {
    Close();
    return Status::Corruption("expected HELLO ack");
  }
  const Status st = DecodeHelloAck(frame.payload, &server_info_);
  if (!st.ok()) Close();
  return st;
}

Status PexesoClient::SendBytes(const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IoError("send failed (server gone?)");
  }
  bytes_sent_ += bytes.size();
  return Status::OK();
}

Status PexesoClient::ReadFrame(Frame* frame) {
  for (;;) {
    bool has_frame = false;
    PEXESO_RETURN_NOT_OK(decoder_.Next(frame, &has_frame));
    if (has_frame) return Status::OK();
    char buf[64 * 1024];
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_received_ += static_cast<uint64_t>(n);
      decoder_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IoError("connection closed by server");
  }
}

Result<uint64_t> PexesoClient::SendQuery(const JoinQuery& query) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  const uint64_t id = next_query_id_++;
  Pending& p = pending_[id];
  p.mode = query.mode;
  p.k = query.k;
  std::string bytes;
  EncodeJoinQuery(id, query, &bytes);
  const Status st = SendBytes(bytes);
  if (!st.ok()) {
    pending_.erase(id);
    return st;
  }
  return id;
}

Status PexesoClient::Cancel(uint64_t query_id) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  std::string bytes;
  EncodeCancel(CancelMsg{query_id}, &bytes);
  return SendBytes(bytes);
}

Status PexesoClient::SendFloorUpdate(uint64_t query_id, uint32_t floor) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  std::string bytes;
  EncodeFloorUpdate(FloorUpdateMsg{query_id, floor}, &bytes);
  return SendBytes(bytes);
}

Status PexesoClient::DispatchFrame(Frame&& frame, std::string* stats_text,
                                   bool* got_stats) {
  switch (frame.type) {
    case FrameType::kChunk: {
      ChunkMsg msg;
      PEXESO_RETURN_NOT_OK(DecodeChunk(frame.payload, &msg));
      auto it = pending_.find(msg.query_id);
      if (it == pending_.end()) return Status::OK();  // stale: ignore
      Pending& p = it->second;
      if (p.part_columns.size() < msg.parts_total) {
        p.part_columns.resize(msg.parts_total);
      }
      if (msg.part < p.part_columns.size()) {
        p.part_columns[msg.part] = std::move(msg.columns);
      }
      if (!msg.status.ok()) {
        p.part_statuses.emplace_back(msg.part, msg.status);
      }
      return Status::OK();
    }
    case FrameType::kDone: {
      DoneMsg msg;
      PEXESO_RETURN_NOT_OK(DecodeDone(frame.payload, &msg));
      auto it = pending_.find(msg.query_id);
      if (it == pending_.end()) return Status::OK();
      it->second.done = true;
      it->second.status = msg.status;
      it->second.merge_parts = msg.merge_parts;
      it->second.stats = msg.stats;
      return Status::OK();
    }
    case FrameType::kStatsText: {
      if (stats_text != nullptr) {
        PEXESO_RETURN_NOT_OK(DecodeStatsText(frame.payload, stats_text));
        if (got_stats != nullptr) *got_stats = true;
      }
      return Status::OK();
    }
    case FrameType::kFloorUpdate: {
      FloorUpdateMsg msg;
      PEXESO_RETURN_NOT_OK(DecodeFloorUpdate(frame.payload, &msg));
      if (floor_listener_) floor_listener_(msg.query_id, msg.floor);
      return Status::OK();
    }
    case FrameType::kError: {
      ErrorMsg err;
      const Status st = DecodeError(frame.payload, &err);
      // The server hangs up after an error frame; everything pending dies.
      Close();
      return st.ok() ? err.status : st;
    }
    default:
      Close();
      return Status::Corruption("unexpected frame type from server");
  }
}

ClientQueryResult PexesoClient::TakeResult(uint64_t query_id) {
  ClientQueryResult result;
  auto it = pending_.find(query_id);
  if (it == pending_.end()) {
    result.status = Status::Internal("no such pending query");
    return result;
  }
  Pending& p = it->second;
  result.status = p.status;
  result.stats = p.stats;
  result.part_statuses = std::move(p.part_statuses);
  // Part order is the deterministic reassembly order regardless of how the
  // chunks raced on the wire; the merge then mirrors ServeSession's
  // FinalizeLocked exactly.
  if (result.status.ok() || result.status.interrupted()) {
    for (auto& chunk : p.part_columns) {
      result.columns.insert(result.columns.end(),
                            std::make_move_iterator(chunk.begin()),
                            std::make_move_iterator(chunk.end()));
    }
    if (p.merge_parts) {
      JoinQuery merge_query;
      merge_query.mode = p.mode;
      merge_query.k = p.k;
      FinishQueryMerge(merge_query, &result.columns);
    }
  }
  pending_.erase(it);
  return result;
}

ClientQueryResult PexesoClient::AwaitDone(uint64_t query_id) {
  ClientQueryResult failed;
  for (;;) {
    {
      auto it = pending_.find(query_id);
      if (it == pending_.end()) {
        failed.status = Status::Internal("no such pending query");
        return failed;
      }
      if (it->second.done) return TakeResult(query_id);
    }
    Frame frame;
    Status st = ReadFrame(&frame);
    if (st.ok()) st = DispatchFrame(std::move(frame), nullptr, nullptr);
    if (!st.ok()) {
      pending_.erase(query_id);
      failed.status = st;
      return failed;
    }
  }
}

Status PexesoClient::ReadFrameFor(Frame* frame, int timeout_ms,
                                  bool* has_frame) {
  *has_frame = false;
  PEXESO_RETURN_NOT_OK(decoder_.Next(frame, has_frame));
  if (*has_frame) return Status::OK();
  pollfd pfd{fd_, POLLIN, 0};
  int rc;
  do {
    rc = poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Status::IoError("poll failed");
  if (rc == 0) return Status::OK();  // tick: no frame yet
  char buf[64 * 1024];
  const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
  if (n > 0) {
    bytes_received_ += static_cast<uint64_t>(n);
    decoder_.Append(buf, static_cast<size_t>(n));
    return decoder_.Next(frame, has_frame);
  }
  if (n < 0 && errno == EINTR) return Status::OK();
  return Status::IoError("connection closed by server");
}

ClientQueryResult PexesoClient::AwaitDone(uint64_t query_id, int tick_ms,
                                          const std::function<Status()>& tick) {
  ClientQueryResult failed;
  for (;;) {
    {
      auto it = pending_.find(query_id);
      if (it == pending_.end()) {
        failed.status = Status::Internal("no such pending query");
        return failed;
      }
      if (it->second.done) return TakeResult(query_id);
    }
    if (tick) {
      const Status ts = tick();
      if (!ts.ok()) {
        // The caller abandoned the wait (hedge loser / external cancel);
        // the query stays server-side until the connection closes.
        pending_.erase(query_id);
        failed.status = ts;
        return failed;
      }
    }
    Frame frame;
    bool has_frame = false;
    Status st = ReadFrameFor(&frame, tick_ms, &has_frame);
    if (st.ok() && has_frame) {
      st = DispatchFrame(std::move(frame), nullptr, nullptr);
    }
    if (!st.ok()) {
      pending_.erase(query_id);
      failed.status = st;
      return failed;
    }
  }
}

ClientQueryResult PexesoClient::Query(const JoinQuery& query) {
  Result<uint64_t> id = SendQuery(query);
  if (!id.ok()) {
    ClientQueryResult failed;
    failed.status = id.status();
    return failed;
  }
  return AwaitDone(id.value());
}

Result<std::string> PexesoClient::Stats() {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  std::string request;
  EncodeStatsRequest(&request);
  PEXESO_RETURN_NOT_OK(SendBytes(request));
  std::string text;
  bool got = false;
  while (!got) {
    Frame frame;
    PEXESO_RETURN_NOT_OK(ReadFrame(&frame));
    PEXESO_RETURN_NOT_OK(DispatchFrame(std::move(frame), &text, &got));
  }
  return text;
}

}  // namespace pexeso::net
