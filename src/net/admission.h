#ifndef PEXESO_NET_ADMISSION_H_
#define PEXESO_NET_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace pexeso::net {

/// Per-tenant execution budget. A tenant over its running budget queues; a
/// tenant over both budgets is rejected with kResourceExhausted.
struct TenantBudget {
  size_t max_inflight = 4;
  size_t max_queued = 16;
};

struct AdmissionOptions {
  /// Budget for tenants without an explicit entry in `tenants`.
  TenantBudget default_budget;
  /// Named overrides (tenant id -> budget).
  std::map<std::string, TenantBudget> tenants;
  /// Server-wide ceilings across all tenants (0 = unlimited). A fair
  /// per-tenant split can still oversubscribe the box; these cap the sum.
  size_t global_max_inflight = 0;
  size_t global_max_queued = 0;
  /// Applied to arriving queries that carry no deadline of their own
  /// (<= 0 disables). A serving box should never run unbounded work on
  /// behalf of a client that forgot to set a budget.
  double default_deadline_ms = 0.0;
};

/// What Admit decided for one arriving query.
enum class AdmitDecision {
  kRun,    ///< under budget: start it now
  kQueue,  ///< running budget full, queue space left: parked FIFO
  kReject, ///< both budgets full: kResourceExhausted back to the client
};

/// Point-in-time counters for the STATS verb.
struct TenantCounters {
  uint64_t admitted = 0;   ///< decisions that were kRun or kQueue
  uint64_t queued = 0;     ///< decisions that were kQueue
  uint64_t rejected = 0;   ///< decisions that were kReject
  uint64_t completed = 0;  ///< OnComplete calls
  size_t inflight = 0;     ///< currently running
  size_t queue_depth = 0;  ///< currently parked
};

struct AdmissionSnapshot {
  size_t inflight = 0;
  size_t queue_depth = 0;
  uint64_t admitted = 0;
  uint64_t queued = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  std::map<std::string, TenantCounters> tenants;
};

/// \brief Passive (mutex-guarded, no threads of its own) admission ledger
/// for the server. The caller owns execution: Admit() classifies one
/// arriving query, OnComplete() retires a running one and returns the
/// queued job ids that became eligible — in global FIFO order — for the
/// caller to start. Job ids are caller-assigned and opaque.
///
/// Queueing is one global FIFO with eligibility promotion: a queued job is
/// promoted when its tenant has running headroom AND the global cap has
/// room. Promotion scans front-first, so among eligible jobs the oldest
/// always wins (the deterministic FIFO-drain the tests pin down), while a
/// blocked tenant's jobs cannot starve another tenant's behind them.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(std::move(options)) {}

  const AdmissionOptions& options() const { return options_; }

  /// Classifies job `id` from `tenant`; on kRun the job counts as running
  /// immediately, on kQueue it is parked until a promotion returns it.
  AdmitDecision Admit(uint64_t id, const std::string& tenant);

  /// Retires a running job. Returns the queued jobs promoted to running by
  /// the freed slot (already accounted as running; the caller must start
  /// them or hand each back via OnComplete).
  std::vector<uint64_t> OnComplete(uint64_t id);

  /// Drops a parked job (client went away before it ran). Returns true if
  /// the job was found in the queue. Running jobs are not Abandon-able:
  /// cancel them and let execution reach OnComplete.
  bool Abandon(uint64_t id);

  /// Shutdown path: empties the queue and returns every id that was parked
  /// (none of them will ever run). With the queue empty, subsequent
  /// OnComplete calls can promote nothing — the property the server's
  /// teardown relies on before it drains the session.
  std::vector<uint64_t> DrainQueued();

  AdmissionSnapshot Snapshot() const;

 private:
  struct QueuedJob {
    uint64_t id;
    std::string tenant;
  };

  const TenantBudget& BudgetFor(const std::string& tenant) const;
  bool HasRunHeadroomLocked(const std::string& tenant) const;

  AdmissionOptions options_;

  mutable std::mutex mu_;
  std::deque<QueuedJob> queue_;
  std::map<uint64_t, std::string> running_;  ///< job id -> tenant
  std::map<std::string, size_t> tenant_inflight_;
  std::map<std::string, size_t> tenant_queued_;
  std::map<std::string, TenantCounters> tenant_counters_;
  uint64_t admitted_ = 0;
  uint64_t queued_total_ = 0;
  uint64_t rejected_ = 0;
  uint64_t completed_ = 0;
};

}  // namespace pexeso::net

#endif  // PEXESO_NET_ADMISSION_H_
