#ifndef PEXESO_NET_CONNECTION_H_
#define PEXESO_NET_CONNECTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/status.h"
#include "net/event_loop.h"
#include "net/wire.h"

namespace pexeso::net {

/// Default cap on un-flushed output bytes per connection. Inbound frames
/// are bounded by the decoder's payload limit; this bounds the outbound
/// side, which the server itself generates — without it a client that
/// pipelines many large queries but reads slowly makes server memory
/// attacker-pace-controlled.
inline constexpr size_t kDefaultMaxOutbuf = 256ull << 20;

/// \brief One accepted TCP connection: the read side feeds a FrameDecoder
/// and hands complete frames up; the write side owns an output buffer with
/// partial-flush handling (POLLOUT interest appears only while bytes are
/// pending, the classic level-triggered discipline).
///
/// Backpressure: past half the output cap the connection stops reading
/// (no new pipelined queries from a peer that is not consuming replies);
/// past the full cap — reachable only via replies to queries already in
/// flight — it is dropped.
///
/// Every member is loop-thread-only. Worker threads that want to send on a
/// connection Post() a closure to the loop; the server enforces this.
class Connection {
 public:
  using FrameHandler = std::function<void(Connection*, Frame&&)>;
  /// Fires exactly once, after the fd is closed and removed from the loop.
  /// The Connection object is still alive during the call and is deleted by
  /// the owner afterwards.
  using CloseHandler = std::function<void(Connection*)>;

  Connection(EventLoop* loop, int fd, uint64_t id, size_t max_frame_payload,
             FrameHandler on_frame, CloseHandler on_close,
             size_t max_outbuf = kDefaultMaxOutbuf);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Registers the fd with the loop (read interest). Call once.
  void Register();

  /// Queues raw bytes (already frame-encoded) and flushes what the socket
  /// accepts now; the rest drains on POLLOUT.
  void Send(std::string bytes);

  /// Sends one kError frame and closes once it has drained. The protocol's
  /// answer to a malformed stream: tell the peer why, then hang up.
  void SendErrorAndClose(const Status& status);

  /// Closes now, dropping any unsent bytes. Fires the close handler.
  void Close();

  uint64_t id() const { return id_; }
  bool closed() const { return closed_; }
  // Byte/frame counters are atomics (relaxed) solely so the metrics
  // endpoint can read them off-loop without a data race; only the loop
  // thread writes them.
  uint64_t bytes_in() const {
    return bytes_in_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_out() const {
    return bytes_out_.load(std::memory_order_relaxed);
  }
  uint64_t frames_in() const {
    return frames_in_.load(std::memory_order_relaxed);
  }

  /// Session state the server sets after the HELLO handshake.
  const std::string& tenant() const { return tenant_; }
  void set_tenant(std::string t) { tenant_ = std::move(t); }
  bool hello_done() const { return hello_done_; }
  void set_hello_done() { hello_done_ = true; }

 private:
  void OnReady(FdInterest ready);
  void HandleReadable();
  void HandleWritable();
  void UpdateInterest();
  void CompactOutbuf();

  EventLoop* loop_;
  int fd_;
  uint64_t id_;
  FrameHandler on_frame_;
  CloseHandler on_close_;
  FrameDecoder decoder_;
  const size_t max_outbuf_;
  std::string outbuf_;
  size_t outbuf_sent_ = 0;
  bool close_after_flush_ = false;
  bool closed_ = false;
  bool hello_done_ = false;
  std::string tenant_;
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> frames_in_{0};
};

}  // namespace pexeso::net

#endif  // PEXESO_NET_CONNECTION_H_
