#ifndef PEXESO_NET_SERVER_H_
#define PEXESO_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "core/engine.h"
#include "net/admission.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "serve/index_cache.h"
#include "serve/serve_session.h"

namespace pexeso::net {

struct ServerOptions {
  std::string bind = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via port() after Start().
  uint16_t port = 0;
  /// ServeSession worker pool size (0 = one per hardware thread).
  size_t worker_threads = 0;
  /// Session-wide intra-query parallelism default (see ServeSessionOptions).
  size_t intra_query_threads = 0;
  AdmissionOptions admission;
  /// Repository dimensionality. Queries with a different dim fail with
  /// InvalidArgument per-query (the connection survives); 0 skips the check
  /// and is also what the HELLO ack advertises.
  uint32_t expected_dim = 0;
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Per-connection cap on un-flushed reply bytes; reading pauses at half
  /// of it and the connection is dropped past it (see Connection).
  size_t max_conn_outbuf = kDefaultMaxOutbuf;
  /// Borrowed cache whose hit/miss counters feed the STATS snapshot; null
  /// when the engine runs uncached.
  serve::IndexCache* cache = nullptr;
  /// Shard-role metadata advertised in the HELLO ack. A standalone server
  /// keeps the defaults (1 shard, index 0); a `--shards N --shard-of i`
  /// shard executor sets both so a coordinator can validate its topology.
  uint32_t shards_total = 1;
  uint32_t shard_of = 0;
};

/// \brief The networked serving front-end: accepts TCP connections on one
/// poll-based event loop, decodes wire-protocol queries, pushes them
/// through per-tenant admission control into a ServeSession, and streams
/// each part's result chunk back as it completes.
///
/// Threading: the loop thread owns all connection state; ServeSession pool
/// threads run the searches and hand encoded reply bytes back to the loop
/// via Post(). A client disconnect cancels its running queries' tokens (so
/// abandoned work stops at the next verification checkpoint) and abandons
/// its queued ones.
class PexesoServer {
 public:
  /// `engine` is borrowed and must outlive the server.
  PexesoServer(const JoinSearchEngine* engine, ServerOptions options);
  ~PexesoServer();

  PexesoServer(const PexesoServer&) = delete;
  PexesoServer& operator=(const PexesoServer&) = delete;

  /// Binds, listens, and starts the loop thread. On OK the server is
  /// reachable and port() is final.
  Status Start();

  /// Cancels running queries, drains the session, stops the loop, closes
  /// every connection. Idempotent; also run by the destructor.
  void Shutdown();

  uint16_t port() const { return port_; }

  /// The STATS verb's text snapshot (also callable in-process from any
  /// thread). One "name value" pair per line, prometheus-style labels for
  /// the per-tenant counters.
  std::string MetricsText() const;

  /// Server-lifetime totals over every completed query's SearchStats (the
  /// aggregate STATS reports; tests assert cancellation stopped work early
  /// through it).
  SearchStats SearchStatsSnapshot() const;

  uint64_t queries_cancelled_on_disconnect() const {
    return cancelled_on_disconnect_.load(std::memory_order_relaxed);
  }

 private:
  /// One admitted (running or queued) query and everything it borrows.
  struct QueryJob {
    uint64_t job_id = 0;
    uint64_t conn_id = 0;
    uint64_t client_query_id = 0;
    std::string tenant;
    VectorStore vectors;  ///< owned storage the query's vectors point at
    JoinQuery query;
    CancelToken cancel;
    /// kTopK only: the job's floor cell, linked into query.floor_link so
    /// part completions publish into it and kFloorUpdate frames from a
    /// coordinator raise it mid-flight.
    std::shared_ptr<TopKFloorCell> floor;
  };

  void OnAcceptable();
  void OnFrame(Connection* conn, Frame&& frame);
  void OnConnectionClosed(Connection* conn);
  void HandleHello(Connection* conn, const Frame& frame);
  void HandleQuery(Connection* conn, Frame&& frame);
  void HandleCancel(Connection* conn, const Frame& frame);
  void HandleFloorUpdate(Connection* conn, const Frame& frame);
  /// Submits job `job_id` to the session (admission already counts it as
  /// running). Safe from the loop thread and from pool threads.
  void StartJob(uint64_t job_id);
  void FinishJob(uint64_t job_id, const serve::QueryOutcome& outcome);
  /// Thread-safe send: posts the encoded bytes to the loop, which drops
  /// them silently if the connection is already gone.
  void SendToConnection(uint64_t conn_id, std::string bytes);
  void SendDone(uint64_t conn_id, uint64_t client_query_id,
                const Status& status, const SearchStats& stats);

  const JoinSearchEngine* engine_;
  const ServerOptions options_;
  const bool merge_parts_;  ///< engine is partitioned: clients run the merge
  const size_t num_parts_;
  AdmissionController admission_;
  EventLoop loop_;
  std::thread loop_thread_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> shut_down_{false};
  std::chrono::steady_clock::time_point started_at_;

  /// Loop-thread-only: the owning map of live connections.
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;
  /// Metrics-readable view of connections_ (erased strictly before the
  /// Connection is destroyed), plus byte totals of closed connections.
  mutable std::mutex registry_mu_;
  std::map<uint64_t, Connection*> registry_;
  uint64_t closed_bytes_in_ = 0;
  uint64_t closed_bytes_out_ = 0;
  uint64_t closed_frames_in_ = 0;

  std::mutex jobs_mu_;
  std::map<uint64_t, std::unique_ptr<QueryJob>> jobs_;
  std::atomic<uint64_t> next_job_id_{1};

  std::atomic<uint64_t> connections_total_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> queries_received_{0};
  std::atomic<uint64_t> queries_rejected_{0};
  std::atomic<uint64_t> queries_completed_{0};
  std::atomic<uint64_t> queries_failed_{0};
  std::atomic<uint64_t> queries_interrupted_{0};
  std::atomic<uint64_t> cancelled_on_disconnect_{0};
  mutable std::mutex stats_mu_;
  SearchStats total_stats_;

  /// Declared last: destroyed first, so in-flight query callbacks (which
  /// touch every member above) finish before anything they use goes away.
  /// Guarded by session_mu_ for the pointer itself (Shutdown nulls it);
  /// StartJob submits and MetricsText reads queue depths under the lock,
  /// so neither can race the teardown. The drain (ServeSession destructor)
  /// runs OUTSIDE the lock: outcome callbacks re-enter StartJob.
  mutable std::mutex session_mu_;
  std::unique_ptr<serve::ServeSession> session_;
};

}  // namespace pexeso::net

#endif  // PEXESO_NET_SERVER_H_
