#ifndef PEXESO_NET_EVENT_LOOP_H_
#define PEXESO_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

namespace pexeso::net {

/// Readiness bits a watched fd can subscribe to.
struct FdInterest {
  bool read = false;
  bool write = false;
};

/// \brief Single-threaded poll(2)-based reactor. One thread calls Run();
/// every fd callback fires on that thread, so connection state guarded by
/// the loop needs no locks. Other threads talk to the loop exclusively via
/// Post(), which enqueues a closure and wakes the poll through a self-pipe
/// — the standard trick to keep cross-thread interaction race-free without
/// handing sockets across threads.
///
/// poll (not epoll) on purpose: the server watches tens of fds, not tens of
/// thousands, and poll is portable to every POSIX the build targets. The
/// Add/Update/Remove surface would map 1:1 onto epoll if the fan-in ever
/// demands it.
class EventLoop {
 public:
  using FdCallback = std::function<void(FdInterest ready)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Watches `fd` with the given interest; `cb` fires on the loop thread
  /// with the readiness that triggered. Loop-thread-only (like Update and
  /// Remove): callers elsewhere Post() a closure that does the add.
  void Add(int fd, FdInterest interest, FdCallback cb);

  /// Changes the interest set of a watched fd.
  void Update(int fd, FdInterest interest);

  /// Stops watching `fd`. Safe to call from inside the fd's own callback;
  /// the loop re-checks registration before dispatching.
  void Remove(int fd);

  /// Thread-safe: enqueues `fn` to run on the loop thread and wakes the
  /// poll. The only EventLoop entry point other threads may use.
  void Post(std::function<void()> fn);

  /// Runs until Stop(). Dispatches ready fds and posted closures.
  void Run();

  /// Thread-safe: makes Run() return after the current dispatch round.
  void Stop();

  /// True when the calling thread is the one inside Run() (for asserts).
  bool OnLoopThread() const;

 private:
  struct Watch {
    FdInterest interest;
    FdCallback cb;
    /// Registration generation: fd numbers recycle (a callback may close
    /// one fd and accept a new connection onto the same number within a
    /// single dispatch pass), so revents snapshotted before poll() are
    /// delivered only to the registration they were polled for.
    uint64_t gen = 0;
  };

  void Wake();
  void DrainWakePipe();
  void RunPosted();

  std::map<int, Watch> watches_;
  uint64_t next_watch_gen_ = 0;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> loop_thread_id_{0};

  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace pexeso::net

#endif  // PEXESO_NET_EVENT_LOOP_H_
