#ifndef PEXESO_NET_CLIENT_H_
#define PEXESO_NET_CLIENT_H_

#include <netinet/in.h>

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/query.h"
#include "net/wire.h"

namespace pexeso::net {

/// How Connect establishes the TCP session. The timeout bounds each
/// connect(2) attempt (a dead shard's SYN blackhole would otherwise stall
/// the caller for the kernel's minutes-long default), and the retry policy
/// bounds how many attempts are made — only transient failures (kIoError)
/// retry, per common/retry.h.
struct ConnectOptions {
  int connect_timeout_ms = 5000;
  RetryPolicy retry;
  /// HELLO role metadata ("" = plain client, "coordinator" = scatter-gather
  /// coordinator using the server as a shard executor).
  std::string role;
};

/// Final result of one remote query, reassembled client-side: chunks are
/// slotted by part index and concatenated in part order, then (for a
/// partitioned server engine) run through the same FinishQueryMerge the
/// in-process ServeSession applies — so the columns are byte-identical to a
/// local Execute of the same query.
struct ClientQueryResult {
  Status status;  ///< the query's final status from the DONE frame
  std::vector<JoinableColumn> columns;
  SearchStats stats;  ///< server-side counters for this query
  /// Parts that contributed a non-OK chunk (degraded/partial serving).
  std::vector<std::pair<size_t, Status>> part_statuses;
};

/// \brief Blocking wire-protocol client: one TCP connection, synchronous
/// conversation. Query() is the one-shot call; SendQuery()/AwaitDone() are
/// the split halves for callers that pipeline several queries onto the
/// connection before collecting any answer (frames for other queries are
/// buffered while awaiting a specific one). Not thread-safe; use one
/// client per thread.
class PexesoClient {
 public:
  PexesoClient() = default;
  ~PexesoClient();

  PexesoClient(const PexesoClient&) = delete;
  PexesoClient& operator=(const PexesoClient&) = delete;

  /// Connects (bounded by `opts`' timeout + retry policy) and runs the
  /// HELLO handshake under `tenant`.
  Status Connect(const std::string& host, uint16_t port,
                 const std::string& tenant, const ConnectOptions& opts = {});

  /// Server identity from the handshake (valid after Connect).
  const HelloAckMsg& server_info() const { return server_info_; }

  /// Submits + awaits one query.
  ClientQueryResult Query(const JoinQuery& query);

  /// Pipelining half 1: sends the query, returns its wire id immediately.
  Result<uint64_t> SendQuery(const JoinQuery& query);
  /// Pipelining half 2: blocks until that query's DONE frame (buffering
  /// other queries' frames meanwhile) and returns the reassembled result.
  ClientQueryResult AwaitDone(uint64_t query_id);
  /// Tick variant for coordinators: between reads it wakes at least every
  /// `tick_ms` and calls `tick`. A non-OK tick return abandons the wait
  /// with that status (the hedge-loser exit: the caller closes the
  /// connection, which cancels the query server-side). The floor listener
  /// fires from inside this wait as kFloorUpdate frames arrive.
  ClientQueryResult AwaitDone(uint64_t query_id, int tick_ms,
                              const std::function<Status()>& tick);

  /// Asks the server to abandon a running query.
  Status Cancel(uint64_t query_id);

  /// Pushes a raised global top-k floor for a running query (coordinator ->
  /// shard direction; fire-and-forget hint).
  Status SendFloorUpdate(uint64_t query_id, uint32_t floor);

  /// Installs the handler for server-pushed kFloorUpdate frames (shard ->
  /// coordinator direction). Invoked from whichever blocking call is
  /// reading frames when the update arrives.
  void set_floor_listener(std::function<void(uint64_t, uint32_t)> fn) {
    floor_listener_ = std::move(fn);
  }

  /// Fetches the STATS metrics snapshot.
  Result<std::string> Stats();

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Raw protocol traffic this client exchanged (for the bench's
  /// bytes-per-query figure).
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

 private:
  /// In-flight reassembly state of one pipelined query.
  struct Pending {
    QueryMode mode = QueryMode::kThreshold;
    size_t k = 0;
    std::vector<std::vector<JoinableColumn>> part_columns;
    std::vector<std::pair<size_t, Status>> part_statuses;
    bool done = false;
    Status status;
    bool merge_parts = false;
    SearchStats stats;
  };

  Status ConnectOnce(const sockaddr_in& addr, int timeout_ms);
  Status SendBytes(const std::string& bytes);
  /// Reads until one complete frame is available.
  Status ReadFrame(Frame* frame);
  /// Like ReadFrame but gives up after `timeout_ms` without a complete
  /// frame: OK with *has_frame=false means "tick, try again".
  Status ReadFrameFor(Frame* frame, int timeout_ms, bool* has_frame);
  /// Routes one server frame into the pending-query table (or `stats_text`
  /// for kStatsText). kError fails every pending query and closes.
  Status DispatchFrame(Frame&& frame, std::string* stats_text,
                       bool* got_stats);
  ClientQueryResult TakeResult(uint64_t query_id);

  int fd_ = -1;
  FrameDecoder decoder_;
  HelloAckMsg server_info_;
  std::function<void(uint64_t, uint32_t)> floor_listener_;
  uint64_t next_query_id_ = 1;
  std::map<uint64_t, Pending> pending_;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

}  // namespace pexeso::net

#endif  // PEXESO_NET_CLIENT_H_
