#ifndef PEXESO_NET_WIRE_H_
#define PEXESO_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/query.h"
#include "vec/search_stats.h"

namespace pexeso::net {

/// \brief The pexeso_server wire protocol: compact length-prefixed binary
/// frames over TCP, little-endian (the library's native layout, like the
/// snapshot files), each integrity-checked with the same CRC-32 the
/// common/serde snapshot footers use.
///
/// Frame layout (kFrameOverhead = 13 bytes around the payload):
///
///   +--------+---------+------+-------------------+--------+
///   | magic  | length  | type | payload            | crc32  |
///   | u32    | u32     | u8   | `length` bytes     | u32    |
///   +--------+---------+------+-------------------+--------+
///
/// The CRC covers the type byte plus the payload. A receiver that sees a
/// wrong magic, an implausible length, an unknown type or a CRC mismatch is
/// looking at a corrupt or hostile stream; the server answers with one
/// kError frame and closes the connection (resynchronizing inside a
/// byte-corrupted stream is not worth the attack surface).
///
/// Conversation: the client opens with kHello (protocol version + tenant
/// id) and waits for kHelloAck. Afterwards it may pipeline any number of
/// kQuery frames (client-assigned ids); the server streams kChunk frames —
/// one per partition, exactly as ServeSession::SubmitStreaming produces
/// them, racing across queries — and terminates each query with one kDone
/// frame (final status + merge flag + SearchStats). kStats at any time
/// yields one kStatsText metrics snapshot. kCancel aborts a running query
/// via its CancelToken.
inline constexpr uint32_t kFrameMagic = 0x31575850u;  // "PXW1" little-endian
inline constexpr uint32_t kProtocolVersion = 1;
/// magic + length + type before the payload, CRC after it.
inline constexpr size_t kFrameHeaderBytes = 9;
inline constexpr size_t kFrameOverhead = kFrameHeaderBytes + 4;
/// Default per-frame payload ceiling; a length beyond the receiver's limit
/// is treated as corruption, so a flipped length bit can never drive a
/// multi-gigabyte allocation.
inline constexpr size_t kDefaultMaxFramePayload = 64ull << 20;
/// Ceiling on ChunkMsg::parts_total accepted off the wire. The client
/// sizes its per-part reassembly table from this field, so an unvalidated
/// value would let a corrupt or hostile server drive an arbitrarily large
/// allocation; real lakes are orders of magnitude below this.
inline constexpr uint64_t kMaxWireParts = 1u << 16;

enum class FrameType : uint8_t {
  kHello = 1,      ///< client -> server: version + tenant
  kHelloAck = 2,   ///< server -> client: version + engine + dim + parts
  kQuery = 3,      ///< client -> server: one serialized JoinQuery
  kCancel = 4,     ///< client -> server: abort a running query by id
  kStats = 5,      ///< client -> server: request a metrics snapshot
  kChunk = 6,      ///< server -> client: one partition's result chunk
  kDone = 7,       ///< server -> client: query finished (status + stats)
  kStatsText = 8,  ///< server -> client: the metrics snapshot text
  kError = 9,      ///< server -> client: protocol-level failure, then close
  /// Both directions, kTopK only: the global k-th-best floor for a running
  /// query was raised. Coordinator -> shard: prune against this. Shard ->
  /// coordinator: my local k-th best implies this global floor. Purely an
  /// optimization hint — either side may drop or reorder it without
  /// affecting results (strict-beat pruning), so it carries no reply.
  kFloorUpdate = 10,
};

/// True for type bytes that name a known frame.
bool IsKnownFrameType(uint8_t type);

/// \brief Bounds-checked reader over one received payload. Mirrors
/// common/serde's BinaryReader contract — every length prefix is clamped by
/// the bytes actually remaining, so malformed input yields Status, never a
/// crash or an implausible allocation.
class WireReader {
 public:
  WireReader(const void* data, size_t size)
      : p_(static_cast<const uint8_t*>(data)), remaining_(size) {}

  explicit WireReader(std::string_view payload)
      : WireReader(payload.data(), payload.size()) {}

  template <typename T>
  Status Read(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadRaw(v, sizeof(T), "truncated fixed field");
  }

  Status ReadString(std::string* s) {
    uint64_t n = 0;
    PEXESO_RETURN_NOT_OK(Read(&n));
    if (n > remaining_) return Status::Corruption("string length implausible");
    s->resize(n);
    return ReadRaw(s->data(), n, "truncated string");
  }

  template <typename T>
  Status ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    PEXESO_RETURN_NOT_OK(Read(&n));
    if (n > remaining_ / sizeof(T)) {
      return Status::Corruption("vector length implausible");
    }
    v->resize(n);
    return ReadRaw(v->data(), n * sizeof(T), "truncated vector");
  }

  Status ReadStatus(Status* out);

  size_t remaining() const { return remaining_; }

  /// Payloads are fixed messages: trailing bytes mean a framing bug or
  /// tampering, not forward compatibility.
  Status ExpectEnd() const {
    return remaining_ == 0 ? Status::OK()
                           : Status::Corruption("trailing payload bytes");
  }

 private:
  Status ReadRaw(void* v, size_t n, const char* what) {
    if (n > remaining_) return Status::Corruption(what);
    if (n == 0) return Status::OK();  // empty string/vector: data() is null
    std::memcpy(v, p_, n);
    p_ += n;
    remaining_ -= n;
    return Status::OK();
  }

  const uint8_t* p_;
  size_t remaining_;
};

/// \brief Append-only writer building one payload in memory (the sibling of
/// WireReader; same field formats as common/serde's BinaryWriter).
class WireWriter {
 public:
  template <typename T>
  void Write(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteRaw(&v, sizeof(T));
  }

  void WriteString(std::string_view s) {
    Write<uint64_t>(s.size());
    WriteRaw(s.data(), s.size());
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<uint64_t>(v.size());
    WriteRaw(v.data(), v.size() * sizeof(T));
  }

  void WriteStatus(const Status& s);

  const std::string& buffer() const { return buf_; }
  std::string TakeBuffer() { return std::move(buf_); }

 private:
  void WriteRaw(const void* p, size_t n) {
    if (n == 0) return;  // an empty vector's data() may be null
    buf_.append(static_cast<const char*>(p), n);
  }

  std::string buf_;
};

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Appends the full wire encoding of one frame (header + payload + CRC) to
/// `out`.
void EncodeFrame(FrameType type, std::string_view payload, std::string* out);

/// \brief Incremental frame extractor over a TCP byte stream. Feed bytes as
/// they arrive; Next() yields complete frames one at a time. Any framing
/// violation (bad magic, oversized length, unknown type, CRC mismatch)
/// returns Corruption and poisons the decoder — the stream has no reliable
/// resync point past corrupt bytes, so the owner must close the connection.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  void Append(const char* data, size_t n) { buf_.append(data, n); }

  /// On OK: `*has_frame` says whether `*out` was filled (false = need more
  /// bytes). Corruption is sticky.
  Status Next(Frame* out, bool* has_frame);

  /// Bytes buffered but not yet consumed by a complete frame.
  size_t buffered() const { return buf_.size(); }

 private:
  size_t max_payload_;
  std::string buf_;
  bool poisoned_ = false;
};

// --------------------------------------------------------------- messages
// Each message is the payload of one frame type, with Encode/Decode pairs.
// Decode validates everything (mode bytes, dimensions, length consistency)
// and returns Corruption for anything malformed.

struct HelloMsg {
  uint32_t version = kProtocolVersion;
  std::string tenant;
  /// Who is connecting: "" = plain client, "coordinator" = a scatter-gather
  /// coordinator using this server as a shard executor (counted separately
  /// in the server metrics). Free-form so future roles need no frame bump.
  std::string role;
};

struct HelloAckMsg {
  uint32_t version = kProtocolVersion;
  std::string engine;   ///< JoinSearchEngine::name() of the served engine
  uint32_t dim = 0;     ///< repository dimensionality (0 = unknown)
  uint64_t parts = 1;   ///< partition count (1 for in-memory engines)
  /// Shard-role metadata: this server owns the parts of shard `shard_of`
  /// out of `shards_total` round-robin shards of one lake. 1/0 = an
  /// unsharded server (owns everything). `parts` stays the count this
  /// server itself serves, i.e. the OWNED subset under sharding.
  uint32_t shards_total = 1;
  uint32_t shard_of = 0;
};

struct CancelMsg {
  uint64_t query_id = 0;
};

/// One partition's result chunk — the wire image of serve::StreamChunk,
/// tagged with the client-assigned query id.
struct ChunkMsg {
  uint64_t query_id = 0;
  uint64_t part = 0;
  uint64_t parts_total = 1;
  bool last = false;
  Status status;
  std::vector<JoinableColumn> columns;
};

/// Query epilogue: the final status (ServeSession's part-status merge), the
/// counters, and whether the client must run the canonical part merge
/// (FinishQueryMerge) over the reassembled chunks — true exactly when the
/// server engine is partitioned, mirroring the in-process ServeSession.
struct DoneMsg {
  uint64_t query_id = 0;
  Status status;
  bool merge_parts = false;
  SearchStats stats;
};

struct ErrorMsg {
  Status status;
};

/// A raised global floor for one running kTopK query (see
/// FrameType::kFloorUpdate). Monotone hint; stale or duplicate frames are
/// harmless because receivers fold it in with a CAS-max.
struct FloorUpdateMsg {
  uint64_t query_id = 0;
  uint32_t floor = 0;
};

void EncodeHello(const HelloMsg& m, std::string* out);
Status DecodeHello(std::string_view payload, HelloMsg* m);

void EncodeHelloAck(const HelloAckMsg& m, std::string* out);
Status DecodeHelloAck(std::string_view payload, HelloAckMsg* m);

void EncodeCancel(const CancelMsg& m, std::string* out);
Status DecodeCancel(std::string_view payload, CancelMsg* m);

void EncodeChunk(const ChunkMsg& m, std::string* out);
Status DecodeChunk(std::string_view payload, ChunkMsg* m);

void EncodeDone(const DoneMsg& m, std::string* out);
Status DecodeDone(std::string_view payload, DoneMsg* m);

void EncodeError(const ErrorMsg& m, std::string* out);
Status DecodeError(std::string_view payload, ErrorMsg* m);

void EncodeFloorUpdate(const FloorUpdateMsg& m, std::string* out);
Status DecodeFloorUpdate(std::string_view payload, FloorUpdateMsg* m);

void EncodeStatsRequest(std::string* out);
void EncodeStatsText(std::string_view text, std::string* out);
Status DecodeStatsText(std::string_view payload, std::string* text);

/// Serializes `query` (mode, k, thresholds, mapping flag, topk floor, the
/// deadline as remaining millis, and the query vectors) under the
/// client-assigned `query_id`. Execution-local fields — cancel token, intra
/// pool/threads, ablation — do not travel: cancellation has its own verb
/// and parallelism is server policy.
void EncodeJoinQuery(uint64_t query_id, const JoinQuery& query,
                     std::string* out);

/// Decodes a kQuery payload into `*vectors` (the owned storage) and `*query`
/// (whose vectors field points at it — `vectors` must therefore outlive
/// `query`). Malformed mode bytes, a zero dim, or a vector buffer that is
/// not a whole number of vectors all return Corruption.
Status DecodeJoinQuery(std::string_view payload, uint64_t* query_id,
                       VectorStore* vectors, JoinQuery* query);

}  // namespace pexeso::net

#endif  // PEXESO_NET_WIRE_H_
