#include "net/admission.h"

#include <algorithm>
#include <utility>

namespace pexeso::net {

const TenantBudget& AdmissionController::BudgetFor(
    const std::string& tenant) const {
  auto it = options_.tenants.find(tenant);
  return it != options_.tenants.end() ? it->second : options_.default_budget;
}

bool AdmissionController::HasRunHeadroomLocked(
    const std::string& tenant) const {
  if (options_.global_max_inflight != 0 &&
      running_.size() >= options_.global_max_inflight) {
    return false;
  }
  auto it = tenant_inflight_.find(tenant);
  const size_t inflight = it != tenant_inflight_.end() ? it->second : 0;
  return inflight < BudgetFor(tenant).max_inflight;
}

AdmitDecision AdmissionController::Admit(uint64_t id,
                                         const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantCounters& tc = tenant_counters_[tenant];
  // A freed slot always drains the queue before Admit can observe headroom
  // (OnComplete promotes under the same mutex), so running past parked
  // jobs here cannot happen — but keep arrival order honest anyway: a new
  // job never jumps a non-empty queue.
  if (queue_.empty() && HasRunHeadroomLocked(tenant)) {
    running_.emplace(id, tenant);
    ++tenant_inflight_[tenant];
    ++admitted_;
    ++tc.admitted;
    return AdmitDecision::kRun;
  }
  const size_t queued = tenant_queued_[tenant];
  const bool global_queue_full =
      options_.global_max_queued != 0 &&
      queue_.size() >= options_.global_max_queued;
  if (global_queue_full || queued >= BudgetFor(tenant).max_queued) {
    ++rejected_;
    ++tc.rejected;
    return AdmitDecision::kReject;
  }
  queue_.push_back(QueuedJob{id, tenant});
  ++tenant_queued_[tenant];
  ++admitted_;
  ++queued_total_;
  ++tc.admitted;
  ++tc.queued;
  return AdmitDecision::kQueue;
}

std::vector<uint64_t> AdmissionController::OnComplete(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = running_.find(id);
  std::vector<uint64_t> promoted;
  if (it == running_.end()) return promoted;
  auto inflight_it = tenant_inflight_.find(it->second);
  if (inflight_it != tenant_inflight_.end() && inflight_it->second > 0) {
    --inflight_it->second;
  }
  ++completed_;
  ++tenant_counters_[it->second].completed;
  running_.erase(it);

  // Front-first eligibility scan: the oldest queued job whose tenant has
  // headroom wins each freed slot; ineligible jobs are skipped (not
  // dropped) so one saturated tenant cannot dam the whole queue.
  for (auto q = queue_.begin(); q != queue_.end();) {
    if (!HasRunHeadroomLocked(q->tenant)) {
      ++q;
      continue;
    }
    running_.emplace(q->id, q->tenant);
    ++tenant_inflight_[q->tenant];
    auto queued_it = tenant_queued_.find(q->tenant);
    if (queued_it != tenant_queued_.end() && queued_it->second > 0) {
      --queued_it->second;
    }
    promoted.push_back(q->id);
    q = queue_.erase(q);
  }
  return promoted;
}

bool AdmissionController::Abandon(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto q = queue_.begin(); q != queue_.end(); ++q) {
    if (q->id != id) continue;
    auto queued_it = tenant_queued_.find(q->tenant);
    if (queued_it != tenant_queued_.end() && queued_it->second > 0) {
      --queued_it->second;
    }
    queue_.erase(q);
    return true;
  }
  return false;
}

std::vector<uint64_t> AdmissionController::DrainQueued() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> drained;
  drained.reserve(queue_.size());
  for (const QueuedJob& q : queue_) {
    drained.push_back(q.id);
    auto queued_it = tenant_queued_.find(q.tenant);
    if (queued_it != tenant_queued_.end() && queued_it->second > 0) {
      --queued_it->second;
    }
  }
  queue_.clear();
  return drained;
}

AdmissionSnapshot AdmissionController::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionSnapshot s;
  s.inflight = running_.size();
  s.queue_depth = queue_.size();
  s.admitted = admitted_;
  s.queued = queued_total_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.tenants = tenant_counters_;
  for (auto& [tenant, tc] : s.tenants) {
    auto inflight_it = tenant_inflight_.find(tenant);
    tc.inflight = inflight_it != tenant_inflight_.end() ? inflight_it->second : 0;
    auto queued_it = tenant_queued_.find(tenant);
    tc.queue_depth = queued_it != tenant_queued_.end() ? queued_it->second : 0;
  }
  return s;
}

}  // namespace pexeso::net
