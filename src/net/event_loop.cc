#include "net/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <thread>
#include <utility>

#include "common/check.h"

namespace pexeso::net {

namespace {

uint64_t ThisThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

EventLoop::EventLoop() {
  PEXESO_CHECK(pipe(wake_pipe_) == 0);
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);
}

EventLoop::~EventLoop() {
  if (wake_pipe_[0] >= 0) close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) close(wake_pipe_[1]);
}

bool EventLoop::OnLoopThread() const {
  return loop_thread_id_.load(std::memory_order_relaxed) == ThisThreadId();
}

void EventLoop::Add(int fd, FdInterest interest, FdCallback cb) {
  watches_[fd] = Watch{interest, std::move(cb), ++next_watch_gen_};
}

void EventLoop::Update(int fd, FdInterest interest) {
  auto it = watches_.find(fd);
  if (it != watches_.end()) it->second.interest = interest;
}

void EventLoop::Remove(int fd) { watches_.erase(fd); }

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  Wake();
}

void EventLoop::Wake() {
  const char byte = 1;
  // A full pipe already guarantees a pending wake-up; EAGAIN is fine.
  [[maybe_unused]] ssize_t n = write(wake_pipe_[1], &byte, 1);
}

void EventLoop::DrainWakePipe() {
  char buf[256];
  while (read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
  }
}

void EventLoop::RunPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  Wake();
}

void EventLoop::Run() {
  loop_thread_id_.store(ThisThreadId(), std::memory_order_relaxed);
  std::vector<pollfd> pfds;
  std::vector<int> fds;
  std::vector<uint64_t> gens;
  while (!stop_.load(std::memory_order_relaxed)) {
    pfds.clear();
    fds.clear();
    gens.clear();
    pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    fds.push_back(wake_pipe_[0]);
    gens.push_back(0);
    for (const auto& [fd, watch] : watches_) {
      short events = 0;
      if (watch.interest.read) events |= POLLIN;
      if (watch.interest.write) events |= POLLOUT;
      if (events == 0) continue;
      pfds.push_back(pollfd{fd, events, 0});
      fds.push_back(fd);
      gens.push_back(watch.gen);
    }
    const int rc = poll(pfds.data(), pfds.size(), /*timeout_ms=*/1000);
    if (rc < 0) continue;  // EINTR: just re-poll

    if (pfds[0].revents != 0) DrainWakePipe();
    RunPosted();

    for (size_t i = 1; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      // A callback may Remove any fd (including its own); dispatch only to
      // watches that still exist at fire time. The generation check also
      // rejects a watch that was removed and whose fd number was re-added
      // (accept reuses closed fd numbers) during this same pass — the
      // snapshot's revents belong to the old registration, not the new one.
      auto it = watches_.find(fds[i]);
      if (it == watches_.end() || it->second.gen != gens[i]) continue;
      FdInterest ready;
      ready.read = (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
      ready.write = (pfds[i].revents & (POLLOUT | POLLERR)) != 0;
      // Copy the callback: it may Remove(fd) and invalidate `it`.
      FdCallback cb = it->second.cb;
      cb(ready);
    }
  }
  loop_thread_id_.store(0, std::memory_order_relaxed);
}

}  // namespace pexeso::net
