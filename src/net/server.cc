#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

namespace pexeso::net {

namespace {

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void AppendCounter(std::string* out, const char* name, uint64_t value) {
  char line[160];
  std::snprintf(line, sizeof(line), "%s %llu\n", name,
                static_cast<unsigned long long>(value));
  out->append(line);
}

void AppendGauge(std::string* out, const char* name, double value) {
  char line[160];
  std::snprintf(line, sizeof(line), "%s %.6f\n", name, value);
  out->append(line);
}

void AppendTenantCounter(std::string* out, const char* name,
                         const std::string& tenant, uint64_t value) {
  char line[256];
  std::snprintf(line, sizeof(line), "%s{tenant=\"%s\"} %llu\n", name,
                tenant.c_str(), static_cast<unsigned long long>(value));
  out->append(line);
}

}  // namespace

PexesoServer::PexesoServer(const JoinSearchEngine* engine,
                           ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      merge_parts_(dynamic_cast<const PartitionedJoinEngine*>(engine) !=
                   nullptr),
      num_parts_(
          merge_parts_
              ? dynamic_cast<const PartitionedJoinEngine*>(engine)->NumParts()
              : 1),
      admission_(options_.admission) {
  serve::ServeSessionOptions session_options;
  session_options.num_threads = options_.worker_threads;
  session_options.intra_query_threads = options_.intra_query_threads;
  session_ = std::make_unique<serve::ServeSession>(engine_, session_options);
}

PexesoServer::~PexesoServer() { Shutdown(); }

Status PexesoServer::Start() {
  if (started_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("server already started");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " + options_.bind);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("bind failed: ") + strerror(err));
  }
  if (listen(listen_fd_, 64) != 0) {
    const int err = errno;
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("listen failed: ") + strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  SetNonBlocking(listen_fd_);

  started_at_ = std::chrono::steady_clock::now();
  // Registered before the loop thread exists, so the loop-thread-only Add
  // contract holds trivially.
  loop_.Add(listen_fd_, FdInterest{/*read=*/true, /*write=*/false},
            [this](FdInterest) { OnAcceptable(); });
  started_.store(true, std::memory_order_relaxed);
  loop_thread_ = std::thread([this] { loop_.Run(); });
  return Status::OK();
}

void PexesoServer::Shutdown() {
  if (!started_.load(std::memory_order_relaxed)) return;
  if (shut_down_.exchange(true)) return;

  // Stop the loop thread FIRST: once joined it can decode no more frames,
  // so no new query can be admitted and no STATS probe can read the
  // session while it is being torn down below.
  loop_.Stop();
  if (loop_thread_.joinable()) loop_thread_.join();

  // Empty the admission queue before draining, so a completing query's
  // OnComplete finds nothing to promote into the dying session; then
  // cancel everything still running so the drain is bounded by a
  // checkpoint interval, not by the slowest query.
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (uint64_t id : admission_.DrainQueued()) jobs_.erase(id);
    for (auto& [id, job] : jobs_) job->cancel.Cancel();
  }

  // Detach the session under session_mu_ (StartJob and MetricsText
  // null-check under the same lock), then drain it OUTSIDE the lock:
  // outcome callbacks re-enter StartJob, which takes session_mu_.
  std::unique_ptr<serve::ServeSession> session;
  {
    std::lock_guard<std::mutex> lock(session_mu_);
    session = std::move(session_);
  }
  session.reset();

  // Loop thread is gone; its exclusive state is now safely ours.
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    registry_.clear();
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.clear();
  }
}

void PexesoServer::OnAcceptable() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure: poll again later
    }
    SetNonBlocking(fd);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(
        &loop_, fd, id, options_.max_frame_payload,
        [this](Connection* c, Frame&& f) { OnFrame(c, std::move(f)); },
        [this](Connection* c) { OnConnectionClosed(c); },
        options_.max_conn_outbuf);
    conn->Register();
    {
      std::lock_guard<std::mutex> lock(registry_mu_);
      registry_.emplace(id, conn.get());
    }
    connections_.emplace(id, std::move(conn));
    connections_total_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PexesoServer::OnConnectionClosed(Connection* conn) {
  const uint64_t conn_id = conn->id();
  // The peer went away: running queries get their token cancelled (the
  // search stops at its next checkpoint instead of finishing work nobody
  // will read), queued ones leave the admission queue entirely.
  std::vector<uint64_t> abandoned;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (auto& [job_id, job] : jobs_) {
      if (job->conn_id != conn_id) continue;
      if (admission_.Abandon(job_id)) {
        abandoned.push_back(job_id);
      } else {
        job->cancel.Cancel();
        cancelled_on_disconnect_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (uint64_t job_id : abandoned) jobs_.erase(job_id);
  }
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    registry_.erase(conn_id);
    closed_bytes_in_ += conn->bytes_in();
    closed_bytes_out_ += conn->bytes_out();
    closed_frames_in_ += conn->frames_in();
  }
  // Deletion is deferred: this close handler runs inside a Connection
  // member function, so erasing (destroying) it here would free the object
  // under its own feet. The posted closure runs after the stack unwinds.
  loop_.Post([this, conn_id] { connections_.erase(conn_id); });
}

void PexesoServer::OnFrame(Connection* conn, Frame&& frame) {
  if (!conn->hello_done() && frame.type != FrameType::kHello) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    conn->SendErrorAndClose(
        Status::InvalidArgument("expected HELLO as the first frame"));
    return;
  }
  switch (frame.type) {
    case FrameType::kHello:
      HandleHello(conn, frame);
      return;
    case FrameType::kQuery:
      HandleQuery(conn, std::move(frame));
      return;
    case FrameType::kCancel:
      HandleCancel(conn, frame);
      return;
    case FrameType::kFloorUpdate:
      HandleFloorUpdate(conn, frame);
      return;
    case FrameType::kStats: {
      std::string reply;
      EncodeStatsText(MetricsText(), &reply);
      conn->Send(std::move(reply));
      return;
    }
    default:
      // Server-to-client frame types arriving at the server: a confused or
      // hostile peer.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      conn->SendErrorAndClose(
          Status::InvalidArgument("unexpected frame type from client"));
      return;
  }
}

void PexesoServer::HandleHello(Connection* conn, const Frame& frame) {
  HelloMsg hello;
  const Status st = DecodeHello(frame.payload, &hello);
  if (!st.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    conn->SendErrorAndClose(st);
    return;
  }
  if (hello.version != kProtocolVersion) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    conn->SendErrorAndClose(Status::NotSupported(
        "protocol version mismatch (server speaks v1)"));
    return;
  }
  conn->set_tenant(hello.tenant);
  conn->set_hello_done();
  HelloAckMsg ack;
  ack.engine = engine_->name();
  ack.dim = options_.expected_dim;
  ack.parts = num_parts_;
  ack.shards_total = options_.shards_total;
  ack.shard_of = options_.shard_of;
  std::string reply;
  EncodeHelloAck(ack, &reply);
  conn->Send(std::move(reply));
}

void PexesoServer::HandleQuery(Connection* conn, Frame&& frame) {
  queries_received_.fetch_add(1, std::memory_order_relaxed);
  auto job = std::make_unique<QueryJob>();
  uint64_t client_query_id = 0;
  const Status st = DecodeJoinQuery(frame.payload, &client_query_id,
                                    &job->vectors, &job->query);
  if (!st.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    conn->SendErrorAndClose(st);
    return;
  }
  if (options_.expected_dim != 0 &&
      job->vectors.dim() != options_.expected_dim) {
    // A well-formed frame carrying the wrong repository dimensionality is a
    // per-query error, not a protocol violation: fail the query, keep the
    // connection.
    SendDone(conn->id(), client_query_id,
             Status::InvalidArgument("query dim does not match repository"),
             SearchStats{});
    return;
  }
  const uint64_t job_id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  job->job_id = job_id;
  job->conn_id = conn->id();
  job->client_query_id = client_query_id;
  job->tenant = conn->tenant();
  job->cancel = CancelToken::Create();
  job->query.cancel = job->cancel;
  job->query.vectors = &job->vectors;  // heap-stable: the map moves the ptr
  if (job->query.mode == QueryMode::kTopK) {
    // The job's floor cell: part completions raise it (the session counts
    // those as sends), and a coordinator's kFloorUpdate frames raise it
    // from outside so later parts prune against the global k-th best.
    job->floor = std::make_shared<TopKFloorCell>(job->query.topk_floor);
    job->query.floor_link = job->floor;
  }
  if (!job->query.deadline.has_deadline() &&
      options_.admission.default_deadline_ms > 0) {
    // The default budget anchors at ARRIVAL: time spent parked in the
    // admission queue counts against it, so an overloaded server sheds the
    // queries it can no longer serve in time instead of running them late.
    job->query.deadline =
        Deadline::AfterMillis(options_.admission.default_deadline_ms);
  }
  const std::string tenant = job->tenant;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.emplace(job_id, std::move(job));
  }
  switch (admission_.Admit(job_id, tenant)) {
    case AdmitDecision::kRun:
      StartJob(job_id);
      return;
    case AdmitDecision::kQueue:
      return;  // a completion will promote it in FIFO order
    case AdmitDecision::kReject: {
      queries_rejected_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(jobs_mu_);
        jobs_.erase(job_id);
      }
      SendDone(conn->id(), client_query_id,
               Status::ResourceExhausted("tenant over admission budget"),
               SearchStats{});
      return;
    }
  }
}

void PexesoServer::HandleCancel(Connection* conn, const Frame& frame) {
  CancelMsg msg;
  const Status st = DecodeCancel(frame.payload, &msg);
  if (!st.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    conn->SendErrorAndClose(st);
    return;
  }
  uint64_t job_id = 0;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (auto& [id, job] : jobs_) {
      if (job->conn_id == conn->id() &&
          job->client_query_id == msg.query_id) {
        job_id = id;
        job->cancel.Cancel();
        break;
      }
    }
  }
  if (job_id == 0) return;  // already finished (or never existed): no-op
  if (admission_.Abandon(job_id)) {
    // Still queued: it will never run, so the DONE comes from here.
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      jobs_.erase(job_id);
    }
    SendDone(conn->id(), msg.query_id,
             Status::Cancelled("cancelled while queued"), SearchStats{});
  }
  // Running: the token is set; the outcome callback reports Cancelled.
}

void PexesoServer::HandleFloorUpdate(Connection* conn, const Frame& frame) {
  FloorUpdateMsg msg;
  const Status st = DecodeFloorUpdate(frame.payload, &msg);
  if (!st.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    conn->SendErrorAndClose(st);
    return;
  }
  // A raise for a finished (or never-existing) query is a harmless no-op:
  // the coordinator races query completion by design.
  std::lock_guard<std::mutex> lock(jobs_mu_);
  for (auto& [id, job] : jobs_) {
    if (job->conn_id == conn->id() && job->client_query_id == msg.query_id) {
      if (job->floor != nullptr) job->floor->RaiseTo(msg.floor);
      break;
    }
  }
}

void PexesoServer::StartJob(uint64_t job_id) {
  JoinQuery query;
  uint64_t conn_id = 0;
  uint64_t client_query_id = 0;
  std::shared_ptr<TopKFloorCell> floor;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(job_id);
    if (it != jobs_.end()) {
      found = true;
      query = it->second->query;  // vectors pointer + shared cancel token
      conn_id = it->second->conn_id;
      client_query_id = it->second->client_query_id;
      floor = it->second->floor;
    }
  }
  if (!found) {
    // The job vanished between promotion and start (shouldn't happen, but
    // a lost admission slot would wedge the queue forever). Hand the slot
    // back strictly OUTSIDE jobs_mu_: re-entering StartJob with the lock
    // held would self-deadlock on the non-recursive mutex.
    for (uint64_t promoted : admission_.OnComplete(job_id)) {
      StartJob(promoted);
    }
    return;
  }
  // Submitting and tearing down exclude each other: once Shutdown has
  // detached the pointer, a late promotion lands here and drops the job
  // (jobs_/admission_ are cleared wholesale right after the drain).
  std::lock_guard<std::mutex> session_lock(session_mu_);
  if (session_ == nullptr) return;
  // Pushed-floor tracker for this query's chunk stream. Chunk callbacks of
  // one query are serialized by the session, so the load/store pair cannot
  // race itself; atomic only so TSan sees the cross-part handoff.
  auto pushed = floor == nullptr
                    ? nullptr
                    : std::make_shared<std::atomic<uint32_t>>(query.topk_floor);
  session_->SubmitStreaming(
      query,
      [this, job_id, conn_id, client_query_id, floor, pushed](
          const serve::StreamChunk& chunk) {
        ChunkMsg msg;
        msg.query_id = client_query_id;
        msg.part = chunk.part;
        msg.parts_total = chunk.parts_total;
        msg.last = chunk.last;
        msg.status = chunk.status;
        msg.columns = chunk.results;
        std::string bytes;
        EncodeChunk(msg, &bytes);
        SendToConnection(conn_id, std::move(bytes));
        if (floor != nullptr) {
          // Shard -> coordinator direction: piggyback any floor raise this
          // part produced on the chunk boundary, so sibling shards can
          // tighten their bounds while this query is still running.
          const uint32_t now = floor->load();
          if (now > pushed->load(std::memory_order_relaxed)) {
            pushed->store(now, std::memory_order_relaxed);
            FloorUpdateMsg fu;
            fu.query_id = client_query_id;
            fu.floor = now;
            std::string fu_bytes;
            EncodeFloorUpdate(fu, &fu_bytes);
            SendToConnection(conn_id, std::move(fu_bytes));
          }
        }
      },
      [this, job_id](const serve::QueryOutcome& outcome) {
        FinishJob(job_id, outcome);
      });
}

void PexesoServer::FinishJob(uint64_t job_id,
                             const serve::QueryOutcome& outcome) {
  uint64_t conn_id = 0;
  uint64_t client_query_id = 0;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(job_id);
    if (it != jobs_.end()) {
      conn_id = it->second->conn_id;
      client_query_id = it->second->client_query_id;
      jobs_.erase(it);
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    total_stats_ += outcome.stats;
  }
  if (outcome.status.ok()) {
    queries_completed_.fetch_add(1, std::memory_order_relaxed);
  } else if (outcome.status.interrupted()) {
    queries_interrupted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  if (conn_id != 0) {
    SendDone(conn_id, client_query_id, outcome.status, outcome.stats);
  }
  for (uint64_t promoted : admission_.OnComplete(job_id)) {
    StartJob(promoted);
  }
}

void PexesoServer::SendDone(uint64_t conn_id, uint64_t client_query_id,
                            const Status& status, const SearchStats& stats) {
  DoneMsg done;
  done.query_id = client_query_id;
  done.status = status;
  done.merge_parts = merge_parts_;
  done.stats = stats;
  std::string bytes;
  EncodeDone(done, &bytes);
  SendToConnection(conn_id, std::move(bytes));
}

void PexesoServer::SendToConnection(uint64_t conn_id, std::string bytes) {
  loop_.Post([this, conn_id, bytes = std::move(bytes)]() mutable {
    auto it = connections_.find(conn_id);
    if (it == connections_.end() || it->second->closed()) return;
    it->second->Send(std::move(bytes));
  });
}

SearchStats PexesoServer::SearchStatsSnapshot() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return total_stats_;
}

std::string PexesoServer::MetricsText() const {
  std::string out;
  out.reserve(2048);
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  AppendGauge(&out, "uptime_seconds", uptime);

  uint64_t bytes_in = 0, bytes_out = 0, frames_in = 0;
  size_t active = 0;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    active = registry_.size();
    bytes_in = closed_bytes_in_;
    bytes_out = closed_bytes_out_;
    frames_in = closed_frames_in_;
    for (const auto& [id, conn] : registry_) {
      bytes_in += conn->bytes_in();
      bytes_out += conn->bytes_out();
      frames_in += conn->frames_in();
    }
  }
  AppendCounter(&out, "connections_active", active);
  AppendCounter(&out, "connections_total",
                connections_total_.load(std::memory_order_relaxed));
  AppendCounter(&out, "bytes_in", bytes_in);
  AppendCounter(&out, "bytes_out", bytes_out);
  AppendCounter(&out, "frames_in", frames_in);
  AppendCounter(&out, "protocol_errors",
                protocol_errors_.load(std::memory_order_relaxed));

  AppendCounter(&out, "queries_received",
                queries_received_.load(std::memory_order_relaxed));
  AppendCounter(&out, "queries_rejected",
                queries_rejected_.load(std::memory_order_relaxed));
  AppendCounter(&out, "queries_completed",
                queries_completed_.load(std::memory_order_relaxed));
  AppendCounter(&out, "queries_interrupted",
                queries_interrupted_.load(std::memory_order_relaxed));
  AppendCounter(&out, "queries_failed",
                queries_failed_.load(std::memory_order_relaxed));
  AppendCounter(&out, "queries_cancelled_on_disconnect",
                cancelled_on_disconnect_.load(std::memory_order_relaxed));

  const AdmissionSnapshot adm = admission_.Snapshot();
  AppendCounter(&out, "admission_inflight", adm.inflight);
  AppendCounter(&out, "admission_queue_depth", adm.queue_depth);
  AppendCounter(&out, "admission_admitted", adm.admitted);
  AppendCounter(&out, "admission_queued_total", adm.queued);
  AppendCounter(&out, "admission_rejected", adm.rejected);
  AppendCounter(&out, "admission_completed", adm.completed);
  for (const auto& [tenant, tc] : adm.tenants) {
    AppendTenantCounter(&out, "tenant_inflight", tenant, tc.inflight);
    AppendTenantCounter(&out, "tenant_queue_depth", tenant, tc.queue_depth);
    AppendTenantCounter(&out, "tenant_admitted", tenant, tc.admitted);
    AppendTenantCounter(&out, "tenant_rejected", tenant, tc.rejected);
    AppendTenantCounter(&out, "tenant_completed", tenant, tc.completed);
  }

  {
    std::lock_guard<std::mutex> lock(session_mu_);
    if (session_ != nullptr) {
      AppendCounter(&out, "session_inflight", session_->queries_inflight());
      AppendCounter(&out, "session_submitted", session_->queries_submitted());
    }
  }

  SearchStats stats;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats = total_stats_;
  }
  AppendCounter(&out, "search_distance_computations",
                stats.distance_computations);
  AppendCounter(&out, "search_quant_tile_skips", stats.quant_tile_skips);
  AppendCounter(&out, "search_columns_pruned_topk",
                stats.columns_pruned_topk);
  AppendCounter(&out, "search_deadline_expired", stats.deadline_expired);
  AppendCounter(&out, "search_io_retries", stats.io_retries);
  AppendCounter(&out, "search_corruption_detected",
                stats.corruption_detected);
  AppendCounter(&out, "search_parts_quarantined", stats.parts_quarantined);
  AppendCounter(&out, "search_degraded_merges", stats.degraded_merges);
  AppendCounter(&out, "search_partial_responses", stats.partial_responses);
  AppendCounter(&out, "search_shard_scatters", stats.scatters);
  AppendCounter(&out, "search_floor_updates_sent", stats.floor_updates_sent);
  AppendCounter(&out, "search_floor_updates_received",
                stats.floor_updates_received);
  AppendCounter(&out, "search_hedged_requests", stats.hedged_requests);
  AppendCounter(&out, "search_failovers", stats.failovers);
  AppendCounter(&out, "search_shards_degraded", stats.shards_degraded);
  AppendCounter(&out, "search_shard_bytes_moved", stats.shard_bytes_moved);

  if (options_.cache != nullptr) {
    const serve::IndexCacheStats cs = options_.cache->stats();
    AppendCounter(&out, "cache_hits", cs.hits);
    AppendCounter(&out, "cache_misses", cs.misses);
    AppendGauge(&out, "cache_hit_rate", cs.HitRate());
    AppendCounter(&out, "cache_evictions", cs.evictions);
    AppendCounter(&out, "cache_v1_loads", cs.v1_loads);
    AppendCounter(&out, "cache_v2_loads", cs.v2_loads);
    AppendCounter(&out, "cache_bytes_resident", cs.bytes_resident);
    AppendCounter(&out, "cache_bytes_mapped", cs.bytes_mapped);
    AppendCounter(&out, "cache_entries", cs.entries);
    AppendCounter(&out, "cache_pinned", cs.pinned);
  }
  return out;
}

}  // namespace pexeso::net
