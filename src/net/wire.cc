#include "net/wire.h"

namespace pexeso::net {

namespace {

/// Status codes travel as a fixed u8 (the enum's numeric values are part of
/// the wire contract for protocol version 1); a byte outside the known range
/// decodes as kInternal rather than Corruption, so a newer peer's extra
/// codes degrade instead of killing the connection.
constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(
    Status::Code::kResourceExhausted);

Status StatusFromCode(uint8_t code, std::string msg) {
  if (code > kMaxStatusCode) {
    return Status::Internal("unknown remote status code: " + std::move(msg));
  }
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk: return Status::OK();
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case Status::Code::kNotFound: return Status::NotFound(std::move(msg));
    case Status::Code::kIoError: return Status::IoError(std::move(msg));
    case Status::Code::kCorruption: return Status::Corruption(std::move(msg));
    case Status::Code::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case Status::Code::kOutOfRange: return Status::OutOfRange(std::move(msg));
    case Status::Code::kInternal: return Status::Internal(std::move(msg));
    case Status::Code::kCancelled: return Status::Cancelled(std::move(msg));
    case Status::Code::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
  }
  return Status::Internal("unknown remote status code");
}

void WriteColumn(WireWriter* w, const JoinableColumn& c) {
  w->Write<uint32_t>(c.column);
  w->Write<uint32_t>(c.match_count);
  w->Write<double>(c.joinability);
  w->WriteVector(c.mapping);
}

Status ReadColumn(WireReader* r, JoinableColumn* c) {
  PEXESO_RETURN_NOT_OK(r->Read(&c->column));
  PEXESO_RETURN_NOT_OK(r->Read(&c->match_count));
  PEXESO_RETURN_NOT_OK(r->Read(&c->joinability));
  return r->ReadVector(&c->mapping);
}

}  // namespace

bool IsKnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kFloorUpdate);
}

void WireWriter::WriteStatus(const Status& s) {
  Write<uint8_t>(static_cast<uint8_t>(s.code()));
  WriteString(s.message());
}

Status WireReader::ReadStatus(Status* out) {
  uint8_t code = 0;
  std::string msg;
  PEXESO_RETURN_NOT_OK(Read(&code));
  PEXESO_RETURN_NOT_OK(ReadString(&msg));
  *out = StatusFromCode(code, std::move(msg));
  return Status::OK();
}

void EncodeFrame(FrameType type, std::string_view payload, std::string* out) {
  const uint32_t magic = kFrameMagic;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint8_t type_byte = static_cast<uint8_t>(type);
  uint32_t crc = Crc32Update(0, &type_byte, 1);
  crc = Crc32Update(crc, payload.data(), payload.size());
  out->reserve(out->size() + kFrameOverhead + payload.size());
  out->append(reinterpret_cast<const char*>(&magic), 4);
  out->append(reinterpret_cast<const char*>(&len), 4);
  out->append(reinterpret_cast<const char*>(&type_byte), 1);
  out->append(payload.data(), payload.size());
  out->append(reinterpret_cast<const char*>(&crc), 4);
}

Status FrameDecoder::Next(Frame* out, bool* has_frame) {
  *has_frame = false;
  if (poisoned_) return Status::Corruption("frame stream already corrupt");
  if (buf_.size() < kFrameHeaderBytes) return Status::OK();

  uint32_t magic = 0;
  uint32_t len = 0;
  std::memcpy(&magic, buf_.data(), 4);
  std::memcpy(&len, buf_.data() + 4, 4);
  const uint8_t type_byte = static_cast<uint8_t>(buf_[8]);
  if (magic != kFrameMagic) {
    poisoned_ = true;
    return Status::Corruption("bad frame magic");
  }
  if (len > max_payload_) {
    poisoned_ = true;
    return Status::Corruption("frame payload length implausible");
  }
  if (!IsKnownFrameType(type_byte)) {
    poisoned_ = true;
    return Status::Corruption("unknown frame type");
  }
  const size_t total = kFrameOverhead + len;
  if (buf_.size() < total) return Status::OK();

  uint32_t wire_crc = 0;
  std::memcpy(&wire_crc, buf_.data() + kFrameHeaderBytes + len, 4);
  uint32_t crc = Crc32Update(0, &type_byte, 1);
  crc = Crc32Update(crc, buf_.data() + kFrameHeaderBytes, len);
  if (crc != wire_crc) {
    poisoned_ = true;
    return Status::Corruption("frame checksum mismatch");
  }

  out->type = static_cast<FrameType>(type_byte);
  out->payload.assign(buf_, kFrameHeaderBytes, len);
  buf_.erase(0, total);
  *has_frame = true;
  return Status::OK();
}

void EncodeHello(const HelloMsg& m, std::string* out) {
  WireWriter w;
  w.Write<uint32_t>(m.version);
  w.WriteString(m.tenant);
  w.WriteString(m.role);
  EncodeFrame(FrameType::kHello, w.buffer(), out);
}

Status DecodeHello(std::string_view payload, HelloMsg* m) {
  WireReader r(payload);
  PEXESO_RETURN_NOT_OK(r.Read(&m->version));
  PEXESO_RETURN_NOT_OK(r.ReadString(&m->tenant));
  PEXESO_RETURN_NOT_OK(r.ReadString(&m->role));
  return r.ExpectEnd();
}

void EncodeHelloAck(const HelloAckMsg& m, std::string* out) {
  WireWriter w;
  w.Write<uint32_t>(m.version);
  w.WriteString(m.engine);
  w.Write<uint32_t>(m.dim);
  w.Write<uint64_t>(m.parts);
  w.Write<uint32_t>(m.shards_total);
  w.Write<uint32_t>(m.shard_of);
  EncodeFrame(FrameType::kHelloAck, w.buffer(), out);
}

Status DecodeHelloAck(std::string_view payload, HelloAckMsg* m) {
  WireReader r(payload);
  PEXESO_RETURN_NOT_OK(r.Read(&m->version));
  PEXESO_RETURN_NOT_OK(r.ReadString(&m->engine));
  PEXESO_RETURN_NOT_OK(r.Read(&m->dim));
  PEXESO_RETURN_NOT_OK(r.Read(&m->parts));
  PEXESO_RETURN_NOT_OK(r.Read(&m->shards_total));
  PEXESO_RETURN_NOT_OK(r.Read(&m->shard_of));
  if (m->shards_total == 0 || m->shard_of >= m->shards_total) {
    return Status::Corruption("shard metadata implausible");
  }
  return r.ExpectEnd();
}

void EncodeCancel(const CancelMsg& m, std::string* out) {
  WireWriter w;
  w.Write<uint64_t>(m.query_id);
  EncodeFrame(FrameType::kCancel, w.buffer(), out);
}

Status DecodeCancel(std::string_view payload, CancelMsg* m) {
  WireReader r(payload);
  PEXESO_RETURN_NOT_OK(r.Read(&m->query_id));
  return r.ExpectEnd();
}

void EncodeChunk(const ChunkMsg& m, std::string* out) {
  WireWriter w;
  w.Write<uint64_t>(m.query_id);
  w.Write<uint64_t>(m.part);
  w.Write<uint64_t>(m.parts_total);
  w.Write<uint8_t>(m.last ? 1 : 0);
  w.WriteStatus(m.status);
  w.Write<uint64_t>(m.columns.size());
  for (const JoinableColumn& c : m.columns) WriteColumn(&w, c);
  EncodeFrame(FrameType::kChunk, w.buffer(), out);
}

Status DecodeChunk(std::string_view payload, ChunkMsg* m) {
  WireReader r(payload);
  PEXESO_RETURN_NOT_OK(r.Read(&m->query_id));
  PEXESO_RETURN_NOT_OK(r.Read(&m->part));
  PEXESO_RETURN_NOT_OK(r.Read(&m->parts_total));
  // Both fields size receiver-side tables, so they get hard bounds rather
  // than the remaining-bytes heuristic (they are counts of parts, not of
  // payload bytes).
  if (m->parts_total == 0 || m->parts_total > kMaxWireParts ||
      m->part >= m->parts_total) {
    return Status::Corruption("chunk part header implausible");
  }
  uint8_t last = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&last));
  m->last = last != 0;
  PEXESO_RETURN_NOT_OK(r.ReadStatus(&m->status));
  uint64_t n = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&n));
  // Each column costs >= 24 payload bytes, so this cap rejects flipped
  // counts before the loop allocates anything implausible.
  if (n > r.remaining() / 24) {
    return Status::Corruption("chunk column count implausible");
  }
  m->columns.clear();
  m->columns.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    JoinableColumn c;
    PEXESO_RETURN_NOT_OK(ReadColumn(&r, &c));
    m->columns.push_back(std::move(c));
  }
  return r.ExpectEnd();
}

void EncodeDone(const DoneMsg& m, std::string* out) {
  WireWriter w;
  w.Write<uint64_t>(m.query_id);
  w.WriteStatus(m.status);
  w.Write<uint8_t>(m.merge_parts ? 1 : 0);
  // SearchStats is a flat block of u64/double counters with no padding;
  // both ends run the same build of this library, and the frame is already
  // version-gated by kProtocolVersion, so the raw image is the serde.
  static_assert(std::is_trivially_copyable_v<SearchStats>);
  w.Write<uint64_t>(sizeof(SearchStats));
  w.Write(m.stats);
  EncodeFrame(FrameType::kDone, w.buffer(), out);
}

Status DecodeDone(std::string_view payload, DoneMsg* m) {
  WireReader r(payload);
  PEXESO_RETURN_NOT_OK(r.Read(&m->query_id));
  PEXESO_RETURN_NOT_OK(r.ReadStatus(&m->status));
  uint8_t merge = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&merge));
  m->merge_parts = merge != 0;
  uint64_t stats_bytes = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&stats_bytes));
  if (stats_bytes != sizeof(SearchStats)) {
    return Status::Corruption("stats block size mismatch");
  }
  PEXESO_RETURN_NOT_OK(r.Read(&m->stats));
  return r.ExpectEnd();
}

void EncodeError(const ErrorMsg& m, std::string* out) {
  WireWriter w;
  w.WriteStatus(m.status);
  EncodeFrame(FrameType::kError, w.buffer(), out);
}

Status DecodeError(std::string_view payload, ErrorMsg* m) {
  WireReader r(payload);
  PEXESO_RETURN_NOT_OK(r.ReadStatus(&m->status));
  return r.ExpectEnd();
}

void EncodeFloorUpdate(const FloorUpdateMsg& m, std::string* out) {
  WireWriter w;
  w.Write<uint64_t>(m.query_id);
  w.Write<uint32_t>(m.floor);
  EncodeFrame(FrameType::kFloorUpdate, w.buffer(), out);
}

Status DecodeFloorUpdate(std::string_view payload, FloorUpdateMsg* m) {
  WireReader r(payload);
  PEXESO_RETURN_NOT_OK(r.Read(&m->query_id));
  PEXESO_RETURN_NOT_OK(r.Read(&m->floor));
  return r.ExpectEnd();
}

void EncodeStatsRequest(std::string* out) {
  EncodeFrame(FrameType::kStats, {}, out);
}

void EncodeStatsText(std::string_view text, std::string* out) {
  WireWriter w;
  w.WriteString(text);
  EncodeFrame(FrameType::kStatsText, w.buffer(), out);
}

Status DecodeStatsText(std::string_view payload, std::string* text) {
  WireReader r(payload);
  PEXESO_RETURN_NOT_OK(r.ReadString(text));
  return r.ExpectEnd();
}

void EncodeJoinQuery(uint64_t query_id, const JoinQuery& query,
                     std::string* out) {
  WireWriter w;
  w.Write<uint64_t>(query_id);
  w.Write<uint8_t>(static_cast<uint8_t>(query.mode));
  w.Write<uint64_t>(query.k);
  w.Write<double>(query.thresholds.tau);
  w.Write<uint32_t>(query.thresholds.t_abs);
  w.Write<uint8_t>(query.collect_mappings ? 1 : 0);
  w.Write<uint32_t>(query.topk_floor);
  // The deadline travels as its remaining budget in millis (<= 0 encodes
  // "none"); the receiver re-anchors it on its own clock, which also
  // charges network transit time against the budget — the honest
  // accounting for an end-to-end deadline.
  double deadline_ms = 0.0;
  if (query.deadline.has_deadline()) {
    deadline_ms = query.deadline.remaining_seconds() * 1e3;
    // An already-expired deadline must still travel as a deadline: encode
    // the smallest positive budget so the server trips it immediately
    // instead of running without one.
    if (deadline_ms <= 0.0) deadline_ms = 1e-6;
  }
  w.Write<double>(deadline_ms);
  const VectorStore* vs = query.vectors;
  w.Write<uint32_t>(vs != nullptr ? vs->dim() : 0);
  if (vs != nullptr) {
    w.WriteVector(vs->raw());
  } else {
    w.Write<uint64_t>(0);
  }
  EncodeFrame(FrameType::kQuery, w.buffer(), out);
}

Status DecodeJoinQuery(std::string_view payload, uint64_t* query_id,
                       VectorStore* vectors, JoinQuery* query) {
  WireReader r(payload);
  PEXESO_RETURN_NOT_OK(r.Read(query_id));
  uint8_t mode = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&mode));
  if (mode > static_cast<uint8_t>(QueryMode::kTopK)) {
    return Status::Corruption("unknown query mode byte");
  }
  query->mode = static_cast<QueryMode>(mode);
  PEXESO_RETURN_NOT_OK(r.Read(&query->k));
  PEXESO_RETURN_NOT_OK(r.Read(&query->thresholds.tau));
  PEXESO_RETURN_NOT_OK(r.Read(&query->thresholds.t_abs));
  uint8_t collect = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&collect));
  query->collect_mappings = collect != 0;
  PEXESO_RETURN_NOT_OK(r.Read(&query->topk_floor));
  double deadline_ms = 0.0;
  PEXESO_RETURN_NOT_OK(r.Read(&deadline_ms));
  if (deadline_ms > 0.0) query->deadline = Deadline::AfterMillis(deadline_ms);

  uint32_t dim = 0;
  PEXESO_RETURN_NOT_OK(r.Read(&dim));
  std::vector<float> packed;
  PEXESO_RETURN_NOT_OK(r.ReadVector(&packed));
  PEXESO_RETURN_NOT_OK(r.ExpectEnd());
  if (dim == 0) return Status::Corruption("query dimensionality is zero");
  if (packed.size() % dim != 0) {
    return Status::Corruption("query vector buffer not a multiple of dim");
  }
  *vectors = VectorStore(dim);
  if (!packed.empty()) vectors->AddBatch(packed.data(), packed.size() / dim);
  query->vectors = vectors;
  return Status::OK();
}

}  // namespace pexeso::net
