#include "table/type_detect.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "common/str_util.h"

namespace pexeso {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kString: return "string";
    case ColumnType::kNumber: return "number";
    case ColumnType::kDate: return "date";
    case ColumnType::kId: return "id";
    case ColumnType::kEmpty: return "empty";
  }
  return "unknown";
}

namespace {

const std::unordered_set<std::string>& MonthWords() {
  static const std::unordered_set<std::string> kMonths = {
      "jan", "feb", "mar", "apr", "may", "jun", "jul", "aug", "sep", "sept",
      "oct", "nov", "dec", "january", "february", "march", "april", "june",
      "july", "august", "september", "october", "november", "december"};
  return kMonths;
}

bool AllDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c);
  });
}

/// Short alphanumeric code like "A1234" or "SKU-99".
bool LooksCode(const std::string& s) {
  if (s.size() > 16 || s.empty()) return false;
  bool has_digit = false;
  for (unsigned char c : s) {
    if (std::isdigit(c)) {
      has_digit = true;
    } else if (!std::isalpha(c) && c != '-' && c != '_') {
      return false;
    }
  }
  return has_digit;
}

}  // namespace

bool TypeDetector::LooksDate(const std::string& value) {
  const std::string v(Trim(value));
  if (v.empty()) return false;
  // ISO-like or slashed numeric dates: 2020-01-02, 01/02/2020, 1.2.1998.
  int seps = 0;
  char sep = 0;
  bool digits_only_between = true;
  for (unsigned char c : v) {
    if (c == '-' || c == '/' || c == '.') {
      ++seps;
      if (sep == 0) sep = static_cast<char>(c);
      if (c != static_cast<unsigned char>(sep)) digits_only_between = false;
    } else if (!std::isdigit(c)) {
      digits_only_between = false;
    }
  }
  if (seps == 2 && digits_only_between) {
    const auto parts = Split(v, sep);
    if (parts.size() == 3 && AllDigits(parts[0]) && AllDigits(parts[1]) &&
        AllDigits(parts[2])) {
      return true;
    }
  }
  // Month-name dates: "Mar 3 1998", "3 March 1998".
  const auto words = WordTokens(v);
  if (words.size() >= 2 && words.size() <= 4) {
    bool has_month = false;
    bool has_number = false;
    for (const auto& w : words) {
      if (MonthWords().count(w)) has_month = true;
      if (AllDigits(w)) has_number = true;
    }
    return has_month && has_number;
  }
  return false;
}

ColumnType TypeDetector::Detect(const RawColumn& column) {
  size_t non_empty = 0, numbers = 0, dates = 0, codes = 0;
  std::unordered_set<std::string> distinct;
  for (const auto& v : column.values) {
    const std::string t(Trim(v));
    if (t.empty()) continue;
    ++non_empty;
    distinct.insert(t);
    if (LooksDate(t)) {
      ++dates;
    } else if (LooksNumeric(t)) {
      ++numbers;
    } else if (LooksCode(t)) {
      ++codes;
    }
  }
  if (non_empty == 0) return ColumnType::kEmpty;
  const double n = static_cast<double>(non_empty);
  if (dates / n >= 0.7) return ColumnType::kDate;
  const double distinct_ratio = distinct.size() / n;
  if (numbers / n >= 0.9) {
    // Near-unique integer columns are ids, not measures.
    return distinct_ratio > 0.95 ? ColumnType::kId : ColumnType::kNumber;
  }
  if ((numbers + codes) / n >= 0.9 && distinct_ratio > 0.95) {
    return ColumnType::kId;
  }
  return ColumnType::kString;
}

void TypeDetector::DetectAll(RawTable* table) {
  for (auto& c : table->columns) c.type = Detect(c);
}

double TypeDetector::KeyScore(const RawColumn& column) {
  if (column.type != ColumnType::kString && column.type != ColumnType::kDate) {
    return 0.0;
  }
  std::unordered_set<std::string> distinct;
  size_t non_empty = 0;
  for (const auto& v : column.values) {
    const std::string t(Trim(v));
    if (t.empty()) continue;
    ++non_empty;
    distinct.insert(ToLower(t));
  }
  if (non_empty == 0) return 0.0;
  const double distinct_ratio =
      static_cast<double>(distinct.size()) / static_cast<double>(non_empty);
  const double coverage = static_cast<double>(non_empty) /
                          static_cast<double>(column.values.size());
  return distinct_ratio * coverage;
}

int TypeDetector::SelectKeyColumn(const RawTable& table) {
  int best = -1;
  double best_score = 0.0;
  for (size_t c = 0; c < table.columns.size(); ++c) {
    const double s = KeyScore(table.columns[c]);
    if (s > best_score) {
      best_score = s;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace pexeso
