#ifndef PEXESO_TABLE_TABLE_H_
#define PEXESO_TABLE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pexeso {

/// \brief Detected semantic type of a column (the SATO-substitute detector;
/// see DESIGN.md). Only kString columns participate in similarity joins —
/// numbers and ids go through equi-join per the paper's setting.
enum class ColumnType : uint8_t {
  kString = 0,
  kNumber = 1,
  kDate = 2,
  kId = 3,
  kEmpty = 4,
};

const char* ColumnTypeName(ColumnType t);

/// \brief One raw table column: a name and string cell values (CSV-level
/// representation; typing happens in TypeDetector).
struct RawColumn {
  std::string name;
  std::vector<std::string> values;
  ColumnType type = ColumnType::kString;
};

/// \brief One raw table loaded from CSV.
struct RawTable {
  std::string name;
  std::vector<RawColumn> columns;

  size_t num_rows() const {
    return columns.empty() ? 0 : columns[0].values.size();
  }
};

}  // namespace pexeso

#endif  // PEXESO_TABLE_TABLE_H_
