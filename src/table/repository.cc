#include "table/repository.h"

#include <algorithm>
#include <filesystem>

#include "common/str_util.h"

#include "table/csv.h"

namespace pexeso {

size_t TableRepository::AddTable(const RawTable& raw) {
  if (raw.num_rows() < options_.min_rows) return 0;
  RawTable table = raw;
  TypeDetector::DetectAll(&table);

  if (!catalog_initialized_) {
    catalog_ = ColumnCatalog(model_->dim());
    catalog_initialized_ = true;
  }
  const uint32_t table_id = next_table_id_++;
  size_t added = 0;
  for (size_t c = 0; c < table.columns.size(); ++c) {
    const RawColumn& col = table.columns[c];
    const bool key_type =
        col.type == ColumnType::kString || col.type == ColumnType::kDate;
    if (!key_type) continue;
    if (TypeDetector::KeyScore(col) < options_.min_key_score) continue;
    if (!options_.all_string_columns &&
        static_cast<int>(c) != TypeDetector::SelectKeyColumn(table)) {
      continue;
    }
    // Collect non-empty values; expand abbreviations for date columns (and
    // address-ish strings benefit from the same rules harmlessly).
    std::vector<std::string> values;
    values.reserve(col.values.size());
    const bool expand = col.type == ColumnType::kDate;
    for (const auto& v : col.values) {
      const std::string t(Trim(v));
      if (t.empty()) continue;
      values.push_back(expand ? expander_.Expand(t) : t);
    }
    if (values.size() < options_.min_rows) continue;

    const std::vector<float> packed = model_->EmbedColumn(values);
    ColumnMeta meta;
    meta.table_id = table_id;
    meta.source_id = static_cast<uint32_t>(raw_values_.size());
    meta.table_name = table.name;
    meta.column_name = col.name;
    catalog_.AddColumn(meta, packed.data(), values.size());
    raw_values_.push_back(std::move(values));
    ++added;
  }
  return added;
}

Result<size_t> TableRepository::LoadDirectory(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("not a directory: " + dir);
  }
  // Deterministic order: sort paths.
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".csv") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  size_t total = 0;
  for (const auto& p : paths) {
    auto table = Csv::ReadFile(p);
    if (!table.ok()) return table.status();
    total += AddTable(table.value());
  }
  return total;
}

VectorStore TableRepository::EmbedQueryColumn(
    const std::vector<std::string>& values, bool expand_dates) const {
  VectorStore store(model_->dim());
  store.Reserve(values.size());
  for (const auto& v : values) {
    const std::string t(Trim(v));
    if (t.empty()) continue;
    const std::string prepared = expand_dates ? expander_.Expand(t) : t;
    auto e = model_->EmbedRecord(prepared);
    store.Add(e);
  }
  return store;
}

}  // namespace pexeso
