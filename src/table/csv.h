#ifndef PEXESO_TABLE_CSV_H_
#define PEXESO_TABLE_CSV_H_

#include <string>

#include "common/status.h"
#include "table/table.h"

namespace pexeso {

/// \brief RFC-4180-style CSV reader/writer: quoted fields, embedded commas,
/// escaped quotes ("") and embedded newlines inside quotes. The first row is
/// the header. Rows shorter than the header are padded with empty cells;
/// longer rows are an error (data lakes are messy, but silently dropping
/// cells would corrupt joins).
class Csv {
 public:
  /// Parses CSV text into a table (name supplied by the caller).
  static Result<RawTable> Parse(const std::string& text,
                                const std::string& table_name);

  /// Loads and parses a CSV file; the table name is the file stem.
  static Result<RawTable> ReadFile(const std::string& path);

  /// Serializes a table back to CSV text (used by tests and examples).
  static std::string Write(const RawTable& table);

  /// Writes a table to a file.
  static Status WriteFile(const RawTable& table, const std::string& path);
};

}  // namespace pexeso

#endif  // PEXESO_TABLE_CSV_H_
