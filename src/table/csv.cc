#include "table/csv.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace pexeso {

namespace {

/// Parses CSV text into rows of cells.
Status ParseRows(const std::string& text,
                 std::vector<std::vector<std::string>>* rows) {
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_was_quoted = false;
  size_t i = 0;
  const size_t n = text.size();
  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_was_quoted = false;
  };
  auto end_row = [&] {
    end_cell();
    rows->push_back(std::move(row));
    row.clear();
  };
  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
    } else {
      switch (c) {
        case '"':
          if (!cell.empty() && !cell_was_quoted) {
            return Status::Corruption("quote inside unquoted cell");
          }
          in_quotes = true;
          cell_was_quoted = true;
          break;
        case ',':
          end_cell();
          break;
        case '\r':
          // swallow; \n handles the row break
          break;
        case '\n':
          end_row();
          break;
        default:
          cell.push_back(c);
      }
    }
    ++i;
  }
  if (in_quotes) return Status::Corruption("unterminated quoted cell");
  if (!cell.empty() || !row.empty()) end_row();
  return Status::OK();
}

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

void WriteCell(std::ostringstream* out, const std::string& s) {
  if (!NeedsQuoting(s)) {
    *out << s;
    return;
  }
  *out << '"';
  for (char c : s) {
    if (c == '"') *out << '"';
    *out << c;
  }
  *out << '"';
}

}  // namespace

Result<RawTable> Csv::Parse(const std::string& text,
                            const std::string& table_name) {
  std::vector<std::vector<std::string>> rows;
  PEXESO_RETURN_NOT_OK(ParseRows(text, &rows));
  if (rows.empty()) return Status::InvalidArgument("empty CSV: " + table_name);

  RawTable table;
  table.name = table_name;
  const auto& header = rows[0];
  table.columns.resize(header.size());
  for (size_t c = 0; c < header.size(); ++c) {
    table.columns[c].name = header[c];
    table.columns[c].values.reserve(rows.size() - 1);
  }
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() > header.size()) {
      return Status::Corruption("row " + std::to_string(r) + " of " +
                                table_name + " has more cells than header");
    }
    for (size_t c = 0; c < header.size(); ++c) {
      table.columns[c].values.push_back(c < row.size() ? row[c]
                                                       : std::string());
    }
  }
  return table;
}

Result<RawTable> Csv::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open CSV: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str(), std::filesystem::path(path).stem().string());
}

std::string Csv::Write(const RawTable& table) {
  std::ostringstream out;
  for (size_t c = 0; c < table.columns.size(); ++c) {
    if (c) out << ',';
    WriteCell(&out, table.columns[c].name);
  }
  out << '\n';
  const size_t rows = table.num_rows();
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < table.columns.size(); ++c) {
      if (c) out << ',';
      WriteCell(&out, table.columns[c].values[r]);
    }
    out << '\n';
  }
  return out.str();
}

Status Csv::WriteFile(const RawTable& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot write CSV: " + path);
  out << Write(table);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace pexeso
