#ifndef PEXESO_TABLE_TYPE_DETECT_H_
#define PEXESO_TABLE_TYPE_DETECT_H_

#include "table/table.h"

namespace pexeso {

/// \brief Heuristic column typing and key-column scoring — the stand-in for
/// SATO [35] in the offline pipeline (Section II-A): the repository keeps
/// the string columns whose type can serve as a join key.
///
/// Typing rules (majority vote over non-empty cells):
///  - kNumber: numeric-looking cells;
///  - kDate: cells matching common date shapes (2020-01-02, 01/02/2020,
///    "Mar 3 1998", month names);
///  - kId: numeric or short alphanumeric codes with near-100% distinctness
///    (row ids, SKUs) — poor semantic join keys;
///  - kString otherwise; kEmpty when everything is blank.
class TypeDetector {
 public:
  /// Detects the type of a single column.
  static ColumnType Detect(const RawColumn& column);

  /// Types every column of the table in place.
  static void DetectAll(RawTable* table);

  /// Key-column quality in [0,1]: string-typed columns with many distinct
  /// values score high (the paper's option 2 picks the string column with
  /// the most distinct values as the query column).
  static double KeyScore(const RawColumn& column);

  /// Index of the best key column, or -1 if no string column qualifies.
  static int SelectKeyColumn(const RawTable& table);

  /// True if the cell looks like a date.
  static bool LooksDate(const std::string& value);
};

}  // namespace pexeso

#endif  // PEXESO_TABLE_TYPE_DETECT_H_
