#ifndef PEXESO_TABLE_REPOSITORY_H_
#define PEXESO_TABLE_REPOSITORY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "embed/abbrev.h"
#include "embed/embedding_model.h"
#include "table/table.h"
#include "table/type_detect.h"
#include "vec/column_catalog.h"

namespace pexeso {

/// \brief The offline component of Figure 1: loads raw tables (CSV) into a
/// table repository, detects types, extracts key-candidate string columns,
/// expands date/address abbreviations, and embeds the records into a
/// ColumnCatalog ready for PexesoIndex::Build.
class TableRepository {
 public:
  struct Options {
    /// Drop tables with fewer rows (paper: "remove tables ... contain less
    /// than five rows").
    size_t min_rows = 5;
    /// Drop key columns whose key score is below this.
    double min_key_score = 0.05;
    /// Keep every string column as a join-key candidate instead of only the
    /// best-scoring one per table.
    bool all_string_columns = true;
  };

  explicit TableRepository(const EmbeddingModel* model)
      : model_(model), options_(Options{}) {}
  TableRepository(const EmbeddingModel* model, const Options& options)
      : model_(model), options_(options) {}

  /// Adds one raw table: detects types, picks key columns, embeds them.
  /// Returns the number of columns added.
  size_t AddTable(const RawTable& table);

  /// Loads every *.csv under `dir` (non-recursive).
  Result<size_t> LoadDirectory(const std::string& dir);

  /// Embeds a query column (applying the same abbreviation expansion).
  VectorStore EmbedQueryColumn(const std::vector<std::string>& values,
                               bool expand_dates = false) const;

  /// Hands the embedded repository over (the repository is empty after).
  ColumnCatalog TakeCatalog() { return std::move(catalog_); }
  const ColumnCatalog& catalog() const { return catalog_; }

  /// Raw string values of the extracted column `id` (parallel to catalog
  /// columns; used by the text-join competitors which work on raw strings).
  const std::vector<std::string>& RawValues(ColumnId id) const {
    return raw_values_[id];
  }
  size_t num_columns() const { return raw_values_.size(); }

  const AbbreviationExpander& expander() const { return expander_; }

 private:
  const EmbeddingModel* model_;
  Options options_;
  AbbreviationExpander expander_;
  ColumnCatalog catalog_;
  std::vector<std::vector<std::string>> raw_values_;
  uint32_t next_table_id_ = 0;
  bool catalog_initialized_ = false;
};

}  // namespace pexeso

#endif  // PEXESO_TABLE_REPOSITORY_H_
