#ifndef PEXESO_PARTITION_HISTOGRAM_H_
#define PEXESO_PARTITION_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "la/pca.h"
#include "vec/column_catalog.h"

namespace pexeso {

/// \brief Probability-distribution summary of one column (Section IV step 1:
/// "summarize a column of vectors with a probability distribution histogram
/// composed of a number of bins"). Vectors are projected onto the 2 leading
/// global PCA axes and binned on a bins x bins grid; counts are normalized
/// with Laplace smoothing so the divergence below is always finite.
class ColumnHistogram {
 public:
  /// Divergence used by the paper's clustering: the symmetrized
  /// Kullback-Leibler divergence (KLD(A||B) + KLD(B||A)) / 2, exactly as
  /// defined in Section IV.
  static double JsDivergence(const ColumnHistogram& a,
                             const ColumnHistogram& b);

  const std::vector<double>& probs() const { return probs_; }

  /// Element-wise mean of histograms (cluster centroid update).
  static ColumnHistogram Mean(const std::vector<const ColumnHistogram*>& hs);

 private:
  friend class HistogramBuilder;
  std::vector<double> probs_;
};

/// \brief Builds ColumnHistograms for every column of a catalog against a
/// shared PCA basis (so histograms are comparable across columns).
class HistogramBuilder {
 public:
  struct Options {
    uint32_t bins_per_axis = 8;
    uint64_t seed = 31;
  };

  /// Fits the PCA basis on the catalog's vectors.
  HistogramBuilder(const ColumnCatalog& catalog, const Options& options);

  /// Histogram of one column.
  ColumnHistogram Build(const ColumnCatalog& catalog, ColumnId col) const;

  /// Histograms for all columns.
  std::vector<ColumnHistogram> BuildAll(const ColumnCatalog& catalog) const;

  uint32_t num_bins() const { return bins_ * bins_; }

 private:
  uint32_t bins_;
  Pca pca_;
  double lo_[2], hi_[2];  ///< projection ranges per axis
};

}  // namespace pexeso

#endif  // PEXESO_PARTITION_HISTOGRAM_H_
