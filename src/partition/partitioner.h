#ifndef PEXESO_PARTITION_PARTITIONER_H_
#define PEXESO_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "partition/histogram.h"
#include "vec/column_catalog.h"

namespace pexeso {

/// Column -> partition assignment (size = num_columns, values in [0, k)).
using PartitionAssignment = std::vector<uint32_t>;

/// \brief Column partitioning strategies for the out-of-core case
/// (Section IV). The paper's method clusters columns by the similarity of
/// their vector distributions under the symmetrized-KL divergence so that
/// each partition's pivots filter well; random assignment and average-vector
/// k-means are the Figure 7b baselines.
class Partitioner {
 public:
  struct Options {
    uint32_t k = 4;          ///< number of partitions
    uint32_t iterations = 8; ///< t in the paper's algorithm
    uint64_t seed = 37;
  };

  /// The paper's JSD k-means over column histograms.
  static PartitionAssignment JsdClustering(const ColumnCatalog& catalog,
                                           const Options& options);

  /// Uniform random assignment.
  static PartitionAssignment Random(const ColumnCatalog& catalog,
                                    const Options& options);

  /// k-means over per-column average vectors ("average k-means" baseline).
  static PartitionAssignment AverageKMeans(const ColumnCatalog& catalog,
                                           const Options& options);
};

}  // namespace pexeso

#endif  // PEXESO_PARTITION_PARTITIONER_H_
