#include "partition/partitioned_pexeso.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "baseline/pexeso_h.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "serve/index_cache.h"

namespace pexeso {

std::string PartitionedPexeso::PartPath(size_t i) const {
  return dir_ + "/part-" + std::to_string(i) + ".pxso";
}

Result<PartitionedPexeso> PartitionedPexeso::Build(
    const ColumnCatalog& catalog, const PartitionAssignment& assignment,
    const std::string& dir, const Metric* metric,
    const PexesoOptions& options) {
  PEXESO_CHECK(assignment.size() == catalog.num_columns());
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create dir: " + dir);

  uint32_t k = 0;
  for (uint32_t a : assignment) k = std::max(k, a + 1);

  // Dense output numbering: empty source partitions are skipped.
  size_t out_idx = 0;
  for (uint32_t part = 0; part < k; ++part) {
    ColumnCatalog part_catalog(catalog.dim());
    for (ColumnId c = 0; c < catalog.num_columns(); ++c) {
      if (assignment[c] != part) continue;
      ColumnMeta meta = catalog.column(c);
      meta.source_id = c;  // remember the global id for result merging
      part_catalog.AddColumn(meta, catalog.store().View(meta.first),
                             meta.count);
    }
    if (part_catalog.num_columns() == 0) continue;
    PexesoIndex index =
        PexesoIndex::Build(std::move(part_catalog), metric, options);
    PEXESO_RETURN_NOT_OK(index.Save(dir + "/part-" + std::to_string(out_idx) +
                                    ".pxso"));
    ++out_idx;
  }
  if (out_idx == 0) return Status::InvalidArgument("all partitions empty");
  return PartitionedPexeso(dir, metric, out_idx);
}

Result<PartitionedPexeso> PartitionedPexeso::Open(const std::string& dir,
                                                  const Metric* metric) {
  size_t parts = 0;
  while (std::filesystem::exists(dir + "/part-" + std::to_string(parts) +
                                 ".pxso")) {
    ++parts;
  }
  if (parts == 0) return Status::NotFound("no partitions under " + dir);
  return PartitionedPexeso(dir, metric, parts);
}

Status PartitionedPexeso::Execute(const JoinQuery& jq, ResultSink* sink,
                                  SearchStats* stats) const {
  PEXESO_CHECK(jq.vectors != nullptr);
  PEXESO_CHECK(sink != nullptr);
  SearchStats local;
  if (stats == nullptr) stats = &local;
  const bool topk_mode = jq.mode == QueryMode::kTopK;

  std::vector<JoinableColumn> merged;
  // Cross-partition kTopK pushdown: the bound a part establishes becomes
  // the floor the next part prunes against.
  TopKBound bound(jq.k, jq.topk_floor);
  Status final_st;
  for (size_t part = 0; part < num_parts_; ++part) {
    Status live = jq.CheckLive();
    if (!live.ok()) {
      ++stats->deadline_expired;
      final_st = live;
      break;
    }
    JoinQuery part_jq = jq;
    if (topk_mode) part_jq.topk_floor = bound.bound();
    auto chunk =
        SearchOnePart(part, part_jq, stats, nullptr, engine_, nullptr);
    if (!chunk.ok()) {
      final_st = chunk.status();
      // Interruption inside a part keeps the completed parts' columns as
      // partial results; a real failure (environment fault) returns bare.
      if (!final_st.interrupted()) {
        sink->OnDone(final_st);
        return final_st;
      }
      break;
    }
    auto results = std::move(chunk).ValueOrDie();
    if (topk_mode) {
      for (const auto& jc : results) bound.Offer(jc.match_count);
    }
    merged.insert(merged.end(), std::make_move_iterator(results.begin()),
                  std::make_move_iterator(results.end()));
  }
  FinishQueryMerge(jq, &merged);
  for (auto& jc : merged) sink->OnColumn(std::move(jc));
  sink->OnDone(final_st);
  return final_st;
}

Result<PartHandle> PartitionedPexeso::AcquirePart(size_t part,
                                                  double* io_seconds) const {
  PEXESO_CHECK(part < num_parts_);
  Stopwatch watch;
  if (cache_ != nullptr) {
    auto got = cache_->Get(PartPath(part), metric_);
    if (io_seconds != nullptr) *io_seconds += watch.ElapsedSeconds();
    if (!got.ok()) return got.status();
    return std::static_pointer_cast<const void>(std::move(got).ValueOrDie());
  }
  auto loaded = PexesoIndex::Load(PartPath(part), metric_);
  if (io_seconds != nullptr) *io_seconds += watch.ElapsedSeconds();
  if (!loaded.ok()) return loaded.status();
  return std::static_pointer_cast<const void>(
      std::make_shared<const PexesoIndex>(std::move(loaded).ValueOrDie()));
}

Result<std::vector<JoinableColumn>> SearchIndexSnapshot(
    const PexesoIndex& index, const JoinQuery& query,
    PartitionedPexeso::Engine engine, SearchStats* stats) {
  CollectSink sink;
  Status st;
  if (engine == PartitionedPexeso::Engine::kPexeso) {
    st = PexesoSearcher(&index).Execute(query, &sink, stats);
  } else {
    st = PexesoHSearcher(&index).Execute(query, &sink, stats);
  }
  if (!st.ok()) return st;  // incl. Cancelled/DeadlineExceeded mid-part
  std::vector<JoinableColumn> results = std::move(sink).TakeColumns();
  for (auto& r : results) {
    r.column = index.catalog().column(r.column).source_id;
  }
  return results;
}

Result<std::vector<JoinableColumn>> PartitionedPexeso::SearchOnePart(
    size_t part, const JoinQuery& query, SearchStats* stats,
    double* io_seconds, Engine engine, const PexesoIndex* preloaded) const {
  PartHandle held;
  const PexesoIndex* index = preloaded;
  if (index == nullptr) {
    auto handle = AcquirePart(part, io_seconds);
    if (!handle.ok()) return handle.status();
    held = std::move(handle).ValueOrDie();
    index = static_cast<const PexesoIndex*>(held.get());
  }
  // When uncached, the partition index dies with `held` at return: only one
  // partition is ever resident, which is the Section IV memory contract.
  // With a cache attached, residency is the cache's budgeted decision.
  return SearchIndexSnapshot(*index, query, engine, stats);
}

Result<std::vector<JoinableColumn>> PartitionedPexeso::SearchPart(
    size_t part, const JoinQuery& query, SearchStats* stats,
    double* io_seconds, const PartHandle& preloaded) const {
  return SearchOnePart(part, query, stats, io_seconds, engine_,
                       static_cast<const PexesoIndex*>(preloaded.get()));
}

bool PartitionedPexeso::PartsStayResident() const {
  // Conservative resident-size estimate: the in-memory structures mirror
  // the serialized ones byte-for-byte plus container slack, so twice the
  // disk footprint bounds what the cache will be charged.
  return cache_ != nullptr && cache_->budget_bytes() >= DiskBytes() * 2;
}

Result<std::vector<JoinableColumn>> PartitionedPexeso::SearchPartitions(
    const JoinQuery& query, SearchStats* stats, double* io_seconds,
    Engine engine) const {
  std::vector<JoinableColumn> merged;
  double io = 0.0;
  for (size_t part = 0; part < num_parts_; ++part) {
    auto results = SearchOnePart(part, query, stats, &io, engine, nullptr);
    if (!results.ok()) {
      // Keep the IO accounting on the error path: the caller still learns
      // how long the failed load (and the successful ones before it) took.
      if (io_seconds != nullptr) *io_seconds = io;
      return results.status();
    }
    auto chunk = std::move(results).ValueOrDie();
    merged.insert(merged.end(), std::make_move_iterator(chunk.begin()),
                  std::make_move_iterator(chunk.end()));
  }
  FinishQueryMerge(query, &merged);
  if (io_seconds != nullptr) *io_seconds = io;
  return merged;
}

size_t PartitionedPexeso::DiskBytes() const {
  size_t total = 0;
  for (size_t part = 0; part < num_parts_; ++part) {
    std::error_code ec;
    const auto sz = std::filesystem::file_size(PartPath(part), ec);
    if (!ec) total += sz;
  }
  return total;
}

}  // namespace pexeso
