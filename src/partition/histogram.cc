#include "partition/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pexeso {

double ColumnHistogram::JsDivergence(const ColumnHistogram& a,
                                     const ColumnHistogram& b) {
  PEXESO_CHECK(a.probs_.size() == b.probs_.size());
  double kl_ab = 0.0, kl_ba = 0.0;
  for (size_t i = 0; i < a.probs_.size(); ++i) {
    const double pa = a.probs_[i];
    const double pb = b.probs_[i];
    kl_ab += pa * std::log(pa / pb);
    kl_ba += pb * std::log(pb / pa);
  }
  return 0.5 * (kl_ab + kl_ba);
}

ColumnHistogram ColumnHistogram::Mean(
    const std::vector<const ColumnHistogram*>& hs) {
  PEXESO_CHECK(!hs.empty());
  ColumnHistogram out;
  out.probs_.assign(hs[0]->probs_.size(), 0.0);
  for (const auto* h : hs) {
    for (size_t i = 0; i < out.probs_.size(); ++i) {
      out.probs_[i] += h->probs_[i];
    }
  }
  const double inv = 1.0 / static_cast<double>(hs.size());
  for (auto& p : out.probs_) p *= inv;
  return out;
}

HistogramBuilder::HistogramBuilder(const ColumnCatalog& catalog,
                                   const Options& options)
    : bins_(options.bins_per_axis) {
  PEXESO_CHECK(bins_ >= 2);
  const VectorStore& store = catalog.store();
  pca_.Fit(store.raw().data(), store.size(), store.dim(), 2,
           /*max_rows=*/10000, options.seed);
  // Projection ranges over a sample (clamped binning handles outliers).
  for (int a = 0; a < 2; ++a) {
    lo_[a] = 1e300;
    hi_[a] = -1e300;
  }
  const size_t stride = std::max<size_t>(1, store.size() / 5000);
  for (size_t i = 0; i < store.size(); i += stride) {
    for (uint32_t a = 0; a < 2; ++a) {
      const double p = pca_.Project(store.View(static_cast<VecId>(i)), a);
      lo_[a] = std::min(lo_[a], p);
      hi_[a] = std::max(hi_[a], p);
    }
  }
  for (int a = 0; a < 2; ++a) {
    if (hi_[a] <= lo_[a]) hi_[a] = lo_[a] + 1.0;
  }
}

ColumnHistogram HistogramBuilder::Build(const ColumnCatalog& catalog,
                                        ColumnId col) const {
  const ColumnMeta& meta = catalog.column(col);
  const VectorStore& store = catalog.store();
  std::vector<double> counts(static_cast<size_t>(bins_) * bins_, 0.0);
  for (VecId v = meta.first; v < meta.end(); ++v) {
    uint32_t idx[2];
    for (uint32_t a = 0; a < 2; ++a) {
      const double p = pca_.Project(store.View(v), a);
      double t = (p - lo_[a]) / (hi_[a] - lo_[a]);
      if (t < 0.0) t = 0.0;
      if (t > 1.0) t = 1.0;
      idx[a] = std::min<uint32_t>(static_cast<uint32_t>(t * bins_), bins_ - 1);
    }
    counts[idx[0] * bins_ + idx[1]] += 1.0;
  }
  // Laplace smoothing keeps the symmetric KL finite when bins are empty.
  ColumnHistogram h;
  h.probs_.resize(counts.size());
  const double alpha = 0.5;
  const double denom =
      static_cast<double>(meta.count) + alpha * counts.size();
  for (size_t i = 0; i < counts.size(); ++i) {
    h.probs_[i] = (counts[i] + alpha) / denom;
  }
  return h;
}

std::vector<ColumnHistogram> HistogramBuilder::BuildAll(
    const ColumnCatalog& catalog) const {
  std::vector<ColumnHistogram> out;
  out.reserve(catalog.num_columns());
  for (ColumnId c = 0; c < catalog.num_columns(); ++c) {
    out.push_back(Build(catalog, c));
  }
  return out;
}

}  // namespace pexeso
