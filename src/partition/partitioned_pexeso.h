#ifndef PEXESO_PARTITION_PARTITIONED_PEXESO_H_
#define PEXESO_PARTITION_PARTITIONED_PEXESO_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/pexeso_index.h"
#include "core/searcher.h"
#include "partition/partitioner.h"

namespace pexeso::serve {
class IndexCache;
}  // namespace pexeso::serve

namespace pexeso {

/// \brief Out-of-core PEXESO (Section IV): the repository is split into
/// partitions, each indexed by its own PexesoIndex and serialized to disk.
/// A search loads one partition into memory at a time, runs the in-memory
/// search, and merges results (reported in the global column-id space via
/// ColumnMeta::source_id).
///
/// Serving: AttachCache() routes every partition load through a shared
/// serve::IndexCache, so a batch of queries deserializes each partition file
/// once instead of once per query. Without a cache, loads go straight to
/// disk (the original Section IV one-partition-resident protocol). The
/// PartitionedJoinEngine side exposes per-partition search for the
/// partition-major batch loop and ServeSession streaming.
class PartitionedPexeso : public JoinSearchEngine,
                          public PartitionedJoinEngine {
 public:
  /// Splits `catalog` by `assignment`, builds one index per partition and
  /// writes them under `dir` as part-<i>.pxso. Returns the handle.
  static Result<PartitionedPexeso> Build(const ColumnCatalog& catalog,
                                         const PartitionAssignment& assignment,
                                         const std::string& dir,
                                         const Metric* metric,
                                         const PexesoOptions& options);

  /// Opens an existing partition directory (counts part-*.pxso files).
  static Result<PartitionedPexeso> Open(const std::string& dir,
                                        const Metric* metric);

  /// Which in-memory searcher runs against each loaded partition. The
  /// PEXESO-H variant exists so the Table VII out-of-core comparison can run
  /// both methods under the identical load-one-partition-at-a-time protocol.
  enum class Engine { kPexeso, kPexesoH };

  /// Searches every partition, loading each from disk in turn. Results are
  /// keyed by global column ids. `stats` (optional) accumulates across
  /// partitions; `io_seconds` (optional) reports the disk-loading share —
  /// including on the error path, so a failed partition load still accounts
  /// the IO it burned before failing.
  /// This is the status-returning workhorse behind Execute.
  Result<std::vector<JoinableColumn>> SearchPartitions(
      const JoinQuery& query, SearchStats* stats,
      double* io_seconds = nullptr, Engine engine = Engine::kPexeso) const;

  const char* name() const override {
    return engine_ == Engine::kPexeso ? "pexeso-part" : "pexeso-h-part";
  }

  /// Engine-interface entry point: searches every partition with the
  /// per-partition engine selected by set_engine() (PEXESO by default),
  /// serially in part order. kTopK requests carry the running k-th-best
  /// bound ACROSS partitions: each part searches with the bound the
  /// previous parts established (JoinQuery::topk_floor), so later parts
  /// prune against everything already found. A deadline/cancel trip
  /// between parts emits the completed parts' columns as partial results
  /// with the interruption status; an I/O failure (an environment fault —
  /// partition files were validated at Build/Open time) is returned as its
  /// status with no columns.
  Status Execute(const JoinQuery& query, ResultSink* sink,
                 SearchStats* stats) const override;

  // ------------------------------------------- PartitionedJoinEngine side
  size_t NumParts() const override { return num_parts_; }
  Result<PartHandle> AcquirePart(size_t part,
                                 double* io_seconds) const override;
  Result<std::vector<JoinableColumn>> SearchPart(
      size_t part, const JoinQuery& query, SearchStats* stats,
      double* io_seconds, const PartHandle& preloaded) const override;
  bool PartsStayResident() const override;

  /// Routes partition loads through `cache` (borrowed; must outlive this
  /// object; thread-safe itself). Call before concurrent searches start —
  /// the pointer is read unsynchronized on the search paths. Pass nullptr
  /// to detach and fall back to direct disk loads.
  void AttachCache(serve::IndexCache* cache) { cache_ = cache; }
  serve::IndexCache* cache() const { return cache_; }

  /// Path of partition `i`'s snapshot file (cache key / warm-up pinning).
  std::string PartPath(size_t i) const;

  /// Which in-memory searcher the JoinSearchEngine entry point runs against
  /// each loaded partition.
  void set_engine(Engine engine) { engine_ = engine; }

  size_t num_partitions() const { return num_parts_; }

  /// Total bytes of the serialized partition files.
  size_t DiskBytes() const;

 private:
  PartitionedPexeso(std::string dir, const Metric* metric, size_t parts)
      : dir_(std::move(dir)), metric_(metric), num_parts_(parts) {}

  /// Searches one partition with an explicit per-partition engine: acquires
  /// the index (preloaded handle > cache > direct load), remaps results to
  /// global column ids. `io_seconds` is incremented even when the load
  /// fails. For kTopK the inner engine ranks by part-LOCAL column ids, but
  /// the partitioner appends columns to each part in ascending global id,
  /// so local order == global order and the remap preserves the ranking's
  /// tie-breaks.
  Result<std::vector<JoinableColumn>> SearchOnePart(
      size_t part, const JoinQuery& query, SearchStats* stats,
      double* io_seconds, Engine engine, const PexesoIndex* preloaded) const;

  std::string dir_;
  const Metric* metric_;
  size_t num_parts_;
  Engine engine_ = Engine::kPexeso;
  serve::IndexCache* cache_ = nullptr;
};

/// Searches one in-memory index snapshot with the selected per-part searcher
/// (PEXESO or PEXESO-H) and remaps result ids to the global column-id space
/// (ColumnMeta::source_id). The shared primitive under PartitionedPexeso's
/// per-part search and the lake layer's base/delta snapshot searches.
Result<std::vector<JoinableColumn>> SearchIndexSnapshot(
    const PexesoIndex& index, const JoinQuery& query,
    PartitionedPexeso::Engine engine, SearchStats* stats);

}  // namespace pexeso

#endif  // PEXESO_PARTITION_PARTITIONED_PEXESO_H_
