#include "partition/partitioner.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/rng.h"
#include "la/pca.h"

namespace pexeso {

PartitionAssignment Partitioner::JsdClustering(const ColumnCatalog& catalog,
                                               const Options& options) {
  const size_t n = catalog.num_columns();
  PEXESO_CHECK(n > 0 && options.k > 0);
  const uint32_t k = static_cast<uint32_t>(std::min<size_t>(options.k, n));

  HistogramBuilder builder(catalog, {});
  std::vector<ColumnHistogram> hists = builder.BuildAll(catalog);

  // Step 2: random initial centers.
  Rng rng(options.seed);
  std::vector<size_t> seeds = rng.SampleIndices(n, k);
  std::vector<ColumnHistogram> centers;
  centers.reserve(k);
  for (size_t s : seeds) centers.push_back(hists[s]);

  PartitionAssignment assign(n, 0);
  for (uint32_t iter = 0; iter < options.iterations; ++iter) {
    // Step 3: assign to the minimum-divergence center.
    bool changed = false;
    for (size_t c = 0; c < n; ++c) {
      double best = std::numeric_limits<double>::max();
      uint32_t best_k = 0;
      for (uint32_t j = 0; j < k; ++j) {
        const double d = ColumnHistogram::JsDivergence(hists[c], centers[j]);
        if (d < best) {
          best = d;
          best_k = j;
        }
      }
      if (assign[c] != best_k) {
        assign[c] = best_k;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Step 4: centers become the mean histogram of their members.
    for (uint32_t j = 0; j < k; ++j) {
      std::vector<const ColumnHistogram*> members;
      for (size_t c = 0; c < n; ++c) {
        if (assign[c] == j) members.push_back(&hists[c]);
      }
      if (members.empty()) {
        // Re-seed an empty cluster.
        centers[j] = hists[rng.Uniform(n)];
      } else {
        centers[j] = ColumnHistogram::Mean(members);
      }
    }
  }
  return assign;
}

PartitionAssignment Partitioner::Random(const ColumnCatalog& catalog,
                                        const Options& options) {
  Rng rng(options.seed);
  PartitionAssignment assign(catalog.num_columns());
  for (auto& a : assign) {
    a = static_cast<uint32_t>(rng.Uniform(options.k));
  }
  return assign;
}

PartitionAssignment Partitioner::AverageKMeans(const ColumnCatalog& catalog,
                                               const Options& options) {
  const size_t n = catalog.num_columns();
  const uint32_t dim = catalog.dim();
  PEXESO_CHECK(n > 0);
  // Each column becomes the average of its vectors.
  std::vector<float> avgs(n * dim, 0.0f);
  for (ColumnId c = 0; c < n; ++c) {
    const ColumnMeta& meta = catalog.column(c);
    std::vector<double> acc(dim, 0.0);
    for (VecId v = meta.first; v < meta.end(); ++v) {
      const float* x = catalog.store().View(v);
      for (uint32_t j = 0; j < dim; ++j) acc[j] += x[j];
    }
    for (uint32_t j = 0; j < dim; ++j) {
      avgs[static_cast<size_t>(c) * dim + j] =
          static_cast<float>(acc[j] / meta.count);
    }
  }
  KMeans km;
  KMeans::Options ko;
  ko.k = options.k;
  ko.max_iters = options.iterations;
  ko.seed = options.seed;
  km.Fit(avgs.data(), n, dim, ko);
  PartitionAssignment assign(n);
  for (size_t c = 0; c < n; ++c) {
    assign[c] = km.Assign(avgs.data() + c * dim);
  }
  return assign;
}

}  // namespace pexeso
