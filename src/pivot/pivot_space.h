#ifndef PEXESO_PIVOT_PIVOT_SPACE_H_
#define PEXESO_PIVOT_PIVOT_SPACE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "vec/kernels.h"
#include "vec/metric.h"
#include "vec/vector_store.h"

namespace pexeso {

/// \brief A set of pivot vectors plus the machinery of pivot mapping
/// (Section III-A): x -> x' = [d(p1,x), ..., d(pk,x)].
///
/// The pivot space is where every filtering lemma operates; mapped vectors
/// are |P|-dimensional regardless of the embedding dimensionality, which is
/// how PEXESO sidesteps the curse of dimensionality during blocking.
///
/// Mapping runs on the metric's batched kernels: one one-to-many kernel
/// call per vector against the packed pivot block (which stays cache
/// resident), with pivot norms precomputed once so cosine never recomputes
/// them per pair. Metrics without kernels fall back to virtual Dist.
class PivotSpace {
 public:
  PivotSpace() = default;

  /// Builds from explicit pivot vectors (packed, `count` x `dim`).
  PivotSpace(const float* pivots, uint32_t count, uint32_t dim,
             const Metric* metric);

  uint32_t num_pivots() const { return num_pivots_; }
  uint32_t dim() const { return dim_; }
  const Metric* metric() const { return metric_; }

  /// Borrowed view of pivot i in the original space.
  const float* pivot(uint32_t i) const {
    return pivots_.data() + static_cast<size_t>(i) * dim_;
  }

  /// Maps one vector into the pivot space; `out` must hold num_pivots().
  void Map(const float* v, double* out) const;

  /// Maps `n` packed vectors; returns row-major n x num_pivots() distances.
  std::vector<double> MapAll(const float* data, size_t n) const;

  /// Upper bound of any pivot-space coordinate: the metric's max distance.
  /// The hierarchical grid uses this as the extent of every axis.
  double AxisExtent() const { return axis_extent_; }
  void set_axis_extent(double e) { axis_extent_ = e; }

  /// Serialization for partition files. The metric is not serialized; the
  /// caller re-binds it on load (metrics are stateless singletons).
  void Serialize(BinaryWriter* w) const;
  Status Deserialize(BinaryReader* r, const Metric* metric);

  size_t MemoryBytes() const {
    return (pivots_.capacity() + pivot_norms_.capacity()) * sizeof(float);
  }

 private:
  void BindMetric(const Metric* metric);

  uint32_t num_pivots_ = 0;
  uint32_t dim_ = 0;
  double axis_extent_ = 2.0;
  std::vector<float> pivots_;
  std::vector<float> pivot_norms_;  ///< ||p_i||, for the normed kernel path
  const Metric* metric_ = nullptr;
  const KernelSet* kernels_ = nullptr;
};

}  // namespace pexeso

#endif  // PEXESO_PIVOT_PIVOT_SPACE_H_
