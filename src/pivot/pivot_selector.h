#ifndef PEXESO_PIVOT_PIVOT_SELECTOR_H_
#define PEXESO_PIVOT_PIVOT_SELECTOR_H_

#include <cstdint>
#include <vector>

#include "vec/metric.h"

namespace pexeso {

/// \brief Pivot selection strategies (Section III-D).
///
/// The paper adopts the PCA-based method of Mao et al. [22]: good pivots are
/// outliers, and outliers sit at the extremes of the principal components.
/// The O(|RV|) procedure here: fit PCA on a sample, take the points with
/// extreme projections on the leading components as the outlier candidate
/// set, then greedily keep candidates that are far from already-chosen
/// pivots (outliers are good pivots only if they are not close to each
/// other). A uniform-random selector is provided as the Figure 7a baseline.
class PivotSelector {
 public:
  /// PCA-based selection of k pivots from n packed dim-d vectors.
  /// Returns the selected pivots packed (k x dim).
  static std::vector<float> SelectPca(const float* data, size_t n,
                                      uint32_t dim, uint32_t k,
                                      const Metric* metric, uint64_t seed = 17);

  /// Uniform-random selection of k distinct vectors.
  static std::vector<float> SelectRandom(const float* data, size_t n,
                                         uint32_t dim, uint32_t k,
                                         uint64_t seed = 17);
};

}  // namespace pexeso

#endif  // PEXESO_PIVOT_PIVOT_SELECTOR_H_
