#include "pivot/pivot_space.h"

#include "common/check.h"

namespace pexeso {

PivotSpace::PivotSpace(const float* pivots, uint32_t count, uint32_t dim,
                       const Metric* metric)
    : num_pivots_(count),
      dim_(dim),
      pivots_(pivots, pivots + static_cast<size_t>(count) * dim) {
  PEXESO_CHECK(count > 0 && dim > 0 && metric != nullptr);
  BindMetric(metric);
  axis_extent_ = metric->MaxUnitDistance(dim);
}

void PivotSpace::BindMetric(const Metric* metric) {
  metric_ = metric;
  kernels_ = metric != nullptr ? metric->kernels() : nullptr;
  pivot_norms_.assign(num_pivots_, 0.0f);
  if (kernels_ != nullptr && num_pivots_ > 0) {
    ComputeNorms(pivots_.data(), num_pivots_, dim_, pivot_norms_.data());
  }
}

void PivotSpace::Map(const float* v, double* out) const {
  if (kernels_ != nullptr) {
    const double qnorm = kernels_->QueryNorm(v, dim_);
    kernels_->DistManyNormed(v, qnorm, pivots_.data(), pivot_norms_.data(),
                             num_pivots_, dim_, out);
    return;
  }
  for (uint32_t i = 0; i < num_pivots_; ++i) {
    out[i] = metric_->Dist(pivot(i), v, dim_);
  }
}

std::vector<double> PivotSpace::MapAll(const float* data, size_t n) const {
  std::vector<double> mapped(n * num_pivots_);
  // The pivot block (|P| x dim floats) stays cache resident while the data
  // rows stream through; each row is one batched one-to-many kernel call.
  for (size_t i = 0; i < n; ++i) {
    Map(data + i * dim_, mapped.data() + i * num_pivots_);
  }
  return mapped;
}

void PivotSpace::Serialize(BinaryWriter* w) const {
  w->Write<uint32_t>(num_pivots_);
  w->Write<uint32_t>(dim_);
  w->Write<double>(axis_extent_);
  w->WriteVector(pivots_);
}

Status PivotSpace::Deserialize(BinaryReader* r, const Metric* metric) {
  PEXESO_RETURN_NOT_OK(r->Read(&num_pivots_));
  PEXESO_RETURN_NOT_OK(r->Read(&dim_));
  PEXESO_RETURN_NOT_OK(r->Read(&axis_extent_));
  PEXESO_RETURN_NOT_OK(r->ReadVector(&pivots_));
  if (pivots_.size() != static_cast<size_t>(num_pivots_) * dim_) {
    return Status::Corruption("pivot buffer size mismatch");
  }
  BindMetric(metric);
  return Status::OK();
}

}  // namespace pexeso
