#include "pivot/pivot_selector.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "la/pca.h"
#include "vec/kernels.h"

namespace pexeso {

std::vector<float> PivotSelector::SelectPca(const float* data, size_t n,
                                            uint32_t dim, uint32_t k,
                                            const Metric* metric,
                                            uint64_t seed) {
  PEXESO_CHECK(n > 0 && k > 0);
  k = static_cast<uint32_t>(std::min<size_t>(k, n));

  // 1. PCA on a bounded sample: O(sample * dim^2), independent of |RV|.
  const uint32_t comps = std::min<uint32_t>(std::max<uint32_t>(k, 2), dim);
  Pca pca;
  pca.Fit(data, n, dim, comps, /*max_rows=*/10000, seed);

  // 2. Outlier candidates: for each leading component, the points with the
  // largest |projection|. One linear scan over the data.
  const uint32_t kCandidatesPerComp = 8;
  struct Scored {
    double score;
    size_t idx;
  };
  std::vector<size_t> candidates;
  for (uint32_t c = 0; c < comps; ++c) {
    std::vector<Scored> top;
    top.reserve(kCandidatesPerComp + 1);
    for (size_t i = 0; i < n; ++i) {
      const double proj = std::abs(pca.Project(data + i * dim, c));
      if (top.size() < kCandidatesPerComp) {
        top.push_back({proj, i});
        std::push_heap(top.begin(), top.end(),
                       [](const Scored& a, const Scored& b) {
                         return a.score > b.score;
                       });
      } else if (proj > top.front().score) {
        std::pop_heap(top.begin(), top.end(),
                      [](const Scored& a, const Scored& b) {
                        return a.score > b.score;
                      });
        top.back() = {proj, i};
        std::push_heap(top.begin(), top.end(),
                       [](const Scored& a, const Scored& b) {
                         return a.score > b.score;
                       });
      }
    }
    for (const auto& s : top) candidates.push_back(s.idx);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // 3. Greedy max-min selection among the candidates: first pivot is the most
  // extreme point on PC1; each next pivot maximizes the minimum distance to
  // the already-selected pivots (outliers close to an existing pivot add no
  // filtering power).
  std::vector<size_t> chosen;
  chosen.reserve(k);
  {
    double best = -1.0;
    size_t best_i = candidates.front();
    for (size_t i : candidates) {
      const double proj = std::abs(pca.Project(data + i * dim, 0));
      if (proj > best) {
        best = proj;
        best_i = i;
      }
    }
    chosen.push_back(best_i);
  }
  const KernelSet* ks = metric->kernels();
  while (chosen.size() < k) {
    double best = -1.0;
    size_t best_i = static_cast<size_t>(-1);
    for (size_t i : candidates) {
      if (std::find(chosen.begin(), chosen.end(), i) != chosen.end()) continue;
      double mind = std::numeric_limits<double>::max();
      for (size_t c : chosen) {
        mind = std::min(mind, KernelDist(*metric, ks, data + i * dim,
                                         data + c * dim, dim));
      }
      if (mind > best) {
        best = mind;
        best_i = i;
      }
    }
    if (best_i == static_cast<size_t>(-1)) {
      // Candidate pool exhausted (tiny datasets): fall back to random fill.
      Rng rng(seed + chosen.size());
      while (chosen.size() < k) {
        size_t i = rng.Uniform(n);
        if (std::find(chosen.begin(), chosen.end(), i) == chosen.end()) {
          chosen.push_back(i);
        }
      }
      break;
    }
    chosen.push_back(best_i);
  }

  std::vector<float> out(static_cast<size_t>(k) * dim);
  for (uint32_t i = 0; i < k; ++i) {
    std::memcpy(out.data() + static_cast<size_t>(i) * dim,
                data + chosen[i] * dim, dim * sizeof(float));
  }
  return out;
}

std::vector<float> PivotSelector::SelectRandom(const float* data, size_t n,
                                               uint32_t dim, uint32_t k,
                                               uint64_t seed) {
  PEXESO_CHECK(n > 0 && k > 0);
  k = static_cast<uint32_t>(std::min<size_t>(k, n));
  Rng rng(seed);
  std::vector<size_t> idx = rng.SampleIndices(n, k);
  std::vector<float> out(static_cast<size_t>(k) * dim);
  for (uint32_t i = 0; i < k; ++i) {
    std::memcpy(out.data() + static_cast<size_t>(i) * dim,
                data + idx[i] * dim, dim * sizeof(float));
  }
  return out;
}

}  // namespace pexeso
