#ifndef PEXESO_INVINDEX_INVERTED_INDEX_H_
#define PEXESO_INVINDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "grid/hierarchical_grid.h"
#include "vec/column_catalog.h"

namespace pexeso {

/// \brief Inverted index over the leaf cells of HGRV (Section III-C).
///
/// Keys are leaf-cell indices; each key maps to a postings list of columns
/// having at least one vector in that cell, together with the ids of those
/// vectors. Postings are sorted by ColumnId so verification can proceed
/// document-at-a-time (column-at-a-time) across the candidate cells of a
/// query vector, which is what enables the Lemma 7 early termination and the
/// joinable-skip to bypass whole columns.
///
/// Postings lists are growable per cell: appending a column (Section III-E)
/// appends to the lists of the cells its vectors fall in, in O(1) per cell,
/// preserving the sorted-by-column invariant because ColumnIds are assigned
/// in increasing order.
///
/// Storage modes: owned (per-cell vectors, growable) or view (BindView
/// points the index at a CSR image — cell offsets, a flat postings array,
/// and the vec-id pool — inside an mmapped snapshot). Reads go through
/// PostingsOf / vec_ids_data() in both modes; mutators materialize first.
class InvertedIndex {
 public:
  /// Postings of one column within one leaf cell.
  struct Posting {
    ColumnId column;
    uint32_t vec_begin;  ///< offset into vec_ids()
    uint32_t vec_count;
  };
  static_assert(sizeof(Posting) == 12 && alignof(Posting) == 4,
                "Posting is a stable on-disk POD");

  InvertedIndex() = default;

  /// Builds from a repository grid whose leaf cells carry vector ids.
  void Build(const HierarchicalGrid& grid, const ColumnCatalog& catalog);

  /// Points the index at an external CSR image: `cell_offsets` has
  /// `num_cells + 1` entries (offsets into `postings`, monotone, ending at
  /// the postings count), `vec_ids` has `num_vec_ids` entries. The caller
  /// keeps all three alive (typically via the snapshot's MappedFile) and
  /// has validated monotonicity and posting ranges.
  void BindView(const uint64_t* cell_offsets, size_t num_cells,
                const InvertedIndex::Posting* postings, const VecId* vec_ids,
                size_t num_vec_ids) {
    cells_.clear();
    vec_ids_.clear();
    view_offsets_ = cell_offsets;
    view_postings_ = postings;
    view_vec_ids_ = vec_ids;
    view_num_cells_ = num_cells;
    view_num_vec_ids_ = num_vec_ids;
  }

  /// True when reads are served from an external CSR image.
  bool is_view() const { return view_offsets_ != nullptr; }

  /// Copies a viewed CSR image into owned storage; no-op when owned.
  void Materialize();

  /// Ensures at least `n` cells exist (new ones start empty).
  void EnsureCells(size_t n) {
    Materialize();
    if (cells_.size() < n) cells_.resize(n);
  }

  /// Appends the vectors of `column` that fall into `cell`. The column id
  /// must be >= every column already present in the cell.
  void Append(uint32_t cell, ColumnId column, std::span<const VecId> vecs);

  size_t num_cells() const {
    return is_view() ? view_num_cells_ : cells_.size();
  }

  /// Postings list of leaf cell `cell` (sorted by column id).
  std::span<const Posting> PostingsOf(uint32_t cell) const {
    if (is_view()) {
      const uint64_t begin = view_offsets_[cell];
      const uint64_t end = view_offsets_[cell + 1];
      return {view_postings_ + begin, static_cast<size_t>(end - begin)};
    }
    return {cells_[cell].data(), cells_[cell].size()};
  }

  /// Vector ids referenced by postings (mode-agnostic pointer + count).
  const VecId* vec_ids_data() const {
    return is_view() ? view_vec_ids_ : vec_ids_.data();
  }
  size_t vec_ids_size() const {
    return is_view() ? view_num_vec_ids_ : vec_ids_.size();
  }

  /// Total postings across all cells.
  size_t num_postings() const {
    if (is_view()) {
      return static_cast<size_t>(view_offsets_[view_num_cells_]);
    }
    size_t n = 0;
    for (const auto& c : cells_) n += c.size();
    return n;
  }

  size_t MemoryBytes() const;

  void Serialize(BinaryWriter* w) const;
  Status Deserialize(BinaryReader* r);

 private:
  std::vector<std::vector<Posting>> cells_;
  std::vector<VecId> vec_ids_;

  // View mode (non-null view_offsets_): CSR image owned by the snapshot.
  const uint64_t* view_offsets_ = nullptr;
  const Posting* view_postings_ = nullptr;
  const VecId* view_vec_ids_ = nullptr;
  size_t view_num_cells_ = 0;
  size_t view_num_vec_ids_ = 0;
};

}  // namespace pexeso

#endif  // PEXESO_INVINDEX_INVERTED_INDEX_H_
