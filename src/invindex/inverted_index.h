#ifndef PEXESO_INVINDEX_INVERTED_INDEX_H_
#define PEXESO_INVINDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "grid/hierarchical_grid.h"
#include "vec/column_catalog.h"

namespace pexeso {

/// \brief Inverted index over the leaf cells of HGRV (Section III-C).
///
/// Keys are leaf-cell indices; each key maps to a postings list of columns
/// having at least one vector in that cell, together with the ids of those
/// vectors. Postings are sorted by ColumnId so verification can proceed
/// document-at-a-time (column-at-a-time) across the candidate cells of a
/// query vector, which is what enables the Lemma 7 early termination and the
/// joinable-skip to bypass whole columns.
///
/// Postings lists are growable per cell: appending a column (Section III-E)
/// appends to the lists of the cells its vectors fall in, in O(1) per cell,
/// preserving the sorted-by-column invariant because ColumnIds are assigned
/// in increasing order.
class InvertedIndex {
 public:
  /// Postings of one column within one leaf cell.
  struct Posting {
    ColumnId column;
    uint32_t vec_begin;  ///< offset into vec_ids()
    uint32_t vec_count;
  };

  InvertedIndex() = default;

  /// Builds from a repository grid whose leaf cells carry vector ids.
  void Build(const HierarchicalGrid& grid, const ColumnCatalog& catalog);

  /// Ensures at least `n` cells exist (new ones start empty).
  void EnsureCells(size_t n) {
    if (cells_.size() < n) cells_.resize(n);
  }

  /// Appends the vectors of `column` that fall into `cell`. The column id
  /// must be >= every column already present in the cell.
  void Append(uint32_t cell, ColumnId column, std::span<const VecId> vecs);

  size_t num_cells() const { return cells_.size(); }

  /// Postings list of leaf cell `cell` (sorted by column id).
  std::span<const Posting> PostingsOf(uint32_t cell) const {
    return {cells_[cell].data(), cells_[cell].size()};
  }

  /// Vector ids referenced by postings.
  const std::vector<VecId>& vec_ids() const { return vec_ids_; }

  size_t MemoryBytes() const;

  void Serialize(BinaryWriter* w) const;
  Status Deserialize(BinaryReader* r);

 private:
  std::vector<std::vector<Posting>> cells_;
  std::vector<VecId> vec_ids_;
};

}  // namespace pexeso

#endif  // PEXESO_INVINDEX_INVERTED_INDEX_H_
