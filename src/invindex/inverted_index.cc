#include "invindex/inverted_index.h"

#include <algorithm>

namespace pexeso {

void InvertedIndex::Build(const HierarchicalGrid& grid,
                          const ColumnCatalog& catalog) {
  const auto& leaves = grid.LeafCells();
  cells_.assign(leaves.size(), {});
  vec_ids_.clear();
  vec_ids_.reserve(grid.num_vectors());

  // Scratch: (column, vec) pairs of one cell, sorted by column then vec.
  std::vector<std::pair<ColumnId, VecId>> scratch;
  for (size_t cell = 0; cell < leaves.size(); ++cell) {
    const auto& items = leaves[cell].items;
    PEXESO_CHECK_MSG(!items.empty(),
                     "repository grid leaves must carry vector ids");
    scratch.clear();
    scratch.reserve(items.size());
    for (VecId v : items) {
      scratch.emplace_back(catalog.ColumnOf(v), v);
    }
    std::sort(scratch.begin(), scratch.end());
    size_t i = 0;
    while (i < scratch.size()) {
      const ColumnId col = scratch[i].first;
      const uint32_t begin = static_cast<uint32_t>(vec_ids_.size());
      uint32_t count = 0;
      while (i < scratch.size() && scratch[i].first == col) {
        vec_ids_.push_back(scratch[i].second);
        ++count;
        ++i;
      }
      cells_[cell].push_back(Posting{col, begin, count});
    }
  }
}

void InvertedIndex::Materialize() {
  if (!is_view()) return;
  cells_.assign(view_num_cells_, {});
  for (size_t cell = 0; cell < view_num_cells_; ++cell) {
    const uint64_t begin = view_offsets_[cell];
    const uint64_t end = view_offsets_[cell + 1];
    cells_[cell].assign(view_postings_ + begin, view_postings_ + end);
  }
  vec_ids_.assign(view_vec_ids_, view_vec_ids_ + view_num_vec_ids_);
  view_offsets_ = nullptr;
  view_postings_ = nullptr;
  view_vec_ids_ = nullptr;
  view_num_cells_ = 0;
  view_num_vec_ids_ = 0;
}

void InvertedIndex::Append(uint32_t cell, ColumnId column,
                           std::span<const VecId> vecs) {
  Materialize();
  PEXESO_CHECK(cell < cells_.size());
  PEXESO_CHECK(!vecs.empty());
  auto& postings = cells_[cell];
  PEXESO_CHECK_MSG(postings.empty() || postings.back().column <= column,
                   "appends must use non-decreasing column ids");
  const uint32_t begin = static_cast<uint32_t>(vec_ids_.size());
  vec_ids_.insert(vec_ids_.end(), vecs.begin(), vecs.end());
  if (!postings.empty() && postings.back().column == column &&
      postings.back().vec_begin + postings.back().vec_count == begin) {
    postings.back().vec_count += static_cast<uint32_t>(vecs.size());
  } else {
    postings.push_back(
        Posting{column, begin, static_cast<uint32_t>(vecs.size())});
  }
}

size_t InvertedIndex::MemoryBytes() const {
  size_t bytes = vec_ids_.capacity() * sizeof(VecId) +
                 cells_.capacity() * sizeof(std::vector<Posting>);
  for (const auto& c : cells_) bytes += c.capacity() * sizeof(Posting);
  return bytes;
}

void InvertedIndex::Serialize(BinaryWriter* w) const {
  // Mode-agnostic and byte-identical to the historical per-cell WriteVector
  // layout (u64 length + raw postings per cell, then the vec-id pool).
  const size_t n = num_cells();
  w->Write<uint64_t>(n);
  for (size_t cell = 0; cell < n; ++cell) {
    const auto postings = PostingsOf(static_cast<uint32_t>(cell));
    w->Write<uint64_t>(postings.size());
    w->WriteBytes(postings.data(), postings.size() * sizeof(Posting));
  }
  w->Write<uint64_t>(vec_ids_size());
  w->WriteBytes(vec_ids_data(), vec_ids_size() * sizeof(VecId));
}

Status InvertedIndex::Deserialize(BinaryReader* r) {
  uint64_t n = 0;
  PEXESO_RETURN_NOT_OK(r->Read(&n));
  view_offsets_ = nullptr;
  view_postings_ = nullptr;
  view_vec_ids_ = nullptr;
  view_num_cells_ = 0;
  view_num_vec_ids_ = 0;
  cells_.assign(n, {});
  for (auto& c : cells_) PEXESO_RETURN_NOT_OK(r->ReadVector(&c));
  PEXESO_RETURN_NOT_OK(r->ReadVector(&vec_ids_));
  for (const auto& c : cells_) {
    for (const auto& p : c) {
      if (static_cast<size_t>(p.vec_begin) + p.vec_count > vec_ids_.size()) {
        return Status::Corruption("posting references out-of-range vec ids");
      }
    }
  }
  return Status::OK();
}

}  // namespace pexeso
