#include "embed/synonym_model.h"

#include "common/rng.h"
#include "common/str_util.h"
#include "vec/vector_store.h"

namespace pexeso {

void SynonymDictionary::Add(std::string_view canonical,
                            std::string_view variant) {
  to_canonical_[ToLower(variant)] = ToLower(canonical);
}

std::string SynonymDictionary::Canonicalize(std::string_view phrase) const {
  const std::string key = ToLower(Trim(phrase));
  auto it = to_canonical_.find(key);
  return it != to_canonical_.end() ? it->second : key;
}

std::vector<float> SynonymModel::EmbedRecord(std::string_view value) const {
  const std::string canonical = dict_->Canonicalize(value);
  std::vector<float> v = base_->EmbedRecord(canonical);
  // Deterministic per-surface-form jitter: distinct variants of the same
  // canonical entity are near-identical but not equal (as with real
  // embeddings of synonyms).
  const std::string key = ToLower(Trim(value));
  Rng rng(Fnv1a64(key.data(), key.size(), 0x7177E6ULL));
  for (auto& x : v) {
    x += static_cast<float>(rng.Normal() * jitter_);
  }
  VectorStore::NormalizeInPlace(v.data(), static_cast<uint32_t>(v.size()));
  return v;
}

}  // namespace pexeso
