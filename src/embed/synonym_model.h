#ifndef PEXESO_EMBED_SYNONYM_MODEL_H_
#define PEXESO_EMBED_SYNONYM_MODEL_H_

#include <memory>
#include <unordered_map>

#include "embed/embedding_model.h"

namespace pexeso {

/// \brief Dictionary of synonym groups: phrases that mean the same thing map
/// to a shared canonical form ("Pacific Islander" ->
/// "hawaiian/guamanian/samoan"). Keys are lower-cased.
class SynonymDictionary {
 public:
  /// Registers `variant` as a synonym of `canonical` (both lower-cased).
  void Add(std::string_view canonical, std::string_view variant);

  /// Canonical form of `phrase`, or `phrase` itself if unknown.
  std::string Canonicalize(std::string_view phrase) const;

  size_t size() const { return to_canonical_.size(); }

 private:
  std::unordered_map<std::string, std::string> to_canonical_;
};

/// \brief Semantic wrapper around a base embedding model: records are
/// canonicalized through a synonym dictionary before embedding, then a small
/// deterministic per-surface-form jitter is added. Synonyms therefore land
/// within jitter distance of each other while unrelated records stay far
/// apart — the geometry a real pre-trained model gives the paper's
/// motivating example (Table I).
class SynonymModel : public EmbeddingModel {
 public:
  /// `base` is owned; `dict` is borrowed and must outlive the model.
  SynonymModel(std::unique_ptr<EmbeddingModel> base,
               const SynonymDictionary* dict, double jitter = 0.02)
      : base_(std::move(base)), dict_(dict), jitter_(jitter) {}

  uint32_t dim() const override { return base_->dim(); }
  std::vector<float> EmbedRecord(std::string_view value) const override;
  std::string Name() const override { return "synonym+" + base_->Name(); }

 private:
  std::unique_ptr<EmbeddingModel> base_;
  const SynonymDictionary* dict_;
  double jitter_;
};

}  // namespace pexeso

#endif  // PEXESO_EMBED_SYNONYM_MODEL_H_
