#include "embed/word_avg_model.h"

#include "common/rng.h"
#include "common/str_util.h"
#include "vec/vector_store.h"

namespace pexeso {

std::vector<float> WordAvgModel::EmbedRecord(std::string_view value) const {
  std::vector<float> acc(options_.dim, 0.0f);
  const auto words = WordTokens(value);
  for (const auto& word : words) {
    Rng rng(Fnv1a64(word.data(), word.size(), options_.seed));
    for (uint32_t i = 0; i < options_.dim; ++i) {
      acc[i] += static_cast<float>(rng.Normal());
    }
  }
  if (words.empty()) {
    Rng rng(Fnv1a64("<empty>", 7, options_.seed));
    for (uint32_t i = 0; i < options_.dim; ++i) {
      acc[i] += static_cast<float>(rng.Normal());
    }
  } else {
    const float inv = 1.0f / static_cast<float>(words.size());
    for (auto& x : acc) x *= inv;
  }
  VectorStore::NormalizeInPlace(acc.data(), options_.dim);
  return acc;
}

}  // namespace pexeso
