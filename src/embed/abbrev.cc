#include "embed/abbrev.h"

#include "common/str_util.h"

namespace pexeso {

AbbreviationExpander::AbbreviationExpander() {
  // Months.
  const char* months[][2] = {
      {"jan", "january"}, {"feb", "february"}, {"mar", "march"},
      {"apr", "april"},   {"jun", "june"},     {"jul", "july"},
      {"aug", "august"},  {"sep", "september"}, {"sept", "september"},
      {"oct", "october"}, {"nov", "november"}, {"dec", "december"}};
  for (auto& m : months) rules_[m[0]] = m[1];
  // Weekdays.
  const char* days[][2] = {{"mon", "monday"}, {"tue", "tuesday"},
                           {"wed", "wednesday"}, {"thu", "thursday"},
                           {"fri", "friday"}, {"sat", "saturday"},
                           {"sun", "sunday"}};
  for (auto& d : days) rules_[d[0]] = d[1];
  // Street / address suffixes.
  const char* addr[][2] = {
      {"st", "street"},  {"rd", "road"},     {"ave", "avenue"},
      {"blvd", "boulevard"}, {"dr", "drive"}, {"ln", "lane"},
      {"hwy", "highway"}, {"ct", "court"},   {"pl", "place"},
      {"sq", "square"},   {"apt", "apartment"}, {"ste", "suite"},
      {"n", "north"},     {"s", "south"},    {"e", "east"},
      {"w", "west"},      {"mt", "mount"},   {"ft", "fort"}};
  for (auto& a : addr) rules_[a[0]] = a[1];
}

void AbbreviationExpander::AddRule(std::string_view abbrev,
                                   std::string_view full) {
  rules_[ToLower(abbrev)] = ToLower(full);
}

std::string AbbreviationExpander::Expand(std::string_view value) const {
  const auto words = WordTokens(value);
  std::vector<std::string> out;
  out.reserve(words.size());
  for (const auto& w : words) {
    auto it = rules_.find(w);
    out.push_back(it != rules_.end() ? it->second : w);
  }
  return Join(out, " ");
}

}  // namespace pexeso
