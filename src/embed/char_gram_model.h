#ifndef PEXESO_EMBED_CHAR_GRAM_MODEL_H_
#define PEXESO_EMBED_CHAR_GRAM_MODEL_H_

#include <cstdint>

#include "embed/embedding_model.h"

namespace pexeso {

/// \brief fastText-like subword embedding: a record is the normalized sum of
/// deterministic hash vectors of its character n-grams (with word-boundary
/// markers) plus whole-word vectors. Two strings that differ by a small edit
/// share most n-grams, so their embeddings are close — exactly the
/// "handles misspelling by character-level information" property the paper
/// uses fastText for. Out-of-vocabulary text is no special case: every
/// n-gram hashes to a vector.
class CharGramModel : public EmbeddingModel {
 public:
  struct Options {
    uint32_t dim = 50;
    uint32_t min_gram = 2;
    uint32_t max_gram = 4;
    /// Weight of the whole-word hash vector relative to n-grams. Small by
    /// default so single-character edits (which keep most n-grams but change
    /// the word identity) stay nearby, as with real subword embeddings.
    float word_weight = 0.4f;
    float gram_weight = 1.0f;
    uint64_t seed = 0xFA57ULL;  ///< namespace of the hash vectors
  };

  explicit CharGramModel(const Options& options) : options_(options) {}
  CharGramModel() : CharGramModel(Options{}) {}

  uint32_t dim() const override { return options_.dim; }
  std::vector<float> EmbedRecord(std::string_view value) const override;
  std::string Name() const override { return "chargram"; }

 private:
  /// Adds the deterministic pseudo-random unit vector of `token` into `acc`.
  void AddHashVector(std::string_view token, float weight, float* acc) const;

  Options options_;
};

}  // namespace pexeso

#endif  // PEXESO_EMBED_CHAR_GRAM_MODEL_H_
