#ifndef PEXESO_EMBED_WORD_AVG_MODEL_H_
#define PEXESO_EMBED_WORD_AVG_MODEL_H_

#include "embed/embedding_model.h"

namespace pexeso {

/// \brief GloVe-like embedding: split the record into words, map each word
/// to a deterministic hash vector, average, and normalize. This mirrors the
/// paper's WDC pipeline ("String values are split into English words and
/// GloVe is used ... then we compute the average of the word embeddings").
/// No subword information: a single-character typo in a word yields an
/// unrelated word vector, exactly as with real word-level embeddings.
class WordAvgModel : public EmbeddingModel {
 public:
  struct Options {
    uint32_t dim = 50;
    uint64_t seed = 0x610E7ULL;
  };

  explicit WordAvgModel(const Options& options) : options_(options) {}
  WordAvgModel() : WordAvgModel(Options{}) {}

  uint32_t dim() const override { return options_.dim; }
  std::vector<float> EmbedRecord(std::string_view value) const override;
  std::string Name() const override { return "wordavg"; }

 private:
  Options options_;
};

}  // namespace pexeso

#endif  // PEXESO_EMBED_WORD_AVG_MODEL_H_
