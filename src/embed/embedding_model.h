#ifndef PEXESO_EMBED_EMBEDDING_MODEL_H_
#define PEXESO_EMBED_EMBEDDING_MODEL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pexeso {

/// \brief A record-embedding model: maps a textual record value to a dense
/// vector in a metric space.
///
/// The paper treats the pre-trained model (fastText / GloVe) as a plug-in —
/// PEXESO only requires that the output lives in a metric space. This repo
/// cannot ship multi-GB pre-trained weights, so the concrete models below
/// are deterministic hash-based simulations that preserve the properties the
/// experiments rely on (see DESIGN.md "Substitutions"):
///  - CharGramModel (fastText-like): misspellings and format variants land
///    close, because they share most character n-grams;
///  - WordAvgModel (GloVe-like): averaging of per-word vectors;
///  - SynonymModel: adds a synonym dictionary so that semantically equal
///    records ("American Indian/Alaska Native" vs "Mainland Indigenous")
///    land close, which is the effect pre-training has in the paper.
class EmbeddingModel {
 public:
  virtual ~EmbeddingModel() = default;

  /// Output dimensionality.
  virtual uint32_t dim() const = 0;

  /// Embeds a record value; the result is unit-normalized.
  virtual std::vector<float> EmbedRecord(std::string_view value) const = 0;

  /// Model name for logs and dataset statistics tables.
  virtual std::string Name() const = 0;

  /// Embeds a whole column of values into a packed buffer.
  std::vector<float> EmbedColumn(const std::vector<std::string>& values) const;
};

}  // namespace pexeso

#endif  // PEXESO_EMBED_EMBEDDING_MODEL_H_
