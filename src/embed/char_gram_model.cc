#include "embed/char_gram_model.h"

#include "common/rng.h"
#include "common/str_util.h"
#include "vec/vector_store.h"

namespace pexeso {

std::vector<float> EmbeddingModel::EmbedColumn(
    const std::vector<std::string>& values) const {
  std::vector<float> packed;
  packed.reserve(values.size() * dim());
  for (const auto& v : values) {
    auto e = EmbedRecord(v);
    packed.insert(packed.end(), e.begin(), e.end());
  }
  return packed;
}

void CharGramModel::AddHashVector(std::string_view token, float weight,
                                  float* acc) const {
  // Each token deterministically seeds a tiny RNG that produces its
  // "pre-trained" vector; the same token always maps to the same vector.
  Rng rng(Fnv1a64(token.data(), token.size(), options_.seed));
  for (uint32_t i = 0; i < options_.dim; ++i) {
    acc[i] += weight * static_cast<float>(rng.Normal());
  }
}

std::vector<float> CharGramModel::EmbedRecord(std::string_view value) const {
  std::vector<float> acc(options_.dim, 0.0f);
  const auto words = WordTokens(value);
  for (const auto& word : words) {
    // Whole-word vector plus boundary-marked n-grams.
    AddHashVector(word, options_.word_weight, acc.data());
    const std::string marked = "<" + word + ">";
    for (uint32_t n = options_.min_gram;
         n <= options_.max_gram && n <= marked.size(); ++n) {
      for (size_t i = 0; i + n <= marked.size(); ++i) {
        AddHashVector(std::string_view(marked).substr(i, n),
                      options_.gram_weight, acc.data());
      }
    }
  }
  if (words.empty()) {
    AddHashVector("<empty>", 1.0f, acc.data());
  }
  VectorStore::NormalizeInPlace(acc.data(), options_.dim);
  return acc;
}

}  // namespace pexeso
