#ifndef PEXESO_EMBED_ABBREV_H_
#define PEXESO_EMBED_ABBREV_H_

#include <string>
#include <string_view>
#include <unordered_map>

namespace pexeso {

/// \brief Abbreviation expansion for date and address records (Section
/// II-A): "Mar" -> "March", "St" -> "Street", etc. Word-level, lower-cased,
/// with a built-in dictionary covering months, weekdays and common street
/// suffixes; domain dictionaries can be merged in via AddRule.
class AbbreviationExpander {
 public:
  /// Constructs with the built-in date/address dictionary.
  AbbreviationExpander();

  /// Adds/overrides a rule (both sides lower-cased).
  void AddRule(std::string_view abbrev, std::string_view full);

  /// Expands every abbreviated word in `value` to its full form; other text
  /// (casing normalized to lower) passes through.
  std::string Expand(std::string_view value) const;

  size_t num_rules() const { return rules_.size(); }

 private:
  std::unordered_map<std::string, std::string> rules_;
};

}  // namespace pexeso

#endif  // PEXESO_EMBED_ABBREV_H_
