#ifndef PEXESO_DATAGEN_LAKE_GENERATOR_H_
#define PEXESO_DATAGEN_LAKE_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "datagen/entity_pool.h"
#include "table/table.h"

namespace pexeso {

/// \brief A synthetic data lake with known join ground truth: `related`
/// tables draw their key column from the query entity pool (under variant
/// surface forms), `noise` tables draw from disjoint pools. Every table also
/// carries numeric payload columns so the repository pipeline exercises type
/// detection.
struct GeneratedLake {
  std::vector<RawTable> tables;
  /// Per table, per row of the key column: entity id in the query pool, or
  /// -1 for noise records.
  std::vector<std::vector<int64_t>> key_entities;
  EntityPool pool;  ///< the query-domain entity pool (owns the synonym dict)

  /// Ground-truth joinability of `query_entities` against table t: the
  /// fraction of query records whose entity occurs in the table's key
  /// column. This is the stand-in for the paper's human labeling.
  double TrueJoinability(const std::vector<int64_t>& query_entities,
                         size_t table) const;
};

/// \brief A query column sampled from the lake's entity pool.
struct GeneratedQuery {
  std::vector<std::string> records;
  std::vector<int64_t> entities;
};

class LakeGenerator {
 public:
  struct Options {
    /// Query-domain entity pool. Sized so that related tables cover a
    /// substantial share of it — otherwise no table could ever be truly
    /// joinable with a query sampled from the pool.
    EntityPool::Options pool = [] {
      EntityPool::Options p;
      p.num_entities = 60;
      return p;
    }();
    uint32_t num_related_tables = 40;
    uint32_t num_noise_tables = 60;
    uint32_t rows_min = 10;
    uint32_t rows_max = 50;
    /// Entity-overlap fraction range of related tables.
    double overlap_min = 0.2;
    double overlap_max = 0.95;
    /// Probability that a pool record appears under a variant form.
    double variant_prob = 0.5;
    uint32_t numeric_cols = 2;
    uint64_t seed = 61;
  };

  static GeneratedLake Generate(const Options& options);

  /// Samples a query column of `size` records from the lake's pool.
  static GeneratedQuery MakeQuery(const GeneratedLake& lake, size_t size,
                                  double variant_prob, uint64_t seed);
};

}  // namespace pexeso

#endif  // PEXESO_DATAGEN_LAKE_GENERATOR_H_
