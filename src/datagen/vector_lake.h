#ifndef PEXESO_DATAGEN_VECTOR_LAKE_H_
#define PEXESO_DATAGEN_VECTOR_LAKE_H_

#include <cstdint>
#include <string>

#include "vec/column_catalog.h"

namespace pexeso {

/// \brief Direct generator of embedded repositories for the efficiency
/// benchmarks: columns of unit vectors drawn around shared cluster centers
/// with log-normal-ish column sizes. Mimics the *shape* statistics of the
/// paper's datasets (Table III) at laptop scale — dimensionality, columns,
/// average vectors/column — without going through strings, so the
/// efficiency benches measure search, not embedding.
struct VectorLakeOptions {
  uint32_t dim = 50;
  uint32_t num_columns = 2000;
  double avg_col_size = 16.0;
  double col_size_spread = 0.6;  ///< lognormal sigma of column sizes
  uint32_t num_clusters = 64;
  /// Scale of within-cluster pair distances. Per-point noise is drawn
  /// lognormally around this so that pair distances span the paper's tau
  /// range (2%-8% of the max distance 2): some pairs match at tight tau,
  /// more match as tau loosens.
  double cluster_sigma = 0.06;
  uint64_t seed = 67;
};

ColumnCatalog GenerateVectorLake(const VectorLakeOptions& options);

/// A query column drawn from the same cluster structure (same seed derives
/// the same centers), `size` vectors.
VectorStore GenerateVectorQuery(const VectorLakeOptions& options, size_t size,
                                uint64_t query_seed);

/// \brief Scaled-down profiles of the paper's datasets (Table III). `scale`
/// in (0, 1] multiplies the column count; PEXESO_BENCH_SCALE in the
/// environment rescales every bench uniformly.
struct BenchProfiles {
  /// OPEN: few, long columns; 300-d fastText.
  static VectorLakeOptions OpenLike(double scale);
  /// SWDC: many short columns; 50-d GloVe.
  static VectorLakeOptions SwdcLike(double scale);
  /// LWDC: the out-of-core profile (larger than SWDC, still 50-d).
  static VectorLakeOptions LwdcLike(double scale);

  /// Reads PEXESO_BENCH_SCALE (default `def`), clamped to [0.01, 100].
  static double EnvScale(double def = 1.0);
};

}  // namespace pexeso

#endif  // PEXESO_DATAGEN_VECTOR_LAKE_H_
