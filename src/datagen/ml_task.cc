#include "datagen/ml_task.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/check.h"

namespace pexeso {

MlTask MlTaskGenerator::Generate(const Options& options) {
  MlTask task;
  task.regression = options.regression;
  task.num_classes = options.num_classes;
  Rng rng(options.seed);

  EntityPool::Options popts;
  popts.num_entities = options.num_entities;
  popts.seed = options.seed + 1;
  task.pool = EntityPool::Generate(popts);

  // Latent factors per entity; labels depend on them.
  const uint32_t ld = options.latent_dim;
  std::vector<float> latents(options.num_entities * ld);
  std::vector<float> targets(options.num_entities);
  std::vector<float> class_means(options.num_classes * ld);
  for (auto& x : class_means) x = static_cast<float>(rng.Normal() * 2.0);
  std::vector<double> reg_w(ld);
  for (auto& w : reg_w) w = rng.Normal();

  for (size_t e = 0; e < options.num_entities; ++e) {
    if (options.regression) {
      float* z = latents.data() + e * ld;
      for (uint32_t j = 0; j < ld; ++j) {
        z[j] = static_cast<float>(rng.Normal());
      }
      double y = 0.0;
      for (uint32_t j = 0; j < ld; ++j) y += reg_w[j] * z[j];
      targets[e] = static_cast<float>(y + rng.Normal() * 0.3);
    } else {
      const uint32_t cls =
          static_cast<uint32_t>(rng.Uniform(options.num_classes));
      float* z = latents.data() + e * ld;
      const float* mean = class_means.data() + cls * ld;
      for (uint32_t j = 0; j < ld; ++j) {
        z[j] = mean[j] + static_cast<float>(rng.Normal() * 0.6);
      }
      targets[e] = static_cast<float>(cls);
    }
  }

  // Query table: canonical keys, weak base features.
  const size_t qrows = std::min(options.query_rows, options.num_entities);
  auto picks = rng.SampleIndices(options.num_entities, qrows);
  task.base.num_features = options.base_features;
  for (uint32_t f = 0; f < options.base_features; ++f) {
    task.base.feature_names.push_back("base_" + std::to_string(f));
  }
  std::vector<float> row(options.base_features);
  for (size_t e : picks) {
    task.query_keys.push_back(task.pool.entity(e).canonical);
    task.query_entities.push_back(static_cast<int64_t>(e));
    const float* z = latents.data() + e * ld;
    for (uint32_t f = 0; f < options.base_features; ++f) {
      row[f] = z[f % ld] + static_cast<float>(rng.Normal() *
                                              options.base_noise);
    }
    task.base.AddRow(row, targets[e]);
  }

  // Lake feature tables: variant keys + strong attribute views. Attribute
  // names come from a shared pool so different tables collide (paper's
  // second conflict type, resolved by summing).
  const std::vector<std::string> attr_name_pool = {
      "score", "volume", "index", "rank", "weight", "ratio"};
  for (uint32_t t = 0; t < options.num_tables; ++t) {
    MlTask::FeatureTable table;
    table.name = "feature_table_" + std::to_string(t);
    for (uint32_t a = 0; a < options.attrs_per_table; ++a) {
      table.attr_names.push_back(
          attr_name_pool[(t + a) % attr_name_pool.size()]);
    }
    table.attrs.assign(options.attrs_per_table, {});
    // Which latent each attribute reveals.
    std::vector<uint32_t> attr_latent(options.attrs_per_table);
    for (auto& al : attr_latent) {
      al = static_cast<uint32_t>(rng.Uniform(ld));
    }
    for (size_t e = 0; e < options.num_entities; ++e) {
      if (!rng.Bernoulli(options.coverage)) continue;
      table.keys.push_back(
          task.pool.Surface(e, options.variant_prob, &rng));
      table.entities.push_back(static_cast<int64_t>(e));
      const float* z = latents.data() + e * ld;
      for (uint32_t a = 0; a < options.attrs_per_table; ++a) {
        table.attrs[a].push_back(
            z[attr_latent[a]] +
            static_cast<float>(rng.Normal() * options.attr_noise));
      }
    }
    task.tables.push_back(std::move(table));
  }
  return task;
}

Dataset AssembleEnriched(const MlTask& task, const JoinMap& join_map) {
  PEXESO_CHECK(join_map.size() == task.tables.size());
  const size_t qrows = task.query_keys.size();
  const float nan = std::numeric_limits<float>::quiet_NaN();

  // Collect the distinct attribute names across tables (conflict groups).
  std::vector<std::string> names;
  std::unordered_map<std::string, size_t> name_idx;
  for (const auto& t : task.tables) {
    for (const auto& n : t.attr_names) {
      if (!name_idx.count(n)) {
        name_idx[n] = names.size();
        names.push_back(n);
      }
    }
  }

  Dataset out;
  out.num_features = task.base.num_features + names.size();
  out.feature_names = task.base.feature_names;
  for (const auto& n : names) out.feature_names.push_back("joined_" + n);
  out.y = task.base.y;

  out.x.assign(qrows * out.num_features, nan);
  for (size_t r = 0; r < qrows; ++r) {
    float* dst = out.x.data() + r * out.num_features;
    const float* src = task.base.Row(r);
    std::copy(src, src + task.base.num_features, dst);
    // Sum matched attribute values per conflict group.
    std::vector<double> sums(names.size(), 0.0);
    std::vector<bool> any(names.size(), false);
    for (size_t t = 0; t < task.tables.size(); ++t) {
      const int32_t match = join_map[t][r];
      if (match < 0) continue;
      const auto& table = task.tables[t];
      for (size_t a = 0; a < table.attr_names.size(); ++a) {
        const size_t g = name_idx.at(table.attr_names[a]);
        sums[g] += table.attrs[a][static_cast<size_t>(match)];
        any[g] = true;
      }
    }
    for (size_t g = 0; g < names.size(); ++g) {
      if (any[g]) {
        dst[task.base.num_features + g] = static_cast<float>(sums[g]);
      }
    }
  }
  out.ImputeMissing();
  return out;
}

double JoinMatchRatio(const JoinMap& join_map) {
  size_t probes = 0, hits = 0;
  for (const auto& per_table : join_map) {
    for (int32_t m : per_table) {
      ++probes;
      if (m >= 0) ++hits;
    }
  }
  return probes == 0 ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(probes);
}

}  // namespace pexeso
