#include "datagen/vector_lake.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/rng.h"

namespace pexeso {

namespace {

void ClusterCenters(const VectorLakeOptions& options,
                    std::vector<float>* centers) {
  Rng rng(options.seed);
  centers->assign(static_cast<size_t>(options.num_clusters) * options.dim,
                  0.0f);
  for (uint32_t c = 0; c < options.num_clusters; ++c) {
    float* ctr = centers->data() + static_cast<size_t>(c) * options.dim;
    for (uint32_t j = 0; j < options.dim; ++j) {
      ctr[j] = static_cast<float>(rng.Normal());
    }
    VectorStore::NormalizeInPlace(ctr, options.dim);
  }
}

void DrawAround(Rng* rng, const float* center, uint32_t dim, double sigma,
                float* out) {
  // Per-point lognormal radius around `sigma`, spread across dimensions so
  // the expected distance to the center is ~sigma regardless of dim.
  const double scale =
      sigma * std::exp(0.8 * rng->Normal()) / std::sqrt(static_cast<double>(dim));
  for (uint32_t j = 0; j < dim; ++j) {
    out[j] = center[j] + static_cast<float>(rng->Normal() * scale);
  }
  VectorStore::NormalizeInPlace(out, dim);
}

}  // namespace

ColumnCatalog GenerateVectorLake(const VectorLakeOptions& options) {
  std::vector<float> centers;
  ClusterCenters(options, &centers);
  Rng rng(options.seed ^ 0xDA7AULL);
  ColumnCatalog catalog(options.dim);
  std::vector<float> packed;
  std::vector<float> v(options.dim);
  for (uint32_t col = 0; col < options.num_columns; ++col) {
    // Lognormal-ish column size around the average.
    const double ln = std::exp(rng.Normal() * options.col_size_spread);
    const size_t rows = std::max<size_t>(
        3, static_cast<size_t>(options.avg_col_size * ln + 0.5));
    // Columns are topically coherent: most records come from one or two
    // clusters (as real key columns do).
    const uint32_t main_cluster =
        static_cast<uint32_t>(rng.Uniform(options.num_clusters));
    const uint32_t alt_cluster =
        static_cast<uint32_t>(rng.Uniform(options.num_clusters));
    packed.clear();
    packed.reserve(rows * options.dim);
    for (size_t r = 0; r < rows; ++r) {
      const uint32_t cluster = rng.Bernoulli(0.8) ? main_cluster : alt_cluster;
      DrawAround(&rng,
                 centers.data() + static_cast<size_t>(cluster) * options.dim,
                 options.dim, options.cluster_sigma, v.data());
      packed.insert(packed.end(), v.begin(), v.end());
    }
    ColumnMeta meta;
    meta.table_id = col;
    meta.source_id = col;
    meta.table_name = "table_" + std::to_string(col);
    meta.column_name = "key";
    catalog.AddColumn(meta, packed.data(), rows);
  }
  return catalog;
}

VectorStore GenerateVectorQuery(const VectorLakeOptions& options, size_t size,
                                uint64_t query_seed) {
  std::vector<float> centers;
  ClusterCenters(options, &centers);
  Rng rng(query_seed);
  VectorStore store(options.dim);
  store.Reserve(size);
  std::vector<float> v(options.dim);
  // Queries are also topically coherent.
  const uint32_t main_cluster =
      static_cast<uint32_t>(rng.Uniform(options.num_clusters));
  for (size_t r = 0; r < size; ++r) {
    const uint32_t cluster =
        rng.Bernoulli(0.7)
            ? main_cluster
            : static_cast<uint32_t>(rng.Uniform(options.num_clusters));
    DrawAround(&rng, centers.data() + static_cast<size_t>(cluster) * options.dim,
               options.dim, options.cluster_sigma, v.data());
    store.Add(v);
  }
  return store;
}

VectorLakeOptions BenchProfiles::OpenLike(double scale) {
  VectorLakeOptions o;
  o.dim = 300;
  o.num_columns = std::max(10, static_cast<int>(200 * scale));
  o.avg_col_size = 80.0;  // long columns (paper: 796 vectors/col average)
  o.col_size_spread = 0.8;
  o.num_clusters = 48;
  o.seed = 71;
  return o;
}

VectorLakeOptions BenchProfiles::SwdcLike(double scale) {
  VectorLakeOptions o;
  o.dim = 50;
  o.num_columns = std::max(20, static_cast<int>(4000 * scale));
  o.avg_col_size = 16.7;  // short web-table columns
  o.col_size_spread = 0.5;
  o.num_clusters = 96;
  o.seed = 73;
  return o;
}

VectorLakeOptions BenchProfiles::LwdcLike(double scale) {
  VectorLakeOptions o;
  o.dim = 50;
  o.num_columns = std::max(50, static_cast<int>(12000 * scale));
  o.avg_col_size = 12.3;
  o.col_size_spread = 0.5;
  o.num_clusters = 128;
  o.seed = 79;
  return o;
}

double BenchProfiles::EnvScale(double def) {
  const char* env = std::getenv("PEXESO_BENCH_SCALE");
  if (env == nullptr) return def;
  const double v = std::atof(env);
  if (v <= 0.0) return def;
  return std::min(100.0, std::max(0.01, v));
}

}  // namespace pexeso
