#include "datagen/entity_pool.h"

#include <algorithm>

#include "common/check.h"
#include "common/str_util.h"

namespace pexeso {

namespace {

/// Pronounceable random word from syllables, 2-4 syllables.
std::string RandomWord(Rng* rng) {
  static const char* kConsonants = "bcdfghjklmnprstvwz";
  static const char* kVowels = "aeiou";
  const int syllables = 2 + static_cast<int>(rng->Uniform(3));
  std::string w;
  for (int s = 0; s < syllables; ++s) {
    w.push_back(kConsonants[rng->Uniform(18)]);
    w.push_back(kVowels[rng->Uniform(5)]);
    if (rng->Bernoulli(0.25)) w.push_back(kConsonants[rng->Uniform(18)]);
  }
  return w;
}

/// One random character-level edit (substitute / delete / insert / swap).
std::string Misspell(Rng* rng, const std::string& s) {
  if (s.size() < 2) return s + "x";
  std::string out = s;
  const size_t pos = rng->Uniform(out.size());
  switch (rng->Uniform(4)) {
    case 0:  // substitute
      out[pos] = static_cast<char>('a' + rng->Uniform(26));
      break;
    case 1:  // delete
      out.erase(pos, 1);
      break;
    case 2:  // insert
      out.insert(pos, 1, static_cast<char>('a' + rng->Uniform(26)));
      break;
    default:  // transpose
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      else std::swap(out[pos - 1], out[pos]);
  }
  return out;
}

}  // namespace

std::vector<std::string> Entity::AllForms() const {
  std::vector<std::string> out{canonical};
  for (const auto& [v, kind] : variants) out.push_back(v);
  return out;
}

EntityPool EntityPool::Generate(const Options& options) {
  EntityPool pool;
  Rng rng(options.seed);
  pool.entities_.reserve(options.num_entities);
  for (size_t e = 0; e < options.num_entities; ++e) {
    Entity ent;
    ent.canonical =
        RandomPhrase(&rng, options.words_min, options.words_max);
    // Misspellings: edit a random word of the phrase.
    for (uint32_t k = 0; k < options.misspellings_per_entity; ++k) {
      auto words = SplitWhitespace(ent.canonical);
      const size_t w = rng.Uniform(words.size());
      words[w] = Misspell(&rng, words[w]);
      ent.variants.emplace_back(Join(words, " "), VariantKind::kMisspelling);
    }
    // Format variants: reverse word order with a comma (multi-word), or
    // first-letter initialism of the leading word.
    for (uint32_t k = 0; k < options.formats_per_entity; ++k) {
      auto words = SplitWhitespace(ent.canonical);
      if (words.size() >= 2) {
        std::reverse(words.begin(), words.end());
        ent.variants.emplace_back(words[0] + ", " +
                                      Join({words.begin() + 1, words.end()},
                                           " "),
                                  VariantKind::kFormat);
      } else {
        ent.variants.emplace_back(
            std::string(1, ent.canonical[0]) + ". " + ent.canonical,
            VariantKind::kFormat);
      }
    }
    // Synonyms: entirely different phrases registered in the dictionary.
    for (uint32_t k = 0; k < options.synonyms_per_entity; ++k) {
      std::string syn =
          RandomPhrase(&rng, options.words_min, options.words_max);
      pool.dict_.Add(ent.canonical, syn);
      ent.variants.emplace_back(std::move(syn), VariantKind::kSynonym);
    }
    pool.entities_.push_back(std::move(ent));
  }
  return pool;
}

const std::string& EntityPool::Surface(size_t i, double variant_prob,
                                       Rng* rng) const {
  PEXESO_DCHECK(i < entities_.size());
  const Entity& e = entities_[i];
  if (e.variants.empty() || !rng->Bernoulli(variant_prob)) {
    return e.canonical;
  }
  return e.variants[rng->Uniform(e.variants.size())].first;
}

std::string EntityPool::RandomPhrase(Rng* rng, uint32_t words_min,
                                     uint32_t words_max) {
  const uint32_t n =
      words_min + static_cast<uint32_t>(rng->Uniform(words_max - words_min + 1));
  std::vector<std::string> words;
  for (uint32_t w = 0; w < n; ++w) words.push_back(RandomWord(rng));
  return Join(words, " ");
}

}  // namespace pexeso
