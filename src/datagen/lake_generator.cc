#include "datagen/lake_generator.h"

#include <unordered_set>

#include "common/check.h"

namespace pexeso {

double GeneratedLake::TrueJoinability(
    const std::vector<int64_t>& query_entities, size_t table) const {
  PEXESO_CHECK(table < key_entities.size());
  std::unordered_set<int64_t> present;
  for (int64_t e : key_entities[table]) {
    if (e >= 0) present.insert(e);
  }
  if (query_entities.empty()) return 0.0;
  size_t hits = 0;
  for (int64_t e : query_entities) {
    if (e >= 0 && present.count(e)) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(query_entities.size());
}

GeneratedLake LakeGenerator::Generate(const Options& options) {
  GeneratedLake lake;
  lake.pool = EntityPool::Generate(options.pool);
  Rng rng(options.seed);

  const uint32_t total = options.num_related_tables + options.num_noise_tables;
  lake.tables.reserve(total);
  lake.key_entities.reserve(total);

  auto add_numeric_cols = [&](RawTable* t, size_t rows) {
    for (uint32_t c = 0; c < options.numeric_cols; ++c) {
      RawColumn col;
      col.name = "metric_" + std::to_string(c);
      for (size_t r = 0; r < rows; ++r) {
        col.values.push_back(std::to_string(rng.UniformInt(0, 1000000)));
      }
      t->columns.push_back(std::move(col));
    }
  };

  for (uint32_t t = 0; t < total; ++t) {
    const bool related = t < options.num_related_tables;
    const size_t rows =
        options.rows_min + rng.Uniform(options.rows_max - options.rows_min + 1);
    RawTable table;
    table.name = (related ? "related_" : "noise_") + std::to_string(t);
    RawColumn key;
    key.name = "name";
    std::vector<int64_t> entities;
    const double overlap =
        related ? rng.UniformDouble(options.overlap_min, options.overlap_max)
                : 0.0;
    for (size_t r = 0; r < rows; ++r) {
      if (related && rng.Bernoulli(overlap)) {
        const size_t e = rng.Uniform(lake.pool.size());
        key.values.push_back(
            lake.pool.Surface(e, options.variant_prob, &rng));
        entities.push_back(static_cast<int64_t>(e));
      } else {
        key.values.push_back(EntityPool::RandomPhrase(
            &rng, options.pool.words_min, options.pool.words_max));
        entities.push_back(-1);
      }
    }
    table.columns.push_back(std::move(key));
    add_numeric_cols(&table, rows);
    lake.tables.push_back(std::move(table));
    lake.key_entities.push_back(std::move(entities));
  }
  return lake;
}

GeneratedQuery LakeGenerator::MakeQuery(const GeneratedLake& lake, size_t size,
                                        double variant_prob, uint64_t seed) {
  Rng rng(seed);
  GeneratedQuery q;
  size = std::min(size, lake.pool.size());
  auto picks = rng.SampleIndices(lake.pool.size(), size);
  for (size_t e : picks) {
    q.records.push_back(lake.pool.Surface(e, variant_prob, &rng));
    q.entities.push_back(static_cast<int64_t>(e));
  }
  return q;
}

}  // namespace pexeso
