#ifndef PEXESO_DATAGEN_ML_TASK_H_
#define PEXESO_DATAGEN_ML_TASK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/entity_pool.h"
#include "ml/dataset.h"

namespace pexeso {

/// \brief Synthetic stand-in for the Section VI-C prediction tasks
/// (company-category classification, toy-category classification, video-game
/// sales regression).
///
/// Mechanism (matching the paper's): every entity has a latent factor
/// vector; the label depends on the latents; the query table only carries a
/// weak noisy view of them, while the lake's feature tables carry strong
/// attribute views — but keyed by *variant* entity names. A join method that
/// finds more correct matches imports more informative features; false
/// matches import another entity's attributes (noise).
struct MlTask {
  bool regression = false;
  uint32_t num_classes = 2;

  /// Query table: key strings (mostly canonical), base features, targets.
  std::vector<std::string> query_keys;
  std::vector<int64_t> query_entities;
  Dataset base;  ///< base features only, y filled with the targets

  /// Feature tables in the lake. Keys appear under variant surface forms.
  struct FeatureTable {
    std::string name;
    std::vector<std::string> keys;
    std::vector<int64_t> entities;           ///< per row
    std::vector<std::string> attr_names;     ///< shared name pool
    std::vector<std::vector<float>> attrs;   ///< [attr][row]
  };
  std::vector<FeatureTable> tables;

  EntityPool pool;  ///< owns the synonym dictionary
};

class MlTaskGenerator {
 public:
  struct Options {
    bool regression = false;
    uint32_t num_classes = 8;
    size_t num_entities = 400;
    size_t query_rows = 300;
    uint32_t latent_dim = 6;
    uint32_t base_features = 3;
    double base_noise = 2.0;       ///< weak view: high noise
    uint32_t num_tables = 12;
    uint32_t attrs_per_table = 2;
    double attr_noise = 0.3;       ///< strong view: low noise
    double coverage = 0.8;         ///< fraction of entities present per table
    double variant_prob = 0.75;    ///< lake keys appear as variants
    uint64_t seed = 83;
  };

  static MlTask Generate(const Options& options);
};

/// Per (query row, feature table) match: row index in the table, -1 = none.
using JoinMap = std::vector<std::vector<int32_t>>;  // [table][query_row]

/// \brief Assembles the enriched dataset from a join map: one feature per
/// shared attribute name, values summed over the tables that matched (the
/// paper's conflict resolution), NaN when nothing matched, then imputed.
Dataset AssembleEnriched(const MlTask& task, const JoinMap& join_map);

/// Fraction of (query row, table) probes that found a match ("# Match").
double JoinMatchRatio(const JoinMap& join_map);

}  // namespace pexeso

#endif  // PEXESO_DATAGEN_ML_TASK_H_
