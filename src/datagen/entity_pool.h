#ifndef PEXESO_DATAGEN_ENTITY_POOL_H_
#define PEXESO_DATAGEN_ENTITY_POOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "embed/synonym_model.h"

namespace pexeso {

/// \brief Kinds of surface forms an entity can appear under in the lake —
/// the heterogeneity the paper motivates PEXESO with (Table I).
enum class VariantKind : uint8_t {
  kCanonical = 0,
  kMisspelling = 1,  ///< 1-2 character edits: caught by char-level embedding
  kFormat = 2,       ///< word reorder / initialisms: partially char-level
  kSynonym = 3,      ///< different words, same meaning: needs semantics
};

/// \brief One synthetic entity with its canonical name and variant forms.
struct Entity {
  std::string canonical;
  std::vector<std::pair<std::string, VariantKind>> variants;

  /// All surface forms including the canonical one.
  std::vector<std::string> AllForms() const;
};

/// \brief Pool of synthetic entities playing the role of a real-world
/// domain (company names, product names, ...). Synonym variants are
/// registered in the pool's SynonymDictionary so a SynonymModel embeds them
/// near their canonical form — the stand-in for pre-trained semantics.
class EntityPool {
 public:
  struct Options {
    size_t num_entities = 300;
    uint32_t words_min = 1;
    uint32_t words_max = 3;
    uint32_t misspellings_per_entity = 2;
    uint32_t formats_per_entity = 1;
    uint32_t synonyms_per_entity = 1;
    uint64_t seed = 59;
  };

  static EntityPool Generate(const Options& options);

  size_t size() const { return entities_.size(); }
  const Entity& entity(size_t i) const { return entities_[i]; }
  const SynonymDictionary& dict() const { return dict_; }

  /// A surface form of entity i: with probability `variant_prob` a random
  /// variant, otherwise the canonical form.
  const std::string& Surface(size_t i, double variant_prob, Rng* rng) const;

  /// Random word-like string from the same alphabet (for noise records).
  static std::string RandomPhrase(Rng* rng, uint32_t words_min,
                                  uint32_t words_max);

 private:
  std::vector<Entity> entities_;
  SynonymDictionary dict_;
};

}  // namespace pexeso

#endif  // PEXESO_DATAGEN_ENTITY_POOL_H_
