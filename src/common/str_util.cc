#include "common/str_util.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace pexeso {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool LooksNumeric(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return false;
  size_t i = 0;
  if (s[i] == '+' || s[i] == '-') ++i;
  bool digit = false;
  bool dot = false;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c == '.' && !dot) {
      dot = true;
    } else if (c == ',') {
      // Thousands separators appear in lake data ("234,370,202").
      continue;
    } else {
      return false;
    }
  }
  return digit;
}

std::vector<std::string> WordTokens(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && !std::isalnum(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && std::isalnum(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) {
      out.push_back(ToLower(s.substr(start, i - start)));
    }
  }
  return out;
}

int EditDistance(std::string_view a, std::string_view b, int bound) {
  if (a.size() > b.size()) std::swap(a, b);
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (bound >= 0 && m - n > bound) return bound + 1;
  std::vector<int> prev(n + 1), cur(n + 1);
  for (int i = 0; i <= n; ++i) prev[i] = i;
  for (int j = 1; j <= m; ++j) {
    cur[0] = j;
    int row_min = cur[0];
    for (int i = 1; i <= n; ++i) {
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, prev[i - 1] + cost});
      row_min = std::min(row_min, cur[i]);
    }
    if (bound >= 0 && row_min > bound) return bound + 1;
    std::swap(prev, cur);
  }
  int d = prev[n];
  if (bound >= 0 && d > bound) return bound + 1;
  return d;
}

}  // namespace pexeso
