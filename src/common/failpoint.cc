#include "common/failpoint.h"

#ifndef PEXESO_NO_FAILPOINTS

#include <chrono>
#include <cstdlib>
#include <thread>

namespace pexeso {

namespace failpoint_internal {
std::atomic<uint32_t> g_armed{0};
}  // namespace failpoint_internal

namespace {

bool ParseAction(const std::string& token, FailAction* action) {
  if (token == "ioerror") {
    *action = FailAction::kIoError;
  } else if (token == "corrupt") {
    *action = FailAction::kCorruption;
  } else if (token == "delay") {
    *action = FailAction::kDelay;
  } else if (token == "crash") {
    *action = FailAction::kCrash;
  } else {
    return false;
  }
  return true;
}

}  // namespace

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

namespace {
// Force registry construction at load time. The armed-check fast path
// deliberately never touches Instance() (it is one relaxed load of
// g_armed), so without this the PEXESO_FAILPOINTS environment variable
// would only be parsed after something else armed a failpoint — i.e.
// never, in the operator use case.
const FailpointRegistry& g_bootstrap = FailpointRegistry::Instance();
}  // namespace

FailpointRegistry::FailpointRegistry() {
  const char* env = std::getenv("PEXESO_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    // Env arming is operator input; a malformed spec must not take down the
    // process that was asked to inject faults. It is simply ignored.
    (void)ArmFromString(env);
  }
}

void FailpointRegistry::Arm(const std::string& site, FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = map_.insert_or_assign(site, Armed{spec, 0, 0});
  (void)it;
  if (inserted) {
    failpoint_internal::g_armed.fetch_add(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.erase(site) > 0) {
    failpoint_internal::g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  failpoint_internal::g_armed.fetch_sub(
      static_cast<uint32_t>(map_.size()), std::memory_order_relaxed);
  map_.clear();
}

Status FailpointRegistry::ArmFromString(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find_first_of(";,", pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint spec needs site=action: " +
                                     entry);
    }
    const std::string site = entry.substr(0, eq);
    std::string rest = entry.substr(eq + 1);
    // action[:skip[:limit[:delay_ms]]]
    FailpointSpec fp;
    int* fields[] = {&fp.skip, &fp.limit, &fp.delay_ms};
    size_t field = 0;
    size_t colon = rest.find(':');
    const std::string action_token = rest.substr(0, colon);
    if (!ParseAction(action_token, &fp.action)) {
      return Status::InvalidArgument("unknown failpoint action: " +
                                     action_token);
    }
    while (colon != std::string::npos && field < 3) {
      const size_t next = rest.find(':', colon + 1);
      const std::string num = rest.substr(
          colon + 1,
          next == std::string::npos ? std::string::npos : next - colon - 1);
      char* parse_end = nullptr;
      const long v = std::strtol(num.c_str(), &parse_end, 10);
      if (num.empty() || parse_end == nullptr || *parse_end != '\0') {
        return Status::InvalidArgument("bad failpoint parameter: " + num);
      }
      *fields[field++] = static_cast<int>(v);
      colon = next;
    }
    Arm(site, fp);
  }
  return Status::OK();
}

bool FailpointRegistry::Fire(const char* site, FailAction* action,
                             int* delay_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(site);
  if (it == map_.end()) return false;
  Armed& armed = it->second;
  if (armed.hits++ < armed.spec.skip) return false;
  if (armed.spec.limit >= 0 && armed.fired >= armed.spec.limit) return false;
  ++armed.fired;
  *action = armed.spec.action;
  *delay_ms = armed.spec.delay_ms;
  return true;
}

Status FailpointRegistry::Hit(const char* site) {
  FailAction action;
  int delay_ms = 0;
  if (!Fire(site, &action, &delay_ms)) return Status::OK();
  switch (action) {
    case FailAction::kIoError:
      return Status::IoError(std::string("failpoint ") + site);
    case FailAction::kCorruption:
      return Status::Corruption(std::string("failpoint ") + site);
    case FailAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return Status::OK();
    case FailAction::kCrash:
      // No flush, no destructors: buffered-but-unwritten data dies with the
      // process, exactly like a power cut. What fsync made durable stays.
      std::_Exit(kFailpointCrashExitCode);
  }
  return Status::OK();
}

bool FailpointRegistry::CorruptFires(const char* site) {
  FailAction action;
  int delay_ms = 0;
  if (!Fire(site, &action, &delay_ms)) return false;
  if (action == FailAction::kCrash) std::_Exit(kFailpointCrashExitCode);
  return action == FailAction::kCorruption;
}

uint64_t FailpointRegistry::fire_count(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(site);
  return it == map_.end() ? 0 : static_cast<uint64_t>(it->second.fired);
}

}  // namespace pexeso

#endif  // PEXESO_NO_FAILPOINTS
