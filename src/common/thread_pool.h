#ifndef PEXESO_COMMON_THREAD_POOL_H_
#define PEXESO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pexeso {

/// \brief Minimal fixed-size thread pool used by index construction and the
/// benchmark harnesses for embarrassingly-parallel loops.
class ThreadPool {
 public:
  /// Starts `threads` workers (>= 1).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks may not themselves block on the pool.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace pexeso

#endif  // PEXESO_COMMON_THREAD_POOL_H_
