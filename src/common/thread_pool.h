#ifndef PEXESO_COMMON_THREAD_POOL_H_
#define PEXESO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pexeso {

/// \brief Minimal fixed-size thread pool used by index construction, the
/// batch query runner and the benchmark harnesses for embarrassingly-
/// parallel loops.
///
/// Exception contract: a task that throws does not wedge the pool — the
/// in-flight accounting is decremented regardless (RAII), the first thrown
/// exception is captured, and the next Wait() (or ParallelFor, which waits)
/// rethrows it on the caller's thread. Later exceptions of the same batch
/// are dropped.
class ThreadPool {
 public:
  /// Starts `threads` workers (>= 1).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks may not themselves block on the pool.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Rethrows the first
  /// exception any task of the batch threw, if one did.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Must not be called from one of this pool's own workers: the nested
  /// Wait() would consume a worker that the inner tasks need, deadlocking
  /// the pool (PEXESO_CHECK-enforced).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  friend class TaskGroup;  // shares the OnWorkerThread deadlock guard

  void WorkerLoop();

  /// True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;  ///< guarded by mu_
};

/// \brief Completion tracker for a subset of a pool's tasks, so several
/// clients (e.g. ServeSessions) can share one ThreadPool and each wait for
/// just their own work instead of the pool-wide Wait().
///
/// Tasks submitted through a group run on the underlying pool; Wait()
/// blocks until this group's tasks — and only this group's — are done.
/// A task that throws still counts as completed here (the group must not
/// wedge), and its exception flows into the pool's first-error slot exactly
/// as with a direct ThreadPool::Submit.
class TaskGroup {
 public:
  /// `pool` is borrowed and must outlive the group.
  explicit TaskGroup(ThreadPool* pool);

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Waits for any still-running tasks of the group.
  ~TaskGroup();

  /// Enqueues a task on the pool, counted toward this group.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted through this group has finished.
  /// Must not be called from one of the pool's own workers: the group's
  /// tasks may need the waiting worker, deadlocking the pool
  /// (PEXESO_CHECK-enforced, like ThreadPool::ParallelFor).
  void Wait();

  ThreadPool* pool() const { return pool_; }

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_done_;
  size_t in_flight_ = 0;  ///< guarded by mu_
};

}  // namespace pexeso

#endif  // PEXESO_COMMON_THREAD_POOL_H_
