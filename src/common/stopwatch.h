#ifndef PEXESO_COMMON_STOPWATCH_H_
#define PEXESO_COMMON_STOPWATCH_H_

#include <chrono>

namespace pexeso {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pexeso

#endif  // PEXESO_COMMON_STOPWATCH_H_
