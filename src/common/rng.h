#ifndef PEXESO_COMMON_RNG_H_
#define PEXESO_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pexeso {

/// \brief Deterministic, seedable pseudo-random generator (splitmix64 +
/// xoshiro256**). All randomness in the library flows through explicit Rng
/// instances so that tests and benchmarks are reproducible across platforms
/// (std::mt19937 distributions are not portable across standard libraries).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically.
  void Seed(uint64_t seed) {
    // splitmix64 to spread the seed over the state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform float in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double Normal() {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586 * u2);
  }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

/// \brief 64-bit FNV-1a hash of a byte string; used for feature hashing in
/// the embedding models so embeddings are deterministic across runs.
inline uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed = 0) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace pexeso

#endif  // PEXESO_COMMON_RNG_H_
