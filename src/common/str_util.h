#ifndef PEXESO_COMMON_STR_UTIL_H_
#define PEXESO_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace pexeso {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on any whitespace run; drops empty tokens.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (locale-independent).
std::string ToLower(std::string_view s);

/// Joins parts with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if the string parses fully as a (possibly signed/decimal) number.
bool LooksNumeric(std::string_view s);

/// Tokenizes a record value into lower-cased word tokens (alnum runs).
std::vector<std::string> WordTokens(std::string_view s);

/// Levenshtein edit distance with an optional early-exit bound. Returns
/// bound+1 if the true distance exceeds `bound` (bound < 0 disables).
int EditDistance(std::string_view a, std::string_view b, int bound = -1);

}  // namespace pexeso

#endif  // PEXESO_COMMON_STR_UTIL_H_
