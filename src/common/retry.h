#ifndef PEXESO_COMMON_RETRY_H_
#define PEXESO_COMMON_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/status.h"

namespace pexeso {

/// Bounded exponential backoff for TRANSIENT environment faults. Only
/// IoError retries: Corruption is a property of the bytes (retrying rereads
/// the same bad bytes), NotFound/NotSupported are facts about the world,
/// and Cancelled/DeadlineExceeded are the caller's own controls.
struct RetryPolicy {
  uint32_t max_attempts = 3;       ///< total attempts, including the first
  double initial_backoff_ms = 1.0; ///< sleep before attempt 2
  double max_backoff_ms = 100.0;   ///< backoff growth cap (doubles per try)
};

inline bool IsTransientStatus(const Status& s) {
  return s.code() == Status::Code::kIoError;
}

namespace retry_internal {
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
inline const Status& StatusOf(const Result<T>& r) {
  return r.status();
}
}  // namespace retry_internal

/// Runs `op` (returning Status or Result<T>) up to `policy.max_attempts`
/// times, sleeping with doubling backoff between attempts, as long as the
/// failure is transient. `retries` (optional) is incremented once per
/// retry actually taken — it feeds SearchStats::io_retries.
template <typename Op>
auto RetryTransient(const RetryPolicy& policy, uint64_t* retries, Op&& op)
    -> decltype(op()) {
  auto result = op();
  double backoff_ms = policy.initial_backoff_ms;
  for (uint32_t attempt = 1; attempt < policy.max_attempts; ++attempt) {
    if (result.ok() || !IsTransientStatus(retry_internal::StatusOf(result))) {
      break;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2.0, policy.max_backoff_ms);
    if (retries != nullptr) ++*retries;
    result = op();
  }
  return result;
}

}  // namespace pexeso

#endif  // PEXESO_COMMON_RETRY_H_
