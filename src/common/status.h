#ifndef PEXESO_COMMON_STATUS_H_
#define PEXESO_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace pexeso {

/// \brief RocksDB-style status object used for fallible operations.
///
/// The public API of this library does not throw exceptions; operations that
/// can fail (I/O, parsing, malformed input) return a Status or a Result<T>.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIoError,
    kCorruption,
    kNotSupported,
    kOutOfRange,
    kInternal,
    kCancelled,
    kDeadlineExceeded,
    /// A budget, not a fault: the callee is over its admission/queue limits
    /// right now and rejected the work without starting it. The canonical
    /// client reaction is back off and retry, not bug-report.
    kResourceExhausted,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  /// True for the cooperative-interruption codes (cancellation / deadline):
  /// the operation stopped early by request, and any results delivered
  /// before the stop are valid partial results — unlike a real failure.
  bool interrupted() const {
    return code_ == Code::kCancelled || code_ == Code::kDeadlineExceeded;
  }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "IoError: no such file".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// \brief Value-or-Status result for fallible functions that produce a value.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accesses the value; undefined if !ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Moves the value out; undefined if !ok().
  T ValueOrDie() && { return std::move(*value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status from the current function.
#define PEXESO_RETURN_NOT_OK(expr)        \
  do {                                    \
    ::pexeso::Status _st = (expr);        \
    if (!_st.ok()) return _st;            \
  } while (0)

}  // namespace pexeso

#endif  // PEXESO_COMMON_STATUS_H_
