#ifndef PEXESO_COMMON_CHECK_H_
#define PEXESO_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \brief Internal invariant checks. These abort on violation: they guard
/// programmer errors, not user input (user input goes through Status).
#define PEXESO_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "PEXESO_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define PEXESO_CHECK_MSG(cond, msg)                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "PEXESO_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifndef NDEBUG
#define PEXESO_DCHECK(cond) PEXESO_CHECK(cond)
#else
#define PEXESO_DCHECK(cond) \
  do {                      \
  } while (0)
#endif

#endif  // PEXESO_COMMON_CHECK_H_
