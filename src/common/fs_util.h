#ifndef PEXESO_COMMON_FS_UTIL_H_
#define PEXESO_COMMON_FS_UTIL_H_

#include <string>

#include "common/status.h"

namespace pexeso {

/// Durability primitives for the crash-safe publication protocol
/// (write tmp -> fsync tmp -> rename -> fsync parent dir). fsync of the
/// file makes its BYTES durable; fsync of the directory makes the rename
/// (the file's NAME) durable — both are needed before a publication may be
/// considered committed.

/// fsyncs the file at `path`.
Status SyncFile(const std::string& path);

/// fsyncs the directory `dir` (persists entry create/rename/unlink).
Status SyncDir(const std::string& dir);

/// Durable atomic publication: fsync(`tmp`), rename `tmp` -> `final_path`
/// (atomic within a filesystem), fsync the parent directory. After OK the
/// file survives a crash under its final name; before the rename a crash
/// leaves only the `tmp` orphan, which recovery discards.
Status PublishFileDurable(const std::string& tmp,
                          const std::string& final_path);

}  // namespace pexeso

#endif  // PEXESO_COMMON_FS_UTIL_H_
