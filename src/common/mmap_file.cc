#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace pexeso {

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  PEXESO_RETURN_NOT_OK(FailpointHit("serde:reader:open"));
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open for mmap: " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("cannot stat for mmap: " + path + ": " +
                           std::strerror(err));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* addr = nullptr;
  if (size > 0) {
    addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IoError("mmap failed: " + path + ": " +
                             std::strerror(err));
    }
  }
  // The mapping keeps its own reference to the file; the descriptor is no
  // longer needed.
  ::close(fd);
  return std::shared_ptr<MappedFile>(new MappedFile(addr, size, path));
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr && size_ > 0) {
    ::munmap(addr_, size_);
  }
}

}  // namespace pexeso
