#include "common/fs_util.h"

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/failpoint.h"

#if defined(_WIN32)
// The lake targets POSIX hosts; on other platforms the sync calls degrade
// to no-ops (publication is still atomic via rename, just not power-safe).
namespace pexeso {
Status SyncFile(const std::string&) { return Status::OK(); }
Status SyncDir(const std::string&) { return Status::OK(); }
}  // namespace pexeso
#else

#include <fcntl.h>
#include <unistd.h>

namespace pexeso {

namespace {

Status SyncFd(const std::string& path, int flags) {
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    return Status::IoError("open for fsync failed: " + path + ": " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync failed: " + path + ": " +
                           std::strerror(saved_errno));
  }
  return Status::OK();
}

}  // namespace

Status SyncFile(const std::string& path) {
  PEXESO_RETURN_NOT_OK(FailpointHit("fs:sync-file"));
  return SyncFd(path, O_RDONLY);
}

Status SyncDir(const std::string& dir) {
  PEXESO_RETURN_NOT_OK(FailpointHit("fs:sync-dir"));
#if defined(O_DIRECTORY)
  return SyncFd(dir, O_RDONLY | O_DIRECTORY);
#else
  return SyncFd(dir, O_RDONLY);
#endif
}

}  // namespace pexeso

#endif  // _WIN32

namespace pexeso {

Status PublishFileDurable(const std::string& tmp,
                          const std::string& final_path) {
  PEXESO_RETURN_NOT_OK(SyncFile(tmp));
  std::error_code ec;
  std::filesystem::rename(tmp, final_path, ec);
  if (ec) {
    return Status::IoError("cannot publish " + final_path + ": " +
                           ec.message());
  }
  const std::string parent =
      std::filesystem::path(final_path).parent_path().string();
  return SyncDir(parent.empty() ? "." : parent);
}

}  // namespace pexeso
