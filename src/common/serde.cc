#include "common/serde.h"

#include <algorithm>
#include <array>

namespace pexeso {

namespace {

std::array<uint32_t, 256> BuildCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t n) {
  static const std::array<uint32_t, 256> table = BuildCrc32Table();
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

Result<BinaryWriter> BinaryWriter::Open(const std::string& path) {
  PEXESO_RETURN_NOT_OK(FailpointHit("serde:writer:open"));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  return BinaryWriter(std::move(out));
}

Status BinaryWriter::Close() {
  PEXESO_RETURN_NOT_OK(FailpointHit("serde:writer:close"));
  out_.flush();
  if (!out_) return Status::IoError("flush failed");
  out_.close();
  return Status::OK();
}

Result<BinaryReader> BinaryReader::Open(const std::string& path) {
  PEXESO_RETURN_NOT_OK(FailpointHit("serde:reader:open"));
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  if (size < 0 || !in) {
    // Non-seekable source (a FIFO in tests, a pipe in a shell one-liner):
    // no size to bound length prefixes against, so fall back to a
    // plausibility cap — a mangled prefix still fails its read instead of
    // driving a huge allocation first.
    in.clear();
    in.seekg(0, std::ios::beg);
    in.clear();
    return BinaryReader(std::move(in), uint64_t{1} << 40);
  }
  return BinaryReader(std::move(in), static_cast<uint64_t>(size));
}

Status BinaryReader::VerifyChecksum(bool require_footer) {
  const uint32_t computed = crc_;
  uint32_t magic = 0;
  in_.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (in_.gcount() == 0) {
    if (require_footer) {
      return Status::Corruption("snapshot checksum footer missing");
    }
    return Status::OK();  // legacy pre-checksum file
  }
  if (in_.gcount() < static_cast<std::streamsize>(sizeof(magic)) ||
      magic != kChecksumFooterMagic) {
    return Status::Corruption("snapshot checksum footer malformed");
  }
  uint32_t stored = 0;
  in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (in_.gcount() < static_cast<std::streamsize>(sizeof(stored))) {
    return Status::Corruption("snapshot checksum footer truncated");
  }
  if (stored != computed) {
    return Status::Corruption("snapshot checksum mismatch (corrupt file)");
  }
  // The footer is the end of the file; anything after it is not ours.
  in_.peek();
  if (!in_.eof()) {
    return Status::Corruption("trailing bytes after checksum footer");
  }
  return Status::OK();
}

Status VerifyFileChecksum(const std::string& path, bool require_footer) {
  PEXESO_RETURN_NOT_OK(FailpointHit("serde:reader:open"));
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  if (size < 0 || !in) return Status::IoError("cannot size: " + path);

  constexpr std::streamoff kFooterBytes = 2 * sizeof(uint32_t);
  if (size < kFooterBytes) {
    // Too short to hold a footer at all; only a legacy (pre-footer) file
    // may be that small, and then there is nothing to verify against.
    if (require_footer) {
      return Status::Corruption("snapshot checksum footer missing: " + path);
    }
    return Status::OK();
  }

  const uint64_t payload = static_cast<uint64_t>(size - kFooterBytes);
  uint32_t crc = 0;
  std::vector<char> buf(1u << 16);
  uint64_t left = payload;
  while (left > 0) {
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(left, buf.size()));
    in.read(buf.data(), static_cast<std::streamsize>(chunk));
    if (in.gcount() != static_cast<std::streamsize>(chunk)) {
      return Status::IoError("short read verifying: " + path);
    }
    crc = Crc32Update(crc, buf.data(), chunk);
    left -= chunk;
  }
  uint32_t magic = 0, stored = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in) return Status::IoError("short read verifying: " + path);
  if (magic != kChecksumFooterMagic) {
    // No footer where one should be. Legacy files simply end at the
    // payload, which is indistinguishable from this without the header
    // version — the owner passes require_footer accordingly.
    if (require_footer) {
      return Status::Corruption("snapshot checksum footer malformed: " + path);
    }
    return Status::OK();
  }
  if (stored != crc) {
    return Status::Corruption("snapshot checksum mismatch (corrupt file): " +
                              path);
  }
  return Status::OK();
}

}  // namespace pexeso
