#include "common/serde.h"

#include <array>

namespace pexeso {

namespace {

std::array<uint32_t, 256> BuildCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t n) {
  static const std::array<uint32_t, 256> table = BuildCrc32Table();
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

Result<BinaryWriter> BinaryWriter::Open(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  return BinaryWriter(std::move(out));
}

Status BinaryWriter::Close() {
  out_.flush();
  if (!out_) return Status::IoError("flush failed");
  out_.close();
  return Status::OK();
}

Result<BinaryReader> BinaryReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  return BinaryReader(std::move(in));
}

Status BinaryReader::VerifyChecksum(bool require_footer) {
  const uint32_t computed = crc_;
  uint32_t magic = 0;
  in_.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (in_.gcount() == 0) {
    if (require_footer) {
      return Status::Corruption("snapshot checksum footer missing");
    }
    return Status::OK();  // legacy pre-checksum file
  }
  if (in_.gcount() < static_cast<std::streamsize>(sizeof(magic)) ||
      magic != kChecksumFooterMagic) {
    return Status::Corruption("snapshot checksum footer malformed");
  }
  uint32_t stored = 0;
  in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (in_.gcount() < static_cast<std::streamsize>(sizeof(stored))) {
    return Status::Corruption("snapshot checksum footer truncated");
  }
  if (stored != computed) {
    return Status::Corruption("snapshot checksum mismatch (corrupt file)");
  }
  // The footer is the end of the file; anything after it is not ours.
  in_.peek();
  if (!in_.eof()) {
    return Status::Corruption("trailing bytes after checksum footer");
  }
  return Status::OK();
}

}  // namespace pexeso
