#include "common/serde.h"

namespace pexeso {

Result<BinaryWriter> BinaryWriter::Open(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  return BinaryWriter(std::move(out));
}

Status BinaryWriter::Close() {
  out_.flush();
  if (!out_) return Status::IoError("flush failed");
  out_.close();
  return Status::OK();
}

Result<BinaryReader> BinaryReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  return BinaryReader(std::move(in));
}

}  // namespace pexeso
