#include "common/serde.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace pexeso {

namespace {

// Slice-by-8 lookup tables. table[0] is the classic byte-at-a-time table;
// table[k][b] extends it so eight input bytes fold into the running CRC with
// one table lookup each and a single shift, producing bit-identical values
// to the byte-serial loop (the polynomial and reflection are unchanged —
// only the evaluation order differs).
std::array<std::array<uint32_t, 256>, 8> BuildCrc32Tables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t k = 1; k < 8; ++k) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}

#if defined(__x86_64__)
#define PEXESO_PCLMUL __attribute__((target("pclmul,sse4.1")))

/// Carry-less-multiply CRC-32 folding (the Intel CRC whitepaper scheme, as
/// shipped in zlib): four 128-bit lanes fold 64 input bytes per iteration,
/// then fold to one lane, 64 bits, and Barrett-reduce. Bit-identical to the
/// table loop — same polynomial (0xEDB88320, reflected), different
/// evaluation order. `crc` is the raw running remainder (caller handles the
/// ~crc pre/post inversion); `len` must be >= 64 and a multiple of 16.
PEXESO_PCLMUL uint32_t Crc32Clmul(const uint8_t* buf, size_t len,
                                  uint32_t crc) {
  alignas(16) static const uint64_t k1k2[] = {0x0154442bd4, 0x01c6e41596};
  alignas(16) static const uint64_t k3k4[] = {0x01751997d0, 0x00ccaa009e};
  alignas(16) static const uint64_t k5k0[] = {0x0163cd6124, 0x0000000000};
  alignas(16) static const uint64_t poly[] = {0x01db710641, 0x01f7011641};
  __m128i x0, x1, x2, x3, x4, x5, x6, x7, x8, y5, y6, y7, y8;

  x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
  x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
  x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
  x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(k1k2));
  buf += 64;
  len -= 64;

  while (len >= 64) {
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x6 = _mm_clmulepi64_si128(x2, x0, 0x00);
    x7 = _mm_clmulepi64_si128(x3, x0, 0x00);
    x8 = _mm_clmulepi64_si128(x4, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x2 = _mm_clmulepi64_si128(x2, x0, 0x11);
    x3 = _mm_clmulepi64_si128(x3, x0, 0x11);
    x4 = _mm_clmulepi64_si128(x4, x0, 0x11);
    y5 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
    y6 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
    y7 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
    y8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), y5);
    x2 = _mm_xor_si128(_mm_xor_si128(x2, x6), y6);
    x3 = _mm_xor_si128(_mm_xor_si128(x3, x7), y7);
    x4 = _mm_xor_si128(_mm_xor_si128(x4, x8), y8);
    buf += 64;
    len -= 64;
  }

  // Fold the four lanes into one.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(k3k4));
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

  while (len >= 16) {
    x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
    buf += 16;
    len -= 16;
  }

  // 128 -> 64 bits.
  x2 = _mm_clmulepi64_si128(x1, x0, 0x10);
  x3 = _mm_setr_epi32(~0, 0, ~0, 0);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x2);
  x0 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(k5k0));
  x2 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, x3);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  // Barrett reduction to 32 bits.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(poly));
  x2 = _mm_and_si128(x1, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x10);
  x2 = _mm_and_si128(x2, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  return static_cast<uint32_t>(_mm_extract_epi32(x1, 1));
}
#undef PEXESO_PCLMUL

bool Crc32ClmulSupported() {
  static const bool ok = __builtin_cpu_supports("pclmul") &&
                         __builtin_cpu_supports("sse4.1");
  return ok;
}
#endif  // __x86_64__

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t n) {
  static const auto tables = BuildCrc32Tables();
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
#if defined(__x86_64__)
  // Bulk of a large buffer goes through the carry-less-multiply folder
  // (~10x the table loop); the tail (< 64 bytes or the trailing non-16
  // remainder) falls through to the table path below.
  if (n >= 64 && Crc32ClmulSupported()) {
    const size_t chunk = n & ~size_t{15};
    crc = Crc32Clmul(p, chunk, crc);
    p += chunk;
    n -= chunk;
  }
#endif
  // The 8-byte fold assumes little-endian u32 loads; every supported target
  // (x86-64, AArch64 Linux) is LE, and the byte-serial tail below is the
  // full fallback otherwise.
  while (std::endian::native == std::endian::little && n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, sizeof(lo));
    std::memcpy(&hi, p + 4, sizeof(hi));
    lo ^= crc;
    crc = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
          tables[5][(lo >> 16) & 0xFFu] ^ tables[4][(lo >> 24) & 0xFFu] ^
          tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
          tables[1][(hi >> 16) & 0xFFu] ^ tables[0][(hi >> 24) & 0xFFu];
    p += 8;
    n -= 8;
  }
  for (size_t i = 0; i < n; ++i) {
    crc = tables[0][(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

Result<BinaryWriter> BinaryWriter::Open(const std::string& path) {
  PEXESO_RETURN_NOT_OK(FailpointHit("serde:writer:open"));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  return BinaryWriter(std::move(out));
}

Status BinaryWriter::Close() {
  if (buf_ != nullptr) return Status::OK();
  PEXESO_RETURN_NOT_OK(FailpointHit("serde:writer:close"));
  out_.flush();
  if (!out_) return Status::IoError("flush failed");
  out_.close();
  return Status::OK();
}

Result<BinaryReader> BinaryReader::Open(const std::string& path) {
  PEXESO_RETURN_NOT_OK(FailpointHit("serde:reader:open"));
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  if (size < 0 || !in) {
    // Non-seekable source (a FIFO in tests, a pipe in a shell one-liner):
    // no size to bound length prefixes against, so fall back to a
    // plausibility cap — a mangled prefix still fails its read instead of
    // driving a huge allocation first.
    in.clear();
    in.seekg(0, std::ios::beg);
    in.clear();
    return BinaryReader(std::move(in), uint64_t{1} << 40);
  }
  return BinaryReader(std::move(in), static_cast<uint64_t>(size));
}

Status BinaryReader::VerifyChecksum(bool require_footer) {
  const uint32_t computed = crc_;
  if (bufp_ != nullptr) {
    if (remaining_ == 0) {
      if (require_footer) {
        return Status::Corruption("snapshot checksum footer missing");
      }
      return Status::OK();
    }
    uint32_t magic = 0;
    uint32_t stored = 0;
    if (remaining_ != sizeof(magic) + sizeof(stored)) {
      return Status::Corruption("snapshot checksum footer malformed");
    }
    std::memcpy(&magic, bufp_, sizeof(magic));
    std::memcpy(&stored, bufp_ + sizeof(magic), sizeof(stored));
    if (magic != kChecksumFooterMagic) {
      return Status::Corruption("snapshot checksum footer malformed");
    }
    if (stored != computed) {
      return Status::Corruption("snapshot checksum mismatch (corrupt file)");
    }
    return Status::OK();
  }
  uint32_t magic = 0;
  in_.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (in_.gcount() == 0) {
    if (require_footer) {
      return Status::Corruption("snapshot checksum footer missing");
    }
    return Status::OK();  // legacy pre-checksum file
  }
  if (in_.gcount() < static_cast<std::streamsize>(sizeof(magic)) ||
      magic != kChecksumFooterMagic) {
    return Status::Corruption("snapshot checksum footer malformed");
  }
  uint32_t stored = 0;
  in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (in_.gcount() < static_cast<std::streamsize>(sizeof(stored))) {
    return Status::Corruption("snapshot checksum footer truncated");
  }
  if (stored != computed) {
    return Status::Corruption("snapshot checksum mismatch (corrupt file)");
  }
  // The footer is the end of the file; anything after it is not ours.
  in_.peek();
  if (!in_.eof()) {
    return Status::Corruption("trailing bytes after checksum footer");
  }
  return Status::OK();
}

Status VerifyFileChecksum(const std::string& path, bool require_footer) {
  PEXESO_RETURN_NOT_OK(FailpointHit("serde:reader:open"));
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  if (size < 0 || !in) return Status::IoError("cannot size: " + path);

  constexpr std::streamoff kFooterBytes = 2 * sizeof(uint32_t);
  if (size < kFooterBytes) {
    // Too short to hold a footer at all; only a legacy (pre-footer) file
    // may be that small, and then there is nothing to verify against.
    if (require_footer) {
      return Status::Corruption("snapshot checksum footer missing: " + path);
    }
    return Status::OK();
  }

  const uint64_t payload = static_cast<uint64_t>(size - kFooterBytes);
  uint32_t crc = 0;
  std::vector<char> buf(1u << 16);
  uint64_t left = payload;
  while (left > 0) {
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(left, buf.size()));
    in.read(buf.data(), static_cast<std::streamsize>(chunk));
    if (in.gcount() != static_cast<std::streamsize>(chunk)) {
      return Status::IoError("short read verifying: " + path);
    }
    crc = Crc32Update(crc, buf.data(), chunk);
    left -= chunk;
  }
  uint32_t magic = 0, stored = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in) return Status::IoError("short read verifying: " + path);
  if (magic != kChecksumFooterMagic) {
    // No footer where one should be. Legacy files simply end at the
    // payload, which is indistinguishable from this without the header
    // version — the owner passes require_footer accordingly.
    if (require_footer) {
      return Status::Corruption("snapshot checksum footer malformed: " + path);
    }
    return Status::OK();
  }
  if (stored != crc) {
    return Status::Corruption("snapshot checksum mismatch (corrupt file): " +
                              path);
  }
  return Status::OK();
}

}  // namespace pexeso
