#ifndef PEXESO_COMMON_SERDE_H_
#define PEXESO_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace pexeso {

/// \brief Little binary writer for the partition files used by the
/// out-of-core search path. The format is a private on-disk format (magic +
/// version header written by the owning serializer), not an interchange one.
class BinaryWriter {
 public:
  /// Opens `path` for truncating binary write.
  static Result<BinaryWriter> Open(const std::string& path);

  /// Writes a trivially-copyable value.
  template <typename T>
  void Write(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&v), sizeof(T));
  }

  /// Writes a length-prefixed string.
  void WriteString(const std::string& s) {
    Write<uint64_t>(s.size());
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
  }

  /// Writes a length-prefixed vector of trivially-copyable elements.
  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<uint64_t>(v.size());
    out_.write(reinterpret_cast<const char*>(v.data()),
               static_cast<std::streamsize>(v.size() * sizeof(T)));
  }

  /// Flushes and reports any stream error.
  Status Close();

 private:
  explicit BinaryWriter(std::ofstream out) : out_(std::move(out)) {}
  std::ofstream out_;
};

/// \brief Reader counterpart of BinaryWriter. All reads report corruption via
/// Status rather than crashing on truncated files.
class BinaryReader {
 public:
  /// Opens `path` for binary read.
  static Result<BinaryReader> Open(const std::string& path);

  template <typename T>
  Status Read(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    in_.read(reinterpret_cast<char*>(v), sizeof(T));
    if (!in_) return Status::Corruption("truncated read of fixed field");
    return Status::OK();
  }

  Status ReadString(std::string* s) {
    uint64_t n = 0;
    PEXESO_RETURN_NOT_OK(Read(&n));
    if (n > (1ULL << 32)) return Status::Corruption("string length implausible");
    s->resize(n);
    in_.read(s->data(), static_cast<std::streamsize>(n));
    if (!in_) return Status::Corruption("truncated string");
    return Status::OK();
  }

  template <typename T>
  Status ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    PEXESO_RETURN_NOT_OK(Read(&n));
    if (n > (1ULL << 40) / sizeof(T)) {
      return Status::Corruption("vector length implausible");
    }
    v->resize(n);
    in_.read(reinterpret_cast<char*>(v->data()),
             static_cast<std::streamsize>(n * sizeof(T)));
    if (!in_) return Status::Corruption("truncated vector");
    return Status::OK();
  }

 private:
  explicit BinaryReader(std::ifstream in) : in_(std::move(in)) {}
  std::ifstream in_;
};

}  // namespace pexeso

#endif  // PEXESO_COMMON_SERDE_H_
