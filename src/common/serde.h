#ifndef PEXESO_COMMON_SERDE_H_
#define PEXESO_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"

namespace pexeso {

/// Incremental CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
/// `crc` is the running value, starting at 0 for a fresh stream.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t n);

/// Footer marker written after the payload by WriteChecksumFooter
/// ("1CRC" little-endian). Files written before the footer existed simply
/// end at the payload, which VerifyChecksum accepts as legacy.
inline constexpr uint32_t kChecksumFooterMagic = 0x43524331u;

/// Streams the file at `path` and validates its trailing checksum footer
/// against every payload byte, WITHOUT deserializing anything — the cheap
/// integrity pass recovery and fsck run over each referenced snapshot.
/// `require_footer` follows the same legacy rule as
/// BinaryReader::VerifyChecksum.
Status VerifyFileChecksum(const std::string& path, bool require_footer);

/// \brief Little binary writer for the partition files used by the
/// out-of-core search path. The format is a private on-disk format (magic +
/// version header written by the owning serializer), not an interchange one.
///
/// Every byte written feeds a running CRC-32; serializers that want
/// end-to-end corruption detection call WriteChecksumFooter() last, and
/// their readers call BinaryReader::VerifyChecksum() after the payload.
///
/// Failpoints: "serde:writer:open" (IoError on Open), "serde:writer:close"
/// (IoError on Close — a disk filling up at flush), "serde:writer:corrupt"
/// (flips one byte of a write while the CRC keeps the original — bit rot
/// the reader's checksum must catch).
class BinaryWriter {
 public:
  /// Opens `path` for truncating binary write.
  static Result<BinaryWriter> Open(const std::string& path);

  /// Writes a trivially-copyable value.
  template <typename T>
  void Write(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteRaw(&v, sizeof(T));
  }

  /// Writes a length-prefixed string.
  void WriteString(const std::string& s) {
    Write<uint64_t>(s.size());
    WriteRaw(s.data(), s.size());
  }

  /// Writes a length-prefixed vector of trivially-copyable elements.
  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<uint64_t>(v.size());
    WriteRaw(v.data(), v.size() * sizeof(T));
  }

  /// Appends the footer: kChecksumFooterMagic + the CRC-32 of every payload
  /// byte written so far. Must be the last write before Close().
  void WriteChecksumFooter() {
    const uint32_t payload_crc = crc_;
    Write<uint32_t>(kChecksumFooterMagic);
    Write<uint32_t>(payload_crc);
  }

  /// Flushes and reports any stream error.
  Status Close();

 private:
  explicit BinaryWriter(std::ofstream out) : out_(std::move(out)) {}

  void WriteRaw(const void* p, size_t n) {
    crc_ = Crc32Update(crc_, p, n);
    if (n > 0 && FailpointCorruptFires("serde:writer:corrupt")) {
      // Bit rot between write and read-back: the CRC above covers the
      // intended bytes, the disk gets one flipped bit.
      std::string copy(static_cast<const char*>(p), n);
      copy[0] = static_cast<char>(copy[0] ^ 0x01);
      out_.write(copy.data(), static_cast<std::streamsize>(n));
      return;
    }
    out_.write(static_cast<const char*>(p),
               static_cast<std::streamsize>(n));
  }

  std::ofstream out_;
  uint32_t crc_ = 0;
};

/// \brief Reader counterpart of BinaryWriter. All reads report corruption
/// via Status rather than crashing on truncated files: every length prefix
/// is bounded by the bytes actually remaining in the file, so a bit-flipped
/// length can never drive a multi-gigabyte allocation.
///
/// Failpoints: "serde:reader:open" (IoError on Open), "serde:reader:read"
/// (injected status on any read).
class BinaryReader {
 public:
  /// Opens `path` for binary read.
  static Result<BinaryReader> Open(const std::string& path);

  template <typename T>
  Status Read(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadRaw(v, sizeof(T), "truncated read of fixed field");
  }

  Status ReadString(std::string* s) {
    uint64_t n = 0;
    PEXESO_RETURN_NOT_OK(Read(&n));
    if (n > remaining_) return Status::Corruption("string length implausible");
    s->resize(n);
    return ReadRaw(s->data(), n, "truncated string");
  }

  template <typename T>
  Status ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    PEXESO_RETURN_NOT_OK(Read(&n));
    if (n > remaining_ / sizeof(T)) {
      return Status::Corruption("vector length implausible");
    }
    v->resize(n);
    return ReadRaw(v->data(), n * sizeof(T), "truncated vector");
  }

  /// Call after consuming the whole payload. Checks the CRC-32 footer: a
  /// malformed footer, trailing bytes after it, or a CRC mismatch is
  /// Corruption. A clean EOF instead of a footer passes only when
  /// `require_footer` is false (the legacy pre-checksum allowance) — format
  /// owners that version their headers pass true for post-footer versions,
  /// so a file truncated exactly at the footer boundary cannot masquerade
  /// as legacy.
  Status VerifyChecksum(bool require_footer = false);

 private:
  BinaryReader(std::ifstream in, uint64_t size)
      : in_(std::move(in)), remaining_(size) {}

  Status ReadRaw(void* p, size_t n, const char* what) {
    if (FailpointsArmed()) {
      PEXESO_RETURN_NOT_OK(FailpointHit("serde:reader:read"));
    }
    if (n > remaining_) return Status::Corruption(what);
    in_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (!in_) return Status::Corruption(what);
    remaining_ -= n;
    crc_ = Crc32Update(crc_, p, n);
    return Status::OK();
  }

  std::ifstream in_;
  uint64_t remaining_ = 0;  ///< bytes of file not yet consumed
  uint32_t crc_ = 0;
};

}  // namespace pexeso

#endif  // PEXESO_COMMON_SERDE_H_
