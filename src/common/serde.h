#ifndef PEXESO_COMMON_SERDE_H_
#define PEXESO_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"

namespace pexeso {

/// Incremental CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
/// `crc` is the running value, starting at 0 for a fresh stream.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t n);

/// Footer marker written after the payload by WriteChecksumFooter
/// ("1CRC" little-endian). Files written before the footer existed simply
/// end at the payload, which VerifyChecksum accepts as legacy.
inline constexpr uint32_t kChecksumFooterMagic = 0x43524331u;

/// Streams the file at `path` and validates its trailing checksum footer
/// against every payload byte, WITHOUT deserializing anything — the cheap
/// integrity pass recovery and fsck run over each referenced snapshot.
/// `require_footer` follows the same legacy rule as
/// BinaryReader::VerifyChecksum.
Status VerifyFileChecksum(const std::string& path, bool require_footer);

/// \brief Little binary writer for the partition files used by the
/// out-of-core search path. The format is a private on-disk format (magic +
/// version header written by the owning serializer), not an interchange one.
///
/// Two backends share the Write* surface: a file stream (Open) and an
/// in-memory string (ToBuffer). The buffer backend lets section-oriented
/// formats reuse a structure's Serialize(BinaryWriter*) to fill a memory
/// section that the owning file writer then emits with WriteBytes.
///
/// Every byte written feeds a running CRC-32; serializers that want
/// end-to-end corruption detection call WriteChecksumFooter() last, and
/// their readers call BinaryReader::VerifyChecksum() after the payload.
///
/// Failpoints: "serde:writer:open" (IoError on Open), "serde:writer:close"
/// (IoError on Close — a disk filling up at flush), "serde:writer:corrupt"
/// (flips one byte of a file write while the CRC keeps the original — bit
/// rot the reader's checksum must catch; buffer-backed writers model
/// in-memory serialization, not the disk, so the failpoint only fires on
/// the file backend).
class BinaryWriter {
 public:
  /// Opens `path` for truncating binary write.
  static Result<BinaryWriter> Open(const std::string& path);

  /// A writer appending to `*out` (not owned; must outlive the writer).
  static BinaryWriter ToBuffer(std::string* out) { return BinaryWriter(out); }

  /// Writes a trivially-copyable value.
  template <typename T>
  void Write(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteRaw(&v, sizeof(T));
  }

  /// Writes a length-prefixed string.
  void WriteString(const std::string& s) {
    Write<uint64_t>(s.size());
    WriteRaw(s.data(), s.size());
  }

  /// Writes a length-prefixed vector of trivially-copyable elements.
  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<uint64_t>(v.size());
    WriteRaw(v.data(), v.size() * sizeof(T));
  }

  /// Writes `n` raw bytes with no length prefix. The bytes feed the running
  /// CRC like any other write; section-oriented formats use this to emit
  /// pre-serialized section images and alignment padding.
  void WriteBytes(const void* p, size_t n) { WriteRaw(p, n); }

  /// Payload bytes written so far (the current file/buffer offset).
  uint64_t bytes_written() const { return bytes_; }

  /// Appends the footer: kChecksumFooterMagic + the CRC-32 of every payload
  /// byte written so far. Must be the last write before Close().
  void WriteChecksumFooter() {
    const uint32_t payload_crc = crc_;
    Write<uint32_t>(kChecksumFooterMagic);
    Write<uint32_t>(payload_crc);
  }

  /// Flushes and reports any stream error. No-op for buffer writers.
  Status Close();

 private:
  explicit BinaryWriter(std::ofstream out) : out_(std::move(out)) {}
  explicit BinaryWriter(std::string* buf) : buf_(buf) {}

  void WriteRaw(const void* p, size_t n) {
    if (n == 0) return;  // empty write; source may be null
    crc_ = Crc32Update(crc_, p, n);
    bytes_ += n;
    if (buf_ != nullptr) {
      buf_->append(static_cast<const char*>(p), n);
      return;
    }
    if (n > 0 && FailpointCorruptFires("serde:writer:corrupt")) {
      // Bit rot between write and read-back: the CRC above covers the
      // intended bytes, the disk gets one flipped bit.
      std::string copy(static_cast<const char*>(p), n);
      copy[0] = static_cast<char>(copy[0] ^ 0x01);
      out_.write(copy.data(), static_cast<std::streamsize>(n));
      return;
    }
    out_.write(static_cast<const char*>(p),
               static_cast<std::streamsize>(n));
  }

  std::ofstream out_;
  std::string* buf_ = nullptr;  ///< non-null => buffer backend
  uint64_t bytes_ = 0;
  uint32_t crc_ = 0;
};

/// \brief Reader counterpart of BinaryWriter. All reads report corruption
/// via Status rather than crashing on truncated files: every length prefix
/// is bounded by the bytes actually remaining in the file, so a bit-flipped
/// length can never drive a multi-gigabyte allocation.
///
/// Mirrors the writer's two backends: Open reads a file, FromBuffer reads a
/// bounded memory span (e.g. one section of a mapped snapshot) — the same
/// truncation bounds apply, with `remaining_` seeded from the span length.
///
/// Failpoints: "serde:reader:open" (IoError on Open), "serde:reader:read"
/// (injected status on any read).
class BinaryReader {
 public:
  /// Opens `path` for binary read.
  static Result<BinaryReader> Open(const std::string& path);

  /// A reader over `[data, data + size)` (not owned; must outlive reads).
  static BinaryReader FromBuffer(const void* data, size_t size) {
    return BinaryReader(static_cast<const uint8_t*>(data), size);
  }

  template <typename T>
  Status Read(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadRaw(v, sizeof(T), "truncated read of fixed field");
  }

  Status ReadString(std::string* s) {
    uint64_t n = 0;
    PEXESO_RETURN_NOT_OK(Read(&n));
    if (n > remaining_) return Status::Corruption("string length implausible");
    s->resize(n);
    return ReadRaw(s->data(), n, "truncated string");
  }

  template <typename T>
  Status ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    PEXESO_RETURN_NOT_OK(Read(&n));
    if (n > remaining_ / sizeof(T)) {
      return Status::Corruption("vector length implausible");
    }
    v->resize(n);
    return ReadRaw(v->data(), n * sizeof(T), "truncated vector");
  }

  /// Bytes not yet consumed (buffer readers: span bytes left).
  uint64_t remaining() const { return remaining_; }

  /// Call after consuming the whole payload. Checks the CRC-32 footer: a
  /// malformed footer, trailing bytes after it, or a CRC mismatch is
  /// Corruption. A clean EOF instead of a footer passes only when
  /// `require_footer` is false (the legacy pre-checksum allowance) — format
  /// owners that version their headers pass true for post-footer versions,
  /// so a file truncated exactly at the footer boundary cannot masquerade
  /// as legacy.
  Status VerifyChecksum(bool require_footer = false);

 private:
  BinaryReader(std::ifstream in, uint64_t size)
      : in_(std::move(in)), remaining_(size) {}
  BinaryReader(const uint8_t* data, uint64_t size)
      : bufp_(data), remaining_(size) {}

  Status ReadRaw(void* p, size_t n, const char* what) {
    if (FailpointsArmed()) {
      PEXESO_RETURN_NOT_OK(FailpointHit("serde:reader:read"));
    }
    if (n > remaining_) return Status::Corruption(what);
    if (n == 0) return Status::OK();  // empty read; dest may be null
    if (bufp_ != nullptr) {
      std::memcpy(p, bufp_, n);
      bufp_ += n;
    } else {
      in_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
      if (!in_) return Status::Corruption(what);
    }
    remaining_ -= n;
    crc_ = Crc32Update(crc_, p, n);
    return Status::OK();
  }

  std::ifstream in_;
  const uint8_t* bufp_ = nullptr;  ///< non-null => buffer backend
  uint64_t remaining_ = 0;  ///< bytes of file/span not yet consumed
  uint32_t crc_ = 0;
};

}  // namespace pexeso

#endif  // PEXESO_COMMON_SERDE_H_
