#include "common/rng.h"

#include "common/check.h"

namespace pexeso {

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  PEXESO_CHECK(k <= n);
  // Floyd's algorithm for k << n; fall back to shuffle for dense samples.
  if (k * 2 >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    all.resize(k);
    return all;
  }
  std::vector<size_t> picked;
  picked.reserve(k);
  // Simple rejection sampling; expected iterations ~ k for k << n.
  std::vector<bool> seen(n, false);
  while (picked.size() < k) {
    size_t j = Uniform(n);
    if (!seen[j]) {
      seen[j] = true;
      picked.push_back(j);
    }
  }
  return picked;
}

}  // namespace pexeso
