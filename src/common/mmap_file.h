#ifndef PEXESO_COMMON_MMAP_FILE_H_
#define PEXESO_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace pexeso {

/// \brief A read-only memory mapping of a whole file.
///
/// The mapping is shared and read-only (PROT_READ/MAP_SHARED): pages are
/// faulted in on demand and evicted by the kernel under memory pressure, so
/// "loading" a mapped snapshot costs no up-front copies and no heap. The
/// object is handed around as shared_ptr so sections of a mapped snapshot
/// (vector data, postings) can outlive the loader that created them.
///
/// Failpoints: "serde:reader:open" (IoError on Open) — the same point the
/// BinaryReader path uses, so injected IO faults hit both load paths alike.
class MappedFile {
 public:
  /// Maps `path` read-only. Empty files map successfully with size() == 0.
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return static_cast<const uint8_t*>(addr_); }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MappedFile(void* addr, size_t size, std::string path)
      : addr_(addr), size_(size), path_(std::move(path)) {}

  void* addr_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

}  // namespace pexeso

#endif  // PEXESO_COMMON_MMAP_FILE_H_
