#include "common/status.h"

namespace pexeso {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return "OK";
    case Status::Code::kInvalidArgument: return "InvalidArgument";
    case Status::Code::kNotFound: return "NotFound";
    case Status::Code::kIoError: return "IoError";
    case Status::Code::kCorruption: return "Corruption";
    case Status::Code::kNotSupported: return "NotSupported";
    case Status::Code::kOutOfRange: return "OutOfRange";
    case Status::Code::kInternal: return "Internal";
    case Status::Code::kCancelled: return "Cancelled";
    case Status::Code::kDeadlineExceeded: return "DeadlineExceeded";
    case Status::Code::kResourceExhausted: return "ResourceExhausted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace pexeso
