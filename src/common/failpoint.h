#ifndef PEXESO_COMMON_FAILPOINT_H_
#define PEXESO_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace pexeso {

/// \brief Named fault-injection points ("failpoints"), RocksDB-style.
///
/// Production code marks the places where the environment can fail — file
/// opens, reads, renames, merge publication — with a cheap call:
///
///   PEXESO_RETURN_NOT_OK(FailpointHit("lake:merge:before-publish"));
///
/// Disarmed (the production state) the call is one relaxed atomic load.
/// Tests — or an operator via the PEXESO_FAILPOINTS environment variable —
/// arm a failpoint with an action: return an IoError or Corruption status,
/// delay, or hard-crash the process (`std::_Exit`, no flush: exactly what a
/// power cut does to unsynced buffers). The crash action is what drives the
/// kill-point matrix in tests/fault_test.cc.
///
/// Building with -DPEXESO_FAILPOINTS=OFF (CMake) defines
/// PEXESO_NO_FAILPOINTS and compiles every check down to Status::OK().

/// What an armed failpoint does when execution reaches it.
enum class FailAction : uint8_t {
  kIoError,     ///< the site returns Status::IoError
  kCorruption,  ///< reader sites return Status::Corruption; writer sites
                ///< flip a byte of the written stream (CRC keeps the
                ///< original, so the reader's checksum catches it)
  kDelay,       ///< sleep delay_ms, then continue normally
  kCrash,       ///< std::_Exit(kFailpointCrashExitCode) — kill-point testing
};

/// Exit code a kCrash failpoint terminates with; the fault-test parent
/// waits for exactly this code to know the crash fired (and not, say, an
/// assertion).
inline constexpr int kFailpointCrashExitCode = 0x5A;

struct FailpointSpec {
  FailAction action = FailAction::kIoError;
  int skip = 0;      ///< pass through this many hits before firing
  int limit = -1;    ///< fire at most this many times (-1 = unlimited)
  int delay_ms = 0;  ///< kDelay only
};

#ifndef PEXESO_NO_FAILPOINTS

namespace failpoint_internal {
/// Number of currently-armed failpoints; the disarmed fast path is one
/// relaxed load of this counter.
extern std::atomic<uint32_t> g_armed;
}  // namespace failpoint_internal

/// True when at least one failpoint is armed anywhere in the process.
inline bool FailpointsArmed() {
  return failpoint_internal::g_armed.load(std::memory_order_relaxed) != 0;
}

class FailpointRegistry {
 public:
  /// Process-wide registry. The first call parses PEXESO_FAILPOINTS from
  /// the environment (same grammar as ArmFromString).
  static FailpointRegistry& Instance();

  void Arm(const std::string& site, FailpointSpec spec);
  void Disarm(const std::string& site);
  void DisarmAll();

  /// Arms from a spec string: `site=action[:skip[:limit[:delay_ms]]]`
  /// entries separated by ';' or ','. Actions: ioerror, corrupt, crash,
  /// delay. Example:
  ///   "lake:merge:before-publish=crash;serde:reader:open=ioerror:0:2"
  Status ArmFromString(const std::string& spec);

  /// Executes the site's armed action (if any): returns the injected
  /// status, sleeps, or terminates the process. OK when disarmed, skipped,
  /// or past its limit.
  Status Hit(const char* site);

  /// Writer-side byte corruption: true when `site` is armed with kCorruption
  /// and its skip/limit window says this hit fires.
  bool CorruptFires(const char* site);

  /// How many times `site` has fired (for test assertions).
  uint64_t fire_count(const std::string& site) const;

 private:
  FailpointRegistry();

  struct Armed {
    FailpointSpec spec;
    int64_t hits = 0;
    int64_t fired = 0;
  };

  /// Shared skip/limit bookkeeping; returns the action to take, or nullopt
  /// semantics via the bool.
  bool Fire(const char* site, FailAction* action, int* delay_ms);

  mutable std::mutex mu_;
  std::map<std::string, Armed> map_;
};

/// Convenience wrappers over FailpointRegistry::Instance(). Both are a
/// single relaxed atomic load when nothing is armed.
inline Status FailpointHit(const char* site) {
  if (!FailpointsArmed()) return Status::OK();
  return FailpointRegistry::Instance().Hit(site);
}

inline bool FailpointCorruptFires(const char* site) {
  if (!FailpointsArmed()) return false;
  return FailpointRegistry::Instance().CorruptFires(site);
}

#else  // PEXESO_NO_FAILPOINTS

inline bool FailpointsArmed() { return false; }
inline Status FailpointHit(const char*) { return Status::OK(); }
inline bool FailpointCorruptFires(const char*) { return false; }

#endif  // PEXESO_NO_FAILPOINTS

}  // namespace pexeso

#endif  // PEXESO_COMMON_FAILPOINT_H_
