#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/check.h"

namespace pexeso {

namespace {
/// The pool the current thread is a worker of (nullptr on non-pool threads).
/// Lets ParallelFor detect the self-deadlocking nested call.
thread_local const ThreadPool* current_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  PEXESO_CHECK(threads >= 1);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

bool ThreadPool::OnWorkerThread() const { return current_worker_pool == this; }

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  PEXESO_CHECK_MSG(!OnWorkerThread(),
                   "nested ParallelFor from a worker of the same pool "
                   "self-deadlocks; run it from the owning thread");
  if (n == 0) return;
  const size_t shards = std::min(n, workers_.size() * 4);
  std::atomic<size_t> next{0};
  for (size_t s = 0; s < shards; ++s) {
    Submit([&next, n, &fn] {
      while (true) {
        size_t i = next.fetch_add(1);
        if (i >= n) break;
        fn(i);
      }
    });
  }
  Wait();
}

TaskGroup::TaskGroup(ThreadPool* pool) : pool_(pool) {
  PEXESO_CHECK(pool != nullptr);
}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++in_flight_;
  }
  pool_->Submit([this, task = std::move(task)] {
    // The decrement must run whether or not the task throws; the exception
    // itself is the pool's to capture (WorkerLoop catch-all).
    struct Decrement {
      TaskGroup* group;
      ~Decrement() {
        std::unique_lock<std::mutex> lock(group->mu_);
        if (--group->in_flight_ == 0) group->cv_done_.notify_all();
      }
    } decrement{this};
    task();
  });
}

void TaskGroup::Wait() {
  PEXESO_CHECK_MSG(!pool_->OnWorkerThread(),
                   "TaskGroup::Wait from a worker of its own pool "
                   "self-deadlocks; wait from the owning thread");
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  current_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) break;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // The decrement must happen whether or not the task throws; otherwise
    // a throwing task leaves in_flight_ stuck and Wait() blocks forever.
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
  current_worker_pool = nullptr;
}

}  // namespace pexeso
