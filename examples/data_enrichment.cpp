// Data enrichment for ML (paper Section VI-C in miniature): a weak
// classification task becomes solvable after left-joining the query table
// with lake feature tables discovered by PEXESO. Compares no-join, equi-join
// and PEXESO enrichment with a random-forest model and 4-fold CV.

#include <cstdio>

#include "core/pexeso_index.h"
#include "core/searcher.h"
#include "datagen/ml_task.h"
#include "embed/char_gram_model.h"
#include "embed/synonym_model.h"
#include "ml/random_forest.h"
#include "textjoin/matchers.h"

int main() {
  using namespace pexeso;

  // A synthetic prediction task: the label depends on entity attributes that
  // live in lake tables keyed by *variant* entity names.
  MlTaskGenerator::Options topts;
  topts.num_classes = 6;
  topts.num_entities = 300;
  topts.query_rows = 300;
  topts.num_tables = 8;
  topts.seed = 424;
  MlTask task = MlTaskGenerator::Generate(topts);
  SynonymModel model(std::make_unique<CharGramModel>(), &task.pool.dict());

  RandomForest::Options fopts;
  fopts.num_classes = topts.num_classes;
  fopts.num_trees = 30;

  auto evaluate = [&](const char* name, const JoinMap& jm) {
    Dataset enriched = AssembleEnriched(task, jm);
    auto score = CrossValidateClassifier(enriched, fopts, 4, 7);
    std::printf("  %-10s match %5.1f%%   micro-F1 %.3f +- %.3f\n", name,
                JoinMatchRatio(jm) * 100.0, score.mean, score.stddev);
  };

  std::printf("enrichment comparison (%zu query rows, %zu feature tables):\n",
              task.query_keys.size(), task.tables.size());

  {  // no-join
    JoinMap none(task.tables.size());
    for (auto& v : none) v.assign(task.query_keys.size(), -1);
    evaluate("no-join", none);
  }
  {  // equi-join record matching
    EquiMatcher equi;
    JoinMap jm(task.tables.size());
    for (size_t t = 0; t < task.tables.size(); ++t) {
      jm[t].assign(task.query_keys.size(), -1);
      for (size_t q = 0; q < task.query_keys.size(); ++q) {
        for (size_t r = 0; r < task.tables[t].keys.size(); ++r) {
          if (equi.MatchRecords(task.query_keys[q], task.tables[t].keys[r])) {
            jm[t][q] = static_cast<int32_t>(r);
            break;
          }
        }
      }
    }
    evaluate("equi-join", jm);
  }
  {  // PEXESO: index the feature tables' key columns and use the mappings.
    L2Metric metric;
    ColumnCatalog catalog(model.dim());
    for (size_t t = 0; t < task.tables.size(); ++t) {
      auto packed = model.EmbedColumn(task.tables[t].keys);
      ColumnMeta meta;
      meta.source_id = static_cast<uint32_t>(t);
      meta.table_name = task.tables[t].name;
      catalog.AddColumn(meta, packed.data(), task.tables[t].keys.size());
    }
    PexesoOptions opts;
    opts.num_pivots = 4;
    opts.levels = 4;
    PexesoIndex index = PexesoIndex::Build(std::move(catalog), &metric, opts);
    VectorStore query(model.dim());
    for (const auto& k : task.query_keys) {
      auto v = model.EmbedRecord(k);
      query.Add(v);
    }
    FractionalThresholds ft{0.35, 0.2};
    JoinQuery jq;
    jq.vectors = &query;
    jq.thresholds = ft.Resolve(metric, model.dim(), query.size());
    jq.collect_mappings = true;
    // Driven through the unified engine interface: swapping in another
    // JoinSearchEngine implementation changes nothing below this line.
    PexesoSearcher searcher(&index);
    const JoinSearchEngine& engine = searcher;
    CollectSink sink;
    engine.Execute(jq, &sink, nullptr);
    const auto& results = sink.columns();

    JoinMap jm(task.tables.size());
    for (auto& v : jm) v.assign(task.query_keys.size(), -1);
    for (const auto& r : results) {
      const ColumnMeta& meta = index.catalog().column(r.column);
      for (const auto& m : r.mapping) {
        if (jm[meta.source_id][m.query_index] < 0) {
          jm[meta.source_id][m.query_index] =
              static_cast<int32_t>(m.target_vec - meta.first);
        }
      }
    }
    evaluate("PEXESO", jm);
  }
  std::printf("\nPEXESO's extra (correct) matches turn the weak base "
              "features into informative joined ones.\n");
  return 0;
}
