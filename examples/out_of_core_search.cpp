// Out-of-core joinable table search, serving-layer edition: the repository
// is partitioned by JSD clustering (paper Section IV), each partition is
// indexed and serialized to disk, and queries are served through the
// serve:: layer — a memory-budgeted IndexCache so a batch of queries
// deserializes each partition once (not once per query), and an async
// ServeSession that streams per-partition result chunks as they complete.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "datagen/vector_lake.h"
#include "lake/lake_manager.h"
#include "partition/partitioned_pexeso.h"
#include "serve/index_cache.h"
#include "serve/serve_session.h"

namespace {

/// A streaming consumer that surfaces degraded-mode serving: OnPartStatus
/// names each part whose contribution is missing while the healthy parts'
/// answer still arrives through OnColumn.
struct DegradationPrintingSink final : pexeso::ResultSink {
  size_t columns = 0;
  void OnColumn(pexeso::JoinableColumn&&) override { ++columns; }
  void OnPartStatus(size_t part, const pexeso::Status& status) override {
    std::printf("  [part %zu] missing from this answer: %s\n", part,
                status.ToString().c_str());
  }
  void OnDone(const pexeso::Status& status) override {
    std::printf("  done: %s — %zu joinable column(s) from the healthy "
                "parts\n",
                status.ok() ? "OK" : status.ToString().c_str(), columns);
  }
};

}  // namespace

int main() {
  using namespace pexeso;
  namespace fs = std::filesystem;

  // A mid-sized embedded repository (vectors only; in production these come
  // from TableRepository + an embedding model).
  VectorLakeOptions lake_opts;
  lake_opts.dim = 50;
  lake_opts.num_columns = 800;
  lake_opts.avg_col_size = 14;
  ColumnCatalog catalog = GenerateVectorLake(lake_opts);
  std::printf("repository: %zu columns, %zu vectors, dim %u\n",
              catalog.num_columns(), catalog.num_vectors(), catalog.dim());

  // 1. Partition by column-distribution similarity (JSD clustering).
  Partitioner::Options popts;
  popts.k = 4;
  PartitionAssignment assignment = Partitioner::JsdClustering(catalog, popts);

  // 2. Build one PexesoIndex per partition, serialized under a directory.
  const std::string dir =
      (fs::temp_directory_path() / "pexeso_example_parts").string();
  fs::remove_all(dir);
  L2Metric metric;
  PexesoOptions opts;
  opts.num_pivots = 5;
  opts.levels = 5;
  auto built = PartitionedPexeso::Build(catalog, assignment, dir, &metric,
                                        opts);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  PartitionedPexeso& parts = built.value();
  std::printf("partitions: %zu files, %.2f MB on disk at %s\n",
              parts.num_partitions(), parts.DiskBytes() / 1e6, dir.c_str());

  // 3. Attach the serving cache and warm it by pinning every partition —
  // pinned entries are exempt from eviction, so the whole batch below runs
  // from memory.
  serve::IndexCache cache({.budget_bytes = 512ull << 20});
  parts.AttachCache(&cache);
  for (size_t p = 0; p < parts.num_partitions(); ++p) {
    if (!cache.Pin(parts.PartPath(p), &metric).ok()) {
      std::fprintf(stderr, "warm-up pin failed for partition %zu\n", p);
      return 1;
    }
  }

  // 4. Serve a small query batch asynchronously. The first query streams:
  // its callback fires once per partition, as that partition's search
  // completes — a consumer can show partial joinable sets long before the
  // slowest partition finishes.
  constexpr size_t kQueries = 8;
  std::vector<VectorStore> queries;
  for (size_t i = 0; i < kQueries; ++i) {
    queries.push_back(GenerateVectorQuery(lake_opts, 40, 777 + i * 13));
  }
  FractionalThresholds ft{0.06, 0.5};
  const SearchThresholds thresholds =
      ft.Resolve(metric, lake_opts.dim, queries[0].size());
  const auto make_request = [&](size_t i) {
    JoinQuery jq;
    jq.vectors = &queries[i];
    jq.thresholds = thresholds;
    // A per-query wall budget: a query past it returns the partitions that
    // completed as partial results instead of occupying the pool.
    jq.deadline = Deadline::After(30.0);
    return jq;
  };

  serve::ServeSession session(&parts, {.num_threads = 4});
  std::mutex print_mu;
  session.SubmitStreaming(make_request(0),
                          [&](const serve::StreamChunk& chunk) {
                            std::lock_guard<std::mutex> lock(print_mu);
                            std::printf(
                                "  [stream] query 0, part %zu/%zu: %zu "
                                "joinable column(s)%s\n",
                                chunk.part + 1, chunk.parts_total,
                                chunk.results.size(),
                                chunk.last ? " (done)" : "");
                          });
  for (size_t i = 1; i < kQueries; ++i) {
    session.Submit(make_request(i));
  }
  auto outcomes = session.Drain();

  // 5. Outcomes arrive in submission order with deterministic merged
  // results (byte-identical to a serial SearchPartitions loop).
  std::printf("\nserved %zu queries:\n", outcomes.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].status.ok()) {
      std::printf("  query %zu FAILED: %s\n", i,
                  outcomes[i].status.ToString().c_str());
      continue;
    }
    std::printf("  query %zu: %zu joinable columns (%.4fs IO, %llu exact "
                "distance computations)\n",
                i, outcomes[i].results.size(), outcomes[i].io_seconds,
                static_cast<unsigned long long>(
                    outcomes[i].stats.distance_computations));
  }

  const serve::IndexCacheStats cs = cache.stats();
  std::printf("\nindex cache: %llu hits / %llu misses (%.1f%% hit rate), "
              "%zu resident entries, %.2f MB\n",
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses), cs.HitRate() * 100,
              cs.entries, cs.bytes_resident / 1e6);
  std::printf("(the pre-serving loop paid %zu partition deserializations "
              "for this batch; the cache paid %llu)\n",
              kQueries * parts.num_partitions(),
              static_cast<unsigned long long>(cs.misses));
  fs::remove_all(dir);

  // 6. Degraded-mode serving: a live lake whose part base goes bad on disk
  // keeps answering from the healthy parts, reporting exactly what is
  // missing through ResultSink::OnPartStatus instead of failing the query.
  std::printf("\ndegraded-mode serving (one part base corrupted on disk):\n");
  const std::string lake_dir =
      (fs::temp_directory_path() / "pexeso_example_lake").string();
  fs::remove_all(lake_dir);
  VectorLakeOptions small_opts = lake_opts;
  small_opts.num_columns = 90;
  ColumnCatalog lake_catalog = GenerateVectorLake(small_opts);
  PartitionAssignment lake_assignment(lake_catalog.num_columns());
  for (uint32_t c = 0; c < lake_catalog.num_columns(); ++c) {
    lake_assignment[c] = c % 3;
  }
  lake::LakeOptions lopts;
  lopts.index_options = opts;
  std::string victim_base;
  {
    auto created = lake::LakeManager::Create(lake_catalog, lake_assignment,
                                             lake_dir, &metric, lopts);
    if (!created.ok()) {
      std::fprintf(stderr, "lake create failed: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    auto manager = std::move(created).ValueOrDie();
    victim_base = manager->PartPath(0, manager->generation(0));
  }
  {
    // Scribble over the middle of part 0's base: the CRC-checked loader
    // will reject it on the next open.
    std::fstream f(victim_base,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(512);
    f.write("\xde\xad\xbe\xef", 4);
  }
  auto reopened = lake::LakeManager::Open(lake_dir, &metric, lopts);
  if (!reopened.ok()) {
    std::fprintf(stderr, "lake reopen failed: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  auto lake = std::move(reopened).ValueOrDie();
  std::printf("  recovery quarantined %zu part(s)\n",
              lake->Health().quarantined_parts);
  JoinQuery degraded_jq;
  degraded_jq.vectors = &queries[0];
  degraded_jq.thresholds = thresholds;
  SearchStats degraded_stats;
  DegradationPrintingSink degradation_sink;
  lake->Execute(degraded_jq, &degradation_sink, &degraded_stats);
  std::printf("  (stats: %llu partial response(s), %llu quarantined "
              "part(s) encountered)\n",
              static_cast<unsigned long long>(
                  degraded_stats.partial_responses),
              static_cast<unsigned long long>(
                  degraded_stats.parts_quarantined));
  fs::remove_all(lake_dir);
  return 0;
}
