// Out-of-core joinable table search (paper Section IV): the repository is
// partitioned by JSD clustering of column distributions, each partition is
// indexed and serialized to disk, and the search streams one partition at a
// time through memory -- the protocol for lakes too large for RAM.

#include <cstdio>
#include <filesystem>

#include "datagen/vector_lake.h"
#include "partition/partitioned_pexeso.h"

int main() {
  using namespace pexeso;
  namespace fs = std::filesystem;

  // A mid-sized embedded repository (vectors only; in production these come
  // from TableRepository + an embedding model).
  VectorLakeOptions lake_opts;
  lake_opts.dim = 50;
  lake_opts.num_columns = 800;
  lake_opts.avg_col_size = 14;
  ColumnCatalog catalog = GenerateVectorLake(lake_opts);
  std::printf("repository: %zu columns, %zu vectors, dim %u\n",
              catalog.num_columns(), catalog.num_vectors(), catalog.dim());

  // 1. Partition by column-distribution similarity (JSD clustering).
  Partitioner::Options popts;
  popts.k = 4;
  PartitionAssignment assignment = Partitioner::JsdClustering(catalog, popts);

  // 2. Build one PexesoIndex per partition, serialized under a directory.
  const std::string dir =
      (fs::temp_directory_path() / "pexeso_example_parts").string();
  fs::remove_all(dir);
  L2Metric metric;
  PexesoOptions opts;
  opts.num_pivots = 5;
  opts.levels = 5;
  auto built = PartitionedPexeso::Build(catalog, assignment, dir, &metric,
                                        opts);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::printf("partitions: %zu files, %.2f MB on disk at %s\n",
              built.value().num_partitions(),
              built.value().DiskBytes() / 1e6, dir.c_str());

  // 3. Search: partitions are loaded one at a time; results are merged in
  // the global column-id space.
  VectorStore query = GenerateVectorQuery(lake_opts, 40, 777);
  FractionalThresholds ft{0.06, 0.5};
  SearchOptions sopts;
  sopts.thresholds = ft.Resolve(metric, lake_opts.dim, query.size());
  double io_seconds = 0.0;
  SearchStats stats;
  auto results = built.value().SearchPartitions(query, sopts, &stats,
                                                &io_seconds);
  if (!results.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  std::printf("\nfound %zu joinable columns (%.3fs I/O, %llu exact distance "
              "computations)\n",
              results.value().size(), io_seconds,
              static_cast<unsigned long long>(stats.distance_computations));
  for (size_t i = 0; i < std::min<size_t>(5, results.value().size()); ++i) {
    const auto& r = results.value()[i];
    std::printf("  global column %u: joinability %.2f\n", r.column,
                r.joinability);
  }
  fs::remove_all(dir);
  return 0;
}
