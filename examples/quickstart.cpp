// Quickstart: load CSV tables into a repository, build a PEXESO index, and
// search for columns joinable with a query column.
//
//   $ ./build/examples/quickstart
//
// Everything runs in-process on a few inline tables; see
// semantic_join_demo.cpp for the paper's motivating example and
// out_of_core_search.cpp for the partitioned / on-disk path.

#include <cstdio>

#include "core/batch_runner.h"
#include "core/pexeso_index.h"
#include "core/searcher.h"
#include "embed/char_gram_model.h"
#include "table/csv.h"
#include "table/repository.h"

int main() {
  using namespace pexeso;

  // 1. An embedding model. CharGramModel is the built-in fastText-like
  // subword model; any EmbeddingModel implementation can be plugged in.
  CharGramModel model;

  // 2. Load tables into the repository. The repository detects column types
  // and keeps string/date columns that look like join keys.
  TableRepository repo(&model);
  const char* games_csv =
      "name,year,publisher\n"
      "Mario Party,1998,Nintendo\n"
      "Zelda Ocarina,1998,Nintendo\n"
      "Metroid Prime,2002,Nintendo\n"
      "Halo,2001,Microsoft\n"
      "Forza Horizon,2012,Microsoft\n"
      "Gran Turismo,1997,Sony\n";
  const char* sales_csv =
      "title,units\n"
      "Mario Party,8.9\n"
      "Zelda Ocarine,7.6\n"          // note the typo
      "Metroid prime,2.8\n"          // case drift
      "Halo,6.4\n"
      "Gran Turismo,10.9\n"
      "Wii Sports,82.9\n";
  const char* cities_csv =
      "city,population\n"
      "Tokyo,37400068\n"
      "Delhi,28514000\n"
      "Shanghai,25582000\n"
      "Sao Paulo,21650000\n"
      "Mexico City,21581000\n";
  for (const char* csv : {games_csv, sales_csv, cities_csv}) {
    auto table = Csv::Parse(csv, "table");
    if (!table.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   table.status().ToString().c_str());
      return 1;
    }
    repo.AddTable(table.value());
  }
  std::printf("repository: %zu key columns, %zu record vectors\n",
              repo.catalog().num_columns(), repo.catalog().num_vectors());

  // 3. Build the PEXESO index (pivot selection, pivot mapping, hierarchical
  // grid, inverted index).
  L2Metric metric;
  PexesoOptions opts;
  opts.num_pivots = 3;
  opts.levels = 0;  // 0 = pick m with the cost model
  PexesoIndex index = PexesoIndex::Build(repo.TakeCatalog(), &metric, opts);
  std::printf("index: |P|=%u, m=%u, %.1f KB\n", index.pivots().num_pivots(),
              index.grid().levels(), index.IndexSizeBytes() / 1024.0);

  // 4. A query column (e.g. from the user's local table).
  VectorStore query = repo.EmbedQueryColumn(
      {"Mario Party", "Zelda Ocarina", "Metroid Prime", "Gran Turismo"});

  // 5. Search: one JoinQuery request against the JoinSearchEngine
  // interface. tau = 35% of the max distance, T = 60% of the query size.
  // Every search method implements Execute, so the driver code below works
  // unchanged with PexesoHSearcher, NaiveSearcher, etc. CollectSink gathers
  // the streamed columns into a vector (any ResultSink can consume them
  // incrementally instead).
  FractionalThresholds ft{0.35, 0.6};
  JoinQuery jq;
  jq.vectors = &query;
  jq.thresholds = ft.Resolve(metric, model.dim(), query.size());
  jq.collect_mappings = true;
  PexesoSearcher searcher(&index);
  const JoinSearchEngine& engine = searcher;
  CollectSink sink;
  engine.Execute(jq, &sink, nullptr);
  const auto& results = sink.columns();

  std::printf("\njoinable columns (tau=%.2f, T=%u of %zu):\n",
              jq.thresholds.tau, jq.thresholds.t_abs, query.size());
  for (const auto& r : results) {
    const ColumnMeta& meta = index.catalog().column(r.column);
    std::printf("  column '%s' (table #%u): joinability %.2f, %u matching "
                "records\n",
                meta.column_name.c_str(), meta.table_id, r.joinability,
                r.match_count);
    for (const auto& m : r.mapping) {
      std::printf("    query record %u  <->  repository vector %u\n",
                  m.query_index, m.target_vec);
    }
  }

  // 6. Top-k: the ranking consumption mode. QueryMode::kTopK pushes the
  // running k-th-best bound into the verifier, so columns that cannot make
  // the top-k are abandoned mid-verification instead of exact-verified
  // (watch stats.columns_pruned_topk on a big repository). A deadline
  // and/or CancelToken bounds the query: on expiry Execute returns
  // DeadlineExceeded with whatever completed as partial results.
  JoinQuery ranked = jq;
  ranked.mode = QueryMode::kTopK;
  ranked.k = 2;
  ranked.collect_mappings = false;
  ranked.deadline = Deadline::AfterMillis(500);
  SearchStats topk_stats;
  CollectSink ranked_sink;
  Status st = engine.Execute(ranked, &ranked_sink, &topk_stats);
  std::printf("\ntop-%zu columns by joinability (%s):\n", ranked.k,
              st.ToString().c_str());
  for (const auto& r : ranked_sink.columns()) {
    std::printf("  column %u: joinability %.2f\n", r.column, r.joinability);
  }

  // 7. Batch mode: data-lake discovery is usually many query columns against
  // one index. BatchQueryRunner fans JoinQuery requests out across a thread
  // pool and returns the results (and per-query statuses) in input order.
  std::vector<VectorStore> batch_queries;
  batch_queries.push_back(query);
  batch_queries.push_back(
      repo.EmbedQueryColumn({"Halo", "Forza Horizon", "Wii Sports"}));
  batch_queries.push_back(repo.EmbedQueryColumn({"Tokyo", "Delhi", "Osaka"}));
  // Fractional T resolves per query size, so each request carries its own
  // thresholds.
  std::vector<JoinQuery> batch_requests(batch_queries.size());
  for (size_t i = 0; i < batch_queries.size(); ++i) {
    batch_requests[i].vectors = &batch_queries[i];
    batch_requests[i].thresholds =
        ft.Resolve(metric, model.dim(), batch_queries[i].size());
  }
  BatchQueryRunner runner(&engine, {.num_threads = 2});
  BatchResult batch = runner.Run(batch_requests);
  std::printf("\nbatch of %zu query columns in %.4fs:\n", batch_queries.size(),
              batch.wall_seconds);
  for (size_t i = 0; i < batch.results.size(); ++i) {
    std::printf("  query %zu: %zu joinable column(s) (%s)\n", i,
                batch.results[i].size(), batch.statuses[i].ToString().c_str());
  }
  return 0;
}
