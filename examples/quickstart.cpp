// Quickstart: load CSV tables into a repository, build a PEXESO index, and
// search for columns joinable with a query column.
//
//   $ ./build/examples/quickstart
//
// Everything runs in-process on a few inline tables; see
// semantic_join_demo.cpp for the paper's motivating example and
// out_of_core_search.cpp for the partitioned / on-disk path.

#include <cstdio>

#include "core/batch_runner.h"
#include "core/pexeso_index.h"
#include "core/searcher.h"
#include "embed/char_gram_model.h"
#include "table/csv.h"
#include "table/repository.h"

int main() {
  using namespace pexeso;

  // 1. An embedding model. CharGramModel is the built-in fastText-like
  // subword model; any EmbeddingModel implementation can be plugged in.
  CharGramModel model;

  // 2. Load tables into the repository. The repository detects column types
  // and keeps string/date columns that look like join keys.
  TableRepository repo(&model);
  const char* games_csv =
      "name,year,publisher\n"
      "Mario Party,1998,Nintendo\n"
      "Zelda Ocarina,1998,Nintendo\n"
      "Metroid Prime,2002,Nintendo\n"
      "Halo,2001,Microsoft\n"
      "Forza Horizon,2012,Microsoft\n"
      "Gran Turismo,1997,Sony\n";
  const char* sales_csv =
      "title,units\n"
      "Mario Party,8.9\n"
      "Zelda Ocarine,7.6\n"          // note the typo
      "Metroid prime,2.8\n"          // case drift
      "Halo,6.4\n"
      "Gran Turismo,10.9\n"
      "Wii Sports,82.9\n";
  const char* cities_csv =
      "city,population\n"
      "Tokyo,37400068\n"
      "Delhi,28514000\n"
      "Shanghai,25582000\n"
      "Sao Paulo,21650000\n"
      "Mexico City,21581000\n";
  for (const char* csv : {games_csv, sales_csv, cities_csv}) {
    auto table = Csv::Parse(csv, "table");
    if (!table.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   table.status().ToString().c_str());
      return 1;
    }
    repo.AddTable(table.value());
  }
  std::printf("repository: %zu key columns, %zu record vectors\n",
              repo.catalog().num_columns(), repo.catalog().num_vectors());

  // 3. Build the PEXESO index (pivot selection, pivot mapping, hierarchical
  // grid, inverted index).
  L2Metric metric;
  PexesoOptions opts;
  opts.num_pivots = 3;
  opts.levels = 0;  // 0 = pick m with the cost model
  PexesoIndex index = PexesoIndex::Build(repo.TakeCatalog(), &metric, opts);
  std::printf("index: |P|=%u, m=%u, %.1f KB\n", index.pivots().num_pivots(),
              index.grid().levels(), index.IndexSizeBytes() / 1024.0);

  // 4. A query column (e.g. from the user's local table).
  VectorStore query = repo.EmbedQueryColumn(
      {"Mario Party", "Zelda Ocarina", "Metroid Prime", "Gran Turismo"});

  // 5. Search: tau = 35% of the max distance, T = 60% of the query size.
  // Every search method implements JoinSearchEngine, so the driver code
  // below works unchanged with PexesoHSearcher, NaiveSearcher, etc.
  FractionalThresholds ft{0.35, 0.6};
  SearchOptions sopts;
  sopts.thresholds = ft.Resolve(metric, model.dim(), query.size());
  sopts.collect_mappings = true;
  PexesoSearcher searcher(&index);
  const JoinSearchEngine& engine = searcher;
  auto results = engine.Search(query, sopts, nullptr);

  std::printf("\njoinable columns (tau=%.2f, T=%u of %zu):\n",
              sopts.thresholds.tau, sopts.thresholds.t_abs, query.size());
  for (const auto& r : results) {
    const ColumnMeta& meta = index.catalog().column(r.column);
    std::printf("  column '%s' (table #%u): joinability %.2f, %u matching "
                "records\n",
                meta.column_name.c_str(), meta.table_id, r.joinability,
                r.match_count);
    for (const auto& m : r.mapping) {
      std::printf("    query record %u  <->  repository vector %u\n",
                  m.query_index, m.target_vec);
    }
  }

  // 6. Batch mode: data-lake discovery is usually many query columns against
  // one index. BatchQueryRunner fans them out across a thread pool and
  // returns the results in input order.
  std::vector<VectorStore> batch_queries;
  batch_queries.push_back(query);
  batch_queries.push_back(
      repo.EmbedQueryColumn({"Halo", "Forza Horizon", "Wii Sports"}));
  batch_queries.push_back(repo.EmbedQueryColumn({"Tokyo", "Delhi", "Osaka"}));
  // Fractional T resolves per query size, so each query gets its own
  // options (the per-query Run overload exists exactly for this).
  std::vector<SearchOptions> batch_opts(batch_queries.size());
  for (size_t i = 0; i < batch_queries.size(); ++i) {
    batch_opts[i].thresholds =
        ft.Resolve(metric, model.dim(), batch_queries[i].size());
  }
  BatchQueryRunner runner(&engine, {.num_threads = 2});
  BatchResult batch = runner.Run(batch_queries, batch_opts);
  std::printf("\nbatch of %zu query columns in %.4fs:\n", batch_queries.size(),
              batch.wall_seconds);
  for (size_t i = 0; i < batch.results.size(); ++i) {
    std::printf("  query %zu: %zu joinable column(s)\n", i,
                batch.results[i].size());
  }
  return 0;
}
