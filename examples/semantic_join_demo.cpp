// The paper's motivating example (Table I): a "Population" query table whose
// Race column should join with a "Median household income" table even though
// the race names differ in terminology ("American Indian/Alaska Native" vs
// "Mainland Indigenous"). Equi-join finds only the exact string matches;
// PEXESO joins at the semantic level through the embedding.

#include <cstdio>

#include "core/pexeso_index.h"
#include "core/searcher.h"
#include "embed/char_gram_model.h"
#include "embed/synonym_model.h"
#include "table/csv.h"
#include "table/repository.h"
#include "textjoin/matchers.h"
#include "textjoin/text_search.h"

int main() {
  using namespace pexeso;

  // The income table from the paper's Table I(b).
  const char* income_csv =
      "Col 1,Col 2\n"
      "White,65902\n"
      "Black,41511\n"
      "Mainland Indigenous,44772\n"
      "Pacific Islander,61911\n"
      "Asian,87194\n";
  // An unrelated table that should not be retrieved.
  const char* fruit_csv =
      "fruit,kcal\n"
      "apple,52\n"
      "banana,89\n"
      "cherry,50\n"
      "durian,147\n"
      "elderberry,73\n";

  // The query column from Table I(a).
  std::vector<std::string> query_col = {
      "White", "Black", "American Indian/Alaska Native",
      "Hawaiian/Guamanian/Samoan"};

  // A pre-trained model "knows" that the differing terminologies mean the
  // same thing; the simulated model gets that knowledge from a synonym
  // dictionary (see DESIGN.md, substitution table).
  SynonymDictionary dict;
  dict.Add("american indian/alaska native", "mainland indigenous");
  dict.Add("hawaiian/guamanian/samoan", "pacific islander");
  SynonymModel model(std::make_unique<CharGramModel>(), &dict);

  TableRepository::Options ropts;
  ropts.min_rows = 4;
  TableRepository repo(&model, ropts);
  for (const char* csv : {income_csv, fruit_csv}) {
    auto table = Csv::Parse(csv, csv == income_csv ? "income" : "fruit");
    repo.AddTable(table.value());
  }

  // --- equi-join baseline ---------------------------------------------
  std::vector<std::vector<std::string>> raw_cols;
  for (ColumnId c = 0; c < repo.num_columns(); ++c) {
    raw_cols.push_back(repo.RawValues(c));
  }
  EquiMatcher equi;
  equi.PrepareColumns(&raw_cols);
  TextJoinSearcher text_searcher(&raw_cols);
  auto equi_results = text_searcher.Search(query_col, equi, 0.75);
  std::printf("equi-join, T = 75%% of the query column:\n");
  if (equi_results.empty()) {
    std::printf("  no joinable table found (only %zu/4 records equi-match: "
                "the terminology differs)\n",
                static_cast<size_t>(
                    text_searcher.Search(query_col, equi, 0.01).empty()
                        ? 0
                        : text_searcher.Search(query_col, equi, 0.01)[0]
                              .match_count));
  }

  // --- PEXESO ------------------------------------------------------------
  L2Metric metric;
  VectorStore query = repo.EmbedQueryColumn(query_col);
  PexesoOptions opts;
  opts.num_pivots = 2;
  opts.levels = 3;
  PexesoIndex index = PexesoIndex::Build(repo.TakeCatalog(), &metric, opts);
  FractionalThresholds ft{0.3, 0.75};
  JoinQuery sopts;
  sopts.thresholds = ft.Resolve(metric, model.dim(), query.size());
  sopts.collect_mappings = true;
  PexesoSearcher searcher(&index);
  sopts.vectors = &query;
  auto results = ExecuteCollect(searcher, sopts).ValueOrDie();

  std::printf("\nPEXESO, tau = 30%% max distance, T = 75%%:\n");
  for (const auto& r : results) {
    const ColumnMeta& meta = index.catalog().column(r.column);
    std::printf("  joinable: table '%s' column '%s' (joinability %.2f)\n",
                meta.table_name.c_str(), meta.column_name.c_str(),
                r.joinability);
    for (const auto& m : r.mapping) {
      std::printf("    '%s'  <->  record #%u of '%s'\n",
                  query_col[m.query_index].c_str(), m.target_vec - meta.first,
                  meta.table_name.c_str());
    }
  }
  if (results.empty()) {
    std::printf("  (nothing found -- unexpected)\n");
    return 1;
  }
  return 0;
}
