// bench_shard: scatter-gather sharding and the global top-k floor.
//
// The coordinator's value proposition is that sharding must not change the
// answer and floor sharing must shrink the work: each shard's local
// k-th-best raises one shared CAS-max cell, so sibling shards prune
// against the GLOBAL k-th best instead of only their own. This bench runs
// the same kTopK workload three ways on one lake —
//
//   single  : the unsharded PartitionedPexeso (the oracle),
//   virtual : 4 in-process shard nodes under the coordinator,
//   remote  : 2 real pexeso_server shard executors over loopback TCP —
//
// each with floor sharing on and off, and reports total exact distance
// computations (the counter-based win — meaningful on a 1-core CI box),
// floor update counts, wire bytes moved (remote), and a byte-identical
// results check. Results go to stdout and BENCH_shard.json
// ("BENCH_shard/v1") so successive PRs track the trajectory.

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/server.h"
#include "partition/partitioned_pexeso.h"
#include "partition/partitioner.h"
#include "serve/index_cache.h"
#include "shard/coordinator.h"
#include "shard/part_subset.h"
#include "shard/remote.h"
#include "shard/shard_map.h"
#include "shard/virtual_node.h"

namespace pexeso::bench {
namespace {

struct ShardRow {
  std::string config;
  bool share_floor = false;
  uint64_t distance_computations = 0;
  uint64_t pruned_columns = 0;
  uint64_t floor_updates_sent = 0;
  uint64_t floor_updates_received = 0;
  uint64_t bytes_moved = 0;
  double seconds = 0.0;
  bool identical = true;
};

bool SameResults(const std::vector<JoinableColumn>& a,
                 const std::vector<JoinableColumn>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].column != b[i].column || a[i].match_count != b[i].match_count ||
        a[i].joinability != b[i].joinability) {
      return false;
    }
  }
  return true;
}

/// Runs the whole kTopK workload through `engine`, accumulating into `row`
/// and checking every query against `oracles`.
void RunWorkload(const JoinSearchEngine& engine,
                 const std::vector<VectorStore>& queries,
                 const JoinQuery& prototype,
                 const std::vector<std::vector<JoinableColumn>>& oracles,
                 ShardRow* row) {
  for (size_t i = 0; i < queries.size(); ++i) {
    JoinQuery jq = prototype;
    jq.vectors = &queries[i];
    SearchStats stats;
    CollectSink sink;
    row->seconds += TimeIt([&] {
      const Status st = engine.Execute(jq, &sink, &stats);
      if (!st.ok()) std::abort();
    });
    row->distance_computations += stats.distance_computations;
    row->pruned_columns += stats.columns_pruned_topk;
    row->floor_updates_sent += stats.floor_updates_sent;
    row->floor_updates_received += stats.floor_updates_received;
    row->bytes_moved += stats.shard_bytes_moved;
    row->identical = row->identical && SameResults(sink.columns(), oracles[i]);
  }
}

void WriteShardBenchJson(const std::vector<ShardRow>& rows) {
  const char* path_env = std::getenv("PEXESO_BENCH_SHARD_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_shard.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"BENCH_shard/v1\",\n");
  std::fprintf(f, "  \"hw_threads\": %u,\n",
               std::max(1u, std::thread::hardware_concurrency()));
  std::fprintf(f, "  \"configs\": [");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ShardRow& r = rows[i];
    std::fprintf(
        f,
        "%s\n    {\"config\": \"%s\", \"share_floor\": %s, "
        "\"distance_computations\": %llu, "
        "\"columns_pruned_topk\": %llu, "
        "\"floor_updates_sent\": %llu, "
        "\"floor_updates_received\": %llu, "
        "\"shard_bytes_moved\": %llu, "
        "\"seconds\": %.4f, \"identical\": %s}",
        i == 0 ? "" : ",", r.config.c_str(),
        r.share_floor ? "true" : "false",
        static_cast<unsigned long long>(r.distance_computations),
        static_cast<unsigned long long>(r.pruned_columns),
        static_cast<unsigned long long>(r.floor_updates_sent),
        static_cast<unsigned long long>(r.floor_updates_received),
        static_cast<unsigned long long>(r.bytes_moved), r.seconds,
        r.identical ? "true" : "false");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

void ShardExperiment() {
  namespace fs = std::filesystem;
  const double scale = BenchProfiles::EnvScale();
  VectorLakeOptions profile;
  profile.dim = 50;
  profile.num_columns = static_cast<uint32_t>(300 * scale);
  profile.avg_col_size = 40.0;
  profile.num_clusters = 24;
  ColumnCatalog catalog = GenerateVectorLake(profile);
  std::printf("lake: %zu columns, %zu vectors, dim %u\n",
              catalog.num_columns(), catalog.num_vectors(), catalog.dim());

  const std::string dir =
      (fs::temp_directory_path() / "pexeso_bench_shard").string();
  fs::remove_all(dir);
  L2Metric metric;
  Partitioner::Options popts;
  popts.k = 8;
  auto assignment = Partitioner::JsdClustering(catalog, popts);
  PexesoOptions opts;
  opts.num_pivots = 5;
  opts.levels = 5;
  auto built =
      PartitionedPexeso::Build(catalog, assignment, dir, &metric, opts);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return;
  }
  PartitionedPexeso& parts = built.value();
  serve::IndexCache cache(
      serve::IndexCacheOptions{.budget_bytes = 512u << 20});
  parts.AttachCache(&cache);
  const size_t num_parts = parts.NumParts();
  std::printf("partitioned into %zu parts under %s\n", num_parts,
              dir.c_str());

  const size_t num_queries = std::max<size_t>(4, NumQueries(8));
  std::vector<VectorStore> queries = MakeQueries(profile, num_queries, 20);
  FractionalThresholds ft{0.05, 0.6};
  JoinQuery topk;
  topk.thresholds.tau = ft.Resolve(metric, profile.dim, 20).tau;
  topk.mode = QueryMode::kTopK;
  topk.k = 5;

  // The oracle pass: single-node answers and its work counter.
  std::vector<std::vector<JoinableColumn>> oracles(queries.size());
  ShardRow single;
  single.config = "single";
  for (size_t i = 0; i < queries.size(); ++i) {
    JoinQuery jq = topk;
    jq.vectors = &queries[i];
    SearchStats stats;
    CollectSink sink;
    single.seconds += TimeIt([&] {
      const Status st = parts.Execute(jq, &sink, &stats);
      if (!st.ok()) std::abort();
    });
    single.distance_computations += stats.distance_computations;
    single.pruned_columns += stats.columns_pruned_topk;
    oracles[i] = std::move(sink).TakeColumns();
  }
  std::vector<ShardRow> rows;
  rows.push_back(single);

  std::printf("\nkTopK k=%zu over %zu query columns; floor sharing on/off\n",
              topk.k, queries.size());
  std::printf("%-22s %6s %16s %10s %12s %12s %10s\n", "config", "floor",
              "distance comps", "pruned", "floor sent", "floor rcvd",
              "identical");
  std::printf("%-22s %6s %16llu %10llu %12s %12s %10s\n", "single", "-",
              static_cast<unsigned long long>(single.distance_computations),
              static_cast<unsigned long long>(single.pruned_columns), "-",
              "-", "yes");

  // Virtual 4-shard coordinator, floor sharing on vs off.
  shard::VirtualShardRouter vrouter(&parts, 4);
  for (bool share : {true, false}) {
    shard::ShardedOptions sopts;
    sopts.share_floor = share;
    shard::ShardedEngine sharded(&vrouter, sopts);
    ShardRow row;
    row.config = "virtual-4shard";
    row.share_floor = share;
    RunWorkload(sharded, queries, topk, oracles, &row);
    rows.push_back(row);
    std::printf("%-22s %6s %16llu %10llu %12llu %12llu %10s\n",
                row.config.c_str(), share ? "on" : "off",
                static_cast<unsigned long long>(row.distance_computations),
                static_cast<unsigned long long>(row.pruned_columns),
                static_cast<unsigned long long>(row.floor_updates_sent),
                static_cast<unsigned long long>(row.floor_updates_received),
                row.identical ? "yes" : "NO");
  }

  // Remote 2-shard loopback fleet, floor sharing on vs off.
  const shard::ShardMap map = shard::ShardMap::RoundRobin(num_parts, 2);
  shard::PartSubsetEngine shard0(&parts, map.OwnedParts(0));
  shard::PartSubsetEngine shard1(&parts, map.OwnedParts(1));
  net::ServerOptions sopts0;
  sopts0.expected_dim = profile.dim;
  sopts0.shards_total = 2;
  sopts0.shard_of = 0;
  net::ServerOptions sopts1 = sopts0;
  sopts1.shard_of = 1;
  net::PexesoServer server0(&shard0, sopts0);
  net::PexesoServer server1(&shard1, sopts1);
  if (!server0.Start().ok() || !server1.Start().ok()) {
    std::fprintf(stderr, "loopback shard servers failed to start\n");
    return;
  }
  auto probed = shard::RemoteShardRouter::Probe(
      {{{"127.0.0.1", server0.port()}}, {{"127.0.0.1", server1.port()}}});
  if (!probed.ok()) {
    std::fprintf(stderr, "probe failed: %s\n",
                 probed.status().ToString().c_str());
    return;
  }
  auto router = std::move(probed).ValueOrDie();
  for (bool share : {true, false}) {
    shard::ShardedOptions sopts;
    sopts.share_floor = share;
    shard::ShardedEngine sharded(router.get(), sopts);
    ShardRow row;
    row.config = "remote-2shard";
    row.share_floor = share;
    RunWorkload(sharded, queries, topk, oracles, &row);
    rows.push_back(row);
    std::printf("%-22s %6s %16llu %10llu %12llu %12llu %10s\n",
                row.config.c_str(), share ? "on" : "off",
                static_cast<unsigned long long>(row.distance_computations),
                static_cast<unsigned long long>(row.pruned_columns),
                static_cast<unsigned long long>(row.floor_updates_sent),
                static_cast<unsigned long long>(row.floor_updates_received),
                row.identical ? "yes" : "NO");
  }
  server0.Shutdown();
  server1.Shutdown();

  WriteShardBenchJson(rows);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace pexeso::bench

int main() {
  using namespace pexeso::bench;
  Banner("bench_shard: scatter-gather sharding + global top-k floor",
         "the distributed-discussion scale-out of Section VII");
  ShardExperiment();
  return 0;
}
