// bench_batch: single-thread vs N-thread batch query throughput.
//
// Data-lake discovery is a batch workload — many query columns against one
// shared index — so this bench measures what the BatchQueryRunner buys:
// columns/second at increasing thread counts over a generated lake, with a
// result-equality check against the serial run (the runner's determinism
// contract). Thread counts swept: 1, 2, 4, ..., up to
// PEXESO_BENCH_MAX_THREADS (default 8).

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "core/batch_runner.h"
#include "core/searcher.h"

namespace pexeso::bench {
namespace {

size_t MaxThreads(size_t def = 8) {
  const char* env = std::getenv("PEXESO_BENCH_MAX_THREADS");
  if (env == nullptr) return def;
  const long v = std::atol(env);
  return v <= 0 ? def : static_cast<size_t>(v);
}

void BatchThroughputExperiment(const VectorLakeOptions& profile) {
  ColumnCatalog catalog = GenerateVectorLake(profile);
  std::printf("lake: %zu columns, %zu vectors, dim %u\n",
              catalog.num_columns(), catalog.num_vectors(), catalog.dim());

  L2Metric metric;
  PexesoOptions opts;
  opts.num_pivots = 5;
  opts.levels = 5;
  PexesoIndex index = PexesoIndex::Build(std::move(catalog), &metric, opts);
  PexesoSearcher searcher(&index);

  // A >= 64-column batch, per the workload shape of the motivating systems.
  const size_t batch_size = std::max<size_t>(64, NumQueries(64));
  std::vector<VectorStore> queries = MakeQueries(profile, batch_size, 20);
  FractionalThresholds ft{0.06, 0.6};
  JoinQuery sopts;
  sopts.thresholds = ft.Resolve(metric, profile.dim, 20);

  std::printf("\nbatch: %zu query columns of 20 vectors\n", batch_size);
  std::printf("%8s %12s %14s %10s %10s\n", "threads", "wall (s)", "columns/s",
              "speedup", "identical");

  BatchResult serial;
  double t1 = 0.0;
  for (size_t threads = 1; threads <= MaxThreads(); threads *= 2) {
    BatchQueryRunner runner(&searcher, {.num_threads = threads});
    BatchResult r = runner.Run(BindQueries(queries, sopts));
    if (threads == 1) {
      serial = r;
      t1 = r.wall_seconds;
    }
    bool identical = r.results.size() == serial.results.size();
    for (size_t i = 0; identical && i < r.results.size(); ++i) {
      identical = r.results[i].size() == serial.results[i].size();
      for (size_t j = 0; identical && j < r.results[i].size(); ++j) {
        identical = r.results[i][j].column == serial.results[i][j].column &&
                    r.results[i][j].match_count ==
                        serial.results[i][j].match_count;
      }
    }
    std::printf("%8zu %12.4f %14.1f %9.2fx %10s\n", threads, r.wall_seconds,
                static_cast<double>(batch_size) /
                    std::max(r.wall_seconds, 1e-9),
                t1 / std::max(r.wall_seconds, 1e-9),
                identical ? "yes" : "NO");
  }
}

}  // namespace
}  // namespace pexeso::bench

int main() {
  using namespace pexeso::bench;
  using pexeso::BenchProfiles;
  Banner("bench_batch: parallel batch query runner throughput",
         "the multi-query workload of Section VI at lake scale");
  const double scale = BenchProfiles::EnvScale();
  BatchThroughputExperiment(BenchProfiles::SwdcLike(scale));
  return 0;
}
