// Reproduces Figure 6: (a) the number of exact distance computations per
// method and (b) the index sizes, on the OPEN-like and SWDC-like profiles at
// the default thresholds (tau = 6%, T = 60%).

#include <cstdio>
#include <memory>

#include "baseline/cover_tree.h"
#include "baseline/ept.h"
#include "baseline/pexeso_h.h"
#include "baseline/range_engine.h"
#include "bench_common.h"

namespace pexeso::bench {
namespace {

void RunProfile(const char* name, const VectorLakeOptions& profile) {
  L2Metric metric;
  ColumnCatalog catalog = GenerateVectorLake(profile);
  ColumnCatalog copy = catalog;
  PexesoOptions opts;
  opts.num_pivots = 5;
  opts.levels = 5;
  PexesoIndex index = PexesoIndex::Build(std::move(copy), &metric, opts);
  CoverTree ctree(&catalog.store(), &metric);
  ctree.BuildAll();
  ExtremePivotTable ept(&catalog.store(), &metric);
  ept.Build({});

  const size_t nq = NumQueries(3);
  auto queries = MakeQueries(profile, nq, 40);
  FractionalThresholds ft{0.06, 0.6};
  const SearchThresholds th = ft.Resolve(metric, profile.dim, 40);

  SearchStats s_ctree, s_ept, s_h, s_px;
  for (const auto& q : queries) {
    MustSearch(JoinableRangeSearcher(&catalog, &ctree), q, th, &s_ctree);
    MustSearch(JoinableRangeSearcher(&catalog, &ept), q, th, &s_ept);
    JoinQuery sopts;
    sopts.thresholds = th;
    MustSearch(PexesoHSearcher(&index), q, sopts, &s_h);
    MustSearch(PexesoSearcher(&index), q, sopts, &s_px);
  }

  std::printf("\n%s: %zu vectors, dim %u (%zu queries)\n", name,
              catalog.num_vectors(), catalog.dim(), nq);
  std::printf("(a) distance computations (total over queries)\n");
  std::printf("  %-10s %14llu\n", "CTREE",
              static_cast<unsigned long long>(s_ctree.distance_computations));
  std::printf("  %-10s %14llu\n", "EPT",
              static_cast<unsigned long long>(s_ept.distance_computations));
  std::printf("  %-10s %14llu\n", "PEXESO-H",
              static_cast<unsigned long long>(s_h.distance_computations));
  std::printf("  %-10s %14llu\n", "PEXESO",
              static_cast<unsigned long long>(s_px.distance_computations));
  std::printf("(b) index size (MB)\n");
  std::printf("  %-10s %10.2f\n", "CTREE", ctree.MemoryBytes() / 1e6);
  std::printf("  %-10s %10.2f\n", "EPT", ept.MemoryBytes() / 1e6);
  // PEXESO-H shares PEXESO's structures minus the inverted index.
  std::printf("  %-10s %10.2f\n", "PEXESO-H",
              (index.IndexSizeBytes() - index.inverted_index().MemoryBytes()) /
                  1e6);
  std::printf("  %-10s %10.2f\n", "PEXESO", index.IndexSizeBytes() / 1e6);
}

}  // namespace
}  // namespace pexeso::bench

int main() {
  using namespace pexeso::bench;
  using pexeso::BenchProfiles;
  Banner("bench_fig6: distance computations and index sizes",
         "Figure 6 of the PEXESO paper");
  const double scale = BenchProfiles::EnvScale();
  RunProfile("OPEN-like", BenchProfiles::OpenLike(scale));
  RunProfile("SWDC-like", BenchProfiles::SwdcLike(scale));
  std::printf(
      "\nExpected shape: PEXESO far fewer distance computations than CTREE / "
      "EPT, and fewer than PEXESO-H; PEXESO's index is the\nlargest (within "
      "a small constant factor of the others), the price of the grid + "
      "inverted index.\n");
  return 0;
}
