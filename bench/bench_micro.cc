// Google-benchmark micro-benchmarks of the kernels everything else is built
// from: distance computation, pivot mapping, grid construction, inverted-
// index verification, embedding, and full index build/search at small scale.
// These are regression guards, not paper figures.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/pexeso_index.h"
#include "core/searcher.h"
#include "datagen/vector_lake.h"
#include "embed/char_gram_model.h"
#include "pivot/pivot_selector.h"
#include "vec/metric.h"

namespace pexeso {
namespace {

void BM_L2Distance(benchmark::State& state) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(dim), b(dim);
  for (auto& x : a) x = static_cast<float>(rng.Normal());
  for (auto& x : b) x = static_cast<float>(rng.Normal());
  L2Metric metric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metric.Dist(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2Distance)->Arg(50)->Arg(300);

void BM_PivotMapping(benchmark::State& state) {
  const uint32_t dim = 50, np = 5;
  VectorLakeOptions opts;
  opts.dim = dim;
  opts.num_columns = 50;
  ColumnCatalog catalog = GenerateVectorLake(opts);
  L2Metric metric;
  auto pivots = PivotSelector::SelectRandom(catalog.store().raw().data(),
                                            catalog.num_vectors(), dim, np, 3);
  PivotSpace ps(pivots.data(), np, dim, &metric);
  double out[np];
  size_t i = 0;
  for (auto _ : state) {
    ps.Map(catalog.store().View(i % catalog.num_vectors()), out);
    benchmark::DoNotOptimize(out[0]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PivotMapping);

void BM_GridBuild(benchmark::State& state) {
  const uint32_t np = 5;
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<double> mapped(n * np);
  for (auto& x : mapped) x = rng.UniformDouble() * 2.0;
  for (auto _ : state) {
    HierarchicalGrid grid;
    HierarchicalGrid::Options gopts;
    gopts.levels = 5;
    grid.Build(mapped.data(), n, np, 2.0, gopts);
    benchmark::DoNotOptimize(grid.LeafCells().size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GridBuild)->Arg(1000)->Arg(10000);

void BM_CharGramEmbed(benchmark::State& state) {
  CharGramModel model;
  const std::string text = "mario party superstars deluxe";
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.EmbedRecord(text));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CharGramEmbed);

void BM_IndexBuild(benchmark::State& state) {
  VectorLakeOptions opts;
  opts.dim = 50;
  opts.num_columns = static_cast<uint32_t>(state.range(0));
  ColumnCatalog catalog = GenerateVectorLake(opts);
  L2Metric metric;
  for (auto _ : state) {
    ColumnCatalog copy = catalog;
    PexesoOptions popts;
    popts.num_pivots = 5;
    popts.levels = 5;
    PexesoIndex index = PexesoIndex::Build(std::move(copy), &metric, popts);
    benchmark::DoNotOptimize(index.IndexSizeBytes());
  }
  state.SetItemsProcessed(state.iterations() * catalog.num_vectors());
}
BENCHMARK(BM_IndexBuild)->Arg(200)->Arg(1000);

void BM_PexesoSearch(benchmark::State& state) {
  VectorLakeOptions opts;
  opts.dim = 50;
  opts.num_columns = static_cast<uint32_t>(state.range(0));
  ColumnCatalog catalog = GenerateVectorLake(opts);
  L2Metric metric;
  PexesoOptions popts;
  popts.num_pivots = 5;
  popts.levels = 5;
  PexesoIndex index = PexesoIndex::Build(std::move(catalog), &metric, popts);
  PexesoSearcher searcher(&index);
  VectorStore query = GenerateVectorQuery(opts, 40, 99);
  FractionalThresholds ft{0.06, 0.6};
  SearchOptions sopts;
  sopts.thresholds = ft.Resolve(metric, opts.dim, query.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(searcher.Search(query, sopts, nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PexesoSearch)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace pexeso

BENCHMARK_MAIN();
