// Google-benchmark micro-benchmarks of the kernels everything else is built
// from: distance computation, pivot mapping, grid construction, inverted-
// index verification, embedding, and full index build/search at small scale.
// These are regression guards, not paper figures.
//
// In addition to the Google-Benchmark timing loops, main() always measures
// the distance-kernel throughput trajectory (scalar virtual Metric::Dist vs
// the dispatched KernelSet, per metric x dim) and writes it as
// BENCH_kernels.json so successive PRs can track it; run with
// --benchmark_filter='^$' to emit only the JSON.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/pexeso_index.h"
#include "core/searcher.h"
#include "datagen/vector_lake.h"
#include "embed/char_gram_model.h"
#include "pivot/pivot_selector.h"
#include "vec/kernels.h"
#include "vec/metric.h"

namespace pexeso {
namespace {

void BM_L2Distance(benchmark::State& state) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(dim), b(dim);
  for (auto& x : a) x = static_cast<float>(rng.Normal());
  for (auto& x : b) x = static_cast<float>(rng.Normal());
  L2Metric metric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metric.Dist(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2Distance)->Arg(50)->Arg(300);

// ------------------------------------------------------ distance kernels
//
// One-to-many throughput (pairs/sec) per metric x dim, three variants:
// the per-pair virtual Metric::Dist baseline, the scalar KernelSet tier,
// and the runtime-dispatched tier (AVX2/NEON when the CPU has it).

constexpr size_t kKernelBenchRows = 2048;

std::vector<float> RandomPacked(uint64_t seed, size_t n, uint32_t dim) {
  Rng rng(seed);
  std::vector<float> out(n * dim);
  for (auto& x : out) x = static_cast<float>(rng.Normal());
  return out;
}

void BM_DistManyVirtual(benchmark::State& state, const std::string& name) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  auto metric = MakeMetric(name);
  const auto base = RandomPacked(2, kKernelBenchRows, dim);
  const auto q = RandomPacked(3, 1, dim);
  std::vector<double> out(kKernelBenchRows);
  for (auto _ : state) {
    for (size_t r = 0; r < kKernelBenchRows; ++r) {
      out[r] = metric->Dist(q.data(), base.data() + r * dim, dim);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kKernelBenchRows);
}

void BM_DistManyKernel(benchmark::State& state, const std::string& name,
                       SimdLevel level) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  auto metric = MakeMetric(name);
  const KernelSet* ks = GetKernels(metric->kernels()->kind, level);
  if (ks == nullptr) {
    state.SkipWithError("SIMD level unavailable on this CPU");
    return;
  }
  const auto base = RandomPacked(2, kKernelBenchRows, dim);
  const auto q = RandomPacked(3, 1, dim);
  std::vector<double> out(kKernelBenchRows);
  for (auto _ : state) {
    ks->DistMany(q.data(), base.data(), kKernelBenchRows, dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kKernelBenchRows);
}

void RegisterKernelBenches() {
  for (const char* name : {"l2", "cosine", "l1"}) {
    for (int64_t dim : {50, 100, 300}) {
      benchmark::RegisterBenchmark(
          (std::string("BM_DistMany/") + name + "/virtual").c_str(),
          [name](benchmark::State& s) { BM_DistManyVirtual(s, name); })
          ->Arg(dim);
      benchmark::RegisterBenchmark(
          (std::string("BM_DistMany/") + name + "/scalar").c_str(),
          [name](benchmark::State& s) {
            BM_DistManyKernel(s, name, SimdLevel::kScalar);
          })
          ->Arg(dim);
      const SimdLevel active = ActiveSimdLevel();
      if (active != SimdLevel::kScalar) {
        benchmark::RegisterBenchmark(
            (std::string("BM_DistMany/") + name + "/" + SimdLevelName(active))
                .c_str(),
            [name, active](benchmark::State& s) {
              BM_DistManyKernel(s, name, active);
            })
            ->Arg(dim);
      }
    }
  }
}

// --------------------------------------------- BENCH_kernels.json writer

/// Pairs/sec of `fn` measured over enough repetitions to fill ~80ms.
template <typename Fn>
double MeasurePairsPerSec(size_t pairs_per_call, Fn&& fn) {
  fn();  // warm up caches and the dispatch table
  size_t reps = 1;
  double elapsed = 0.0;
  for (;;) {
    Stopwatch watch;
    for (size_t i = 0; i < reps; ++i) fn();
    elapsed = watch.ElapsedSeconds();
    if (elapsed >= 0.08) break;
    reps *= 4;
  }
  return static_cast<double>(pairs_per_call) * static_cast<double>(reps) /
         elapsed;
}

/// Writes the machine-readable kernel-throughput record. Schema
/// ("BENCH_kernels/v1"): simd_level, then one entry per metric x dim with
/// pairs/sec for the virtual baseline, the scalar kernel tier, the
/// dispatched tier, and speedup = dispatched / virtual.
void WriteKernelBenchJson() {
  const char* path_env = std::getenv("PEXESO_BENCH_KERNELS_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_kernels.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"BENCH_kernels/v1\",\n");
  std::fprintf(f, "  \"hw_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"simd_level\": \"%s\",\n",
               SimdLevelName(ActiveSimdLevel()));
  std::fprintf(f, "  \"pairs_per_call\": %zu,\n  \"results\": [",
               kKernelBenchRows);
  bool first = true;
  for (const char* name : {"l2", "cosine", "l1"}) {
    auto metric = MakeMetric(name);
    for (uint32_t dim : {50u, 100u, 300u}) {
      const auto base = RandomPacked(2, kKernelBenchRows, dim);
      const auto q = RandomPacked(3, 1, dim);
      std::vector<double> out(kKernelBenchRows);
      const double virt =
          MeasurePairsPerSec(kKernelBenchRows, [&] {
            for (size_t r = 0; r < kKernelBenchRows; ++r) {
              out[r] = metric->Dist(q.data(), base.data() + r * dim, dim);
            }
            benchmark::DoNotOptimize(out.data());
          });
      const KernelSet* scalar_ks =
          GetKernels(metric->kernels()->kind, SimdLevel::kScalar);
      const double scalar =
          MeasurePairsPerSec(kKernelBenchRows, [&] {
            scalar_ks->DistMany(q.data(), base.data(), kKernelBenchRows, dim,
                                out.data());
            benchmark::DoNotOptimize(out.data());
          });
      const KernelSet* active_ks = metric->kernels();
      const double dispatched =
          MeasurePairsPerSec(kKernelBenchRows, [&] {
            active_ks->DistMany(q.data(), base.data(), kKernelBenchRows, dim,
                                out.data());
            benchmark::DoNotOptimize(out.data());
          });
      std::fprintf(f,
                   "%s\n    {\"metric\": \"%s\", \"dim\": %u, "
                   "\"virtual_pairs_per_sec\": %.0f, "
                   "\"scalar_kernel_pairs_per_sec\": %.0f, "
                   "\"dispatched_pairs_per_sec\": %.0f, "
                   "\"speedup_vs_virtual\": %.2f}",
                   first ? "" : ",", name, dim, virt, scalar, dispatched,
                   dispatched / virt);
      first = false;
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("kernel throughput written to %s (simd=%s)\n", path.c_str(),
              SimdLevelName(ActiveSimdLevel()));
}

void BM_PivotMapping(benchmark::State& state) {
  const uint32_t dim = 50, np = 5;
  VectorLakeOptions opts;
  opts.dim = dim;
  opts.num_columns = 50;
  ColumnCatalog catalog = GenerateVectorLake(opts);
  L2Metric metric;
  auto pivots = PivotSelector::SelectRandom(catalog.store().raw().data(),
                                            catalog.num_vectors(), dim, np, 3);
  PivotSpace ps(pivots.data(), np, dim, &metric);
  double out[np];
  size_t i = 0;
  for (auto _ : state) {
    ps.Map(catalog.store().View(i % catalog.num_vectors()), out);
    benchmark::DoNotOptimize(out[0]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PivotMapping);

void BM_GridBuild(benchmark::State& state) {
  const uint32_t np = 5;
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<double> mapped(n * np);
  for (auto& x : mapped) x = rng.UniformDouble() * 2.0;
  for (auto _ : state) {
    HierarchicalGrid grid;
    HierarchicalGrid::Options gopts;
    gopts.levels = 5;
    grid.Build(mapped.data(), n, np, 2.0, gopts);
    benchmark::DoNotOptimize(grid.LeafCells().size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GridBuild)->Arg(1000)->Arg(10000);

void BM_CharGramEmbed(benchmark::State& state) {
  CharGramModel model;
  const std::string text = "mario party superstars deluxe";
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.EmbedRecord(text));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CharGramEmbed);

void BM_IndexBuild(benchmark::State& state) {
  VectorLakeOptions opts;
  opts.dim = 50;
  opts.num_columns = static_cast<uint32_t>(state.range(0));
  ColumnCatalog catalog = GenerateVectorLake(opts);
  L2Metric metric;
  for (auto _ : state) {
    ColumnCatalog copy = catalog;
    PexesoOptions popts;
    popts.num_pivots = 5;
    popts.levels = 5;
    PexesoIndex index = PexesoIndex::Build(std::move(copy), &metric, popts);
    benchmark::DoNotOptimize(index.IndexSizeBytes());
  }
  state.SetItemsProcessed(state.iterations() * catalog.num_vectors());
}
BENCHMARK(BM_IndexBuild)->Arg(200)->Arg(1000);

void BM_PexesoSearch(benchmark::State& state) {
  VectorLakeOptions opts;
  opts.dim = 50;
  opts.num_columns = static_cast<uint32_t>(state.range(0));
  ColumnCatalog catalog = GenerateVectorLake(opts);
  L2Metric metric;
  PexesoOptions popts;
  popts.num_pivots = 5;
  popts.levels = 5;
  PexesoIndex index = PexesoIndex::Build(std::move(catalog), &metric, popts);
  PexesoSearcher searcher(&index);
  VectorStore query = GenerateVectorQuery(opts, 40, 99);
  FractionalThresholds ft{0.06, 0.6};
  JoinQuery sopts;
  sopts.thresholds = ft.Resolve(metric, opts.dim, query.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustSearch(searcher, query, sopts, nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PexesoSearch)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace pexeso

int main(int argc, char** argv) {
  pexeso::RegisterKernelBenches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  pexeso::WriteKernelBenchJson();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
