// Reproduces Table VI: parameter tuning in PEXESO. For |P| in {1,3,5,7,9}
// and m in {2,4,6,8} report index construction time, blocking time, and the
// total search (block + verify) time, averaged over a query workload, on the
// OPEN-like and SWDC-like profiles. Also prints the cost-model's suggested m
// (Section III-E "justification of cost analysis").

#include <cstdio>

#include "bench_common.h"
#include "core/cost_model.h"

namespace pexeso::bench {
namespace {

void RunProfile(const char* name, const VectorLakeOptions& profile,
                double tau_frac, double t_frac) {
  L2Metric metric;
  ColumnCatalog base = GenerateVectorLake(profile);
  const size_t nq = NumQueries(3);
  auto queries = MakeQueries(profile, nq, 40);

  std::printf("\n%s: %zu columns, %zu vectors, dim %u, %zu queries/cell\n",
              name, base.num_columns(), base.num_vectors(), base.dim(), nq);
  std::printf("%3s %3s %12s %12s %16s\n", "|P|", "m", "index (s)",
              "block (s)", "block+verify (s)");

  for (uint32_t p : {1u, 3u, 5u, 7u, 9u}) {
    for (uint32_t m : {2u, 4u, 6u, 8u}) {
      PexesoOptions opts;
      opts.num_pivots = p;
      opts.levels = m;
      ColumnCatalog catalog = base;  // copy: Build consumes it
      double index_time = 0.0;
      PexesoIndex index = [&] {
        Stopwatch w;
        PexesoIndex idx = PexesoIndex::Build(std::move(catalog), &metric, opts);
        index_time = w.ElapsedSeconds();
        return idx;
      }();
      PexesoSearcher searcher(&index);
      SearchStats stats;
      FractionalThresholds ft{tau_frac, t_frac};
      double total = 0.0;
      for (const auto& q : queries) {
        JoinQuery sopts;
        sopts.thresholds = ft.Resolve(metric, profile.dim, q.size());
        total += TimeIt([&] { MustSearch(searcher, q, sopts, &stats); });
      }
      std::printf("%3u %3u %12.3f %12.4f %16.4f\n", p, m, index_time,
                  stats.block_seconds / static_cast<double>(nq),
                  total / static_cast<double>(nq));
    }
  }

  // Cost-model justification: suggested m for the default pivot count.
  {
    PexesoOptions opts;
    opts.num_pivots = 5;
    opts.levels = 8;  // build once to obtain mapped vectors
    ColumnCatalog catalog = base;
    PexesoIndex index = PexesoIndex::Build(std::move(catalog), &metric, opts);
    CostModel model(index.mapped().data(), index.catalog().num_vectors(),
                    index.pivots().num_pivots(), index.pivots().AxisExtent());
    Rng rng(5150);
    auto workload = CostModel::SampleWorkload(
        index.catalog(), index.mapped().data(), index.pivots().num_pivots(),
        index.pivots().AxisExtent(), 24, &rng);
    double fractional = 0.0;
    const uint32_t best = model.OptimalM(workload, 10, 4.0, &fractional);
    std::printf("cost-model optimal m: %u (%.1f before ceiling)\n", best,
                fractional);
  }
}

}  // namespace
}  // namespace pexeso::bench

int main() {
  using namespace pexeso::bench;
  using pexeso::BenchProfiles;
  Banner("bench_table6: parameter tuning (|P| x m)",
         "Table VI of the PEXESO paper");
  const double scale = BenchProfiles::EnvScale();
  RunProfile("OPEN-like", BenchProfiles::OpenLike(scale), 0.06, 0.6);
  RunProfile("SWDC-like", BenchProfiles::SwdcLike(scale), 0.06, 0.6);
  std::printf(
      "\nExpected shape: index time grows with |P| and m; search time is "
      "U-shaped in both (more filtering vs. more cells);\nblocking time is "
      "negligible vs verification; cost-model m close to the empirical "
      "optimum.\n");
  return 0;
}
