// Reproduces Table VII: search-time efficiency of CTREE, EPT, PEXESO-H and
// PEXESO for T in {20,40,60,80}% x tau in {2,4,6,8}% on the OPEN-like and
// SWDC-like profiles (in-memory) and the LWDC-like profile (out-of-core via
// disk partitions, Section IV). Baselines that blow the per-cell wall budget
// are reported as ">budget", mirroring the paper's ">7200" entries.

#include <cstdio>
#include <filesystem>
#include <memory>

#include "baseline/cover_tree.h"
#include "baseline/ept.h"
#include "baseline/pexeso_h.h"
#include "baseline/range_engine.h"
#include "bench_common.h"
#include "partition/partitioned_pexeso.h"

namespace pexeso::bench {
namespace {

constexpr uint32_t kPivots = 5;
constexpr uint32_t kLevels = 5;

struct InMemoryDataset {
  ColumnCatalog catalog;
  std::unique_ptr<PexesoIndex> index;
  std::unique_ptr<CoverTree> ctree;
  std::unique_ptr<ExtremePivotTable> ept;
  L2Metric metric;

  explicit InMemoryDataset(const VectorLakeOptions& profile)
      : catalog(GenerateVectorLake(profile)) {
    ColumnCatalog copy = catalog;
    PexesoOptions opts;
    opts.num_pivots = kPivots;
    opts.levels = kLevels;
    index = std::make_unique<PexesoIndex>(
        PexesoIndex::Build(std::move(copy), &metric, opts));
    ctree = std::make_unique<CoverTree>(&catalog.store(), &metric);
    ctree->BuildAll();
    ept = std::make_unique<ExtremePivotTable>(&catalog.store(), &metric);
    ept->Build({});
  }
};

/// Times `fn` over the workload; returns -1 when the budget was blown (the
/// remaining cells of that method are then skipped).
double TimedOrBudget(const std::vector<VectorStore>& queries, double budget,
                     const std::function<void(const VectorStore&)>& fn) {
  Stopwatch w;
  for (const auto& q : queries) {
    fn(q);
    if (w.ElapsedSeconds() > budget) return -1.0;
  }
  return w.ElapsedSeconds() / static_cast<double>(queries.size());
}

void PrintCell(double t) {
  if (t < 0) {
    std::printf(" %10s", ">budget");
  } else {
    std::printf(" %10.4f", t);
  }
}

void RunInMemory(const char* name, const VectorLakeOptions& profile) {
  InMemoryDataset ds(profile);
  const size_t nq = NumQueries(2);
  auto queries = MakeQueries(profile, nq, 40);
  const double budget = CellBudget();

  std::printf("\n%s (in-memory): %zu columns, %zu vectors, dim %u\n", name,
              ds.catalog.num_columns(), ds.catalog.num_vectors(),
              ds.catalog.dim());
  std::printf("%4s %4s %10s %10s %10s %10s   (avg seconds/query)\n", "T%",
              "tau%", "CTREE", "EPT", "PEXESO-H", "PEXESO");

  bool ctree_dead = false, ept_dead = false;
  for (int T : {20, 40, 60, 80}) {
    for (int tau : {2, 4, 6, 8}) {
      FractionalThresholds ft{tau / 100.0, T / 100.0};
      const SearchThresholds th =
          ft.Resolve(ds.metric, profile.dim, queries[0].size());

      double t_ctree = -1.0, t_ept = -1.0;
      if (!ctree_dead) {
        JoinableRangeSearcher s(&ds.catalog, ds.ctree.get());
        t_ctree = TimedOrBudget(queries, budget, [&](const VectorStore& q) {
          MustSearch(s, q, th, nullptr);
        });
        ctree_dead = t_ctree < 0;
      }
      if (!ept_dead) {
        JoinableRangeSearcher s(&ds.catalog, ds.ept.get());
        t_ept = TimedOrBudget(queries, budget, [&](const VectorStore& q) {
          MustSearch(s, q, th, nullptr);
        });
        ept_dead = t_ept < 0;
      }
      PexesoHSearcher hsearcher(ds.index.get());
      const double t_h =
          TimedOrBudget(queries, budget, [&](const VectorStore& q) {
            JoinQuery sopts;
            sopts.thresholds = th;
            MustSearch(hsearcher, q, sopts, nullptr);
          });
      PexesoSearcher searcher(ds.index.get());
      const double t_px =
          TimedOrBudget(queries, budget, [&](const VectorStore& q) {
            JoinQuery sopts;
            sopts.thresholds = th;
            MustSearch(searcher, q, sopts, nullptr);
          });
      std::printf("%4d %4d", T, tau);
      PrintCell(t_ctree);
      PrintCell(t_ept);
      PrintCell(t_h);
      PrintCell(t_px);
      std::printf("\n");
    }
  }
}

void RunOutOfCore(const char* name, const VectorLakeOptions& profile,
                  uint32_t num_parts) {
  namespace fs = std::filesystem;
  L2Metric metric;
  ColumnCatalog catalog = GenerateVectorLake(profile);
  const std::string dir =
      (fs::temp_directory_path() / "pexeso_t7_parts").string();
  fs::remove_all(dir);
  Partitioner::Options popts;
  popts.k = num_parts;
  auto assign = Partitioner::JsdClustering(catalog, popts);
  PexesoOptions opts;
  opts.num_pivots = kPivots;
  opts.levels = kLevels;
  auto parts = PartitionedPexeso::Build(catalog, assign, dir, &metric, opts);
  if (!parts.ok()) {
    std::printf("out-of-core build failed: %s\n",
                parts.status().ToString().c_str());
    return;
  }
  // CTREE and EPT run in-memory against the full catalog: a LOWER BOUND of
  // their true out-of-core cost (they have no partition protocol; the paper
  // reports them as ">7200" at full scale, which the budget mechanism
  // reproduces when the data is scaled up). PEXESO-H runs under the same
  // partitioned load-one-at-a-time protocol as PEXESO.
  CoverTree ctree(&catalog.store(), &metric);
  ctree.BuildAll();
  ExtremePivotTable ept(&catalog.store(), &metric);
  ept.Build({});

  const size_t nq = NumQueries(2);
  auto queries = MakeQueries(profile, nq, 40);
  const double budget = CellBudget();

  std::printf("\n%s (out-of-core, %zu partitions on disk, %.1f MB): "
              "%zu columns, %zu vectors\n",
              name, parts.value().num_partitions(),
              parts.value().DiskBytes() / 1e6, catalog.num_columns(),
              catalog.num_vectors());
  std::printf("%4s %4s %10s %10s %10s %10s   (avg seconds/query, PEXESO "
              "includes partition I/O)\n",
              "T%", "tau%", "CTREE", "EPT", "PEXESO-H", "PEXESO");

  bool ctree_dead = false, ept_dead = false, h_dead = false;
  for (int T : {20, 40, 60, 80}) {
    for (int tau : {2, 4, 6, 8}) {
      FractionalThresholds ft{tau / 100.0, T / 100.0};
      const SearchThresholds th =
          ft.Resolve(metric, profile.dim, queries[0].size());
      double t_ctree = -1.0, t_ept = -1.0, t_h = -1.0;
      if (!ctree_dead) {
        JoinableRangeSearcher s(&catalog, &ctree);
        t_ctree = TimedOrBudget(queries, budget, [&](const VectorStore& q) {
          MustSearch(s, q, th, nullptr);
        });
        ctree_dead = t_ctree < 0;
      }
      if (!ept_dead) {
        JoinableRangeSearcher s(&catalog, &ept);
        t_ept = TimedOrBudget(queries, budget, [&](const VectorStore& q) {
          MustSearch(s, q, th, nullptr);
        });
        ept_dead = t_ept < 0;
      }
      if (!h_dead) {
        t_h = TimedOrBudget(queries, budget * 4, [&](const VectorStore& q) {
          JoinQuery sopts;
          sopts.thresholds = th;
          parts.value().SearchPartitions(BindQuery(q, sopts), nullptr, nullptr, PartitionedPexeso::Engine::kPexesoH);
        });
        h_dead = t_h < 0;
      }
      const double t_px =
          TimedOrBudget(queries, budget * 4, [&](const VectorStore& q) {
            JoinQuery sopts;
            sopts.thresholds = th;
            parts.value().SearchPartitions(BindQuery(q, sopts), nullptr);
          });
      std::printf("%4d %4d", T, tau);
      PrintCell(t_ctree);
      PrintCell(t_ept);
      PrintCell(t_h);
      PrintCell(t_px);
      std::printf("\n");
    }
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace pexeso::bench

int main() {
  using namespace pexeso::bench;
  using pexeso::BenchProfiles;
  Banner("bench_table7: search-time efficiency sweep (T x tau)",
         "Table VII of the PEXESO paper");
  const double scale = BenchProfiles::EnvScale();
  RunInMemory("OPEN-like", BenchProfiles::OpenLike(scale));
  RunInMemory("SWDC-like", BenchProfiles::SwdcLike(scale));
  RunOutOfCore("LWDC-like", BenchProfiles::LwdcLike(scale), 10);
  std::printf(
      "\nExpected shape: PEXESO fastest everywhere; PEXESO-H between PEXESO "
      "and the range-query baselines; times grow with tau and\nwith T (early "
      "termination weakens); non-blocking baselines hit the budget on the "
      "out-of-core profile first.\n");
  return 0;
}
