// Reproduces Figure 7: (a) PCA-based vs random pivot selection -- search CPU
// time as the number of vectors grows; (b) data partitioning strategies --
// JSD clustering vs average-k-means vs random, search time as the number of
// partitions grows (in-memory partition search so only partition quality,
// not disk speed, is measured).

#include <cstdio>
#include <filesystem>

#include "bench_common.h"
#include "partition/partitioned_pexeso.h"

namespace pexeso::bench {
namespace {

void PivotSelectionExperiment(const VectorLakeOptions& base) {
  std::printf("\n(a) pivot selection: search CPU time (s) vs #vectors\n");
  std::printf("%10s %12s %12s\n", "#vectors", "PCA-based", "Random");
  L2Metric metric;
  const size_t nq = NumQueries(4);
  for (double mult : {0.25, 0.5, 0.75, 1.0}) {
    VectorLakeOptions profile = base;
    profile.num_columns =
        std::max<uint32_t>(10, static_cast<uint32_t>(base.num_columns * mult));
    ColumnCatalog catalog = GenerateVectorLake(profile);
    auto queries = MakeQueries(profile, nq, 40);
    FractionalThresholds ft{0.06, 0.6};

    double times[2] = {0.0, 0.0};
    size_t num_vectors = catalog.num_vectors();
    for (int strategy = 0; strategy < 2; ++strategy) {
      PexesoOptions opts;
      opts.num_pivots = 5;
      opts.levels = 5;
      opts.pivot_strategy = strategy == 0
                                ? PexesoOptions::PivotStrategy::kPca
                                : PexesoOptions::PivotStrategy::kRandom;
      ColumnCatalog copy = catalog;
      PexesoIndex index = PexesoIndex::Build(std::move(copy), &metric, opts);
      PexesoSearcher searcher(&index);
      for (const auto& q : queries) {
        JoinQuery sopts;
        sopts.thresholds = ft.Resolve(metric, profile.dim, q.size());
        times[strategy] += TimeIt([&] { MustSearch(searcher, q, sopts, nullptr); });
      }
    }
    std::printf("%10zu %12.4f %12.4f\n", num_vectors, times[0], times[1]);
  }
}

void PartitioningExperiment(const VectorLakeOptions& profile) {
  namespace fs = std::filesystem;
  std::printf("\n(b) partitioning: search time (s) vs #partitions\n");
  std::printf("%12s %10s %16s %10s\n", "#partitions", "JSD", "Avg-k-means",
              "Random");
  L2Metric metric;
  ColumnCatalog catalog = GenerateVectorLake(profile);
  const size_t nq = NumQueries(4);
  auto queries = MakeQueries(profile, nq, 40);
  FractionalThresholds ft{0.06, 0.6};
  PexesoOptions opts;
  opts.num_pivots = 5;
  opts.levels = 5;

  for (uint32_t k : {2u, 4u, 6u, 8u}) {
    double times[3] = {0, 0, 0};
    for (int strategy = 0; strategy < 3; ++strategy) {
      Partitioner::Options popts;
      popts.k = k;
      PartitionAssignment assign;
      switch (strategy) {
        case 0: assign = Partitioner::JsdClustering(catalog, popts); break;
        case 1: assign = Partitioner::AverageKMeans(catalog, popts); break;
        default: assign = Partitioner::Random(catalog, popts); break;
      }
      const std::string dir =
          (fs::temp_directory_path() / "pexeso_fig7_parts").string();
      fs::remove_all(dir);
      auto parts =
          PartitionedPexeso::Build(catalog, assign, dir, &metric, opts);
      if (!parts.ok()) continue;
      for (const auto& q : queries) {
        JoinQuery sopts;
        sopts.thresholds = ft.Resolve(metric, profile.dim, q.size());
        double io = 0.0;
        Stopwatch w;
        auto r = parts.value().SearchPartitions(BindQuery(q, sopts), nullptr, &io);
        // Exclude disk I/O: the figure compares partition *quality* (how
        // well each part's pivots filter), not disk throughput.
        times[strategy] += w.ElapsedSeconds() - io;
      }
      fs::remove_all(dir);
    }
    std::printf("%12u %10.4f %16.4f %10.4f\n", k, times[0], times[1],
                times[2]);
  }
}

}  // namespace
}  // namespace pexeso::bench

int main() {
  using namespace pexeso::bench;
  using pexeso::BenchProfiles;
  Banner("bench_fig7: pivot selection and data partitioning",
         "Figure 7 of the PEXESO paper");
  const double scale = BenchProfiles::EnvScale();
  PivotSelectionExperiment(BenchProfiles::LwdcLike(scale * 0.5));
  PartitioningExperiment(BenchProfiles::LwdcLike(scale * 0.5));
  std::printf(
      "\nExpected shape: PCA pivots beat random, and the gap widens with "
      "more vectors; JSD partitioning beats average-k-means,\nwhich beats "
      "random, across partition counts.\n");
  return 0;
}
