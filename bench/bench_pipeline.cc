// bench_pipeline: the staged verification pipeline's two levers, measured.
//
//   tile        many-to-many CmpTileNormed tiles vs the pre-pipeline
//               per-pair Cmp1Normed loop (and the intermediate one-to-many
//               row sweep) on a gathered candidate set — pairs/sec per
//               metric. This is the arithmetic-intensity win: a tile
//               streams each candidate row once per 4-row block instead of
//               once per (query, candidate) pair.
//   candidate   stage-1 throughput (DaaT merge -> CandidateBlocks). The
//               per-query heap is now bulk make_heap-initialized (O(k));
//               the old loop cleared a priority_queue element-by-element
//               and re-pushed every cursor (O(k log k)) — this cell guards
//               against that regressing.
//   scaling     intra-query thread scaling of one large query column
//               (JoinQuery::intra_query_threads 1/2/4/8), with a
//               byte-identical check against the serial search. Wall-clock
//               speedup needs physical cores; hw_threads is recorded so a
//               1-core CI box's ~1.0x reads as what it is.
//
// Results go to stdout and BENCH_pipeline.json ("BENCH_pipeline/v1"), like
// BENCH_kernels.json / BENCH_serve.json, so successive PRs track the
// trajectory.

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/blocker.h"
#include "core/verify_pipeline.h"
#include "vec/kernels.h"

namespace pexeso::bench {
namespace {

/// Pairs/sec of `fn` over enough repetitions to fill ~80ms.
template <typename Fn>
double MeasurePairsPerSec(size_t pairs_per_call, Fn&& fn) {
  fn();  // warm up caches and the dispatch table
  size_t reps = 1;
  double elapsed = 0.0;
  for (;;) {
    Stopwatch watch;
    for (size_t i = 0; i < reps; ++i) fn();
    elapsed = watch.ElapsedSeconds();
    if (elapsed >= 0.08) break;
    reps *= 4;
  }
  return static_cast<double>(pairs_per_call) * static_cast<double>(reps) /
         elapsed;
}

std::vector<float> RandomPacked(uint64_t seed, size_t n, uint32_t dim) {
  Rng rng(seed);
  std::vector<float> out(n * dim);
  for (auto& x : out) x = static_cast<float>(rng.Normal());
  return out;
}

struct TileRow {
  const char* metric;
  uint32_t dim;
  double per_pair = 0.0;
  double one_to_many = 0.0;
  double tile = 0.0;
};

/// Tiled vs per-pair verification throughput over a synthetic gathered
/// candidate set: kRows query rows against kCands candidates, the shape the
/// pipeline's EvaluateGroup produces.
TileRow TileExperiment(const char* metric_name, uint32_t dim) {
  constexpr size_t kRows = 8;     // pipeline tile height (kTileRows)
  constexpr size_t kCands = 2048; // a hot column's candidate list
  auto metric = MakeMetric(metric_name);
  const KernelSet* ks = metric->kernels();
  const auto qs = RandomPacked(2, kRows, dim);
  const auto base = RandomPacked(3, kCands, dim);
  std::vector<float> bnorms(kCands);
  ks->ops->norms(base.data(), kCands, dim, bnorms.data());
  std::vector<double> qnorms(kRows);
  for (size_t r = 0; r < kRows; ++r) {
    qnorms[r] = ks->QueryNorm(qs.data() + r * dim, dim);
  }
  const size_t pairs = kRows * kCands;
  std::vector<double> out(pairs);

  TileRow row{metric_name, dim};
  // The pre-pipeline idiom: one Cmp1Normed call per (query, candidate).
  row.per_pair = MeasurePairsPerSec(pairs, [&] {
    for (size_t r = 0; r < kRows; ++r) {
      for (size_t c = 0; c < kCands; ++c) {
        out[r * kCands + c] =
            ks->Cmp1Normed(qs.data() + r * dim, base.data() + c * dim, dim,
                           qnorms[r], bnorms[c]);
      }
    }
  });
  // One-to-many per row: batched over candidates, but the candidate matrix
  // is re-streamed once per row.
  row.one_to_many = MeasurePairsPerSec(pairs, [&] {
    for (size_t r = 0; r < kRows; ++r) {
      ks->CmpTileNormed(qs.data() + r * dim, &qnorms[r], base.data(),
                        bnorms.data(), 1, kCands, dim, out.data() + r * kCands);
    }
  });
  // The pipeline's many-to-many tile.
  row.tile = MeasurePairsPerSec(pairs, [&] {
    ks->CmpTileNormed(qs.data(), qnorms.data(), base.data(), bnorms.data(),
                      kRows, kCands, dim, out.data());
  });
  return row;
}

struct ScaleRow {
  size_t threads;
  double wall_seconds = 0.0;
  bool identical = true;
};

struct CandidateGenResult {
  uint64_t blocks = 0;
  double seconds = 0.0;
  double blocks_per_sec = 0.0;
};

bool SameResults(const std::vector<JoinableColumn>& a,
                 const std::vector<JoinableColumn>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].column != b[i].column || a[i].match_count != b[i].match_count) {
      return false;
    }
  }
  return true;
}

void WritePipelineBenchJson(const std::vector<TileRow>& tiles,
                            const CandidateGenResult& gen,
                            const std::vector<ScaleRow>& scaling) {
  const char* path_env = std::getenv("PEXESO_BENCH_PIPELINE_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_pipeline.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"BENCH_pipeline/v1\",\n");
  std::fprintf(f, "  \"simd_level\": \"%s\",\n",
               SimdLevelName(ActiveSimdLevel()));
  std::fprintf(f, "  \"hw_threads\": %u,\n",
               std::max(1u, std::thread::hardware_concurrency()));
  std::fprintf(f, "  \"tile\": [");
  for (size_t i = 0; i < tiles.size(); ++i) {
    const TileRow& t = tiles[i];
    std::fprintf(f,
                 "%s\n    {\"metric\": \"%s\", \"dim\": %u, "
                 "\"per_pair_pairs_per_sec\": %.0f, "
                 "\"one_to_many_pairs_per_sec\": %.0f, "
                 "\"tile_pairs_per_sec\": %.0f, "
                 "\"tile_speedup_vs_per_pair\": %.2f}",
                 i == 0 ? "" : ",", t.metric, t.dim, t.per_pair, t.one_to_many,
                 t.tile, t.tile / std::max(t.per_pair, 1e-9));
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f,
               "  \"candidate_gen\": {\"blocks\": %llu, \"seconds\": %.6f, "
               "\"blocks_per_sec\": %.0f, \"note\": \"bulk make_heap init "
               "per query record; was per-entry push after element-wise "
               "clear\"},\n",
               static_cast<unsigned long long>(gen.blocks), gen.seconds,
               gen.blocks_per_sec);
  const double serial_wall =
      scaling.empty() ? 0.0 : scaling.front().wall_seconds;
  std::fprintf(f, "  \"intra_query_scaling\": [");
  for (size_t i = 0; i < scaling.size(); ++i) {
    std::fprintf(f,
                 "%s\n    {\"threads\": %zu, \"wall_seconds\": %.4f, "
                 "\"speedup_vs_serial\": %.2f, \"identical\": %s}",
                 i == 0 ? "" : ",", scaling[i].threads,
                 scaling[i].wall_seconds,
                 serial_wall / std::max(scaling[i].wall_seconds, 1e-9),
                 scaling[i].identical ? "true" : "false");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

void PipelineExperiment() {
  // ---------------------------------------------------------------- tiles
  std::printf("\ntiled vs per-pair verification (pairs/sec, 8 rows x 2048 "
              "candidates)\n");
  std::printf("%8s %5s %14s %14s %14s %9s\n", "metric", "dim", "per-pair",
              "one-to-many", "tile", "speedup");
  std::vector<TileRow> tiles;
  for (const char* name : {"l2", "cosine", "l1"}) {
    for (uint32_t dim : {50u, 300u}) {
      TileRow row = TileExperiment(name, dim);
      tiles.push_back(row);
      std::printf("%8s %5u %14.0f %14.0f %14.0f %8.2fx\n", row.metric,
                  row.dim, row.per_pair, row.one_to_many, row.tile,
                  row.tile / std::max(row.per_pair, 1e-9));
    }
  }

  // ------------------------------------------------- search-shaped corpus
  const double scale = BenchProfiles::EnvScale();
  VectorLakeOptions profile;
  profile.dim = 50;
  profile.num_columns = static_cast<uint32_t>(400 * scale);
  profile.avg_col_size = 48.0;
  profile.num_clusters = 32;
  ColumnCatalog catalog = GenerateVectorLake(profile);
  std::printf("\nlake: %zu columns, %zu vectors, dim %u\n",
              catalog.num_columns(), catalog.num_vectors(), catalog.dim());
  L2Metric metric;
  PexesoOptions popts;
  popts.num_pivots = 5;
  popts.levels = 5;
  PexesoIndex index = PexesoIndex::Build(std::move(catalog), &metric, popts);
  PexesoSearcher searcher(&index);

  // One LARGE query column: the intra-query case batch parallelism can't
  // help with.
  VectorStore query = GenerateVectorQuery(profile, 1024, 99);
  FractionalThresholds ft{0.06, 0.5};
  JoinQuery sopts;
  sopts.thresholds = ft.Resolve(metric, profile.dim, query.size());

  // -------------------------------------------- stage-1 regression guard
  const PivotSpace& ps = index.pivots();
  const std::vector<double> mapped_q =
      ps.MapAll(query.raw().data(), query.size());
  HierarchicalGrid hgq;
  HierarchicalGrid::Options gopts;
  gopts.levels = index.grid().levels();
  gopts.store_leaf_items = true;
  hgq.Build(mapped_q.data(), query.size(), ps.num_pivots(), ps.AxisExtent(),
            gopts);
  GridBlocker blocker(&index.grid());
  SearchStats gen_stats;
  const BlockResult blocks = blocker.Run(hgq, mapped_q, sopts.thresholds.tau,
                                         sopts.ablation, &gen_stats);
  VerifyPipeline pipeline(&index);
  CandidateGenResult gen;
  {
    CandidateSet cands;
    Stopwatch watch;
    pipeline.GenerateCandidates(blocks, static_cast<uint32_t>(query.size()),
                                &cands, &gen_stats);
    gen.seconds = watch.ElapsedSeconds();
    gen.blocks = cands.blocks.size();
    gen.blocks_per_sec =
        static_cast<double>(gen.blocks) / std::max(gen.seconds, 1e-9);
  }
  std::printf("\ncandidate generation: %llu blocks in %.4fs (%.0f blocks/s)\n"
              "  note: per-query DaaT heap is bulk make_heap-initialized "
              "(O(k)); the old\n  loop drained a priority_queue and "
              "re-pushed every cursor (O(k log k)).\n",
              static_cast<unsigned long long>(gen.blocks), gen.seconds,
              gen.blocks_per_sec);

  // ------------------------------------------------ intra-query scaling
  SearchStats serial_stats;
  std::vector<JoinableColumn> serial_results;
  std::vector<ScaleRow> scaling;
  std::printf("\nintra-query scaling, one query column of %zu vectors "
              "(hw threads: %u)\n",
              query.size(), std::thread::hardware_concurrency());
  std::printf("%8s %12s %9s %10s\n", "threads", "wall (s)", "speedup",
              "identical");
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    JoinQuery topts = sopts;
    topts.intra_query_threads = threads;
    std::vector<JoinableColumn> results;
    // Best of three: thread-pool spin-up and scheduling noise dominate the
    // tail on small boxes.
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      const double t = TimeIt([&] {
        results = MustSearch(searcher, query, topts,
                                  threads == 1 ? &serial_stats : nullptr);
      });
      best = std::min(best, t);
    }
    ScaleRow row{threads, best, true};
    if (threads == 1) {
      serial_results = results;
    } else {
      row.identical = SameResults(results, serial_results);
    }
    scaling.push_back(row);
    std::printf("%8zu %12.4f %8.2fx %10s\n", threads, best,
                scaling.front().wall_seconds / std::max(best, 1e-9),
                row.identical ? "yes" : "NO");
  }

  WritePipelineBenchJson(tiles, gen, scaling);
}

}  // namespace
}  // namespace pexeso::bench

int main() {
  using namespace pexeso::bench;
  Banner("bench_pipeline: staged verification pipeline",
         "the tiled-verification and intra-query-parallelism levers");
  PipelineExperiment();
  return 0;
}
