// Reproduces Figure 10: scalability of PEXESO vs PEXESO-H on the LWDC-like
// profile -- search time and index size when varying (a,b) the fraction of
// columns, (c,d) the fraction of vectors per column, and (e) the embedding
// dimensionality.

#include <cstdio>

#include "baseline/pexeso_h.h"
#include "bench_common.h"

namespace pexeso::bench {
namespace {

struct Cell {
  double t_pexeso = 0.0;
  double t_h = 0.0;
  double index_mb = 0.0;
};

Cell Measure(const ColumnCatalog& catalog, const VectorLakeOptions& profile) {
  L2Metric metric;
  ColumnCatalog copy = catalog;
  PexesoOptions opts;
  opts.num_pivots = 5;
  opts.levels = 5;
  PexesoIndex index = PexesoIndex::Build(std::move(copy), &metric, opts);
  const size_t nq = NumQueries(4);
  auto queries = MakeQueries(profile, nq, 40);
  FractionalThresholds ft{0.06, 0.6};

  Cell cell;
  PexesoSearcher searcher(&index);
  PexesoHSearcher hsearcher(&index);
  for (const auto& q : queries) {
    JoinQuery sopts;
    sopts.thresholds = ft.Resolve(metric, profile.dim, q.size());
    cell.t_pexeso += TimeIt([&] { MustSearch(searcher, q, sopts, nullptr); });
    cell.t_h += TimeIt([&] { MustSearch(hsearcher, q, sopts, nullptr); });
  }
  cell.t_pexeso /= static_cast<double>(nq);
  cell.t_h /= static_cast<double>(nq);
  cell.index_mb = index.IndexSizeBytes() / (1024.0 * 1024.0);
  return cell;
}

/// Subsamples a fraction of rows from every column (Figure 10c/d protocol:
/// "we do not sample from the collection of vectors but uniformly sample a
/// percentage of rows from each column").
ColumnCatalog SampleRows(const ColumnCatalog& catalog, double frac,
                         uint64_t seed) {
  Rng rng(seed);
  ColumnCatalog out(catalog.dim());
  std::vector<float> packed;
  for (ColumnId c = 0; c < catalog.num_columns(); ++c) {
    const ColumnMeta& meta = catalog.column(c);
    const uint32_t take = std::max<uint32_t>(
        1, static_cast<uint32_t>(meta.count * frac + 0.5));
    auto rows = rng.SampleIndices(meta.count, take);
    packed.clear();
    for (size_t r : rows) {
      const float* v = catalog.store().View(meta.first +
                                            static_cast<VecId>(r));
      packed.insert(packed.end(), v, v + catalog.dim());
    }
    out.AddColumn(meta, packed.data(), take);
  }
  return out;
}

}  // namespace
}  // namespace pexeso::bench

int main() {
  using namespace pexeso::bench;
  using pexeso::BenchProfiles;
  using pexeso::ColumnCatalog;
  using pexeso::ColumnId;
  using pexeso::ColumnMeta;
  using pexeso::GenerateVectorLake;
  using pexeso::VectorLakeOptions;
  Banner("bench_fig10: scalability of PEXESO vs PEXESO-H",
         "Figure 10 of the PEXESO paper");
  const double scale = BenchProfiles::EnvScale();
  VectorLakeOptions profile = BenchProfiles::LwdcLike(scale);
  ColumnCatalog full = GenerateVectorLake(profile);

  std::printf("\n(a,b) varying %% of columns\n");
  std::printf("%6s %12s %12s %14s\n", "%cols", "PEXESO (s)", "PEXESO-H (s)",
              "index (MB)");
  for (double frac : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    ColumnCatalog subset(full.dim());
    const size_t keep =
        std::max<size_t>(1, static_cast<size_t>(full.num_columns() * frac));
    for (ColumnId c = 0; c < keep; ++c) {
      const ColumnMeta& meta = full.column(c);
      subset.AddColumn(meta, full.store().View(meta.first), meta.count);
    }
    const Cell cell = Measure(subset, profile);
    std::printf("%5.0f%% %12.4f %12.4f %14.2f\n", frac * 100, cell.t_pexeso,
                cell.t_h, cell.index_mb);
  }

  std::printf("\n(c,d) varying %% of vectors per column\n");
  std::printf("%6s %12s %12s %14s\n", "%vecs", "PEXESO (s)", "PEXESO-H (s)",
              "index (MB)");
  for (double frac : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const ColumnCatalog subset = SampleRows(full, frac, 424242);
    const Cell cell = Measure(subset, profile);
    std::printf("%5.0f%% %12.4f %12.4f %14.2f\n", frac * 100, cell.t_pexeso,
                cell.t_h, cell.index_mb);
  }

  std::printf("\n(e) varying dimensionality\n");
  std::printf("%6s %12s %12s %14s\n", "dim", "PEXESO (s)", "PEXESO-H (s)",
              "index (MB)");
  for (uint32_t dim : {50u, 100u, 200u, 300u}) {
    VectorLakeOptions p = profile;
    p.dim = dim;
    p.num_columns = profile.num_columns / 2;  // keep total work bounded
    ColumnCatalog catalog = GenerateVectorLake(p);
    const Cell cell = Measure(catalog, p);
    std::printf("%6u %12.4f %12.4f %14.2f\n", dim, cell.t_pexeso, cell.t_h,
                cell.index_mb);
  }

  std::printf(
      "\nExpected shape: PEXESO scales near-linearly in columns and vectors "
      "while PEXESO-H grows faster; both scale ~linearly in\ndimensionality "
      "(distance computation dominates); index sizes are dimension-"
      "independent (built over the pivot space).\n");
  return 0;
}
